// detlint — the repo's determinism & concurrency contract, machine-checked.
//
// Every result this reproduction reports is gated on byte-identical seeded
// replays (equal spec + equal seed => byte-identical snapshot/event/ROC
// streams) and thread-count-invariant merges. Those properties are easy to
// break silently: iterate an unordered_map into a fingerprint sink, seed
// from std::random_device outside common/rng, key an ordered container by
// pointer, or accumulate floating point inside a parallel_for_index body.
// detlint is a self-contained token/AST-lite analyzer (no libclang) that
// turns each of those failure modes into a named, suppressible rule:
//
//   D1  no unordered-container iteration in a translation unit whose
//       include closure reaches a sink/fingerprint/serialize header
//       (common/bytes.hpp, scenario/snapshot.hpp, detection/roc.hpp)
//   D2  no std::random_device, rand()/srand(), time(nullptr),
//       system_clock, or stdlib RNG engines outside common/rng and
//       common/clock — all randomness flows through the seeded Rng
//   D3  no pointer-keyed std::map/std::set: pointer order is allocator
//       order, which is run-to-run nondeterministic
//   D4  no compound assignment to captured (shared) state inside a
//       parallel_for_index body: a data race, and floating-point
//       accumulation order would depend on the thread schedule
//   D5  every serialized-schema declaration — each owner in the
//       Config::d5_owners table: snapshot fields, trace event kinds, the
//       grid wire structs, the streaming trace-file schema (TraceHeader/
//       TraceFooter plus the whole ScenarioSpec tree its header echoes),
//       and the ROC / replay-grid point structs — must be listed in the
//       committed serialization manifest; fields marked `conditional`
//       must keep the "empty = byte-identical" guard in their serializer
//       (the PR-5 pattern that keeps golden fingerprints stable across
//       schema growth)
//
// Suppression: `// detlint:allow(Dn reason)` on the offending line or the
// line directly above. A reason is mandatory; suppressions are counted and
// reported so growth is visible per PR.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace onion::detlint {

/// One rule hit, violation or suppressed, formatted `file:line: [Dn] msg`.
struct Diagnostic {
  std::string file;  // path as given (repo-relative in tree runs)
  int line = 0;
  std::string rule;     // "D1".."D5"
  std::string message;  // human explanation, no trailing newline
  bool suppressed = false;
  std::string suppress_reason;  // non-empty iff suppressed

  std::string to_string() const;
};

/// An in-memory source file; tree runs load these from disk, the unit
/// tests feed fixture snippets directly.
struct SourceFile {
  std::string path;     // forward-slash, repo-relative (keys the graph)
  std::string content;
};

/// One entry of the D5 serialization manifest.
struct ManifestEntry {
  std::string owner;   // a schema owner from Config::d5_owners, e.g.
                       // "MetricsSnapshot", "TraceEventKind", "RocPoint",
                       // "ScenarioSpec", "TraceFooter"
  std::string name;    // field / enumerator
  bool conditional = false;  // must be guarded in serialize()
};

/// One D5 schema owner: a serialized struct (or enum) type, the header
/// declaring it, and the TU holding its serializer — where the
/// conditional `if (....empty())` guards are looked for. Growing the
/// serialized surface is one row here plus manifest entries; rule D5
/// iterates this table, nothing is hard-coded per owner.
struct D5Owner {
  std::string owner;
  bool is_enum = false;
  std::string header;
  std::string impl;
};

struct Config {
  /// D1 taint roots: a TU is sink-reachable when its include closure
  /// contains any of these (or it is one of them).
  std::vector<std::string> sink_headers = {
      "src/common/bytes.hpp",
      "src/scenario/snapshot.hpp",
      "src/detection/roc.hpp",
  };
  /// D2-exempt files: the blessed homes of nondeterminism plumbing.
  std::vector<std::string> rng_exempt = {
      "src/common/rng.hpp",
      "src/common/rng.cpp",
      "src/common/clock.hpp",
  };
  /// D5 manifest (parsed from tools/detlint/serialized_fields.txt in tree
  /// runs). Empty disables D5.
  std::vector<ManifestEntry> manifest;
  /// The serialized-schema table D5 checks the manifest against. Owners
  /// whose header is absent from the linted file set are skipped, so
  /// fixture-based unit tests can bind any subset.
  std::vector<D5Owner> d5_owners = {
      // Snapshot stream and campaign events.
      {"MetricsSnapshot", false, "src/scenario/snapshot.hpp",
       "src/scenario/snapshot.cpp"},
      {"TraceEventKind", true, "src/scenario/trace.hpp",
       "src/scenario/snapshot.cpp"},
      // Multi-process grid wire schema.
      {"CellResult", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
      {"GridReport", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
      {"FailedCell", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
      // Streaming trace-file schema (header/footer frames plus the full
      // ScenarioSpec echo the header carries — growing any spec struct
      // without updating the trace_io codec fails here).
      {"TraceHeader", false, "src/scenario/trace_io.hpp",
       "src/scenario/trace_io.cpp"},
      {"TraceFooter", false, "src/scenario/trace_io.hpp",
       "src/scenario/trace_io.cpp"},
      {"ScenarioSpec", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"ChurnSpec", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"AttackKind", true, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"RankMetric", true, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"AttackPhase", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"AttackWave", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"WavePlan", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"DefenseSpec", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"MetricsSpec", false, "src/scenario/spec.hpp",
       "src/scenario/trace_io.cpp"},
      {"SessionModel", true, "src/scenario/session.hpp",
       "src/scenario/trace_io.cpp"},
      {"SessionSpec", false, "src/scenario/session.hpp",
       "src/scenario/trace_io.cpp"},
      // ROC sweep points (family columns are conditional) and the
      // replay-level grid points.
      {"RocPoint", false, "src/detection/roc.hpp",
       "src/detection/roc.cpp"},
      {"RocFamilyCount", false, "src/detection/roc.hpp",
       "src/detection/roc.cpp"},
      {"ReplayGridPoint", false, "src/detection/replay_grid.hpp",
       "src/detection/replay_grid.cpp"},
      // Multi-process replay-grid wire schema (frames carried by
      // detection/replay_proc.hpp, codecs in scenario/wire.cpp).
      {"ReplayGridCell", false, "src/detection/replay_grid.hpp",
       "src/scenario/wire.cpp"},
      {"ReplayGridReport", false, "src/detection/replay_grid.hpp",
       "src/scenario/wire.cpp"},
  };
};

struct RuleCounts {
  std::size_t violations = 0;
  std::size_t suppressions = 0;
};

struct LintResult {
  std::vector<Diagnostic> diagnostics;  // violations + suppressed, in order
  /// Per-rule totals ("D1".."D5"), present even when zero.
  std::map<std::string, RuleCounts> counts;

  bool ok() const;  // no unsuppressed violations
  std::size_t violation_count() const;
};

/// Lints a set of files as one program: builds the include graph over
/// exactly these files (quoted includes resolved against src/ and the
/// including file's directory), computes sink taint, and runs D1–D5.
LintResult lint_files(const std::vector<SourceFile>& files,
                      const Config& config);

/// Convenience for unit tests: lints snippets with D5 disabled unless the
/// config carries a manifest.
LintResult lint_source(const std::string& path, const std::string& content,
                       const Config& config);

/// Parses the committed manifest format: one `Owner.name [conditional]`
/// per line, `#` comments. Throws std::runtime_error on malformed lines.
std::vector<ManifestEntry> parse_manifest(const std::string& text);

/// Loads *.cpp / *.hpp under root/{src,bench,examples,tests} plus the
/// manifest at root/tools/detlint/serialized_fields.txt, and lints the
/// tree. Paths in diagnostics are repo-relative.
LintResult lint_tree(const std::string& root);

}  // namespace onion::detlint
