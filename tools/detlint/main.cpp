// detlint CLI. Exit status 0 = clean (suppressions allowed), 1 =
// unsuppressed violations, 2 = usage/config error.
//
//   detlint [--root DIR] [--counts] [--verbose]
//
// Runs over DIR/{src,bench,examples,tests} (default: current directory)
// with the D5 manifest at DIR/tools/detlint/serialized_fields.txt.
// --counts appends machine-greppable per-rule totals (`detlint-counts
// D1 violations=0 suppressions=1`) so CI can chart suppression growth;
// --verbose also prints suppressed hits with their reasons.
#include <cstdio>
#include <exception>
#include <string>

#include "detlint.hpp"

namespace {

const char* kRuleSummary =
    "detlint rules (suppress with `// detlint:allow(Dn reason)` on the\n"
    "offending line or the line above; the reason is mandatory):\n"
    "  D1  no unordered-container iteration in sink-reachable TUs\n"
    "  D2  no random_device/rand/srand/time(nullptr)/system_clock/std\n"
    "      engines outside common/rng + common/clock\n"
    "  D3  no pointer-keyed std::map / std::set\n"
    "  D4  no compound assignment to captured state inside\n"
    "      parallel_for_index bodies\n"
    "  D5  MetricsSnapshot fields / TraceEventKind enumerators must match\n"
    "      tools/detlint/serialized_fields.txt (conditional fields keep\n"
    "      the empty = byte-identical serialize() guard)\n";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool counts = false;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--counts") {
      counts = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--list-rules") {
      std::fputs(kRuleSummary, stdout);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: detlint [--root DIR] [--counts] [--verbose] "
                  "[--list-rules]\n\n%s", kRuleSummary);
      return 0;
    } else {
      std::fprintf(stderr, "detlint: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  onion::detlint::LintResult result;
  try {
    result = onion::detlint::lint_tree(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "detlint: %s\n", e.what());
    return 2;
  }

  for (const onion::detlint::Diagnostic& d : result.diagnostics) {
    if (d.suppressed && !verbose) continue;
    std::fprintf(d.suppressed ? stdout : stderr, "%s\n",
                 d.to_string().c_str());
  }
  if (counts) {
    for (const auto& [rule, c] : result.counts)
      std::printf("detlint-counts %s violations=%zu suppressions=%zu\n",
                  rule.c_str(), c.violations, c.suppressions);
  }
  if (!result.ok()) {
    std::fprintf(stderr,
                 "detlint: %zu violation(s); see tools/detlint/README.md "
                 "for the rule catalog and how to suppress\n",
                 result.violation_count());
    return 1;
  }
  return 0;
}
