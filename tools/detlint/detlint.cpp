#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace onion::detlint {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer: a C++-shaped token stream (identifiers, numbers, literals,
// punctuation) with line numbers, plus the allow-comments collected per
// line. Preprocessor directives tokenize like ordinary text; includes are
// parsed line-wise separately.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { Ident, Number, String, Punct };
  Kind kind = Punct;
  std::string text;
  int line = 1;
};

struct Allow {
  std::string rule;
  std::string reason;
};

struct Scan {
  std::vector<Token> tokens;
  std::map<int, std::vector<Allow>> allows;  // line -> suppressions
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `detlint:allow(Dn reason)` markers out of one comment's text.
void collect_allows(const std::string& comment, int line, Scan& scan) {
  std::size_t pos = 0;
  while ((pos = comment.find("detlint:allow(", pos)) != std::string::npos) {
    pos += 14;  // past "detlint:allow("
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) break;
    const std::string body = comment.substr(pos, close - pos);
    const std::size_t space = body.find_first_of(" \t");
    Allow allow;
    allow.rule = body.substr(0, space);
    if (space != std::string::npos) {
      std::size_t rs = body.find_first_not_of(" \t", space);
      if (rs != std::string::npos) allow.reason = body.substr(rs);
    }
    scan.allows[line].push_back(std::move(allow));
    pos = close + 1;
  }
}

/// Two-char punctuation worth keeping whole. `<<` and `>>` stay split so
/// template-angle matching can count single brackets.
bool munch2(const std::string& s, std::size_t i, std::string& out) {
  static const char* kPairs[] = {"::", "->", "+=", "-=", "*=", "/=", "==",
                                 "!=", "<=", ">=", "&&", "||", "++", "--"};
  if (i + 1 >= s.size()) return false;
  const char two[3] = {s[i], s[i + 1], 0};
  for (const char* p : kPairs)
    if (two[0] == p[0] && two[1] == p[1]) {
      out = p;
      return true;
    }
  return false;
}

Scan tokenize(const std::string& src) {
  Scan scan;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t end = src.find('\n', i);
      const std::string body =
          src.substr(i + 2, (end == std::string::npos ? n : end) - i - 2);
      collect_allows(body, line, scan);
      i = end == std::string::npos ? n : end;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t end = src.find("*/", i + 2);
      const std::size_t stop = end == std::string::npos ? n : end;
      collect_allows(src.substr(i + 2, stop - i - 2), line, scan);
      line += static_cast<int>(
          std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                     src.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(n, stop + 2)),
                     '\n'));
      i = std::min(n, stop + 2);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      const std::size_t open = src.find('(', i + 2);
      if (open != std::string::npos) {
        const std::string delim = src.substr(i + 2, open - i - 2);
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, open + 1);
        const std::size_t stop =
            end == std::string::npos ? n : end + closer.size();
        scan.tokens.push_back({Token::String, "<raw>", line});
        line += static_cast<int>(
            std::count(src.begin() + static_cast<std::ptrdiff_t>(i),
                       src.begin() + static_cast<std::ptrdiff_t>(stop),
                       '\n'));
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) ++j;
        if (src[j] == '\n') ++line;
        text.push_back(src[j]);
        ++j;
      }
      scan.tokens.push_back({Token::String, text, line});
      i = j + 1;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      scan.tokens.push_back({Token::Ident, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && (ident_char(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E'))))
        ++j;
      scan.tokens.push_back({Token::Number, src.substr(i, j - i), line});
      i = j;
      continue;
    }
    std::string two;
    if (munch2(src, i, two)) {
      scan.tokens.push_back({Token::Punct, two, line});
      i += 2;
      continue;
    }
    scan.tokens.push_back({Token::Punct, std::string(1, c), line});
    ++i;
  }
  return scan;
}

// ---------------------------------------------------------------------------
// Token-stream helpers.
// ---------------------------------------------------------------------------

bool is(const Token& t, const char* text) { return t.text == text; }

/// Index just past the bracket that closes tokens[open] (tokens[open] must
/// be the opener). Returns tokens.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& ts, std::size_t open,
                          const char* l, const char* r) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (is(ts[i], l)) ++depth;
    if (is(ts[i], r) && --depth == 0) return i + 1;
  }
  return ts.size();
}

/// Skips a template argument list starting at the `<` at `open`; bails (and
/// returns npos) if a `;` or `{` interrupts — then the `<` was less-than.
std::size_t skip_angles(const std::vector<Token>& ts, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < ts.size(); ++i) {
    if (is(ts[i], "<")) ++depth;
    if (is(ts[i], ">") && --depth == 0) return i + 1;
    if (is(ts[i], ";") || is(ts[i], "{")) break;
  }
  return std::string::npos;
}

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "flat_hash_map", "flat_hash_set"};

const std::set<std::string> kStdEngines = {
    "mt19937",      "mt19937_64", "minstd_rand",          "minstd_rand0",
    "ranlux24",     "ranlux48",   "default_random_engine", "knuth_b"};

const std::set<std::string> kNonTypeKeywords = {
    "return", "if",    "while",     "for",   "else",     "do",
    "case",   "goto",  "new",       "delete", "throw",    "sizeof",
    "switch", "break", "continue",  "using",  "typedef",  "namespace",
    "public", "private", "protected", "co_return", "co_await", "co_yield"};

/// Names declared (variables, members, or functions returning one) with an
/// unordered container type in this file.
std::set<std::string> unordered_decl_names(const std::vector<Token>& ts) {
  std::set<std::string> names;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].kind != Token::Ident || !kUnorderedTypes.count(ts[i].text))
      continue;
    if (!is(ts[i + 1], "<")) continue;
    std::size_t j = skip_angles(ts, i + 1);
    if (j == std::string::npos) continue;
    // Past the closing `>`: skip cv/ref/ptr noise, then take the declared
    // name. `unordered_map<K,V>::iterator it` style also lands on `it`.
    while (j < ts.size() &&
           (is(ts[j], "const") || is(ts[j], "&") || is(ts[j], "*") ||
            is(ts[j], "::") ||
            (ts[j].kind == Token::Ident && is(ts[j], "iterator"))))
      ++j;
    if (j < ts.size() && ts[j].kind == Token::Ident &&
        !kNonTypeKeywords.count(ts[j].text))
      names.insert(ts[j].text);
  }
  return names;
}

std::string dirname(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Quoted-include scan (line-wise; the tokenizer does not track
/// preprocessor structure).
std::vector<std::string> parse_includes(const std::string& src) {
  std::vector<std::string> out;
  std::istringstream in(src);
  std::string line;
  while (std::getline(in, line)) {
    std::size_t p = line.find_first_not_of(" \t");
    if (p == std::string::npos || line[p] != '#') continue;
    p = line.find_first_not_of(" \t", p + 1);
    if (p == std::string::npos || line.compare(p, 7, "include") != 0)
      continue;
    const std::size_t q1 = line.find('"', p + 7);
    if (q1 == std::string::npos) continue;
    const std::size_t q2 = line.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    out.push_back(line.substr(q1 + 1, q2 - q1 - 1));
  }
  return out;
}

class Linter {
 public:
  Linter(const std::vector<SourceFile>& files, const Config& config)
      : config_(config) {
    for (const SourceFile& f : files) {
      FileInfo info;
      info.path = f.path;
      info.scan = tokenize(f.content);
      info.unordered_names = unordered_decl_names(info.scan.tokens);
      for (const std::string& inc : parse_includes(f.content))
        info.raw_includes.push_back(inc);
      files_.emplace(f.path, std::move(info));
    }
    resolve_includes();
    compute_taint();
  }

  LintResult run() {
    for (const char* rule : {"D1", "D2", "D3", "D4", "D5"})
      result_.counts[rule];  // present even when zero
    for (auto& [path, info] : files_) {
      rule_d1(info);
      rule_d2(info);
      rule_d3(info);
      rule_d4(info);
    }
    rule_d5();
    std::sort(result_.diagnostics.begin(), result_.diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
    return std::move(result_);
  }

 private:
  struct FileInfo {
    std::string path;
    Scan scan;
    std::vector<std::string> raw_includes;
    std::vector<std::string> includes;  // resolved
    bool sink_tainted = false;
    std::set<std::string> unordered_names;
  };

  void resolve_includes() {
    for (auto& [path, info] : files_) {
      for (const std::string& inc : info.raw_includes) {
        // Project includes are rooted at src/; fall back to
        // includer-relative, then verbatim (fixture snippets).
        for (const std::string& candidate :
             {"src/" + inc, dirname(path).empty() ? inc
                                                  : dirname(path) + "/" + inc,
              inc}) {
          if (files_.count(candidate)) {
            info.includes.push_back(candidate);
            break;
          }
        }
      }
    }
  }

  void compute_taint() {
    // A file is sink-tainted when its include closure (itself included)
    // contains a sink header. Iterative DFS with memoization; cycles
    // resolve to "not tainted unless a sink is reachable elsewhere".
    const std::set<std::string> sinks(config_.sink_headers.begin(),
                                      config_.sink_headers.end());
    for (auto& [path, info] : files_) {
      std::set<std::string> seen;
      std::vector<std::string> stack = {path};
      bool tainted = false;
      while (!stack.empty() && !tainted) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (!seen.insert(cur).second) continue;
        if (sinks.count(cur)) tainted = true;
        const auto it = files_.find(cur);
        if (it == files_.end()) continue;
        for (const std::string& next : it->second.includes)
          stack.push_back(next);
      }
      info.sink_tainted = tainted;
    }
  }

  /// Unordered-declared names visible to this TU: its own plus its
  /// include closure's (members declared in headers, used in the .cpp).
  std::set<std::string> visible_unordered(const FileInfo& tu) const {
    std::set<std::string> names;
    std::set<std::string> seen;
    std::vector<const FileInfo*> stack = {&tu};
    while (!stack.empty()) {
      const FileInfo* cur = stack.back();
      stack.pop_back();
      if (!seen.insert(cur->path).second) continue;
      names.insert(cur->unordered_names.begin(),
                   cur->unordered_names.end());
      for (const std::string& inc : cur->includes) {
        const auto it = files_.find(inc);
        if (it != files_.end()) stack.push_back(&it->second);
      }
    }
    return names;
  }

  void report(const FileInfo& info, int line, const char* rule,
              std::string message) {
    Diagnostic d;
    d.file = info.path;
    d.line = line;
    d.rule = rule;
    d.message = std::move(message);
    // `// detlint:allow(Dn reason)` on the same line or the line above.
    for (const int l : {line, line - 1}) {
      const auto it = info.scan.allows.find(l);
      if (it == info.scan.allows.end()) continue;
      for (const Allow& a : it->second)
        if (a.rule == d.rule) {
          d.suppressed = true;
          d.suppress_reason = a.reason;
        }
    }
    auto& counts = result_.counts[d.rule];
    if (d.suppressed)
      ++counts.suppressions;
    else
      ++counts.violations;
    result_.diagnostics.push_back(std::move(d));
  }

  // --- D1: unordered iteration in sink-tainted TUs ---------------------
  void rule_d1(const FileInfo& info) {
    if (!info.sink_tainted) return;
    const std::set<std::string> names = visible_unordered(info);
    if (names.empty()) return;
    const std::vector<Token>& ts = info.scan.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      // Range-for whose range expression names an unordered container.
      if (is(ts[i], "for") && is(ts[i + 1], "(")) {
        const std::size_t close = skip_balanced(ts, i + 1, "(", ")");
        std::size_t colon = std::string::npos;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (is(ts[j], "(") || is(ts[j], "[")) ++depth;
          if (is(ts[j], ")") || is(ts[j], "]")) --depth;
          if (depth == 1 && is(ts[j], ":")) {
            colon = j;
            break;
          }
        }
        if (colon == std::string::npos) continue;
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (ts[j].kind == Token::Ident && names.count(ts[j].text)) {
            report(info, ts[i].line, "D1",
                   "range-for over unordered container '" + ts[j].text +
                       "' in a sink-reachable translation unit: hash-map "
                       "iteration order is stdlib-specific and would leak "
                       "into fingerprinted output; iterate a sorted copy "
                       "or an ordered container instead");
            break;
          }
        }
        continue;
      }
      // Explicit iterator walk: name.begin() / name.cbegin() / ... — the
      // bare name only: `obj.name.begin()` resolves `name` in obj's
      // scope, where an identically-named member may be a vector.
      if (ts[i].kind == Token::Ident && names.count(ts[i].text) &&
          (i == 0 || (!is(ts[i - 1], ".") && !is(ts[i - 1], "->") &&
                      !is(ts[i - 1], "::"))) &&
          i + 3 < ts.size() && is(ts[i + 1], ".") &&
          (is(ts[i + 2], "begin") || is(ts[i + 2], "cbegin") ||
           is(ts[i + 2], "rbegin") || is(ts[i + 2], "crbegin")) &&
          is(ts[i + 3], "(")) {
        report(info, ts[i].line, "D1",
               "iterator over unordered container '" + ts[i].text +
                   "' in a sink-reachable translation unit: traversal "
                   "order is stdlib-specific; sort before consuming");
      }
    }
  }

  // --- D2: nondeterminism sources outside common/rng + common/clock ----
  void rule_d2(const FileInfo& info) {
    for (const std::string& exempt : config_.rng_exempt)
      if (info.path == exempt) return;
    const std::vector<Token>& ts = info.scan.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].kind != Token::Ident) continue;
      const std::string& t = ts[i].text;
      const bool member_call =
          i > 0 && (is(ts[i - 1], ".") || is(ts[i - 1], "->"));
      if (t == "random_device") {
        report(info, ts[i].line, "D2",
               "std::random_device is nondeterministic by design; seed an "
               "onion::Rng explicitly (common/rng) instead");
      } else if (kStdEngines.count(t)) {
        report(info, ts[i].line, "D2",
               "stdlib RNG engine '" + t +
                   "' bypasses the seeded onion::Rng streams (and its "
                   "distributions are not portable across stdlibs)");
      } else if (t == "srand" || (t == "rand" && !member_call &&
                                  i + 1 < ts.size() && is(ts[i + 1], "("))) {
        report(info, ts[i].line, "D2",
               "C rand()/srand() draws from hidden global state; use the "
               "explicitly seeded onion::Rng");
      } else if (t == "system_clock") {
        report(info, ts[i].line, "D2",
               "system_clock reads wall-clock time into the run; use "
               "SimTime (common/clock) for simulated time, or "
               "steady_clock strictly for wall-duration reporting");
      } else if (t == "time" && !member_call && i + 3 < ts.size() &&
                 is(ts[i + 1], "(") &&
                 (is(ts[i + 2], "nullptr") || is(ts[i + 2], "NULL") ||
                  is(ts[i + 2], "0")) &&
                 is(ts[i + 3], ")")) {
        report(info, ts[i].line, "D2",
               "time(nullptr) seeds wall-clock time into the run; "
               "deterministic code takes an explicit seed");
      }
    }
  }

  // --- D3: pointer-keyed ordered containers ----------------------------
  void rule_d3(const FileInfo& info) {
    const std::vector<Token>& ts = info.scan.tokens;
    for (std::size_t i = 2; i + 1 < ts.size(); ++i) {
      if (ts[i].kind != Token::Ident) continue;
      const std::string& t = ts[i].text;
      if (t != "map" && t != "set" && t != "multimap" && t != "multiset")
        continue;
      if (!is(ts[i - 1], "::") || !is(ts[i - 2], "std")) continue;
      if (!is(ts[i + 1], "<")) continue;
      // First template argument: tokens at depth 1 until `,` or `>`.
      int depth = 0;
      std::size_t last = std::string::npos;
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (is(ts[j], "<") || is(ts[j], "(")) ++depth;
        if (is(ts[j], ">") || is(ts[j], ")")) {
          if (--depth == 0) break;
          continue;
        }
        if (depth == 1 && is(ts[j], ",")) break;
        if (is(ts[j], ";") || is(ts[j], "{")) break;  // was less-than
        last = j;
      }
      if (last != std::string::npos && is(ts[last], "*")) {
        report(info, ts[i].line, "D3",
               "std::" + t +
                   " keyed by a pointer: iteration order is allocation "
                   "order, which varies run to run; key by a stable id "
                   "and look the object up instead");
      }
    }
  }

  // --- D4: shared compound assignment inside parallel_for_index --------
  void rule_d4(const FileInfo& info) {
    const std::vector<Token>& ts = info.scan.tokens;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (!(ts[i].kind == Token::Ident &&
            is(ts[i], "parallel_for_index") && is(ts[i + 1], "(")))
        continue;
      const std::size_t close = skip_balanced(ts, i + 1, "(", ")");
      for (std::size_t k = i + 2; k + 1 < close; ++k) {
        if (!(is(ts[k], "+=") || is(ts[k], "-=") || is(ts[k], "*=") ||
              is(ts[k], "/=")))
          continue;
        const std::string base = lhs_base_ident(ts, k, i + 2);
        if (base.empty()) continue;
        if (declared_in_extent(ts, base, i + 2, k)) continue;
        report(info, ts[k].line, "D4",
               "compound assignment to captured '" + base +
                   "' inside a parallel_for_index body: a data race, and "
                   "for floating point the accumulation order depends on "
                   "the thread schedule; write to a per-index slot and "
                   "reduce sequentially, or use a std::atomic with a "
                   "documented detlint:allow(D4 ...) annotation");
      }
      i = close;
    }
  }

  /// Walks left from the compound-assign token to the base identifier of
  /// its left-hand side (through `x[i]`, `obj.field`, `p->field`).
  static std::string lhs_base_ident(const std::vector<Token>& ts,
                                    std::size_t op, std::size_t lo) {
    std::size_t j = op;
    while (j > lo) {
      --j;
      if (is(ts[j], "]")) {  // skip the index expression
        int depth = 0;
        while (j > lo) {
          if (is(ts[j], "]")) ++depth;
          if (is(ts[j], "[") && --depth == 0) break;
          --j;
        }
        continue;
      }
      if (is(ts[j], ")")) {  // skip a call/paren group
        int depth = 0;
        while (j > lo) {
          if (is(ts[j], ")")) ++depth;
          if (is(ts[j], "(") && --depth == 0) break;
          --j;
        }
        continue;
      }
      if (ts[j].kind == Token::Ident) {
        // obj.field / p->field: keep walking to the owning object.
        if (j > lo && (is(ts[j - 1], ".") || is(ts[j - 1], "->") ||
                       is(ts[j - 1], "::"))) {
          --j;
          continue;
        }
        return ts[j].text;
      }
      if (!is(ts[j], ".") && !is(ts[j], "->") && !is(ts[j], "::") &&
          !is(ts[j], "*"))
        return {};  // start of statement without an identifier base
    }
    return {};
  }

  /// Heuristic "declared inside the lambda/extent": an occurrence of the
  /// name whose preceding token reads like a declarator (auto, a type
  /// name, `>`, `&`, `*`).
  static bool declared_in_extent(const std::vector<Token>& ts,
                                 const std::string& name, std::size_t lo,
                                 std::size_t hi) {
    for (std::size_t j = lo + 1; j < hi; ++j) {
      if (ts[j].kind != Token::Ident || ts[j].text != name) continue;
      const Token& prev = ts[j - 1];
      if (is(prev, ">") || is(prev, "&") || is(prev, "*")) return true;
      if (prev.kind == Token::Ident && !kNonTypeKeywords.count(prev.text) &&
          prev.text != name)
        return true;
    }
    return false;
  }

  // --- D5: serialized-schema manifest ----------------------------------
  struct Member {
    std::string name;
    int line = 0;
  };

  /// Data members of `struct <name> { ... }` (functions and using/friend
  /// declarations skipped).
  static std::vector<Member> struct_fields(const std::vector<Token>& ts,
                                           const std::string& name) {
    std::vector<Member> out;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(is(ts[i], "struct") && ts[i + 1].text == name &&
            is(ts[i + 2], "{")))
        continue;
      std::size_t j = i + 3;
      std::vector<Token> stmt;
      int depth = 1;
      for (; j < ts.size() && depth > 0; ++j) {
        if (is(ts[j], "{")) {
          // Nested braces: a member-function body or initializer — the
          // statement is not a plain data member.
          j = skip_balanced(ts, j, "{", "}") - 1;
          stmt.push_back(ts[j]);  // marker so the `;` flush sees braces
          continue;
        }
        if (is(ts[j], "}")) {
          --depth;
          continue;
        }
        if (is(ts[j], ";")) {
          flush_member(stmt, out);
          stmt.clear();
          continue;
        }
        stmt.push_back(ts[j]);
      }
      break;
    }
    return out;
  }

  static void flush_member(const std::vector<Token>& stmt,
                           std::vector<Member>& out) {
    if (stmt.empty()) return;
    if (is(stmt.front(), "using") || is(stmt.front(), "friend") ||
        is(stmt.front(), "static") || is(stmt.front(), "}"))
      return;
    // The declared name: last identifier before `=`, or before the end.
    std::size_t stop = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k)
      if (is(stmt[k], "=")) {
        stop = k;
        break;
      }
    // Trailing qualifiers (`) const;`, `) noexcept;`, ref-qualified
    // overloads) belong to a member-function declarator, not a name —
    // without this, the name scan below would report the qualifier
    // keyword (keywords tokenize as Ident) as a data member.
    while (stop > 0 &&
           (is(stmt[stop - 1], "const") || is(stmt[stop - 1], "noexcept") ||
            is(stmt[stop - 1], "override") || is(stmt[stop - 1], "final") ||
            is(stmt[stop - 1], "&") || is(stmt[stop - 1], "&&")))
      --stop;
    // A declarator ending in `)` is a function: in-class data members
    // can never end with one (paren-initializers are illegal there).
    if (stop > 0 && is(stmt[stop - 1], ")")) return;
    // A `(` before the name position marks a function declaration.
    std::size_t name_pos = std::string::npos;
    for (std::size_t k = stop; k-- > 0;)
      if (stmt[k].kind == Token::Ident) {
        name_pos = k;
        break;
      }
    if (name_pos == std::string::npos) return;
    for (std::size_t k = name_pos + 1; k < stop; ++k)
      if (is(stmt[k], "(")) return;  // function
    if (name_pos + 1 < stop && is(stmt[name_pos + 1], "(")) return;
    out.push_back({stmt[name_pos].text, stmt[name_pos].line});
  }

  /// Enumerators of `enum class <name> ... { ... }`.
  static std::vector<Member> enum_values(const std::vector<Token>& ts,
                                         const std::string& name) {
    std::vector<Member> out;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
      if (!(is(ts[i], "enum") && is(ts[i + 1], "class") &&
            ts[i + 2].text == name))
        continue;
      std::size_t j = i + 3;
      while (j < ts.size() && !is(ts[j], "{")) ++j;
      bool expect_name = true;
      int depth = 0;
      for (++j; j < ts.size(); ++j) {
        if (is(ts[j], "(") || is(ts[j], "{")) ++depth;
        if (is(ts[j], ")")) --depth;
        if (is(ts[j], "}")) {
          if (depth == 0) break;
          --depth;
          continue;
        }
        if (depth > 0) continue;
        if (is(ts[j], ",")) {
          expect_name = true;
          continue;
        }
        if (expect_name && ts[j].kind == Token::Ident) {
          out.push_back({ts[j].text, ts[j].line});
          expect_name = false;
        }
      }
      break;
    }
    return out;
  }

  void rule_d5() {
    if (config_.manifest.empty()) return;

    std::map<std::string, const ManifestEntry*> by_key;
    for (const ManifestEntry& e : config_.manifest)
      by_key[e.owner + "." + e.name] = &e;
    std::set<std::string> seen;

    // Schema table walk: every owner whose header is in the linted set
    // has its declared members diffed against the manifest, and its
    // `conditional` entries checked for the serializer guard in the
    // owner's bound impl.
    for (const D5Owner& binding : config_.d5_owners) {
      const FileInfo* file = find(binding.header);
      if (file == nullptr) continue;
      const FileInfo* impl = find(binding.impl);
      const std::vector<Member> members =
          binding.is_enum ? enum_values(file->scan.tokens, binding.owner)
                          : struct_fields(file->scan.tokens, binding.owner);
      for (const Member& m : members) {
        const std::string key = binding.owner + "." + m.name;
        seen.insert(key);
        const auto it = by_key.find(key);
        if (it == by_key.end()) {
          report(*file, m.line, "D5",
                 binding.owner + "::" + m.name +
                     " is not in tools/detlint/serialized_fields.txt: new "
                     "serialized schema entries must keep committed golden "
                     "fingerprints byte-identical (serialize the field "
                     "only when non-empty/non-default — the PR-5 pattern) "
                     "and then be added to the manifest");
          continue;
        }
        if (it->second->conditional && impl != nullptr &&
            !guarded_in_serializer(impl->scan.tokens, m.name)) {
          report(*file, m.line, "D5",
                 binding.owner + "::" + m.name +
                     " is marked `conditional` in the manifest but " +
                     binding.impl +
                     " has no `if (....empty())` guard around it; the "
                     "empty = byte-identical encoding contract is broken");
        }
      }
    }

    for (const ManifestEntry& e : config_.manifest) {
      const std::string key = e.owner + "." + e.name;
      if (seen.count(key)) continue;
      // Stale entries report at the owner's bound header; entries for
      // owners without a binding (or whose header is not in the linted
      // set) are skipped — a partial file set cannot prove staleness.
      const FileInfo* file = nullptr;
      for (const D5Owner& binding : config_.d5_owners)
        if (binding.owner == e.owner) {
          file = find(binding.header);
          break;
        }
      if (file == nullptr) continue;
      report(*file, 1, "D5",
             "stale manifest entry " + key +
                 ": not found in the declaration; remove it from "
                 "tools/detlint/serialized_fields.txt so the manifest "
                 "stays exhaustive");
    }
  }

  /// True when the serializer contains `if (...)` whose condition touches
  /// `<field> . empty` — the conditional-append guard.
  static bool guarded_in_serializer(const std::vector<Token>& ts,
                                    const std::string& field) {
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (!(is(ts[i], "if") && is(ts[i + 1], "("))) continue;
      const std::size_t close = skip_balanced(ts, i + 1, "(", ")");
      for (std::size_t j = i + 2; j + 2 < close; ++j)
        if (ts[j].text == field && is(ts[j + 1], ".") &&
            is(ts[j + 2], "empty"))
          return true;
    }
    return false;
  }

  const FileInfo* find(const std::string& path) const {
    const auto it = files_.find(path);
    return it == files_.end() ? nullptr : &it->second;
  }

  Config config_;
  std::map<std::string, FileInfo> files_;
  LintResult result_;
};

}  // namespace

std::string Diagnostic::to_string() const {
  std::string out = file + ":" + std::to_string(line) + ": [" + rule +
                    "] " + message;
  if (suppressed) {
    out += " (suppressed";
    if (!suppress_reason.empty()) out += ": " + suppress_reason;
    out += ")";
  }
  return out;
}

bool LintResult::ok() const { return violation_count() == 0; }

std::size_t LintResult::violation_count() const {
  std::size_t n = 0;
  for (const auto& [rule, c] : counts) n += c.violations;
  return n;
}

LintResult lint_files(const std::vector<SourceFile>& files,
                      const Config& config) {
  Linter linter(files, config);
  return linter.run();
}

LintResult lint_source(const std::string& path, const std::string& content,
                       const Config& config) {
  return lint_files({{path, content}}, config);
}

std::vector<ManifestEntry> parse_manifest(const std::string& text) {
  std::vector<ManifestEntry> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string key, flag;
    if (!(fields >> key)) continue;  // blank / comment-only
    ManifestEntry e;
    const std::size_t dot = key.find('.');
    if (dot == std::string::npos || dot == 0 || dot + 1 == key.size())
      throw std::runtime_error("serialized_fields.txt line " +
                               std::to_string(lineno) +
                               ": expected Owner.name, got '" + key + "'");
    e.owner = key.substr(0, dot);
    e.name = key.substr(dot + 1);
    if (fields >> flag) {
      if (flag != "conditional")
        throw std::runtime_error("serialized_fields.txt line " +
                                 std::to_string(lineno) +
                                 ": unknown flag '" + flag + "'");
      e.conditional = true;
    }
    out.push_back(std::move(e));
  }
  return out;
}

LintResult lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  std::vector<SourceFile> files;
  for (const char* dir : {"src", "bench", "examples", "tests"}) {
    const fs::path top = base / dir;
    if (!fs::exists(top)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(top)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      files.push_back({fs::relative(entry.path(), base).generic_string(),
                       buf.str()});
    }
  }
  // Deterministic file order => deterministic diagnostic order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });

  Config config;
  const fs::path manifest_path =
      base / "tools" / "detlint" / "serialized_fields.txt";
  if (fs::exists(manifest_path)) {
    std::ifstream in(manifest_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    config.manifest = parse_manifest(buf.str());
  }
  return lint_files(files, config);
}

}  // namespace onion::detlint
