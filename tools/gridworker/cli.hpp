// gridworker's argument layer, extracted so tests/gridcli_test.cpp can
// drive it without forking the binary. Everything user-typed funnels
// through the strict parsers here:
//
//   * numbers must consume the whole token — `--cells 3x7` or
//     `--workers 4q` is an error naming the offending token, never a
//     silent prefix parse (std::stoull accepted "3x7" as 3);
//   * signs are rejected on unsigned flags — std::stoull("-1") wraps to
//     2^64-1, from_chars refuses it outright;
//   * duration flags must be finite and strictly positive, so a
//     negative or zero --timeout / --backoff-base / --backoff-max is a
//     validation error, not an accidental busy-loop;
//   * duplicate cell indices in --cells deduplicate (highest attempt
//     wins) with a warning, instead of racing two assignments onto the
//     same frame path.
//
// parse_args turns argv + the ONION_GRID_FAULTS environment into an
// Options value or throws CliError (exit 2 in main) with a message
// naming the bad flag and token.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/runner.hpp"

namespace onion::gridcli {

/// Any user-input defect: unknown flag, missing value, malformed
/// number, invalid combination. main() prints the message and exits 2.
class CliError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Strict unsigned parse: the whole token must be digits (no sign, no
/// prefix/suffix garbage, no empty string). `flag` names the option in
/// the error message.
std::uint64_t parse_u64(std::string_view token, std::string_view flag);

/// Strict duration parse: full-token double, finite and > 0.
double parse_positive_seconds(std::string_view token, std::string_view flag);

/// Comma-separated strict u64 list (for --replay-seeds); empty tokens
/// and an empty list are errors.
std::vector<std::uint64_t> parse_u64_list(std::string_view text,
                                          std::string_view flag);

/// `--cells 0,3:1,5` — strict cell indices with an optional `:attempt`
/// suffix (attempt 0 when omitted). Duplicate cell indices collapse to
/// one assignment keeping the highest attempt, appending a warning per
/// duplicate; two assignments for one index would race on the same
/// frame path.
std::vector<scenario::CellAssignment> parse_cells(
    std::string_view text, std::vector<std::string>& warnings);

enum class Role {
  kCoordinate,
  kWorker,
  kMerge,
  kShowReport,
  kRecordTrace,
  kListGrids,
  kHelp,
};

struct Options {
  Role role = Role::kHelp;
  /// Replay-grid mode: cells are (campaign, replay-seed) pairs scored
  /// over recorded --trace files instead of simulated campaign cells.
  bool replay_grid = false;
  std::string grid_name;
  std::string results_dir;
  /// --record-trace PATH: record one named-grid cell's trace to PATH.
  std::string record_trace_path;
  std::uint64_t record_cell = 0;
  /// Recorded trace files, one per campaign, campaign order.
  std::vector<std::string> traces;
  /// Optional --replay-seeds override of the ReplayGridConfig default.
  std::vector<std::uint64_t> replay_seeds;
  std::vector<scenario::CellAssignment> cells;
  /// Non-fatal notes (e.g. deduplicated --cells entries) for stderr.
  std::vector<std::string> warnings;
  scenario::GridCoordinatorConfig config;
};

/// Parses the full command line (argv[1..]) plus the ONION_GRID_FAULTS
/// environment value (`env_faults`, may be null; --faults wins).
/// Throws CliError on any defect.
Options parse_args(const std::vector<std::string>& args,
                   const char* env_faults);

}  // namespace onion::gridcli
