#include "tools/gridworker/cli.hpp"

#include <charconv>
#include <cmath>
#include <string>

namespace onion::gridcli {

namespace {

std::string quote(std::string_view token) {
  return "'" + std::string(token) + "'";
}

}  // namespace

std::uint64_t parse_u64(std::string_view token, std::string_view flag) {
  std::uint64_t value = 0;
  const auto [ptr, err] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  // from_chars on an unsigned type already refuses signs and empty
  // input; requiring full consumption rejects trailing garbage, so
  // "3x7" and "-1" both fail here instead of silently becoming 3 and
  // 2^64-1 (the std::stoull behaviors this parser replaces).
  if (err == std::errc::result_out_of_range)
    throw CliError(std::string(flag) + ": number out of range: " +
                   quote(token));
  if (err != std::errc{} || ptr != token.data() + token.size())
    throw CliError(std::string(flag) + ": bad number " + quote(token) +
                   " (want a plain unsigned integer)");
  return value;
}

double parse_positive_seconds(std::string_view token,
                              std::string_view flag) {
  double value = 0.0;
  const auto [ptr, err] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (err != std::errc{} || ptr != token.data() + token.size())
    throw CliError(std::string(flag) + ": bad duration " + quote(token) +
                   " (want seconds, e.g. 0.5)");
  if (!std::isfinite(value) || value <= 0.0)
    throw CliError(std::string(flag) + ": must be a finite value > 0, got " +
                   quote(token));
  return value;
}

std::vector<std::uint64_t> parse_u64_list(std::string_view text,
                                          std::string_view flag) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty())
      throw CliError(std::string(flag) + ": empty entry in " + quote(text));
    out.push_back(parse_u64(token, flag));
  }
  return out;
}

std::vector<scenario::CellAssignment> parse_cells(
    std::string_view text, std::vector<std::string>& warnings) {
  std::vector<scenario::CellAssignment> out;
  if (text.empty()) return out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(',', pos), text.size());
    const std::string_view token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty())
      throw CliError("--cells: empty entry in " + quote(text));
    scenario::CellAssignment a;
    const std::size_t colon = token.find(':');
    a.cell_index = parse_u64(token.substr(0, colon), "--cells");
    if (colon != std::string_view::npos)
      a.attempt = parse_u64(token.substr(colon + 1), "--cells");
    // Two assignments for one index would race on the same frame path;
    // collapse to the most-advanced attempt and tell the user.
    bool duplicate = false;
    for (scenario::CellAssignment& seen : out) {
      if (seen.cell_index != a.cell_index) continue;
      seen.attempt = std::max(seen.attempt, a.attempt);
      warnings.push_back("--cells lists cell " +
                         std::to_string(a.cell_index) +
                         " more than once; keeping one assignment "
                         "(attempt " +
                         std::to_string(seen.attempt) + ")");
      duplicate = true;
      break;
    }
    if (!duplicate) out.push_back(a);
  }
  return out;
}

Options parse_args(const std::vector<std::string>& args,
                   const char* env_faults) {
  Options options;
  std::string cells_text;
  std::string faults_text;
  bool have_faults_flag = false;
  bool have_cells = false;
  std::vector<std::string> roles;  // role flags seen, for exclusivity

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw CliError(arg + " needs a value");
      return args[++i];
    };
    if (arg == "--help" || arg == "-h") {
      options.role = Role::kHelp;
      return options;
    } else if (arg == "--coordinate") {
      options.role = Role::kCoordinate;
      roles.push_back(arg);
    } else if (arg == "--worker") {
      options.role = Role::kWorker;
      roles.push_back(arg);
    } else if (arg == "--merge") {
      options.role = Role::kMerge;
      roles.push_back(arg);
    } else if (arg == "--show-report") {
      options.role = Role::kShowReport;
      roles.push_back(arg);
    } else if (arg == "--record-trace") {
      options.role = Role::kRecordTrace;
      options.record_trace_path = value();
      roles.push_back(arg);
    } else if (arg == "--list-grids") {
      options.role = Role::kListGrids;
      roles.push_back(arg);
    } else if (arg == "--replay-grid") {
      options.replay_grid = true;
    } else if (arg == "--grid") {
      options.grid_name = value();
    } else if (arg == "--results-dir") {
      options.results_dir = value();
    } else if (arg == "--trace") {
      options.traces.push_back(value());
    } else if (arg == "--replay-seeds") {
      options.replay_seeds = parse_u64_list(value(), "--replay-seeds");
    } else if (arg == "--cell") {
      options.record_cell = parse_u64(value(), "--cell");
    } else if (arg == "--cells") {
      cells_text = value();
      have_cells = true;
    } else if (arg == "--workers") {
      options.config.workers = parse_u64(value(), "--workers");
      if (options.config.workers == 0)
        throw CliError("--workers: must be >= 1");
    } else if (arg == "--max-attempts") {
      options.config.max_attempts = parse_u64(value(), "--max-attempts");
      if (options.config.max_attempts == 0)
        throw CliError("--max-attempts: must be >= 1");
    } else if (arg == "--timeout") {
      options.config.cell_timeout_seconds =
          parse_positive_seconds(value(), "--timeout");
    } else if (arg == "--backoff-base") {
      options.config.backoff_base_seconds =
          parse_positive_seconds(value(), "--backoff-base");
    } else if (arg == "--backoff-max") {
      options.config.backoff_max_seconds =
          parse_positive_seconds(value(), "--backoff-max");
    } else if (arg == "--faults") {
      faults_text = value();
      have_faults_flag = true;
    } else {
      throw CliError("unknown argument: " + arg);
    }
  }

  if (roles.empty())
    throw CliError(
        "pick a role: --coordinate, --worker, --merge, --show-report, "
        "--record-trace, or --list-grids");
  if (roles.size() > 1) {
    std::string listed = roles[0];
    for (std::size_t k = 1; k < roles.size(); ++k) listed += ", " + roles[k];
    throw CliError("exactly one role, got: " + listed);
  }

  // The env fallback is only consumed by roles that execute cells, so
  // a stale ONION_GRID_FAULTS cannot break --list-grids/--show-report.
  const bool executes_cells = options.role == Role::kCoordinate ||
                              options.role == Role::kWorker;
  if (!have_faults_flag && executes_cells && env_faults != nullptr)
    faults_text = env_faults;
  try {
    options.config.faults = scenario::FaultPlan::parse(faults_text);
  } catch (const std::invalid_argument& e) {
    throw CliError(std::string(have_faults_flag ? "--faults"
                                                : "ONION_GRID_FAULTS") +
                   ": " + e.what());
  }
  options.config.results_dir = options.results_dir;

  if (have_cells) options.cells = parse_cells(cells_text, options.warnings);

  // Combination rules: every defect is a user-facing message, not an
  // assertion deep in the run.
  if (options.replay_grid && !options.grid_name.empty())
    throw CliError(
        "--replay-grid scores recorded --trace files; --grid names a "
        "simulated campaign grid — pick one");
  if (!options.replay_grid) {
    if (options.role == Role::kMerge)
      throw CliError("--merge is a --replay-grid mode");
    if (!options.traces.empty())
      throw CliError("--trace requires --replay-grid");
    if (!options.replay_seeds.empty())
      throw CliError("--replay-seeds requires --replay-grid");
  }
  if (have_cells && options.role != Role::kWorker)
    throw CliError("--cells only applies to --worker");
  if (options.role != Role::kRecordTrace && options.record_cell != 0)
    throw CliError("--cell only applies to --record-trace");

  switch (options.role) {
    case Role::kCoordinate:
    case Role::kWorker:
      if (options.replay_grid) {
        if (options.traces.empty())
          throw CliError("--replay-grid needs at least one --trace FILE");
      } else if (options.grid_name.empty()) {
        throw CliError("--coordinate/--worker need --grid NAME");
      }
      if (options.results_dir.empty())
        throw CliError("--coordinate/--worker need --results-dir DIR");
      if (options.role == Role::kWorker && options.cells.empty())
        throw CliError("--worker needs a non-empty --cells list");
      break;
    case Role::kMerge:
      if (options.traces.empty())
        throw CliError("--merge needs the campaign's --trace FILE list "
                       "(count fixes the grid shape)");
      if (options.results_dir.empty())
        throw CliError("--merge needs --results-dir DIR");
      break;
    case Role::kShowReport:
      if (options.results_dir.empty())
        throw CliError("--show-report needs --results-dir DIR");
      break;
    case Role::kRecordTrace:
      if (options.grid_name.empty())
        throw CliError("--record-trace needs --grid NAME");
      break;
    case Role::kListGrids:
    case Role::kHelp:
      break;
  }
  return options;
}

}  // namespace onion::gridcli
