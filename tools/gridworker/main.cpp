// gridworker — the multi-process campaign-grid CLI.
//
// Two roles over one results-directory file transport:
//
//   --worker      run an assigned cell subset of a named grid and write
//                 each CellResult as an atomically-published wire frame
//                 (the multi-host building block: any scheduler can fan
//                 shards of --cells across machines sharing a directory)
//   --coordinate  fork workers locally, enforce per-cell timeouts,
//                 retry with bounded backoff, quarantine permanent
//                 failures, resume over already-valid frames, and merge
//                 everything into one GridReport frame
//
// The merged combined fingerprint is invariant to worker count,
// partition shape, and retry history, so CI golden-gates a 4-worker
// crash-injected run against the single-process digest
// (tests/goldens/grid_small8.txt).
//
//   ./build/tools/gridworker/gridworker --grid small8 --coordinate
//       --workers 4 --faults 'crash@2:0' --results-dir /tmp/grid
//
// Scripted faults come from --faults or the ONION_GRID_FAULTS env var
// (flag wins): `crash@2:0;hang@5:1;corrupt@7:0` = kind@cell:attempt.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fileio.hpp"
#include "scenario/runner.hpp"
#include "scenario/wire.hpp"

using namespace onion;
using namespace onion::scenario;

namespace {

ScenarioSpec small8_base() {
  ScenarioSpec spec;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

ScenarioSpec sweep8_base() {
  ScenarioSpec spec;
  spec.initial_size = 1500;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 150.0;
  spec.churn.leaves_per_hour = 150.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 300.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

struct NamedGrid {
  const char* name;
  const char* description;
  CampaignGrid (*build)();
};

const NamedGrid kGrids[] = {
    {"small8",
     "8-seed sweep, 150-bot churn+takedown 10-minute campaign (CI gate)",
     [] { return CampaignGrid::seed_sweep(small8_base(), 100, 8); }},
    {"sweep8",
     "8-seed sweep, 1500-bot churn+takedown hour "
     "(examples/campaign_grid.cpp)",
     [] { return CampaignGrid::seed_sweep(sweep8_base(), 0xA0, 8); }},
};

CampaignGrid named_grid(const std::string& name) {
  for (const NamedGrid& g : kGrids)
    if (name == g.name) return g.build();
  throw std::invalid_argument("unknown grid '" + name +
                              "' (try --list-grids)");
}

/// `--cells 0,3:1,5` — cell indices with an optional `:attempt` suffix
/// (attempt 0 when omitted; only FaultPlan matching consumes it).
std::vector<CellAssignment> parse_cells(const std::string& text) {
  std::vector<CellAssignment> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(',', pos), text.size());
    const std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    CellAssignment a;
    const std::size_t colon = token.find(':');
    a.cell_index = std::stoull(token.substr(0, colon));
    if (colon != std::string::npos)
      a.attempt = std::stoull(token.substr(colon + 1));
    out.push_back(a);
  }
  return out;
}

int usage(std::FILE* out) {
  std::fprintf(out,
               "gridworker — crash-tolerant multi-process campaign grids\n"
               "\n"
               "  gridworker --grid NAME --results-dir DIR --coordinate\n"
               "      [--workers N] [--max-attempts K] [--timeout SEC]\n"
               "      [--backoff-base SEC] [--backoff-max SEC]"
               " [--faults PLAN]\n"
               "  gridworker --grid NAME --results-dir DIR --worker\n"
               "      --cells 0,3:1,5 [--faults PLAN]\n"
               "  gridworker --show-report --results-dir DIR\n"
               "  gridworker --list-grids\n"
               "\n"
               "Faults (kind@cell:attempt, ';'-separated; e.g."
               " 'crash@2:0;hang@5:1')\n"
               "default from $ONION_GRID_FAULTS when --faults is absent.\n");
  return out == stderr ? 2 : 0;
}

void print_report(const std::string& grid_name, const GridReport& report) {
  std::printf("grid: %s\n", grid_name.c_str());
  std::printf("cells: %zu\n", report.cells.size());
  std::printf("completed: %zu\n",
              report.cells.size() - report.failed_cells.size());
  std::printf("failed: %zu\n", report.failed_cells.size());
  std::printf("retries: %llu\n",
              static_cast<unsigned long long>(report.retries));
  std::printf("resumed: %llu\n",
              static_cast<unsigned long long>(report.resumed_cells));
  std::printf("workers: %llu\n",
              static_cast<unsigned long long>(report.threads_used));
  for (const FailedCell& f : report.failed_cells)
    std::printf("quarantined: cell %llu (%s, seed %llu) after %llu "
                "attempts: %s\n",
                static_cast<unsigned long long>(f.cell_index),
                f.label.c_str(),
                static_cast<unsigned long long>(f.seed),
                static_cast<unsigned long long>(f.attempts),
                f.error.c_str());
  std::printf("combined_fingerprint: %s\n",
              report.combined_fingerprint.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string grid_name;
  std::string results_dir;
  std::string cells_text;
  std::string faults_text;
  bool have_faults_flag = false;
  bool coordinate = false;
  bool worker = false;
  bool show_report = false;
  GridCoordinatorConfig config;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc)
          throw std::invalid_argument(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--grid") grid_name = value();
      else if (arg == "--results-dir") results_dir = value();
      else if (arg == "--coordinate") coordinate = true;
      else if (arg == "--worker") worker = true;
      else if (arg == "--show-report") show_report = true;
      else if (arg == "--cells") cells_text = value();
      else if (arg == "--workers") config.workers = std::stoull(value());
      else if (arg == "--max-attempts")
        config.max_attempts = std::stoull(value());
      else if (arg == "--timeout")
        config.cell_timeout_seconds = std::stod(value());
      else if (arg == "--backoff-base")
        config.backoff_base_seconds = std::stod(value());
      else if (arg == "--backoff-max")
        config.backoff_max_seconds = std::stod(value());
      else if (arg == "--faults") {
        faults_text = value();
        have_faults_flag = true;
      } else if (arg == "--list-grids") {
        for (const NamedGrid& g : kGrids)
          std::printf("%-8s %s\n", g.name, g.description);
        return 0;
      } else if (arg == "--help" || arg == "-h") {
        return usage(stdout);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        return usage(stderr);
      }
    }

    if (show_report) {
      if (results_dir.empty()) return usage(stderr);
      const GridReport report = wire::decode_grid_report(
          read_file_bytes(results_dir + "/grid_report.frame"));
      print_report("(from grid_report.frame)", report);
      return report.failed_cells.empty() ? 0 : 1;
    }

    if (grid_name.empty() || results_dir.empty() ||
        coordinate == worker)  // exactly one role
      return usage(stderr);

    if (!have_faults_flag) {
      const char* env = std::getenv("ONION_GRID_FAULTS");
      if (env != nullptr) faults_text = env;
    }
    config.faults = FaultPlan::parse(faults_text);
    config.results_dir = results_dir;

    const CampaignGrid grid = named_grid(grid_name);

    if (worker) {
      const std::vector<CellAssignment> assignments =
          parse_cells(cells_text);
      if (assignments.empty()) {
        std::fprintf(stderr, "--worker needs a non-empty --cells list\n");
        return 2;
      }
      run_worker_cells(grid, assignments, results_dir, config.faults);
      std::printf("wrote %zu cell frame(s) into %s\n", assignments.size(),
                  results_dir.c_str());
      return 0;
    }

    GridCoordinator coordinator(grid, config);
    const GridReport report = coordinator.run();
    // The merged report is itself a resumable artifact: decode it later
    // with --show-report (or any wire consumer) without re-running.
    write_file_atomic(results_dir + "/grid_report.frame",
                      wire::encode_grid_report(report));
    print_report(grid_name, report);
    return report.failed_cells.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gridworker: %s\n", e.what());
    return 2;
  }
}
