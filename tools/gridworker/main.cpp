// gridworker — the multi-process grid CLI.
//
// Campaign grids (--grid NAME) simulate cells from scratch; replay
// grids (--replay-grid) score recorded trace files (--trace, one per
// campaign) through detection::ReplayGrid cells. Both run over the same
// results-directory file transport and fault-tolerance machinery:
//
//   --worker       run an assigned cell subset and write each result as
//                  an atomically-published wire frame (the multi-host
//                  building block: any scheduler can fan shards of
//                  --cells across machines sharing a directory)
//   --coordinate   fork workers locally, enforce per-cell timeouts,
//                  retry with bounded backoff, quarantine permanent
//                  failures, resume over already-valid frames, and
//                  merge everything into one report frame
//   --merge        (replay only) fold whatever valid frames a results
//                  directory holds into a report without executing
//                  anything — the finish step for hand-sharded runs
//   --record-trace record one named-grid cell's campaign to a trace
//                  file workers can share
//
// Merged fingerprints are invariant to worker count, partition shape,
// and retry history, so CI golden-gates crash-injected multi-worker
// runs against the single-process digests (tests/goldens/grid_small8.txt
// and tests/goldens/replay_grid_small.txt).
//
//   ./build/tools/gridworker/gridworker --grid small8 --coordinate
//       --workers 4 --faults 'crash@2:0' --results-dir /tmp/grid
//   ./build/tools/gridworker/gridworker --record-trace /tmp/c0.otrace
//       --grid small8 --cell 0
//   ./build/tools/gridworker/gridworker --replay-grid --coordinate
//       --trace /tmp/c0.otrace --replay-seeds 1,2,3,4 --workers 4
//       --results-dir /tmp/replay
//
// Scripted faults come from --faults or the ONION_GRID_FAULTS env var
// (flag wins): `crash@2:0;hang@5:1;corrupt@7:0` = kind@cell:attempt.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fileio.hpp"
#include "detection/replay_proc.hpp"
#include "scenario/engine.hpp"
#include "scenario/runner.hpp"
#include "scenario/trace_io.hpp"
#include "scenario/wire.hpp"
#include "tools/gridworker/cli.hpp"

using namespace onion;
using namespace onion::scenario;

namespace {

ScenarioSpec small8_base() {
  ScenarioSpec spec;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

ScenarioSpec sweep8_base() {
  ScenarioSpec spec;
  spec.initial_size = 1500;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 150.0;
  spec.churn.leaves_per_hour = 150.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 300.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

struct NamedGrid {
  const char* name;
  const char* description;
  CampaignGrid (*build)();
};

const NamedGrid kGrids[] = {
    {"small8",
     "8-seed sweep, 150-bot churn+takedown 10-minute campaign (CI gate)",
     [] { return CampaignGrid::seed_sweep(small8_base(), 100, 8); }},
    {"sweep8",
     "8-seed sweep, 1500-bot churn+takedown hour "
     "(examples/campaign_grid.cpp)",
     [] { return CampaignGrid::seed_sweep(sweep8_base(), 0xA0, 8); }},
};

CampaignGrid named_grid(const std::string& name) {
  for (const NamedGrid& g : kGrids)
    if (name == g.name) return g.build();
  throw gridcli::CliError("unknown grid '" + name + "' (try --list-grids)");
}

int usage(std::FILE* out) {
  std::fprintf(
      out,
      "gridworker — crash-tolerant multi-process grids\n"
      "\n"
      "campaign grids (simulate cells from scratch):\n"
      "  gridworker --grid NAME --results-dir DIR --coordinate\n"
      "      [--workers N] [--max-attempts K] [--timeout SEC]\n"
      "      [--backoff-base SEC] [--backoff-max SEC] [--faults PLAN]\n"
      "  gridworker --grid NAME --results-dir DIR --worker\n"
      "      --cells 0,3:1,5 [--faults PLAN]\n"
      "\n"
      "replay grids (score recorded traces; cells are campaign x seed):\n"
      "  gridworker --record-trace FILE --grid NAME [--cell N]\n"
      "  gridworker --replay-grid --coordinate --trace FILE...\n"
      "      [--replay-seeds 1,2,3,4] --results-dir DIR [--workers N] ...\n"
      "  gridworker --replay-grid --worker --trace FILE...\n"
      "      --cells 0,2 --results-dir DIR [--faults PLAN]\n"
      "  gridworker --replay-grid --merge --trace FILE... --results-dir DIR\n"
      "\n"
      "  gridworker --show-report [--replay-grid] --results-dir DIR\n"
      "  gridworker --list-grids\n"
      "\n"
      "Faults (kind@cell:attempt, ';'-separated; e.g. 'crash@2:0;hang@5:1')\n"
      "default from $ONION_GRID_FAULTS when --faults is absent.\n");
  return out == stderr ? 2 : 0;
}

void print_report(const std::string& grid_name, const GridReport& report) {
  std::printf("grid: %s\n", grid_name.c_str());
  std::printf("cells: %zu\n", report.cells.size());
  std::printf("completed: %zu\n",
              report.cells.size() - report.failed_cells.size());
  std::printf("failed: %zu\n", report.failed_cells.size());
  std::printf("retries: %llu\n",
              static_cast<unsigned long long>(report.retries));
  std::printf("resumed: %llu\n",
              static_cast<unsigned long long>(report.resumed_cells));
  std::printf("workers: %llu\n",
              static_cast<unsigned long long>(report.threads_used));
  for (const FailedCell& f : report.failed_cells)
    std::printf("quarantined: cell %llu (%s, seed %llu) after %llu "
                "attempts: %s\n",
                static_cast<unsigned long long>(f.cell_index),
                f.label.c_str(),
                static_cast<unsigned long long>(f.seed),
                static_cast<unsigned long long>(f.attempts),
                f.error.c_str());
  std::printf("combined_fingerprint: %s\n",
              report.combined_fingerprint.c_str());
}

/// `cell_total` = the grid's cell count, or 0 when unknown
/// (--show-report decodes a frame without knowing the grid shape).
void print_replay_report(const detection::ReplayGridReport& report,
                         std::size_t cell_total) {
  if (cell_total > 0) {
    std::printf("replay_cells: %zu\n", cell_total);
    std::printf("completed: %zu\n", cell_total - report.failed_cells.size());
  }
  std::printf("failed: %zu\n", report.failed_cells.size());
  std::printf("retries: %llu\n",
              static_cast<unsigned long long>(report.retries));
  std::printf("resumed: %llu\n",
              static_cast<unsigned long long>(report.resumed_cells));
  std::printf("workers: %llu\n",
              static_cast<unsigned long long>(report.threads_used));
  for (const FailedCell& f : report.failed_cells)
    std::printf("quarantined: cell %llu (%s) after %llu attempts: %s\n",
                static_cast<unsigned long long>(f.cell_index),
                f.label.c_str(),
                static_cast<unsigned long long>(f.attempts),
                f.error.c_str());
  std::printf("points: %zu\n", report.points.size());
  std::printf("replay_grid_fingerprint: %s\n", report.fingerprint.c_str());
}

int run_record_trace(const gridcli::Options& options) {
  const CampaignGrid grid = named_grid(options.grid_name);
  if (options.record_cell >= grid.size())
    throw gridcli::CliError("--cell " + std::to_string(options.record_cell) +
                            " of a " + std::to_string(grid.size()) +
                            "-cell grid");
  const GridCell& cell = grid.cells()[options.record_cell];
  trace_io::TraceWriter writer(options.record_trace_path);
  CampaignEngine engine(cell.spec, writer, &writer);
  engine.run();
  writer.finish();
  std::printf("recorded cell %llu (%s) -> %s\n",
              static_cast<unsigned long long>(options.record_cell),
              cell.label.c_str(), options.record_trace_path.c_str());
  std::printf("events: %llu\nsnapshots: %llu\nchunks: %llu\n",
              static_cast<unsigned long long>(writer.event_count()),
              static_cast<unsigned long long>(writer.snapshot_count()),
              static_cast<unsigned long long>(writer.chunk_count()));
  std::printf("trace_event_fingerprint: %s\n", writer.fingerprint().c_str());
  return 0;
}

int run_replay_mode(const gridcli::Options& options) {
  detection::ReplayGridConfig grid_config;
  if (!options.replay_seeds.empty())
    grid_config.replay_seeds = options.replay_seeds;
  const detection::ReplayGrid grid(grid_config);

  if (options.role == gridcli::Role::kMerge) {
    const detection::ReplayGridReport report = detection::merge_replay_frames(
        grid, options.traces.size(), options.results_dir);
    write_file_atomic(options.results_dir + "/replay_report.frame",
                      wire::encode_replay_report(report));
    print_replay_report(report, grid.cell_count(options.traces.size()));
    return report.failed_cells.empty() ? 0 : 1;
  }

  // Worker and coordinator both stream the shared trace files; each
  // reader validates header+footer at open, so a truncated copy fails
  // here, fast, instead of inside a forked worker.
  std::vector<std::unique_ptr<trace_io::TraceReader>> readers;
  std::vector<const TraceSource*> campaigns;
  for (const std::string& path : options.traces) {
    readers.push_back(std::make_unique<trace_io::TraceReader>(path));
    campaigns.push_back(readers.back().get());
  }
  const std::size_t cell_total = grid.cell_count(campaigns.size());

  if (options.role == gridcli::Role::kWorker) {
    for (const CellAssignment& a : options.cells)
      if (a.cell_index >= cell_total)
        throw gridcli::CliError("--cells: cell " +
                                std::to_string(a.cell_index) + " of a " +
                                std::to_string(cell_total) +
                                "-cell replay grid");
    detection::run_replay_worker_cells(grid, campaigns, options.cells,
                                       options.results_dir,
                                       options.config.faults);
    std::printf("wrote %zu replay cell frame(s) into %s\n",
                options.cells.size(), options.results_dir.c_str());
    return 0;
  }

  detection::ReplayGridCoordinator coordinator(grid, campaigns,
                                               options.config);
  const detection::ReplayGridReport report = coordinator.run();
  write_file_atomic(options.results_dir + "/replay_report.frame",
                    wire::encode_replay_report(report));
  print_replay_report(report, cell_total);
  return report.failed_cells.empty() ? 0 : 1;
}

int run(const gridcli::Options& options) {
  switch (options.role) {
    case gridcli::Role::kHelp:
      return usage(stdout);
    case gridcli::Role::kListGrids:
      for (const NamedGrid& g : kGrids)
        std::printf("%-8s %s\n", g.name, g.description);
      return 0;
    case gridcli::Role::kShowReport: {
      if (options.replay_grid) {
        const detection::ReplayGridReport report = wire::decode_replay_report(
            read_file_bytes(options.results_dir + "/replay_report.frame"));
        std::printf("report: replay_report.frame\n");
        print_replay_report(report, /*cell_total=*/0);
        return report.failed_cells.empty() ? 0 : 1;
      }
      const GridReport report = wire::decode_grid_report(
          read_file_bytes(options.results_dir + "/grid_report.frame"));
      print_report("(from grid_report.frame)", report);
      return report.failed_cells.empty() ? 0 : 1;
    }
    case gridcli::Role::kRecordTrace:
      return run_record_trace(options);
    default:
      break;
  }

  if (options.replay_grid) return run_replay_mode(options);

  const CampaignGrid grid = named_grid(options.grid_name);

  if (options.role == gridcli::Role::kWorker) {
    for (const CellAssignment& a : options.cells)
      if (a.cell_index >= grid.size())
        throw gridcli::CliError("--cells: cell " +
                                std::to_string(a.cell_index) + " of a " +
                                std::to_string(grid.size()) + "-cell grid");
    run_worker_cells(grid, options.cells, options.results_dir,
                     options.config.faults);
    std::printf("wrote %zu cell frame(s) into %s\n", options.cells.size(),
                options.results_dir.c_str());
    return 0;
  }

  GridCoordinator coordinator(grid, options.config);
  const GridReport report = coordinator.run();
  // The merged report is itself a resumable artifact: decode it later
  // with --show-report (or any wire consumer) without re-running.
  write_file_atomic(options.results_dir + "/grid_report.frame",
                    wire::encode_grid_report(report));
  print_report(options.grid_name, report);
  return report.failed_cells.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const gridcli::Options options = gridcli::parse_args(
        std::vector<std::string>(argv + 1, argv + argc),
        std::getenv("ONION_GRID_FAULTS"));
    for (const std::string& w : options.warnings)
      std::fprintf(stderr, "gridworker: warning: %s\n", w.c_str());
    return run(options);
  } catch (const gridcli::CliError& e) {
    std::fprintf(stderr, "gridworker: %s (try --help)\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gridworker: %s\n", e.what());
    return 2;
  }
}
