// Crash-tolerant multi-process grids, end to end: the same 6-cell
// campaign grid runs (1) in-process, (2) across forked workers with a
// scripted permanent crash — the poisoned cell quarantines while every
// other cell completes and merges — and (3) again over the same results
// directory with the fault gone: the valid frames resume untouched, only
// the quarantined cell re-runs, and the repaired merge equals the
// in-process fingerprint exactly.
//
//   cmake --build build --target example_grid_recovery
//   ./build/example_grid_recovery
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "scenario/runner.hpp"

using namespace onion;
using namespace onion::scenario;

namespace {

ScenarioSpec base_spec() {
  ScenarioSpec spec;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

void summarize(const char* title, const GridReport& report) {
  std::printf("%s\n", title);
  std::printf("  completed %zu/%zu cells, %llu retries, %llu resumed\n",
              report.cells.size() - report.failed_cells.size(),
              report.cells.size(),
              static_cast<unsigned long long>(report.retries),
              static_cast<unsigned long long>(report.resumed_cells));
  for (const FailedCell& f : report.failed_cells)
    std::printf("  quarantined: cell %llu (%s) after %llu attempts: %s\n",
                static_cast<unsigned long long>(f.cell_index),
                f.label.c_str(),
                static_cast<unsigned long long>(f.attempts), f.error.c_str());
  std::printf("  combined fingerprint: %.24s…\n\n",
              report.combined_fingerprint.c_str());
}

}  // namespace

int main() {
  const CampaignGrid grid = CampaignGrid::seed_sweep(base_spec(), 100, 6);
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("grid_recovery_" + std::to_string(::getpid()))).string();

  std::printf("=== Grid recovery: quarantine, resume, repair ===\n\n");

  const GridReport in_process = grid.run();
  summarize("[1] in-process baseline", in_process);

  // Cell 3 crashes on every allowed attempt: after max_attempts it is
  // quarantined, the grid degrades gracefully, and the merge covers the
  // five completed cells.
  GridCoordinatorConfig config;
  config.results_dir = dir;
  config.workers = 3;
  config.backoff_base_seconds = 0.01;
  config.backoff_max_seconds = 0.1;
  config.faults = FaultPlan::parse("crash@3:0;crash@3:1;crash@3:2");
  const GridReport degraded = GridCoordinator(grid, config).run();
  summarize("[2] forked workers, cell 3 crashing on every attempt",
            degraded);

  // Same directory, fault cleared: the five valid frames are resumed
  // (checkpoint, not re-run) and only cell 3 executes. The repaired
  // merge equals the in-process digest — the fingerprint is invariant
  // to worker count, partition, retry history, and the recovery path.
  config.faults = FaultPlan();
  const GridReport repaired = GridCoordinator(grid, config).run();
  summarize("[3] resumed over the same directory, fault cleared",
            repaired);

  const bool match =
      repaired.combined_fingerprint == in_process.combined_fingerprint;
  std::printf("repaired merge %s the in-process fingerprint\n",
              match ? "MATCHES" : "DIVERGES FROM");
  std::filesystem::remove_all(dir);
  return match && repaired.failed_cells.empty() ? 0 : 1;
}
