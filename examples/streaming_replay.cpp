// Streaming trace walkthrough: the same campaign → telemetry → ROC
// pipeline as examples/detection_replay.cpp, but the campaign never
// lives in memory — it spools to disk through trace_io::TraceWriter as
// it runs, streams back through trace_io::TraceReader (O(window)
// memory), replays through the TraceSource API byte-identically to the
// in-memory path, and sweeps a replay-level grid (campaign ×
// replay-seed × detector-threshold cells) with per-family ground truth.
//
// Every fingerprint line reproduces byte-for-byte on re-run; CI's
// golden guard diffs them against tests/goldens/streaming_replay.txt.
// The trace_file_bytes / replay_rss lines feed the Release job summary
// (RSS is environment-dependent, so it is reported, never gated).
#include <sys/resource.h>

#include <cstdio>
#include <string>

#include "detection/replay.hpp"
#include "detection/replay_grid.hpp"
#include "detection/roc.hpp"
#include "detection/telemetry.hpp"
#include "scenario/engine.hpp"
#include "scenario/trace_io.hpp"

namespace {

std::size_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss);
}

}  // namespace

int main() {
  using namespace onion;
  using namespace onion::detection;
  using namespace onion::scenario;

  std::printf(
      "=== Streaming campaign trace -> O(window) replay -> grid ===\n\n");

  // --- 1. record straight to disk --------------------------------------
  ScenarioSpec spec;
  spec.seed = 0x57e4;
  spec.initial_size = 400;
  spec.degree = 8;
  spec.horizon = 2 * kHour;
  spec.churn.joins_per_hour = 120.0;
  spec.churn.leaves_per_hour = 120.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 20 * kMinute;
  takedown.stop = kHour;
  takedown.takedowns_per_hour = 90.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 10 * kMinute;

  const std::string path = "streaming_replay.otrace";
  {
    // A small chunk bound so the walkthrough's file exercises the
    // multi-chunk framing (the default is 8192 records per chunk).
    trace_io::TraceWriter writer(
        path, trace_io::TraceWriterConfig{.chunk_records = 512});
    CampaignEngine(spec, writer, &writer).run();
    writer.finish();
  }

  // An in-memory recording of the same seeds, for the differentials.
  CampaignTrace campaign;
  CampaignEngine(spec, campaign, &campaign).run();

  const trace_io::TraceReader reader(path);
  std::printf(
      "Recorded %llu events + %llu snapshots into %zu chunk frames.\n",
      static_cast<unsigned long long>(reader.event_count()),
      static_cast<unsigned long long>(reader.snapshot_count()),
      static_cast<std::size_t>(reader.chunk_count()));
  std::printf("trace_file_bytes: %zu\n", reader.file_bytes());
  std::printf("trace_event_fingerprint: %s\n",
              reader.fingerprint().c_str());
  std::printf("in_memory_fingerprint_matches: %s\n",
              reader.fingerprint() == campaign.fingerprint() ? "yes"
                                                             : "NO");

  // --- 2. replay through the TraceSource API ---------------------------
  ReplayConfig rc;
  rc.seed = 0xcab1e;
  rc.benign_web = 150;
  rc.benign_tor = 25;
  rc.centralized_bots = 30;
  rc.dga_bots = 30;
  rc.fastflux_bots = 30;
  rc.p2p_bots = 30;

  const std::size_t rss_before_kb = peak_rss_kb();
  const ReplayResult streamed =
      replay_trace(static_cast<const TraceSource&>(reader), rc);
  const ReplayResult in_memory = replay_trace(campaign, rc);
  std::printf(
      "\nReplayed %zu monitored hosts, %zu flows through the streamed\n"
      "source; byte-identical to the in-memory path: %s\n",
      streamed.trace.hosts.size(), streamed.trace.flows.size(),
      fingerprint(streamed.trace) == fingerprint(in_memory.trace) ? "yes"
                                                                  : "NO");
  std::printf("streamed_replay_fingerprint: %s\n",
              fingerprint(streamed.trace).c_str());

  // --- 3. the family-resolved ROC sweep --------------------------------
  const GroundTruth truth = replay_ground_truth(streamed);
  const RocReport roc = RocSweep().run(streamed.trace, truth);
  std::printf(
      "\nFamily-resolved ROC sweep: %zu operating points, %zu named\n"
      "populations per point (the aggregate columns keep the legacy\n"
      "byte encoding; family columns ride along).\n",
      roc.points.size(), truth.populations.size());
  std::printf("roc_family_fingerprint: %s\n", roc.fingerprint.c_str());

  // --- 4. the replay-level grid ----------------------------------------
  ReplayGridConfig grid_config;
  grid_config.replay = rc;
  grid_config.replay_seeds = {1, 2};
  grid_config.flow_size_cv = {0.25, 0.5};
  grid_config.flow_gap_cv = {0.45, 1.0};
  grid_config.tor_min_flows = {1, 10};
  const ReplayGridReport grid = ReplayGrid(grid_config).run(reader);
  const std::size_t rss_after_kb = peak_rss_kb();

  std::printf(
      "\nReplay grid: %zu points (%zu seeds x %zu thresholds) streamed\n"
      "from disk on %zu threads — each cell scores every threshold in\n"
      "one O(window) pass, no TrafficTrace ever materializes.\n",
      grid.points.size(), grid_config.replay_seeds.size(),
      ReplayGrid(grid_config).points_per_cell(), grid.threads_used);
  std::printf("replay_grid_fingerprint: %s\n", grid.fingerprint.c_str());
  std::printf("replay_rss_delta_kb: %zu\n", rss_after_kb - rss_before_kb);

  // The tor-flagger row the paper's argument turns on, with the
  // per-family resolution the aggregate sweep cannot show.
  for (const ReplayGridPoint& p : grid.points)
    if (p.detector == "tor-flagger" && p.replay_seed == 1 &&
        p.params == "min_flows=1") {
      std::printf(
          "\ntor-flagger (seed 1, min_flows=1): TPR %.2f, FPR %.2f —\n",
          p.tpr, p.fpr);
      for (const RocFamilyCount& f : p.families)
        std::printf("  %-12s %4zu / %4zu flagged\n", f.family.c_str(),
                    f.flagged, f.population);
      std::printf(
          "the OnionBot and benign-Tor rows rise together: flagging\n"
          "Tor-bound beacons means flagging Tor (paper SS VI).\n");
    }

  std::remove(path.c_str());
  return 0;
}
