// Figure 1 walkthrough: the life of a Tor hidden service in the
// simulator — key generation, .onion naming, descriptor publication to
// the HSDir ring (Figure 2), and a client's 7-step rendezvous, narrated.
//
//   $ ./hidden_service_demo
#include <cstdio>

#include "common/bytes.hpp"
#include "crypto/simrsa.hpp"
#include "sim/simulator.hpp"
#include "tor/descriptor.hpp"
#include "tor/tor_network.hpp"

using namespace onion;
using namespace onion::tor;

int main() {
  sim::Simulator sim;
  TorNetwork tor(sim, TorConfig{.num_relays = 30}, /*seed=*/7);
  std::printf("Tor network: %zu relays, %zu HSDirs in the consensus\n",
              tor.num_relays(), tor.consensus().hsdirs().size());

  // Bob generates a service identity; the .onion hostname is the base32
  // of the first 80 bits of SHA-1(public key).
  Rng rng(1);
  const crypto::RsaKeyPair bob_key = crypto::rsa_generate(rng, 1024);
  const EndpointId bob = tor.create_endpoint();
  const OnionAddress addr = tor.publish_service(
      bob, bob_key, [](BytesView request, const OnionAddress&) -> Bytes {
        std::printf("  [bob] request arrived: \"%s\"\n",
                    to_string(request).c_str());
        return to_bytes("hello from the hidden service");
      });
  std::printf("\nstep 1-2: Bob picked intro points and published "
              "descriptors for\n  %s\n",
              addr.hostname().c_str());

  // Where did the descriptors go? The HSDir ring positions follow the
  // descriptor IDs (Figure 2).
  const auto responsible = tor.responsible_hsdirs_now(addr);
  const auto ids = descriptor_ids_at(addr, sim.now());
  for (std::size_t replica = 0; replica < responsible.size(); ++replica) {
    std::printf("  replica %zu: descriptor-id %s... -> HSDirs ", replica,
                to_hex(BytesView(ids[replica].data(), 4)).c_str());
    for (const RelayId r : responsible[replica]) std::printf("%u ", r);
    std::printf("\n");
  }

  // Alice connects: fetch descriptor (step 3), set up a rendezvous
  // point (step 4), introduce (steps 5-6), join (step 7), then talk.
  const EndpointId alice = tor.create_endpoint();
  std::printf("\nsteps 3-7: Alice connects to %s\n",
              addr.hostname().c_str());
  ConnectResult outcome;
  tor.connect_and_send(alice, addr, to_bytes("GET /index"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();

  std::printf("  [alice] reply: \"%s\" (virtual time %.1f s)\n",
              to_string(outcome.reply).c_str(),
              static_cast<double>(outcome.completed_at) / kSecond);

  const TorStats& stats = tor.stats();
  std::printf(
      "\naccounting: %llu circuits built, %llu cells forwarded, "
      "%llu descriptor fetches\n",
      static_cast<unsigned long long>(stats.circuits_built),
      static_cast<unsigned long long>(stats.cells_forwarded),
      static_cast<unsigned long long>(stats.descriptor_fetch_attempts));
  std::printf("mean relayed-cell entropy: %.2f bits/byte — the relays "
              "saw only noise\n",
              tor.mean_relayed_cell_entropy());
  return 0;
}
