// Example: the paper's §IV-B bootstrap menu, exercised through the
// public API. A fresh infection must find the botnet; this walks the
// hardcoded-subset handout, a hotlist directory (including a server
// seizure mid-way), the public out-of-band store, and prints why random
// probing of the .onion space is not on the menu.
//
// Run: build/examples/bootstrap_strategies
#include <cstdio>

#include "core/bootstrap.hpp"
#include "core/botnet.hpp"
#include "tor/address_cost.hpp"

using namespace onion;
using namespace onion::core;

int main() {
  Botnet::Params params;
  params.num_bots = 20;
  params.initial_degree = 4;
  params.seed = 0xb0075;
  params.tor.num_relays = 20;
  params.bot.dmin = 3;
  Botnet net(params);

  std::printf("=== OnionBots example: bootstrap strategies (SS IV-B) ===\n\n");

  // --- 1. hardcoded subset -------------------------------------------
  Rng rng(1);
  LeadList infector_peers;
  for (const auto& [addr, info] : net.bot(0).peers())
    infector_peers.push_back(addr);
  const LeadList handout = hardcoded_subset(infector_peers, 0.5, rng);
  std::printf("[hardcoded] infector shares %zu of its %zu peers (p=0.5)\n",
              handout.size(), infector_peers.size());
  Bot& recruit1 = net.infect_new_bot();
  recruit1.rally(handout);
  net.run_for(10 * kMinute);
  std::printf("[hardcoded] recruit rallied to degree %zu (dmin=%zu)\n\n",
              recruit1.degree(), params.bot.dmin);

  // --- 2. hotlist -------------------------------------------------------
  HotlistDirectory dir({.servers = 4, .window = 32, .servers_per_bot = 2},
                       rng);
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    dir.announce(net.bot(i).address(), dir.assign_subset());
  const auto subset = dir.assign_subset();
  std::printf("[hotlist] new bot holds servers {%zu, %zu}; query returns "
              "%zu leads\n",
              subset[0], subset[1], dir.query(subset).size());
  const LeadList seized = dir.seize(subset[0]);
  std::printf("[hotlist] authorities seize server %zu: harvest %zu "
              "addresses, bots still get %zu leads from the rest\n",
              subset[0], seized.size(), dir.query(subset).size());
  Bot& recruit2 = net.infect_new_bot();
  recruit2.rally(dir.query(subset));
  net.run_for(10 * kMinute);
  std::printf("[hotlist] recruit rallied to degree %zu despite the "
              "seizure\n\n",
              recruit2.degree());

  // --- 4. out-of-band store ---------------------------------------------
  OutOfBandStore store;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    store.announce(/*period key=*/42, net.bot(i).address());
  std::vector<tor::OnionAddress> population;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    population.push_back(net.bot(i).address());
  std::printf("[out-of-band] store serves %zu leads to anyone — exposure "
              "to a crawler: %.0f%%\n\n",
              store.lookup(42).size(),
              100.0 * exposure_fraction(store.lookup(42), population));

  // --- 3. random probing: the non-option ---------------------------------
  std::printf(
      "[random probing] expected probes to find one of 1e6 bots: 2^80/1e6"
      " = %.2e\n"
      "[random probing] at 1e6 probes/s that is %.0f years; a vanity\n"
      "8-char prefix alone costs %.0f days (Shallot calibration)\n",
      tor::expected_probes_to_find_bot(1e6),
      tor::expected_years_to_find_bot(1e6, 1e6),
      tor::vanity_prefix_days(8));
  return 0;
}
