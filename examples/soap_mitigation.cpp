// Figure 7 walkthrough: SOAP — the Sybil Onion Attack Protocol — against
// one target bot, step by step, then the full campaign that neutralizes
// the botnet. This is the paper's *defensive* contribution: it turns the
// botnet's own anonymity against it.
//
//   $ ./soap_mitigation
#include <cstdio>

#include "core/overlay.hpp"
#include "mitigation/soap.hpp"

using namespace onion;
using core::OverlayConfig;
using core::OverlayNetwork;
using NodeId = OverlayNetwork::NodeId;

namespace {

void describe_target(const OverlayNetwork& net, NodeId target) {
  std::printf("  target %u peers:", target);
  for (const NodeId p : net.neighbors(target))
    std::printf(" %u%s", p, net.honest(p) ? "" : "(clone)");
  std::printf("  [contained: %s]\n",
              net.contained(target) ? "YES" : "no");
}

}  // namespace

int main() {
  Rng rng(3);
  OverlayConfig cfg;
  cfg.dmin = 4;
  cfg.dmax = 4;
  OverlayNetwork net = OverlayNetwork::random_regular(20, 4, cfg, rng);

  std::printf("=== Figure 7 walkthrough: soaping one bot ===\n");
  const NodeId target = 5;
  std::printf("step 1: botnet operating normally\n");
  describe_target(net, target);

  std::printf(
      "\nstep 2: the defender captured a bot (reverse engineering /\n"
      "honeypot) and knows the target's .onion address\n");

  int step = 3;
  while (!net.contained(target)) {
    // One clone declares a tiny degree and asks to peer; the target's
    // own acceptance rule evicts its highest-degree benign neighbor.
    const NodeId clone = net.add_node(/*honest=*/false, /*declared=*/2);
    const auto decision = net.request_peering(clone, target);
    std::printf("\nstep %d: clone %u requests peering (declares degree 2) "
                "-> %s\n",
                step++, clone,
                decision == core::PeerDecision::AcceptedEvicted
                    ? "accepted, benign peer evicted"
                : decision == core::PeerDecision::AcceptedWithCapacity
                    ? "accepted (capacity)"
                    : "rejected");
    describe_target(net, target);
  }
  std::printf("\nstep 9: target ringed by clones — contained.\n");

  std::printf("\n=== full campaign against the remaining botnet ===\n");
  mitigation::SoapCampaign campaign(net, mitigation::SoapConfig{}, rng);
  campaign.capture(0);
  const auto timeline = campaign.run();
  std::printf("rounds=%zu clones=%zu contained=%zu/%zu honest_edges=%zu\n",
              campaign.rounds_run(), campaign.clones_created(),
              campaign.contained_count(), net.honest_nodes().size(),
              net.honest_edges());
  std::printf(
      "honest components: %zu (every bot isolated -> botnet neutralized)\n",
      net.honest_components());
  return 0;
}
