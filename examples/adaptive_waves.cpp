// Adaptive multi-wave walkthrough: a re-targeting attacker against a
// self-healing overlay whose healing must (or must not) pay for its own
// peering. One spec drives two runs that differ in exactly one defense
// bit — DefenseSpec::charge_healing — and the output shows the paper's
// Section VII-A trade-off in numbers: with proof-of-work and rate
// limiting enabled, charging DDSR death-repair measurably shifts the
// overlay's repair economics and how well it holds together.
//
//   churn    Pareto session lengths (heavy tail: many short-lived bots,
//            a long-lived core) with 400 joins/h.
//   waves    a three-wave plan: adaptive betweenness-ranked takedowns,
//            a degree-ranked wave, then a final betweenness wave —
//            10 min each, separated by 5-min quiet periods in which the
//            overlay heals undisturbed. The attacker re-surveys the
//            overlay every 2 simulated minutes (AdaptiveRefresh).
//   defense  rate limit 4 accepts/node/round, PoW base cost 0.5.
//
// Each run prints its snapshot-stream and event-log fingerprints; CI
// pins all four in tests/goldens/adaptive_waves.txt.
#include <cstdio>

#include "scenario/engine.hpp"

namespace {

using namespace onion;
using namespace onion::scenario;

ScenarioSpec waves_spec(bool charge_healing) {
  ScenarioSpec spec;
  spec.seed = 0xad4a;
  spec.initial_size = 3000;
  spec.degree = 10;
  spec.horizon = kHour;

  spec.churn.joins_per_hour = 400.0;
  spec.churn.session_leaves = true;
  spec.churn.session.model = SessionModel::Pareto;
  spec.churn.session.mean_hours = 1.0;
  spec.churn.session.pareto_alpha = 2.0;

  AttackWave wave;
  wave.duration = 10 * kMinute;
  wave.quiet_after = 5 * kMinute;
  wave.attack.kind = AttackKind::AdaptiveTakedown;
  wave.attack.takedowns_per_hour = 600.0;
  wave.attack.refresh_period = 2 * kMinute;
  wave.attack.betweenness_pivots = 32;

  spec.waves.start = 5 * kMinute;
  wave.attack.rank = RankMetric::SampledBetweenness;
  spec.waves.waves.push_back(wave);
  wave.attack.rank = RankMetric::Degree;
  spec.waves.waves.push_back(wave);
  wave.attack.rank = RankMetric::SampledBetweenness;
  wave.attack.takedowns_per_hour = 900.0;
  wave.quiet_after = 0;
  spec.waves.waves.push_back(wave);

  spec.defense.rate_limit_per_round = 4;
  // Flat-cost puzzles: the default escalator (pow_growth 2) compounds
  // into astronomically unreadable totals over an hour of healing.
  spec.defense.pow_base_cost = 0.5;
  spec.defense.pow_growth = 1.0;
  spec.defense.charge_healing = charge_healing;
  spec.metrics.period = 5 * kMinute;
  return spec;
}

struct RunReport {
  MetricsSnapshot end;
  CampaignCounters counters;
  core::DdsrStats ddsr;
  double honest_work = 0.0;
  double sybil_work = 0.0;
  std::vector<std::uint64_t> wave_takedowns;
  std::size_t wave_starts = 0;
  std::size_t refreshes = 0;
  std::size_t heal_requests = 0;
  std::string snapshot_fingerprint;
  std::string event_fingerprint;
};

RunReport run(bool charge_healing) {
  CampaignTrace trace;
  HashSink hash;
  FanoutSink fanout({&trace, &hash});
  CampaignEngine engine(waves_spec(charge_healing), fanout, &trace);
  RunReport report;
  report.end = engine.run();
  report.counters = engine.counters();
  report.ddsr = engine.ddsr_stats();
  report.honest_work = engine.overlay().honest_work_spent();
  report.sybil_work = engine.overlay().sybil_work_spent();
  report.wave_takedowns = engine.wave_takedowns();
  for (const CampaignEvent& e : trace.events()) {
    if (e.kind == TraceEventKind::WaveStart) ++report.wave_starts;
    if (e.kind == TraceEventKind::AdaptiveRefresh) ++report.refreshes;
    if (e.kind == TraceEventKind::HealPeering) ++report.heal_requests;
  }
  report.snapshot_fingerprint = hash.hex_digest();
  report.event_fingerprint = trace.fingerprint();
  return report;
}

void print_report(const char* label, const RunReport& r) {
  std::printf(
      "--- %s healing ---\n"
      "  waves started %zu, adaptive refreshes %zu\n"
      "  takedowns per wave:",
      label, r.wave_starts, r.refreshes);
  for (const std::uint64_t w : r.wave_takedowns)
    std::printf(" %llu", static_cast<unsigned long long>(w));
  std::printf(
      "  (total %llu; joins %llu, leaves %llu)\n"
      "  end state: %llu honest alive, components=%llu, "
      "largest fraction %.4f\n"
      "  repair economics: %llu repair + %llu prune + %llu refill edges\n"
      "    = %llu maintenance messages; %llu healing requests sent, "
      "%llu denied\n"
      "  proof-of-work paid: honest %.1f, sybil %.1f\n",
      static_cast<unsigned long long>(r.counters.takedowns),
      static_cast<unsigned long long>(r.counters.joins),
      static_cast<unsigned long long>(r.counters.leaves),
      static_cast<unsigned long long>(r.end.honest_alive),
      static_cast<unsigned long long>(r.end.components),
      r.end.largest_fraction,
      static_cast<unsigned long long>(r.ddsr.repair_edges_added),
      static_cast<unsigned long long>(r.ddsr.prune_edges_removed),
      static_cast<unsigned long long>(r.ddsr.refill_edges_added),
      static_cast<unsigned long long>(r.ddsr.maintenance_messages()),
      static_cast<unsigned long long>(r.heal_requests),
      static_cast<unsigned long long>(r.ddsr.heal_requests_denied),
      r.honest_work, r.sybil_work);
}

}  // namespace

int main() {
  std::printf(
      "=== Adaptive multi-wave takedown vs defense-consistent healing ===\n\n"
      "3000-bot overlay, Pareto session churn (mean 1 h, alpha 2),\n"
      "three adaptive takedown waves with 5-min healing gaps, rate limit\n"
      "4/node/round + proof-of-work. Two runs, one bit apart:\n"
      "charge_healing = false (DDSR repair mutates the graph for free)\n"
      "vs true (every repair/refill edge is a peering request the\n"
      "defenses can refuse).\n\n");

  const RunReport uncharged = run(false);
  print_report("uncharged", uncharged);
  std::printf("\n");
  const RunReport charged = run(true);
  print_report("charged", charged);

  const long long message_delta =
      static_cast<long long>(charged.ddsr.maintenance_messages()) -
      static_cast<long long>(uncharged.ddsr.maintenance_messages());
  std::printf(
      "\nThe one-bit ablation, measured:\n"
      "  maintenance messages %lld (%llu -> %llu): charged repair cannot\n"
      "  clique freely past the rate limit, so the overlay heals with\n"
      "  fewer, policed edges (%llu requests denied outright)\n"
      "  honest PoW %.1f -> %.1f: self-healing now pays the defense tax\n"
      "  largest-component fraction %.4f -> %.4f under the same attacker\n",
      message_delta,
      static_cast<unsigned long long>(uncharged.ddsr.maintenance_messages()),
      static_cast<unsigned long long>(charged.ddsr.maintenance_messages()),
      static_cast<unsigned long long>(charged.ddsr.heal_requests_denied),
      uncharged.honest_work, charged.honest_work,
      uncharged.end.largest_fraction, charged.end.largest_fraction);

  std::printf(
      "\nuncharged_fingerprint: %s\n"
      "uncharged_events: %s\n"
      "charged_fingerprint: %s\n"
      "charged_events: %s\n"
      "Equal spec + seed reproduce all four lines bit-for-bit;\n"
      "tests/goldens/adaptive_waves.txt pins them in CI.\n",
      uncharged.snapshot_fingerprint.c_str(),
      uncharged.event_fingerprint.c_str(),
      charged.snapshot_fingerprint.c_str(),
      charged.event_fingerprint.c_str());
  return 0;
}
