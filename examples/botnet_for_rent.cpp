// Botnet-for-rent walkthrough (paper §IV-E): Mallory (the botmaster)
// issues Trudy (the renter) a signed token — public key, expiry,
// command whitelist. Trudy drives the botnet herself within the
// contract, and the bots enforce every term cryptographically with no
// further involvement from Mallory.
//
//   $ ./botnet_for_rent
#include <cstdio>

#include "core/botnet.hpp"

using namespace onion;
using namespace onion::core;

int main() {
  Botnet::Params params;
  params.num_bots = 16;
  params.initial_degree = 4;
  params.tor.num_relays = 20;
  params.seed = 99;
  Botnet net(params);
  std::printf("botnet of %zu bots is up\n", net.num_bots());

  // Trudy generates her own key pair and pays Mallory (out of band —
  // the paper suggests bitcoin over a marketplace).
  Rng rng(7);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);

  // Mallory signs the rental contract: spam and compute only, 2 hours.
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 2 * kHour,
      {CommandType::Spam, CommandType::Compute});
  std::printf("token issued: expires at %llu min, whitelist = spam, "
              "compute\n",
              static_cast<unsigned long long>(token.expires_at / kMinute));

  // Trudy issues a whitelisted command: every bot verifies the chain
  // (master signed the token, the token admits the type, Trudy signed
  // the command) and executes.
  Command spam;
  spam.type = CommandType::Spam;
  spam.argument = "campaign-1";
  net.master().broadcast_rented(trudy, token, spam, 3);
  net.run_for(15 * kMinute);
  std::printf("spam (whitelisted):   executed by %zu/%zu bots\n",
              net.count_executed(CommandType::Spam), net.num_bots());

  // A DDoS is outside the whitelist: every bot refuses.
  Command ddos;
  ddos.type = CommandType::Ddos;
  ddos.argument = "victim.example";
  net.master().broadcast_rented(trudy, token, ddos, 3);
  net.run_for(15 * kMinute);
  std::printf("ddos (not whitelisted): executed by %zu bots\n",
              net.count_executed(CommandType::Ddos));

  // After the contract term, even whitelisted commands die.
  net.run_for(2 * kHour);
  Command late;
  late.type = CommandType::Compute;
  net.master().broadcast_rented(trudy, token, late, 3);
  net.run_for(15 * kMinute);
  std::printf("compute (after expiry): executed by %zu bots\n",
              net.count_executed(CommandType::Compute));

  std::printf(
      "\nthe rental contract is enforced by the bots themselves — no\n"
      "further involvement from the botmaster (paper Section IV-E).\n");
  return 0;
}
