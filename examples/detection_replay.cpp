// Detection replay walkthrough (paper Sections II and VI): one seeded
// scenario campaign — churn, a targeted takedown wave, a SOAP
// containment attempt — is recorded through the engine's event tap,
// replayed into the telemetry an on-path defender would have captured
// (OnionBot guard-cell stars, benign web + Tor background, and three
// co-resident legacy botnet families), and swept through every detector
// family's threshold grid.
//
// Everything below derives from the two seeds; every fingerprint line
// reproduces byte-for-byte on re-run. CI's golden-fingerprint guard
// diffs those lines against tests/goldens/detection_replay.txt, so a
// nondeterminism or behavior drift in scenario, replay, or detection
// fails the build.
#include <cstdio>

#include "detection/replay.hpp"
#include "detection/roc.hpp"
#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/tor_flagger.hpp"
#include "scenario/engine.hpp"

int main() {
  using namespace onion;
  using namespace onion::detection;
  using namespace onion::scenario;

  std::printf(
      "=== Campaign -> telemetry replay -> detector ROC sweep ===\n\n");

  // --- 1. the campaign --------------------------------------------------
  ScenarioSpec spec;
  spec.seed = 0x0de7ec7;
  spec.initial_size = 400;
  spec.degree = 8;
  spec.horizon = 2 * kHour;
  spec.churn.joins_per_hour = 120.0;
  spec.churn.leaves_per_hour = 120.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::TargetedTakedown;
  takedown.start = 20 * kMinute;
  takedown.stop = kHour;
  takedown.takedowns_per_hour = 60.0;
  spec.attacks.push_back(takedown);
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = kHour;
  soap.stop = 100 * kMinute;
  spec.attacks.push_back(soap);
  spec.metrics.period = 10 * kMinute;

  CampaignTrace campaign;
  HashSink hash;
  FanoutSink fanout({&campaign, &hash});
  CampaignEngine engine(spec, fanout, &campaign);
  engine.run();

  std::printf(
      "Campaign: %zu bots (degree %zu), %llu min; churn + targeted\n"
      "takedown [20,60) min + SOAP [60,100) min. Recorded %zu events,\n"
      "%zu snapshots; joins=%llu leaves=%llu takedowns=%llu.\n",
      spec.initial_size, spec.degree,
      static_cast<unsigned long long>(spec.horizon / kMinute),
      campaign.events().size(), campaign.snapshots().size(),
      static_cast<unsigned long long>(engine.counters().joins),
      static_cast<unsigned long long>(engine.counters().leaves),
      static_cast<unsigned long long>(engine.counters().takedowns));
  std::printf("campaign_fingerprint: %s\n", hash.hex_digest().c_str());
  std::printf("trace_event_fingerprint: %s\n",
              campaign.fingerprint().c_str());

  // --- 2. the replayed capture -----------------------------------------
  ReplayConfig rc;
  rc.seed = 0xcab1e;
  rc.benign_web = 150;
  rc.benign_tor = 25;
  rc.centralized_bots = 30;
  rc.dga_bots = 30;
  rc.fastflux_bots = 30;
  rc.p2p_bots = 30;
  const ReplayResult replay = replay_trace(campaign, rc);
  const TrafficTrace& trace = replay.trace;

  std::printf(
      "\nReplayed capture: %zu monitored hosts (%zu infected across 5\n"
      "families), %zu DNS records, %zu flows, %zu known Tor relays.\n",
      trace.hosts.size(), trace.infected.size(), trace.dns.size(),
      trace.flows.size(), trace.known_tor_relays.size());
  std::printf("replay_fingerprint: %s\n", fingerprint(trace).c_str());

  // --- 3. the evasion matrix at default thresholds ----------------------
  struct Row {
    const char* name;
    const std::vector<HostId>* hosts;
  };
  const Row rows[] = {
      {"benign-web", &replay.benign_web_hosts},
      {"benign-tor", &replay.benign_tor_users},
      {"centralized-http", &replay.centralized_bots},
      {"dga", &replay.dga_bots},
      {"fast-flux", &replay.fastflux_bots},
      {"p2p-plaintext", &replay.p2p_bots},
      {"onionbot", &replay.onion_bots},
  };
  const DetectionResult verdicts[] = {
      detect_dga(trace),     detect_fastflux(trace), detect_beacons(trace),
      detect_p2p(trace),     detect_tor_users(trace),
  };
  const char* columns[] = {"dga-dns", "fast-flux", "flow-beacon",
                           "p2p-mesh", "tor-flagger"};

  std::printf(
      "\nFlagged fraction per population (default thresholds, one\n"
      "co-resident trace):\n%-18s",
      "population");
  for (const char* c : columns) std::printf(" %12s", c);
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("%-18s", row.name);
    for (const DetectionResult& v : verdicts)
      std::printf(" %12.2f", flagged_fraction(v, *row.hosts));
    std::printf("\n");
  }
  std::printf(
      "\nThe paper's shape: each legacy family lights up its dedicated\n"
      "column; the onionbot row is dark everywhere except tor-flagger,\n"
      "which flags the benign Tor users at the same rate.\n");

  // --- 4. the ROC sweep --------------------------------------------------
  const RocSweep sweep;
  const RocReport roc = sweep.run(trace);
  std::printf(
      "\nROC sweep: %zu operating points across 5 detector families\n"
      "(%zu threads, %.2fs). Re-running at any thread count reproduces:\n",
      roc.points.size(), roc.threads_used, roc.wall_seconds);
  std::printf("roc_fingerprint: %s\n", roc.fingerprint.c_str());

  // The paper's conclusion, read off the sweep: the best OnionBot-era
  // operating point is the one that also flags every Tor user.
  const RocPoint* best_tor = nullptr;
  for (const RocPoint& p : roc.points)
    if (p.detector == "tor-flagger" &&
        (best_tor == nullptr || p.tpr > best_tor->tpr))
      best_tor = &p;
  if (best_tor != nullptr)
    std::printf(
        "\ntor-flagger at %s: TPR %.2f, FPR %.2f, precision %.2f —\n"
        "blocking OnionBots this way blocks Tor itself (SS VI).\n",
        best_tor->params.c_str(), best_tor->tpr, best_tor->fpr,
        best_tor->precision);
  return 0;
}
