// Churn campaign walkthrough: one declarative ScenarioSpec runs a
// 10,000-bot OnionBot overlay through an hour of simulated life —
// background churn the whole time, a targeted-takedown wave, then a
// SOAP containment campaign — with periodic snapshot telemetry and a
// SHA-256 fingerprint of the whole run proving the replay contract.
//
//   t in [0, 60) min   Poisson churn: ~600 joins/h and ~600 leaves/h (5%
//                     of the overlay turning over), DDSR healing on.
//   t in [10, 30) min  A takedown crew removes the highest-degree bot
//                     about every 12 seconds (~300/h).
//   t in [30, 50) min  A defender soaps the overlay from one captured
//                     bot (Section VI-B clone injection).
//
// Everything below derives from the spec + seed; run it twice and the
// stream hash is byte-identical.
#include <cstdio>

#include "scenario/engine.hpp"

int main() {
  using namespace onion;
  using namespace onion::scenario;

  std::printf(
      "=== Scenario campaign engine: 10k-bot churn campaign ===\n\n");

  ScenarioSpec spec;
  spec.seed = 0xcafe;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 600.0;
  spec.churn.leaves_per_hour = 600.0;

  AttackPhase takedown;
  takedown.kind = AttackKind::TargetedTakedown;
  takedown.start = 10 * kMinute;
  takedown.stop = 30 * kMinute;
  takedown.takedowns_per_hour = 300.0;
  spec.attacks.push_back(takedown);

  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 30 * kMinute;
  soap.stop = 50 * kMinute;
  soap.soap_tick = kMinute;
  soap.soap_rounds_per_tick = 1;
  spec.attacks.push_back(soap);

  spec.metrics.period = 5 * kMinute;
  spec.metrics.degree_histogram = true;

  std::printf(
      "Spec: n=%zu, k=%zu, horizon=%llu min; churn %g joins/h + %g\n"
      "leaves/h; targeted takedown [10,30) min at %g/h; SOAP [30,50) min.\n\n",
      spec.initial_size, spec.degree,
      static_cast<unsigned long long>(spec.horizon / kMinute),
      spec.churn.joins_per_hour, spec.churn.leaves_per_hour,
      takedown.takedowns_per_hour);

  // Snapshots fan out to a CSV table and a running SHA-256 fingerprint.
  CsvSink csv(stdout);
  HashSink hash;
  FanoutSink fanout({&csv, &hash});

  CampaignEngine engine(spec, fanout);
  const MetricsSnapshot end = engine.run();

  const auto& counters = engine.counters();
  const auto& stats = engine.ddsr_stats();
  std::printf(
      "\nAfter %llu simulated minutes:\n"
      "  joins=%llu leaves=%llu takedowns=%llu\n"
      "  honest bots alive: %llu (+%llu clones), components=%llu,\n"
      "  largest-component fraction %.4f\n"
      "  self-healing traffic: %llu repair + %llu prune + %llu refill\n"
      "  edge ops = %llu maintenance messages\n"
      "  SOAP: %llu clones injected, %llu bots contained\n",
      static_cast<unsigned long long>(end.time / kMinute),
      static_cast<unsigned long long>(counters.joins),
      static_cast<unsigned long long>(counters.leaves),
      static_cast<unsigned long long>(counters.takedowns),
      static_cast<unsigned long long>(end.honest_alive),
      static_cast<unsigned long long>(end.sybil_alive),
      static_cast<unsigned long long>(end.components),
      end.largest_fraction,
      static_cast<unsigned long long>(stats.repair_edges_added),
      static_cast<unsigned long long>(stats.prune_edges_removed),
      static_cast<unsigned long long>(stats.refill_edges_added),
      static_cast<unsigned long long>(stats.maintenance_messages()),
      static_cast<unsigned long long>(end.soap_clones),
      static_cast<unsigned long long>(end.soap_contained));

  std::printf(
      "\nStream fingerprint (SHA-256 over %zu serialized snapshots):\n"
      "  %s\n"
      "Re-running this binary reproduces the fingerprint bit-for-bit;\n"
      "changing the seed changes it (tests/scenario_test.cpp enforces\n"
      "both).\n",
      hash.count(), hash.hex_digest().c_str());
  return 0;
}
