// Figure 8 walkthrough: the SuperOnion construction (n hosts x m virtual
// nodes x i peers) under a live SOAP campaign. Shows probe detection of
// a soaped virtual node, abandonment, resurrection through surviving
// siblings, and the survival contrast with basic OnionBots.
//
//   $ ./superonion_demo
#include <cstdio>

#include "mitigation/soap.hpp"
#include "superonion/super_network.hpp"

using namespace onion;
using super::SuperConfig;
using super::SuperOnionNetwork;

int main() {
  Rng rng(5);
  // The paper's illustration: n=5, m=3, i=2.
  SuperConfig cfg;
  cfg.hosts = 5;
  cfg.vnodes_per_host = 3;
  cfg.peers_per_vnode = 2;
  SuperOnionNetwork net(cfg, rng);
  std::printf("SuperOnion up: n=%zu hosts, m=%zu virtual nodes each, "
              "i=%zu peers per vnode\n",
              cfg.hosts, cfg.vnodes_per_host, cfg.peers_per_vnode);
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    std::printf("  host %zu vnodes:", h);
    for (const auto v : net.vnodes_of(h)) std::printf(" %u", v);
    std::printf("\n");
  }

  // A healthy probe cycle: every virtual node hears its siblings.
  auto report = net.probe_and_recover();
  std::printf("\nprobe cycle (healthy): soaped=%zu gossip_messages=%zu\n",
              report.soaped_detected, report.gossip_messages);

  // SOAP attacks one virtual node of host 0.
  std::printf("\nSOAP campaign begins against host 0's first vnode...\n");
  mitigation::SoapConfig soap;
  soap.requests_per_target_per_round = 2;
  mitigation::SoapCampaign campaign(net.overlay(), soap, rng);
  campaign.capture(net.vnodes_of(0)[0]);

  for (int round = 1; round <= 12; ++round) {
    campaign.step();
    report = net.probe_and_recover();
    std::printf(
        "round %2d: clones=%-3zu soaped_detected=%zu resurrected=%zu "
        "hosts_alive=%zu/%zu\n",
        round, campaign.clones_created(), report.soaped_detected,
        report.resurrected, report.hosts_alive, net.num_hosts());
  }

  std::printf(
      "\nall %zu hosts alive: every soaped identity was abandoned and\n"
      "replaced through surviving virtual nodes (paper Section VII-B).\n"
      "A basic OnionBot (m=1) under the same campaign is contained —\n"
      "see bench/fig8_superonion for the head-to-head series.\n",
      net.hosts_alive());
  return 0;
}
