// Example: the §VI-B / §VII-A arms race on the full stack. The same
// clone campaign runs twice — against a basic OnionBot network (falls)
// and against one with the keyed probing defense (holds). Narrated
// round by round.
//
// Run: build/examples/probing_defense
#include <cstdio>

#include "graph/metrics.hpp"
#include "mitigation/live_soap.hpp"

using namespace onion;

namespace {

core::Botnet::Params make_params(bool probing) {
  core::Botnet::Params p;
  p.num_bots = 16;
  p.initial_degree = 4;
  p.seed = 0xa8e5;
  p.tor.num_relays = 20;
  p.bot.dmin = 3;
  p.bot.dmax = 5;
  p.bot.probe_peers = probing;
  return p;
}

void duel(bool probing) {
  std::printf("--- botnet with probing defense %s ---\n",
              probing ? "ON (SS VII-A)" : "OFF (basic OnionBot)");
  core::Botnet net(make_params(probing));
  mitigation::LiveSoapCampaign campaign(net, {});
  campaign.capture(3);
  std::printf("defender captures bot 3: learns %zu addresses\n",
              campaign.discovered().size());

  for (int round = 1; round <= 20; ++round) {
    campaign.step();
    net.run_for(4 * kMinute);
    if (round % 5 == 0) {
      std::printf(
          "round %2d: %2zu/%zu bots contained, %3zu clones running, "
          "%2zu honest links left\n",
          round, campaign.contained_count(), net.num_bots(),
          campaign.clones_created(), net.overlay_snapshot().num_edges());
    }
  }

  core::Command cmd;
  cmd.type = core::CommandType::Ddos;
  cmd.argument = "victim.example";
  net.master().broadcast(cmd, 2);
  net.run_for(15 * kMinute);
  std::printf("botmaster broadcast reaches %zu/%zu bots\n\n",
              net.count_executed(core::CommandType::Ddos), net.num_bots());
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots example: SOAP vs the probing defense, end to end "
      "===\n\n");
  duel(false);
  duel(true);
  std::printf(
      "The same defender, the same clone budget: the basic botnet is\n"
      "neutralized; the probing botnet drops clones at every heartbeat\n"
      "and keeps serving its master. The open question the paper leaves\n"
      "is the cost: probing buys resilience with maintenance traffic.\n");
  return 0;
}
