// Figure 3 walkthrough: the DDSR self-repair process on a 3-regular,
// 12-node graph, narrated deletion by deletion — repair edges, pruning,
// and the degree band, exactly the sequence the paper illustrates.
//
//   $ ./ddsr_walkthrough
#include <cstdio>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

using namespace onion;
using graph::Graph;
using graph::NodeId;

namespace {

void print_graph(const Graph& g) {
  for (const NodeId u : g.alive_nodes()) {
    std::printf("  %2u:", u);
    for (const NodeId v : g.neighbors(u)) std::printf(" %u", v);
    std::printf("\n");
  }
  std::printf("  nodes=%zu edges=%zu connected=%s\n", g.num_alive(),
              g.num_edges(),
              graph::is_connected(g) ? "yes" : "no");
}

}  // namespace

int main() {
  Rng rng(12);
  Graph g = graph::random_regular(12, 3, rng);
  std::printf("=== Figure 3 walkthrough: 3-regular graph, 12 nodes ===\n");
  std::printf("initial overlay:\n");
  print_graph(g);

  core::DdsrPolicy policy;
  policy.dmin = 3;
  policy.dmax = 3;
  core::DdsrEngine engine(g, policy, rng);

  // The paper removes node 7 first (its neighbors then pairwise link),
  // then continues deleting until only a core remains.
  const NodeId first = 7;
  std::printf("\n-- delete node %u (neighbors:", first);
  for (const NodeId v : g.neighbors(first)) std::printf(" %u", v);
  std::printf(")\n");
  engine.remove_node(first);
  std::printf("repair edges so far: %llu, pruned: %llu\n",
              static_cast<unsigned long long>(
                  engine.stats().repair_edges_added),
              static_cast<unsigned long long>(
                  engine.stats().prune_edges_removed));
  print_graph(g);

  Rng pick(13);
  while (g.num_alive() > 4) {
    const auto alive = g.alive_nodes();
    const NodeId victim =
        alive[static_cast<std::size_t>(pick.uniform(alive.size()))];
    std::printf("\n-- delete node %u\n", victim);
    engine.remove_node(victim);
    print_graph(g);
  }

  // Report the measured outcome: on a graph this small the tight
  // dmin == dmax == 3 band can disconnect the survivors (pruning favors
  // saturated cliques over bridges) — the paper-scale connectivity result
  // lives in the n >= 150 sweeps in tests/ddsr_test.cpp.
  std::printf(
      "\ntotals: repair=%llu prune=%llu refill=%llu — eight deletions with\n"
      "degree capped at 3, the repair/prune/refill sequence Figure 3\n"
      "illustrates; surviving core connected: %s\n",
      static_cast<unsigned long long>(engine.stats().repair_edges_added),
      static_cast<unsigned long long>(engine.stats().prune_edges_removed),
      static_cast<unsigned long long>(engine.stats().refill_edges_added),
      graph::is_connected(g) ? "yes" : "no");
  return 0;
}
