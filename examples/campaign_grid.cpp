// Seed sweep on the CampaignGrid runner: eight replicas of a 1500-bot
// churn-plus-takedown hour, sharded across the machine's cores, then
// aggregated into one deterministic report. The per-cell fingerprints
// and the combined (order- and thread-count-invariant) fingerprint make
// cross-machine reproduction a string comparison.
//
//   cmake --build build --target example_campaign_grid
//   ./build/example_campaign_grid
#include <cstdio>

#include "scenario/runner.hpp"

using namespace onion;
using namespace onion::scenario;

int main() {
  ScenarioSpec base;
  base.initial_size = 1500;
  base.degree = 10;
  base.horizon = kHour;
  base.churn.joins_per_hour = 150.0;
  base.churn.leaves_per_hour = 150.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 300.0;
  base.attacks.push_back(takedown);
  base.metrics.period = 5 * kMinute;

  const CampaignGrid grid = CampaignGrid::seed_sweep(base, 0xA0, 8);
  const GridReport report = grid.run();

  std::printf(
      "=== Campaign grid: 8-seed sweep, 1500 bots, churn + takedown ===\n"
      "%zu cells over %zu threads in %.2fs\n\n",
      report.cells.size(), report.threads_used, report.wall_seconds);
  std::printf(
      "label      alive  takedowns  components  largest  fingerprint\n");
  for (const CellResult& cell : report.cells) {
    const MetricsSnapshot& end = cell.series.back();
    std::printf("%-9s %6llu %10llu %11llu %8.4f  %.16s…\n",
                cell.label.c_str(),
                static_cast<unsigned long long>(end.honest_alive),
                static_cast<unsigned long long>(end.takedowns),
                static_cast<unsigned long long>(end.components),
                end.largest_fraction, cell.fingerprint.c_str());
  }
  std::printf("\ncombined fingerprint (order/thread invariant): %s\n",
              report.combined_fingerprint.c_str());
  return 0;
}
