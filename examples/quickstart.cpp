// Quickstart: stand up a complete OnionBot research simulation in ~50
// lines — a simulated Tor network, a botnet of hidden-service bots, a
// C&C broadcast, a takedown, and the self-healing response.
//
//   $ ./quickstart
#include <cstdio>

#include "core/botnet.hpp"
#include "graph/metrics.hpp"

using namespace onion;

int main() {
  // 1. A botnet of 24 bots over a 20-relay simulated Tor network. Every
  //    bot is a hidden service; nobody (including the C&C) ever sees an
  //    IP address.
  core::Botnet::Params params;
  params.num_bots = 24;
  params.initial_degree = 4;
  params.tor.num_relays = 20;
  params.seed = 2026;
  core::Botnet net(params);
  std::printf("botnet up: %zu bots, %zu Tor relays\n", net.num_bots(),
              net.tor().num_relays());
  std::printf("bot 0 answers on %s\n",
              net.bot(0).address().hostname().c_str());

  // 2. The botmaster broadcasts a signed command; it floods bot-to-bot
  //    as uniform-looking fixed-size envelopes.
  core::Command cmd;
  cmd.type = core::CommandType::Ddos;
  cmd.argument = "victim.example";
  net.master().broadcast(cmd, /*fanout=*/3);
  net.run_for(15 * kMinute);
  std::printf("after broadcast: %zu/%zu bots executed the command\n",
              net.count_executed(core::CommandType::Ddos), net.num_bots());

  // 3. A defender takes down a quarter of the botnet, one bot at a time.
  for (const std::size_t victim : {2u, 7u, 11u, 16u, 20u, 23u}) {
    net.kill_bot(victim);
    net.run_for(20 * kMinute);  // heartbeats notice, DDSR repairs
  }

  // 4. The overlay healed: still one connected component, degrees
  //    bounded, and commands still reach everyone alive.
  const graph::Graph overlay = net.overlay_snapshot();
  std::printf("after takedown: %zu bots alive, overlay connected: %s\n",
              net.num_alive(),
              graph::is_connected(overlay) ? "yes" : "no");

  core::Command again;
  again.type = core::CommandType::Spam;
  net.master().broadcast(again, 3);
  net.run_for(15 * kMinute);
  std::printf("post-heal broadcast reached %zu/%zu alive bots\n",
              net.count_executed(core::CommandType::Spam),
              net.num_alive());

  // 5. Everything any relay saw was a fixed-size high-entropy cell.
  std::printf("mean entropy of relayed cells: %.2f bits/byte (8.0 = "
              "uniform)\n",
              net.tor().mean_relayed_cell_entropy());
  return 0;
}
