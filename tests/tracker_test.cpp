// StructuralTracker tests: the differential property sweep (random
// campaign op interleavings — joins, leaves, takedowns, repair/refill,
// Sybil injection/retirement, and SOAP capture bursts — must leave the
// tracker byte-identical to the from-scratch sweep after every window,
// across many seeds), the fully-dynamic component scheme's zero-rebuild
// contract (deletion windows update connectivity in place), the honest
// order-statistics used for engine victim draws, and the attach/detach
// contract.
#include <gtest/gtest.h>

#include "core/ddsr.hpp"
#include "mitigation/soap.hpp"
#include "scenario/tracker.hpp"

namespace onion::scenario {
namespace {

using core::DdsrEngine;
using core::DdsrPolicy;
using core::OverlayConfig;
using core::OverlayNetwork;
using graph::NodeId;

constexpr std::size_t kDegree = 6;

OverlayNetwork make_overlay(std::size_t n, Rng& rng) {
  OverlayConfig config;
  config.dmin = kDegree;
  config.dmax = kDegree;
  return OverlayNetwork::random_regular(n, kDegree, config, rng);
}

DdsrPolicy policy() {
  DdsrPolicy p;
  p.dmin = kDegree;
  p.dmax = kDegree;
  return p;
}

// ====================================================================
// Differential property sweep: tracker == sweep after every window
// ====================================================================

// One random campaign op against the overlay: the same vocabulary the
// engine drives (join + bootstrap peering, healed leave, unhealed
// takedown, refill repair, Sybil clone injection, Sybil retirement, and
// a short SOAP capture burst).
void random_op(OverlayNetwork& net, DdsrEngine& ddsr, Rng& rng) {
  const std::vector<NodeId> honest = net.honest_nodes();
  switch (rng.uniform(7)) {
    case 0: {  // join with bootstrap peering
      const NodeId id = net.add_node(/*honest=*/true);
      const std::size_t want = std::min<std::size_t>(kDegree, honest.size());
      for (const NodeId target : rng.sample(honest, want)) {
        NodeId evicted = graph::kInvalidNode;
        net.request_peering(id, target, &evicted);
        if (evicted != graph::kInvalidNode) net.refill(evicted);
      }
      net.refill(id);
      break;
    }
    case 1:  // healed leave (DDSR clique repair + prune + refill)
      if (honest.size() > 2) ddsr.remove_node(rng.pick(honest));
      break;
    case 2:  // unhealed takedown (the Figure 6 simultaneous model)
      if (honest.size() > 2) ddsr.remove_node_no_repair(rng.pick(honest));
      break;
    case 3:  // repair pass on a random bot
      if (!honest.empty()) net.refill(rng.pick(honest));
      break;
    case 4: {  // Sybil clone injection (declares a lying degree of 1)
      const NodeId clone = net.add_node(/*honest=*/false, 1);
      if (!honest.empty()) net.request_peering(clone, rng.pick(honest));
      break;
    }
    case 5: {  // Sybil retirement
      std::vector<NodeId> sybils;
      for (NodeId u = 0; u < net.graph().capacity(); ++u)
        if (net.alive(u) && !net.honest(u)) sybils.push_back(u);
      if (!sybils.empty()) net.retire(rng.pick(sybils));
      break;
    }
    case 6: {  // SOAP capture burst: clone injection + eviction churn
      if (honest.empty()) break;
      mitigation::SoapCampaign soap(net, mitigation::SoapConfig{}, rng);
      soap.capture(rng.pick(honest));
      for (int step = 0; step < 3 && soap.step(); ++step) {
      }
      break;
    }
  }
}

TEST(TrackerDifferential, MatchesSweepAfterEveryWindowAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    OverlayNetwork net = make_overlay(120, rng);
    DdsrEngine ddsr(net.graph_mut(), policy(), rng);
    StructuralTracker tracker(net);
    for (int window = 0; window < 40; ++window) {
      for (int op = 0; op < 8; ++op) random_op(net, ddsr, rng);
      MetricsSnapshot incremental;
      tracker.fill(incremental, /*with_histogram=*/true);
      const MetricsSnapshot sweep = sweep_structural(net, true);
      ASSERT_EQ(serialize(incremental), serialize(sweep))
          << "seed " << seed << " window " << window << ": tracker ("
          << incremental.honest_alive << "n/" << incremental.honest_edges
          << "e/" << incremental.components << "c) vs sweep ("
          << sweep.honest_alive << "n/" << sweep.honest_edges << "e/"
          << sweep.components << "c)";
    }
  }
}

TEST(TrackerDifferential, MatchesSweepWithHistogramDisabled) {
  Rng rng(77);
  OverlayNetwork net = make_overlay(80, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);
  for (int op = 0; op < 50; ++op) random_op(net, ddsr, rng);
  MetricsSnapshot incremental;
  tracker.fill(incremental, /*with_histogram=*/false);
  EXPECT_TRUE(incremental.degree_histogram.empty());
  EXPECT_EQ(serialize(incremental), serialize(sweep_structural(net, false)));
}

// ====================================================================
// Fully-dynamic component scheme: rebuilds are gone for good
// ====================================================================

TEST(TrackerDynamic, PureGrowthWindowsNeverRebuild) {
  Rng rng(5);
  OverlayNetwork net = make_overlay(60, rng);
  StructuralTracker tracker(net);
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);

  for (int window = 0; window < 5; ++window) {
    const std::vector<NodeId> honest = net.honest_nodes();
    const NodeId id = net.add_node(/*honest=*/true);
    for (const NodeId target : rng.sample(honest, 3))
      net.graph_mut().add_edge(id, target);
    tracker.fill(s, true);
  }
  EXPECT_EQ(tracker.rebuilds(), 0u);
  EXPECT_EQ(s.components, 1u);
  EXPECT_EQ(s.honest_alive, 65u);
}

TEST(TrackerDynamic, DeletionWindowsNeedNoRebuildAndStayExact) {
  Rng rng(6);
  OverlayNetwork net = make_overlay(60, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);

  // Deletions — healed and unhealed, one per window or several — are
  // folded in as they happen: no dirty flag, no rebuild, and the fill
  // stays byte-identical to the from-scratch sweep.
  ddsr.remove_node(net.honest_nodes().front());
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));

  for (int i = 0; i < 4; ++i)
    ddsr.remove_node_no_repair(net.honest_nodes().front());
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));

  // A fill with no intervening mutations is unchanged too.
  MetricsSnapshot again;
  tracker.fill(again, true);
  EXPECT_EQ(serialize(again), serialize(s));
}

TEST(TrackerDynamic, SybilOnlyChangesNeverTouchConnectivity) {
  Rng rng(7);
  // Spare degree capacity: the clone must be accepted without evicting
  // an honest peer (an eviction would drop an honest-honest edge, which
  // legitimately exercises the dynamic structure).
  OverlayConfig config;
  config.dmin = kDegree;
  config.dmax = kDegree + 2;
  OverlayNetwork net =
      OverlayNetwork::random_regular(40, kDegree, config, rng);
  StructuralTracker tracker(net);
  const auto splits_before = tracker.connectivity().splits();
  const auto merges_before = tracker.connectivity().merges();
  const NodeId clone = net.add_node(/*honest=*/false, 1);
  net.request_peering(clone, net.honest_nodes().front());
  net.retire(clone);  // drops an honest-Sybil edge + a Sybil node
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);
  // Sybil slots never enter the honest connectivity structure at all.
  EXPECT_EQ(tracker.connectivity().splits(), splits_before);
  EXPECT_EQ(tracker.connectivity().merges(), merges_before);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

// ====================================================================
// Regressions: histogram trailing zeros, dead union-find slots
// ====================================================================

TEST(TrackerRegression, MaxDegreeTakedownsTrimHistogramBytes) {
  // Taking down the max-degree bot (unhealed, so nobody re-fills into
  // the top bucket) can leave the incremental histogram with trailing
  // zero buckets the sweep never emits — the serialized snapshots must
  // stay byte-identical anyway.
  Rng rng(11);
  OverlayNetwork net = make_overlay(60, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);
  for (int round = 0; round < 6; ++round) {
    const std::vector<NodeId> honest = net.honest_nodes();
    if (honest.size() <= 2) break;
    NodeId top = honest.front();
    for (const NodeId u : honest)
      if (net.graph().degree(u) > net.graph().degree(top)) top = u;
    ddsr.remove_node_no_repair(top);
    MetricsSnapshot inc;
    tracker.fill(inc, /*with_histogram=*/true);
    const MetricsSnapshot sweep = sweep_structural(net, true);
    ASSERT_EQ(inc.degree_histogram.size(), sweep.degree_histogram.size())
        << "trailing-zero buckets leaked in round " << round;
    ASSERT_EQ(serialize(inc), serialize(sweep)) << "round " << round;
  }
}

TEST(TrackerRegression, DeadSlotsNeverInflateComponents) {
  // UnionFind::num_sets() counts the whole universe, dead slots
  // included; every consumer must compensate. Remove nodes, then check
  // the tracker, the sweep, and the overlay's own component count agree.
  Rng rng(12);
  OverlayNetwork net = make_overlay(40, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);
  for (int i = 0; i < 10; ++i)
    ddsr.remove_node(net.honest_nodes().front());
  MetricsSnapshot s;
  tracker.fill(s, true);
  const MetricsSnapshot sweep = sweep_structural(net, true);
  EXPECT_EQ(s.components, sweep.components);
  EXPECT_EQ(s.components, net.honest_components());
  EXPECT_EQ(serialize(s), serialize(sweep));
}

// ====================================================================
// Honest order statistics: the engine's victim-draw primitives
// ====================================================================

TEST(TrackerOrderStat, HonestAtMatchesHonestNodesVector) {
  Rng rng(13);
  OverlayNetwork net = make_overlay(80, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);
  for (int window = 0; window < 20; ++window) {
    for (int op = 0; op < 5; ++op) random_op(net, ddsr, rng);
    const std::vector<NodeId> honest = net.honest_nodes();
    ASSERT_EQ(tracker.honest_alive(), honest.size());
    for (std::size_t k = 0; k < honest.size(); ++k)
      ASSERT_EQ(tracker.honest_at(k), honest[k])
          << "window " << window << " rank " << k;
  }
}

// ====================================================================
// Attach / detach contract
// ====================================================================

TEST(Tracker, SecondTrackerOnSameGraphRejected) {
  Rng rng(8);
  OverlayNetwork net = make_overlay(20, rng);
  StructuralTracker tracker(net);
  EXPECT_THROW(StructuralTracker second(net), ContractViolation);
}

TEST(Tracker, DetachesOnDestructionSoASuccessorCanAttach) {
  Rng rng(9);
  OverlayNetwork net = make_overlay(20, rng);
  {
    StructuralTracker tracker(net);
    EXPECT_EQ(net.graph().observer(), &tracker);
  }
  EXPECT_EQ(net.graph().observer(), nullptr);
  StructuralTracker successor(net);  // re-absorbs the live state
  MetricsSnapshot s;
  successor.fill(s, true);
  EXPECT_EQ(s.honest_alive, 20u);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

TEST(Tracker, AbsorbsMidCampaignState) {
  // Attaching to a graph that already lived through churn must start
  // from the current truth, not zero.
  Rng rng(10);
  OverlayNetwork net = make_overlay(50, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  for (int op = 0; op < 30; ++op) random_op(net, ddsr, rng);
  StructuralTracker tracker(net);
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

}  // namespace
}  // namespace onion::scenario
