// StructuralTracker tests: the differential property sweep (random
// campaign op interleavings — joins, leaves, takedowns, repair/refill,
// Sybil injection and retirement — must leave the tracker byte-identical
// to the from-scratch sweep after every window, across many seeds), the
// hybrid component scheme's rebuild accounting (pure-growth windows are
// rebuild-free), and the attach/detach contract.
#include <gtest/gtest.h>

#include "core/ddsr.hpp"
#include "scenario/tracker.hpp"

namespace onion::scenario {
namespace {

using core::DdsrEngine;
using core::DdsrPolicy;
using core::OverlayConfig;
using core::OverlayNetwork;
using graph::NodeId;

constexpr std::size_t kDegree = 6;

OverlayNetwork make_overlay(std::size_t n, Rng& rng) {
  OverlayConfig config;
  config.dmin = kDegree;
  config.dmax = kDegree;
  return OverlayNetwork::random_regular(n, kDegree, config, rng);
}

DdsrPolicy policy() {
  DdsrPolicy p;
  p.dmin = kDegree;
  p.dmax = kDegree;
  return p;
}

// ====================================================================
// Differential property sweep: tracker == sweep after every window
// ====================================================================

// One random campaign op against the overlay: the same vocabulary the
// engine drives (join + bootstrap peering, healed leave, unhealed
// takedown, refill repair, Sybil clone injection, Sybil retirement).
void random_op(OverlayNetwork& net, DdsrEngine& ddsr, Rng& rng) {
  const std::vector<NodeId> honest = net.honest_nodes();
  switch (rng.uniform(6)) {
    case 0: {  // join with bootstrap peering
      const NodeId id = net.add_node(/*honest=*/true);
      const std::size_t want = std::min<std::size_t>(kDegree, honest.size());
      for (const NodeId target : rng.sample(honest, want)) {
        NodeId evicted = graph::kInvalidNode;
        net.request_peering(id, target, &evicted);
        if (evicted != graph::kInvalidNode) net.refill(evicted);
      }
      net.refill(id);
      break;
    }
    case 1:  // healed leave (DDSR clique repair + prune + refill)
      if (honest.size() > 2) ddsr.remove_node(rng.pick(honest));
      break;
    case 2:  // unhealed takedown (the Figure 6 simultaneous model)
      if (honest.size() > 2) ddsr.remove_node_no_repair(rng.pick(honest));
      break;
    case 3:  // repair pass on a random bot
      if (!honest.empty()) net.refill(rng.pick(honest));
      break;
    case 4: {  // Sybil clone injection (declares a lying degree of 1)
      const NodeId clone = net.add_node(/*honest=*/false, 1);
      if (!honest.empty()) net.request_peering(clone, rng.pick(honest));
      break;
    }
    case 5: {  // Sybil retirement
      std::vector<NodeId> sybils;
      for (NodeId u = 0; u < net.graph().capacity(); ++u)
        if (net.alive(u) && !net.honest(u)) sybils.push_back(u);
      if (!sybils.empty()) net.retire(rng.pick(sybils));
      break;
    }
  }
}

TEST(TrackerDifferential, MatchesSweepAfterEveryWindowAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    OverlayNetwork net = make_overlay(120, rng);
    DdsrEngine ddsr(net.graph_mut(), policy(), rng);
    StructuralTracker tracker(net);
    for (int window = 0; window < 40; ++window) {
      for (int op = 0; op < 8; ++op) random_op(net, ddsr, rng);
      MetricsSnapshot incremental;
      tracker.fill(incremental, /*with_histogram=*/true);
      const MetricsSnapshot sweep = sweep_structural(net, true);
      ASSERT_EQ(serialize(incremental), serialize(sweep))
          << "seed " << seed << " window " << window << ": tracker ("
          << incremental.honest_alive << "n/" << incremental.honest_edges
          << "e/" << incremental.components << "c) vs sweep ("
          << sweep.honest_alive << "n/" << sweep.honest_edges << "e/"
          << sweep.components << "c)";
    }
  }
}

TEST(TrackerDifferential, MatchesSweepWithHistogramDisabled) {
  Rng rng(77);
  OverlayNetwork net = make_overlay(80, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);
  for (int op = 0; op < 50; ++op) random_op(net, ddsr, rng);
  MetricsSnapshot incremental;
  tracker.fill(incremental, /*with_histogram=*/false);
  EXPECT_TRUE(incremental.degree_histogram.empty());
  EXPECT_EQ(serialize(incremental), serialize(sweep_structural(net, false)));
}

// ====================================================================
// Hybrid component scheme: when the rebuild is (not) paid
// ====================================================================

TEST(TrackerHybrid, PureGrowthWindowsNeverRebuild) {
  Rng rng(5);
  OverlayNetwork net = make_overlay(60, rng);
  StructuralTracker tracker(net);
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);

  for (int window = 0; window < 5; ++window) {
    const std::vector<NodeId> honest = net.honest_nodes();
    const NodeId id = net.add_node(/*honest=*/true);
    for (const NodeId target : rng.sample(honest, 3))
      net.graph_mut().add_edge(id, target);
    EXPECT_FALSE(tracker.components_dirty());
    tracker.fill(s, true);
  }
  EXPECT_EQ(tracker.rebuilds(), 0u);  // insertions fold into union-find
  EXPECT_EQ(s.components, 1u);
  EXPECT_EQ(s.honest_alive, 65u);
}

TEST(TrackerHybrid, DeletionWindowPaysExactlyOneRebuild) {
  Rng rng(6);
  OverlayNetwork net = make_overlay(60, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  StructuralTracker tracker(net);

  ddsr.remove_node(net.honest_nodes().front());
  EXPECT_TRUE(tracker.components_dirty());
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 1u);
  EXPECT_FALSE(tracker.components_dirty());

  // Several deletions inside one window still cost a single rebuild.
  for (int i = 0; i < 4; ++i)
    ddsr.remove_node(net.honest_nodes().front());
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 2u);

  // A fill with no intervening mutations stays free.
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 2u);
}

TEST(TrackerHybrid, SybilOnlyChangesStayRebuildFree) {
  Rng rng(7);
  // Spare degree capacity: the clone must be accepted without evicting
  // an honest peer (an eviction would drop an honest-honest edge, which
  // is a legitimate reason to rebuild).
  OverlayConfig config;
  config.dmin = kDegree;
  config.dmax = kDegree + 2;
  OverlayNetwork net =
      OverlayNetwork::random_regular(40, kDegree, config, rng);
  StructuralTracker tracker(net);
  const NodeId clone = net.add_node(/*honest=*/false, 1);
  net.request_peering(clone, net.honest_nodes().front());
  net.retire(clone);  // drops an honest-Sybil edge + a Sybil node
  EXPECT_FALSE(tracker.components_dirty());
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(tracker.rebuilds(), 0u);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

// ====================================================================
// Attach / detach contract
// ====================================================================

TEST(Tracker, SecondTrackerOnSameGraphRejected) {
  Rng rng(8);
  OverlayNetwork net = make_overlay(20, rng);
  StructuralTracker tracker(net);
  EXPECT_THROW(StructuralTracker second(net), ContractViolation);
}

TEST(Tracker, DetachesOnDestructionSoASuccessorCanAttach) {
  Rng rng(9);
  OverlayNetwork net = make_overlay(20, rng);
  {
    StructuralTracker tracker(net);
    EXPECT_EQ(net.graph().observer(), &tracker);
  }
  EXPECT_EQ(net.graph().observer(), nullptr);
  StructuralTracker successor(net);  // re-absorbs the live state
  MetricsSnapshot s;
  successor.fill(s, true);
  EXPECT_EQ(s.honest_alive, 20u);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

TEST(Tracker, AbsorbsMidCampaignState) {
  // Attaching to a graph that already lived through churn must start
  // from the current truth, not zero.
  Rng rng(10);
  OverlayNetwork net = make_overlay(50, rng);
  DdsrEngine ddsr(net.graph_mut(), policy(), rng);
  for (int op = 0; op < 30; ++op) random_op(net, ddsr, rng);
  StructuralTracker tracker(net);
  MetricsSnapshot s;
  tracker.fill(s, true);
  EXPECT_EQ(serialize(s), serialize(sweep_structural(net, true)));
}

}  // namespace
}  // namespace onion::scenario
