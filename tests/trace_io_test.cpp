// Streaming trace-file tests: a campaign spooled to disk through
// TraceWriter reads back bit-for-bit — same spec echo, same event
// stream, same snapshot interleaving, and the exact fingerprint the
// in-memory CampaignTrace reports — while every byte-boundary
// truncation and every single-byte flip is rejected with a WireError
// (mirroring tests/wire_test.cpp for the grid frames). The replay
// differential at the bottom is the API contract of this PR: feeding
// detection::replay_trace a TraceReader instead of a CampaignTrace
// produces a byte-identical TrafficTrace.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fileio.hpp"
#include "detection/replay.hpp"
#include "detection/telemetry.hpp"
#include "scenario/engine.hpp"
#include "scenario/trace_io.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario::trace_io {
namespace {

// A small campaign with every event family in it: churn, a takedown
// wave, SOAP — the same shape tests/replay_test.cpp records, shrunk so
// the every-byte corruption sweeps stay fast.
ScenarioSpec small_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 40;
  spec.degree = 4;
  spec.horizon = 30 * kMinute;
  spec.churn.joins_per_hour = 40.0;
  spec.churn.leaves_per_hour = 40.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 5 * kMinute;
  takedown.stop = 15 * kMinute;
  takedown.takedowns_per_hour = 30.0;
  spec.attacks.push_back(takedown);
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 15 * kMinute;
  soap.stop = 25 * kMinute;
  spec.attacks.push_back(soap);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

// Records the campaign twice — the engine is byte-deterministic, so an
// in-memory CampaignTrace and an on-disk TraceWriter fed from separate
// runs of the same spec see identical streams.
CampaignTrace record_in_memory(const ScenarioSpec& spec) {
  CampaignTrace campaign;
  CampaignEngine(spec, campaign, &campaign).run();
  return campaign;
}

void record_to_file(const ScenarioSpec& spec, const std::string& path,
                    TraceWriterConfig config = {}) {
  TraceWriter writer(path, config);
  CampaignEngine(spec, writer, &writer).run();
  writer.finish();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, BytesView bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

// ====================================================================
// Round trip
// ====================================================================

TEST(TraceIo, SpecCodecRoundTripsEveryField) {
  ScenarioSpec spec = small_spec(11);
  // Exercise the optional subtrees the small campaign leaves empty.
  spec.churn.session_leaves = true;
  spec.churn.session.model = SessionModel::Pareto;
  spec.churn.session.pareto_alpha = 1.25;
  AttackWave wave;
  wave.attack.kind = AttackKind::CentralityTakedown;
  wave.attack.rank = RankMetric::Degree;
  wave.duration = 10 * kMinute;
  wave.quiet_after = 5 * kMinute;
  spec.waves.start = 5 * kMinute;
  spec.waves.waves.push_back(wave);
  spec.defense.rate_limit_per_round = 7;
  spec.defense.pow_growth = 1.5;
  spec.metrics.degree_histogram = true;
  spec.metrics.diameter_sweeps = 3;

  const Bytes encoded = serialize(spec);
  ByteReader r{BytesView(encoded)};
  const ScenarioSpec decoded = deserialize_spec(r);
  EXPECT_TRUE(r.done());
  // Bit-for-bit: the canonical encoding of the decoded spec matches.
  EXPECT_EQ(serialize(decoded), encoded);
}

TEST(TraceIo, WriteReadRoundTripIsBitForBit) {
  const ScenarioSpec spec = small_spec(21);
  const CampaignTrace campaign = record_in_memory(spec);
  const std::string path = temp_path("trace_roundtrip.otrace");
  // A small chunk bound so the file holds many chunk frames.
  record_to_file(spec, path, TraceWriterConfig{.chunk_records = 64});

  const TraceReader reader(path);
  EXPECT_EQ(serialize(reader.spec()), serialize(campaign.spec()));
  EXPECT_EQ(reader.initial_nodes(), campaign.initial_nodes());
  EXPECT_TRUE(reader.began());
  EXPECT_EQ(reader.event_count(), campaign.events().size());
  EXPECT_EQ(reader.snapshot_count(), campaign.snapshots().size());
  EXPECT_GT(reader.chunk_count(), 1u);

  std::vector<CampaignEvent> events;
  reader.for_each_event(
      [&](const CampaignEvent& e) { events.push_back(e); });
  EXPECT_EQ(events, campaign.events());

  // Snapshots round-trip canonically, in recorded order.
  std::vector<Bytes> streamed;
  reader.for_each_snapshot([&](const MetricsSnapshot& s) {
    streamed.push_back(scenario::serialize(s));
  });
  ASSERT_EQ(streamed.size(), campaign.snapshots().size());
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(streamed[i], scenario::serialize(campaign.snapshots()[i]));

  std::remove(path.c_str());
}

TEST(TraceIo, FingerprintMatchesInMemoryTrace) {
  const ScenarioSpec spec = small_spec(22);
  const CampaignTrace campaign = record_in_memory(spec);
  const std::string path = temp_path("trace_fingerprint.otrace");

  TraceWriter writer(path, TraceWriterConfig{.chunk_records = 100});
  CampaignEngine(spec, writer, &writer).run();
  writer.finish();
  EXPECT_EQ(writer.fingerprint(), campaign.fingerprint());

  const TraceReader reader(path);
  EXPECT_EQ(reader.fingerprint(), campaign.fingerprint());

  // The derived views agree too: lifetimes come off the shared
  // TraceSource pass, so the streamed source reproduces them exactly.
  const auto memory_lifetimes = campaign.lifetimes();
  const auto streamed_lifetimes = reader.lifetimes();
  ASSERT_EQ(streamed_lifetimes.size(), memory_lifetimes.size());
  for (std::size_t i = 0; i < memory_lifetimes.size(); ++i) {
    EXPECT_EQ(streamed_lifetimes[i].node, memory_lifetimes[i].node);
    EXPECT_EQ(streamed_lifetimes[i].birth, memory_lifetimes[i].birth);
    EXPECT_EQ(streamed_lifetimes[i].death, memory_lifetimes[i].death);
  }

  std::remove(path.c_str());
}

TEST(TraceIo, ChunkBoundDoesNotChangeTheBytesRead) {
  // Different chunk_records values produce different framing but the
  // same records and the same fingerprint.
  const ScenarioSpec spec = small_spec(23);
  const std::string coarse = temp_path("trace_coarse.otrace");
  const std::string fine = temp_path("trace_fine.otrace");
  record_to_file(spec, coarse, TraceWriterConfig{.chunk_records = 4096});
  record_to_file(spec, fine, TraceWriterConfig{.chunk_records = 7});

  const TraceReader a(coarse), b(fine);
  EXPECT_GT(b.chunk_count(), a.chunk_count());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.event_count(), b.event_count());
  EXPECT_EQ(a.snapshot_count(), b.snapshot_count());

  std::remove(coarse.c_str());
  std::remove(fine.c_str());
}

// ====================================================================
// Crash / corruption discipline
// ====================================================================

TEST(TraceIo, UnfinishedWriterPublishesNothing) {
  const std::string path = temp_path("trace_unfinished.otrace");
  {
    TraceWriter writer(path);
    writer.on_begin(small_spec(31), {1, 2, 3});
    writer.on_event({kMinute, TraceEventKind::Join, 4, 0});
    // Destroyed without finish(): the temp file is removed and the
    // final name never appears — a crashed recorder leaves no trace.
  }
  EXPECT_THROW(read_file_bytes(path), std::runtime_error);
  EXPECT_THROW(TraceReader{path}, wire::WireError);
}

TEST(TraceIo, TruncationAtEveryByteBoundaryIsRejected) {
  const ScenarioSpec spec = small_spec(32);
  const std::string path = temp_path("trace_truncate.otrace");
  record_to_file(spec, path, TraceWriterConfig{.chunk_records = 32});
  const Bytes full = read_file_bytes(path);
  ASSERT_GT(full.size(), kFooterFrameBytes);

  const std::string prefix_path = temp_path("trace_truncate_prefix.otrace");
  for (std::size_t len = 0; len < full.size(); ++len) {
    write_file(prefix_path, BytesView(full.data(), len));
    // Every truncation displaces the fixed-size footer, so the reader
    // fails at open — before streaming a single chunk.
    EXPECT_THROW(TraceReader{prefix_path}, wire::WireError)
        << "prefix of " << len << " bytes opened";
  }

  std::remove(path.c_str());
  std::remove(prefix_path.c_str());
}

TEST(TraceIo, EverySingleByteCorruptionIsRejected) {
  // Any flipped bit lands in a frame magic/version/length, a payload
  // covered by a chunk digest, or the digest itself — opening plus one
  // full streaming pass must throw somewhere.
  const ScenarioSpec spec = small_spec(33);
  const std::string path = temp_path("trace_flip.otrace");
  record_to_file(spec, path, TraceWriterConfig{.chunk_records = 32});
  const Bytes full = read_file_bytes(path);

  const std::string flip_path = temp_path("trace_flip_one.otrace");
  for (std::size_t i = 0; i < full.size(); ++i) {
    Bytes corrupt = full;
    corrupt[i] ^= 0x01;
    write_file(flip_path, BytesView(corrupt));
    EXPECT_THROW(
        {
          const TraceReader reader(flip_path);
          reader.for_each_event([](const CampaignEvent&) {});
        },
        wire::WireError)
        << "flip at byte " << i << " streamed";
  }

  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// ====================================================================
// The TraceSource replay contract
// ====================================================================

TEST(TraceIo, StreamedReplayIsByteIdenticalToInMemoryReplay) {
  const ScenarioSpec spec = small_spec(41);
  const CampaignTrace campaign = record_in_memory(spec);
  const std::string path = temp_path("trace_replay.otrace");
  record_to_file(spec, path, TraceWriterConfig{.chunk_records = 128});
  const TraceReader reader(path);

  detection::ReplayConfig rc;
  rc.seed = 0x5ca1e;
  rc.benign_web = 40;
  rc.benign_tor = 10;
  rc.centralized_bots = 5;
  rc.dga_bots = 5;
  rc.fastflux_bots = 5;
  rc.p2p_bots = 8;
  rc.onion_mean_gap = kMinute;

  const detection::ReplayResult memory =
      detection::replay_trace(campaign, rc);
  const detection::ReplayResult streamed = detection::replay_trace(
      static_cast<const TraceSource&>(reader), rc);

  // The acceptance criterion: same TrafficTrace, byte for byte.
  EXPECT_EQ(detection::fingerprint(streamed.trace),
            detection::fingerprint(memory.trace));
  EXPECT_EQ(streamed.onion_bots, memory.onion_bots);
  EXPECT_EQ(streamed.trace.infected, memory.trace.infected);
  EXPECT_EQ(streamed.trace.hosts, memory.trace.hosts);

  std::remove(path.c_str());
}

}  // namespace
}  // namespace onion::scenario::trace_io
