// Bot-level overlay tests: the declared-degree peering policy (the SOAP
// attack surface), rate limiting, proof-of-work accounting, refill, and
// containment metrics.
#include <gtest/gtest.h>

#include "core/overlay.hpp"

namespace onion::core {
namespace {

using NodeId = OverlayNetwork::NodeId;

OverlayConfig band(std::size_t dmin, std::size_t dmax) {
  OverlayConfig cfg;
  cfg.dmin = dmin;
  cfg.dmax = dmax;
  return cfg;
}

TEST(Overlay, AcceptsWithCapacity) {
  Rng rng(1);
  OverlayNetwork net(band(2, 3), rng);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  EXPECT_EQ(net.request_peering(a, b), PeerDecision::AcceptedWithCapacity);
  EXPECT_TRUE(net.graph().has_edge(a, b));
}

TEST(Overlay, RejectsDuplicatePeering) {
  Rng rng(2);
  OverlayNetwork net(band(2, 3), rng);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  net.request_peering(a, b);
  EXPECT_EQ(net.request_peering(a, b), PeerDecision::Rejected);
}

TEST(Overlay, FullNodeEvictsHighestDeclaredForLowDeclared) {
  Rng rng(3);
  OverlayNetwork net(band(1, 2), rng);
  const NodeId t = net.add_node(true);
  const NodeId busy = net.add_node(true);   // will have high true degree
  const NodeId mid = net.add_node(true);
  const NodeId extra1 = net.add_node(true);
  const NodeId extra2 = net.add_node(true);
  // busy gets extra edges so its declared (true) degree is 3.
  net.request_peering(busy, extra1);
  net.request_peering(busy, extra2);
  net.request_peering(busy, t);
  net.request_peering(mid, t);  // t is now full (dmax=2)

  const NodeId sybil = net.add_node(false, /*declared=*/1);
  EXPECT_EQ(net.request_peering(sybil, t), PeerDecision::AcceptedEvicted);
  EXPECT_TRUE(net.graph().has_edge(sybil, t));
  EXPECT_FALSE(net.graph().has_edge(busy, t))
      << "highest-declared peer evicted";
  EXPECT_TRUE(net.graph().has_edge(mid, t));
}

TEST(Overlay, FullNodeRejectsNonUndercuttingRequester) {
  Rng rng(4);
  OverlayNetwork net(band(1, 1), rng);
  const NodeId t = net.add_node(true);
  const NodeId peer = net.add_node(false, 2);
  net.request_peering(peer, t);
  // Requester declares 5 >= 2: no eviction.
  const NodeId pushy = net.add_node(false, 5);
  EXPECT_EQ(net.request_peering(pushy, t), PeerDecision::Rejected);
}

TEST(Overlay, SybilDeclaredDegreeIsTheLie) {
  Rng rng(5);
  OverlayNetwork net(band(1, 5), rng);
  const NodeId honest = net.add_node(true);
  const NodeId sybil = net.add_node(false, 2);
  // Sybil with 0 edges still declares 2; honest declares true degree.
  EXPECT_EQ(net.declared_degree(sybil), 2u);
  EXPECT_EQ(net.declared_degree(honest), 0u);
  net.request_peering(sybil, honest);
  EXPECT_EQ(net.declared_degree(sybil), 2u) << "lie is sticky";
  EXPECT_EQ(net.declared_degree(honest), 1u) << "honest tracks truth";
}

TEST(Overlay, RateLimitBlocksWithinRound) {
  Rng rng(6);
  OverlayConfig cfg = band(1, 10);
  cfg.rate_limit_per_round = 1;
  OverlayNetwork net(cfg, rng);
  const NodeId t = net.add_node(true);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  net.begin_round();
  EXPECT_EQ(net.request_peering(a, t), PeerDecision::AcceptedWithCapacity);
  EXPECT_EQ(net.request_peering(b, t), PeerDecision::RateLimited);
  net.begin_round();
  EXPECT_EQ(net.request_peering(b, t), PeerDecision::AcceptedWithCapacity);
}

TEST(Overlay, ProofOfWorkEscalatesPerTarget) {
  Rng rng(7);
  OverlayConfig cfg = band(1, 10);
  cfg.pow_base_cost = 1.0;
  cfg.pow_growth = 2.0;
  OverlayNetwork net(cfg, rng);
  const NodeId t = net.add_node(true);
  const NodeId s1 = net.add_node(false, 1);
  const NodeId s2 = net.add_node(false, 1);
  const NodeId s3 = net.add_node(false, 1);
  net.request_peering(s1, t);  // cost 1
  net.request_peering(s2, t);  // cost 2
  net.request_peering(s3, t);  // cost 4
  EXPECT_DOUBLE_EQ(net.sybil_work_spent(), 7.0);
  EXPECT_DOUBLE_EQ(net.honest_work_spent(), 0.0);
}

TEST(Overlay, HonestRefillPaysProofOfWorkToo) {
  // The defense's collateral cost (paper §VII-A trade-off).
  Rng rng(8);
  OverlayConfig cfg = band(2, 4);
  cfg.pow_base_cost = 1.0;
  OverlayNetwork net(cfg, rng);
  // Triangle plus a pendant that will need refill.
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  const NodeId c = net.add_node(true);
  const NodeId d = net.add_node(true);
  net.request_peering(a, b);
  net.request_peering(b, c);
  net.request_peering(a, c);
  net.request_peering(d, a);
  net.drop_edge(d, a);
  net.request_peering(d, a);  // re-establish one link
  net.refill(d);              // d below dmin: asks NoN candidates
  EXPECT_GT(net.honest_work_spent(), 0.0);
}

TEST(Overlay, RefillUsesNoNOnly) {
  Rng rng(9);
  OverlayNetwork net(band(2, 4), rng);
  // Two disjoint pairs: refill cannot jump between components.
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  const NodeId c = net.add_node(true);
  const NodeId d = net.add_node(true);
  net.request_peering(a, b);
  net.request_peering(c, d);
  net.refill(a);
  EXPECT_FALSE(net.graph().has_edge(a, c));
  EXPECT_FALSE(net.graph().has_edge(a, d));
  EXPECT_EQ(net.graph().degree(a), 1u) << "no NoN candidates available";
}

TEST(Overlay, RefillReachesDminThroughNoN) {
  Rng rng(10);
  OverlayNetwork net(band(2, 4), rng);
  const NodeId hub = net.add_node(true);
  const NodeId x = net.add_node(true);
  const NodeId y = net.add_node(true);
  net.request_peering(x, hub);
  net.request_peering(y, hub);
  // x's NoN contains y (through hub).
  net.refill(x);
  EXPECT_TRUE(net.graph().has_edge(x, y));
  EXPECT_EQ(net.graph().degree(x), 2u);
}

TEST(Overlay, ContainmentDetection) {
  Rng rng(11);
  OverlayNetwork net(band(1, 2), rng);
  const NodeId t = net.add_node(true);
  const NodeId friendly = net.add_node(true);
  net.request_peering(friendly, t);
  EXPECT_FALSE(net.contained(t));
  const NodeId s1 = net.add_node(false, 0);
  const NodeId s2 = net.add_node(false, 0);
  net.request_peering(s1, t);  // fills to dmax
  EXPECT_EQ(net.request_peering(s2, t), PeerDecision::AcceptedEvicted);
  // friendly (true degree 1... ) — force the state: drop any honest link.
  if (net.graph().has_edge(friendly, t)) net.drop_edge(friendly, t);
  EXPECT_TRUE(net.contained(t));
}

TEST(Overlay, IsolatedNodeCountsAsContained) {
  Rng rng(12);
  OverlayNetwork net(band(1, 2), rng);
  const NodeId t = net.add_node(true);
  EXPECT_TRUE(net.contained(t)) << "no peers = cut off from the botnet";
}

TEST(Overlay, HonestEdgesAndComponents) {
  Rng rng(13);
  OverlayNetwork net(band(1, 10), rng);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  const NodeId c = net.add_node(true);
  const NodeId s = net.add_node(false, 1);
  net.request_peering(a, b);
  net.request_peering(s, c);  // sybil-honest edge: not an honest edge
  EXPECT_EQ(net.honest_edges(), 1u);
  EXPECT_EQ(net.honest_components(), 2u);  // {a,b}, {c}
  net.request_peering(b, c);
  EXPECT_EQ(net.honest_components(), 1u);
}

TEST(Overlay, HonestComponentLabelsIgnoreSybilBridges) {
  // Two honest nodes joined only through a sybil are NOT connected for
  // probe purposes (sybils refuse to relay).
  Rng rng(14);
  OverlayNetwork net(band(1, 10), rng);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  const NodeId s = net.add_node(false, 1);
  net.request_peering(s, a);
  net.request_peering(s, b);
  const auto labels = net.honest_component_labels();
  EXPECT_NE(labels[a], labels[b]);
}

TEST(Overlay, RetireRemovesNode) {
  Rng rng(15);
  OverlayNetwork net(band(1, 10), rng);
  const NodeId a = net.add_node(true);
  const NodeId b = net.add_node(true);
  net.request_peering(a, b);
  net.retire(a);
  EXPECT_FALSE(net.alive(a));
  EXPECT_EQ(net.graph().degree(b), 0u);
}

TEST(Overlay, RandomRegularConstruction) {
  Rng rng(16);
  OverlayNetwork net =
      OverlayNetwork::random_regular(50, 4, band(4, 6), rng);
  EXPECT_EQ(net.graph().num_alive(), 50u);
  for (const NodeId u : net.honest_nodes())
    EXPECT_EQ(net.graph().degree(u), 4u);
  EXPECT_EQ(net.honest_components(), 1u);
}

}  // namespace
}  // namespace onion::core
