// DynamicConnectivity tests: exact component tracking under arbitrary
// add/delete interleavings. Unit cases pin the replacement-search edge
// cases (bridges, cycles, two-clique necks, vertex retirement order);
// the adversarial suite drives the worst case for replacement-edge
// search (cutting a long path bridge by bridge); the property sweep
// differential-tests 12 seeds of randomized operations against a
// from-scratch union-find reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "graph/dynamic_connectivity.hpp"
#include "graph/union_find.hpp"

namespace onion::graph {
namespace {

/// From-scratch reference: components / largest / per-size counts of the
/// current edge multiset, via union-find over the tracked vertices.
struct Reference {
  std::uint64_t components = 0;
  std::uint64_t largest = 0;
};

Reference reference_of(const std::vector<NodeId>& vertices,
                       const std::vector<std::pair<NodeId, NodeId>>& edges,
                       std::size_t capacity) {
  UnionFind uf(capacity);
  for (const auto& [u, v] : edges) uf.unite(u, v);
  std::map<std::size_t, std::uint64_t> size_of_root;
  Reference r;
  for (const NodeId u : vertices) {
    const std::uint64_t s = ++size_of_root[uf.find(u)];
    if (s == 1) ++r.components;
    r.largest = std::max(r.largest, s);
  }
  return r;
}

// ====================================================================
// Unit cases
// ====================================================================

TEST(DynConn, SingletonLifecycle) {
  DynamicConnectivity dc(4);
  EXPECT_EQ(dc.components(), 0u);
  EXPECT_EQ(dc.largest_component(), 0u);
  dc.insert_vertex(2);
  EXPECT_TRUE(dc.tracked(2));
  EXPECT_FALSE(dc.tracked(0));
  EXPECT_EQ(dc.components(), 1u);
  EXPECT_EQ(dc.largest_component(), 1u);
  dc.remove_vertex(2);
  EXPECT_FALSE(dc.tracked(2));
  EXPECT_EQ(dc.components(), 0u);
  EXPECT_EQ(dc.largest_component(), 0u);
}

TEST(DynConn, BridgeDeletionSplits) {
  DynamicConnectivity dc(2);
  dc.insert_vertex(0);
  dc.insert_vertex(1);
  dc.insert_edge(0, 1);
  EXPECT_EQ(dc.components(), 1u);
  EXPECT_TRUE(dc.same_component(0, 1));
  dc.remove_edge(0, 1);
  EXPECT_EQ(dc.components(), 2u);
  EXPECT_FALSE(dc.same_component(0, 1));
  EXPECT_EQ(dc.splits(), 1u);
}

TEST(DynConn, CycleEdgeDeletionDoesNotSplit) {
  DynamicConnectivity dc(3);
  for (NodeId u = 0; u < 3; ++u) dc.insert_vertex(u);
  dc.insert_edge(0, 1);
  dc.insert_edge(1, 2);
  dc.insert_edge(2, 0);
  EXPECT_EQ(dc.components(), 1u);
  dc.remove_edge(0, 1);  // replacement path 0-2-1 exists
  EXPECT_EQ(dc.components(), 1u);
  EXPECT_TRUE(dc.same_component(0, 1));
  EXPECT_EQ(dc.splits(), 0u);
  dc.remove_edge(2, 0);  // now 0 is cut off
  EXPECT_EQ(dc.components(), 2u);
  EXPECT_EQ(dc.component_size(1), 2u);
  EXPECT_EQ(dc.component_size(0), 1u);
}

TEST(DynConn, TwoCliquesJoinedByNeck) {
  // Two 4-cliques joined by one edge: cutting intra-clique edges never
  // splits; cutting the neck splits into 4+4.
  DynamicConnectivity dc(8);
  for (NodeId u = 0; u < 8; ++u) dc.insert_vertex(u);
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = a + 1; b < 4; ++b) {
      dc.insert_edge(a, b);
      dc.insert_edge(a + 4, b + 4);
    }
  dc.insert_edge(3, 4);
  EXPECT_EQ(dc.components(), 1u);
  EXPECT_EQ(dc.largest_component(), 8u);
  dc.remove_edge(0, 1);  // clique-internal: still connected
  EXPECT_EQ(dc.components(), 1u);
  dc.remove_edge(3, 4);  // the neck
  EXPECT_EQ(dc.components(), 2u);
  EXPECT_EQ(dc.largest_component(), 4u);
  EXPECT_FALSE(dc.same_component(0, 7));
  EXPECT_TRUE(dc.same_component(0, 3));
  EXPECT_TRUE(dc.same_component(4, 7));
}

TEST(DynConn, VertexRemovalAfterEdgeDetachment) {
  // The tracker removes a dying bot's edges one at a time, then the
  // vertex — mirroring Graph::remove_node's observer decomposition.
  DynamicConnectivity dc(4);
  for (NodeId u = 0; u < 4; ++u) dc.insert_vertex(u);
  dc.insert_edge(0, 1);
  dc.insert_edge(0, 2);
  dc.insert_edge(0, 3);
  dc.insert_edge(1, 2);
  EXPECT_EQ(dc.components(), 1u);
  dc.remove_edge(0, 1);
  dc.remove_edge(0, 2);
  dc.remove_edge(0, 3);  // 3 loses its only path to {1,2}
  EXPECT_EQ(dc.degree(0), 0u);
  EXPECT_EQ(dc.components(), 3u);  // {0} {3} {1,2}
  dc.remove_vertex(0);
  EXPECT_EQ(dc.components(), 2u);
  EXPECT_EQ(dc.largest_component(), 2u);
  EXPECT_EQ(dc.num_vertices(), 3u);
}

TEST(DynConn, RemovingNonIsolatedVertexIsRejected) {
  DynamicConnectivity dc(2);
  dc.insert_vertex(0);
  dc.insert_vertex(1);
  dc.insert_edge(0, 1);
  EXPECT_THROW(dc.remove_vertex(0), ContractViolation);
}

TEST(DynConn, ResetReusesStorageAndClearsState) {
  DynamicConnectivity dc(8);
  for (NodeId u = 0; u < 8; ++u) dc.insert_vertex(u);
  for (NodeId u = 0; u + 1 < 8; ++u) dc.insert_edge(u, u + 1);
  EXPECT_EQ(dc.components(), 1u);
  dc.reset(8);
  EXPECT_EQ(dc.components(), 0u);
  EXPECT_EQ(dc.num_vertices(), 0u);
  EXPECT_EQ(dc.num_edges(), 0u);
  EXPECT_FALSE(dc.tracked(0));
  dc.insert_vertex(0);
  dc.insert_vertex(1);
  dc.insert_edge(0, 1);
  EXPECT_EQ(dc.largest_component(), 2u);
}

// ====================================================================
// Adversarial bridge sequences: worst case for replacement search
// ====================================================================

TEST(DynConnAdversarial, PathCutBridgeByBridge) {
  // A long path is all bridges. Cutting every edge left-to-right forces
  // a (failed) replacement search per cut; the exhausted side is always
  // the single detached prefix vertex, so total work stays linear even
  // though every deletion is the search's worst case.
  constexpr NodeId kN = 400;
  DynamicConnectivity dc(kN);
  for (NodeId u = 0; u < kN; ++u) dc.insert_vertex(u);
  for (NodeId u = 0; u + 1 < kN; ++u) dc.insert_edge(u, u + 1);
  EXPECT_EQ(dc.components(), 1u);
  for (NodeId u = 0; u + 1 < kN; ++u) {
    dc.remove_edge(u, u + 1);
    EXPECT_EQ(dc.components(), static_cast<std::uint64_t>(u) + 2);
    EXPECT_EQ(dc.largest_component(), static_cast<std::uint64_t>(kN) - u - 1);
  }
  EXPECT_EQ(dc.splits(), static_cast<std::uint64_t>(kN) - 1);
  // The exhausted side is the smaller one (±1 alternation step): each
  // prefix cut costs O(1) expansions, not O(remaining path).
  EXPECT_LE(dc.search_steps(), 4u * kN);
}

TEST(DynConnAdversarial, MiddleCutPaysOnlySmallerSide) {
  // Cutting a path exactly in half: the search must charge the smaller
  // side, so the cost is ~n/2 expansions, not ~n.
  constexpr NodeId kN = 256;
  DynamicConnectivity dc(kN);
  for (NodeId u = 0; u < kN; ++u) dc.insert_vertex(u);
  for (NodeId u = 0; u + 1 < kN; ++u) dc.insert_edge(u, u + 1);
  const std::uint64_t before = dc.search_steps();
  dc.remove_edge(kN / 2 - 1, kN / 2);
  EXPECT_EQ(dc.components(), 2u);
  EXPECT_EQ(dc.largest_component(), kN / 2);
  EXPECT_LE(dc.search_steps() - before, kN + 4);  // both frontiers ≈ n/2
}

TEST(DynConnAdversarial, StarCenterRetirement) {
  // A star is n-1 bridges sharing an endpoint; killing the center one
  // spoke at a time rains singletons.
  constexpr NodeId kN = 64;
  DynamicConnectivity dc(kN);
  for (NodeId u = 0; u < kN; ++u) dc.insert_vertex(u);
  for (NodeId u = 1; u < kN; ++u) dc.insert_edge(0, u);
  EXPECT_EQ(dc.largest_component(), kN);
  for (NodeId u = 1; u < kN; ++u) dc.remove_edge(0, u);
  EXPECT_EQ(dc.components(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(dc.largest_component(), 1u);
  dc.remove_vertex(0);
  EXPECT_EQ(dc.components(), static_cast<std::uint64_t>(kN) - 1);
}

// ====================================================================
// Property sweep: 12 seeds of randomized interleavings vs union-find
// ====================================================================

TEST(DynConnDifferential, MatchesUnionFindRebuildAcrossSeeds) {
  constexpr std::size_t kCap = 96;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed);
    DynamicConnectivity dc(kCap);
    std::vector<NodeId> vertices;
    std::vector<std::pair<NodeId, NodeId>> edges;
    const auto vertex_index = [&](NodeId u) {
      return std::find(vertices.begin(), vertices.end(), u) -
             vertices.begin();
    };
    for (int op = 0; op < 600; ++op) {
      const std::uint64_t kind = rng.uniform(100);
      if (kind < 30 && vertices.size() < kCap) {  // insert vertex
        NodeId u = 0;
        while (dc.tracked(u)) ++u;
        dc.insert_vertex(u);
        vertices.push_back(u);
      } else if (kind < 70 && vertices.size() >= 2) {  // insert edge
        const NodeId u = vertices[rng.uniform(vertices.size())];
        const NodeId v = vertices[rng.uniform(vertices.size())];
        if (u == v) continue;
        const auto present = [&](NodeId a, NodeId b) {
          return std::find(edges.begin(), edges.end(),
                           std::make_pair(std::min(a, b), std::max(a, b))) !=
                 edges.end();
        };
        if (present(u, v)) continue;
        dc.insert_edge(u, v);
        edges.emplace_back(std::min(u, v), std::max(u, v));
      } else if (kind < 90 && !edges.empty()) {  // remove edge
        const std::size_t e = rng.uniform(edges.size());
        dc.remove_edge(edges[e].first, edges[e].second);
        edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(e));
      } else if (!vertices.empty()) {  // retire a vertex (edges first)
        const NodeId u = vertices[rng.uniform(vertices.size())];
        for (std::size_t e = edges.size(); e-- > 0;) {
          if (edges[e].first != u && edges[e].second != u) continue;
          dc.remove_edge(edges[e].first, edges[e].second);
          edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(e));
        }
        dc.remove_vertex(u);
        vertices.erase(vertices.begin() +
                       static_cast<std::ptrdiff_t>(vertex_index(u)));
      }

      const Reference ref = reference_of(vertices, edges, kCap);
      ASSERT_EQ(dc.components(), ref.components)
          << "seed " << seed << " op " << op;
      ASSERT_EQ(dc.largest_component(), ref.largest)
          << "seed " << seed << " op " << op;
      ASSERT_EQ(dc.num_vertices(), vertices.size());
      ASSERT_EQ(dc.num_edges(), edges.size());
    }
  }
}

TEST(DynConnDifferential, CountersAreDeterministic) {
  // Same operation sequence => identical merge/split/search counters —
  // the structure draws no randomness and iterates no unordered state.
  const auto run = [] {
    DynamicConnectivity dc(32);
    Rng rng(99);
    for (NodeId u = 0; u < 32; ++u) dc.insert_vertex(u);
    std::vector<std::pair<NodeId, NodeId>> edges;
    for (int op = 0; op < 300; ++op) {
      const NodeId u = static_cast<NodeId>(rng.uniform(32));
      const NodeId v = static_cast<NodeId>(rng.uniform(32));
      if (u == v) continue;
      const auto key = std::make_pair(std::min(u, v), std::max(u, v));
      const auto it = std::find(edges.begin(), edges.end(), key);
      if (it == edges.end()) {
        dc.insert_edge(key.first, key.second);
        edges.push_back(key);
      } else {
        dc.remove_edge(key.first, key.second);
        edges.erase(it);
      }
    }
    return std::tuple{dc.merges(), dc.splits(), dc.search_steps(),
                      dc.components(), dc.largest_component()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace onion::graph
