// Scenario campaign engine tests: the golden-determinism contract
// (equal spec + equal seed => byte-identical snapshot stream; different
// seed => different stream), snapshot cadence and semantics, attack
// phases, defense toggles, and sink behavior.
#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace onion::scenario {
namespace {

// A spec with enough going on that seeds matter: churn plus a
// random-takedown window.
ScenarioSpec busy_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 300;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  spec.churn.joins_per_hour = 300.0;
  spec.churn.leaves_per_hour = 300.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 5 * kMinute;
  takedown.stop = 15 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  spec.metrics.diameter_sweeps = 2;
  return spec;
}

// ====================================================================
// Golden determinism
// ====================================================================

TEST(ScenarioDeterminism, EqualSeedReplaysByteIdentically) {
  HashSink first;
  CampaignEngine(busy_spec(42), first).run();
  HashSink second;
  CampaignEngine(busy_spec(42), second).run();
  EXPECT_EQ(first.count(), second.count());
  EXPECT_EQ(first.hex_digest(), second.hex_digest());
}

TEST(ScenarioDeterminism, EqualSeedMatchesSnapshotBySnapshot) {
  MemorySink first;
  CampaignEngine(busy_spec(7), first).run();
  MemorySink second;
  CampaignEngine(busy_spec(7), second).run();
  ASSERT_EQ(first.snapshots().size(), second.snapshots().size());
  for (std::size_t i = 0; i < first.snapshots().size(); ++i)
    EXPECT_EQ(serialize(first.snapshots()[i]),
              serialize(second.snapshots()[i]))
        << "snapshot " << i << " diverged";
}

TEST(ScenarioDeterminism, DifferentSeedDiverges) {
  HashSink first;
  CampaignEngine(busy_spec(42), first).run();
  HashSink second;
  CampaignEngine(busy_spec(43), second).run();
  EXPECT_EQ(first.count(), second.count());  // cadence is seed-free
  EXPECT_NE(first.hex_digest(), second.hex_digest());
}

// ====================================================================
// Snapshot cadence and content
// ====================================================================

TEST(ScenarioEngine, SnapshotsFollowTheMetricsPeriod) {
  ScenarioSpec spec = busy_spec(1);
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  // t = 0 baseline plus one per minute through the 20-minute horizon.
  ASSERT_EQ(sink.snapshots().size(), 21u);
  for (std::size_t i = 0; i < sink.snapshots().size(); ++i)
    EXPECT_EQ(sink.snapshots()[i].time, i * kMinute);
  EXPECT_EQ(end.time, spec.horizon);
  EXPECT_EQ(serialize(end), serialize(sink.snapshots().back()));
}

TEST(ScenarioEngine, UnalignedHorizonStillSnapshotsAtTheEnd) {
  ScenarioSpec spec = busy_spec(1);
  spec.horizon = 5 * kMinute + 30 * kSecond;
  MemorySink sink;
  CampaignEngine(spec, sink).run();
  // 0..5 minutes plus the final half-minute mark.
  ASSERT_EQ(sink.snapshots().size(), 7u);
  EXPECT_EQ(sink.snapshots().back().time, spec.horizon);
}

TEST(ScenarioEngine, BaselineSnapshotDescribesThePristineOverlay) {
  ScenarioSpec spec = busy_spec(3);
  MemorySink sink;
  CampaignEngine(spec, sink).run();
  const MetricsSnapshot& start = sink.snapshots().front();
  EXPECT_EQ(start.time, 0u);
  EXPECT_EQ(start.honest_alive, 300u);
  EXPECT_EQ(start.sybil_alive, 0u);
  EXPECT_EQ(start.honest_edges, 300u * 6 / 2);
  EXPECT_EQ(start.components, 1u);
  EXPECT_EQ(start.largest_component, 300u);
  EXPECT_DOUBLE_EQ(start.largest_fraction, 1.0);
  EXPECT_DOUBLE_EQ(start.average_degree, 6.0);
  ASSERT_EQ(start.degree_histogram.size(), 7u);  // all mass at degree 6
  EXPECT_EQ(start.degree_histogram[6], 300u);
  EXPECT_NE(start.diameter, kNoDiameter);
  EXPECT_EQ(start.joins + start.leaves + start.takedowns, 0u);
}

TEST(ScenarioEngine, CumulativeCountersAreMonotone) {
  MemorySink sink;
  CampaignEngine(busy_spec(11), sink).run();
  const auto& snaps = sink.snapshots();
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].joins, snaps[i - 1].joins);
    EXPECT_GE(snaps[i].leaves, snaps[i - 1].leaves);
    EXPECT_GE(snaps[i].takedowns, snaps[i - 1].takedowns);
    EXPECT_GE(snaps[i].repair_messages, snaps[i - 1].repair_messages);
  }
  // The takedown window is [5, 15) minutes: nothing before, something
  // after (120/h over 10 minutes ~ 20 victims).
  EXPECT_EQ(snaps[5].takedowns, 0u);
  EXPECT_GT(snaps.back().takedowns, 0u);
}

TEST(ScenarioEngine, ChurnKeepsTheHealedOverlayConnected) {
  ScenarioSpec spec = busy_spec(5);
  spec.attacks.clear();  // churn only
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.joins, 0u);
  EXPECT_GT(end.leaves, 0u);
  for (const MetricsSnapshot& s : sink.snapshots())
    EXPECT_TRUE(s.connected()) << "overlay fragmented at t=" << s.time;
}

// ====================================================================
// Attack phases
// ====================================================================

TEST(ScenarioEngine, TakedownsRemoveExactlyTheCountedVictims) {
  ScenarioSpec spec;
  spec.seed = 9;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  AttackPhase takedown;
  takedown.kind = AttackKind::TargetedTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 240.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  EXPECT_GT(end.takedowns, 0u);
  EXPECT_EQ(end.honest_alive, 200u - end.takedowns);
  EXPECT_EQ(engine.ddsr_stats().nodes_removed, end.takedowns);
}

TEST(ScenarioEngine, CentralityTakedownRunsOnSampledBetweenness) {
  ScenarioSpec spec;
  spec.seed = 13;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  AttackPhase takedown;
  takedown.kind = AttackKind::CentralityTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 180.0;
  takedown.betweenness_pivots = 24;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.takedowns, 0u);
  EXPECT_EQ(end.honest_alive, 150u - end.takedowns);
}

TEST(ScenarioEngine, SoapPhaseInjectsClonesAndContains) {
  ScenarioSpec spec;
  spec.seed = 17;
  spec.initial_size = 120;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 5 * kMinute;
  soap.stop = spec.horizon;
  soap.soap_tick = kMinute;
  soap.soap_rounds_per_tick = 2;
  spec.attacks.push_back(soap);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.soap_clones, 0u);
  EXPECT_EQ(end.sybil_alive, end.soap_clones);
  EXPECT_GT(end.soap_contained, 0u);
  // Containment severs honest-honest links: fragmentation rises.
  EXPECT_GT(end.components, 1u);
  EXPECT_LT(end.largest_fraction, 1.0);
  // The honest population itself was never taken down.
  EXPECT_EQ(end.honest_alive, 120u);
}

// ====================================================================
// Defense toggles
// ====================================================================

TEST(ScenarioEngine, RateLimitedJoinersAreRefilledNextRound) {
  ScenarioSpec spec;
  spec.seed = 29;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.defense.rate_limit_per_round = 1;  // aggressive throttling
  spec.defense.round = kMinute;
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  ASSERT_GT(end.joins, 0u);
  // A newcomer whose whole bootstrap round was throttled must not stay
  // isolated: the per-round maintenance pass retries it.
  EXPECT_EQ(end.components, 1u);
  const auto& g = engine.overlay().graph();
  for (const auto u : engine.overlay().honest_nodes())
    EXPECT_GT(g.degree(u), 0u) << "node " << u << " left isolated";
}

TEST(ScenarioEngine, ProofOfWorkChargesBothSidesOfTheSoapFight) {
  ScenarioSpec spec;
  spec.seed = 19;
  spec.initial_size = 100;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  spec.churn.joins_per_hour = 60.0;  // honest joins pay PoW too
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 0;
  soap.stop = spec.horizon;
  spec.attacks.push_back(soap);
  spec.defense.pow_base_cost = 1.0;
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  engine.run();
  EXPECT_GT(engine.overlay().sybil_work_spent(), 0.0);
  EXPECT_GT(engine.overlay().honest_work_spent(), 0.0);
}

// ====================================================================
// Serialization and sinks
// ====================================================================

TEST(ScenarioSnapshot, SerializationCoversEveryField) {
  MetricsSnapshot a;
  a.time = 123;
  a.honest_alive = 5;
  a.degree_histogram = {0, 2, 3};
  MetricsSnapshot b = a;
  EXPECT_EQ(serialize(a), serialize(b));
  b.degree_histogram[1] = 1;  // histogram-only change must show up
  EXPECT_NE(serialize(a), serialize(b));
  MetricsSnapshot c = a;
  c.largest_fraction = 0.5;  // double fields are hashed bit-exactly
  EXPECT_NE(serialize(a), serialize(c));
}

TEST(ScenarioSnapshot, FanoutDeliversToEverySink) {
  MemorySink memory;
  HashSink hash;
  FanoutSink fanout({&memory, &hash});
  MetricsSnapshot s;
  s.time = 5;
  fanout.on_snapshot(s);
  EXPECT_EQ(memory.snapshots().size(), 1u);
  EXPECT_EQ(hash.count(), 1u);
}

TEST(ScenarioEngine, RunsExactlyOnce) {
  MemorySink sink;
  CampaignEngine engine(busy_spec(23), sink);
  engine.run();
  EXPECT_THROW(engine.run(), ContractViolation);
}

}  // namespace
}  // namespace onion::scenario
