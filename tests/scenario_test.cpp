// Scenario campaign engine tests: the golden-determinism contract
// (equal spec + equal seed => byte-identical snapshot stream; different
// seed => different stream), snapshot cadence and semantics, attack
// phases, defense toggles, and sink behavior.
#include <gtest/gtest.h>

#include "scenario/engine.hpp"

namespace onion::scenario {
namespace {

// A spec with enough going on that seeds matter: churn plus a
// random-takedown window.
ScenarioSpec busy_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 300;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  spec.churn.joins_per_hour = 300.0;
  spec.churn.leaves_per_hour = 300.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 5 * kMinute;
  takedown.stop = 15 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  spec.metrics.diameter_sweeps = 2;
  return spec;
}

// ====================================================================
// Golden determinism
// ====================================================================

TEST(ScenarioDeterminism, EqualSeedReplaysByteIdentically) {
  HashSink first;
  CampaignEngine(busy_spec(42), first).run();
  HashSink second;
  CampaignEngine(busy_spec(42), second).run();
  EXPECT_EQ(first.count(), second.count());
  EXPECT_EQ(first.hex_digest(), second.hex_digest());
}

TEST(ScenarioDeterminism, EqualSeedMatchesSnapshotBySnapshot) {
  MemorySink first;
  CampaignEngine(busy_spec(7), first).run();
  MemorySink second;
  CampaignEngine(busy_spec(7), second).run();
  ASSERT_EQ(first.snapshots().size(), second.snapshots().size());
  for (std::size_t i = 0; i < first.snapshots().size(); ++i)
    EXPECT_EQ(serialize(first.snapshots()[i]),
              serialize(second.snapshots()[i]))
        << "snapshot " << i << " diverged";
}

TEST(ScenarioDeterminism, DifferentSeedDiverges) {
  HashSink first;
  CampaignEngine(busy_spec(42), first).run();
  HashSink second;
  CampaignEngine(busy_spec(43), second).run();
  EXPECT_EQ(first.count(), second.count());  // cadence is seed-free
  EXPECT_NE(first.hex_digest(), second.hex_digest());
}

// ====================================================================
// Snapshot cadence and content
// ====================================================================

TEST(ScenarioEngine, SnapshotsFollowTheMetricsPeriod) {
  ScenarioSpec spec = busy_spec(1);
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  // t = 0 baseline plus one per minute through the 20-minute horizon.
  ASSERT_EQ(sink.snapshots().size(), 21u);
  for (std::size_t i = 0; i < sink.snapshots().size(); ++i)
    EXPECT_EQ(sink.snapshots()[i].time, i * kMinute);
  EXPECT_EQ(end.time, spec.horizon);
  EXPECT_EQ(serialize(end), serialize(sink.snapshots().back()));
}

TEST(ScenarioEngine, UnalignedHorizonStillSnapshotsAtTheEnd) {
  ScenarioSpec spec = busy_spec(1);
  spec.horizon = 5 * kMinute + 30 * kSecond;
  MemorySink sink;
  CampaignEngine(spec, sink).run();
  // 0..5 minutes plus the final half-minute mark.
  ASSERT_EQ(sink.snapshots().size(), 7u);
  EXPECT_EQ(sink.snapshots().back().time, spec.horizon);
}

TEST(ScenarioEngine, BaselineSnapshotDescribesThePristineOverlay) {
  ScenarioSpec spec = busy_spec(3);
  MemorySink sink;
  CampaignEngine(spec, sink).run();
  const MetricsSnapshot& start = sink.snapshots().front();
  EXPECT_EQ(start.time, 0u);
  EXPECT_EQ(start.honest_alive, 300u);
  EXPECT_EQ(start.sybil_alive, 0u);
  EXPECT_EQ(start.honest_edges, 300u * 6 / 2);
  EXPECT_EQ(start.components, 1u);
  EXPECT_EQ(start.largest_component, 300u);
  EXPECT_DOUBLE_EQ(start.largest_fraction, 1.0);
  EXPECT_DOUBLE_EQ(start.average_degree, 6.0);
  ASSERT_EQ(start.degree_histogram.size(), 7u);  // all mass at degree 6
  EXPECT_EQ(start.degree_histogram[6], 300u);
  EXPECT_NE(start.diameter, kNoDiameter);
  EXPECT_EQ(start.joins + start.leaves + start.takedowns, 0u);
}

TEST(ScenarioEngine, CumulativeCountersAreMonotone) {
  MemorySink sink;
  CampaignEngine(busy_spec(11), sink).run();
  const auto& snaps = sink.snapshots();
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].joins, snaps[i - 1].joins);
    EXPECT_GE(snaps[i].leaves, snaps[i - 1].leaves);
    EXPECT_GE(snaps[i].takedowns, snaps[i - 1].takedowns);
    EXPECT_GE(snaps[i].repair_messages, snaps[i - 1].repair_messages);
  }
  // The takedown window is [5, 15) minutes: nothing before, something
  // after (120/h over 10 minutes ~ 20 victims).
  EXPECT_EQ(snaps[5].takedowns, 0u);
  EXPECT_GT(snaps.back().takedowns, 0u);
}

TEST(ScenarioEngine, ChurnKeepsTheHealedOverlayConnected) {
  ScenarioSpec spec = busy_spec(5);
  spec.attacks.clear();  // churn only
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.joins, 0u);
  EXPECT_GT(end.leaves, 0u);
  for (const MetricsSnapshot& s : sink.snapshots())
    EXPECT_TRUE(s.connected()) << "overlay fragmented at t=" << s.time;
}

// ====================================================================
// Attack phases
// ====================================================================

TEST(ScenarioEngine, TakedownsRemoveExactlyTheCountedVictims) {
  ScenarioSpec spec;
  spec.seed = 9;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  AttackPhase takedown;
  takedown.kind = AttackKind::TargetedTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 240.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  EXPECT_GT(end.takedowns, 0u);
  EXPECT_EQ(end.honest_alive, 200u - end.takedowns);
  EXPECT_EQ(engine.ddsr_stats().nodes_removed, end.takedowns);
}

TEST(ScenarioEngine, CentralityTakedownRunsOnSampledBetweenness) {
  ScenarioSpec spec;
  spec.seed = 13;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  AttackPhase takedown;
  takedown.kind = AttackKind::CentralityTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 180.0;
  takedown.betweenness_pivots = 24;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.takedowns, 0u);
  EXPECT_EQ(end.honest_alive, 150u - end.takedowns);
}

TEST(ScenarioEngine, SoapPhaseInjectsClonesAndContains) {
  ScenarioSpec spec;
  spec.seed = 17;
  spec.initial_size = 120;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 5 * kMinute;
  soap.stop = spec.horizon;
  soap.soap_tick = kMinute;
  soap.soap_rounds_per_tick = 2;
  spec.attacks.push_back(soap);
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  const MetricsSnapshot end = CampaignEngine(spec, sink).run();
  EXPECT_GT(end.soap_clones, 0u);
  EXPECT_EQ(end.sybil_alive, end.soap_clones);
  EXPECT_GT(end.soap_contained, 0u);
  // Containment severs honest-honest links: fragmentation rises.
  EXPECT_GT(end.components, 1u);
  EXPECT_LT(end.largest_fraction, 1.0);
  // The honest population itself was never taken down.
  EXPECT_EQ(end.honest_alive, 120u);
}

// ====================================================================
// Defense toggles
// ====================================================================

TEST(ScenarioEngine, RateLimitedJoinersAreRefilledNextRound) {
  ScenarioSpec spec;
  spec.seed = 29;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.defense.rate_limit_per_round = 1;  // aggressive throttling
  spec.defense.round = kMinute;
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  ASSERT_GT(end.joins, 0u);
  // A newcomer whose whole bootstrap round was throttled must not stay
  // isolated: the per-round maintenance pass retries it.
  EXPECT_EQ(end.components, 1u);
  const auto& g = engine.overlay().graph();
  for (const auto u : engine.overlay().honest_nodes())
    EXPECT_GT(g.degree(u), 0u) << "node " << u << " left isolated";
}

TEST(ScenarioEngine, ProofOfWorkChargesBothSidesOfTheSoapFight) {
  ScenarioSpec spec;
  spec.seed = 19;
  spec.initial_size = 100;
  spec.degree = 6;
  spec.horizon = 20 * kMinute;
  spec.churn.joins_per_hour = 60.0;  // honest joins pay PoW too
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = 0;
  soap.stop = spec.horizon;
  spec.attacks.push_back(soap);
  spec.defense.pow_base_cost = 1.0;
  spec.metrics.period = 5 * kMinute;
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  engine.run();
  EXPECT_GT(engine.overlay().sybil_work_spent(), 0.0);
  EXPECT_GT(engine.overlay().honest_work_spent(), 0.0);
}

// ====================================================================
// Serialization and sinks
// ====================================================================

TEST(ScenarioSnapshot, SerializationCoversEveryField) {
  MetricsSnapshot a;
  a.time = 123;
  a.honest_alive = 5;
  a.degree_histogram = {0, 2, 3};
  MetricsSnapshot b = a;
  EXPECT_EQ(serialize(a), serialize(b));
  b.degree_histogram[1] = 1;  // histogram-only change must show up
  EXPECT_NE(serialize(a), serialize(b));
  MetricsSnapshot c = a;
  c.largest_fraction = 0.5;  // double fields are hashed bit-exactly
  EXPECT_NE(serialize(a), serialize(c));
}

TEST(ScenarioSnapshot, FanoutDeliversToEverySink) {
  MemorySink memory;
  HashSink hash;
  FanoutSink fanout({&memory, &hash});
  MetricsSnapshot s;
  s.time = 5;
  fanout.on_snapshot(s);
  EXPECT_EQ(memory.snapshots().size(), 1u);
  EXPECT_EQ(hash.count(), 1u);
}

TEST(ScenarioEngine, RunsExactlyOnce) {
  MemorySink sink;
  CampaignEngine engine(busy_spec(23), sink);
  engine.run();
  EXPECT_THROW(engine.run(), ContractViolation);
}

// ====================================================================
// Adaptive attacker differentials
// ====================================================================

// A campaign with churn plus one takedown window of the given kind;
// adaptive phases default to refresh_period = 0 (the live re-rank
// limit) unless overridden by the caller.
ScenarioSpec ranked_takedown_spec(std::uint64_t seed, AttackKind kind,
                                  RankMetric rank) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 250;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  spec.churn.joins_per_hour = 120.0;
  spec.churn.leaves_per_hour = 120.0;
  AttackPhase takedown;
  takedown.kind = kind;
  takedown.rank = rank;
  takedown.start = 5 * kMinute;
  takedown.stop = 25 * kMinute;
  takedown.takedowns_per_hour = 180.0;
  takedown.betweenness_pivots = 24;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

struct RecordedRun {
  CampaignTrace trace;
  std::string snapshot_digest;
};

RecordedRun record_run(const ScenarioSpec& spec) {
  RecordedRun run;
  HashSink hash;
  FanoutSink fanout({&run.trace, &hash});
  CampaignEngine(spec, fanout, &run.trace).run();
  run.snapshot_digest = hash.hex_digest();
  return run;
}

std::size_t count_kind(const CampaignTrace& trace, TraceEventKind kind) {
  std::size_t n = 0;
  for (const CampaignEvent& e : trace.events())
    if (e.kind == kind) ++n;
  return n;
}

TEST(AdaptiveAttacker, LiveRerankIsByteIdenticalToCentralityTakedown) {
  // refresh cadence -> infinity (period 0): the adaptive attacker
  // re-surveys before every strike, which must reproduce the static
  // CentralityTakedown event stream and snapshot stream byte-for-byte.
  const RecordedRun centrality = record_run(ranked_takedown_spec(
      71, AttackKind::CentralityTakedown, RankMetric::SampledBetweenness));
  const RecordedRun adaptive = record_run(ranked_takedown_spec(
      71, AttackKind::AdaptiveTakedown, RankMetric::SampledBetweenness));
  EXPECT_EQ(adaptive.snapshot_digest, centrality.snapshot_digest);
  EXPECT_EQ(adaptive.trace.fingerprint(), centrality.trace.fingerprint());
  EXPECT_EQ(adaptive.trace.events(), centrality.trace.events());
  EXPECT_GT(count_kind(adaptive.trace, TraceEventKind::Takedown), 0u);
}

TEST(AdaptiveAttacker, LiveDegreeRerankIsByteIdenticalToTargetedTakedown) {
  const RecordedRun targeted = record_run(ranked_takedown_spec(
      73, AttackKind::TargetedTakedown, RankMetric::Degree));
  const RecordedRun adaptive = record_run(ranked_takedown_spec(
      73, AttackKind::AdaptiveTakedown, RankMetric::Degree));
  EXPECT_EQ(adaptive.snapshot_digest, targeted.snapshot_digest);
  EXPECT_EQ(adaptive.trace.events(), targeted.trace.events());
}

TEST(AdaptiveAttacker, RefreshCadenceIsARealKnob) {
  // Rank-once (kNeverRefresh) works a stale hit list: a different
  // campaign than the live re-ranker, with no refresh events. A finite
  // cadence records its scheduled re-surveys in the trace.
  ScenarioSpec live = ranked_takedown_spec(
      79, AttackKind::AdaptiveTakedown, RankMetric::SampledBetweenness);
  ScenarioSpec once = live;
  once.attacks[0].refresh_period = kNeverRefresh;
  ScenarioSpec cadence = live;
  cadence.attacks[0].refresh_period = 4 * kMinute;

  const RecordedRun live_run = record_run(live);
  const RecordedRun once_run = record_run(once);
  const RecordedRun cadence_run = record_run(cadence);
  EXPECT_NE(once_run.snapshot_digest, live_run.snapshot_digest);
  EXPECT_EQ(count_kind(live_run.trace, TraceEventKind::AdaptiveRefresh),
            0u);
  EXPECT_EQ(count_kind(once_run.trace, TraceEventKind::AdaptiveRefresh),
            0u);
  // [5, 25) min window at a 4-minute cadence: refreshes at 5, 9, 13,
  // 17, 21 minutes.
  EXPECT_EQ(count_kind(cadence_run.trace, TraceEventKind::AdaptiveRefresh),
            5u);
  for (const CampaignEvent& e : cadence_run.trace.events()) {
    if (e.kind == TraceEventKind::AdaptiveRefresh) {
      EXPECT_EQ((e.at - 5 * kMinute) % (4 * kMinute), 0u);
    }
  }
}

// ====================================================================
// Multi-wave plans
// ====================================================================

TEST(WavePlan, OneWavePlanMatchesTheSinglePhaseRun) {
  // The same attack expressed as a standalone phase and as a one-wave
  // plan must produce the same campaign: identical events (modulo the
  // wave's boundary marker) and identical snapshots (modulo the wave
  // attribution field, which only the plan run carries).
  ScenarioSpec single = ranked_takedown_spec(
      83, AttackKind::RandomTakedown, RankMetric::Degree);
  ScenarioSpec plan = single;
  plan.attacks.clear();
  AttackWave wave;
  wave.attack = single.attacks[0];
  wave.duration = single.attacks[0].stop - single.attacks[0].start;
  plan.waves.start = single.attacks[0].start;
  plan.waves.waves.push_back(wave);

  const RecordedRun a = record_run(single);
  const RecordedRun b = record_run(plan);

  std::vector<CampaignEvent> b_events;
  std::size_t wave_starts = 0;
  for (const CampaignEvent& e : b.trace.events()) {
    if (e.kind == TraceEventKind::WaveStart) {
      ++wave_starts;
      EXPECT_EQ(e.at, plan.waves.start);
      continue;
    }
    b_events.push_back(e);
  }
  EXPECT_EQ(wave_starts, 1u);
  EXPECT_EQ(b_events, a.trace.events());

  ASSERT_EQ(a.trace.snapshots().size(), b.trace.snapshots().size());
  std::uint64_t final_attributed = 0;
  for (std::size_t i = 0; i < b.trace.snapshots().size(); ++i) {
    MetricsSnapshot stripped = b.trace.snapshots()[i];
    ASSERT_EQ(stripped.wave_takedowns.size(), 1u);
    final_attributed = stripped.wave_takedowns[0];
    EXPECT_EQ(final_attributed, stripped.takedowns)
        << "every victim belongs to the only wave";
    stripped.wave_takedowns.clear();
    EXPECT_EQ(serialize(stripped), serialize(a.trace.snapshots()[i]))
        << "snapshot " << i;
  }
  EXPECT_GT(final_attributed, 0u);
}

TEST(WavePlan, QuietPeriodsSeparateWavesAndAttributeVictims) {
  ScenarioSpec spec;
  spec.seed = 89;
  spec.initial_size = 300;
  spec.degree = 6;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 60.0;
  spec.churn.leaves_per_hour = 60.0;
  AttackWave wave;
  wave.attack.kind = AttackKind::AdaptiveTakedown;
  wave.attack.rank = RankMetric::Degree;
  wave.attack.takedowns_per_hour = 360.0;
  wave.duration = 10 * kMinute;
  wave.quiet_after = 5 * kMinute;
  spec.waves.start = 5 * kMinute;
  spec.waves.waves.assign(3, wave);
  spec.metrics.period = 5 * kMinute;

  const RecordedRun run = record_run(spec);
  // Waves at [5,15), [20,30), [35,45) minutes.
  const SimTime starts[] = {5 * kMinute, 20 * kMinute, 35 * kMinute};
  std::size_t seen_starts = 0;
  std::uint64_t takedowns = 0;
  for (const CampaignEvent& e : run.trace.events()) {
    if (e.kind == TraceEventKind::WaveStart) {
      ASSERT_LT(seen_starts, 3u);
      EXPECT_EQ(e.a, seen_starts);
      EXPECT_EQ(e.at, starts[seen_starts]);
      ++seen_starts;
    }
    if (e.kind == TraceEventKind::Takedown) {
      ++takedowns;
      bool in_some_wave = false;
      for (const SimTime s : starts)
        in_some_wave |= e.at >= s && e.at < s + wave.duration;
      EXPECT_TRUE(in_some_wave)
          << "takedown at t=" << e.at << " outside every wave window";
    }
  }
  EXPECT_EQ(seen_starts, 3u);
  EXPECT_GT(takedowns, 0u);

  const MetricsSnapshot& end = run.trace.snapshots().back();
  ASSERT_EQ(end.wave_takedowns.size(), 3u);
  std::uint64_t attributed = 0;
  for (const std::uint64_t w : end.wave_takedowns) {
    EXPECT_GT(w, 0u) << "every wave should land victims";
    attributed += w;
  }
  EXPECT_EQ(attributed, takedowns);
  // Attribution is cumulative and monotone across the stream.
  for (std::size_t i = 1; i < run.trace.snapshots().size(); ++i) {
    const auto& prev = run.trace.snapshots()[i - 1].wave_takedowns;
    const auto& cur = run.trace.snapshots()[i].wave_takedowns;
    for (std::size_t w = 0; w < cur.size(); ++w)
      EXPECT_GE(cur[w], prev[w]);
  }
}

// ====================================================================
// Session-model churn
// ====================================================================

ScenarioSpec session_spec(std::uint64_t seed, SessionModel model) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 250;
  spec.degree = 6;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 120.0;
  spec.churn.session_leaves = true;
  spec.churn.session.model = model;
  spec.churn.session.mean_hours = 0.6;
  spec.churn.session.pareto_alpha = 1.5;
  spec.metrics.period = 10 * kMinute;
  return spec;
}

TEST(SessionChurn, ReplaysByteIdenticallyAndTheModelMatters) {
  HashSink first;
  CampaignEngine(session_spec(5, SessionModel::Pareto), first).run();
  HashSink second;
  CampaignEngine(session_spec(5, SessionModel::Pareto), second).run();
  EXPECT_EQ(first.hex_digest(), second.hex_digest());

  HashSink lognormal;
  CampaignEngine(session_spec(5, SessionModel::LogNormal), lognormal)
      .run();
  EXPECT_NE(first.hex_digest(), lognormal.hex_digest())
      << "swapping the session model must change the campaign";
}

TEST(SessionChurn, PooledLeaveRateIsIgnoredUnderSessions) {
  ScenarioSpec a = session_spec(7, SessionModel::Exponential);
  ScenarioSpec b = a;
  b.churn.leaves_per_hour = 480.0;  // must be dead config
  HashSink ha;
  CampaignEngine(a, ha).run();
  HashSink hb;
  CampaignEngine(b, hb).run();
  EXPECT_EQ(ha.hex_digest(), hb.hex_digest());
}

TEST(SessionChurn, SessionsDriveLeavesAndAttacksCutThemShort) {
  ScenarioSpec spec = session_spec(11, SessionModel::Exponential);
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);

  const RecordedRun run = record_run(spec);
  const auto& end = run.trace.snapshots().back();
  EXPECT_GT(end.leaves, 0u) << "sessions should expire within the hour";
  EXPECT_GT(end.takedowns, 0u);
  // A bot that died cannot leave again: alive count reconciles exactly,
  // which the lifetimes() derivation enforces internally too.
  EXPECT_EQ(end.honest_alive,
            spec.initial_size + end.joins - end.leaves - end.takedowns);
  const auto lifetimes = run.trace.lifetimes();
  EXPECT_EQ(lifetimes.size(), spec.initial_size + end.joins);
}

// ====================================================================
// Defense-consistent healing
// ====================================================================

TEST(ChargedHealing, DisabledIsTheDefaultAndReproducesThePinnedGolden) {
  // The exact pinned 10k campaign of bench/bench_report.cpp (sparse
  // cadence), with every new feature at its default: the stream
  // fingerprint must equal the committed golden byte-for-byte
  // (tests/goldens/campaign_10k.txt — regenerate only with an intended,
  // explained behavior change). Note the caveat in tests/goldens/
  // README.md: the value is pinned to IEEE-754 + the libm of the CI
  // build environment.
  ScenarioSpec spec;
  spec.seed = 0xbe7c;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  ASSERT_FALSE(spec.defense.charge_healing);

  HashSink sink;
  CampaignEngine(spec, sink).run();
  EXPECT_EQ(
      sink.hex_digest(),
      "3fe636c71996590f0da5bfb139272bb7714b4ba198b3fd84a3bf78e0712067ef");
}

ScenarioSpec defended_spec(bool charge_healing) {
  ScenarioSpec spec;
  spec.seed = 97;
  spec.initial_size = 300;
  spec.degree = 6;
  spec.horizon = 30 * kMinute;
  spec.churn.joins_per_hour = 120.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 5 * kMinute;
  takedown.stop = 25 * kMinute;
  takedown.takedowns_per_hour = 240.0;
  spec.attacks.push_back(takedown);
  spec.defense.rate_limit_per_round = 2;
  spec.defense.pow_base_cost = 0.5;
  spec.defense.pow_growth = 1.0;
  spec.defense.charge_healing = charge_healing;
  spec.metrics.period = 5 * kMinute;
  return spec;
}

TEST(ChargedHealing, ShiftsRepairEconomicsUnderActiveDefenses) {
  HashSink uncharged_sink;
  CampaignEngine uncharged(defended_spec(false), uncharged_sink);
  const MetricsSnapshot without = uncharged.run();

  CampaignTrace trace;
  HashSink charged_sink;
  FanoutSink fanout({&trace, &charged_sink});
  CampaignEngine charged(defended_spec(true), fanout, &trace);
  const MetricsSnapshot with = charged.run();

  EXPECT_NE(uncharged_sink.hex_digest(), charged_sink.hex_digest());
  // Uncharged healing never sends requests; charged healing does, and
  // the active rate limit denies some of them.
  EXPECT_EQ(uncharged.ddsr_stats().heal_requests_denied, 0u);
  EXPECT_GT(charged.ddsr_stats().heal_requests_denied, 0u);
  EXPECT_GT(count_kind(trace, TraceEventKind::HealPeering), 0u);
  // The measurable shift of the ablation: policed repair creates fewer
  // edges, so the self-healing traffic bill drops...
  EXPECT_LT(with.repair_messages, without.repair_messages);
  // ...while honest bots now pay proof-of-work for their own healing.
  EXPECT_GT(charged.overlay().honest_work_spent(),
            uncharged.overlay().honest_work_spent());
}

}  // namespace
}  // namespace onion::scenario
