// Unit tests for tools/detlint: each rule D1–D5 must fire on a seeded
// fixture violation with the right [Dn] tag, stay quiet on the idiomatic
// deterministic pattern, and honor `// detlint:allow(Dn reason)`
// suppressions. The tree-wide run is a separate ctest (detlint_tree);
// these fixtures pin the rule semantics themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "detlint.hpp"

namespace onion::detlint {
namespace {

/// Diagnostics (violations only) for `rule`, across all files.
std::vector<Diagnostic> violations(const LintResult& result,
                                   const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : result.diagnostics)
    if (d.rule == rule && !d.suppressed) out.push_back(d);
  return out;
}

std::vector<Diagnostic> suppressed(const LintResult& result,
                                   const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : result.diagnostics)
    if (d.rule == rule && d.suppressed) out.push_back(d);
  return out;
}

const char* kSinkHeader = "src/common/bytes.hpp";

// --- D1: unordered iteration in sink-reachable TUs --------------------

TEST(DetlintD1, RangeForOverUnorderedInTaintedTuFires) {
  const std::string tu = R"(
#include "common/bytes.hpp"
#include <unordered_map>
void f() {
  std::unordered_map<int, int> counts;
  for (const auto& [k, v] : counts) { (void)k; (void)v; }
}
)";
  const LintResult r =
      lint_files({{kSinkHeader, ""}, {"src/foo/tainted.cpp", tu}}, {});
  const auto hits = violations(r, "D1");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/foo/tainted.cpp");
  EXPECT_EQ(hits[0].line, 6);
  EXPECT_NE(hits[0].message.find("counts"), std::string::npos);
}

TEST(DetlintD1, UntaintedTuMayIterateUnordered) {
  const std::string tu = R"(
#include <unordered_set>
void f() {
  std::unordered_set<int> seen;
  for (int x : seen) (void)x;
}
)";
  const LintResult r = lint_files({{"src/foo/free.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D1").empty());
}

TEST(DetlintD1, TaintPropagatesTransitivelyThroughTheIncludeGraph) {
  // tu -> mid.hpp -> bytes.hpp: two hops to the sink still taint.
  const std::string mid = "#include \"common/bytes.hpp\"\n";
  const std::string tu = R"(
#include "foo/mid.hpp"
#include <unordered_map>
void f() {
  std::unordered_map<int, int> m;
  for (auto it = m.begin(); it != m.end(); ++it) (void)it;
}
)";
  const LintResult r = lint_files({{kSinkHeader, ""},
                                   {"src/foo/mid.hpp", mid},
                                   {"src/foo/deep.cpp", tu}},
                                  {});
  ASSERT_EQ(violations(r, "D1").size(), 1u);
}

TEST(DetlintD1, MemberDeclaredInIncludedHeaderFires) {
  // The unordered member lives in the header; the .cpp iterates it.
  const std::string header = R"(
#include "common/bytes.hpp"
#include <unordered_map>
struct Registry {
  std::unordered_map<int, int> services_;
  void walk();
};
)";
  const std::string impl = R"(
#include "foo/registry.hpp"
void Registry::walk() {
  for (auto& [k, v] : services_) { (void)k; (void)v; }
}
)";
  const LintResult r = lint_files({{kSinkHeader, ""},
                                   {"src/foo/registry.hpp", header},
                                   {"src/foo/registry.cpp", impl}},
                                  {});
  const auto hits = violations(r, "D1");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/foo/registry.cpp");
}

TEST(DetlintD1, MembershipLookupsAreFine) {
  const std::string tu = R"(
#include "common/bytes.hpp"
#include <unordered_set>
int f(const std::vector<int>& xs) {
  std::unordered_set<int> seen(xs.begin(), xs.end());
  int hits = 0;
  for (int x : xs)
    if (seen.count(x) > 0) ++hits;
  return hits;
}
)";
  const LintResult r =
      lint_files({{kSinkHeader, ""}, {"src/foo/lookup.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D1").empty());
}

TEST(DetlintD1, AllowCommentSuppressesWithReason) {
  const std::string tu = R"(
#include "common/bytes.hpp"
#include <unordered_set>
int f() {
  std::unordered_set<int> seen;
  int n = 0;
  // detlint:allow(D1 order-insensitive count)
  for (int x : seen) n += x > 0 ? 1 : 0;
  return n;
}
)";
  const LintResult r =
      lint_files({{kSinkHeader, ""}, {"src/foo/allowed.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D1").empty());
  const auto soft = suppressed(r, "D1");
  ASSERT_EQ(soft.size(), 1u);
  EXPECT_EQ(soft[0].suppress_reason, "order-insensitive count");
  EXPECT_EQ(r.counts.at("D1").suppressions, 1u);
  EXPECT_TRUE(r.ok());
}

TEST(DetlintD1, AllowForTheWrongRuleDoesNotSuppress) {
  const std::string tu = R"(
#include "common/bytes.hpp"
#include <unordered_set>
void f() {
  std::unordered_set<int> seen;
  // detlint:allow(D2 wrong rule)
  for (int x : seen) (void)x;
}
)";
  const LintResult r =
      lint_files({{kSinkHeader, ""}, {"src/foo/wrong.cpp", tu}}, {});
  EXPECT_EQ(violations(r, "D1").size(), 1u);
  EXPECT_FALSE(r.ok());
}

// --- D2: nondeterminism sources ---------------------------------------

TEST(DetlintD2, RandomDeviceFires) {
  const std::string tu = R"(
#include <random>
int f() { std::random_device rd; return static_cast<int>(rd()); }
)";
  const LintResult r = lint_files({{"src/foo/rd.cpp", tu}}, {});
  const auto hits = violations(r, "D2");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
}

TEST(DetlintD2, StdEnginesAndCRandFire) {
  const std::string tu = R"(
#include <cstdlib>
#include <random>
int f() {
  std::mt19937 gen(42);
  srand(7);
  return rand() + static_cast<int>(gen());
}
)";
  const LintResult r = lint_files({{"src/foo/engines.cpp", tu}}, {});
  EXPECT_EQ(violations(r, "D2").size(), 3u);
}

TEST(DetlintD2, WallClockSeedingFires) {
  const std::string tu = R"(
#include <chrono>
#include <ctime>
long f() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  return time(nullptr);
}
)";
  const LintResult r = lint_files({{"src/foo/clock.cpp", tu}}, {});
  EXPECT_EQ(violations(r, "D2").size(), 2u);
}

TEST(DetlintD2, ExemptFilesAndSteadyClockAreFine) {
  const std::string rng = R"(
#include <random>
int seed_entropy() { std::random_device rd; return static_cast<int>(rd()); }
)";
  const std::string timing = R"(
#include <chrono>
double g() {
  const auto start = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now() - start).count();
}
)";
  const LintResult r = lint_files(
      {{"src/common/rng.cpp", rng}, {"src/foo/timing.cpp", timing}}, {});
  EXPECT_TRUE(violations(r, "D2").empty());
}

// --- D3: pointer-keyed ordered containers -----------------------------

TEST(DetlintD3, PointerKeyedMapAndSetFire) {
  const std::string tu = R"(
#include <map>
#include <set>
struct Node;
std::map<Node*, int> ranks;
std::set<const Node*> visited;
)";
  const LintResult r = lint_files({{"src/foo/ptrkey.cpp", tu}}, {});
  const auto hits = violations(r, "D3");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 5);
  EXPECT_EQ(hits[1].line, 6);
}

TEST(DetlintD3, PointerValuesAndIdKeysAreFine) {
  const std::string tu = R"(
#include <map>
#include <set>
struct Node;
std::map<int, Node*> by_id;
std::set<long> ids;
)";
  const LintResult r = lint_files({{"src/foo/idkey.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D3").empty());
}

// --- D4: shared accumulation inside parallel_for_index ----------------

TEST(DetlintD4, CapturedCompoundAssignmentFires) {
  const std::string tu = R"(
#include "common/parallel.hpp"
double f(int n) {
  double total = 0.0;
  onion::parallel_for_index(n, 0, [&](std::size_t i) {
    total += static_cast<double>(i);
  });
  return total;
}
)";
  const LintResult r = lint_files({{"src/foo/race.cpp", tu}}, {});
  const auto hits = violations(r, "D4");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 6);
  EXPECT_NE(hits[0].message.find("total"), std::string::npos);
}

TEST(DetlintD4, PerSlotWritesAndLocalsAreFine) {
  const std::string tu = R"(
#include "common/parallel.hpp"
#include <vector>
std::vector<double> f(int n) {
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  onion::parallel_for_index(n, 0, [&](std::size_t i) {
    double acc = 0.0;
    for (int k = 0; k < 10; ++k) acc += static_cast<double>(k);
    out[i] = acc;
  });
  return out;
}
)";
  const LintResult r = lint_files({{"src/foo/slots.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D4").empty());
}

TEST(DetlintD4, DocumentedReductionAnnotationSuppresses) {
  const std::string tu = R"(
#include "common/parallel.hpp"
#include <atomic>
long f(int n) {
  std::atomic<long> total{0};
  onion::parallel_for_index(n, 0, [&](std::size_t i) {
    // detlint:allow(D4 atomic integer reduction; order-independent sum)
    total += static_cast<long>(i);
  });
  return total.load();
}
)";
  const LintResult r = lint_files({{"src/foo/atomic.cpp", tu}}, {});
  EXPECT_TRUE(violations(r, "D4").empty());
  EXPECT_EQ(r.counts.at("D4").suppressions, 1u);
}

// --- D5: the serialized-schema manifest -------------------------------

const char* kSnapshotHeader = R"(
#include <cstdint>
#include <vector>
struct MetricsSnapshot {
  std::uint64_t time = 0;
  std::uint64_t joins = 0;
  std::vector<std::uint64_t> wave_takedowns;
  bool connected() const { return true; }
};
)";

const char* kSnapshotImplGuarded = R"(
#include "scenario/snapshot.hpp"
void serialize(const MetricsSnapshot& s) {
  put(s.time);
  put(s.joins);
  if (!s.wave_takedowns.empty()) {
    put(s.wave_takedowns.size());
  }
}
)";

const char* kTraceHeader = R"(
enum class TraceEventKind : unsigned char {
  Join,
  Leave,
};
)";

const char* kRunnerHeader = R"(
#include <cstdint>
#include <string>
#include <vector>
struct CellResult {
  std::string label;
  double wall_seconds = 0.0;
};
struct FailedCell {
  std::uint64_t cell_index = 0;
  std::string error;
};
struct GridReport {
  std::vector<CellResult> cells;
  std::vector<FailedCell> failed_cells;
  std::string combined_fingerprint;
};
)";

const char* kWireImpl = R"(
#include "scenario/runner.hpp"
void serialize(const CellResult& cell) {
  put(cell.label);
  put(cell.wall_seconds);
}
)";

Config d5_config(const std::string& manifest_text) {
  Config config;
  config.manifest = parse_manifest(manifest_text);
  // The fixture subset of the schema table; absent headers are skipped,
  // so binding only what each test feeds keeps diagnostics focused.
  config.d5_owners = {
      {"MetricsSnapshot", false, "src/scenario/snapshot.hpp",
       "src/scenario/snapshot.cpp"},
      {"TraceEventKind", true, "src/scenario/trace.hpp",
       "src/scenario/snapshot.cpp"},
      {"CellResult", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
      {"GridReport", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
      {"FailedCell", false, "src/scenario/runner.hpp",
       "src/scenario/wire.cpp"},
  };
  return config;
}

std::vector<SourceFile> d5_files() {
  return {{"src/scenario/snapshot.hpp", kSnapshotHeader},
          {"src/scenario/snapshot.cpp", kSnapshotImplGuarded},
          {"src/scenario/trace.hpp", kTraceHeader}};
}

/// The wire-schema manifest matching kRunnerHeader exactly.
const char* kGridManifest =
    "CellResult.label\n"
    "CellResult.wall_seconds\n"
    "FailedCell.cell_index\n"
    "FailedCell.error\n"
    "GridReport.cells\n"
    "GridReport.failed_cells\n"
    "GridReport.combined_fingerprint\n";

std::vector<SourceFile> d5_grid_files() {
  return {{"src/scenario/runner.hpp", kRunnerHeader},
          {"src/scenario/wire.cpp", kWireImpl}};
}

TEST(DetlintD5, MatchingManifestIsClean) {
  const LintResult r = lint_files(
      d5_files(), d5_config("MetricsSnapshot.time\n"
                            "MetricsSnapshot.joins\n"
                            "MetricsSnapshot.wave_takedowns conditional\n"
                            "TraceEventKind.Join\n"
                            "TraceEventKind.Leave\n"));
  EXPECT_TRUE(violations(r, "D5").empty()) << r.diagnostics.size();
}

TEST(DetlintD5, QualifiedMemberFunctionDeclarationIsNotAField) {
  // `void write_csv(...) const;` must parse as a member-function
  // declaration, not a data member named `const`: keywords tokenize as
  // identifiers, so without the trailing-qualifier strip the name scan
  // reported the qualifier and demanded a bogus manifest entry.
  const char* header = R"(
#include <cstdint>
#include <cstdio>
struct MetricsSnapshot {
  std::uint64_t time = 0;
  void write_csv(std::FILE* out) const;
  MetricsSnapshot& canonical() & noexcept;
  bool merged() const noexcept;
};
)";
  const LintResult r = lint_files({{"src/scenario/snapshot.hpp", header}},
                                  d5_config("MetricsSnapshot.time\n"));
  EXPECT_TRUE(violations(r, "D5").empty())
      << violations(r, "D5").front().message;
}

TEST(DetlintD5, UnlistedFieldFires) {
  const LintResult r = lint_files(
      d5_files(), d5_config("MetricsSnapshot.time\n"
                            "MetricsSnapshot.wave_takedowns conditional\n"
                            "TraceEventKind.Join\n"
                            "TraceEventKind.Leave\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("MetricsSnapshot::joins"),
            std::string::npos);
}

TEST(DetlintD5, UnlistedEnumeratorFires) {
  const LintResult r = lint_files(
      d5_files(), d5_config("MetricsSnapshot.time\n"
                            "MetricsSnapshot.joins\n"
                            "MetricsSnapshot.wave_takedowns conditional\n"
                            "TraceEventKind.Join\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("TraceEventKind::Leave"),
            std::string::npos);
}

TEST(DetlintD5, StaleManifestEntryFires) {
  const LintResult r = lint_files(
      d5_files(), d5_config("MetricsSnapshot.time\n"
                            "MetricsSnapshot.joins\n"
                            "MetricsSnapshot.wave_takedowns conditional\n"
                            "MetricsSnapshot.removed_field\n"
                            "TraceEventKind.Join\n"
                            "TraceEventKind.Leave\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("stale"), std::string::npos);
}

TEST(DetlintD5, ConditionalFieldWithoutGuardFires) {
  const char* unguarded = R"(
#include "scenario/snapshot.hpp"
void serialize(const MetricsSnapshot& s) {
  put(s.time);
  put(s.joins);
  put(s.wave_takedowns.size());
}
)";
  std::vector<SourceFile> files = d5_files();
  files[1].content = unguarded;
  const LintResult r = lint_files(
      files, d5_config("MetricsSnapshot.time\n"
                       "MetricsSnapshot.joins\n"
                       "MetricsSnapshot.wave_takedowns conditional\n"
                       "TraceEventKind.Join\n"
                       "TraceEventKind.Leave\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("empty"), std::string::npos);
}

TEST(DetlintD5, GridWireStructsWithMatchingManifestAreClean) {
  const LintResult r =
      lint_files(d5_grid_files(), d5_config(kGridManifest));
  EXPECT_TRUE(violations(r, "D5").empty());
}

TEST(DetlintD5, UnlistedGridWireFieldFires) {
  // Drop GridReport.combined_fingerprint from the manifest.
  const LintResult r = lint_files(
      d5_grid_files(), d5_config("CellResult.label\n"
                                 "CellResult.wall_seconds\n"
                                 "FailedCell.cell_index\n"
                                 "FailedCell.error\n"
                                 "GridReport.cells\n"
                                 "GridReport.failed_cells\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("GridReport::combined_fingerprint"),
            std::string::npos);
}

TEST(DetlintD5, StaleGridWireEntryFires) {
  const LintResult r = lint_files(
      d5_grid_files(),
      d5_config(std::string(kGridManifest) + "CellResult.removed_field\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("stale"), std::string::npos);
  EXPECT_NE(hits[0].message.find("CellResult.removed_field"),
            std::string::npos);
}

TEST(DetlintD5, ConditionalGridWireFieldChecksTheWireSerializer) {
  // Mark CellResult.label conditional: kWireImpl has no empty() guard,
  // so the violation must cite wire.cpp, not snapshot.cpp.
  const LintResult r = lint_files(
      d5_grid_files(), d5_config("CellResult.label conditional\n"
                                 "CellResult.wall_seconds\n"
                                 "FailedCell.cell_index\n"
                                 "FailedCell.error\n"
                                 "GridReport.cells\n"
                                 "GridReport.failed_cells\n"
                                 "GridReport.combined_fingerprint\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("src/scenario/wire.cpp"),
            std::string::npos);
}

// --- D5 via the schema table (trace_io-style owners) ------------------

const char* kTraceIoHeader = R"(
#include <cstdint>
struct TraceFooter {
  std::uint64_t event_count = 0;
  std::uint64_t chunk_count = 0;
};
)";

const char* kRocHeaderFixture = R"(
#include <string>
#include <vector>
struct RocPoint {
  std::string detector;
  std::vector<int> families;
};
)";

const char* kRocImplGuarded = R"(
#include "detection/roc.hpp"
void serialize(const RocPoint& p) {
  put(p.detector);
  if (!p.families.empty()) put(p.families);
}
)";

const char* kRocImplUnguarded = R"(
#include "detection/roc.hpp"
void serialize(const RocPoint& p) {
  put(p.detector);
  put(p.families);
}
)";

/// Binds fixture owners through the schema table the way the tree run
/// binds trace_io / roc — proves rule D5 is table-driven, not special-
/// cased per owner.
Config d5_table_config(const std::string& manifest_text) {
  Config config;
  config.manifest = parse_manifest(manifest_text);
  config.d5_owners = {
      {"TraceFooter", false, "src/scenario/trace_io.hpp",
       "src/scenario/trace_io.cpp"},
      {"RocPoint", false, "src/detection/roc.hpp",
       "src/detection/roc.cpp"},
  };
  return config;
}

TEST(DetlintD5, TableBoundOwnerUnlistedFieldFires) {
  const LintResult r = lint_files(
      {{"src/scenario/trace_io.hpp", kTraceIoHeader}},
      d5_table_config("TraceFooter.event_count\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("TraceFooter::chunk_count"),
            std::string::npos);
}

TEST(DetlintD5, TableBoundConditionalFieldHonorsGuard) {
  const std::string manifest =
      "RocPoint.detector\n"
      "RocPoint.families conditional\n";
  const LintResult guarded = lint_files(
      {{"src/detection/roc.hpp", kRocHeaderFixture},
       {"src/detection/roc.cpp", kRocImplGuarded}},
      d5_table_config(manifest));
  EXPECT_TRUE(violations(guarded, "D5").empty());

  const LintResult unguarded = lint_files(
      {{"src/detection/roc.hpp", kRocHeaderFixture},
       {"src/detection/roc.cpp", kRocImplUnguarded}},
      d5_table_config(manifest));
  const auto hits = violations(unguarded, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("src/detection/roc.cpp"),
            std::string::npos);
}

TEST(DetlintD5, StaleEntryForTableBoundOwnerFires) {
  const LintResult r = lint_files(
      {{"src/scenario/trace_io.hpp", kTraceIoHeader}},
      d5_table_config("TraceFooter.event_count\n"
                      "TraceFooter.chunk_count\n"
                      "TraceFooter.removed_field\n"));
  const auto hits = violations(r, "D5");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("stale"), std::string::npos);
}

TEST(DetlintD5, EntryForUnboundOwnerIsSkipped) {
  // An owner with no binding (or whose header is absent) cannot be
  // proven stale from a partial file set.
  const LintResult r = lint_files(
      {{"src/scenario/trace_io.hpp", kTraceIoHeader}},
      d5_table_config("TraceFooter.event_count\n"
                      "TraceFooter.chunk_count\n"
                      "SomeOtherOwner.some_field\n"));
  EXPECT_TRUE(violations(r, "D5").empty());
}

TEST(DetlintManifest, ParsesFlagsAndComments) {
  const auto entries = parse_manifest(
      "# comment\n"
      "\n"
      "MetricsSnapshot.time\n"
      "MetricsSnapshot.wave_takedowns conditional  # trailing\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].owner, "MetricsSnapshot");
  EXPECT_EQ(entries[0].name, "time");
  EXPECT_FALSE(entries[0].conditional);
  EXPECT_TRUE(entries[1].conditional);
}

TEST(DetlintManifest, RejectsMalformedLines) {
  EXPECT_THROW(parse_manifest("no_dot_here\n"), std::runtime_error);
  EXPECT_THROW(parse_manifest("MetricsSnapshot.time bogus_flag\n"),
               std::runtime_error);
}

// --- Output format and counts -----------------------------------------

TEST(DetlintOutput, DiagnosticFormatsAsFileLineRule) {
  Diagnostic d{"src/foo/bar.cpp", 12, "D1", "message text", false, ""};
  EXPECT_EQ(d.to_string(), "src/foo/bar.cpp:12: [D1] message text");
  d.suppressed = true;
  d.suppress_reason = "why";
  EXPECT_EQ(d.to_string(),
            "src/foo/bar.cpp:12: [D1] message text (suppressed: why)");
}

TEST(DetlintOutput, AllRuleCountsArePresentEvenWhenZero) {
  const LintResult r = lint_source("src/foo/empty.cpp", "int x = 0;\n", {});
  for (const char* rule : {"D1", "D2", "D3", "D4", "D5"}) {
    ASSERT_TRUE(r.counts.count(rule)) << rule;
    EXPECT_EQ(r.counts.at(rule).violations, 0u);
  }
  EXPECT_TRUE(r.ok());
}

TEST(DetlintOutput, DiagnosticsAreSortedByFileThenLine) {
  const std::string a = R"(
#include <random>
void f() { std::random_device rd; (void)rd; }
void g() { std::random_device rd2; (void)rd2; }
)";
  const std::string b = R"(
#include <random>
void h() { std::random_device rd; (void)rd; }
)";
  const LintResult r =
      lint_files({{"src/zz/a.cpp", a}, {"src/aa/b.cpp", b}}, {});
  ASSERT_EQ(r.diagnostics.size(), 3u);
  EXPECT_EQ(r.diagnostics[0].file, "src/aa/b.cpp");
  EXPECT_EQ(r.diagnostics[1].file, "src/zz/a.cpp");
  EXPECT_LT(r.diagnostics[1].line, r.diagnostics[2].line);
}

}  // namespace
}  // namespace onion::detlint
