// CampaignGrid tests: the sharding determinism contract (identical
// per-cell and aggregated fingerprints for 1 vs N threads and for
// shuffled cell orders), agreement with a directly-run engine, and the
// seed-sweep builder.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/check.hpp"
#include "scenario/runner.hpp"

namespace onion::scenario {
namespace {

ScenarioSpec small_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

CampaignGrid small_grid() {
  CampaignGrid grid;
  for (std::uint64_t seed = 100; seed < 106; ++seed)
    grid.add("cell" + std::to_string(seed), small_spec(seed));
  return grid;
}

TEST(CampaignGrid, OneThreadAndManyThreadsAgreeByteForByte) {
  const CampaignGrid grid = small_grid();
  const GridReport serial = grid.run(/*threads=*/1);
  const GridReport parallel = grid.run(/*threads=*/4);
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(parallel.threads_used, 4u);
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].label, parallel.cells[i].label);
    EXPECT_EQ(serial.cells[i].fingerprint, parallel.cells[i].fingerprint);
    ASSERT_EQ(serial.cells[i].series.size(),
              parallel.cells[i].series.size());
    for (std::size_t k = 0; k < serial.cells[i].series.size(); ++k)
      EXPECT_EQ(serialize(serial.cells[i].series[k]),
                serialize(parallel.cells[i].series[k]));
  }
  EXPECT_EQ(serial.combined_fingerprint, parallel.combined_fingerprint);
}

TEST(CampaignGrid, ShuffledCellOrderKeepsTheAggregateFingerprint) {
  CampaignGrid forward;
  CampaignGrid backward;
  for (std::uint64_t seed = 100; seed < 106; ++seed)
    forward.add("cell" + std::to_string(seed), small_spec(seed));
  for (std::uint64_t seed = 105; seed >= 100; --seed)
    backward.add("cell" + std::to_string(seed), small_spec(seed));
  const GridReport a = forward.run(2);
  const GridReport b = backward.run(3);
  // Cells land at their grid index, so the per-cell results are simply
  // reversed; the combined fingerprint hashes the sorted digest set and
  // must not move.
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    const CellResult& mirrored = b.cells[b.cells.size() - 1 - i];
    EXPECT_EQ(a.cells[i].label, mirrored.label);
    EXPECT_EQ(a.cells[i].fingerprint, mirrored.fingerprint);
  }
  EXPECT_EQ(a.combined_fingerprint, b.combined_fingerprint);
}

TEST(CampaignGrid, CellsMatchADirectlyRunEngine) {
  CampaignGrid grid;
  grid.add("direct", small_spec(7));
  const GridReport report = grid.run(2);
  HashSink direct;
  CampaignEngine engine(small_spec(7), direct);
  engine.run();
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].fingerprint, direct.hex_digest());
  EXPECT_EQ(report.cells[0].series.size(), direct.count());
  EXPECT_EQ(report.cells[0].counters.joins, engine.counters().joins);
  EXPECT_EQ(report.cells[0].events_executed, engine.events_executed());
}

TEST(CampaignGrid, SeedSweepBuildsConsecutiveSeeds) {
  const CampaignGrid grid = CampaignGrid::seed_sweep(small_spec(0), 40, 4);
  ASSERT_EQ(grid.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(grid.cells()[i].spec.seed, 40u + i);
    EXPECT_EQ(grid.cells()[i].label, "seed=" + std::to_string(40 + i));
  }
  const GridReport report = grid.run();
  // Different seeds diverge: all four fingerprints are distinct.
  std::vector<std::string> digests;
  for (const CellResult& cell : report.cells)
    digests.push_back(cell.fingerprint);
  std::sort(digests.begin(), digests.end());
  EXPECT_EQ(std::unique(digests.begin(), digests.end()), digests.end());
}

TEST(CampaignGrid, EmptyGridProducesAnEmptyDeterministicReport) {
  const CampaignGrid grid;
  const GridReport a = grid.run(3);
  const GridReport b = grid.run(1);
  EXPECT_TRUE(a.cells.empty());
  EXPECT_EQ(a.combined_fingerprint, b.combined_fingerprint);
  EXPECT_FALSE(a.combined_fingerprint.empty());  // SHA-256 of nothing
}

TEST(CampaignGrid, CaptureModeQuarantinesAThrowingCellAndFinishesTheRest) {
  // metrics.period == 0 trips the engine's precondition
  // (ONION_EXPECTS(spec_.metrics.period > 0)) — a deterministic way to
  // make exactly one cell throw.
  CampaignGrid grid;
  for (std::uint64_t seed = 100; seed < 104; ++seed)
    grid.add("cell" + std::to_string(seed), small_spec(seed));
  ScenarioSpec broken = small_spec(104);
  broken.metrics.period = 0;
  grid.add("broken", broken);

  const GridReport report = grid.run(2, ErrorMode::kCapture);
  ASSERT_EQ(report.cells.size(), 5u);
  ASSERT_EQ(report.failed_cells.size(), 1u);
  EXPECT_EQ(report.failed_cells[0].cell_index, 4u);
  EXPECT_EQ(report.failed_cells[0].label, "broken");
  EXPECT_EQ(report.failed_cells[0].seed, 104u);
  EXPECT_EQ(report.failed_cells[0].attempts, 1u);
  EXPECT_FALSE(report.failed_cells[0].error.empty());
  // The failed slot keeps its place with no fingerprint; every healthy
  // cell completed.
  EXPECT_TRUE(report.cells[4].fingerprint.empty());
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FALSE(report.cells[i].fingerprint.empty());
  // Graceful degradation is exact: the combined fingerprint equals that
  // of the grid without the broken cell.
  CampaignGrid healthy;
  for (std::uint64_t seed = 100; seed < 104; ++seed)
    healthy.add("cell" + std::to_string(seed), small_spec(seed));
  EXPECT_EQ(report.combined_fingerprint,
            healthy.run(2).combined_fingerprint);
}

TEST(CampaignGrid, PropagateModeStillThrows) {
  CampaignGrid grid;
  ScenarioSpec broken = small_spec(1);
  broken.metrics.period = 0;
  grid.add("broken", broken);
  EXPECT_THROW(grid.run(1), ContractViolation);
  EXPECT_THROW(grid.run(1, ErrorMode::kPropagate), ContractViolation);
}

TEST(CampaignGrid, MoreThreadsThanCellsIsClamped) {
  CampaignGrid grid;
  grid.add("only", small_spec(3));
  const GridReport report = grid.run(16);
  EXPECT_EQ(report.threads_used, 1u);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_FALSE(report.cells[0].fingerprint.empty());
}

}  // namespace
}  // namespace onion::scenario
