// Hash, MAC, and cipher tests against published vectors: FIPS 180 (SHA-1,
// SHA-256), RFC 2202 (HMAC-SHA1), RFC 4231 (HMAC-SHA256), and the classic
// RC4 vectors. The Tor substrate's descriptor math is only as good as
// these primitives.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "crypto/hmac.hpp"
#include "crypto/legacy_ciphers.hpp"
#include "crypto/rc4.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"

namespace onion::crypto {
namespace {

template <std::size_t N>
std::string hex(const std::array<std::uint8_t, N>& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(hex(Sha1::hash(to_bytes(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex(Sha1::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hex(hasher.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("The quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 hasher;
    hasher.update(BytesView(msg).first(split));
    hasher.update(BytesView(msg).subspan(split));
    EXPECT_EQ(hasher.finalize(), Sha1::hash(msg));
  }
}

TEST(Sha1, ResetAllowsReuse) {
  Sha1 hasher;
  hasher.update(to_bytes("garbage"));
  (void)hasher.finalize();
  hasher.reset();
  hasher.update(to_bytes("abc"));
  EXPECT_EQ(hex(hasher.finalize()),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, BoundaryLengths) {
  // Pad-boundary lengths: 55, 56, 63, 64, 65 bytes.
  for (const std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes msg(n, 'x');
    Sha1 split_hasher;
    split_hasher.update(BytesView(msg).first(n / 2));
    split_hasher.update(BytesView(msg).subspan(n / 2));
    EXPECT_EQ(split_hasher.finalize(), Sha1::hash(msg)) << n;
  }
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(
      hex(Sha256::hash(to_bytes(""))),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      hex(Sha256::hash(to_bytes("abc"))),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      hex(Sha256::hash(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(
      hex(hasher.finalize()),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("onionbots reproduce sha256 incrementally!");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 hasher;
    hasher.update(BytesView(msg).first(split));
    hasher.update(BytesView(msg).subspan(split));
    EXPECT_EQ(hasher.finalize(), Sha256::hash(msg));
  }
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(
      hex(hmac_sha256(key, to_bytes("Hi There"))),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(
      hex(hmac_sha256(to_bytes("Jefe"),
                      to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(
      hex(hmac_sha256(key, msg)),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hex(hmac_sha256(
          key, to_bytes("Test Using Larger Than Block-Size Key - "
                        "Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha1(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(hex(hmac_sha1(to_bytes("Jefe"),
                          to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(Rc4, ClassicVectors) {
  {
    Rc4 cipher(to_bytes("Key"));
    EXPECT_EQ(to_hex(cipher.process(to_bytes("Plaintext"))),
              "bbf316e8d940af0ad3");
  }
  {
    Rc4 cipher(to_bytes("Wiki"));
    EXPECT_EQ(to_hex(cipher.process(to_bytes("pedia"))), "1021bf0420");
  }
  {
    Rc4 cipher(to_bytes("Secret"));
    EXPECT_EQ(to_hex(cipher.process(to_bytes("Attack at dawn"))),
              "45a01f645fc35b383552544b9bf5");
  }
}

TEST(Rc4, EncryptDecryptRoundTrip) {
  const Bytes msg = to_bytes("symmetric stream: enc == dec");
  Rc4 enc(to_bytes("k1"));
  Rc4 dec(to_bytes("k1"));
  EXPECT_EQ(dec.process(enc.process(msg)), msg);
}

TEST(Rc4, RejectsEmptyKey) {
  EXPECT_THROW(
      {
        Rc4 cipher{Bytes{}};
        (void)cipher;
      },
      onion::ContractViolation);
}

TEST(LegacyCiphers, XorRoundTripAndInvolution) {
  const Bytes msg = to_bytes("storm worm says hi");
  const Bytes enc = xor_cipher(msg, 0x5a);
  EXPECT_NE(enc, msg);
  EXPECT_EQ(xor_cipher(enc, 0x5a), msg);
}

TEST(LegacyCiphers, ChainedXorRoundTrip) {
  const Bytes msg = to_bytes("zeus chained xor command body");
  for (const std::uint8_t key : {0x00, 0x01, 0x7f, 0xff}) {
    const Bytes enc = chained_xor_encrypt(msg, key);
    EXPECT_EQ(chained_xor_decrypt(enc, key), msg) << int(key);
  }
}

TEST(LegacyCiphers, ChainedXorPropagates) {
  // Chained XOR diffuses: flipping one plaintext byte changes every
  // following ciphertext byte (unlike plain XOR).
  Bytes a = to_bytes("aaaaaaaaaa");
  Bytes b = a;
  b[2] ^= 0x01;
  const Bytes ea = chained_xor_encrypt(a, 0x10);
  const Bytes eb = chained_xor_encrypt(b, 0x10);
  for (std::size_t i = 0; i < 2; ++i) EXPECT_EQ(ea[i], eb[i]);
  for (std::size_t i = 2; i < ea.size(); ++i) EXPECT_NE(ea[i], eb[i]);
}

}  // namespace
}  // namespace onion::crypto
