// Botnet-for-rent token tests (paper §IV-E): issuance, the master
// signature chain, expiry, whitelists, serialization, tampering.
#include <gtest/gtest.h>

#include "core/rental.hpp"

namespace onion::core {
namespace {

struct RentalFixture : ::testing::Test {
  Rng rng{55};
  crypto::RsaKeyPair mallory = crypto::rsa_generate(rng, 2048);  // master
  crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);    // renter
};

TEST_F(RentalFixture, IssuedTokenVerifies) {
  const RentalToken token = issue_rental_token(
      mallory, trudy.pub, 5 * kHour, {CommandType::Spam});
  EXPECT_TRUE(token.verify(mallory.pub, kHour));
}

TEST_F(RentalFixture, ExpiryEnforced) {
  const RentalToken token = issue_rental_token(
      mallory, trudy.pub, 5 * kHour, {CommandType::Spam});
  EXPECT_TRUE(token.verify(mallory.pub, 5 * kHour - 1));
  EXPECT_FALSE(token.verify(mallory.pub, 5 * kHour));
  EXPECT_FALSE(token.verify(mallory.pub, 6 * kHour));
}

TEST_F(RentalFixture, WhitelistSemantics) {
  const RentalToken token = issue_rental_token(
      mallory, trudy.pub, kHour,
      {CommandType::Spam, CommandType::Compute});
  EXPECT_TRUE(token.allows(CommandType::Spam));
  EXPECT_TRUE(token.allows(CommandType::Compute));
  EXPECT_FALSE(token.allows(CommandType::Ddos));
  EXPECT_FALSE(token.allows(CommandType::Ping));
}

TEST_F(RentalFixture, EmptyWhitelistAllowsNothing) {
  const RentalToken token =
      issue_rental_token(mallory, trudy.pub, kHour, {});
  EXPECT_FALSE(token.allows(CommandType::Ping));
}

TEST_F(RentalFixture, TamperedFieldsBreakSignature) {
  RentalToken token = issue_rental_token(mallory, trudy.pub, kHour,
                                         {CommandType::Spam});
  {
    RentalToken t = token;
    t.expires_at = 100 * kHour;  // extend the contract term
    EXPECT_FALSE(t.verify(mallory.pub, kMinute));
  }
  {
    RentalToken t = token;
    t.whitelist.push_back(CommandType::Ddos);  // widen permissions
    EXPECT_FALSE(t.verify(mallory.pub, kMinute));
  }
  {
    RentalToken t = token;
    Rng other(56);
    t.renter_key = crypto::rsa_generate(other, 2048).pub;  // steal token
    EXPECT_FALSE(t.verify(mallory.pub, kMinute));
  }
}

TEST_F(RentalFixture, WrongMasterKeyRejected) {
  Rng other(57);
  const crypto::RsaKeyPair impostor = crypto::rsa_generate(other, 2048);
  const RentalToken token = issue_rental_token(
      impostor, trudy.pub, kHour, {CommandType::Spam});
  EXPECT_FALSE(token.verify(mallory.pub, kMinute))
      << "bots check against the hard-coded master key";
}

TEST_F(RentalFixture, SerializationRoundTrip) {
  const RentalToken token = issue_rental_token(
      mallory, trudy.pub, 3 * kHour,
      {CommandType::Spam, CommandType::Recon});
  Writer w;
  token.serialize(w);
  const Bytes bytes = w.take();
  Reader r(bytes);
  const RentalToken out = RentalToken::parse(r);
  EXPECT_EQ(out.renter_key, token.renter_key);
  EXPECT_EQ(out.expires_at, token.expires_at);
  EXPECT_EQ(out.whitelist, token.whitelist);
  EXPECT_EQ(out.master_signature, token.master_signature);
  EXPECT_TRUE(out.verify(mallory.pub, kMinute));
}

TEST_F(RentalFixture, ParseRejectsUnknownCommandType) {
  RentalToken token = issue_rental_token(mallory, trudy.pub, kHour,
                                         {CommandType::Spam});
  Writer w;
  token.serialize(w);
  Bytes bytes = w.take();
  // Whitelist entry byte sits after 3 u64 key fields + u64 expiry + count.
  bytes[8 * 4 + 1] = 99;
  Reader r(bytes);
  EXPECT_THROW(RentalToken::parse(r), WireError);
}

TEST(CommandTypeNames, AllNamed) {
  EXPECT_STREQ(to_string(CommandType::Ping), "ping");
  EXPECT_STREQ(to_string(CommandType::Ddos), "ddos");
  EXPECT_STREQ(to_string(CommandType::Spam), "spam");
  EXPECT_STREQ(to_string(CommandType::Compute), "compute");
  EXPECT_STREQ(to_string(CommandType::Recon), "recon");
}

}  // namespace
}  // namespace onion::core
