// Campaign→telemetry replay tests: the event tap records the campaign
// faithfully and passively (snapshot fingerprints with and without a
// tap are identical), replay synthesis is byte-deterministic, the ROC
// sweep reproduces its fingerprint at any thread count, and — the
// paper's claim — replayed legacy families light up their dedicated
// detectors while the replayed OnionBot population stays dark except to
// the Tor flagger, which takes the benign Tor users down with it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/replay.hpp"
#include "detection/roc.hpp"
#include "detection/tor_flagger.hpp"
#include "scenario/engine.hpp"

namespace onion::detection {
namespace {

using scenario::AttackKind;
using scenario::AttackPhase;
using scenario::CampaignEngine;
using scenario::CampaignTrace;
using scenario::FanoutSink;
using scenario::HashSink;
using scenario::ScenarioSpec;
using scenario::TraceEventKind;

// A campaign with every event kind in it: churn, a takedown wave, SOAP.
// Two simulated hours, so even the 10-minute-cadence emitters produce
// enough telemetry per host to clear the detectors' minimum volumes.
ScenarioSpec busy_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 2 * kHour;
  spec.churn.joins_per_hour = 60.0;
  spec.churn.leaves_per_hour = 60.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = kHour;
  takedown.takedowns_per_hour = 60.0;
  spec.attacks.push_back(takedown);
  AttackPhase soap;
  soap.kind = AttackKind::SoapInjection;
  soap.start = kHour;
  soap.stop = 90 * kMinute;
  spec.attacks.push_back(soap);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

CampaignTrace record(const ScenarioSpec& spec) {
  CampaignTrace campaign;
  HashSink hash;
  FanoutSink fanout({&campaign, &hash});
  CampaignEngine(spec, fanout, &campaign).run();
  return campaign;
}

std::size_t count_kind(const CampaignTrace& campaign, TraceEventKind kind) {
  return static_cast<std::size_t>(std::count_if(
      campaign.events().begin(), campaign.events().end(),
      [kind](const scenario::CampaignEvent& e) { return e.kind == kind; }));
}

// ====================================================================
// The event tap
// ====================================================================

TEST(CampaignTrace, TapIsPassive) {
  // Snapshot stream with a tap attached == without one.
  HashSink untapped;
  CampaignEngine(busy_spec(3), untapped).run();

  CampaignTrace campaign;
  HashSink tapped;
  CampaignEngine(busy_spec(3), tapped, &campaign).run();

  EXPECT_EQ(untapped.hex_digest(), tapped.hex_digest());
  EXPECT_FALSE(campaign.events().empty());
}

TEST(CampaignTrace, EventCountsMatchTheCounters) {
  const ScenarioSpec spec = busy_spec(7);
  CampaignTrace campaign;
  HashSink hash;
  FanoutSink fanout({&campaign, &hash});
  CampaignEngine engine(spec, fanout, &campaign);
  engine.run();

  EXPECT_TRUE(campaign.began());
  EXPECT_EQ(campaign.initial_nodes().size(), spec.initial_size);
  EXPECT_EQ(count_kind(campaign, TraceEventKind::Join),
            engine.counters().joins);
  EXPECT_EQ(count_kind(campaign, TraceEventKind::Leave),
            engine.counters().leaves);
  EXPECT_EQ(count_kind(campaign, TraceEventKind::Takedown),
            engine.counters().takedowns);
  // The SOAP phase fired: a capture plus at least one round.
  EXPECT_EQ(count_kind(campaign, TraceEventKind::SoapCapture), 1u);
  EXPECT_GT(count_kind(campaign, TraceEventKind::SoapRound), 0u);
  // Every join bootstraps through peering requests.
  EXPECT_GE(count_kind(campaign, TraceEventKind::Peering),
            engine.counters().joins);
  // Events arrive in simulator order.
  for (std::size_t i = 1; i < campaign.events().size(); ++i)
    EXPECT_LE(campaign.events()[i - 1].at, campaign.events()[i].at);
}

TEST(CampaignTrace, LifetimesReplayTheAliveCountExactly) {
  // Differential check against the engine's own structural telemetry:
  // replaying the event stream up to each snapshot's recorded position
  // must reproduce honest_alive exactly.
  const ScenarioSpec spec = busy_spec(11);
  CampaignTrace campaign;
  FanoutSink fanout({&campaign});
  CampaignEngine(spec, fanout, &campaign).run();

  ASSERT_FALSE(campaign.snapshots().empty());
  for (std::size_t i = 0; i < campaign.snapshots().size(); ++i) {
    std::int64_t alive =
        static_cast<std::int64_t>(campaign.initial_nodes().size());
    const std::size_t upto = campaign.events_before(i);
    for (std::size_t e = 0; e < upto; ++e) {
      const auto kind = campaign.events()[e].kind;
      if (kind == TraceEventKind::Join) ++alive;
      if (kind == TraceEventKind::Leave ||
          kind == TraceEventKind::Takedown)
        --alive;
    }
    EXPECT_EQ(static_cast<std::uint64_t>(alive),
              campaign.snapshots()[i].honest_alive)
        << "snapshot " << i;
  }
}

TEST(CampaignTrace, LifetimesAreWellFormed) {
  const ScenarioSpec spec = busy_spec(13);
  const CampaignTrace campaign = record(spec);
  const auto lifetimes = campaign.lifetimes();
  // One lifetime per initial node plus one per join, unique and sorted.
  EXPECT_EQ(lifetimes.size(),
            spec.initial_size + count_kind(campaign, TraceEventKind::Join));
  std::set<graph::NodeId> seen;
  for (const auto& life : lifetimes) {
    EXPECT_TRUE(seen.insert(life.node).second);
    EXPECT_LE(life.birth, life.death);
    EXPECT_LE(life.death, spec.horizon);
  }
  // Deaths recorded in the event stream show up as truncated lifetimes.
  const std::size_t dead = count_kind(campaign, TraceEventKind::Leave) +
                           count_kind(campaign, TraceEventKind::Takedown);
  const std::size_t truncated = static_cast<std::size_t>(
      std::count_if(lifetimes.begin(), lifetimes.end(), [&](const auto& l) {
        return l.death < spec.horizon;
      }));
  EXPECT_EQ(truncated, dead);
}

TEST(CampaignTrace, FingerprintIsSeedSensitive) {
  EXPECT_EQ(record(busy_spec(5)).fingerprint(),
            record(busy_spec(5)).fingerprint());
  EXPECT_NE(record(busy_spec(5)).fingerprint(),
            record(busy_spec(6)).fingerprint());
}

// ====================================================================
// Adaptive multi-wave campaigns through the tap and the replayer
// ====================================================================

// Every *new* event kind in one campaign: a two-wave adaptive plan with
// scheduled refreshes, heavy-tailed session churn, and charged healing
// under an active rate limit + PoW.
scenario::ScenarioSpec adaptive_waves_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 200;
  spec.degree = 6;
  spec.horizon = 2 * kHour;
  spec.churn.joins_per_hour = 60.0;
  spec.churn.session_leaves = true;
  spec.churn.session.model = scenario::SessionModel::Pareto;
  spec.churn.session.mean_hours = 1.5;
  spec.churn.session.pareto_alpha = 1.5;
  scenario::AttackWave wave;
  wave.attack.kind = AttackKind::AdaptiveTakedown;
  wave.attack.rank = scenario::RankMetric::SampledBetweenness;
  wave.attack.refresh_period = 5 * kMinute;
  wave.attack.betweenness_pivots = 16;
  wave.attack.takedowns_per_hour = 120.0;
  wave.duration = 20 * kMinute;
  wave.quiet_after = 10 * kMinute;
  spec.waves.start = 10 * kMinute;
  spec.waves.waves.assign(2, wave);
  spec.defense.rate_limit_per_round = 3;
  spec.defense.pow_base_cost = 0.25;
  spec.defense.pow_growth = 1.0;
  spec.defense.charge_healing = true;
  spec.metrics.period = 10 * kMinute;
  return spec;
}

TEST(AdaptiveWaveTrace, TapStaysPassiveOnAdaptiveWaveCampaigns) {
  HashSink untapped;
  CampaignEngine(adaptive_waves_spec(51), untapped).run();

  CampaignTrace campaign;
  HashSink tapped;
  FanoutSink fanout({&campaign, &tapped});
  CampaignEngine(adaptive_waves_spec(51), fanout, &campaign).run();

  EXPECT_EQ(untapped.hex_digest(), tapped.hex_digest());
  EXPECT_GT(count_kind(campaign, TraceEventKind::HealPeering), 0u);
}

TEST(AdaptiveWaveTrace, NewEventKindsArriveInSimulatorOrder) {
  const scenario::ScenarioSpec spec = adaptive_waves_spec(53);
  const CampaignTrace campaign = record(spec);

  // Both waves open on schedule; each runs its four scheduled refreshes
  // (20-minute window at a 5-minute cadence); charged healing fires.
  EXPECT_EQ(count_kind(campaign, TraceEventKind::WaveStart), 2u);
  EXPECT_EQ(count_kind(campaign, TraceEventKind::AdaptiveRefresh), 8u);
  EXPECT_GT(count_kind(campaign, TraceEventKind::HealPeering), 0u);
  EXPECT_GT(count_kind(campaign, TraceEventKind::Takedown), 0u);
  for (std::size_t i = 1; i < campaign.events().size(); ++i)
    EXPECT_LE(campaign.events()[i - 1].at, campaign.events()[i].at);

  // The new kinds carry no membership effect: lifetimes stay exactly
  // one per initial node plus one per join.
  const auto lifetimes = campaign.lifetimes();
  EXPECT_EQ(lifetimes.size(),
            spec.initial_size + count_kind(campaign, TraceEventKind::Join));
  // Heal requests happen between live bots at their event times.
  for (const scenario::CampaignEvent& e : campaign.events()) {
    if (e.kind != TraceEventKind::HealPeering) continue;
    EXPECT_NE(e.a, e.b);
    EXPECT_LE(e.at, spec.horizon);
  }
}

TEST(AdaptiveWaveTrace, ReplayOfAdaptiveWaveTraceIsByteDeterministic) {
  const CampaignTrace campaign = record(adaptive_waves_spec(57));
  ReplayConfig rc;
  rc.seed = 3;
  rc.benign_web = 40;
  rc.benign_tor = 10;
  const ReplayResult a = replay_trace(campaign, rc);
  const ReplayResult b = replay_trace(campaign, rc);
  EXPECT_EQ(serialize(a.trace), serialize(b.trace));
  EXPECT_EQ(fingerprint(a.trace), fingerprint(b.trace));

  // Charged healing surfaces as extra guard cells: replaying the same
  // campaign with the HealPeering events stripped must change the
  // synthesized telemetry.
  CampaignTrace stripped;
  stripped.on_begin(campaign.spec(), campaign.initial_nodes());
  for (const scenario::CampaignEvent& e : campaign.events())
    if (e.kind != TraceEventKind::HealPeering) stripped.on_event(e);
  const ReplayResult without = replay_trace(stripped, rc);
  EXPECT_LT(without.trace.flows.size(), a.trace.flows.size());
}

// ====================================================================
// Replay determinism
// ====================================================================

ReplayConfig mixed_config(std::uint64_t seed) {
  ReplayConfig rc;
  rc.seed = seed;
  rc.benign_web = 60;
  rc.benign_tor = 15;
  rc.centralized_bots = 15;
  rc.dga_bots = 15;
  rc.fastflux_bots = 15;
  rc.p2p_bots = 15;
  return rc;
}

TEST(Replay, EqualInputsReplayByteIdentically) {
  const CampaignTrace campaign = record(busy_spec(17));
  const ReplayResult a = replay_trace(campaign, mixed_config(1));
  const ReplayResult b = replay_trace(campaign, mixed_config(1));
  EXPECT_EQ(serialize(a.trace), serialize(b.trace));
  EXPECT_EQ(fingerprint(a.trace), fingerprint(b.trace));
  EXPECT_EQ(a.onion_bots, b.onion_bots);
}

TEST(Replay, DifferentSensorSeedDiverges) {
  const CampaignTrace campaign = record(busy_spec(17));
  EXPECT_NE(fingerprint(replay_trace(campaign, mixed_config(1)).trace),
            fingerprint(replay_trace(campaign, mixed_config(2)).trace));
}

TEST(Replay, DifferentCampaignDiverges) {
  EXPECT_NE(
      fingerprint(replay_trace(record(busy_spec(17)), mixed_config(1)).trace),
      fingerprint(
          replay_trace(record(busy_spec(18)), mixed_config(1)).trace));
}

TEST(Replay, PopulationsArePlumbedIntoGroundTruth) {
  const CampaignTrace campaign = record(busy_spec(19));
  const ReplayResult r = replay_trace(campaign, mixed_config(1));
  EXPECT_EQ(r.onion_bots.size(), campaign.lifetimes().size());
  EXPECT_EQ(r.benign_web_hosts.size(), 60u);
  EXPECT_EQ(r.benign_tor_users.size(), 15u);
  EXPECT_EQ(r.trace.infected.size(),
            r.onion_bots.size() + 15u * 4);
  // infected = union of the family lists, hosts ⊇ infected.
  const std::set<HostId> hosts(r.trace.hosts.begin(), r.trace.hosts.end());
  for (const HostId h : r.trace.infected) EXPECT_TRUE(hosts.count(h) > 0);
  // Dead bots stop emitting: every flow from a takedown victim's host
  // precedes its death (checked via the busiest victim).
  EXPECT_GT(r.trace.flows.size(), 0u);
}

TEST(Replay, ShortWindowDropsNeverObservableBots) {
  // A window cut at half the horizon: joiners born past it produce no
  // telemetry and must not enter the ground truth.
  const CampaignTrace campaign = record(busy_spec(19));
  ReplayConfig rc = mixed_config(1);
  rc.window = campaign.horizon() / 2;
  const ReplayResult r = replay_trace(campaign, rc);
  const auto lifetimes = campaign.lifetimes();
  const std::size_t observable = static_cast<std::size_t>(
      std::count_if(lifetimes.begin(), lifetimes.end(),
                    [&](const auto& l) { return l.birth < rc.window; }));
  EXPECT_EQ(r.onion_bots.size(), observable);
  EXPECT_LT(r.onion_bots.size(), lifetimes.size())
      << "spec should have late joiners";
  // No replayed record postdates the window (+1s browsing-fetch grace).
  for (const FlowRecord& f : r.trace.flows)
    EXPECT_LT(f.at, rc.window + kSecond);
}

TEST(Replay, ExcludingTheCampaignPopulationWorks) {
  const CampaignTrace campaign = record(busy_spec(19));
  ReplayConfig rc = mixed_config(1);
  rc.max_onion_bots = 0;
  const ReplayResult r = replay_trace(campaign, rc);
  EXPECT_TRUE(r.onion_bots.empty());
  EXPECT_EQ(r.trace.infected.size(), 15u * 4);
}

TEST(Replay, DeadBotsGoDark) {
  const ScenarioSpec spec = busy_spec(23);
  const CampaignTrace campaign = record(spec);
  ReplayConfig rc;
  rc.seed = 9;
  rc.benign_web = 0;
  rc.benign_tor = 0;  // isolate the campaign population
  const ReplayResult r = replay_trace(campaign, rc);

  // Map host -> death time via the lifetimes (allocation is node order).
  const auto lifetimes = campaign.lifetimes();
  ASSERT_EQ(lifetimes.size(), r.onion_bots.size());
  std::size_t truncated = 0;
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    if (lifetimes[i].death >= spec.horizon) continue;
    ++truncated;
    for (const FlowRecord& f : r.trace.flows) {
      if (f.src != r.onion_bots[i]) continue;
      // The browsing model stamps a page fetch one second after its
      // DNS lookup, so a flow may trail the death by that second.
      EXPECT_LT(f.at, lifetimes[i].death + kSecond)
          << "host " << f.src << " emitted after its death";
    }
  }
  EXPECT_GT(truncated, 0u) << "spec should kill somebody";
}

// ====================================================================
// Detector sanity on replayed traces (the paper's Section II/VI table)
// ====================================================================

TEST(Replay, LegacyFamiliesAreCaughtOnionBotsAreNot) {
  const CampaignTrace campaign = record(busy_spec(29));
  const ReplayResult r = replay_trace(campaign, mixed_config(1));
  const TrafficTrace& trace = r.trace;

  const DetectionResult dga = detect_dga(trace);
  EXPECT_GE(flagged_fraction(dga, r.dga_bots), 0.9);
  EXPECT_DOUBLE_EQ(flagged_fraction(dga, r.onion_bots), 0.0);
  EXPECT_DOUBLE_EQ(flagged_fraction(dga, r.benign_web_hosts), 0.0);

  const DetectionResult flux = detect_fastflux(trace);
  EXPECT_GE(flagged_fraction(flux, r.fastflux_bots), 0.9);
  EXPECT_DOUBLE_EQ(flagged_fraction(flux, r.onion_bots), 0.0);

  const DetectionResult p2p = detect_p2p(trace);
  EXPECT_GE(flagged_fraction(p2p, r.p2p_bots), 0.8);
  EXPECT_DOUBLE_EQ(flagged_fraction(p2p, r.onion_bots), 0.0);

  const DetectionResult beacons = detect_beacons(trace);
  EXPECT_GE(flagged_fraction(beacons, r.centralized_bots), 0.9);
}

TEST(Replay, TorFlaggerTakesTheTorUsersDownWithTheBots) {
  const CampaignTrace campaign = record(busy_spec(31));
  const ReplayResult r = replay_trace(campaign, mixed_config(1));
  const DetectionResult tor = detect_tor_users(r.trace);
  // Every benign Tor user is false-flagged; the campaign population is
  // flagged at a comparable rate (short-lived churn joiners may emit
  // fewer than min_flows cells before the window ends).
  EXPECT_DOUBLE_EQ(flagged_fraction(tor, r.benign_tor_users), 1.0);
  EXPECT_GE(flagged_fraction(tor, r.onion_bots), 0.8);
  // Nobody off Tor is touched.
  EXPECT_DOUBLE_EQ(flagged_fraction(tor, r.benign_web_hosts), 0.0);
  EXPECT_DOUBLE_EQ(flagged_fraction(tor, r.dga_bots), 0.0);
}

TEST(Replay, FlowDetectorCannotSeparateBotsFromTorUsers) {
  const CampaignTrace campaign = record(busy_spec(37));
  const ReplayResult r = replay_trace(campaign, mixed_config(1));
  const DetectionResult beacons = detect_beacons(r.trace);
  const double bot_rate = flagged_fraction(beacons, r.onion_bots);
  const double tor_user_rate =
      flagged_fraction(beacons, r.benign_tor_users);
  // Either blind to both, or it misfires on the benign Tor users too —
  // the indistinguishability claim, now over replayed campaign traffic.
  if (bot_rate > 0.10) {
    EXPECT_GT(tor_user_rate, 0.0);
  } else {
    SUCCEED();
  }
}

// ====================================================================
// The ROC sweep
// ====================================================================

TEST(RocSweep, FingerprintIsThreadCountInvariant) {
  const CampaignTrace campaign = record(busy_spec(41));
  ReplayConfig rc = mixed_config(1);
  rc.benign_web = 30;  // keep the sweep snappy
  const ReplayResult r = replay_trace(campaign, rc);

  RocConfig one;
  one.threads = 1;
  RocConfig many;
  many.threads = 4;
  const RocReport serial = RocSweep(one).run(r.trace);
  const RocReport parallel = RocSweep(many).run(r.trace);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  EXPECT_EQ(serial.fingerprint, parallel.fingerprint);
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_GT(parallel.threads_used, 1u);
  for (std::size_t i = 0; i < serial.points.size(); ++i)
    EXPECT_EQ(serialize(serial.points[i]), serialize(parallel.points[i]))
        << "point " << i;
}

TEST(RocSweep, ReproducesAndReactsToTheTrace) {
  const CampaignTrace campaign = record(busy_spec(43));
  ReplayConfig rc = mixed_config(1);
  rc.benign_web = 30;
  const ReplayResult r = replay_trace(campaign, rc);
  const RocSweep sweep;
  EXPECT_EQ(sweep.run(r.trace).fingerprint, sweep.run(r.trace).fingerprint);

  rc.seed = 2;  // different sensor noise => different sweep
  const ReplayResult other = replay_trace(campaign, rc);
  EXPECT_NE(sweep.run(r.trace).fingerprint,
            sweep.run(other.trace).fingerprint);
}

TEST(RocSweep, GridCoversEveryFamilyInDeclarationOrder) {
  const RocSweep sweep;
  EXPECT_EQ(sweep.cell_count(), 16u + 16u + 16u + 16u + 4u);
  const CampaignTrace campaign = record(busy_spec(47));
  ReplayConfig rc;
  rc.benign_web = 10;
  rc.benign_tor = 5;
  const RocReport report =
      RocSweep().run(replay_trace(campaign, rc).trace);
  ASSERT_EQ(report.points.size(), sweep.cell_count());
  EXPECT_EQ(report.points.front().detector, "dga-dns");
  EXPECT_EQ(report.points.back().detector, "tor-flagger");
  // Monotonicity spot-check: a stricter tor-flagger never flags more.
  const RocPoint* prev = nullptr;
  for (const RocPoint& p : report.points) {
    if (p.detector != "tor-flagger") continue;
    if (prev != nullptr) {
      EXPECT_LE(p.flagged, prev->flagged);
    }
    prev = &p;
  }
}

}  // namespace
}  // namespace onion::detection
