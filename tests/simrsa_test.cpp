// Tests for the simulation-grade RSA, the rotation KDF (the paper's
// generateKey(PK_CC, H(K_B, i_p)) recipe), and the uniform message
// encoding (the Elligator stand-in), including a chi-square uniformity
// check on encoded cells.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "crypto/elligator_sim.hpp"
#include "crypto/kdf.hpp"
#include "crypto/simrsa.hpp"

namespace onion::crypto {
namespace {

TEST(Primality, SmallNumbers) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(561));   // Carmichael
  EXPECT_FALSE(is_prime_u64(41041)); // Carmichael
}

TEST(Primality, LargeKnownValues) {
  EXPECT_TRUE(is_prime_u64(2147483647ULL));            // 2^31 - 1
  EXPECT_TRUE(is_prime_u64(0xffffffffffffffc5ULL));    // largest u64 prime
  EXPECT_FALSE(is_prime_u64(0xffffffffffffffffULL));
  EXPECT_TRUE(is_prime_u64(67280421310721ULL));        // factor of F_6
  EXPECT_FALSE(is_prime_u64(67280421310721ULL * 3));
}

TEST(ModPow, KnownValues) {
  EXPECT_EQ(modpow_u64(2, 10, 1000000007ULL), 1024u);
  EXPECT_EQ(modpow_u64(2, 0, 97), 1u);
  EXPECT_EQ(modpow_u64(5, 3, 13), 8u);  // 125 mod 13
  EXPECT_EQ(modpow_u64(123456789, 987654321, 1000000007ULL),
            modpow_u64(123456789 % 1000000007ULL, 987654321,
                       1000000007ULL));
  // Fermat: a^(p-1) = 1 mod p.
  EXPECT_EQ(modpow_u64(31337, 2147483646ULL, 2147483647ULL), 1u);
}

TEST(SimRsa, GenerateProducesWorkingKeys) {
  Rng rng(100);
  const RsaKeyPair key = rsa_generate(rng, 1024);
  EXPECT_GT(key.pub.n, 1ULL << 59);  // two ~31-bit primes
  EXPECT_EQ(key.pub.e, 65537u);
  EXPECT_EQ(key.pub.nominal_bits, 1024);
  // enc/dec inverse on a sample of values.
  for (const std::uint64_t v :
       std::vector<std::uint64_t>{0, 1, 42, key.pub.n - 1}) {
    EXPECT_EQ(rsa_decrypt_value(key, rsa_encrypt_value(key.pub, v)), v);
  }
}

TEST(SimRsa, DistinctKeysFromDistinctSeeds) {
  Rng a(1), b(2);
  EXPECT_NE(rsa_generate(a, 1024).pub.n, rsa_generate(b, 1024).pub.n);
}

TEST(SimRsa, SignVerify) {
  Rng rng(101);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes msg = to_bytes("attack example.com at dawn");
  const RsaSignature sig = rsa_sign(key, msg);
  EXPECT_TRUE(rsa_verify(key.pub, msg, sig));
}

TEST(SimRsa, VerifyRejectsTamperedMessage) {
  Rng rng(102);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const RsaSignature sig = rsa_sign(key, to_bytes("original"));
  EXPECT_FALSE(rsa_verify(key.pub, to_bytes("Original"), sig));
  EXPECT_FALSE(rsa_verify(key.pub, to_bytes("original "), sig));
}

TEST(SimRsa, VerifyRejectsTamperedSignature) {
  Rng rng(103);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes msg = to_bytes("msg");
  const RsaSignature sig = rsa_sign(key, msg);
  EXPECT_FALSE(rsa_verify(key.pub, msg, sig ^ 1));
  EXPECT_FALSE(rsa_verify(key.pub, msg, 0));
}

TEST(SimRsa, VerifyRejectsWrongKey) {
  Rng rng(104);
  const RsaKeyPair key1 = rsa_generate(rng, 2048);
  const RsaKeyPair key2 = rsa_generate(rng, 2048);
  const Bytes msg = to_bytes("msg");
  EXPECT_FALSE(rsa_verify(key2.pub, msg, rsa_sign(key1, msg)));
}

TEST(SimRsa, HybridRoundTrip) {
  Rng rng(105);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes secret = to_bytes("K_B = 32 bytes of link key material!");
  const Bytes boxed = rsa_hybrid_encrypt(key.pub, secret, rng);
  EXPECT_NE(BytesView(boxed).subspan(8).size(), 0u);
  EXPECT_EQ(rsa_hybrid_decrypt(key, boxed), secret);
}

TEST(SimRsa, HybridFreshRandomness) {
  Rng rng(106);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes secret = to_bytes("same plaintext");
  EXPECT_NE(rsa_hybrid_encrypt(key.pub, secret, rng),
            rsa_hybrid_encrypt(key.pub, secret, rng));
}

TEST(SimRsa, HybridRejectsMalformed) {
  Rng rng(107);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  EXPECT_THROW(rsa_hybrid_decrypt(key, Bytes{1, 2, 3}),
               std::invalid_argument);
}

TEST(SimRsa, SerializeIsStable) {
  RsaPublicKey pub{12345, 65537, 1024};
  EXPECT_EQ(pub.serialize(), pub.serialize());
  RsaPublicKey other{12346, 65537, 1024};
  EXPECT_NE(pub.serialize(), other.serialize());
}

TEST(Kdf, DeriveBytesIsDeterministicAndLabelSeparated) {
  const Bytes secret = to_bytes("secret");
  const Bytes ctx = to_bytes("ctx");
  EXPECT_EQ(derive_bytes(secret, "a", ctx), derive_bytes(secret, "a", ctx));
  EXPECT_NE(derive_bytes(secret, "a", ctx), derive_bytes(secret, "b", ctx));
  EXPECT_NE(derive_bytes(secret, "a", ctx),
            derive_bytes(secret, "a", to_bytes("other")));
}

TEST(Kdf, RotatedServiceKeyDeterministic) {
  Rng rng(108);
  const RsaKeyPair master = rsa_generate(rng, 2048);
  const Bytes kb = to_bytes("bot link key 0123456789abcdef!!!");
  // Bot and C&C derive independently and must agree — the paper's whole
  // rotation mechanism rests on this.
  const RsaKeyPair at_bot = rotated_service_key(master.pub, kb, 7);
  const RsaKeyPair at_cnc = rotated_service_key(master.pub, kb, 7);
  EXPECT_EQ(at_bot.pub, at_cnc.pub);
  EXPECT_EQ(at_bot.d, at_cnc.d);
}

TEST(Kdf, RotatedServiceKeyChangesEveryPeriod) {
  Rng rng(109);
  const RsaKeyPair master = rsa_generate(rng, 2048);
  const Bytes kb = to_bytes("bot link key 0123456789abcdef!!!");
  const RsaKeyPair p0 = rotated_service_key(master.pub, kb, 0);
  const RsaKeyPair p1 = rotated_service_key(master.pub, kb, 1);
  EXPECT_NE(p0.pub, p1.pub);
}

TEST(Kdf, RotatedServiceKeyBoundToBotAndMaster) {
  Rng rng(110);
  const RsaKeyPair m1 = rsa_generate(rng, 2048);
  const RsaKeyPair m2 = rsa_generate(rng, 2048);
  const Bytes kb1 = to_bytes("kb-one");
  const Bytes kb2 = to_bytes("kb-two");
  EXPECT_NE(rotated_service_key(m1.pub, kb1, 3).pub,
            rotated_service_key(m1.pub, kb2, 3).pub);
  EXPECT_NE(rotated_service_key(m1.pub, kb1, 3).pub,
            rotated_service_key(m2.pub, kb1, 3).pub);
}

TEST(UniformEncoding, RoundTrip) {
  Rng rng(111);
  const Bytes key = to_bytes("group key");
  for (const std::size_t len :
       {std::size_t{0}, std::size_t{1}, std::size_t{100},
        kUniformCellCapacity}) {
    Bytes msg(len);
    for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes cell = uniform_encode(key, msg, rng);
    EXPECT_EQ(cell.size(), kUniformCellSize);
    const auto decoded = uniform_decode(key, cell);
    ASSERT_TRUE(decoded.has_value()) << len;
    EXPECT_EQ(*decoded, msg);
  }
}

TEST(UniformEncoding, FixedSizeRegardlessOfPayload) {
  Rng rng(112);
  const Bytes key = to_bytes("k");
  EXPECT_EQ(uniform_encode(key, {}, rng).size(),
            uniform_encode(key, Bytes(400, 7), rng).size());
}

TEST(UniformEncoding, WrongKeyFails) {
  Rng rng(113);
  const Bytes cell = uniform_encode(to_bytes("k1"), to_bytes("hello"), rng);
  EXPECT_FALSE(uniform_decode(to_bytes("k2"), cell).has_value());
}

TEST(UniformEncoding, TamperDetected) {
  Rng rng(114);
  const Bytes key = to_bytes("k");
  Bytes cell = uniform_encode(key, to_bytes("payload"), rng);
  for (const std::size_t pos :
       {std::size_t{0}, std::size_t{16}, std::size_t{100},
        kUniformCellSize - 1}) {
    Bytes bad = cell;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(uniform_decode(key, bad).has_value()) << pos;
  }
}

TEST(UniformEncoding, WrongSizeRejected) {
  const Bytes key = to_bytes("k");
  EXPECT_FALSE(uniform_decode(key, Bytes(100, 0)).has_value());
  EXPECT_FALSE(uniform_decode(key, Bytes(kUniformCellSize + 1, 0)).has_value());
}

TEST(UniformEncoding, SamePlaintextUnlinkable) {
  Rng rng(115);
  const Bytes key = to_bytes("k");
  const Bytes a = uniform_encode(key, to_bytes("ddos example.com"), rng);
  const Bytes b = uniform_encode(key, to_bytes("ddos example.com"), rng);
  EXPECT_NE(a, b);
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] == b[i]) ++same;
  // Unrelated uniform strings agree on ~1/256 of positions.
  EXPECT_LT(same, a.size() / 16);
}

TEST(UniformEncoding, ChiSquareUniformity) {
  // The property the paper wants from Elligator: encoded messages are
  // indistinguishable from uniform random strings. Chi-square over byte
  // values across many encodings of a *fixed, highly structured*
  // plaintext.
  Rng rng(116);
  const Bytes key = to_bytes("group");
  const Bytes msg(64, 0x00);  // worst case: all zeros
  std::array<std::size_t, 256> counts{};
  const int cells = 600;
  for (int i = 0; i < cells; ++i) {
    const Bytes cell = uniform_encode(key, msg, rng);
    for (const std::uint8_t b : cell) ++counts[b];
  }
  const double total = static_cast<double>(cells) * kUniformCellSize;
  const double expected = total / 256.0;
  double chi2 = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  // 255 degrees of freedom: mean 255, std ~22.6. Accept within 6 sigma.
  EXPECT_GT(chi2, 255.0 - 6 * 22.6);
  EXPECT_LT(chi2, 255.0 + 6 * 22.6);
}

}  // namespace
}  // namespace onion::crypto
