// Detection-module tests: each detector catches the botnet family whose
// published signature it encodes, stays quiet on benign traffic, and —
// the module's reason to exist — comes up empty against OnionBot
// traffic (paper §II/§VI: every network-level technique the paper
// surveys fails once the C&C moves inside Tor).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/telemetry.hpp"
#include "detection/tor_flagger.hpp"
#include "detection/traffic.hpp"

namespace onion::detection {
namespace {

TrafficConfig small_config() {
  TrafficConfig cfg;
  cfg.window = 12 * kHour;
  cfg.bots = 20;
  cfg.benign_web = 60;
  cfg.benign_tor = 10;
  return cfg;
}

// --- telemetry scoring ------------------------------------------------

TEST(Telemetry, RatesAgainstGroundTruth) {
  TrafficTrace trace;
  trace.hosts = {1, 2, 3, 4};
  trace.infected = {1, 2};
  DetectionResult r;
  r.flagged = {1, 3};
  EXPECT_DOUBLE_EQ(r.true_positive_rate(trace), 0.5);
  EXPECT_DOUBLE_EQ(r.false_positive_rate(trace), 0.5);
}

TEST(Telemetry, EmptyTraceYieldsZeroRates) {
  TrafficTrace trace;
  DetectionResult r;
  EXPECT_DOUBLE_EQ(r.true_positive_rate(trace), 0.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate(trace), 0.0);
}

TEST(Telemetry, AppendMergesAllStreams) {
  TrafficTrace a;
  a.hosts = {1};
  a.dns.push_back(DnsRecord{1, "x.example", false, 60, 7, 0});
  TrafficTrace b;
  b.hosts = {2};
  b.flows.push_back(FlowRecord{2, 9, 80, 100, false, 0});
  b.infected = {2};
  a.append(b);
  EXPECT_EQ(a.hosts.size(), 2u);
  EXPECT_EQ(a.dns.size(), 1u);
  EXPECT_EQ(a.flows.size(), 1u);
  EXPECT_EQ(a.infected.size(), 1u);
}

TEST(Telemetry, AppendDeduplicatesGroundTruthPreservingOrder) {
  // Two captures sharing the relay registry and some hosts must not
  // double-count anything a rate denominator uses.
  TrafficTrace a;
  a.hosts = {1, 2, 3};
  a.infected = {3};
  a.known_tor_relays = {90, 91};
  TrafficTrace b;
  b.hosts = {2, 4, 3, 5};
  b.infected = {3, 4};
  b.known_tor_relays = {91, 92};
  a.append(b);
  EXPECT_EQ(a.hosts, (std::vector<HostId>{1, 2, 3, 4, 5}));
  EXPECT_EQ(a.infected, (std::vector<HostId>{3, 4}));
  EXPECT_EQ(a.known_tor_relays, (std::vector<HostId>{90, 91, 92}));
  // Scoring a verdict over the merged trace sees each host once.
  DetectionResult r;
  r.flagged = {3, 4};
  EXPECT_DOUBLE_EQ(r.true_positive_rate(a), 1.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate(a), 0.0);
}

TEST(Telemetry, SerializationCoversEveryStream) {
  TrafficTrace a;
  a.hosts = {1, 2};
  a.infected = {2};
  a.known_tor_relays = {9};
  a.dns.push_back(DnsRecord{1, "x.example", false, 60, 7, 5});
  a.flows.push_back(FlowRecord{2, 9, 443, 1024, true, 6});
  const TrafficTrace b = a;
  EXPECT_EQ(serialize(a), serialize(b));
  EXPECT_EQ(fingerprint(a), fingerprint(b));

  TrafficTrace c = a;
  c.flows[0].bytes = 1025;  // any field change must move the bytes
  EXPECT_NE(serialize(a), serialize(c));
  TrafficTrace d = a;
  d.dns[0].qname = "y.example";
  EXPECT_NE(serialize(a), serialize(d));
  TrafficTrace e = a;
  e.known_tor_relays.push_back(10);
  EXPECT_NE(serialize(a), serialize(e));
}

// --- workload generators ----------------------------------------------

TEST(Traffic, GeneratorsProduceLabelledHosts) {
  Rng rng(11);
  const TrafficConfig cfg = small_config();
  for (const auto* name : {"centralized", "dga", "fastflux", "p2p",
                           "onion"}) {
    Rng local(rng.next_u64());
    TrafficTrace trace;
    if (std::string(name) == "centralized")
      trace = centralized_http_traffic(cfg, local);
    else if (std::string(name) == "dga")
      trace = dga_traffic(cfg, local);
    else if (std::string(name) == "fastflux")
      trace = fastflux_traffic(cfg, local);
    else if (std::string(name) == "p2p")
      trace = p2p_plain_traffic(cfg, local);
    else
      trace = onionbot_traffic(cfg, local);
    EXPECT_EQ(trace.infected.size(), cfg.bots) << name;
    EXPECT_GE(trace.hosts.size(), cfg.bots + cfg.benign_web) << name;
    EXPECT_FALSE(trace.flows.empty()) << name;
    // Infected hosts are monitored hosts.
    const std::set<HostId> hosts(trace.hosts.begin(), trace.hosts.end());
    for (const HostId bot : trace.infected)
      EXPECT_TRUE(hosts.count(bot) > 0) << name;
  }
}

TEST(Traffic, OnionBotEmitsNoBotDnsAndOnlyCellSizedTorFlows) {
  Rng rng(12);
  TrafficConfig cfg = small_config();
  cfg.benign_web = 0;  // isolate the bots (plus relay registry)
  cfg.benign_tor = 0;
  const TrafficTrace trace = onionbot_traffic(cfg, rng);
  const std::set<HostId> bots(trace.infected.begin(), trace.infected.end());
  const std::set<HostId> relays(trace.known_tor_relays.begin(),
                                trace.known_tor_relays.end());
  for (const FlowRecord& f : trace.flows) {
    if (bots.count(f.src) == 0) continue;
    if (relays.count(f.dst) > 0) {
      EXPECT_TRUE(f.encrypted);
      EXPECT_EQ(f.bytes % 512, 0u) << "Tor moves fixed-size cells";
    }
  }
  // The bots browse like their human owners, but the *botnet* adds no
  // DNS: every bot DNS record here comes from the browsing model, none
  // from C&C (no .onion name ever reaches the resolver). With browsing
  // disabled for this check we confirm zero non-browsing DNS:
  for (const DnsRecord& r : trace.dns) {
    // browsing emits benign names only; no bot C&C domain exists
    EXPECT_TRUE(r.qname.find(".example") != std::string::npos);
  }
}

TEST(Traffic, BenignBackgroundHasNoInfectedHosts) {
  Rng rng(13);
  const TrafficTrace trace = benign_background(small_config(), rng);
  EXPECT_TRUE(trace.infected.empty());
  EXPECT_FALSE(trace.dns.empty());
}

// --- DGA detector -------------------------------------------------------

TEST(DgaDetector, NameEntropySeparatesGeneratedFromHuman) {
  EXPECT_LT(name_entropy("mail.example"), 3.2);
  EXPECT_LT(name_entropy("banana.example"), 2.8);
  EXPECT_GT(name_entropy("xkqvzhwpltjmrd.example"), 3.2);
  EXPECT_DOUBLE_EQ(name_entropy(""), 0.0);
  EXPECT_DOUBLE_EQ(name_entropy(".example"), 0.0);
}

TEST(DgaDetector, CatchesDgaBots) {
  Rng rng(21);
  const TrafficTrace trace = dga_traffic(small_config(), rng);
  const DetectionResult r = detect_dga(trace);
  EXPECT_GE(r.true_positive_rate(trace), 0.95);
  EXPECT_LE(r.false_positive_rate(trace), 0.02);
}

TEST(DgaDetector, QuietOnBenign) {
  Rng rng(22);
  const TrafficTrace trace = benign_background(small_config(), rng);
  const DetectionResult r = detect_dga(trace);
  EXPECT_TRUE(r.flagged.empty());
}

TEST(DgaDetector, BlindToOnionBots) {
  Rng rng(23);
  const TrafficTrace trace = onionbot_traffic(small_config(), rng);
  const DetectionResult r = detect_dga(trace);
  EXPECT_DOUBLE_EQ(r.true_positive_rate(trace), 0.0);
}

TEST(DgaDetector, FeatureVectorShapes) {
  Rng rng(24);
  const TrafficTrace trace = dga_traffic(small_config(), rng);
  const auto features = dga_features(trace);
  EXPECT_FALSE(features.empty());
  // Bots dominate the NXDOMAIN tail.
  const std::set<HostId> bots(trace.infected.begin(),
                              trace.infected.end());
  double bot_max_ratio = 0.0, benign_max_ratio = 0.0;
  for (const auto& f : features) {
    if (bots.count(f.host) > 0)
      bot_max_ratio = std::max(bot_max_ratio, f.nxdomain_ratio);
    else
      benign_max_ratio = std::max(benign_max_ratio, f.nxdomain_ratio);
  }
  EXPECT_GT(bot_max_ratio, benign_max_ratio);
}

// --- fast-flux detector -------------------------------------------------

TEST(FluxDetector, CatchesFluxedDomainAndItsClients) {
  Rng rng(31);
  const TrafficTrace trace = fastflux_traffic(small_config(), rng);
  const auto domains = fluxed_domains(trace, {});
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0], "promo-deals.example");
  const DetectionResult r = detect_fastflux(trace);
  EXPECT_GE(r.true_positive_rate(trace), 0.95);
  EXPECT_LE(r.false_positive_rate(trace), 0.02);
}

TEST(FluxDetector, QuietOnBenign) {
  Rng rng(32);
  const TrafficTrace trace = benign_background(small_config(), rng);
  EXPECT_TRUE(fluxed_domains(trace, {}).empty());
}

TEST(FluxDetector, BlindToOnionBots) {
  Rng rng(33);
  const TrafficTrace trace = onionbot_traffic(small_config(), rng);
  const DetectionResult r = detect_fastflux(trace);
  EXPECT_DOUBLE_EQ(r.true_positive_rate(trace), 0.0);
}

TEST(FluxDetector, PopularSiteWithManyIpsNeedsShortTtlToo) {
  // A CDN-like name resolving to many IPs at normal TTLs must not flux.
  TrafficTrace trace;
  for (std::uint32_t i = 0; i < 40; ++i) {
    DnsRecord r;
    r.client = 1;
    r.qname = "cdn.example";
    r.ttl = 3600;
    r.resolved = 0x08000000u + i;
    trace.dns.push_back(r);
  }
  trace.hosts = {1};
  EXPECT_TRUE(fluxed_domains(trace, {}).empty());
}

// --- flow/beacon detector -----------------------------------------------

TEST(FlowDetector, CatchesCentralizedBeacons) {
  Rng rng(41);
  const TrafficTrace trace = centralized_http_traffic(small_config(), rng);
  const DetectionResult r = detect_beacons(trace);
  EXPECT_GE(r.true_positive_rate(trace), 0.9);
  EXPECT_LE(r.false_positive_rate(trace), 0.05);
}

TEST(FlowDetector, QuietOnBenign) {
  Rng rng(42);
  const TrafficTrace trace = benign_background(small_config(), rng);
  const DetectionResult r = detect_beacons(trace);
  EXPECT_LE(r.false_positive_rate(trace), 0.05);
}

TEST(FlowDetector, CannotSeparateOnionBotsFromTorUsers) {
  // Whatever it flags among OnionBots, it flags a comparable share of
  // benign Tor users: the feature no longer separates (paper §VI).
  Rng rng(43);
  TrafficConfig cfg = small_config();
  cfg.benign_tor = 20;
  const TrafficTrace trace = onionbot_traffic(cfg, rng);
  const DetectionResult r = detect_beacons(trace);
  const double tpr = r.true_positive_rate(trace);
  const double fpr = r.false_positive_rate(trace);
  // Either it is blind, or it misfires on benign Tor users at a similar
  // rate — precision collapses either way.
  if (tpr > 0.10) {
    EXPECT_GT(fpr, 0.0)
        << "flagging bots without flagging Tor users would break the "
           "paper's indistinguishability claim";
  } else {
    SUCCEED();
  }
}

TEST(FlowDetector, ChannelFeaturesComputeCv) {
  TrafficTrace trace;
  // Perfectly regular beacon: constant size, constant gap.
  for (int i = 0; i < 20; ++i) {
    FlowRecord f;
    f.src = 5;
    f.dst = 9;
    f.bytes = 100;
    f.at = static_cast<SimTime>(i) * kMinute;
    trace.flows.push_back(f);
  }
  const auto features = channel_features(trace, 12);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_LT(features[0].size_cv, 1e-9);
  EXPECT_LT(features[0].gap_cv, 1e-9);
}

// --- P2P mesh detector ----------------------------------------------------

TEST(P2pDetector, CatchesPlaintextP2pMesh) {
  Rng rng(51);
  const TrafficTrace trace = p2p_plain_traffic(small_config(), rng);
  const DetectionResult r = detect_p2p(trace);
  EXPECT_GE(r.true_positive_rate(trace), 0.8);
  EXPECT_LE(r.false_positive_rate(trace), 0.02);
}

TEST(P2pDetector, QuietOnBenign) {
  Rng rng(52);
  const TrafficTrace trace = benign_background(small_config(), rng);
  const DetectionResult r = detect_p2p(trace);
  EXPECT_TRUE(r.flagged.empty())
      << "browsing is star-shaped; no monitored-host mesh exists";
}

TEST(P2pDetector, BlindToOnionBots) {
  // The paper's structural evasion: bot<->bot edges exist only inside
  // Tor; the observable graph has no monitored-host mesh at all.
  Rng rng(53);
  const TrafficTrace trace = onionbot_traffic(small_config(), rng);
  const DetectionResult r = detect_p2p(trace);
  EXPECT_DOUBLE_EQ(r.true_positive_rate(trace), 0.0);
}

// --- the blunt instrument --------------------------------------------------

TEST(TorFlagger, FlagsEveryOnionBot) {
  Rng rng(61);
  const TrafficTrace trace = onionbot_traffic(small_config(), rng);
  const DetectionResult r = detect_tor_users(trace);
  EXPECT_GE(r.true_positive_rate(trace), 0.99);
}

TEST(TorFlagger, AlsoFlagsEveryLegitimateTorUser) {
  Rng rng(62);
  TrafficConfig cfg = small_config();
  cfg.benign_tor = 20;
  const TrafficTrace trace = onionbot_traffic(cfg, rng);
  const DetectionResult r = detect_tor_users(trace);
  // All benign Tor users are false-flagged: the measure is equivalent
  // to blocking Tor for everyone (paper conclusion).
  const double fpr = r.false_positive_rate(trace);
  const double benign_tor_share =
      static_cast<double>(cfg.benign_tor) /
      static_cast<double>(cfg.benign_web + cfg.benign_tor);
  EXPECT_GE(fpr, benign_tor_share * 0.99);
}

}  // namespace
}  // namespace onion::detection
