// Subgroup key tests (paper §IV-D): the botmaster installs group keys
// over the signed direct channel, group broadcasts execute on members
// only, non-members relay the envelopes unread, and the rental chain can
// never be used to install keys.
#include <gtest/gtest.h>

#include "core/botnet.hpp"
#include "crypto/elligator_sim.hpp"

namespace onion::core {
namespace {

Botnet::Params group_params(std::uint64_t seed = 5) {
  Botnet::Params p;
  p.num_bots = 16;
  p.initial_degree = 4;
  p.seed = seed;
  p.tor.num_relays = 20;
  p.bot.dmin = 3;
  p.bot.dmax = 6;
  return p;
}

TEST(GroupKeys, CreateGroupInstallsKeysOnMembersOnly) {
  Botnet net(group_params());
  const std::vector<std::uint32_t> members = {2, 5, 11};
  const std::uint64_t gid = net.master().create_group(members);
  net.run_for(5 * kMinute);

  for (std::size_t i = 0; i < net.num_bots(); ++i) {
    const bool is_member =
        std::find(members.begin(), members.end(),
                  static_cast<std::uint32_t>(i)) != members.end();
    EXPECT_EQ(net.bot(i).group_keys().count(gid) > 0, is_member)
        << "bot " << i;
  }
  EXPECT_EQ(net.master().group_members(gid), members);
}

TEST(GroupKeys, GroupBroadcastExecutesOnMembersOnly) {
  Botnet net(group_params());
  const std::vector<std::uint32_t> members = {1, 4, 7, 9};
  const std::uint64_t gid = net.master().create_group(members);
  net.run_for(5 * kMinute);

  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "group-target.example";
  net.master().broadcast_group(gid, cmd, /*fanout=*/3);
  net.run_for(15 * kMinute);

  EXPECT_EQ(net.count_executed(CommandType::Ddos), members.size())
      << "exactly the members execute";
  for (const std::uint32_t m : members) {
    bool found = false;
    for (const auto& e : net.bot(m).executed())
      if (e.type == CommandType::Ddos) found = true;
    EXPECT_TRUE(found) << "member " << m;
  }
}

TEST(GroupKeys, NonMembersStillRelayGroupEnvelopes) {
  // The flood must traverse non-members for the group to be reachable —
  // and non-members relaying unreadable envelopes is the §IV-D stealth
  // property (they cannot even tell it was not for them).
  Botnet net(group_params());
  const std::vector<std::uint32_t> members = {14, 15};
  const std::uint64_t gid = net.master().create_group(members);
  net.run_for(5 * kMinute);

  std::vector<std::uint64_t> relayed_before;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    relayed_before.push_back(net.bot(i).broadcasts_relayed());

  Command cmd;
  cmd.type = CommandType::Spam;
  net.master().broadcast_group(gid, cmd, 2);
  net.run_for(15 * kMinute);

  std::size_t non_member_relays = 0;
  for (std::size_t i = 0; i < net.num_bots() - 2; ++i)
    non_member_relays +=
        net.bot(i).broadcasts_relayed() - relayed_before[i];
  EXPECT_GT(non_member_relays, 0u)
      << "non-members forwarded envelopes they could not read";
  EXPECT_EQ(net.count_executed(CommandType::Spam), 2u);
}

TEST(GroupKeys, DisjointGroupsDoNotCrossExecute) {
  Botnet net(group_params(9));
  const std::uint64_t red = net.master().create_group({0, 1, 2});
  const std::uint64_t blue = net.master().create_group({3, 4, 5});
  net.run_for(5 * kMinute);

  Command cmd;
  cmd.type = CommandType::Compute;
  cmd.argument = "red-only";
  net.master().broadcast_group(red, cmd, 2);
  net.run_for(15 * kMinute);

  for (const std::uint32_t b : {3u, 4u, 5u}) {
    for (const auto& e : net.bot(b).executed())
      EXPECT_NE(e.type, CommandType::Compute) << "blue bot " << b;
  }
  EXPECT_EQ(net.count_executed(CommandType::Compute), 3u);
  (void)blue;
}

TEST(GroupKeys, RentalTokenCanNeverInstallKeys) {
  Botnet net(group_params());
  Rng rng(77);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);
  // Even a whitelist that *names* InstallGroupKey is inert.
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 2 * kHour,
      {CommandType::InstallGroupKey, CommandType::Spam});
  EXPECT_FALSE(token.allows(CommandType::InstallGroupKey));
  EXPECT_TRUE(token.allows(CommandType::Spam));

  Command cmd;
  cmd.type = CommandType::InstallGroupKey;
  cmd.argument = "00000000000000ff:deadbeef";
  net.master().broadcast_rented(trudy, token, cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::InstallGroupKey), 0u);
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    EXPECT_TRUE(net.bot(i).group_keys().empty());
}

TEST(GroupKeys, MalformedInstallArgumentIsIgnored) {
  Botnet net(group_params());
  for (const char* arg : {"no-colon", "zz:gg", "00ff:", ":abcd",
                          "0011:abcd" /* gid not 8 bytes */}) {
    Command cmd;
    cmd.type = CommandType::InstallGroupKey;
    cmd.argument = arg;
    net.master().direct(3, cmd);
  }
  net.run_for(10 * kMinute);
  EXPECT_TRUE(net.bot(3).group_keys().empty())
      << "only well-formed gid:key arguments install";
  EXPECT_EQ(net.bot(3).executed().size(), 5u)
      << "commands were authenticated and processed, just inert";
}

TEST(GroupKeys, GroupEnvelopesAreUniformCells) {
  Botnet net(group_params());
  const std::uint64_t gid = net.master().create_group({0, 1});
  net.run_for(5 * kMinute);
  Command cmd;
  cmd.type = CommandType::Ping;
  net.master().broadcast_group(gid, cmd, 2);
  net.run_for(10 * kMinute);
  EXPECT_GT(net.tor().mean_relayed_cell_entropy(), 7.5)
      << "subgroup traffic is as shapeless as everything else";
}

}  // namespace
}  // namespace onion::core
