// Full-stack integration tests: a complete OnionBot botnet over the
// simulated Tor network. Broadcast flooding, direct C&C reach, address
// rotation, self-healing after takedowns, live rally, replay defense —
// the paper's Section IV mechanisms end to end.
#include <gtest/gtest.h>

#include "core/botnet.hpp"
#include "crypto/elligator_sim.hpp"
#include "graph/metrics.hpp"

namespace onion::core {
namespace {

Botnet::Params small_params(std::size_t bots = 16, std::uint64_t seed = 1) {
  Botnet::Params p;
  p.num_bots = bots;
  p.initial_degree = 4;
  p.seed = seed;
  p.tor.num_relays = 20;
  p.bot.dmin = 3;
  p.bot.dmax = 6;
  p.bot.rotation_period = 6 * kHour;
  p.bot.heartbeat_interval = 60 * kSecond;
  p.bot.non_share_interval = 3 * kMinute;
  return p;
}

TEST(BotnetTest, ConstructionWiresOverlay) {
  Botnet net(small_params());
  EXPECT_EQ(net.num_bots(), 16u);
  EXPECT_EQ(net.num_alive(), 16u);
  const graph::Graph overlay = net.overlay_snapshot();
  for (graph::NodeId u = 0; u < 16; ++u)
    EXPECT_EQ(overlay.degree(u), 4u);
  EXPECT_TRUE(graph::is_connected(overlay));
}

TEST(BotnetTest, EveryBotHasDistinctAddress) {
  Botnet net(small_params());
  std::set<tor::OnionAddress> addresses;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    addresses.insert(net.bot(i).address());
  EXPECT_EQ(addresses.size(), net.num_bots());
}

TEST(BotnetTest, MasterDerivesSameAddressesAsBots) {
  // The decoupled-rotation core: C&C derives each bot's address from
  // K_B without talking to it.
  Botnet net(small_params());
  for (std::size_t i = 0; i < net.num_bots(); ++i) {
    EXPECT_EQ(net.master().derive_address(static_cast<std::uint32_t>(i),
                                          net.current_period()),
              net.bot(i).address());
  }
}

TEST(BotnetTest, BroadcastReachesWholeBotnet) {
  Botnet net(small_params());
  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "victim.example";
  net.master().broadcast(cmd, /*fanout=*/2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Ddos), net.num_bots())
      << "flood must reach every bot exactly once (dedup)";
  for (std::size_t i = 0; i < net.num_bots(); ++i) {
    ASSERT_EQ(net.bot(i).executed().size(), 1u);
    EXPECT_EQ(net.bot(i).executed()[0].argument, "victim.example");
    EXPECT_FALSE(net.bot(i).executed()[0].rented);
  }
}

TEST(BotnetTest, BroadcastEnvelopesAreUniformCells) {
  // Bot-relayed broadcast envelopes have the fixed uniform-cell size, so
  // relaying bots learn nothing from length either.
  Botnet net(small_params());
  Command cmd;
  cmd.type = CommandType::Ping;
  net.master().broadcast(cmd, 1);
  net.run_for(10 * kMinute);
  EXPECT_GT(net.bot(0).broadcasts_relayed() +
                net.bot(1).broadcasts_relayed(),
            0u);
  // (envelope size enforced by uniform_encode; spot check the constant)
  EXPECT_EQ(crypto::kUniformCellSize, 512u);
}

TEST(BotnetTest, DirectCommandReachesTargetOnly) {
  Botnet net(small_params());
  tor::ConnectResult outcome;
  Command cmd;
  cmd.type = CommandType::Recon;
  net.master().direct(5, cmd,
                      [&](const tor::ConnectResult& r) { outcome = r; });
  net.run_for(5 * kMinute);
  EXPECT_TRUE(outcome.ok);
  ASSERT_EQ(outcome.reply.size(), 1u);
  EXPECT_EQ(outcome.reply[0], 1) << "bot acked execution";
  EXPECT_EQ(net.count_executed(CommandType::Recon), 1u);
  EXPECT_EQ(net.bot(5).executed().size(), 1u);
}

TEST(BotnetTest, RotationKeepsMasterReachability) {
  Botnet net(small_params());
  const tor::OnionAddress before = net.bot(3).address();
  // Cross a rotation boundary.
  net.run_for(6 * kHour + 10 * kMinute);
  const tor::OnionAddress after = net.bot(3).address();
  EXPECT_NE(before, after) << "address must rotate each period";

  tor::ConnectResult outcome;
  Command cmd;
  cmd.type = CommandType::Ping;
  net.master().direct(3, cmd,
                      [&](const tor::ConnectResult& r) { outcome = r; });
  net.run_for(5 * kMinute);
  EXPECT_TRUE(outcome.ok) << "C&C derives the rotated address on its own";
}

TEST(BotnetTest, RotationPreservesOverlayLinks) {
  Botnet net(small_params());
  net.run_for(6 * kHour + 30 * kMinute);
  const graph::Graph overlay = net.overlay_snapshot();
  EXPECT_TRUE(graph::is_connected(overlay))
      << "AddressChange notices must carry links across rotation";
}

TEST(BotnetTest, KilledBotStopsExecuting) {
  Botnet net(small_params());
  net.kill_bot(2);
  EXPECT_EQ(net.num_alive(), 15u);
  Command cmd;
  cmd.type = CommandType::Spam;
  net.master().broadcast(cmd, 3);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.bot(2).executed().size(), 0u);
  EXPECT_EQ(net.count_executed(CommandType::Spam), 15u);
}

TEST(BotnetTest, SelfHealingAfterTakedown) {
  Botnet net(small_params(24, /*seed=*/7));
  // Gradual takedown of 25% of the botnet.
  for (const std::size_t victim : {1u, 5u, 9u, 13u, 17u, 21u}) {
    net.kill_bot(victim);
    net.run_for(20 * kMinute);  // heartbeats detect, DDSR repairs
  }
  const graph::Graph overlay = net.overlay_snapshot();
  EXPECT_EQ(net.num_alive(), 18u);
  EXPECT_TRUE(graph::is_connected(overlay))
      << "DDSR repair must hold the overlay together";
  // Degrees stay inside the band (pruning) where the band is feasible.
  for (const graph::NodeId u : overlay.alive_nodes())
    EXPECT_LE(overlay.degree(u), 6u);
  // The healed botnet still takes commands.
  Command cmd;
  cmd.type = CommandType::Compute;
  net.master().broadcast(cmd, 3);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Compute), 18u);
}

TEST(BotnetTest, NewInfectionRalliesViaBootstrapList) {
  Botnet net(small_params());
  Bot& recruit = net.infect_new_bot();
  EXPECT_EQ(recruit.stage(), Bot::Stage::Waiting);
  EXPECT_EQ(recruit.degree(), 0u);
  // Hardcoded peer list: a couple of existing bot addresses.
  recruit.rally({net.bot(0).address(), net.bot(1).address()});
  net.run_for(10 * kMinute);
  EXPECT_GE(recruit.degree(), net.params().bot.dmin)
      << "rally walks the returned neighbor lists (hotlist behavior)";
  const graph::Graph overlay = net.overlay_snapshot();
  EXPECT_TRUE(graph::is_connected(overlay));
}

TEST(BotnetTest, ReplayedBroadcastIgnored) {
  Botnet net(small_params());
  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "once.example";
  net.master().broadcast(cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Ddos), net.num_bots());
  // An adversary replays by re-broadcasting the same signed command; the
  // nonce cache (and envelope dedup) must reject it. We simulate with a
  // fresh broadcast carrying the same nonce, which verify() accepts but
  // bots de-duplicate by nonce.
  net.master().broadcast(cmd, 2);  // new nonce: executes again
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Ddos), 2 * net.num_bots());
}

TEST(BotnetTest, ReplayedDirectCommandRejected) {
  // A true bit-for-bit replay: a renter signs a legitimate command, the
  // captured wire is delivered twice. First delivery executes; the
  // replay is dropped by the bot's nonce cache — the defense Table I's
  // legacy botnets all lack.
  Botnet net(small_params());
  Rng rng(98);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 2 * kHour, {CommandType::Spam});
  Command cmd;
  cmd.type = CommandType::Spam;
  cmd.issued_at = net.simulator().now();
  cmd.nonce = 424242;
  const SignedCommand signed_cmd = sign_rented_command(trudy, token, cmd);
  const Bytes wire = encode_direct_command(signed_cmd);

  const tor::EndpointId sender = net.tor().create_endpoint();
  tor::ConnectResult first, second;
  net.tor().connect_and_send(sender, net.bot(6).address(), wire,
                             [&](const tor::ConnectResult& r) { first = r; });
  net.run_for(5 * kMinute);
  net.tor().connect_and_send(
      sender, net.bot(6).address(), wire,
      [&](const tor::ConnectResult& r) { second = r; });
  net.run_for(5 * kMinute);

  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(first.reply[0], 1) << "original executes";
  EXPECT_EQ(second.reply[0], 0) << "replay rejected";
  EXPECT_EQ(net.bot(6).executed().size(), 1u);
}

TEST(BotnetTest, ReplayViaRawEndpoint) {
  // A defender who captured a valid signed direct command re-sends it:
  // first delivery executes, the replay is dropped by the nonce cache.
  Botnet net(small_params());
  // Let the master issue a direct command; capture the bot's executed
  // nonce, then replay an identical message through a raw endpoint.
  Command cmd;
  cmd.type = CommandType::Compute;
  net.master().direct(4, cmd);
  net.run_for(5 * kMinute);
  ASSERT_EQ(net.bot(4).executed().size(), 1u);

  // Craft a bit-identical command (the master's direct() stamped time
  // and nonce internally; reproduce by signing the same payload is not
  // possible without the nonce, so emulate the capture: send the same
  // wire twice ourselves).
  Command replay_cmd;
  replay_cmd.type = CommandType::Compute;
  replay_cmd.issued_at = net.simulator().now();
  replay_cmd.nonce = 777;
  // Defender cannot sign (no master key) — verify that an unsigned or
  // self-signed command is rejected outright.
  Rng rng(99);
  const crypto::RsaKeyPair impostor = crypto::rsa_generate(rng, 2048);
  const SignedCommand forged = sign_command(impostor, replay_cmd);
  const tor::EndpointId attacker = net.tor().create_endpoint();
  tor::ConnectResult outcome;
  net.tor().connect_and_send(
      attacker, net.bot(4).address(), encode_direct_command(forged),
      [&](const tor::ConnectResult& r) { outcome = r; });
  net.run_for(5 * kMinute);
  ASSERT_TRUE(outcome.ok) << "message delivered over Tor";
  ASSERT_EQ(outcome.reply.size(), 1u);
  EXPECT_EQ(outcome.reply[0], 0) << "bot rejected the forged command";
  EXPECT_EQ(net.bot(4).executed().size(), 1u);
}

TEST(BotnetTest, RentedCommandExecutesWithinContract) {
  Botnet net(small_params());
  Rng rng(42);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 2 * kHour, {CommandType::Spam});
  Command cmd;
  cmd.type = CommandType::Spam;
  cmd.argument = "spam-run-1";
  net.master().broadcast_rented(trudy, token, cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Spam), net.num_bots());
  EXPECT_TRUE(net.bot(0).executed()[0].rented);
}

TEST(BotnetTest, RentedCommandOutsideWhitelistIgnored) {
  Botnet net(small_params());
  Rng rng(43);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 2 * kHour, {CommandType::Spam});
  Command cmd;
  cmd.type = CommandType::Ddos;  // not whitelisted
  net.master().broadcast_rented(trudy, token, cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Ddos), 0u);
}

TEST(BotnetTest, ExpiredRentalIgnored) {
  Botnet net(small_params());
  Rng rng(44);
  const crypto::RsaKeyPair trudy = crypto::rsa_generate(rng, 2048);
  const RentalToken token = net.master().rent(
      trudy.pub, net.simulator().now() + 10 * kMinute,
      {CommandType::Spam});
  net.run_for(20 * kMinute);  // let the contract lapse
  Command cmd;
  cmd.type = CommandType::Spam;
  net.master().broadcast_rented(trudy, token, cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Spam), 0u);
}

TEST(BotnetTest, RelayedTrafficLooksUniform) {
  Botnet net(small_params());
  Command cmd;
  cmd.type = CommandType::Ping;
  net.master().broadcast(cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_GT(net.tor().mean_relayed_cell_entropy(), 7.5)
      << "no Tor relay may observe structured bytes";
}

TEST(BotnetTest, KbRegistrationHybridEncryptionPath) {
  // The paper's {K_B}_{PK_CC}: bots encrypt their link key to the C&C.
  Botnet net(small_params());
  Rng rng(45);
  Bytes kb(32);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes boxed = crypto::rsa_hybrid_encrypt(
      net.master().public_key(), kb, rng);
  EXPECT_NE(boxed, kb);
  // Only the master (private key holder) can recover it — validated in
  // simrsa_test; here we confirm the public-key path is usable with the
  // real master key object.
  EXPECT_GE(boxed.size(), kb.size() + 8);
}


}  // namespace
}  // namespace onion::core
