// Scale smoke for the detection replay pipeline (ctest label "scale"):
// the pinned 10k-bot campaign records through the event tap, replays
// into a multi-family defender capture, and sweeps every detector
// threshold grid — end to end, deterministically, inside a generous
// wall-clock budget. Catches accidental O(bots x events) blowups in the
// trace/replay path that the 200-bot tier cannot see.
#include <gtest/gtest.h>

#include <chrono>

#include "detection/replay.hpp"
#include "detection/roc.hpp"
#include "scenario/engine.hpp"

namespace onion::detection {
namespace {

using scenario::CampaignEngine;
using scenario::CampaignTrace;
using scenario::FanoutSink;
using scenario::HashSink;
using scenario::ScenarioSpec;

// The pinned 10k campaign (same shape as tests/scale_test.cpp and
// bench/bench_report.cpp): 5% churn plus a mid-campaign takedown wave.
ScenarioSpec scale_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  scenario::AttackPhase takedown;
  takedown.kind = scenario::AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

ReplayConfig scale_replay_config() {
  ReplayConfig rc;
  rc.seed = 0x5ca1e;
  rc.benign_web = 500;
  rc.benign_tor = 100;
  rc.centralized_bots = 50;
  rc.dga_bots = 50;
  rc.fastflux_bots = 50;
  rc.p2p_bots = 50;
  rc.onion_mean_gap = kMinute;  // heartbeat cadence at campaign scale
  return rc;
}

TEST(ScaleReplay, TenThousandBotCampaignSweepsDeterministically) {
  const auto wall_start = std::chrono::steady_clock::now();

  CampaignTrace campaign;
  HashSink hash;
  FanoutSink fanout({&campaign, &hash});
  CampaignEngine(scale_spec(0xbeef), fanout, &campaign).run();
  ASSERT_GT(campaign.events().size(), 1000u);

  const ReplayResult replay =
      replay_trace(campaign, scale_replay_config());
  // Every campaign bot (initial + joiners) is a monitored, infected host.
  EXPECT_GT(replay.onion_bots.size(), 10'000u);
  EXPECT_GT(replay.trace.flows.size(), 100'000u);

  const RocReport roc = RocSweep().run(replay.trace);
  ASSERT_EQ(roc.points.size(), RocSweep().cell_count());

  // A second end-to-end pass reproduces both fingerprints byte-for-byte.
  CampaignTrace again;
  HashSink hash2;
  FanoutSink fanout2({&again, &hash2});
  CampaignEngine(scale_spec(0xbeef), fanout2, &again).run();
  EXPECT_EQ(hash.hex_digest(), hash2.hex_digest());
  EXPECT_EQ(campaign.fingerprint(), again.fingerprint());
  const ReplayResult replay2 = replay_trace(again, scale_replay_config());
  EXPECT_EQ(fingerprint(replay.trace), fingerprint(replay2.trace));
  EXPECT_EQ(RocSweep().run(replay2.trace).fingerprint, roc.fingerprint);

  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
#ifdef NDEBUG
  // Generous budget (measured a few seconds in Release); sanitized
  // Debug builds lean on the ctest timeout instead.
  EXPECT_LT(wall_seconds, 240.0);
#else
  (void)wall_seconds;
#endif
}

}  // namespace
}  // namespace onion::detection
