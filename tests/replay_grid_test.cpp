// Replay-grid tests: the streaming FlowScorer's verdicts are *equal* —
// set equality, not approximation — to the batch flow-beacon and
// tor-flagger detectors fed the same capture; the streamed replay is
// deterministic and O(window)-shaped (population tables match the batch
// replay's exactly); the grid fingerprint is thread-count invariant;
// and the family-resolved RocSweep keeps the legacy aggregate encoding
// byte-identical while adding correct per-population columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "detection/flow_detector.hpp"
#include "detection/replay.hpp"
#include "detection/replay_grid.hpp"
#include "detection/roc.hpp"
#include "detection/telemetry.hpp"
#include "detection/tor_flagger.hpp"
#include "scenario/engine.hpp"

namespace onion::detection {
namespace {

using scenario::CampaignEngine;
using scenario::CampaignTrace;
using scenario::ScenarioSpec;

ScenarioSpec busy_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 150;
  spec.degree = 6;
  spec.horizon = 2 * kHour;
  spec.churn.joins_per_hour = 40.0;
  spec.churn.leaves_per_hour = 40.0;
  scenario::AttackPhase takedown;
  takedown.kind = scenario::AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = kHour;
  takedown.takedowns_per_hour = 40.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 10 * kMinute;
  return spec;
}

CampaignTrace record(const ScenarioSpec& spec) {
  CampaignTrace campaign;
  CampaignEngine(spec, campaign, &campaign).run();
  return campaign;
}

ReplayConfig small_replay(std::uint64_t seed) {
  ReplayConfig rc;
  rc.seed = seed;
  rc.benign_web = 60;
  rc.benign_tor = 15;
  rc.centralized_bots = 10;
  rc.dga_bots = 10;
  rc.fastflux_bots = 10;
  rc.p2p_bots = 12;
  rc.onion_mean_gap = kMinute;
  return rc;
}

// ====================================================================
// FlowScorer == batch detectors
// ====================================================================

TEST(FlowScorer, MatchesBatchDetectorsOnTheSameCapture) {
  const CampaignTrace campaign = record(busy_spec(51));
  const ReplayResult replay = replay_trace(campaign, small_replay(0x5ca1e));

  FlowScorerConfig config;
  for (const double size_cv : {0.1, 0.25, 0.5, 0.75})
    for (const double gap_cv : {0.2, 0.45, 0.7, 1.0}) {
      FlowDetectorConfig c;
      c.size_cv_threshold = size_cv;
      c.gap_cv_threshold = gap_cv;
      config.beacon_thresholds.push_back(c);
    }
  config.tor_min_flows = {1, 3, 10, 30};

  FlowScorer scorer(config);
  feed_trace(replay.trace, scorer);
  scorer.finish();
  EXPECT_EQ(scorer.flows_scored(), replay.trace.flows.size());

  // Exact set equality against every batch operating point: same
  // arithmetic (shared coefficient_of_variation), same verdicts.
  ASSERT_EQ(scorer.beacon_flagged().size(), config.beacon_thresholds.size());
  for (std::size_t i = 0; i < config.beacon_thresholds.size(); ++i) {
    DetectionResult batch =
        detect_beacons(replay.trace, config.beacon_thresholds[i]);
    std::sort(batch.flagged.begin(), batch.flagged.end());
    EXPECT_EQ(scorer.beacon_flagged()[i], batch.flagged)
        << "beacon threshold " << i << " diverged";
  }
  ASSERT_EQ(scorer.tor_flagged().size(), config.tor_min_flows.size());
  for (std::size_t i = 0; i < config.tor_min_flows.size(); ++i) {
    DetectionResult batch =
        detect_tor_users(replay.trace, config.tor_min_flows[i]);
    std::sort(batch.flagged.begin(), batch.flagged.end());
    EXPECT_EQ(scorer.tor_flagged()[i], batch.flagged)
        << "tor threshold " << i << " diverged";
  }
}

// ====================================================================
// Streamed replay
// ====================================================================

/// A sink that checks the grouped-delivery contract and counts flows.
class GroupingCheckSink final : public FlowSink {
 public:
  void on_relays(const std::vector<HostId>& relays) override {
    relays_seen_ = relays.size();
  }
  void on_flow(const FlowRecord& f) override {
    if (current_ != kNone && f.src != current_) {
      EXPECT_EQ(done_.count(f.src), 0u)
          << "host " << f.src << " reopened after on_host_done";
    }
    current_ = f.src;
    ++flows_;
  }
  void on_host_done(HostId host) override {
    done_.insert(host);
    current_ = kNone;
  }

  std::uint64_t flows() const { return flows_; }
  std::size_t relays_seen() const { return relays_seen_; }

 private:
  static constexpr HostId kNone = ~HostId{0};
  HostId current_ = kNone;
  std::set<HostId> done_;
  std::uint64_t flows_ = 0;
  std::size_t relays_seen_ = 0;
};

TEST(StreamingReplay, PopulationsMatchTheBatchReplay) {
  const CampaignTrace campaign = record(busy_spec(52));
  const ReplayConfig rc = small_replay(0x5ca1e);
  const ReplayResult batch = replay_trace(campaign, rc);

  GroupingCheckSink sink;
  const StreamPopulations pops =
      replay_trace_streaming(campaign, rc, sink);

  // Same population layout and host-id assignment as the batch path.
  EXPECT_EQ(pops.infected, batch.trace.infected);
  EXPECT_EQ(pops.monitored, batch.trace.hosts);
  EXPECT_EQ(pops.known_tor_relays, batch.trace.known_tor_relays);
  EXPECT_EQ(sink.relays_seen(), batch.trace.known_tor_relays.size());
  EXPECT_EQ(pops.flows, sink.flows());
  EXPECT_GT(pops.flows, 0u);

  // The named family populations tile the infected set.
  const GroundTruth batch_truth = replay_ground_truth(batch);
  ASSERT_EQ(pops.truth.populations.size(),
            batch_truth.populations.size());
  for (std::size_t i = 0; i < batch_truth.populations.size(); ++i) {
    EXPECT_EQ(pops.truth.populations[i].name,
              batch_truth.populations[i].name);
    EXPECT_EQ(pops.truth.populations[i].hosts,
              batch_truth.populations[i].hosts);
  }
}

TEST(StreamingReplay, IsDeterministicPerSeedAndSeedSensitive) {
  const CampaignTrace campaign = record(busy_spec(53));

  FlowScorerConfig config;
  FlowDetectorConfig c;
  config.beacon_thresholds.push_back(c);
  config.tor_min_flows = {3};

  const auto run = [&](std::uint64_t seed) {
    FlowScorer scorer(config);
    const StreamPopulations pops =
        replay_trace_streaming(campaign, small_replay(seed), scorer);
    scorer.finish();
    return std::pair<std::uint64_t, std::vector<HostId>>(
        pops.flows, scorer.tor_flagged()[0]);
  };

  const auto a = run(7), b = run(7), c2 = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c2);
}

// ====================================================================
// The grid
// ====================================================================

ReplayGridConfig small_grid() {
  ReplayGridConfig config;
  config.replay_seeds = {1, 2};
  config.replay = small_replay(0);  // per-cell seed overrides this
  config.flow_size_cv = {0.25, 0.5};
  config.flow_gap_cv = {0.45, 1.0};
  config.tor_min_flows = {1, 10};
  return config;
}

TEST(ReplayGrid, FingerprintIsThreadCountInvariant) {
  const CampaignTrace campaign = record(busy_spec(54));

  ReplayGridConfig config = small_grid();
  config.threads = 1;
  const ReplayGridReport serial = ReplayGrid(config).run(campaign);
  config.threads = 4;
  const ReplayGridReport wide = ReplayGrid(config).run(campaign);

  EXPECT_EQ(serial.points.size(),
            config.replay_seeds.size() * ReplayGrid(config).points_per_cell());
  EXPECT_EQ(serial.fingerprint, wide.fingerprint);
  EXPECT_GE(wide.threads_used, serial.threads_used);
}

TEST(ReplayGrid, PointsScoreAgainstTheFamilyGroundTruth) {
  const CampaignTrace campaign = record(busy_spec(55));
  const ReplayGridReport report =
      ReplayGrid(small_grid()).run(campaign);

  for (const ReplayGridPoint& p : report.points) {
    EXPECT_TRUE(p.detector == "flow-beacon" || p.detector == "tor-flagger");
    EXPECT_GT(p.flows, 0u);
    // Counts are internally consistent: flagged covers TP+FP (flagged
    // hosts outside the monitored set cannot exist by construction),
    // rates are in range, and family counts never exceed populations.
    EXPECT_EQ(p.true_positives + p.false_positives, p.flagged);
    EXPECT_GE(p.tpr, 0.0);
    EXPECT_LE(p.tpr, 1.0);
    EXPECT_GE(p.fpr, 0.0);
    EXPECT_LE(p.fpr, 1.0);
    ASSERT_FALSE(p.families.empty());
    std::size_t family_flagged = 0;
    for (const RocFamilyCount& f : p.families) {
      EXPECT_LE(f.flagged, f.population);
      family_flagged += f.flagged;
    }
    EXPECT_EQ(family_flagged, p.flagged);
  }

  // Grid order: campaign-major, seed, then detector axes.
  ASSERT_FALSE(report.points.empty());
  EXPECT_EQ(report.points.front().replay_seed, 1u);
  EXPECT_EQ(report.points.back().replay_seed, 2u);
}

// ====================================================================
// Family-resolved RocSweep
// ====================================================================

TEST(RocSweep, FamilyResolutionKeepsTheAggregateEncodingByteIdentical) {
  const CampaignTrace campaign = record(busy_spec(56));
  const ReplayResult replay = replay_trace(campaign, small_replay(0x5ca1e));
  const GroundTruth truth = replay_ground_truth(replay);
  ASSERT_FALSE(truth.populations.empty());

  const RocSweep sweep;
  const RocReport aggregate = sweep.run(replay.trace);
  const RocReport resolved = sweep.run(replay.trace, truth);
  ASSERT_EQ(aggregate.points.size(), resolved.points.size());

  for (std::size_t i = 0; i < aggregate.points.size(); ++i) {
    const RocPoint& a = aggregate.points[i];
    const RocPoint& r = resolved.points[i];
    // The legacy aggregate view is untouched: a family-resolved point
    // with its families stripped serializes to the exact legacy bytes.
    EXPECT_TRUE(a.families.empty());
    ASSERT_EQ(r.families.size(), truth.populations.size());
    RocPoint stripped = r;
    stripped.families.clear();
    EXPECT_EQ(serialize(stripped), serialize(a));
    // And the family columns are the verdict restricted per population:
    // the infected families' flagged counts sum to the true positives.
    std::size_t infected_flagged = 0;
    for (const RocFamilyCount& f : r.families) {
      EXPECT_LE(f.flagged, f.population);
      if (f.family != "benign_web" && f.family != "benign_tor")
        infected_flagged += f.flagged;
    }
    EXPECT_EQ(infected_flagged, a.true_positives);
  }
  // Same verdicts → same aggregate rates; the fingerprints differ only
  // because the resolved points carry the family block.
  EXPECT_NE(aggregate.fingerprint, resolved.fingerprint);
}

TEST(GroundTruthOrder, PopulationsArriveInTheFixedFamilyOrder) {
  const CampaignTrace campaign = record(busy_spec(57));
  const ReplayResult replay = replay_trace(campaign, small_replay(1));
  const GroundTruth truth = replay_ground_truth(replay);

  const std::vector<std::string> expected = {
      "onion",    "centralized", "dga", "fastflux",
      "p2p",      "benign_web",  "benign_tor"};
  ASSERT_EQ(truth.populations.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(truth.populations[i].name, expected[i]);
    EXPECT_FALSE(truth.populations[i].hosts.empty());
    EXPECT_TRUE(std::is_sorted(truth.populations[i].hosts.begin(),
                               truth.populations[i].hosts.end()));
  }
}

}  // namespace
}  // namespace onion::detection
