// Deterministic fuzzing of every parser that ever touches bytes from
// the network. A bot must survive arbitrary hostile input: the only
// acceptable outcomes are a parsed value or WireError — never a crash,
// never an out-of-range read (ASan-observable), and never acceptance of
// a tampered signed command.
#include <gtest/gtest.h>

#include "core/botnet.hpp"
#include "core/messages.hpp"
#include "core/rental.hpp"
#include "core/wire.hpp"
#include "crypto/elligator_sim.hpp"

namespace onion::core {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.uniform(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

template <typename Parser>
void fuzz_parser(Parser parse, std::uint64_t seed, int iterations = 4000) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    const Bytes input = random_bytes(rng, 300);
    try {
      (void)parse(input);
    } catch (const WireError&) {
      // The documented failure mode.
    }
  }
}

TEST(WireFuzz, PeekKindNeverCrashes) {
  fuzz_parser([](BytesView b) { return peek_kind(b); }, 1);
}

TEST(WireFuzz, PeerRequestNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_peer_request(b); }, 2);
}

TEST(WireFuzz, PeerReplyNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_peer_reply(b); }, 3);
}

TEST(WireFuzz, PeerDropNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_peer_drop(b); }, 4);
}

TEST(WireFuzz, NoNShareNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_non_share(b); }, 5);
}

TEST(WireFuzz, AddressChangeNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_address_change(b); }, 6);
}

TEST(WireFuzz, BroadcastNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_broadcast(b); }, 7);
}

TEST(WireFuzz, DirectCommandNeverCrashes) {
  fuzz_parser([](BytesView b) { return parse_direct_command(b); }, 8);
}

TEST(WireFuzz, SignedCommandNeverCrashes) {
  fuzz_parser([](BytesView b) { return SignedCommand::parse(b); }, 9);
}

TEST(WireFuzz, RentalTokenNeverCrashes) {
  fuzz_parser(
      [](BytesView b) {
        Reader r(b);
        return RentalToken::parse(r);
      },
      10);
}

TEST(WireFuzz, UniformDecodeNeverCrashes) {
  Rng rng(11);
  const Bytes key = to_bytes("fuzz-key");
  for (int i = 0; i < 2000; ++i) {
    const Bytes input = random_bytes(rng, 600);
    (void)crypto::uniform_decode(key, input);  // nullopt or value, no throw
  }
}

// --- structure-aware fuzzing: valid wire, then mutate -----------------

TEST(MutationFuzz, TamperedSignedCommandNeverVerifies) {
  Rng rng(12);
  const crypto::RsaKeyPair master = crypto::rsa_generate(rng, 2048);
  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "victim.example";
  cmd.issued_at = 5000;
  cmd.nonce = 42;
  const SignedCommand signed_cmd = sign_command(master, cmd);
  const Bytes wire = signed_cmd.serialize();

  int parsed_ok = 0;
  for (int i = 0; i < 2000; ++i) {
    Bytes bad = wire;
    const std::size_t pos = static_cast<std::size_t>(rng.uniform(bad.size()));
    const auto flip = static_cast<std::uint8_t>(1 + rng.uniform(255));
    bad[pos] ^= flip;
    try {
      const SignedCommand reparsed = SignedCommand::parse(bad);
      ++parsed_ok;
      // Parsing may succeed; verification must not, unless the flipped
      // byte was outside every verified field — impossible here because
      // the whole wire is command+signature.
      if (reparsed.verify(master.pub, 6000, kHour)) {
        // The only acceptable case: mutation round-tripped to the exact
        // original bytes (cannot happen with a nonzero flip) — so fail.
        ADD_FAILURE() << "tampered command verified (pos " << pos << ")";
      }
    } catch (const WireError&) {
    }
  }
  EXPECT_GT(parsed_ok, 0) << "sanity: some mutations still parse";
}

TEST(MutationFuzz, TruncatedWireAlwaysThrowsOrFails) {
  Rng rng(13);
  const crypto::RsaKeyPair master = crypto::rsa_generate(rng, 2048);
  Command cmd;
  cmd.type = CommandType::Spam;
  cmd.argument = "arg";
  const SignedCommand signed_cmd = sign_command(master, cmd);
  const Bytes wire = signed_cmd.serialize();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes prefix(wire.begin(),
                       wire.begin() + static_cast<std::ptrdiff_t>(len));
    try {
      const SignedCommand reparsed = SignedCommand::parse(prefix);
      EXPECT_FALSE(reparsed.verify(master.pub, 1000, kHour))
          << "truncation to " << len << " bytes verified";
    } catch (const WireError&) {
    }
  }
}

TEST(MutationFuzz, BotSurvivesArbitraryRequestBytes) {
  // End to end: a hostile client sprays garbage at a live bot's hidden
  // service; the bot must answer blandly (or not) and keep operating.
  Botnet::Params params;
  params.num_bots = 8;
  params.initial_degree = 3;
  params.seed = 99;
  params.tor.num_relays = 16;
  Botnet net(params);
  const tor::EndpointId attacker = net.tor().create_endpoint();
  Rng rng(14);
  for (int i = 0; i < 60; ++i) {
    net.tor().connect_and_send(attacker, net.bot(i % 8).address(),
                               random_bytes(rng, 200),
                               [](const tor::ConnectResult&) {});
  }
  net.run_for(10 * kMinute);
  // Every bot still alive and still responsive to a legitimate command.
  Command cmd;
  cmd.type = CommandType::Ping;
  net.master().broadcast(cmd, 2);
  net.run_for(10 * kMinute);
  EXPECT_EQ(net.count_executed(CommandType::Ping), net.num_bots());
}

// --- determinism -------------------------------------------------------

TEST(Determinism, IdenticalSeedsYieldIdenticalRuns) {
  auto run_once = [] {
    Botnet::Params params;
    params.num_bots = 12;
    params.initial_degree = 4;
    params.seed = 0x5eed;
    params.tor.num_relays = 16;
    Botnet net(params);
    Command cmd;
    cmd.type = CommandType::Compute;
    net.master().broadcast(cmd, 2);
    net.kill_bot(3);
    net.run_for(30 * kMinute);
    // Fingerprint the end state: executed counts, degrees, addresses.
    std::string fingerprint;
    for (std::size_t i = 0; i < net.num_bots(); ++i) {
      fingerprint += net.bot(i).address().hostname();
      fingerprint += ':';
      fingerprint += std::to_string(net.bot(i).executed().size());
      fingerprint += ':';
      fingerprint += std::to_string(net.bot(i).degree());
      fingerprint += ';';
    }
    fingerprint += std::to_string(net.tor().stats().cells_forwarded);
    return fingerprint;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace onion::core
