// Unit tests for the common substrate: byte codecs, deterministic RNG,
// contract macros, clock helpers, ByteReader, atomic file I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/fileio.hpp"
#include "common/order_stat.hpp"
#include "common/rng.hpp"

namespace onion {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, Base32KnownVectors) {
  // RFC 4648 vectors, lowercased and unpadded (Tor style).
  EXPECT_EQ(base32_encode(to_bytes("")), "");
  EXPECT_EQ(base32_encode(to_bytes("f")), "my");
  EXPECT_EQ(base32_encode(to_bytes("fo")), "mzxq");
  EXPECT_EQ(base32_encode(to_bytes("foo")), "mzxw6");
  EXPECT_EQ(base32_encode(to_bytes("foob")), "mzxw6yq");
  EXPECT_EQ(base32_encode(to_bytes("fooba")), "mzxw6ytb");
  EXPECT_EQ(base32_encode(to_bytes("foobar")), "mzxw6ytboi");
}

TEST(Bytes, Base32RoundTripAllLengths) {
  Rng rng(7);
  for (std::size_t len = 0; len <= 64; ++len) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    const std::string encoded = base32_encode(data);
    const Bytes decoded = base32_decode(encoded);
    // Decoding drops sub-byte padding bits; the prefix must match.
    ASSERT_GE(decoded.size(), data.size());
    EXPECT_TRUE(std::equal(data.begin(), data.end(), decoded.begin()));
  }
}

TEST(Bytes, Base32TenByteIdentifierIsExact) {
  // .onion identifiers are exactly 10 bytes = 16 base32 chars, no pad.
  const Bytes id = from_hex("0123456789abcdef0011");
  const std::string s = base32_encode(id);
  EXPECT_EQ(s.size(), 16u);
  EXPECT_EQ(base32_decode(s), id);
}

TEST(Bytes, Base32RejectsBadCharacters) {
  EXPECT_THROW(base32_decode("01"), std::invalid_argument);  // 0,1 invalid
  EXPECT_THROW(base32_decode("a!"), std::invalid_argument);
}

TEST(Bytes, ConcatAndAppend) {
  const Bytes a = {1, 2}, b = {3}, c = {4, 5};
  EXPECT_EQ(concat(a, b), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat(a, b, c), (Bytes{1, 2, 3, 4, 5}));
  Bytes d = a;
  append(d, b);
  EXPECT_EQ(d, (Bytes{1, 2, 3}));
}

TEST(Bytes, Be64RoundTrip) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 0xffULL, 0x0123456789abcdefULL, ~0ULL}) {
    EXPECT_EQ(read_be64(be64(v)), v);
  }
  EXPECT_EQ(be64(0x0102030405060708ULL),
            (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Bytes, XorBytes) {
  EXPECT_EQ(xor_bytes(Bytes{0xff, 0x00}, Bytes{0x0f, 0xf0}),
            (Bytes{0xf0, 0xf0}));
  EXPECT_THROW(xor_bytes(Bytes{1}, Bytes{1, 2}), std::invalid_argument);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(7), 7u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformInInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_in(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInFullRangeDrawsRawBits) {
  // Edge case: uniform_in(0, UINT64_MAX) has span + 1 == 0, so the usual
  // `lo + uniform(span + 1)` path would hit uniform's bound > 0 contract.
  // The implementation must fall back to raw 64-bit draws — and those draws
  // must still cover the whole range, not a truncated one.
  Rng rng(7);
  bool saw_top_half = false, saw_bottom_half = false;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t v = rng.uniform_in(0, UINT64_MAX);
    saw_top_half |= v >= (1ULL << 63);
    saw_bottom_half |= v < (1ULL << 63);
  }
  EXPECT_TRUE(saw_top_half);
  EXPECT_TRUE(saw_bottom_half);
}

TEST(Rng, UniformInDegenerateRangeIsConstant) {
  Rng rng(8);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.uniform_in(42, 42), 42u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(rng.uniform_in(UINT64_MAX, UINT64_MAX), UINT64_MAX);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(8);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, SampleDistinctElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto s = rng.sample(v, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<int> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 4u);
  for (int x : s) EXPECT_TRUE(std::count(v.begin(), v.end(), x) == 1);
}

TEST(Rng, SampleWholeVector) {
  Rng rng(10);
  std::vector<int> v{1, 2, 3};
  auto s = rng.sample(v, 3);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, v);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Rng, PickReturnsElement) {
  Rng rng(12);
  const std::vector<int> v{5, 6, 7};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x >= 5 && x <= 7);
  }
}

TEST(Rng, SplitYieldsIndependentStream) {
  Rng a(13);
  Rng child = a.split();
  // The child stream should not replay the parent's outputs.
  Rng b(13);
  b.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Check, ExpectsThrowsContractViolation) {
  EXPECT_THROW(ONION_EXPECTS(false), ContractViolation);
  EXPECT_NO_THROW(ONION_EXPECTS(true));
}

TEST(Check, MessageNamesExpression) {
  try {
    ONION_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, FormattedMessageCarriesTheIds) {
  const int u = 17;
  const int v = 42;
  try {
    ONION_EXPECTS_MSG(u == v, "u=" << u << " v=" << v);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("u == v"), std::string::npos);
    EXPECT_NE(what.find("u=17 v=42"), std::string::npos);
  }
}

TEST(Check, FormattedStreamNotEvaluatedOnSuccess) {
  int evaluations = 0;
  const auto count = [&evaluations] { return ++evaluations; };
  ONION_EXPECTS_MSG(true, "count=" << count());
  ONION_ENSURES_MSG(true, "count=" << count());
  EXPECT_EQ(evaluations, 0);
}

TEST(Check, EnsuresMsgThrowsPostcondition) {
  try {
    ONION_ENSURES_MSG(false, "bucket " << 3);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("postcondition"), std::string::npos);
    EXPECT_NE(what.find("bucket 3"), std::string::npos);
  }
}

TEST(Clock, Conversions) {
  EXPECT_EQ(kSecond, 1000u);
  EXPECT_EQ(kHour, 3'600'000u);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(to_seconds(2 * kHour), 7200u);
}

TEST(OrderStat, SetClearCountSelect) {
  OrderStatSet set(10);
  EXPECT_EQ(set.count(), 0u);
  set.set(3);
  set.set(7);
  set.set(1);
  EXPECT_EQ(set.count(), 3u);
  EXPECT_TRUE(set.test(3));
  EXPECT_FALSE(set.test(0));
  EXPECT_EQ(set.select(0), 1u);
  EXPECT_EQ(set.select(1), 3u);
  EXPECT_EQ(set.select(2), 7u);
  set.clear(3);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.select(1), 7u);
  set.set(7);  // idempotent re-set
  EXPECT_EQ(set.count(), 2u);
  set.clear(0);  // idempotent clear of an absent slot
  EXPECT_EQ(set.count(), 2u);
  EXPECT_THROW(set.select(2), ContractViolation);
}

TEST(OrderStat, RankMatchesPrefixCounts) {
  OrderStatSet set(16);
  for (const std::size_t i : {2u, 3u, 5u, 7u, 11u, 13u}) set.set(i);
  EXPECT_EQ(set.rank(0), 0u);
  EXPECT_EQ(set.rank(3), 1u);   // {2}
  EXPECT_EQ(set.rank(8), 4u);   // {2,3,5,7}
  EXPECT_EQ(set.rank(16), 6u);
  EXPECT_EQ(set.rank(99), 6u);  // clamped past capacity
}

TEST(OrderStat, GrowthMidLifeKeepsPrefixSumsCorrect) {
  // ensure_size on a warmed tree must seed new Fenwick nodes from the
  // existing prefix sums (their spans reach back into old indices).
  OrderStatSet set(5);
  for (std::size_t i = 0; i < 5; ++i) set.set(i);
  set.ensure_size(13);
  EXPECT_EQ(set.count(), 5u);
  set.set(12);
  EXPECT_EQ(set.select(4), 4u);
  EXPECT_EQ(set.select(5), 12u);
  EXPECT_EQ(set.rank(13), 6u);
}

TEST(OrderStat, MatchesSortedVectorUnderRandomChurn) {
  Rng rng(4242);
  OrderStatSet set(0);
  std::set<std::size_t> reference;
  for (int op = 0; op < 2000; ++op) {
    set.ensure_size((static_cast<std::size_t>(op) / 10 + 1) * 7);
    const std::size_t i = rng.uniform(set.capacity());
    if (rng.uniform(2) == 0) {
      set.set(i);
      reference.insert(i);
    } else {
      set.clear(i);
      reference.erase(i);
    }
    ASSERT_EQ(set.count(), reference.size());
    if (!reference.empty()) {
      const std::size_t k = rng.uniform(reference.size());
      ASSERT_EQ(set.select(k), *std::next(reference.begin(),
                                          static_cast<std::ptrdiff_t>(k)));
    }
  }
}

TEST(ByteReader, RoundTripsThePutHelpers) {
  Bytes buf;
  put_u64(buf, 0xdeadbeefcafef00dull);
  put_f64(buf, -2.5);
  put_string(buf, "onion");
  put_string(buf, "");
  ByteReader r(buf);
  EXPECT_EQ(r.u64(), 0xdeadbeefcafef00dull);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "onion");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, RawViewsWithoutCopying) {
  const Bytes buf = {1, 2, 3, 4, 5};
  ByteReader r(buf);
  const BytesView head = r.raw(2);
  EXPECT_EQ(head.data(), buf.data());
  EXPECT_EQ(head.size(), 2u);
  EXPECT_EQ(r.remaining(), 3u);
}

TEST(ByteReader, EveryTruncatedReadThrows) {
  const Bytes seven(7, 0xab);
  ByteReader u(seven);
  EXPECT_THROW(u.u64(), std::out_of_range);
  ByteReader f(seven);
  EXPECT_THROW(f.f64(), std::out_of_range);
  ByteReader v(seven);
  EXPECT_THROW(v.raw(8), std::out_of_range);
  // A string whose length prefix promises more bytes than remain.
  Bytes lying;
  put_u64(lying, 100);
  ByteReader s(lying);
  EXPECT_THROW(s.str(), std::out_of_range);
}

TEST(FileIo, AtomicWriteThenReadRoundTrips) {
  const std::string path =
      ::testing::TempDir() + "fileio_roundtrip.bin";
  const Bytes data = {0x00, 0xff, 0x10, 0x20};
  write_file_atomic(path, data);
  EXPECT_EQ(read_file_bytes(path), data);
  // Overwrite goes through the same temp+rename publication.
  const Bytes replacement = {0x01};
  write_file_atomic(path, replacement);
  EXPECT_EQ(read_file_bytes(path), replacement);
}

TEST(FileIo, EmptyFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "fileio_empty.bin";
  write_file_atomic(path, Bytes{});
  EXPECT_TRUE(read_file_bytes(path).empty());
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(
      read_file_bytes(::testing::TempDir() + "fileio_nonexistent.bin"),
      std::runtime_error);
}

TEST(FileIo, UnwritableDirectoryThrows) {
  EXPECT_THROW(write_file_atomic("/nonexistent-dir/out.bin", Bytes{1}),
               std::runtime_error);
}

}  // namespace
}  // namespace onion
