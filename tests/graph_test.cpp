// Graph substrate tests: structure operations, generators (parameterized
// over the paper's sizes/degrees), metrics validated on graphs with known
// closed-form values, and estimator-vs-exact property sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/metrics.hpp"
#include "graph/union_find.hpp"

namespace onion::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

TEST(Graph, StartsIsolated) {
  Graph g(5);
  EXPECT_EQ(g.num_alive(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(g.degree(u), 0u);
}

TEST(Graph, AddEdgeBasics) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.add_edge(0, 1)) << "duplicate rejected";
  EXPECT_FALSE(g.add_edge(1, 0)) << "reverse duplicate rejected";
  EXPECT_FALSE(g.add_edge(2, 2)) << "self loop rejected";
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.remove_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.remove_edge(0, 1)) << "absent edge";
}

TEST(Graph, RemoveNodeDetachesEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.remove_node(0);
  EXPECT_FALSE(g.alive(0));
  EXPECT_EQ(g.num_alive(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 1u);
}

TEST(Graph, DeadNodeOperationsRejected) {
  Graph g(2);
  g.remove_node(0);
  EXPECT_THROW(g.degree(0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 1), ContractViolation);
  EXPECT_THROW(g.remove_node(0), ContractViolation);
}

TEST(Graph, AddNodeExtends) {
  Graph g(2);
  const NodeId u = g.add_node();
  EXPECT_EQ(u, 2u);
  EXPECT_TRUE(g.alive(u));
  EXPECT_TRUE(g.add_edge(u, 0));
  EXPECT_EQ(g.capacity(), 3u);
}

TEST(Graph, AliveNodesAndAverageDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.remove_node(3);
  EXPECT_EQ(g.alive_nodes(), (std::vector<NodeId>{0, 1, 2}));
  EXPECT_NEAR(g.average_degree(), 2.0 / 3.0, 1e-12);
}

#ifndef NDEBUG
TEST(Graph, AddEdgeUncheckedRejectsDuplicateInDebug) {
  // The duplicate scan is compiled out in Release (the whole point of the
  // unchecked path); Debug and sanitizer builds catch the misuse that
  // would otherwise silently corrupt num_edges().
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge_unchecked(0, 1), ContractViolation);
  EXPECT_EQ(g.num_edges(), 1u);
}
#endif

// Event log used by the observer tests: one entry per callback.
struct RecordingObserver final : MutationObserver {
  enum Kind { kNodeAdded, kNodeRemoved, kEdgeAdded, kEdgeRemoved };
  struct Event {
    Kind kind;
    NodeId u;
    NodeId v;  // kInvalidNode for node events
  };
  std::vector<Event> events;
  std::vector<std::size_t> degree_at_removal;  // degree(u) per edge removal

  const Graph* graph = nullptr;
  void on_node_added(NodeId u) override {
    events.push_back({kNodeAdded, u, kInvalidNode});
  }
  void on_node_removed(NodeId u) override {
    events.push_back({kNodeRemoved, u, kInvalidNode});
  }
  void on_edge_added(NodeId u, NodeId v) override {
    events.push_back({kEdgeAdded, u, v});
  }
  void on_edge_removed(NodeId u, NodeId v) override {
    events.push_back({kEdgeRemoved, u, v});
    if (graph != nullptr) degree_at_removal.push_back(graph->degree(u));
  }
};

TEST(GraphObserver, SeesEveryMutationAfterItApplied) {
  Graph g(2);
  RecordingObserver obs;
  g.set_observer(&obs);
  g.add_edge(0, 1);
  const NodeId fresh = g.add_node();
  g.add_edge(1, fresh);
  g.remove_edge(0, 1);
  ASSERT_EQ(obs.events.size(), 4u);
  EXPECT_EQ(obs.events[0].kind, RecordingObserver::kEdgeAdded);
  EXPECT_EQ(obs.events[1].kind, RecordingObserver::kNodeAdded);
  EXPECT_EQ(obs.events[1].u, fresh);
  EXPECT_EQ(obs.events[2].kind, RecordingObserver::kEdgeAdded);
  EXPECT_EQ(obs.events[3].kind, RecordingObserver::kEdgeRemoved);
  g.set_observer(nullptr);
  g.add_edge(0, 1);  // detached: no further events
  EXPECT_EQ(obs.events.size(), 4u);
}

TEST(GraphObserver, RemoveNodeDecomposesIntoEdgeRemovalsThenNodeRemoval) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  RecordingObserver obs;
  obs.graph = &g;
  g.set_observer(&obs);
  g.remove_node(0);
  ASSERT_EQ(obs.events.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(obs.events[i].kind, RecordingObserver::kEdgeRemoved);
    EXPECT_EQ(obs.events[i].u, 0u);
  }
  EXPECT_EQ(obs.events[3].kind, RecordingObserver::kNodeRemoved);
  EXPECT_EQ(obs.events[3].u, 0u);
  // Each callback saw the post-removal degree: 2, then 1, then 0 — the
  // graph is consistent *during* the decomposed removal.
  EXPECT_EQ(obs.degree_at_removal, (std::vector<std::size_t>{2, 1, 0}));
}

TEST(GraphObserver, SecondObserverRejectedUntilDetach) {
  Graph g(2);
  RecordingObserver first;
  RecordingObserver second;
  g.set_observer(&first);
  EXPECT_THROW(g.set_observer(&second), ContractViolation);
  g.set_observer(nullptr);
  g.set_observer(&second);
  g.add_edge(0, 1);
  EXPECT_TRUE(first.events.empty());
  EXPECT_EQ(second.events.size(), 1u);
}

TEST(GraphObserver, CopiesDropTheObserver) {
  Graph g(2);
  RecordingObserver obs;
  g.set_observer(&obs);
  Graph copy(g);
  EXPECT_EQ(copy.observer(), nullptr);
  copy.add_edge(0, 1);  // must not notify the original's observer
  EXPECT_TRUE(obs.events.empty());
  EXPECT_EQ(g.observer(), &obs);
}

TEST(GraphObserver, ObservedGraphsRefuseToMoveOrBeAssignedOver) {
  // An attached observer references the graph instance itself, so moving
  // an observed graph (or overwriting one) would leave the observer
  // notifying against a dangling or gutted object.
  Graph g(2);
  RecordingObserver obs;
  g.set_observer(&obs);
  EXPECT_THROW(Graph moved(std::move(g)), ContractViolation);
  Graph other(3);
  EXPECT_THROW(g = std::move(other), ContractViolation);
  EXPECT_THROW(g = other, ContractViolation);
  // Detached, both directions work again.
  g.set_observer(nullptr);
  g = std::move(other);
  EXPECT_EQ(g.capacity(), 3u);
}

TEST(GraphEpoch, CountsEveryMutation) {
  Graph g(3);
  EXPECT_EQ(g.mutation_epoch(), 0u);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.mutation_epoch(), 2u);
  g.add_edge(0, 1);  // duplicate: no mutation, no tick
  EXPECT_EQ(g.mutation_epoch(), 2u);
  g.add_node();
  EXPECT_EQ(g.mutation_epoch(), 3u);
  g.remove_edge(0, 1);
  EXPECT_EQ(g.mutation_epoch(), 4u);
  g.remove_node(1);  // one remaining edge + the node itself
  EXPECT_EQ(g.mutation_epoch(), 6u);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2)) << "already same set";
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.set_size(1), 3u);
}

TEST(UnionFindTest, NumSetsCountsTheFullUniverseIncludingDeadSlots) {
  // num_sets() is universe-wide by contract: slots a caller considers
  // dead still count as singletons. Consumers over tombstoned tables
  // must subtract them (OverlayNetwork::honest_components) or count by
  // live members (scenario::sweep_structural).
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  // Pretend slots 4 and 5 are dead graph tombstones: they still count.
  EXPECT_EQ(uf.num_sets(), 4u);  // {0,1} {2,3} {4} {5}
  const std::size_t dead = 2;
  EXPECT_EQ(uf.num_sets() - dead, 2u);  // the live-component answer
}

TEST(UnionFindTest, ResetReinitializesAndReusesStorage) {
  UnionFind uf(4);
  uf.unite(0, 1);
  uf.unite(2, 3);
  EXPECT_EQ(uf.num_sets(), 2u);
  uf.reset(6);
  EXPECT_EQ(uf.size(), 6u);
  EXPECT_EQ(uf.num_sets(), 6u);
  for (std::size_t x = 0; x < 6; ++x) EXPECT_EQ(uf.set_size(x), 1u);
  EXPECT_FALSE(uf.same(0, 1));
  uf.reset(2);  // shrinking works too
  EXPECT_EQ(uf.size(), 2u);
  EXPECT_EQ(uf.num_sets(), 2u);
}

TEST(Generators, RegularGraphHasExactDegrees) {
  Rng rng(20);
  const Graph g = random_regular(100, 6, rng);
  EXPECT_EQ(g.num_edges(), 300u);
  for (NodeId u = 0; u < 100; ++u) EXPECT_EQ(g.degree(u), 6u);
}

TEST(Generators, RegularRejectsBadParameters) {
  Rng rng(21);
  EXPECT_THROW(random_regular(5, 5, rng), std::invalid_argument);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);  // odd nk
}

struct RegularParams {
  std::size_t n;
  std::size_t k;
};

class RegularSweep : public ::testing::TestWithParam<RegularParams> {};

TEST_P(RegularSweep, ValidSimpleRegularAndConnected) {
  const auto [n, k] = GetParam();
  Rng rng(22 + n + k);
  const Graph g = random_regular(n, k, rng);
  // Simple: no self loops / duplicates (Graph enforces), exact degrees.
  for (NodeId u = 0; u < n; ++u) {
    ASSERT_EQ(g.degree(u), k);
    for (const NodeId v : g.neighbors(u)) ASSERT_NE(v, u);
  }
  EXPECT_EQ(g.num_edges(), n * k / 2);
  // Random k-regular graphs with k >= 3 are connected w.h.p.
  if (k >= 3) {
    EXPECT_TRUE(is_connected(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, RegularSweep,
    ::testing::Values(RegularParams{50, 4}, RegularParams{100, 5},
                      RegularParams{200, 10}, RegularParams{100, 15},
                      RegularParams{64, 3}, RegularParams{500, 10}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Generators, ErdosRenyiDensityMatches) {
  Rng rng(23);
  const Graph g = erdos_renyi(200, 0.1, rng);
  const double possible = 200.0 * 199.0 / 2.0;
  const double density = static_cast<double>(g.num_edges()) / possible;
  EXPECT_NEAR(density, 0.1, 0.02);
}

TEST(Generators, ErdosRenyiExtremes) {
  Rng rng(24);
  EXPECT_EQ(erdos_renyi(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(10, 1.0, rng).num_edges(), 45u);
}

TEST(Metrics, BfsDistancesOnPath) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId u = 0; u < 5; ++u) EXPECT_EQ(d[u], u);
}

TEST(Metrics, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], kUnreachable);
}

TEST(Metrics, ComponentsCountsAndSizes) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(c.largest(), 3u);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[3]);
}

TEST(Metrics, ComponentsIgnoreDeadNodes) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.remove_node(2);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 2u);  // {0,1}, {3}
}

TEST(Metrics, IsConnectedEdgeCases) {
  Graph g0(0);
  EXPECT_TRUE(is_connected(g0));
  Graph g1(1);
  EXPECT_TRUE(is_connected(g1));
  Graph g2(2);
  EXPECT_FALSE(is_connected(g2));
  g2.add_edge(0, 1);
  EXPECT_TRUE(is_connected(g2));
}

TEST(Metrics, ClosenessOnCompleteGraph) {
  // Complete graph: every distance 1, closeness = 1 for every node.
  const Graph g = complete_graph(6);
  for (NodeId u = 0; u < 6; ++u)
    EXPECT_NEAR(closeness_centrality(g, u), 1.0, 1e-12);
  EXPECT_NEAR(average_closeness_exact(g), 1.0, 1e-12);
}

TEST(Metrics, ClosenessOnStarGraph) {
  // Star K_{1,4}: center closeness 1; leaf: (n-1)/sum = 4/(1+2+2+2)=4/7.
  Graph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  EXPECT_NEAR(closeness_centrality(g, 0), 1.0, 1e-12);
  EXPECT_NEAR(closeness_centrality(g, 1), 4.0 / 7.0, 1e-12);
}

TEST(Metrics, ClosenessOnPathEnd) {
  // Path of 4: end node distances 1+2+3=6 -> closeness 3/6 = 0.5.
  const Graph g = path_graph(4);
  EXPECT_NEAR(closeness_centrality(g, 0), 0.5, 1e-12);
}

TEST(Metrics, ClosenessDisconnectedUsesNetworkXCorrection) {
  // Two disjoint edges in n=4: r=1 reachable, d=1.
  // C = (r/(n-1)) * (r/dist) = (1/3)*(1/1) = 1/3.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_NEAR(closeness_centrality(g, 0), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, ClosenessSampledMatchesExactWhenSamplingAll) {
  Rng rng(25);
  const Graph g = random_regular(60, 4, rng);
  Rng sample_rng(26);
  EXPECT_NEAR(average_closeness_sampled(g, 60, sample_rng),
              average_closeness_exact(g), 1e-12);
}

TEST(Metrics, ClosenessSampledApproximatesExact) {
  Rng rng(27);
  const Graph g = random_regular(300, 6, rng);
  const double exact = average_closeness_exact(g);
  Rng sample_rng(28);
  const double approx = average_closeness_sampled(g, 100, sample_rng);
  EXPECT_NEAR(approx, exact, 0.05 * exact + 1e-9);
}

TEST(Metrics, DegreeCentrality) {
  const Graph g = complete_graph(5);
  for (NodeId u = 0; u < 5; ++u)
    EXPECT_NEAR(degree_centrality(g, u), 1.0, 1e-12);
  Graph star(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) star.add_edge(0, leaf);
  EXPECT_NEAR(degree_centrality(star, 0), 1.0, 1e-12);
  EXPECT_NEAR(degree_centrality(star, 1), 0.25, 1e-12);
  EXPECT_NEAR(average_degree_centrality(star), (1.0 + 4 * 0.25) / 5.0,
              1e-12);
}

TEST(Metrics, DiameterExactKnownGraphs) {
  EXPECT_EQ(diameter_exact(path_graph(6)), 5u);
  EXPECT_EQ(diameter_exact(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter_exact(complete_graph(7)), 1u);
}

TEST(Metrics, DiameterOfLargestComponent) {
  Graph g(7);
  // Component A: path 0-1-2-3 (diameter 3). Component B: edge 4-5.
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_EQ(diameter_exact(g), 3u);
}

class DiameterSweep
    : public ::testing::TestWithParam<RegularParams> {};

TEST_P(DiameterSweep, DoubleSweepMatchesExact) {
  const auto [n, k] = GetParam();
  Rng rng(29 + n * k);
  const Graph g = random_regular(n, k, rng);
  Rng sweep_rng(30);
  const std::size_t estimate = diameter_double_sweep(g, 8, sweep_rng);
  EXPECT_EQ(estimate, diameter_exact(g));
}

INSTANTIATE_TEST_SUITE_P(
    RandomRegular, DiameterSweep,
    ::testing::Values(RegularParams{60, 3}, RegularParams{100, 4},
                      RegularParams{150, 5}, RegularParams{200, 10}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.n) + "_k" +
             std::to_string(info.param.k);
    });

TEST(Metrics, DiameterDoubleSweepNeverExceedsExact) {
  // Double sweep is a lower bound by construction.
  Rng rng(31);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = erdos_renyi(80, 0.06, rng);
    if (g.num_alive() == 0) continue;
    Rng sweep_rng(32 + trial);
    EXPECT_LE(diameter_double_sweep(g, 4, sweep_rng), diameter_exact(g));
  }
}

}  // namespace
}  // namespace onion::graph
