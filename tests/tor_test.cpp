// Tor substrate tests: .onion address derivation, the paper's
// descriptor-ID formulas, the HSDir fingerprint ring, relay descriptor
// stores, layered cell encryption, and the full 7-step rendezvous
// protocol over the discrete-event simulator.
#include <gtest/gtest.h>

#include "crypto/sha1.hpp"
#include "mitigation/hsdir_takeover.hpp"
#include "tor/cell.hpp"
#include "tor/consensus.hpp"
#include "tor/descriptor.hpp"
#include "tor/relay.hpp"
#include "tor/tor_network.hpp"

namespace onion::tor {
namespace {

crypto::RsaKeyPair test_key(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::rsa_generate(rng, 1024);
}

TEST(OnionAddressTest, DerivesFromPublicKeyHash) {
  const auto key = test_key(1);
  const OnionAddress addr = OnionAddress::from_public_key(key.pub);
  // First 10 bytes of SHA-1(serialized pubkey) — the paper's recipe.
  const crypto::Sha1Digest digest =
      crypto::Sha1::hash(key.pub.serialize());
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(addr.identifier()[i], digest[i]);
}

TEST(OnionAddressTest, HostnameIs16CharBase32) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(2).pub);
  const std::string host = addr.hostname();
  ASSERT_EQ(host.size(), 16u + 6u);
  EXPECT_EQ(host.substr(16), ".onion");
  for (char c : host.substr(0, 16))
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '2' && c <= '7')) << c;
}

TEST(OnionAddressTest, HostnameRoundTrip) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(3).pub);
  EXPECT_EQ(OnionAddress::from_hostname(addr.hostname()), addr);
  // Also without the suffix.
  EXPECT_EQ(OnionAddress::from_hostname(addr.hostname().substr(0, 16)),
            addr);
}

TEST(OnionAddressTest, RejectsMalformedHostnames) {
  EXPECT_THROW(OnionAddress::from_hostname("tooshort.onion"),
               std::invalid_argument);
  EXPECT_THROW(OnionAddress::from_hostname("0123456789abcdef.onion"),
               std::invalid_argument);  // '0','1' not in base32
}

TEST(OnionAddressTest, DistinctKeysDistinctAddresses) {
  EXPECT_NE(OnionAddress::from_public_key(test_key(4).pub),
            OnionAddress::from_public_key(test_key(5).pub));
}

TEST(DescriptorMath, TimePeriodFormula) {
  // time-period = (t + id_byte*86400/256) / 86400.
  EXPECT_EQ(time_period(0, 0), 0u);
  EXPECT_EQ(time_period(86399, 0), 0u);
  EXPECT_EQ(time_period(86400, 0), 1u);
  // id_byte = 255 shifts the rollover by 255/256 of a day.
  EXPECT_EQ(time_period(0, 255), 0u);
  EXPECT_EQ(time_period(86400 - 86062, 255), 1u) << "shifted rollover";
}

TEST(DescriptorMath, PermanentIdByteStaggersRollover) {
  // At the same instant, different first bytes can be in different
  // periods — exactly why Tor staggers descriptor changes.
  const std::uint64_t t = 86000;
  EXPECT_EQ(time_period(t, 0), 0u);
  EXPECT_EQ(time_period(t, 255), 1u);
}

TEST(DescriptorMath, SecretIdPartMatchesFormula) {
  // secret-id-part = H(time-period(8B) || cookie || replica).
  Bytes expected_input = be64(42);
  expected_input.push_back(1);
  EXPECT_EQ(secret_id_part(42, {}, 1),
            crypto::Sha1::hash(expected_input));
}

TEST(DescriptorMath, DescriptorIdMatchesFormula) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(6).pub);
  const crypto::Sha1Digest secret = secret_id_part(7, {}, 0);
  const Bytes input =
      concat(addr.identifier_bytes(), crypto::digest_bytes(secret));
  EXPECT_EQ(descriptor_id(addr, 7, {}, 0), crypto::Sha1::hash(input));
}

TEST(DescriptorMath, TwoReplicasDiffer) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(7).pub);
  EXPECT_NE(descriptor_id(addr, 3, {}, 0), descriptor_id(addr, 3, {}, 1));
}

TEST(DescriptorMath, CookieChangesIds) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(8).pub);
  const Bytes cookie = to_bytes("descriptor-cookie-16");
  EXPECT_NE(descriptor_id(addr, 3, {}, 0),
            descriptor_id(addr, 3, cookie, 0));
}

TEST(DescriptorMath, IdsChangeAcrossPeriods) {
  const OnionAddress addr =
      OnionAddress::from_public_key(test_key(9).pub);
  EXPECT_NE(descriptor_id(addr, 3, {}, 0), descriptor_id(addr, 4, {}, 0));
}

TEST(DescriptorTest, SignAndVerify) {
  const auto key = test_key(10);
  HiddenServiceDescriptor desc;
  desc.address = OnionAddress::from_public_key(key.pub);
  desc.service_key = key.pub;
  desc.introduction_points = {1, 2, 3};
  desc.published_at = 12345;
  desc.signature = crypto::rsa_sign(key, desc.signed_body());
  EXPECT_TRUE(desc.verify());

  // Wrong key for the address: hash-of-key check fails.
  HiddenServiceDescriptor forged = desc;
  forged.service_key = test_key(11).pub;
  forged.signature = crypto::rsa_sign(test_key(11), forged.signed_body());
  EXPECT_FALSE(forged.verify());

  // Tampered intro points: signature fails.
  HiddenServiceDescriptor tampered = desc;
  tampered.introduction_points = {9};
  EXPECT_FALSE(tampered.verify());
}

Fingerprint fp_of(std::uint8_t first) {
  Fingerprint fp{};
  fp[0] = first;
  return fp;
}

TEST(ConsensusTest, ResponsibleHsdirsAreNextOnRing) {
  std::vector<Consensus::Entry> entries;
  for (std::uint8_t i = 1; i <= 6; ++i)
    entries.push_back({fp_of(static_cast<std::uint8_t>(i * 0x20)),
                       static_cast<RelayId>(i), true});
  const Consensus consensus(entries, 0);

  DescriptorId id{};
  id[0] = 0x50;  // between 0x40 (relay 2) and 0x60 (relay 3)
  const auto responsible = consensus.responsible_hsdirs(id);
  ASSERT_EQ(responsible.size(), 3u);
  EXPECT_EQ(responsible[0], 3u);
  EXPECT_EQ(responsible[1], 4u);
  EXPECT_EQ(responsible[2], 5u);
}

TEST(ConsensusTest, RingWrapsAround) {
  std::vector<Consensus::Entry> entries;
  for (std::uint8_t i = 1; i <= 4; ++i)
    entries.push_back({fp_of(static_cast<std::uint8_t>(i * 0x20)),
                       static_cast<RelayId>(i), true});
  const Consensus consensus(entries, 0);
  DescriptorId id{};
  id[0] = 0xf0;  // after the last fingerprint: wrap to the start
  const auto responsible = consensus.responsible_hsdirs(id);
  ASSERT_EQ(responsible.size(), 3u);
  EXPECT_EQ(responsible[0], 1u);
  EXPECT_EQ(responsible[1], 2u);
  EXPECT_EQ(responsible[2], 3u);
}

TEST(ConsensusTest, NonHsdirRelaysExcluded) {
  std::vector<Consensus::Entry> entries;
  entries.push_back({fp_of(0x10), 1, false});
  entries.push_back({fp_of(0x20), 2, true});
  entries.push_back({fp_of(0x30), 3, true});
  entries.push_back({fp_of(0x40), 4, true});
  const Consensus consensus(entries, 0);
  EXPECT_EQ(consensus.hsdirs().size(), 3u);
  DescriptorId id{};
  const auto responsible = consensus.responsible_hsdirs(id);
  for (const RelayId r : responsible) EXPECT_NE(r, 1u);
}

TEST(ConsensusTest, FewerHsdirsThanNeeded) {
  std::vector<Consensus::Entry> entries;
  entries.push_back({fp_of(0x10), 1, true});
  const Consensus consensus(entries, 0);
  DescriptorId id{};
  EXPECT_EQ(consensus.responsible_hsdirs(id).size(), 1u);
}

TEST(RelayTest, HsdirFlagTiming) {
  const Relay founding(0, fp_of(1), Bytes(32, 0), /*hsdir_flag_at=*/0);
  EXPECT_TRUE(founding.has_hsdir_flag(0));
  const Relay injected(1, fp_of(2), Bytes(32, 0),
                       /*hsdir_flag_at=*/kHsdirFlagUptime);
  EXPECT_FALSE(injected.has_hsdir_flag(kHsdirFlagUptime - 1));
  EXPECT_TRUE(injected.has_hsdir_flag(kHsdirFlagUptime));
}

TEST(RelayTest, DescriptorStoreFetchAndExpiry) {
  Relay relay(0, fp_of(1), Bytes(32, 0), 0);
  const auto key = test_key(12);
  HiddenServiceDescriptor desc;
  desc.address = OnionAddress::from_public_key(key.pub);
  desc.service_key = key.pub;
  desc.published_at = 1000;
  desc.signature = crypto::rsa_sign(key, desc.signed_body());
  DescriptorId id{};
  id[0] = 9;
  relay.store_descriptor(id, desc);
  EXPECT_TRUE(relay.fetch_descriptor(id, 2000).has_value());
  EXPECT_FALSE(relay.fetch_descriptor(id, 1000 + kDescriptorLifetime)
                   .has_value())
      << "expired";
  DescriptorId other{};
  other[0] = 10;
  EXPECT_FALSE(relay.fetch_descriptor(other, 2000).has_value());
}

TEST(RelayTest, DenyingRelayServesNothing) {
  Relay relay(0, fp_of(1), Bytes(32, 0), 0);
  const auto key = test_key(13);
  HiddenServiceDescriptor desc;
  desc.address = OnionAddress::from_public_key(key.pub);
  desc.service_key = key.pub;
  desc.published_at = 0;
  desc.signature = crypto::rsa_sign(key, desc.signed_body());
  DescriptorId id{};
  relay.store_descriptor(id, desc);
  relay.set_denying(true);
  EXPECT_FALSE(relay.fetch_descriptor(id, 1).has_value());
  relay.set_denying(false);
  EXPECT_TRUE(relay.fetch_descriptor(id, 1).has_value());
}

TEST(RelayTest, ExpireDescriptorsHousekeeping) {
  Relay relay(0, fp_of(1), Bytes(32, 0), 0);
  HiddenServiceDescriptor desc;
  desc.published_at = 0;
  DescriptorId id{};
  relay.store_descriptor(id, desc);
  EXPECT_EQ(relay.stored_descriptor_count(), 1u);
  relay.expire_descriptors(kDescriptorLifetime + 1);
  EXPECT_EQ(relay.stored_descriptor_count(), 0u);
}

TEST(CellTest, LayerIsInvolution) {
  const Bytes key = to_bytes("hop key");
  Cell cell = make_cell(to_bytes("payload"));
  const Cell once = crypt_layer(key, 5, cell);
  EXPECT_NE(once, cell);
  EXPECT_EQ(crypt_layer(key, 5, once), cell);
}

TEST(CellTest, DifferentSequencesDifferentKeystream) {
  const Bytes key = to_bytes("hop key");
  const Cell cell = make_cell(to_bytes("payload"));
  EXPECT_NE(crypt_layer(key, 1, cell), crypt_layer(key, 2, cell));
}

TEST(CellTest, OnionWrapPeelsInPathOrder) {
  const std::vector<Bytes> keys = {to_bytes("k1"), to_bytes("k2"),
                                   to_bytes("k3")};
  const Cell plain = make_cell(to_bytes("secret command"));
  Cell wire = onion_wrap(keys, 9, plain);
  EXPECT_NE(wire, plain);
  // Hops peel in order k1, k2, k3.
  for (const Bytes& k : keys) wire = crypt_layer(k, 9, wire);
  EXPECT_EQ(wire, plain);
}

TEST(CellTest, WrappedCellHasHighEntropy) {
  const std::vector<Bytes> keys = {to_bytes("k1"), to_bytes("k2"),
                                   to_bytes("k3")};
  // Low-entropy plaintext (all zeros) must look uniform once wrapped.
  const Cell plain{};
  EXPECT_LT(cell_entropy(plain), 0.1);
  const Cell wire = onion_wrap(keys, 0, plain);
  EXPECT_GT(cell_entropy(wire), 7.5);
}

// --- full-network tests over the DES --------------------------------

struct NetFixture {
  sim::Simulator sim;
  TorNetwork tor;
  explicit NetFixture(std::size_t relays = 25)
      : tor(sim, TorConfig{.num_relays = relays}, /*seed=*/0xfeed) {}
};

TEST(TorNetworkTest, EndToEndRendezvous) {
  NetFixture net;
  const auto service_key = test_key(20);
  const EndpointId host = net.tor.create_endpoint();
  const EndpointId client = net.tor.create_endpoint();

  Bytes seen_request;
  const OnionAddress addr = net.tor.publish_service(
      host, service_key,
      [&](BytesView request, const OnionAddress&) -> Bytes {
        seen_request = Bytes(request.begin(), request.end());
        return to_bytes("pong");
      });

  ConnectResult outcome;
  net.tor.connect_and_send(client, addr, to_bytes("ping"),
                           [&](const ConnectResult& r) { outcome = r; });
  net.sim.run();

  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.reply, to_bytes("pong"));
  EXPECT_EQ(seen_request, to_bytes("ping"));
  EXPECT_GT(outcome.completed_at, 0u);
  EXPECT_GE(net.tor.stats().circuits_built, 4u);
  EXPECT_EQ(net.tor.stats().connections_ok, 1u);
}

TEST(TorNetworkTest, LargePayloadSpansCells) {
  NetFixture net;
  const auto service_key = test_key(21);
  const EndpointId host = net.tor.create_endpoint();
  const EndpointId client = net.tor.create_endpoint();
  Bytes received;
  const OnionAddress addr = net.tor.publish_service(
      host, service_key, [&](BytesView req, const OnionAddress&) -> Bytes {
        received = Bytes(req.begin(), req.end());
        return Bytes(req.rbegin(), req.rend());
      });
  Bytes big(5000);
  Rng rng(50);
  for (auto& b : big) b = static_cast<std::uint8_t>(rng.next_u64());
  ConnectResult outcome;
  net.tor.connect_and_send(client, addr, big,
                           [&](const ConnectResult& r) { outcome = r; });
  net.sim.run();
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(received, big);
  EXPECT_EQ(outcome.reply, Bytes(big.rbegin(), big.rend()));
}

TEST(TorNetworkTest, RelayedCellsLookUniform) {
  NetFixture net;
  const auto service_key = test_key(22);
  const EndpointId host = net.tor.create_endpoint();
  const EndpointId client = net.tor.create_endpoint();
  const OnionAddress addr = net.tor.publish_service(
      host, service_key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });
  // All-zero payload: if any relay saw plaintext, entropy would crater.
  net.tor.connect_and_send(client, addr, Bytes(2000, 0),
                           [](const ConnectResult&) {});
  net.sim.run();
  EXPECT_GT(net.tor.mean_relayed_cell_entropy(), 7.5);
}

TEST(TorNetworkTest, UnknownAddressFailsDescriptorNotFound) {
  NetFixture net;
  const EndpointId client = net.tor.create_endpoint();
  const OnionAddress ghost =
      OnionAddress::from_public_key(test_key(23).pub);
  ConnectResult outcome;
  net.tor.connect_and_send(client, ghost, to_bytes("x"),
                           [&](const ConnectResult& r) { outcome = r; });
  net.sim.run();
  EXPECT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(*outcome.error, ConnectError::DescriptorNotFound);
}

TEST(TorNetworkTest, UnpublishedServiceUnreachableViaStaleDescriptor) {
  NetFixture net;
  const auto service_key = test_key(24);
  const EndpointId host = net.tor.create_endpoint();
  const EndpointId client = net.tor.create_endpoint();
  const OnionAddress addr = net.tor.publish_service(
      host, service_key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });
  EXPECT_TRUE(net.tor.unpublish_service(host, addr));
  EXPECT_FALSE(net.tor.service_online(addr));

  // Descriptors still sit on the HSDirs, so the client gets one — and
  // then the rendezvous times out (the takedown window real Tor has).
  ConnectResult outcome;
  net.tor.connect_and_send(client, addr, to_bytes("x"),
                           [&](const ConnectResult& r) { outcome = r; });
  net.sim.run();
  EXPECT_FALSE(outcome.ok);
  ASSERT_TRUE(outcome.error.has_value());
  EXPECT_EQ(*outcome.error, ConnectError::ServiceUnreachable);
}

TEST(TorNetworkTest, UnpublishRequiresOwner) {
  NetFixture net;
  const auto service_key = test_key(25);
  const EndpointId host = net.tor.create_endpoint();
  const EndpointId other = net.tor.create_endpoint();
  const OnionAddress addr = net.tor.publish_service(
      host, service_key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });
  EXPECT_FALSE(net.tor.unpublish_service(other, addr));
  EXPECT_TRUE(net.tor.service_online(addr));
}

TEST(TorNetworkTest, InjectedRelayGetsHsdirFlagAfter25Hours) {
  NetFixture net;
  Fingerprint fp{};
  fp[0] = 0xaa;
  const RelayId injected = net.tor.inject_relay(fp);
  EXPECT_FALSE(net.tor.relay(injected).has_hsdir_flag(net.sim.now()));

  // After the next consensus the relay is listed, but without the HSDir
  // flag until 25 h pass.
  net.sim.run_until(2 * kHour);
  bool listed = false, hsdir = false;
  for (const auto& e : net.tor.consensus().entries()) {
    if (e.relay == injected) {
      listed = true;
      hsdir = e.hsdir;
    }
  }
  EXPECT_TRUE(listed);
  EXPECT_FALSE(hsdir);

  net.sim.run_until(26 * kHour);
  for (const auto& e : net.tor.consensus().entries())
    if (e.relay == injected) hsdir = e.hsdir;
  EXPECT_TRUE(hsdir);
}

TEST(TorNetworkTest, DescriptorsRepublishedHourly) {
  NetFixture net;
  const auto service_key = test_key(26);
  const EndpointId host = net.tor.create_endpoint();
  net.tor.publish_service(
      host, service_key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });
  const auto before = net.tor.stats().descriptors_published;
  net.sim.run_until(3 * kHour + kMinute);
  EXPECT_GT(net.tor.stats().descriptors_published, before);
}

TEST(TakeoverTest, FingerprintsAfterAreAdjacentAndOrdered) {
  DescriptorId id{};
  id[19] = 0xfe;
  const auto fps = mitigation::fingerprints_after(id, 3);
  ASSERT_EQ(fps.size(), 3u);
  Fingerprint base;
  std::copy(id.begin(), id.end(), base.begin());
  EXPECT_TRUE(fingerprint_less(base, fps[0]));
  EXPECT_TRUE(fingerprint_less(fps[0], fps[1]));
  EXPECT_TRUE(fingerprint_less(fps[1], fps[2]));
}

TEST(TakeoverTest, CarryPropagatesThroughBytes) {
  DescriptorId id{};
  for (auto& b : id) b = 0xff;  // all ones: increment wraps to zero
  const auto fps = mitigation::fingerprints_after(id, 1);
  Fingerprint zero{};
  EXPECT_EQ(fps[0], zero);
}

}  // namespace
}  // namespace onion::tor
