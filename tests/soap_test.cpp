// SOAP mitigation tests (paper §VI-B, Figure 7): clone-by-clone
// containment of a single target, whole-network campaigns, discovery
// spread, and the Section VII-A defenses (proof of work, rate limiting).
#include <gtest/gtest.h>

#include "core/overlay.hpp"
#include "mitigation/soap.hpp"

namespace onion::mitigation {
namespace {

using core::OverlayConfig;
using core::OverlayNetwork;
using NodeId = OverlayNetwork::NodeId;

OverlayConfig overlay_cfg(std::size_t k) {
  OverlayConfig cfg;
  cfg.dmin = k;
  cfg.dmax = k;
  return cfg;
}

TEST(Soap, CaptureSeedsDiscoveryWithPeersAndNoN) {
  Rng rng(1);
  OverlayNetwork net =
      OverlayNetwork::random_regular(30, 4, overlay_cfg(4), rng);
  SoapCampaign campaign(net, SoapConfig{}, rng);
  campaign.capture(0);
  // At least the bot, its 4 peers, and their peers.
  EXPECT_GE(campaign.discovered().size(), 5u);
  EXPECT_TRUE(campaign.discovered().count(0) > 0);
  for (const NodeId n : net.neighbors(0))
    EXPECT_TRUE(campaign.discovered().count(n) > 0);
}

TEST(Soap, SingleTargetGetsContained) {
  // Figure 7 steps 2-9 against one bot: clones undercut and evict the
  // benign peers until the ring closes.
  Rng rng(2);
  OverlayNetwork net =
      OverlayNetwork::random_regular(20, 4, overlay_cfg(4), rng);
  SoapConfig cfg;
  cfg.max_rounds = 200;
  SoapCampaign campaign(net, cfg, rng);
  campaign.capture(7);
  for (int round = 0; round < 200 && !net.contained(7); ++round)
    campaign.step();
  EXPECT_TRUE(net.contained(7));
  for (const NodeId p : net.neighbors(7)) EXPECT_FALSE(net.honest(p));
}

TEST(Soap, CampaignNeutralizesWholeBotnet) {
  Rng rng(3);
  OverlayNetwork net =
      OverlayNetwork::random_regular(40, 4, overlay_cfg(4), rng);
  SoapConfig cfg;
  cfg.requests_per_target_per_round = 2;
  SoapCampaign campaign(net, cfg, rng);
  campaign.capture(0);
  const auto timeline = campaign.run();
  EXPECT_TRUE(campaign.fully_contained());
  EXPECT_EQ(campaign.discovered().size(), 40u)
      << "clone peering harvests every neighbor list";
  EXPECT_EQ(net.honest_edges(), 0u)
      << "full containment leaves no bot-to-bot link";
  // Telemetry is monotone in containment.
  for (std::size_t i = 1; i < timeline.size(); ++i)
    EXPECT_GE(timeline[i].contained + 1, timeline[i - 1].contained);
}

TEST(Soap, ContainmentPartitionsHonestNetwork) {
  Rng rng(4);
  OverlayNetwork net =
      OverlayNetwork::random_regular(30, 4, overlay_cfg(4), rng);
  SoapCampaign campaign(net, SoapConfig{}, rng);
  campaign.capture(0);
  campaign.run();
  // Every honest bot isolated: components == number of honest nodes.
  EXPECT_EQ(net.honest_components(), net.honest_nodes().size());
}

TEST(Soap, ClonesAreCheapButCounted) {
  Rng rng(5);
  OverlayNetwork net =
      OverlayNetwork::random_regular(20, 4, overlay_cfg(4), rng);
  SoapCampaign campaign(net, SoapConfig{}, rng);
  campaign.capture(0);
  campaign.run();
  EXPECT_GT(campaign.clones_created(), 0u);
  // Without PoW the campaign costs nothing but clones.
  EXPECT_DOUBLE_EQ(net.sybil_work_spent(), 0.0);
}

TEST(Soap, ProofOfWorkBudgetHaltsCampaign) {
  // §VII-A: escalating puzzles price the Sybils out.
  Rng rng(6);
  OverlayConfig cfg = overlay_cfg(4);
  cfg.pow_base_cost = 1.0;
  cfg.pow_growth = 2.0;
  OverlayNetwork net = OverlayNetwork::random_regular(30, 4, cfg, rng);
  SoapConfig soap;
  soap.work_budget = 50.0;  // tiny budget vs exponential cost growth
  SoapCampaign campaign(net, soap, rng);
  campaign.capture(0);
  campaign.run();
  EXPECT_FALSE(campaign.fully_contained());
  EXPECT_GT(net.honest_edges(), 0u);
  EXPECT_LE(net.sybil_work_spent(), 50.0 * 2.0 + 64.0)
      << "spend stops near the budget";
}

TEST(Soap, RateLimitSlowsContainment) {
  const auto rounds_to_finish = [](std::size_t rate_limit) {
    Rng rng(7);
    OverlayConfig cfg;
    cfg.dmin = 4;
    cfg.dmax = 4;
    cfg.rate_limit_per_round = rate_limit;
    OverlayNetwork net = OverlayNetwork::random_regular(24, 4, cfg, rng);
    SoapConfig soap;
    soap.requests_per_target_per_round = 4;
    soap.max_rounds = 2000;
    SoapCampaign campaign(net, soap, rng);
    campaign.capture(0);
    campaign.run();
    return campaign.rounds_run();
  };
  const std::size_t unlimited = rounds_to_finish(1000);
  const std::size_t limited = rounds_to_finish(1);
  EXPECT_GT(limited, unlimited)
      << "rate limiting stretches the campaign (defense trade-off)";
}

TEST(Soap, StepWithoutCaptureDoesNothing) {
  Rng rng(8);
  OverlayNetwork net =
      OverlayNetwork::random_regular(10, 4, overlay_cfg(4), rng);
  SoapCampaign campaign(net, SoapConfig{}, rng);
  EXPECT_FALSE(campaign.step());
  EXPECT_EQ(campaign.clones_created(), 0u);
}

TEST(Soap, TimelineReportsWorkAndClones) {
  Rng rng(9);
  OverlayNetwork net =
      OverlayNetwork::random_regular(20, 4, overlay_cfg(4), rng);
  SoapCampaign campaign(net, SoapConfig{}, rng);
  campaign.capture(0);
  const auto timeline = campaign.run();
  ASSERT_GE(timeline.size(), 2u);
  EXPECT_EQ(timeline.front().contained, 0u);
  EXPECT_GT(timeline.back().clones, 0u);
  EXPECT_EQ(timeline.back().honest_edges, 0u);
}

TEST(Soap, HigherDegreeBotnetNeedsMoreClones) {
  const auto clones_needed = [](std::size_t k) {
    Rng rng(10);
    OverlayNetwork net =
        OverlayNetwork::random_regular(30, k, overlay_cfg(k), rng);
    SoapCampaign campaign(net, SoapConfig{}, rng);
    campaign.capture(0);
    campaign.run();
    return campaign.clones_created();
  };
  EXPECT_GT(clones_needed(8), clones_needed(4))
      << "each bot needs ~dmax clones to ring";
}

}  // namespace
}  // namespace onion::mitigation
