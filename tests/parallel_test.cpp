// Contract tests for common/parallel.hpp — the one pool shape every
// deterministic sweep shares. Exception semantics (the pool must drain
// and rethrow the first captured exception even when every worker
// throws), the zero-count and single-thread fast paths, and shared-state
// stress bodies the ThreadSanitizer CI tier runs race-free. This suite
// carries the ctest label "tsan" together with the grid smoke below.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "scenario/runner.hpp"

namespace onion {
namespace {

TEST(ParallelForIndex, ZeroCountFastPathDoesNotInvokeOrSpawn) {
  std::atomic<int> calls{0};
  const std::size_t pool =
      parallel_for_index(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(pool, 0u);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForIndex, SingleThreadRunsInlineInOrder) {
  // The 1-thread pool must run on the calling thread (no spawn) and in
  // index order — the property that makes sequential and parallel runs
  // interchangeable for determinism tests.
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  const std::size_t pool = parallel_for_index(5, 1, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(pool, 1u);
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndex, PoolClampsToCount) {
  std::atomic<int> calls{0};
  const std::size_t pool =
      parallel_for_index(3, 16, [&](std::size_t) { ++calls; });
  EXPECT_LE(pool, 3u);
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelForIndex, SingleThrowerRethrowsAfterDraining) {
  // One worker throws; the pool must still join every thread, then
  // rethrow. Every index is either fully executed or never started.
  std::atomic<int> executed{0};
  const auto body = [&](std::size_t i) {
    if (i == 7) throw std::runtime_error("index 7 failed");
    ++executed;
  };
  EXPECT_THROW(parallel_for_index(64, 4, body), std::runtime_error);
  EXPECT_LE(executed.load(), 63);
}

TEST(ParallelForIndex, SingleThreadInlinePropagatesImmediately) {
  std::vector<std::size_t> ran;
  const auto body = [&](std::size_t i) {
    if (i == 2) throw std::logic_error("boom");
    ran.push_back(i);
  };
  EXPECT_THROW(parallel_for_index(8, 1, body), std::logic_error);
  // Inline execution stops at the throwing index; nothing after it ran.
  EXPECT_EQ(ran, (std::vector<std::size_t>{0, 1}));
}

TEST(ParallelForIndex, ConcurrentThrowersYieldExactlyOneException) {
  // Every invocation throws, from every worker concurrently. The pool
  // must drain (all threads joined, no terminate) and surface exactly
  // one of the captured exceptions; its payload names a real index.
  const std::size_t count = 32;
  std::atomic<int> started{0};
  try {
    parallel_for_index(count, 8, [&](std::size_t i) {
      ++started;
      throw static_cast<int>(i);
    });
    FAIL() << "should have rethrown a worker exception";
  } catch (const int index) {
    EXPECT_GE(index, 0);
    EXPECT_LT(static_cast<std::size_t>(index), count);
  }
  EXPECT_GE(started.load(), 1);
  EXPECT_LE(started.load(), static_cast<int>(count));
}

TEST(ParallelForIndex, SharedAtomicAccumulatorStress) {
  // TSan-clean by construction: the only shared mutable state is the
  // atomic. The exact total proves no increment was lost or doubled by
  // the work-handout index.
  const std::size_t count = 10'000;
  std::atomic<std::uint64_t> sum{0};
  const std::size_t pool = parallel_for_index(count, 8, [&](std::size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_GE(pool, 1u);
  EXPECT_EQ(sum.load(), count * (count + 1) / 2);
}

TEST(ParallelForIndex, PerSlotResultsAreComplete) {
  const std::size_t count = 4096;
  std::vector<std::uint64_t> results(count, 0);
  parallel_for_index(count, 0, [&](std::size_t i) { results[i] = i * i; });
  for (std::size_t i = 0; i < count; ++i) ASSERT_EQ(results[i], i * i);
}

// --- The labeled multi-thread grid smoke the TSan CI tier runs --------

scenario::ScenarioSpec smoke_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 120;
  spec.degree = 6;
  spec.horizon = 8 * kMinute;
  spec.churn.joins_per_hour = 180.0;
  spec.churn.leaves_per_hour = 180.0;
  scenario::AttackPhase takedown;
  takedown.kind = scenario::AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 6 * kMinute;
  takedown.takedowns_per_hour = 90.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

TEST(TsanGridSmoke, MultiThreadCampaignGridMatchesSerialFingerprint) {
  // Eight seeded campaign cells sharded over four workers: the full
  // engine (simulator, tracker, snapshot sinks) runs concurrently under
  // TSan here, and the combined fingerprint must equal the serial run's
  // — thread count may never leak into the merged result.
  scenario::CampaignGrid grid;
  for (std::uint64_t seed = 900; seed < 908; ++seed)
    grid.add("smoke" + std::to_string(seed), smoke_spec(seed));
  const scenario::GridReport serial = grid.run(/*threads=*/1);
  const scenario::GridReport sharded = grid.run(/*threads=*/4);
  EXPECT_EQ(serial.threads_used, 1u);
  EXPECT_EQ(sharded.threads_used, 4u);
  EXPECT_EQ(serial.combined_fingerprint, sharded.combined_fingerprint);
  ASSERT_EQ(serial.cells.size(), sharded.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i)
    EXPECT_EQ(serial.cells[i].fingerprint, sharded.cells[i].fingerprint);
}

}  // namespace
}  // namespace onion
