// Scale smoke for the streaming trace/replay pipeline (ctest label
// "scale"): the pinned 10k campaign spools to disk and replays through
// the TraceSource API byte-identically to the in-memory path (the PR's
// acceptance criterion), and the 500k-node campaign records, streams
// back, and sweeps a replay-level grid with peak RSS bounded by the
// population tables — never the event log or the synthesized capture.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "detection/replay.hpp"
#include "detection/replay_grid.hpp"
#include "detection/telemetry.hpp"
#include "scenario/engine.hpp"
#include "scenario/trace_io.hpp"

namespace onion::detection {
namespace {

using scenario::AttackKind;
using scenario::AttackPhase;
using scenario::CampaignEngine;
using scenario::CampaignTrace;
using scenario::ScenarioSpec;
using scenario::trace_io::TraceReader;
using scenario::trace_io::TraceWriter;
using scenario::trace_io::TraceWriterConfig;

/// High-water RSS of this process in KB (Linux ru_maxrss units).
std::size_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss);
}

// The pinned 10k campaign (same shape as tests/scale_replay_test.cpp).
ScenarioSpec ten_k_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

// The pinned 500k campaign (same spec as tests/scale_test.cpp's
// half-million smoke and bench_report's "scale_runs").
ScenarioSpec half_million_spec() {
  ScenarioSpec spec;
  spec.seed = 0x5ca1e;
  spec.initial_size = 500'000;
  spec.degree = 10;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 600.0;
  spec.churn.leaves_per_hour = 18'000.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 6'000.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kSecond;
  return spec;
}

ReplayConfig pinned_replay() {
  ReplayConfig rc;
  rc.seed = 0x5ca1e;
  rc.benign_web = 500;
  rc.benign_tor = 100;
  rc.centralized_bots = 50;
  rc.dga_bots = 50;
  rc.fastflux_bots = 50;
  rc.p2p_bots = 50;
  rc.onion_mean_gap = kMinute;
  return rc;
}

TEST(ScaleStream, TenThousandBotStreamedReplayIsByteIdentical) {
  const auto wall_start = std::chrono::steady_clock::now();
  const ScenarioSpec spec = ten_k_spec(0xbeef);

  CampaignTrace campaign;
  CampaignEngine(spec, campaign, &campaign).run();

  const std::string path = ::testing::TempDir() + "scale_10k.otrace";
  {
    TraceWriter writer(path);
    CampaignEngine(spec, writer, &writer).run();
    writer.finish();
  }

  const TraceReader reader(path);
  EXPECT_EQ(reader.fingerprint(), campaign.fingerprint());
  EXPECT_EQ(reader.event_count(), campaign.events().size());

  // The acceptance criterion: replaying through the streamed source
  // produces a TrafficTrace byte-identical to the in-memory path.
  const ReplayResult memory = replay_trace(campaign, pinned_replay());
  const ReplayResult streamed = replay_trace(
      static_cast<const scenario::TraceSource&>(reader), pinned_replay());
  EXPECT_EQ(fingerprint(streamed.trace), fingerprint(memory.trace));
  EXPECT_GT(streamed.trace.flows.size(), 100'000u);

  std::printf("scale_10k trace_file_bytes=%zu events=%llu wall=%.1fs\n",
              reader.file_bytes(),
              static_cast<unsigned long long>(reader.event_count()),
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count());
  std::remove(path.c_str());
}

TEST(ScaleStream, HalfMillionBotReplayGridStaysInWindowMemory) {
#ifndef NDEBUG
  // The 500k overlay under ASan/UBSan blows past the sanitized tier's
  // wall budget (and ru_maxrss measures the sanitizer's shadow, not the
  // pipeline); Release CI runs this under the scale label instead.
  GTEST_SKIP() << "500k streamed grid runs in Release (NDEBUG) builds only";
#else
  const auto wall_start = std::chrono::steady_clock::now();
  const std::string path = ::testing::TempDir() + "scale_500k.otrace";
  {
    // Record straight to disk: the event log never exists in memory.
    TraceWriter writer(path);
    CampaignEngine(half_million_spec(), writer, &writer).run();
    writer.finish();
  }

  // Baseline after the recorder: the engine's 500k-node overlay sets
  // the process high-water mark; the streamed sweep must stay inside
  // an O(populations) allowance above it, never O(events) or O(flows).
  const std::size_t baseline_kb = peak_rss_kb();

  const TraceReader reader(path);
  EXPECT_GT(reader.event_count(), 1000u);

  ReplayGridConfig config;
  config.replay_seeds = {1};
  config.replay = pinned_replay();
  config.flow_size_cv = {0.5};
  config.flow_gap_cv = {0.7};
  config.tor_min_flows = {3};
  const ReplayGridReport report = ReplayGrid(config).run(reader);

  const std::size_t peak_kb = peak_rss_kb();
  const std::size_t delta_kb = peak_kb - baseline_kb;

  // Every half-million campaign bots heartbeat over Tor for ten
  // simulated minutes: millions of flows streamed and scored...
  ASSERT_FALSE(report.points.empty());
  EXPECT_GT(report.points.front().flows, 1'000'000u);
  for (const ReplayGridPoint& p : report.points)
    EXPECT_EQ(p.flows, report.points.front().flows);
  // ...while the capture never materializes: the sweep's RSS growth is
  // bounded by the population tables (batch replay would hold every
  // flow record — hundreds of MB — before scoring even starts).
  EXPECT_LT(delta_kb, 256u * 1024u)
      << "streamed grid grew RSS by " << delta_kb << " KB";

  std::printf(
      "scale_500k trace_file_bytes=%zu events=%llu grid_points=%zu "
      "flows=%llu replay_rss_delta_kb=%zu wall=%.1fs\n",
      reader.file_bytes(),
      static_cast<unsigned long long>(reader.event_count()),
      report.points.size(),
      static_cast<unsigned long long>(report.points.front().flows),
      delta_kb,
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count());
  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace onion::detection
