// Scale smoke tier (ctest label "scale"; excluded from the default PR
// job): a 10k-node campaign with 5% membership churn and a takedown
// wave must complete end-to-end, keep the surviving core connected, and
// finish inside a generous wall-clock budget. Catches the accidental
// O(n^2)-per-snapshot regressions the small-n tests cannot see.
#include <gtest/gtest.h>

#include <chrono>

#include "scenario/engine.hpp"

namespace onion::scenario {
namespace {

ScenarioSpec scale_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  // 5% of the overlay churns over the hour, both directions.
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

TEST(ScaleCampaign, TenThousandNodeChurnCampaignStaysHealthy) {
  const ScenarioSpec spec = scale_spec(0xbeef);
  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Completed: ran to the horizon with the full snapshot cadence.
  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(sink.snapshots().size(), 13u);

  // The campaign actually exercised churn and the takedown wave.
  EXPECT_GT(end.joins, 300u);
  EXPECT_GT(end.leaves, 300u);
  EXPECT_GT(end.takedowns, 150u);

  // Self-healing holds the surviving core together throughout.
  for (const MetricsSnapshot& s : sink.snapshots()) {
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;
  }
  EXPECT_GT(end.honest_alive, 9000u);

  // Generous wall-clock budget (measured ~1s in Release; the ctest
  // timeout of 600s is the hard backstop).
  EXPECT_LT(wall_seconds, 120.0);
}

TEST(ScaleCampaign, TenThousandNodeReplayIsDeterministic) {
  HashSink first;
  CampaignEngine(scale_spec(0xfeed), first).run();
  HashSink second;
  CampaignEngine(scale_spec(0xfeed), second).run();
  EXPECT_EQ(first.hex_digest(), second.hex_digest());
}

TEST(ScaleCampaign, FiftyThousandNodeDenseCadenceSmoke) {
  // The ROADMAP's 50k tier, at a snapshot cadence (one per 5 simulated
  // seconds — 721 snapshots) that the per-snapshot O((n+m)·α) sweep made
  // pointless to run before the incremental tracker: structural
  // telemetry now costs O(changes) in deletion-free windows and one
  // rebuild otherwise.
  ScenarioSpec spec;
  spec.seed = 0x50'000;
  spec.initial_size = 50'000;
  spec.degree = 10;
  spec.horizon = kHour;
  // 2% churn over the hour plus a mid-campaign takedown wave.
  spec.churn.joins_per_hour = 1000.0;
  spec.churn.leaves_per_hour = 1000.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 20 * kMinute;
  takedown.stop = 40 * kMinute;
  takedown.takedowns_per_hour = 1500.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kSecond;

  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(sink.snapshots().size(), 721u);
  EXPECT_GT(end.joins, 700u);
  EXPECT_GT(end.leaves, 700u);
  EXPECT_GT(end.takedowns, 350u);
  EXPECT_GT(end.honest_alive, 48'000u);
  for (const MetricsSnapshot& s : sink.snapshots())
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;

  // Deletion-free windows skipped the component rebuild: with ~2500
  // deletions spread over 3600 seconds, a meaningful share of the 720
  // windows must have been pure-growth (O(changes)) snapshots.
  EXPECT_LT(engine.tracker().rebuilds(), sink.snapshots().size());

#ifdef NDEBUG
  // Generous wall-clock budget (measured ~3s in Release). Sanitized
  // Debug builds slow the 50k campaign 20-50x on loaded runners, so
  // there the ctest timeout of 600s is the only backstop.
  EXPECT_LT(wall_seconds, 240.0);
#else
  (void)wall_seconds;
#endif
}

}  // namespace
}  // namespace onion::scenario
