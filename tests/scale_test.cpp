// Scale smoke tier (ctest label "scale"; excluded from the default PR
// job): 10k/50k/500k-node campaigns with membership churn and takedown
// waves must complete end-to-end, keep the surviving core connected,
// and finish inside a generous wall-clock budget. Catches the
// accidental O(n^2)-per-snapshot regressions the small-n tests cannot
// see.
#include <gtest/gtest.h>

#include <chrono>

#include "scenario/engine.hpp"

namespace onion::scenario {
namespace {

ScenarioSpec scale_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  // 5% of the overlay churns over the hour, both directions.
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;
  return spec;
}

TEST(ScaleCampaign, TenThousandNodeChurnCampaignStaysHealthy) {
  const ScenarioSpec spec = scale_spec(0xbeef);
  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Completed: ran to the horizon with the full snapshot cadence.
  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(sink.snapshots().size(), 13u);

  // The campaign actually exercised churn and the takedown wave.
  EXPECT_GT(end.joins, 300u);
  EXPECT_GT(end.leaves, 300u);
  EXPECT_GT(end.takedowns, 150u);

  // Self-healing holds the surviving core together throughout.
  for (const MetricsSnapshot& s : sink.snapshots()) {
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;
  }
  EXPECT_GT(end.honest_alive, 9000u);

  // Generous wall-clock budget (measured ~1s in Release; the ctest
  // timeout of 600s is the hard backstop).
  EXPECT_LT(wall_seconds, 120.0);
}

TEST(ScaleCampaign, TenThousandNodeReplayIsDeterministic) {
  HashSink first;
  CampaignEngine(scale_spec(0xfeed), first).run();
  HashSink second;
  CampaignEngine(scale_spec(0xfeed), second).run();
  EXPECT_EQ(first.hex_digest(), second.hex_digest());
}

TEST(ScaleCampaign, ThreeWaveAdaptiveParetoCampaignAtTenThousand) {
  // The full new vocabulary at scale: heavy-tailed per-bot sessions
  // (Pareto: ~45% of the initial population churns out inside the
  // hour), a three-wave adaptive plan with quiet healing gaps, and
  // per-wave victim attribution — run twice, fingerprints must match.
  ScenarioSpec spec;
  spec.seed = 0x3a3e;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.session_leaves = true;
  spec.churn.session.model = SessionModel::Pareto;
  spec.churn.session.mean_hours = 2.0;
  spec.churn.session.pareto_alpha = 1.5;
  AttackWave wave;
  wave.attack.kind = AttackKind::AdaptiveTakedown;
  wave.attack.rank = RankMetric::SampledBetweenness;
  wave.attack.refresh_period = 2 * kMinute;
  wave.attack.betweenness_pivots = 16;
  wave.attack.takedowns_per_hour = 600.0;
  wave.duration = 10 * kMinute;
  wave.quiet_after = 5 * kMinute;
  spec.waves.start = 5 * kMinute;
  spec.waves.waves.assign(3, wave);
  spec.metrics.period = 5 * kMinute;

  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink memory;
  HashSink first;
  FanoutSink fanout({&memory, &first});
  CampaignEngine engine(spec, fanout);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(memory.snapshots().size(), 13u);
  // The heavy tail actually churned: Pareto(mean 2 h, alpha 1.5) has
  // x_m = 2/3 h, so P(session < 1 h) ~ 46% of the initial population.
  EXPECT_GT(end.leaves, 3000u);
  EXPECT_GT(end.joins, 300u);
  // All three waves landed, and every victim is attributed to one.
  ASSERT_EQ(end.wave_takedowns.size(), 3u);
  std::uint64_t attributed = 0;
  for (const std::uint64_t w : end.wave_takedowns) {
    EXPECT_GT(w, 50u);
    attributed += w;
  }
  EXPECT_EQ(attributed, end.takedowns);
  EXPECT_GT(end.takedowns, 200u);
  // Self-healing keeps the shrinking core together under the combined
  // churn + adaptive assault.
  for (const MetricsSnapshot& s : memory.snapshots())
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;

  // Byte-identical replay at scale.
  HashSink second;
  CampaignEngine(spec, second).run();
  EXPECT_EQ(first.hex_digest(), second.hex_digest());

#ifdef NDEBUG
  // Generous wall-clock budget (measured ~2s in Release; sanitized
  // Debug builds lean on the 600s ctest timeout instead).
  EXPECT_LT(wall_seconds, 120.0);
#else
  (void)wall_seconds;
#endif
}

TEST(ScaleCampaign, FiftyThousandNodeDenseCadenceSmoke) {
  // The ROADMAP's 50k tier, at a snapshot cadence (one per 5 simulated
  // seconds — 721 snapshots) that the per-snapshot O((n+m)·α) sweep made
  // pointless to run before the incremental tracker: structural
  // telemetry now costs O(changes) regardless of whether the window
  // contained deletions (fully-dynamic connectivity).
  ScenarioSpec spec;
  spec.seed = 0x50'000;
  spec.initial_size = 50'000;
  spec.degree = 10;
  spec.horizon = kHour;
  // 2% churn over the hour plus a mid-campaign takedown wave.
  spec.churn.joins_per_hour = 1000.0;
  spec.churn.leaves_per_hour = 1000.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 20 * kMinute;
  takedown.stop = 40 * kMinute;
  takedown.takedowns_per_hour = 1500.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kSecond;

  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(sink.snapshots().size(), 721u);
  EXPECT_GT(end.joins, 700u);
  EXPECT_GT(end.leaves, 700u);
  EXPECT_GT(end.takedowns, 350u);
  EXPECT_GT(end.honest_alive, 48'000u);
  for (const MetricsSnapshot& s : sink.snapshots())
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;

  // Fully-dynamic connectivity retired the rebuild path outright:
  // deletion windows (~2500 deletions over 3600 seconds) fold into the
  // same O(changes) fill as pure-growth windows.
  EXPECT_EQ(engine.tracker().rebuilds(), 0u);

#ifdef NDEBUG
  // Generous wall-clock budget (measured ~3s in Release). Sanitized
  // Debug builds slow the 50k campaign 20-50x on loaded runners, so
  // there the ctest timeout of 600s is the only backstop.
  EXPECT_LT(wall_seconds, 240.0);
#else
  (void)wall_seconds;
#endif
}

TEST(ScaleCampaign, HalfMillionNodeLeaveHeavyDenseCadenceSmoke) {
  // The 500k tier: the same spec bench_report.cpp records under
  // "scale_runs" (seed 0x5ca1e, ten minutes at a 1 s cadence, 18000
  // leaves/h plus a 6000/h takedown wave). Every one of the ~600
  // snapshot windows contains deletions — the exact regime where the
  // old hybrid tracker re-ran a full O(n+m) component rebuild per
  // snapshot (~600 × ~59 ms ≈ 35 s of pure rebuild at this size).
#ifndef NDEBUG
  // Building and healing a 500k-node overlay under ASan/UBSan blows
  // well past the sanitized tier's wall budget; Release CI runs this
  // smoke under the scale label instead.
  GTEST_SKIP() << "500k smoke runs in Release (NDEBUG) builds only";
#else
  ScenarioSpec spec;
  spec.seed = 0x5ca1e;
  spec.initial_size = 500'000;
  spec.degree = 10;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 600.0;
  spec.churn.leaves_per_hour = 18'000.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 6'000.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kSecond;

  const auto wall_start = std::chrono::steady_clock::now();
  MemorySink sink;
  CampaignEngine engine(spec, sink);
  const MetricsSnapshot end = engine.run();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  EXPECT_EQ(end.time, spec.horizon);
  ASSERT_EQ(sink.snapshots().size(), 601u);
  // Leave-heavy: ~3000 leaves and ~600 takedowns landed in 10 minutes.
  EXPECT_GT(end.leaves, 2000u);
  EXPECT_GT(end.takedowns, 400u);
  EXPECT_GT(end.honest_alive, 490'000u);
  // No snapshot ever paid a component rebuild: deletions are folded in
  // by the fully-dynamic connectivity structure as their edges detach.
  EXPECT_EQ(engine.tracker().rebuilds(), 0u);
  // Self-healing holds the surviving core together throughout.
  for (const MetricsSnapshot& s : sink.snapshots())
    EXPECT_GE(s.largest_fraction, 0.99)
        << "surviving core fragmented at t=" << s.time;

  // Generous wall-clock budget (measured ~7s in Release; the ctest
  // timeout of 600s is the hard backstop).
  EXPECT_LT(wall_seconds, 300.0);
#endif
}

}  // namespace
}  // namespace onion::scenario
