// Property-based and parameterized sweeps over the substrates:
// DDSR maintenance invariants across the whole policy matrix, graph
// metrics checked against brute-force recomputation, generator
// contracts, and uniform-encoding round trips. Each TEST_P instance is
// one point of a sweep the unit tests cannot cover one by one.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/ddsr.hpp"
#include "crypto/elligator_sim.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "scenario/session.hpp"

namespace onion {
namespace {

using core::DdsrEngine;
using core::DdsrPolicy;
using graph::Graph;
using graph::NodeId;

// ====================================================================
// DDSR invariant sweep: n x k x prune x victim x repair
// ====================================================================

struct DdsrCase {
  std::size_t n;
  std::size_t k;
  bool prune;
  DdsrPolicy::Victim victim;
  DdsrPolicy::Repair repair;
};

std::string case_name(const ::testing::TestParamInfo<DdsrCase>& info) {
  const DdsrCase& c = info.param;
  std::string out = "n";
  out += std::to_string(c.n);
  out += "k";
  out += std::to_string(c.k);
  out += c.prune ? "_prune" : "_noprune";
  out += c.victim == DdsrPolicy::Victim::HighestDegree ? "_hideg" : "_rand";
  out +=
      c.repair == DdsrPolicy::Repair::PairwiseFull ? "_full" : "_match";
  return out;
}

class DdsrSweep : public ::testing::TestWithParam<DdsrCase> {};

TEST_P(DdsrSweep, MaintenanceInvariantsHoldUnderChurn) {
  const DdsrCase c = GetParam();
  Rng rng(0xddd + c.n * 7 + c.k);
  Graph g = graph::random_regular(c.n, c.k, rng);
  DdsrPolicy policy;
  policy.dmin = c.k;
  policy.dmax = c.k;
  policy.prune = c.prune;
  policy.refill = true;
  policy.victim = c.victim;
  policy.repair = c.repair;
  DdsrEngine engine(g, policy, rng);

  const std::size_t deletions = c.n * 3 / 10;  // the paper's 30%
  for (std::size_t i = 0; i < deletions; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(
        alive[static_cast<std::size_t>(rng.uniform(alive.size()))]);

    // Invariant 1: adjacency only references alive nodes.
    if (i % 16 == 0) {
      for (const NodeId u : g.alive_nodes())
        for (const NodeId v : g.neighbors(u))
          ASSERT_TRUE(g.alive(v)) << "edge to tombstoned node";
    }
  }

  // Invariant 2: with pruning, every degree is within [0, dmax].
  if (c.prune) {
    for (const NodeId u : g.alive_nodes())
      EXPECT_LE(g.degree(u), policy.dmax);
  }

  // Invariant 3: counters match reality. Every edge in the graph was
  // accounted for by generation, repair, or refill minus removals.
  const auto& stats = engine.stats();
  const std::size_t expected_initial = c.n * c.k / 2;
  // Edges removed by node deletion are not individually counted, so
  // only a weaker consistency check is possible: additions recorded
  // must be at least (current - initial).
  EXPECT_GE(expected_initial + stats.repair_edges_added +
                stats.refill_edges_added,
            g.num_edges());
  EXPECT_EQ(stats.nodes_removed, deletions);

  // Invariant 4: self-healing holds the surviving graph together (the
  // paper's headline for gradual takedown at 30%).
  EXPECT_TRUE(graph::is_connected(g))
      << "self-healing lost connectivity at 30% deletions";
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, DdsrSweep,
    ::testing::Values(
        DdsrCase{60, 4, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{60, 4, false, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::Random,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::RandomMatch},
        DdsrCase{200, 10, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{200, 10, false, DdsrPolicy::Victim::Random,
                 DdsrPolicy::Repair::RandomMatch},
        DdsrCase{200, 5, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull}),
    case_name);

// ====================================================================
// Graph metric properties vs brute force
// ====================================================================

class MetricSweep : public ::testing::TestWithParam<std::uint64_t> {};

// All-pairs shortest paths by repeated BFS; the reference.
std::vector<std::vector<std::uint32_t>> apsp(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> d;
  for (NodeId u = 0; u < g.capacity(); ++u) {
    if (g.alive(u))
      d.push_back(graph::bfs_distances(g, u));
    else
      d.emplace_back();
  }
  return d;
}

TEST_P(MetricSweep, DiameterMatchesBruteForce) {
  Rng rng(GetParam());
  Graph g = graph::erdos_renyi(40, 0.12, rng);
  const auto d = apsp(g);
  // Brute-force diameter of the largest component.
  const auto comps = graph::connected_components(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c)
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  std::uint32_t want = 0;
  for (NodeId u = 0; u < g.capacity(); ++u) {
    if (!g.alive(u) || comps.label[u] != target) continue;
    for (NodeId v = 0; v < g.capacity(); ++v) {
      if (!g.alive(v) || comps.label[v] != target) continue;
      if (d[u][v] != graph::kUnreachable) want = std::max(want, d[u][v]);
    }
  }
  EXPECT_EQ(graph::diameter_exact(g), want);
  // Double sweep lower-bounds the exact diameter and often equals it.
  Rng sweep_rng(GetParam() ^ 0xabc);
  const std::size_t estimate = graph::diameter_double_sweep(g, 4, sweep_rng);
  EXPECT_LE(estimate, want);
  EXPECT_GE(estimate + 2, want) << "double sweep is a tight estimator";
}

TEST_P(MetricSweep, UnionFindComponentsMatchBfsLabelling) {
  Rng rng(GetParam() ^ 0x55);
  Graph g = graph::erdos_renyi(50, 0.05, rng);
  // Some deletions so dead slots are exercised too.
  for (int i = 0; i < 10 && g.num_alive() > 1; ++i)
    g.remove_node(rng.pick(g.alive_nodes()));
  const auto bfs = graph::connected_components(g);
  const auto uf = graph::components_union_find(g);
  EXPECT_EQ(uf.count, bfs.count);
  EXPECT_EQ(uf.sizes, bfs.sizes);
  for (const NodeId u : g.alive_nodes())
    EXPECT_EQ(uf.label[u], bfs.label[u]) << "label mismatch at " << u;
}

TEST_P(MetricSweep, SampledClosenessTracksExact) {
  Rng rng(GetParam() ^ 0x77);
  Graph g = graph::random_regular(60, 6, rng);
  const double exact = graph::average_closeness_exact(g);
  Rng sample_rng(GetParam() ^ 0x99);
  const double sampled =
      graph::average_closeness_sampled(g, 30, sample_rng);
  EXPECT_NEAR(sampled, exact, exact * 0.15);
}

TEST_P(MetricSweep, RegularGeneratorContract) {
  Rng rng(GetParam() ^ 0x1234);
  const std::size_t n = 30 + 2 * (GetParam() % 10);
  const std::size_t k = 3 + GetParam() % 4;
  if ((n * k) % 2 != 0) return;  // parity-infeasible combination
  Graph g = graph::random_regular(n, k, rng);
  for (const NodeId u : g.alive_nodes()) {
    EXPECT_EQ(g.degree(u), k);
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_NE(u, v) << "no self loops";
      EXPECT_TRUE(g.has_edge(v, u)) << "undirected symmetry";
    }
  }
  EXPECT_EQ(g.num_edges(), n * k / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ====================================================================
// Graph invariants under randomized add/delete/add_node interleavings
// ====================================================================

class GraphOpsSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Full structural audit: simple graph (no self-loops, no parallel
// edges), symmetric adjacency over alive endpoints only, degree sum
// equals twice the edge counter, and tombstones stay dead.
void audit_graph(const Graph& g, const std::vector<NodeId>& tombstones) {
  std::size_t degree_sum = 0;
  for (const NodeId u : g.alive_nodes()) {
    std::vector<NodeId> nb = g.neighbors(u);
    degree_sum += nb.size();
    std::sort(nb.begin(), nb.end());
    ASSERT_TRUE(std::adjacent_find(nb.begin(), nb.end()) == nb.end())
        << "parallel edge at node " << u;
    for (const NodeId v : nb) {
      ASSERT_NE(u, v) << "self loop at node " << u;
      ASSERT_TRUE(g.alive(v)) << "edge to tombstoned node " << v;
      ASSERT_TRUE(g.has_edge(v, u)) << "asymmetric edge " << u << "," << v;
    }
  }
  ASSERT_EQ(degree_sum, 2 * g.num_edges());
  for (const NodeId d : tombstones)
    ASSERT_FALSE(g.alive(d)) << "tombstone " << d << " resurrected";
}

TEST_P(GraphOpsSweep, InvariantsHoldUnderRandomInterleavings) {
  Rng rng(0x9a9a + GetParam());
  Graph g(20);
  std::vector<NodeId> tombstones;
  std::size_t last_capacity = g.capacity();
  for (int step = 0; step < 600; ++step) {
    const auto alive = g.alive_nodes();
    const std::uint64_t op = rng.uniform(100);
    if (op < 40 && alive.size() >= 2) {
      // add_edge: must reject self loops and duplicates, else succeed.
      const NodeId u = rng.pick(alive);
      const NodeId v = rng.pick(alive);
      const bool duplicate = u != v && g.has_edge(u, v);
      const bool added = g.add_edge(u, v);
      EXPECT_EQ(added, u != v && !duplicate);
    } else if (op < 60 && !alive.empty()) {
      // remove_edge of a random incident edge (or a no-op miss).
      const NodeId u = rng.pick(alive);
      if (g.degree(u) > 0) {
        const auto& nb = g.neighbors(u);
        const NodeId v =
            nb[static_cast<std::size_t>(rng.uniform(nb.size()))];
        EXPECT_TRUE(g.remove_edge(u, v));
        EXPECT_FALSE(g.has_edge(u, v));
      }
    } else if (op < 80) {
      const NodeId id = g.add_node();
      EXPECT_TRUE(g.alive(id));
      EXPECT_EQ(g.degree(id), 0u);
    } else if (alive.size() > 1) {
      const NodeId victim = rng.pick(alive);
      g.remove_node(victim);
      tombstones.push_back(victim);
    }
    // capacity() is monotone: slots are never reused or reclaimed.
    EXPECT_GE(g.capacity(), last_capacity);
    last_capacity = g.capacity();
    if (step % 100 == 0) audit_graph(g, tombstones);
  }
  audit_graph(g, tombstones);
  EXPECT_EQ(g.capacity(), g.num_alive() + tombstones.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOpsSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ====================================================================
// Betweenness: exact vs hand-computed values, sampled vs exact ranking
// ====================================================================

TEST(Betweenness, ExactMatchesHandComputedPathAndStar) {
  // Path 0-1-2-3: interior nodes each lie on 2 of the 6 pairs.
  Graph path(4);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.add_edge(2, 3);
  const auto bc_path = graph::betweenness_exact(path);
  EXPECT_DOUBLE_EQ(bc_path[0], 0.0);
  EXPECT_DOUBLE_EQ(bc_path[1], 2.0);
  EXPECT_DOUBLE_EQ(bc_path[2], 2.0);
  EXPECT_DOUBLE_EQ(bc_path[3], 0.0);

  // Star: the hub lies on every leaf-to-leaf pair (3 of them).
  Graph star(4);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  star.add_edge(0, 3);
  const auto bc_star = graph::betweenness_exact(star);
  EXPECT_DOUBLE_EQ(bc_star[0], 3.0);
  EXPECT_DOUBLE_EQ(bc_star[1], 0.0);

  // Dead slots stay at zero.
  star.remove_node(3);
  const auto bc_after = graph::betweenness_exact(star);
  EXPECT_DOUBLE_EQ(bc_after[0], 1.0);
  EXPECT_DOUBLE_EQ(bc_after[3], 0.0);
}

class BetweennessSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BetweennessSweep, SampledAgreesWithExactOnTheTopDecile) {
  // Sparse G(n, p): heterogeneous enough that betweenness has a real
  // ranking (a k-regular graph's is nearly flat).
  Rng rng(0xbc + GetParam());
  Graph g = graph::erdos_renyi(200, 0.03, rng);
  const auto exact = graph::betweenness_exact(g);
  Rng pivot_rng(0xb0 + GetParam());
  const auto sampled = graph::betweenness_sampled(g, 64, pivot_rng);

  // Top decile of alive nodes by exact score vs by sampled score.
  auto top_decile = [&](const std::vector<double>& score) {
    std::vector<NodeId> nodes = g.alive_nodes();
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      if (score[a] != score[b]) return score[a] > score[b];
      return a < b;
    });
    nodes.resize(nodes.size() / 10);
    return nodes;
  };
  const auto want = top_decile(exact);
  const auto got = top_decile(sampled);
  std::size_t hits = 0;
  for (const NodeId u : got)
    if (std::find(want.begin(), want.end(), u) != want.end()) ++hits;
  EXPECT_GE(hits * 2, want.size())
      << "sampled top decile overlaps exact by only " << hits << "/"
      << want.size();

  // The estimator is unbiased: total mass agrees within 25%.
  double exact_sum = 0.0, sampled_sum = 0.0;
  for (const NodeId u : g.alive_nodes()) {
    exact_sum += exact[u];
    sampled_sum += sampled[u];
  }
  EXPECT_NEAR(sampled_sum, exact_sum, exact_sum * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BetweennessSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// ====================================================================
// Batch-deletion partition index vs brute-force replay
// ====================================================================

class PartitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartitionSweep, ReverseUnionFindMatchesBruteForce) {
  Rng rng(0x6f6 + GetParam());
  Graph pristine = graph::erdos_renyi(60, 0.08, rng);
  std::vector<NodeId> order = pristine.alive_nodes();
  rng.shuffle(order);

  // Brute force: replay the deletions, BFS connectivity after each.
  std::size_t want = order.size();
  Graph replay = pristine;
  for (std::size_t i = 0; i < order.size(); ++i) {
    replay.remove_node(order[i]);
    if (replay.num_alive() >= 2 && !graph::is_connected(replay)) {
      want = i + 1;
      break;
    }
  }
  EXPECT_EQ(graph::first_partition_index(pristine, order), want);
}

TEST(PartitionIndex, EmptyOrderAndRobustGraphEdgeCases) {
  Rng rng(0x1dea);
  Graph g(12);  // complete K12
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = u + 1; v < 12; ++v) g.add_edge(u, v);
  EXPECT_EQ(graph::first_partition_index(g, {}), 0u);
  // A complete graph never partitions: every prefix leaves a clique.
  std::vector<NodeId> order = g.alive_nodes();
  rng.shuffle(order);
  EXPECT_EQ(graph::first_partition_index(g, order), order.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ====================================================================
// Uniform-encoding properties
// ====================================================================

class EncodingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncodingSweep, RoundTripsAtEverySize) {
  Rng rng(0xe11e + GetParam());
  Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes plaintext(GetParam());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());

  const Bytes cell = crypto::uniform_encode(key, plaintext, rng);
  EXPECT_EQ(cell.size(), crypto::kUniformCellSize);
  const auto back = crypto::uniform_decode(key, cell);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plaintext);
}

TEST_P(EncodingSweep, EveryBytePositionIsAuthenticated) {
  Rng rng(0xbadd + GetParam());
  const Bytes key = to_bytes("sweep-key");
  Bytes plaintext(GetParam());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes cell = crypto::uniform_encode(key, plaintext, rng);
  // Flip a pseudorandom position per instance; over the sweep this
  // covers nonce, ciphertext, and tag regions.
  for (int trial = 0; trial < 8; ++trial) {
    Bytes bad = cell;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform(bad.size()));
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_FALSE(crypto::uniform_decode(key, bad).has_value())
        << "flip at " << pos << " went undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, EncodingSweep,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 64, 128,
                                           255, 256, 400,
                                           crypto::kUniformCellCapacity));

// ====================================================================
// Session-length sampler: mean accuracy, tail-mass ordering,
// degenerate parameters, determinism in both directions
// ====================================================================

using scenario::sample_session;
using scenario::sample_session_hours;
using scenario::SessionModel;
using scenario::SessionSpec;

constexpr SessionModel kAllModels[] = {SessionModel::Exponential,
                                       SessionModel::Pareto,
                                       SessionModel::LogNormal};

class SessionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionSweep, EmpiricalMeanTracksTheSpecForEveryModel) {
  for (const SessionModel model : kAllModels) {
    SessionSpec spec;
    spec.model = model;
    spec.mean_hours = 2.0;
    // Finite-variance corners of each family, so the sample mean of a
    // modest draw count actually settles (Pareto alpha in (1, 2] has
    // infinite variance by design — covered by the tail test instead).
    spec.pareto_alpha = 3.0;
    spec.lognormal_sigma = 0.8;
    Rng rng(0x5e55 + GetParam() * 131);
    constexpr std::size_t kDraws = 20'000;
    double sum = 0.0;
    for (std::size_t i = 0; i < kDraws; ++i)
      sum += sample_session_hours(spec, rng);
    const double mean = sum / static_cast<double>(kDraws);
    EXPECT_NEAR(mean, spec.mean_hours, spec.mean_hours * 0.15)
        << "model " << static_cast<int>(model) << " drifted";
  }
}

TEST_P(SessionSweep, ParetoCarriesMoreTailMassThanExponential) {
  // P(X > 5 * mean): exponential e^-5 ~ 0.7%; Pareto(alpha = 1.5)
  // (x_m / 5)^1.5 ~ 1.7%. The ordering must hold at every seed.
  const double mean = 1.0;
  const double cut = 5.0 * mean;
  constexpr std::size_t kDraws = 20'000;
  std::size_t exp_tail = 0;
  std::size_t pareto_tail = 0;
  for (const bool pareto : {false, true}) {
    SessionSpec spec;
    spec.model = pareto ? SessionModel::Pareto : SessionModel::Exponential;
    spec.mean_hours = mean;
    spec.pareto_alpha = 1.5;
    Rng rng(0x7a11 + GetParam());
    std::size_t& tail = pareto ? pareto_tail : exp_tail;
    for (std::size_t i = 0; i < kDraws; ++i)
      if (sample_session_hours(spec, rng) > cut) ++tail;
  }
  EXPECT_GT(exp_tail, 0u);  // the cut is reachable by both
  EXPECT_GT(pareto_tail, exp_tail)
      << "heavy tail not heavier: pareto " << pareto_tail << " vs exp "
      << exp_tail;
}

TEST_P(SessionSweep, SameSeedSameStreamDifferentSeedDiverges) {
  for (const SessionModel model : kAllModels) {
    SessionSpec spec;
    spec.model = model;
    Rng a(GetParam());
    Rng b(GetParam());
    Rng c(GetParam() + 0x9999);
    bool diverged = false;
    for (int i = 0; i < 200; ++i) {
      const double xa = sample_session_hours(spec, a);
      const double xb = sample_session_hours(spec, b);
      const double xc = sample_session_hours(spec, c);
      ASSERT_EQ(xa, xb) << "equal seeds diverged at draw " << i;
      diverged = diverged || xa != xc;
    }
    EXPECT_TRUE(diverged) << "different seeds produced equal streams";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(SessionSampler, DegenerateParametersAreWellDefined) {
  // Zero rate: a mean of 0 collapses every model to the minimum.
  for (const SessionModel model : kAllModels) {
    SessionSpec zero;
    zero.model = model;
    zero.mean_hours = 0.0;
    Rng rng(0xdead);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(sample_session_hours(zero, rng), 0.0);
      EXPECT_EQ(sample_session(zero, rng), SimDuration{1})
          << "durations are clamped away from 0";
    }
  }
  // min == max pins every sample to that constant, any model.
  for (const SessionModel model : kAllModels) {
    SessionSpec pinned;
    pinned.model = model;
    pinned.min_hours = 0.25;
    pinned.max_hours = 0.25;
    Rng rng(0xbeef);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(sample_session_hours(pinned, rng), 0.25);
      EXPECT_EQ(sample_session(pinned, rng), kHour / 4);
    }
  }
  // Degenerate parameters still consume the model's full draw budget:
  // the stream position cannot depend on parameter values.
  for (const SessionModel model : kAllModels) {
    SessionSpec zero;
    zero.model = model;
    zero.mean_hours = 0.0;
    SessionSpec live;
    live.model = model;
    Rng a(42);
    Rng b(42);
    (void)sample_session_hours(zero, a);
    (void)sample_session_hours(live, b);
    EXPECT_EQ(a.next_u64(), b.next_u64())
        << "draw budgets diverged for model " << static_cast<int>(model);
  }
}

}  // namespace
}  // namespace onion
