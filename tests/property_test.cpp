// Property-based and parameterized sweeps over the substrates:
// DDSR maintenance invariants across the whole policy matrix, graph
// metrics checked against brute-force recomputation, generator
// contracts, and uniform-encoding round trips. Each TEST_P instance is
// one point of a sweep the unit tests cannot cover one by one.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/ddsr.hpp"
#include "crypto/elligator_sim.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace onion {
namespace {

using core::DdsrEngine;
using core::DdsrPolicy;
using graph::Graph;
using graph::NodeId;

// ====================================================================
// DDSR invariant sweep: n x k x prune x victim x repair
// ====================================================================

struct DdsrCase {
  std::size_t n;
  std::size_t k;
  bool prune;
  DdsrPolicy::Victim victim;
  DdsrPolicy::Repair repair;
};

std::string case_name(const ::testing::TestParamInfo<DdsrCase>& info) {
  const DdsrCase& c = info.param;
  std::string out = "n";
  out += std::to_string(c.n);
  out += "k";
  out += std::to_string(c.k);
  out += c.prune ? "_prune" : "_noprune";
  out += c.victim == DdsrPolicy::Victim::HighestDegree ? "_hideg" : "_rand";
  out +=
      c.repair == DdsrPolicy::Repair::PairwiseFull ? "_full" : "_match";
  return out;
}

class DdsrSweep : public ::testing::TestWithParam<DdsrCase> {};

TEST_P(DdsrSweep, MaintenanceInvariantsHoldUnderChurn) {
  const DdsrCase c = GetParam();
  Rng rng(0xddd + c.n * 7 + c.k);
  Graph g = graph::random_regular(c.n, c.k, rng);
  DdsrPolicy policy;
  policy.dmin = c.k;
  policy.dmax = c.k;
  policy.prune = c.prune;
  policy.refill = true;
  policy.victim = c.victim;
  policy.repair = c.repair;
  DdsrEngine engine(g, policy, rng);

  const std::size_t deletions = c.n * 3 / 10;  // the paper's 30%
  for (std::size_t i = 0; i < deletions; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(
        alive[static_cast<std::size_t>(rng.uniform(alive.size()))]);

    // Invariant 1: adjacency only references alive nodes.
    if (i % 16 == 0) {
      for (const NodeId u : g.alive_nodes())
        for (const NodeId v : g.neighbors(u))
          ASSERT_TRUE(g.alive(v)) << "edge to tombstoned node";
    }
  }

  // Invariant 2: with pruning, every degree is within [0, dmax].
  if (c.prune) {
    for (const NodeId u : g.alive_nodes())
      EXPECT_LE(g.degree(u), policy.dmax);
  }

  // Invariant 3: counters match reality. Every edge in the graph was
  // accounted for by generation, repair, or refill minus removals.
  const auto& stats = engine.stats();
  const std::size_t expected_initial = c.n * c.k / 2;
  // Edges removed by node deletion are not individually counted, so
  // only a weaker consistency check is possible: additions recorded
  // must be at least (current - initial).
  EXPECT_GE(expected_initial + stats.repair_edges_added +
                stats.refill_edges_added,
            g.num_edges());
  EXPECT_EQ(stats.nodes_removed, deletions);

  // Invariant 4: self-healing holds the surviving graph together (the
  // paper's headline for gradual takedown at 30%).
  EXPECT_TRUE(graph::is_connected(g))
      << "self-healing lost connectivity at 30% deletions";
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, DdsrSweep,
    ::testing::Values(
        DdsrCase{60, 4, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{60, 4, false, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::Random,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{100, 6, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::RandomMatch},
        DdsrCase{200, 10, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull},
        DdsrCase{200, 10, false, DdsrPolicy::Victim::Random,
                 DdsrPolicy::Repair::RandomMatch},
        DdsrCase{200, 5, true, DdsrPolicy::Victim::HighestDegree,
                 DdsrPolicy::Repair::PairwiseFull}),
    case_name);

// ====================================================================
// Graph metric properties vs brute force
// ====================================================================

class MetricSweep : public ::testing::TestWithParam<std::uint64_t> {};

// All-pairs shortest paths by repeated BFS; the reference.
std::vector<std::vector<std::uint32_t>> apsp(const Graph& g) {
  std::vector<std::vector<std::uint32_t>> d;
  for (NodeId u = 0; u < g.capacity(); ++u) {
    if (g.alive(u))
      d.push_back(graph::bfs_distances(g, u));
    else
      d.emplace_back();
  }
  return d;
}

TEST_P(MetricSweep, DiameterMatchesBruteForce) {
  Rng rng(GetParam());
  Graph g = graph::erdos_renyi(40, 0.12, rng);
  const auto d = apsp(g);
  // Brute-force diameter of the largest component.
  const auto comps = graph::connected_components(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c)
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  std::uint32_t want = 0;
  for (NodeId u = 0; u < g.capacity(); ++u) {
    if (!g.alive(u) || comps.label[u] != target) continue;
    for (NodeId v = 0; v < g.capacity(); ++v) {
      if (!g.alive(v) || comps.label[v] != target) continue;
      if (d[u][v] != graph::kUnreachable) want = std::max(want, d[u][v]);
    }
  }
  EXPECT_EQ(graph::diameter_exact(g), want);
  // Double sweep lower-bounds the exact diameter and often equals it.
  Rng sweep_rng(GetParam() ^ 0xabc);
  const std::size_t estimate = graph::diameter_double_sweep(g, 4, sweep_rng);
  EXPECT_LE(estimate, want);
  EXPECT_GE(estimate + 2, want) << "double sweep is a tight estimator";
}

TEST_P(MetricSweep, SampledClosenessTracksExact) {
  Rng rng(GetParam() ^ 0x77);
  Graph g = graph::random_regular(60, 6, rng);
  const double exact = graph::average_closeness_exact(g);
  Rng sample_rng(GetParam() ^ 0x99);
  const double sampled =
      graph::average_closeness_sampled(g, 30, sample_rng);
  EXPECT_NEAR(sampled, exact, exact * 0.15);
}

TEST_P(MetricSweep, RegularGeneratorContract) {
  Rng rng(GetParam() ^ 0x1234);
  const std::size_t n = 30 + 2 * (GetParam() % 10);
  const std::size_t k = 3 + GetParam() % 4;
  if ((n * k) % 2 != 0) return;  // parity-infeasible combination
  Graph g = graph::random_regular(n, k, rng);
  for (const NodeId u : g.alive_nodes()) {
    EXPECT_EQ(g.degree(u), k);
    for (const NodeId v : g.neighbors(u)) {
      EXPECT_NE(u, v) << "no self loops";
      EXPECT_TRUE(g.has_edge(v, u)) << "undirected symmetry";
    }
  }
  EXPECT_EQ(g.num_edges(), n * k / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ====================================================================
// Uniform-encoding properties
// ====================================================================

class EncodingSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EncodingSweep, RoundTripsAtEverySize) {
  Rng rng(0xe11e + GetParam());
  Bytes key(32);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  Bytes plaintext(GetParam());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());

  const Bytes cell = crypto::uniform_encode(key, plaintext, rng);
  EXPECT_EQ(cell.size(), crypto::kUniformCellSize);
  const auto back = crypto::uniform_decode(key, cell);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, plaintext);
}

TEST_P(EncodingSweep, EveryBytePositionIsAuthenticated) {
  Rng rng(0xbadd + GetParam());
  const Bytes key = to_bytes("sweep-key");
  Bytes plaintext(GetParam());
  for (auto& b : plaintext) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes cell = crypto::uniform_encode(key, plaintext, rng);
  // Flip a pseudorandom position per instance; over the sweep this
  // covers nonce, ciphertext, and tag regions.
  for (int trial = 0; trial < 8; ++trial) {
    Bytes bad = cell;
    const std::size_t pos =
        static_cast<std::size_t>(rng.uniform(bad.size()));
    bad[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_FALSE(crypto::uniform_decode(key, bad).has_value())
        << "flip at " << pos << " went undetected";
  }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, EncodingSweep,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 64, 128,
                                           255, 256, 400,
                                           crypto::kUniformCellCapacity));

}  // namespace
}  // namespace onion
