// Tor substrate churn / guard / cookie tests: relays joining and leaving
// across consensus publications, services repairing introduction points,
// entry-guard pinning, and cookie-protected descriptor lookups end to
// end (paper Section III mechanics that the botnet rides on).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/simulator.hpp"
#include "tor/tor_network.hpp"

namespace onion::tor {
namespace {

TorConfig small_tor() {
  TorConfig cfg;
  cfg.num_relays = 16;
  return cfg;
}

crypto::RsaKeyPair service_key(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::rsa_generate(rng, 1024);
}

ServiceHandler echo_handler() {
  return [](BytesView request, const OnionAddress&) {
    return Bytes(request.begin(), request.end());
  };
}

TEST(Churn, NewRelayEntersNextConsensusWithoutHsdirFlag) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 1);
  const std::size_t before = tor.consensus().entries().size();
  const RelayId fresh = tor.add_relay();
  EXPECT_EQ(tor.consensus().entries().size(), before)
      << "joins at the *next* consensus";
  tor.refresh_consensus();
  EXPECT_EQ(tor.consensus().entries().size(), before + 1);
  // No HSDir flag for 25 hours.
  bool is_hsdir = false;
  for (const auto& e : tor.consensus().hsdirs())
    if (e.relay == fresh) is_hsdir = true;
  EXPECT_FALSE(is_hsdir);
  // After 25 h of uptime and a republication, the flag appears.
  sim.run_until(26 * kHour);
  tor.refresh_consensus();
  is_hsdir = false;
  for (const auto& e : tor.consensus().hsdirs())
    if (e.relay == fresh) is_hsdir = true;
  EXPECT_TRUE(is_hsdir);
}

TEST(Churn, RetiredRelayDropsOutAndStopsServing) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 2);
  const std::size_t before = tor.consensus().entries().size();
  tor.retire_relay(3);
  tor.refresh_consensus();
  EXPECT_EQ(tor.consensus().entries().size(), before - 1);
  for (const auto& e : tor.consensus().entries())
    EXPECT_NE(e.relay, RelayId{3});
}

TEST(Churn, ServiceSurvivesIntroPointRetirement) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 3);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(33);
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler());

  // Retire every relay the service introduced through.
  // (Descriptors still list them; maintenance must repair.)
  std::vector<RelayId> intros;
  for (const auto& replica : tor.responsible_hsdirs_now(addr))
    (void)replica;  // responsible HSDirs are not the intro points
  // Find intro points via a probe connection's descriptor instead:
  // simpler — retire relays 0..5 and let repair handle whichever were
  // chosen.
  for (RelayId r = 0; r < 6; ++r) tor.retire_relay(r);

  // Run past the next maintenance tick so intro points repair and
  // descriptors re-upload.
  sim.run_until(sim.now() + kConsensusInterval + kMinute);

  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("ping"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  EXPECT_TRUE(outcome.ok)
      << "service repaired its introduction points after churn";
}

TEST(Churn, HeavyChurnKeepsNetworkUsable) {
  sim::Simulator sim;
  TorConfig cfg = small_tor();
  cfg.num_relays = 24;
  TorNetwork tor(sim, cfg, 4);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(44);
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler());

  Rng rng(5);
  for (int wave = 0; wave < 4; ++wave) {
    // A third of the founding population rotates out; newcomers join.
    for (int i = 0; i < 3; ++i) {
      tor.retire_relay(static_cast<RelayId>(
          rng.uniform(cfg.num_relays)));
      tor.add_relay();
    }
    sim.run_until(sim.now() + kConsensusInterval + kMinute);
  }
  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("still-there?"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.reply, to_bytes("still-there?"));
}

TEST(Guards, EndpointPinsASmallStableGuardSet) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 6);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(55);
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler());

  for (int i = 0; i < 6; ++i) {
    ConnectResult outcome;
    tor.connect_and_send(client, addr, to_bytes("x"),
                         [&](const ConnectResult& r) { outcome = r; });
    sim.run();
    ASSERT_TRUE(outcome.ok);
  }
  const std::vector<RelayId> guards = tor.guards_of(client);
  EXPECT_EQ(guards.size(), tor.consensus().entries().size() > 3
                               ? std::size_t{3}
                               : guards.size());
}

TEST(Guards, DeadGuardIsReplaced) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 7);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(66);
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler());

  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("x"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  ASSERT_TRUE(outcome.ok);
  const std::vector<RelayId> before = tor.guards_of(client);
  ASSERT_FALSE(before.empty());
  for (const RelayId g : before) tor.retire_relay(g);
  tor.refresh_consensus();

  tor.connect_and_send(client, addr, to_bytes("y"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  EXPECT_TRUE(outcome.ok);
  const std::vector<RelayId> after = tor.guards_of(client);
  for (const RelayId g : after)
    EXPECT_TRUE(std::find(before.begin(), before.end(), g) ==
                before.end())
        << "every dead guard was replaced";
}

TEST(Cookies, ClientWithCookieConnects) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 8);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(77);
  const Bytes cookie = to_bytes("sixteen-byte-ck!");
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler(), cookie);

  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("auth ok"),
                       [&](const ConnectResult& r) { outcome = r; },
                       cookie);
  sim.run();
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.reply, to_bytes("auth ok"));
}

TEST(Cookies, ClientWithoutCookieCannotEvenFindTheDescriptor) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 9);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(88);
  const Bytes cookie = to_bytes("sixteen-byte-ck!");
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler(), cookie);

  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("no auth"),
                       [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(*outcome.error, ConnectError::DescriptorNotFound)
      << "wrong descriptor IDs: the lookup dead-ends at the HSDirs";
}

TEST(Cookies, WrongCookieFailsToo) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 10);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const auto key = service_key(99);
  const OnionAddress addr = tor.publish_service(
      host, key, echo_handler(), to_bytes("the-right-cookie"));

  ConnectResult outcome;
  tor.connect_and_send(client, addr, to_bytes("guess"),
                       [&](const ConnectResult& r) { outcome = r; },
                       to_bytes("a-wrong-cookie!!"));
  sim.run();
  ASSERT_FALSE(outcome.ok);
  EXPECT_EQ(*outcome.error, ConnectError::DescriptorNotFound);
}

TEST(Cookies, CookieHsdirSetsDiffer) {
  sim::Simulator sim;
  TorNetwork tor(sim, small_tor(), 11);
  const EndpointId host = tor.create_endpoint();
  const auto key = service_key(111);
  const Bytes cookie = to_bytes("sixteen-byte-ck!");
  const OnionAddress addr =
      tor.publish_service(host, key, echo_handler(), cookie);
  const auto with = tor.responsible_hsdirs_now(addr, cookie);
  const auto without = tor.responsible_hsdirs_now(addr);
  EXPECT_NE(with, without)
      << "an outsider computes the wrong responsible HSDirs";
}

}  // namespace
}  // namespace onion::tor
