// Discrete-event simulator tests: ordering, tie-breaking, run_until
// semantics, determinism.
#include <gtest/gtest.h>

#include <string>

#include "sim/simulator.hpp"

namespace onion::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTimeFifoOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleInIsRelative) {
  Simulator s;
  SimTime fired = 0;
  s.schedule_at(100, [&] {
    s.schedule_in(50, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 150u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.schedule_at(100, [&] {
    EXPECT_THROW(s.schedule_at(50, [] {}), ContractViolation);
  });
  s.run();
}

TEST(Simulator, RejectsNullHandler) {
  Simulator s;
  EXPECT_THROW(s.schedule_at(1, nullptr), ContractViolation);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(s.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 20u);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockWithoutEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500u);
}

TEST(Simulator, StepExecutesOne) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, EventsCanCascade) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_in(1, recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.now(), 99u);
}

TEST(Simulator, MaxEventsGuardStopsRunaway) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_EQ(s.run(1000), 1000u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, MaxEventsGuardWarnsInsteadOfMasqueradingAsConvergence) {
  Simulator s;
  std::function<void()> forever = [&] { s.schedule_in(1, forever); };
  s.schedule_at(0, forever);
  testing::internal::CaptureStderr();
  EXPECT_EQ(s.run(100), 100u);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("max_events"), std::string::npos) << err;
  EXPECT_NE(err.find("WARN"), std::string::npos) << err;
}

TEST(Simulator, QuietRunDoesNotWarn) {
  Simulator s;
  s.schedule_at(10, [] {});
  testing::internal::CaptureStderr();
  s.run();
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST(Simulator, RunUntilWarnsWhenCappedBeforeDeadline) {
  Simulator s;
  for (int i = 0; i < 10; ++i) s.schedule_at(static_cast<SimTime>(i), [] {});
  testing::internal::CaptureStderr();
  EXPECT_EQ(s.run_until(100, 3), 3u);
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("max_events"), std::string::npos) << err;
  // A capped run must NOT fast-forward past still-queued events: the clock
  // stays at the last executed event so time never moves backwards.
  EXPECT_EQ(s.now(), 2u);
  s.run();
  EXPECT_EQ(s.now(), 9u);
  EXPECT_EQ(s.run_until(100), 0u);
  EXPECT_EQ(s.now(), 100u);
}

TEST(Simulator, RunUntilAdvancesClockPastDaemonOnlyQueue) {
  Simulator s;
  int daemon_fired = 0;
  s.schedule_daemon_at(100, [&] { ++daemon_fired; });
  s.schedule_daemon_at(900, [&] { ++daemon_fired; });
  // Daemons inside the window fire; the one past the deadline stays queued,
  // and the clock advances to exactly the deadline, not the daemon's time.
  EXPECT_EQ(s.run_until(500), 1u);
  EXPECT_EQ(daemon_fired, 1);
  EXPECT_EQ(s.now(), 500u);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.pending_live(), 0u);
}

TEST(Simulator, RunIgnoresDaemonOnlyQueue) {
  Simulator s;
  int daemon_fired = 0;
  s.schedule_daemon_at(10, [&] { ++daemon_fired; });
  // run() exits immediately with no live work; the daemon stays pending.
  EXPECT_EQ(s.run(), 0u);
  EXPECT_EQ(daemon_fired, 0);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, DeterministicWithSameSeed) {
  auto trace = [](std::uint64_t seed) {
    Simulator s;
    Rng rng(seed);
    std::vector<SimTime> fire_times;
    for (int i = 0; i < 50; ++i) {
      s.schedule_at(rng.uniform(1000),
                    [&fire_times, &s] { fire_times.push_back(s.now()); });
    }
    s.run();
    return fire_times;
  };
  EXPECT_EQ(trace(77), trace(77));
  EXPECT_NE(trace(77), trace(78));
}

TEST(LatencyModelTest, SampleWithinBounds) {
  Rng rng(40);
  const LatencyModel model{.base = 100, .jitter = 50};
  for (int i = 0; i < 1000; ++i) {
    const SimDuration d = model.sample(rng);
    EXPECT_GE(d, 100u);
    EXPECT_LE(d, 150u);
  }
}

TEST(LatencyModelTest, ZeroJitterIsConstant) {
  Rng rng(41);
  const LatencyModel model{.base = 42, .jitter = 0};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(rng), 42u);
}

}  // namespace
}  // namespace onion::sim
