// Baseline tests: Table I reproduced in running code — every legacy
// family decrypts, every one replays, the unsigned ones are hijackable —
// plus the centralized-C&C contrast model.
#include <gtest/gtest.h>

#include "baselines/centralized.hpp"
#include "baselines/legacy.hpp"

namespace onion::baselines {
namespace {

TEST(TableOne, ProfilesMatchPaper) {
  EXPECT_STREQ(profile(LegacyFamily::Miner).crypto, "none");
  EXPECT_STREQ(profile(LegacyFamily::Miner).signing, "none");
  EXPECT_STREQ(profile(LegacyFamily::Storm).crypto, "XOR");
  EXPECT_STREQ(profile(LegacyFamily::Storm).signing, "none");
  EXPECT_STREQ(profile(LegacyFamily::ZeroAccessV1).crypto, "RC4");
  EXPECT_STREQ(profile(LegacyFamily::ZeroAccessV1).signing, "RSA 512");
  EXPECT_STREQ(profile(LegacyFamily::Zeus).crypto, "chained XOR");
  EXPECT_STREQ(profile(LegacyFamily::Zeus).signing, "RSA 2048");
  for (const LegacyFamily f : all_legacy_families())
    EXPECT_TRUE(profile(f).replayable) << profile(f).name;
}

class LegacyFamilySweep : public ::testing::TestWithParam<LegacyFamily> {};

TEST_P(LegacyFamilySweep, CommandsDecodeCorrectly) {
  Rng rng(1);
  const LegacyController controller(GetParam(), rng);
  LegacyBot bot(controller);
  const auto decoded = bot.accept(controller.make_command("ddos host-a"));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "ddos host-a");
  EXPECT_EQ(bot.executed_count(), 1u);
}

TEST_P(LegacyFamilySweep, ReplayExecutesTwice) {
  // Table I "Replay = yes" for every family: the same captured wire
  // drives the bot twice. (Contrast: BotnetTest.ReplayedDirectCommand-
  // Rejected for OnionBot.)
  Rng rng(2);
  const LegacyController controller(GetParam(), rng);
  LegacyBot bot(controller);
  const LegacyWire captured = controller.make_command("spam run");
  EXPECT_TRUE(bot.accept(captured).has_value());
  EXPECT_TRUE(bot.accept(captured).has_value()) << "replay accepted";
  EXPECT_EQ(bot.executed_count(), 2u);
}

TEST_P(LegacyFamilySweep, GarbageRejected) {
  Rng rng(3);
  const LegacyController controller(GetParam(), rng);
  LegacyBot bot(controller);
  LegacyWire garbage;
  garbage.bytes = to_bytes("complete nonsense bytes");
  if (GetParam() == LegacyFamily::Miner) {
    // Plaintext protocol: only the magic check protects it.
    EXPECT_FALSE(bot.accept(garbage).has_value());
  } else {
    EXPECT_FALSE(bot.accept(garbage).has_value());
  }
  EXPECT_EQ(bot.executed_count(), 0u);
}

TEST_P(LegacyFamilySweep, ForgeryMatchesSigningColumn) {
  // Unsigned families execute forged commands; signed ones refuse.
  Rng rng(4);
  const LegacyController controller(GetParam(), rng);
  LegacyBot bot(controller);
  const LegacyWire forged = forge_command(controller, "rm -rf /");
  const bool executed = bot.accept(forged).has_value();
  EXPECT_EQ(executed, hijackable(GetParam())) << profile(GetParam()).name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, LegacyFamilySweep,
    ::testing::Values(LegacyFamily::Miner, LegacyFamily::Storm,
                      LegacyFamily::ZeroAccessV1, LegacyFamily::Zeus),
    [](const auto& info) {
      std::string name = profile(info.param).name;
      for (char& c : name)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(TableOne, HijackabilityColumn) {
  EXPECT_TRUE(hijackable(LegacyFamily::Miner));
  EXPECT_TRUE(hijackable(LegacyFamily::Storm));
  EXPECT_FALSE(hijackable(LegacyFamily::ZeroAccessV1));
  EXPECT_FALSE(hijackable(LegacyFamily::Zeus));
}

TEST(TableOne, TamperedSignedWireRejected) {
  Rng rng(5);
  const LegacyController zeus(LegacyFamily::Zeus, rng);
  LegacyBot bot(zeus);
  LegacyWire wire = zeus.make_command("update config");
  wire.bytes[3] ^= 0x01;  // corrupt the signature field
  EXPECT_FALSE(bot.accept(wire).has_value());
}

TEST(Centralized, BroadcastReachesAllBots) {
  CentralizedBotnet net(100);
  EXPECT_EQ(net.broadcast("attack"), 100u);
}

TEST(Centralized, SeizureIsTotal) {
  // The single point of failure (paper Section II): one takedown, zero
  // deliveries — versus OnionBot surviving 30% takedowns.
  CentralizedBotnet net(100);
  net.broadcast("attack");
  net.seize_cnc();
  EXPECT_EQ(net.broadcast("attack again"), 0u);
  EXPECT_TRUE(net.cnc_seized());
}

TEST(Centralized, FlowLogExposesEveryBot) {
  CentralizedBotnet net(50);
  net.broadcast("attack");
  EXPECT_EQ(net.bots_exposed(), 50u)
      << "plain C&C traffic enumerates the botnet to any observer";
  EXPECT_EQ(net.flow_log().size(), 100u) << "two flows per bot";
}

TEST(Centralized, NoTrafficNoExposure) {
  CentralizedBotnet net(50);
  EXPECT_EQ(net.bots_exposed(), 0u);
}

}  // namespace
}  // namespace onion::baselines
