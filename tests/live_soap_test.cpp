// Live-stack SOAP tests (paper §VI-B end to end): real clone hidden
// services containing a live message-passing botnet over simulated Tor —
// and the §VII-A probing defense repelling the same campaign.
#include <gtest/gtest.h>

#include "crypto/elligator_sim.hpp"
#include "graph/metrics.hpp"
#include "mitigation/live_soap.hpp"

namespace onion::mitigation {
namespace {

core::Botnet::Params live_params(bool probing, std::uint64_t seed = 21) {
  core::Botnet::Params p;
  p.num_bots = 14;
  p.initial_degree = 4;
  p.seed = seed;
  p.tor.num_relays = 24;
  p.bot.dmin = 3;
  p.bot.dmax = 5;
  p.bot.heartbeat_interval = 60 * kSecond;
  p.bot.non_share_interval = 3 * kMinute;
  p.bot.probe_peers = probing;
  return p;
}

TEST(LiveSoap, CaptureSeedsDiscoveryFromBotMemory) {
  core::Botnet net(live_params(false));
  LiveSoapCampaign campaign(net, {});
  campaign.capture(0);
  // The captured bot knows its own address, its peers, and (via NoN)
  // its peers' peers.
  EXPECT_GE(campaign.discovered().size(),
            1 + net.bot(0).peers().size());
  EXPECT_TRUE(campaign.discovered().count(net.bot(0).address()) > 0);
}

TEST(LiveSoap, ClonesGetAcceptedByEvictingBenignPeers) {
  core::Botnet net(live_params(false));
  LiveSoapCampaign campaign(net, {});
  campaign.capture(0);
  const std::size_t sent = campaign.step();
  EXPECT_GT(sent, 0u);
  net.run_for(5 * kMinute);
  EXPECT_GT(campaign.acceptances(), 0u)
      << "low-declared-degree clones win the acceptance rule";
}

TEST(LiveSoap, CampaignContainsTheBasicBotnet) {
  core::Botnet net(live_params(false));
  LiveSoapCampaign campaign(net, {});
  campaign.capture(0);
  for (int round = 0; round < 25; ++round) {
    campaign.step();
    net.run_for(4 * kMinute);
  }
  // The paper's Figure 7 endgame: (nearly) every bot clone-ringed and
  // the honest overlay shredded.
  EXPECT_GE(campaign.contained_count(), net.num_bots() - 2)
      << "basic OnionBots fall to SOAP";
  const graph::Graph overlay = net.overlay_snapshot();
  EXPECT_LT(overlay.num_edges(), 4u)
      << "honest overlay essentially gone";

  // Broadcast reach collapses: injected commands die inside the clone
  // ring. (Fanout lands on contained bots whose only links are clones.)
  core::Command cmd;
  cmd.type = core::CommandType::Ddos;
  net.master().broadcast(cmd, 2);
  net.run_for(15 * kMinute);
  EXPECT_LT(net.count_executed(core::CommandType::Ddos), net.num_bots())
      << "the flood no longer reaches the whole botnet";
}

TEST(LiveSoap, ProbingDefenseRepelsTheSameCampaign) {
  core::Botnet net(live_params(true));  // §VII-A probing ON
  LiveSoapCampaign campaign(net, {});
  campaign.capture(0);
  for (int round = 0; round < 25; ++round) {
    campaign.step();
    net.run_for(4 * kMinute);
  }
  EXPECT_LT(campaign.contained_count(), net.num_bots() / 2)
      << "probing drops clones every heartbeat";
  // The botnet still functions: a broadcast reaches (almost) everyone.
  core::Command cmd;
  cmd.type = core::CommandType::Compute;
  net.master().broadcast(cmd, 3);
  net.run_for(15 * kMinute);
  EXPECT_GE(net.count_executed(core::CommandType::Compute),
            net.num_bots() - 2)
      << "the probed botnet keeps operating under the same campaign";
}

TEST(LiveSoap, ClonesNeverRelayBroadcasts) {
  // A broadcast envelope delivered straight to a clone dies there: the
  // clone answers blandly and forwards nothing, so no bot ever relays
  // (legal liability, paper SS VII-B).
  core::Botnet net(live_params(false));
  LiveSoapCampaign campaign(net, {});
  campaign.capture(0);
  campaign.step();
  net.run_for(5 * kMinute);
  ASSERT_GT(campaign.clones_created(), 0u);

  // Find one clone address from the campaign's own bookkeeping.
  tor::OnionAddress clone_addr;
  bool found = false;
  for (std::size_t i = 0; i < net.num_bots() && !found; ++i) {
    for (const auto& [addr, info] : net.bot(i).peers()) {
      if (campaign.is_clone(addr)) {
        clone_addr = addr;
        found = true;
        break;
      }
    }
  }
  ASSERT_TRUE(found) << "some bot peers with a clone by now";

  Rng rng(9);
  const Bytes envelope = crypto::uniform_encode(
      net.master().group_key(), to_bytes("not-a-real-command"), rng);
  const tor::EndpointId sender = net.tor().create_endpoint();
  tor::ConnectResult outcome;
  net.tor().connect_and_send(
      sender, clone_addr, core::encode_broadcast(envelope),
      [&](const tor::ConnectResult& r) { outcome = r; });
  net.run_for(5 * kMinute);
  ASSERT_TRUE(outcome.ok) << "the clone answered";
  std::size_t total_relays = 0;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    total_relays += net.bot(i).broadcasts_relayed();
  EXPECT_EQ(total_relays, 0u) << "the envelope never escaped the clone";
}

TEST(LiveSoap, ChallengeAnswerRequiresGroupKey) {
  // Unit-level check of the §VII-A primitive the defense rides on.
  Rng rng(3);
  Bytes group_key(32, 0x42);
  Bytes nonce(16, 0x07);
  const Bytes good = core::probe_challenge_answer(group_key, nonce);
  Bytes other_key(32, 0x43);
  const Bytes bad = core::probe_challenge_answer(other_key, nonce);
  EXPECT_NE(good, bad);
  EXPECT_EQ(good.size(), 8u);
  // And the envelope hides the nonce from non-holders.
  const Bytes envelope = crypto::uniform_encode(group_key, nonce, rng);
  EXPECT_FALSE(crypto::uniform_decode(other_key, envelope).has_value());
}

}  // namespace
}  // namespace onion::mitigation
