// gridworker's argument layer (tools/gridworker/cli.hpp): the strict
// numeric parsers that replaced std::stoull/std::stod, --cells
// deduplication, role exclusivity, the --faults/ONION_GRID_FAULTS
// precedence, and the --replay-grid flag combinations — all driven
// in-process, no binary forked.
#include "tools/gridworker/cli.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace onion::gridcli {
namespace {

using scenario::CellAssignment;
using scenario::FaultSpec;

std::string error_of(const std::vector<std::string>& args,
                     const char* env = nullptr) {
  try {
    parse_args(args, env);
  } catch (const CliError& e) {
    return e.what();
  }
  return {};
}

// --- parse_u64: the std::stoull replacement ---------------------------

TEST(ParseU64, AcceptsPlainUnsignedIntegers) {
  EXPECT_EQ(parse_u64("0", "--workers"), 0u);
  EXPECT_EQ(parse_u64("42", "--workers"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615", "--workers"),
            18446744073709551615ull);
}

TEST(ParseU64, RejectsPartialTokens) {
  // std::stoull("3x7") returned 3 — a worker silently ran the wrong
  // cell. The strict parser demands full consumption.
  EXPECT_THROW(parse_u64("3x7", "--cells"), CliError);
  EXPECT_THROW(parse_u64("12 ", "--cells"), CliError);
  EXPECT_THROW(parse_u64("0x10", "--cells"), CliError);
}

TEST(ParseU64, RejectsSignsEmptyAndGarbage) {
  // std::stoull("-1") wrapped to 2^64-1; from_chars on unsigned refuses
  // the sign outright.
  EXPECT_THROW(parse_u64("-1", "--workers"), CliError);
  EXPECT_THROW(parse_u64("+3", "--workers"), CliError);
  EXPECT_THROW(parse_u64("", "--workers"), CliError);
  EXPECT_THROW(parse_u64("abc", "--workers"), CliError);
}

TEST(ParseU64, RejectsOutOfRange) {
  EXPECT_THROW(parse_u64("18446744073709551616", "--workers"), CliError);
}

TEST(ParseU64, ErrorNamesFlagAndToken) {
  try {
    parse_u64("3x7", "--cells");
    FAIL() << "expected CliError";
  } catch (const CliError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--cells"), std::string::npos) << what;
    EXPECT_NE(what.find("'3x7'"), std::string::npos) << what;
  }
}

// --- parse_positive_seconds: the std::stod replacement ----------------

TEST(ParsePositiveSeconds, AcceptsPositiveDurations) {
  EXPECT_DOUBLE_EQ(parse_positive_seconds("0.5", "--timeout"), 0.5);
  EXPECT_DOUBLE_EQ(parse_positive_seconds("120", "--timeout"), 120.0);
  EXPECT_DOUBLE_EQ(parse_positive_seconds("1e-3", "--timeout"), 1e-3);
}

TEST(ParsePositiveSeconds, RejectsZeroNegativeAndNonFinite) {
  EXPECT_THROW(parse_positive_seconds("0", "--timeout"), CliError);
  EXPECT_THROW(parse_positive_seconds("-1", "--timeout"), CliError);
  EXPECT_THROW(parse_positive_seconds("inf", "--backoff-max"), CliError);
  EXPECT_THROW(parse_positive_seconds("nan", "--backoff-base"), CliError);
}

TEST(ParsePositiveSeconds, RejectsPartialTokensAndEmpty) {
  EXPECT_THROW(parse_positive_seconds("1.5x", "--timeout"), CliError);
  EXPECT_THROW(parse_positive_seconds("", "--timeout"), CliError);
}

// --- parse_cells: strict parsing + deduplication ----------------------

TEST(ParseCells, ParsesIndicesWithOptionalAttempts) {
  std::vector<std::string> warnings;
  const std::vector<CellAssignment> cells =
      parse_cells("0,3:1,5", warnings);
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0].cell_index, 0u);
  EXPECT_EQ(cells[0].attempt, 0u);
  EXPECT_EQ(cells[1].cell_index, 3u);
  EXPECT_EQ(cells[1].attempt, 1u);
  EXPECT_EQ(cells[2].cell_index, 5u);
  EXPECT_TRUE(warnings.empty());
}

TEST(ParseCells, RejectsMalformedEntries) {
  std::vector<std::string> warnings;
  EXPECT_THROW(parse_cells("3x7", warnings), CliError);
  EXPECT_THROW(parse_cells("0,,5", warnings), CliError);
  EXPECT_THROW(parse_cells("3:", warnings), CliError);
  EXPECT_THROW(parse_cells("-1", warnings), CliError);
}

TEST(ParseCells, DeduplicatesKeepingHighestAttemptAndWarns) {
  // Two assignments for one index would race on the same frame path.
  std::vector<std::string> warnings;
  const std::vector<CellAssignment> cells =
      parse_cells("2:1,7,2:3,2", warnings);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].cell_index, 2u);
  EXPECT_EQ(cells[0].attempt, 3u);  // max of 1, 3, 0
  EXPECT_EQ(cells[1].cell_index, 7u);
  ASSERT_EQ(warnings.size(), 2u);  // one warning per duplicate entry
  EXPECT_NE(warnings[0].find("cell 2"), std::string::npos);
}

// --- parse_args: roles, numeric routing, combinations -----------------

TEST(ParseArgs, ExactlyOneRoleRequired) {
  EXPECT_NE(error_of({"--grid", "small8", "--results-dir", "d"}), "");
  const std::string two = error_of(
      {"--coordinate", "--worker", "--grid", "small8", "--results-dir", "d"});
  EXPECT_NE(two.find("--coordinate"), std::string::npos) << two;
  EXPECT_NE(two.find("--worker"), std::string::npos) << two;
}

TEST(ParseArgs, NumericFlagsRouteThroughStrictParsers) {
  const std::vector<std::string> base = {"--coordinate", "--grid", "small8",
                                         "--results-dir", "d"};
  auto with = [&](const std::string& flag, const std::string& value) {
    std::vector<std::string> args = base;
    args.push_back(flag);
    args.push_back(value);
    return error_of(args);
  };
  EXPECT_NE(with("--workers", "-1").find("'-1'"), std::string::npos);
  EXPECT_NE(with("--workers", "4q").find("'4q'"), std::string::npos);
  EXPECT_NE(with("--max-attempts", "3x7").find("'3x7'"), std::string::npos);
  EXPECT_NE(with("--timeout", "0").find("--timeout"), std::string::npos);
  EXPECT_NE(with("--timeout", "-5").find("--timeout"), std::string::npos);
  EXPECT_NE(with("--backoff-base", "0").find("--backoff-base"),
            std::string::npos);
  EXPECT_NE(with("--backoff-max", "-0.5").find("--backoff-max"),
            std::string::npos);
  EXPECT_EQ(with("--workers", "4"), "");
}

TEST(ParseArgs, WorkersAndMaxAttemptsRequireAtLeastOne) {
  EXPECT_NE(error_of({"--coordinate", "--grid", "small8", "--results-dir",
                      "d", "--workers", "0"}),
            "");
  EXPECT_NE(error_of({"--coordinate", "--grid", "small8", "--results-dir",
                      "d", "--max-attempts", "0"}),
            "");
}

TEST(ParseArgs, FaultsFlagWinsOverEnvironment) {
  const Options options = parse_args(
      {"--worker", "--grid", "small8", "--results-dir", "d", "--cells", "0",
       "--faults", "crash@2:0"},
      "hang@5:1");
  const FaultSpec* f = options.config.faults.match(2, 0);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->kind, FaultSpec::Kind::kCrash);
  EXPECT_EQ(options.config.faults.match(5, 1), nullptr);
}

TEST(ParseArgs, EnvironmentFaultsApplyWhenFlagAbsent) {
  const Options options = parse_args(
      {"--worker", "--grid", "small8", "--results-dir", "d", "--cells", "0"},
      "hang@5:1");
  EXPECT_FALSE(options.config.faults.empty());
  EXPECT_NE(options.config.faults.match(5, 1), nullptr);
}

TEST(ParseArgs, BadFaultsNameTheirSource) {
  const std::string flag_error =
      error_of({"--worker", "--grid", "g", "--results-dir", "d", "--cells",
                "0", "--faults", "bogus"});
  EXPECT_NE(flag_error.find("--faults"), std::string::npos) << flag_error;
  const std::string env_error = error_of(
      {"--worker", "--grid", "g", "--results-dir", "d", "--cells", "0"},
      "bogus");
  EXPECT_NE(env_error.find("ONION_GRID_FAULTS"), std::string::npos)
      << env_error;
}

TEST(ParseArgs, EnvironmentFaultsIgnoredByNonExecutingRoles) {
  // A stale ONION_GRID_FAULTS must not break --list-grids/--show-report.
  EXPECT_EQ(error_of({"--list-grids"}, "bogus"), "");
  EXPECT_EQ(error_of({"--show-report", "--results-dir", "d"}, "bogus"), "");
}

TEST(ParseArgs, WorkerNeedsNonEmptyCells) {
  EXPECT_NE(error_of({"--worker", "--grid", "small8", "--results-dir", "d"}),
            "");
  EXPECT_NE(error_of({"--coordinate", "--grid", "small8", "--results-dir",
                      "d", "--cells", "0"}),
            "");  // --cells only applies to --worker
}

// --- --replay-grid combinations ---------------------------------------

TEST(ParseArgs, ReplayGridCoordinateParses) {
  const Options options = parse_args(
      {"--replay-grid", "--coordinate", "--trace", "a.otrace", "--trace",
       "b.otrace", "--replay-seeds", "1,2,3,4", "--results-dir", "d",
       "--workers", "4"},
      nullptr);
  EXPECT_EQ(options.role, Role::kCoordinate);
  EXPECT_TRUE(options.replay_grid);
  ASSERT_EQ(options.traces.size(), 2u);
  EXPECT_EQ(options.traces[0], "a.otrace");
  EXPECT_EQ(options.replay_seeds,
            (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_EQ(options.config.workers, 4u);
  EXPECT_EQ(options.config.results_dir, "d");
}

TEST(ParseArgs, ReplayGridExcludesNamedGrids) {
  const std::string e =
      error_of({"--replay-grid", "--coordinate", "--grid", "small8",
                "--trace", "a.otrace", "--results-dir", "d"});
  EXPECT_NE(e.find("--replay-grid"), std::string::npos) << e;
}

TEST(ParseArgs, ReplayGridNeedsATrace) {
  EXPECT_NE(
      error_of({"--replay-grid", "--coordinate", "--results-dir", "d"}), "");
}

TEST(ParseArgs, ReplayFlagsRequireReplayGrid) {
  EXPECT_NE(error_of({"--coordinate", "--grid", "small8", "--results-dir",
                      "d", "--trace", "a.otrace"}),
            "");
  EXPECT_NE(error_of({"--coordinate", "--grid", "small8", "--results-dir",
                      "d", "--replay-seeds", "1,2"}),
            "");
}

TEST(ParseArgs, MergeIsAReplayGridMode) {
  EXPECT_NE(error_of({"--merge", "--results-dir", "d"}), "");
  const Options options = parse_args(
      {"--replay-grid", "--merge", "--trace", "a.otrace", "--results-dir",
       "d"},
      nullptr);
  EXPECT_EQ(options.role, Role::kMerge);
}

TEST(ParseArgs, ReplaySeedsRejectMalformedLists) {
  const std::vector<std::string> base = {"--replay-grid", "--coordinate",
                                         "--trace", "a.otrace",
                                         "--results-dir", "d"};
  auto with_seeds = [&](const std::string& seeds) {
    std::vector<std::string> args = base;
    args.push_back("--replay-seeds");
    args.push_back(seeds);
    return error_of(args);
  };
  EXPECT_NE(with_seeds("1,-2"), "");
  EXPECT_NE(with_seeds("1,,3"), "");
  EXPECT_NE(with_seeds("1,2x"), "");
  EXPECT_EQ(with_seeds("1,2,3"), "");
}

TEST(ParseArgs, RecordTraceNeedsAGrid) {
  EXPECT_NE(error_of({"--record-trace", "t.otrace"}), "");
  const Options options = parse_args(
      {"--record-trace", "t.otrace", "--grid", "small8", "--cell", "3"},
      nullptr);
  EXPECT_EQ(options.role, Role::kRecordTrace);
  EXPECT_EQ(options.record_trace_path, "t.otrace");
  EXPECT_EQ(options.record_cell, 3u);
}

TEST(ParseArgs, HelpShortCircuits) {
  EXPECT_EQ(parse_args({"--help"}, nullptr).role, Role::kHelp);
  EXPECT_EQ(parse_args({"-h", "--bogus-never-parsed"}, nullptr).role,
            Role::kHelp);
}

TEST(ParseArgs, UnknownArgumentAndMissingValueAreErrors) {
  EXPECT_NE(error_of({"--bogus"}), "");
  EXPECT_NE(error_of({"--coordinate", "--grid"}), "");
}

}  // namespace
}  // namespace onion::gridcli
