// HSDir-takeover mitigation tests (paper §VI-A): positioning denying
// relays after a descriptor ID silences a *static* hidden service — but
// costs 25 hours of relay uptime, and OnionBot address rotation escapes
// it entirely because next period's address derives from the secret K_B.
#include <gtest/gtest.h>

#include "crypto/kdf.hpp"
#include "mitigation/hsdir_takeover.hpp"
#include "sim/simulator.hpp"
#include "tor/tor_network.hpp"

namespace onion::mitigation {
namespace {

using tor::ConnectError;
using tor::ConnectResult;
using tor::EndpointId;
using tor::OnionAddress;
using tor::TorConfig;
using tor::TorNetwork;

struct Fixture {
  sim::Simulator sim;
  TorNetwork tor;
  Fixture() : tor(sim, TorConfig{.num_relays = 25}, 0xabc) {}

  ConnectResult connect(EndpointId client, const OnionAddress& addr) {
    ConnectResult out;
    bool done = false;
    tor.connect_and_send(client, addr, to_bytes("hi"),
                         [&](const ConnectResult& r) {
                           out = r;
                           done = true;
                         });
    sim.run_until(sim.now() + 10 * kMinute);
    EXPECT_TRUE(done);
    return out;
  }
};

crypto::RsaKeyPair key_of_seed(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::rsa_generate(rng, 1024);
}

TEST(HsdirTakeover, DeniesStaticServiceAfterPositioningDelay) {
  Fixture f;
  const auto key = key_of_seed(1);
  const EndpointId host = f.tor.create_endpoint();
  const EndpointId client = f.tor.create_endpoint();
  const OnionAddress addr = f.tor.publish_service(
      host, key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });

  // Reachable before the attack.
  EXPECT_TRUE(f.connect(client, addr).ok);

  // Attack the descriptor period that will be active at t = 30 h.
  const TakeoverReport report =
      takeover_hsdirs(f.tor, addr, /*when=*/30 * kHour);
  EXPECT_EQ(report.injected.size(),
            static_cast<std::size_t>(tor::kReplicas) *
                tor::kHsdirsPerReplica);

  // The injected relays are not HSDirs yet (25 h rule): still reachable.
  f.sim.run_until(3 * kHour);
  EXPECT_TRUE(f.connect(client, addr).ok)
      << "takeover cannot be instantaneous";

  // After the flag lands and the consensus refreshes, the crafted
  // fingerprints own every responsible slot and deny all fetches.
  f.sim.run_until(30 * kHour);
  const ConnectResult denied = f.connect(client, addr);
  EXPECT_FALSE(denied.ok);
  ASSERT_TRUE(denied.error.has_value());
  EXPECT_EQ(*denied.error, ConnectError::DescriptorNotFound);
}

TEST(HsdirTakeover, ResponsibleSlotsActuallyCaptured) {
  Fixture f;
  const auto key = key_of_seed(2);
  const EndpointId host = f.tor.create_endpoint();
  const OnionAddress addr = f.tor.publish_service(
      host, key,
      [](BytesView, const OnionAddress&) -> Bytes { return {}; });
  const TakeoverReport report =
      takeover_hsdirs(f.tor, addr, /*when=*/30 * kHour);
  f.sim.run_until(30 * kHour);
  const auto responsible = f.tor.responsible_hsdirs_now(addr);
  ASSERT_EQ(responsible.size(), 2u);
  for (const auto& replica_set : responsible) {
    for (const tor::RelayId r : replica_set) {
      EXPECT_NE(std::find(report.injected.begin(), report.injected.end(),
                          r),
                report.injected.end())
          << "every responsible HSDir is attacker-controlled";
    }
  }
}

TEST(HsdirTakeover, AddressRotationEscapes) {
  // The OnionBot counter: the defender saw today's address and occupied
  // tomorrow's slots *for that address* — but tomorrow the bot answers
  // on a fresh address derived from K_B, which the defender cannot
  // predict.
  Fixture f;
  Rng rng(3);
  const crypto::RsaKeyPair master = crypto::rsa_generate(rng, 2048);
  Bytes kb(32);
  for (auto& b : kb) b = static_cast<std::uint8_t>(rng.next_u64());

  const EndpointId host = f.tor.create_endpoint();
  const EndpointId cnc = f.tor.create_endpoint();
  const auto handler = [](BytesView, const OnionAddress&) -> Bytes {
    return to_bytes("alive");
  };

  // Period 0 identity (rotation period = 1 day, like descriptors).
  const crypto::RsaKeyPair key0 =
      crypto::rotated_service_key(master.pub, kb, 0);
  const OnionAddress addr0 = f.tor.publish_service(host, key0, handler);
  EXPECT_TRUE(f.connect(cnc, addr0).ok);

  // Defender captured addr0 and occupies its period-1 window.
  takeover_hsdirs(f.tor, addr0, /*when=*/30 * kHour);

  // At the period boundary the bot rotates: new key, new address.
  f.sim.run_until(24 * kHour + kMinute);
  f.tor.unpublish_service(host, addr0);
  const crypto::RsaKeyPair key1 =
      crypto::rotated_service_key(master.pub, kb, 1);
  const OnionAddress addr1 = f.tor.publish_service(host, key1, handler);
  EXPECT_NE(addr0, addr1);

  f.sim.run_until(30 * kHour);
  // The C&C derives addr1 independently and gets through; the takeover
  // of addr0 hits nothing.
  const crypto::RsaKeyPair derived =
      crypto::rotated_service_key(master.pub, kb, 1);
  EXPECT_EQ(OnionAddress::from_public_key(derived.pub), addr1);
  EXPECT_TRUE(f.connect(cnc, addr1).ok)
      << "rotation defeats the HSDir takeover";
  EXPECT_FALSE(f.connect(cnc, addr0).ok)
      << "the old address is dead, but nobody needs it";
}

TEST(HsdirTakeover, CookieProtectedDescriptorsNeedTheCookie) {
  // With a descriptor cookie set, an outsider cannot even compute the
  // descriptor IDs (paper Section III) — modeled by the ID mismatch.
  const auto key = key_of_seed(4);
  const OnionAddress addr = OnionAddress::from_public_key(key.pub);
  const Bytes cookie = to_bytes("0123456789abcdef");
  const auto with_cookie = tor::descriptor_id(addr, 5, cookie, 0);
  const auto without = tor::descriptor_id(addr, 5, {}, 0);
  EXPECT_NE(with_cookie, without);
}

}  // namespace
}  // namespace onion::mitigation
