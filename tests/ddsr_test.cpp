// DDSR self-healing graph tests: the Figure 3 walkthrough, repair/prune/
// refill invariants, and parameterized property sweeps over the paper's
// degrees with and without pruning.
#include <gtest/gtest.h>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace onion::core {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(Ddsr, RepairFormsCliqueOverFormerNeighbors) {
  // Star: delete the hub; the paper's rule connects every pair of its
  // neighbors.
  Graph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  Rng rng(1);
  DdsrEngine engine(g, DdsrPolicy{.dmin = 1, .dmax = 10}, rng);
  engine.remove_node(0);
  for (NodeId a = 1; a < 5; ++a)
    for (NodeId b = a + 1; b < 5; ++b)
      EXPECT_TRUE(g.has_edge(a, b)) << a << "," << b;
  EXPECT_EQ(engine.stats().repair_edges_added, 6u);
}

TEST(Ddsr, RepairSkipsExistingEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);  // the pair is already connected
  Rng rng(2);
  DdsrEngine engine(g, DdsrPolicy{.dmin = 1, .dmax = 10}, rng);
  engine.remove_node(0);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(engine.stats().repair_edges_added, 0u);
}

TEST(Ddsr, Figure3Walkthrough) {
  // The paper's Figure 3: a 3-regular graph with 12 nodes; removing node
  // 7 (neighbors 0, 1, 4) creates edges (0,1), (0,4), (1,4) minus any
  // that already exist. We build the neighborhood explicitly.
  Graph g(12);
  // Node 7's neighbors are 0, 1, 4 as in the figure.
  g.add_edge(7, 0);
  g.add_edge(7, 1);
  g.add_edge(7, 4);
  // Some unrelated structure.
  g.add_edge(0, 5);
  g.add_edge(1, 2);
  g.add_edge(4, 6);
  Rng rng(3);
  DdsrEngine engine(g, DdsrPolicy{.dmin = 1, .dmax = 5}, rng);
  engine.remove_node(7);
  EXPECT_FALSE(g.alive(7));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_TRUE(g.has_edge(1, 4));
}

TEST(Ddsr, NoRepairBaselineJustRemoves) {
  Graph g(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  Rng rng(4);
  DdsrEngine engine(g, DdsrPolicy{}, rng);
  engine.remove_node_no_repair(0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(engine.stats().repair_edges_added, 0u);
  EXPECT_EQ(engine.stats().nodes_removed, 1u);
}

TEST(Ddsr, PruningCapsDegreeAtDmax) {
  Rng rng(5);
  Graph g = graph::random_regular(60, 8, rng);
  DdsrEngine engine(g, DdsrPolicy{.dmin = 8, .dmax = 8, .prune = true},
                    rng);
  for (int i = 0; i < 18; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
    for (const NodeId u : g.alive_nodes())
      ASSERT_LE(g.degree(u), 8u) << "after deletion " << i;
  }
  EXPECT_GT(engine.stats().prune_edges_removed, 0u);
}

TEST(Ddsr, WithoutPruningDegreesGrow) {
  Rng rng(6);
  Graph g = graph::random_regular(60, 8, rng);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = 8, .dmax = 8, .prune = false, .refill = false},
      rng);
  for (int i = 0; i < 18; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  std::size_t max_degree = 0;
  for (const NodeId u : g.alive_nodes())
    max_degree = std::max(max_degree, g.degree(u));
  EXPECT_GT(max_degree, 8u);
  EXPECT_EQ(engine.stats().prune_edges_removed, 0u);
}

TEST(Ddsr, RefillRestoresDmin) {
  // A node whose only neighbor dies and whose repair partner set is
  // empty must pull new peers from its NoN.
  Rng rng(7);
  Graph g = graph::random_regular(40, 5, rng);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = 5, .dmax = 5, .prune = true, .refill = true},
      rng);
  for (int i = 0; i < 12; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  // All surviving nodes should sit at dmin (enough nodes remain).
  for (const NodeId u : g.alive_nodes())
    EXPECT_EQ(g.degree(u), 5u);
}

TEST(Ddsr, VictimPolicyHighestDegreeTargetsHubs) {
  // One hub with degree 4, others low; pruning a node over dmax must
  // evict the hub first under the paper's policy.
  Graph g(7);
  // node 0: neighbors 1..4 (will exceed dmax=3 after repair).
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  // hub 5 connected everywhere.
  g.add_edge(5, 0);
  g.add_edge(5, 1);
  g.add_edge(5, 2);
  g.add_edge(5, 6);
  // deleting 6 forces 0's degree up via repair with 5's partners? keep
  // it direct: bump 0 over the cap by hand and prune.
  g.add_edge(0, 4);  // degree(0) = 5 now (1,2,3,5,4)
  Rng rng(8);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = 2, .dmax = 3, .prune = true, .refill = false},
      rng);
  // Removing node 4 (leaf) triggers prune on 0 (degree 4 > 3).
  engine.remove_node(4);
  EXPECT_LE(g.degree(0), 3u);
  EXPECT_FALSE(g.has_edge(0, 5)) << "hub (highest degree) evicted first";
}

struct SweepParams {
  std::size_t n;
  std::size_t k;
  bool prune;
};

class DdsrSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(DdsrSweep, SurvivesThirtyPercentDeletions) {
  const auto [n, k, prune] = GetParam();
  Rng rng(100 + n + k + (prune ? 1 : 0));
  Graph g = graph::random_regular(n, k, rng);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = k, .dmax = k, .prune = prune, .refill = true},
      rng);
  const std::size_t deletions = n * 3 / 10;
  for (std::size_t i = 0; i < deletions; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  // The paper's headline property: the self-healing overlay stays
  // connected through a 30% gradual takedown.
  EXPECT_TRUE(graph::is_connected(g));
  if (prune) {
    for (const NodeId u : g.alive_nodes()) EXPECT_LE(g.degree(u), k);
  }
  // No self loops / duplicate edges can exist (Graph enforces); verify
  // the counters add up.
  EXPECT_EQ(engine.stats().nodes_removed, deletions);
}

INSTANTIATE_TEST_SUITE_P(
    PaperDegrees, DdsrSweep,
    ::testing::Values(SweepParams{200, 5, true}, SweepParams{200, 5, false},
                      SweepParams{200, 10, true},
                      SweepParams{200, 10, false},
                      SweepParams{150, 15, true},
                      SweepParams{150, 15, false},
                      SweepParams{400, 10, true}),
    [](const auto& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += "_k";
      name += std::to_string(info.param.k);
      name += info.param.prune ? "_prune" : "_noprune";
      return name;
    });

TEST(Ddsr, HeavyDeletionsKeepLargestComponentDominant) {
  // Push to 90% deletions (paper: self-repair holds "even up to 90%
  // node deletions").
  Rng rng(9);
  Graph g = graph::random_regular(300, 10, rng);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = 10, .dmax = 10, .prune = true, .refill = true},
      rng);
  for (int i = 0; i < 270; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  EXPECT_EQ(g.num_alive(), 30u);
  const auto comps = graph::connected_components(g);
  EXPECT_GE(comps.largest(), g.num_alive() - 2)
      << "overlay must not shatter";
}

TEST(Ddsr, DiameterShrinksAsNetworkShrinks) {
  Rng rng(10);
  Graph g = graph::random_regular(300, 10, rng);
  DdsrEngine engine(
      g, DdsrPolicy{.dmin = 10, .dmax = 10, .prune = true, .refill = true},
      rng);
  Rng mrng(11);
  const std::size_t d0 = graph::diameter_double_sweep(g, 6, mrng);
  for (int i = 0; i < 200; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  const std::size_t d1 = graph::diameter_double_sweep(g, 6, mrng);
  EXPECT_LE(d1, d0) << "Figure 5e/5f: diameter non-increasing under DDSR";
}

TEST(Ddsr, AblationRandomMatchRepairAddsFewerEdges) {
  Rng rng(12);
  Graph g1 = graph::random_regular(100, 6, rng);
  Graph g2 = g1;  // identical copies
  Rng r1(13), r2(13);
  DdsrEngine full(g1,
                  DdsrPolicy{.dmin = 6,
                             .dmax = 20,
                             .prune = false,
                             .refill = false,
                             .repair = DdsrPolicy::Repair::PairwiseFull},
                  r1);
  DdsrEngine match(g2,
                   DdsrPolicy{.dmin = 6,
                              .dmax = 20,
                              .prune = false,
                              .refill = false,
                              .repair = DdsrPolicy::Repair::RandomMatch},
                   r2);
  for (NodeId u = 0; u < 20; ++u) {
    full.remove_node(u);
    match.remove_node(u);
  }
  EXPECT_GT(full.stats().repair_edges_added,
            match.stats().repair_edges_added);
}

TEST(Ddsr, AblationRandomVictimStillCapsDegree) {
  Rng rng(14);
  Graph g = graph::random_regular(80, 8, rng);
  DdsrEngine engine(g,
                    DdsrPolicy{.dmin = 8,
                               .dmax = 8,
                               .prune = true,
                               .refill = true,
                               .victim = DdsrPolicy::Victim::Random},
                    rng);
  for (int i = 0; i < 24; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(alive[rng.uniform(alive.size())]);
  }
  for (const NodeId u : g.alive_nodes()) EXPECT_LE(g.degree(u), 8u);
}

}  // namespace
}  // namespace onion::core
