// scenario/wire robustness: round-trip equality for every field,
// truncation at every byte boundary rejected, every single-byte
// corruption rejected, unknown versions and foreign magics rejected
// with clear errors — the "corrupt results are detected, never merged"
// contract the multi-process grid stands on. Plus the informational-
// fields contract: wall clocks and retry bookkeeping survive the wire
// but can never reach a fingerprint.
#include <gtest/gtest.h>

#include <cstddef>

#include "scenario/runner.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario {
namespace {

MetricsSnapshot sample_snapshot(std::uint64_t salt, bool with_waves) {
  MetricsSnapshot s;
  s.time = 30 * kMinute + salt;
  s.honest_alive = 900 + salt;
  s.sybil_alive = 11;
  s.honest_edges = 4200 + salt;
  s.components = 2;
  s.largest_component = 890;
  s.largest_fraction = 0.988;
  s.average_degree = 9.33 + static_cast<double>(salt);
  s.diameter = salt % 2 == 0 ? 7 : kNoDiameter;
  s.degree_histogram = {0, 1, 5, 40, 200};
  s.joins = 120 + salt;
  s.leaves = 100;
  s.takedowns = 25;
  s.repair_edges = 75;
  s.prune_edges = 3;
  s.refill_edges = 18;
  s.repair_messages = 5000;
  s.soap_clones = 4;
  s.soap_contained = 2;
  if (with_waves) s.wave_takedowns = {10, 0, 15};
  return s;
}

CellResult sample_cell(std::uint64_t seed) {
  CellResult cell;
  cell.label = "seed=" + std::to_string(seed);
  cell.seed = seed;
  cell.fingerprint = std::string(64, 'a');
  cell.series = {sample_snapshot(seed, false), sample_snapshot(seed + 1, true)};
  cell.counters.joins = 12 + seed;
  cell.counters.leaves = 9;
  cell.counters.takedowns = 4;
  cell.events_executed = 123456 + seed;
  cell.wall_seconds = 1.25;
  return cell;
}

GridReport sample_report() {
  GridReport report;
  report.cells = {sample_cell(7), sample_cell(8), CellResult{}};
  report.cells[2].label = "seed=9";  // a quarantined slot: no fingerprint
  report.cells[2].seed = 9;
  report.failed_cells = {
      {2, "seed=9", 9, 3, "worker exited with status 86"}};
  report.combined_fingerprint = std::string(64, 'b');
  report.threads_used = 4;
  report.wall_seconds = 2.5;
  report.retries = 5;
  report.resumed_cells = 1;
  return report;
}

void expect_cells_equal(const CellResult& a, const CellResult& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i)
    EXPECT_EQ(serialize(a.series[i]), serialize(b.series[i]));
  EXPECT_EQ(a.counters.joins, b.counters.joins);
  EXPECT_EQ(a.counters.leaves, b.counters.leaves);
  EXPECT_EQ(a.counters.takedowns, b.counters.takedowns);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
}

TEST(Wire, SnapshotRoundTripsBitForBit) {
  for (const bool with_waves : {false, true}) {
    const MetricsSnapshot original = sample_snapshot(3, with_waves);
    const Bytes encoded = serialize(original);
    const MetricsSnapshot decoded = wire::deserialize_snapshot(encoded);
    EXPECT_EQ(serialize(decoded), encoded);
    EXPECT_EQ(decoded.degree_histogram, original.degree_histogram);
    EXPECT_EQ(decoded.wave_takedowns, original.wave_takedowns);
  }
}

TEST(Wire, CellResultRoundTripsEveryField) {
  const CellResult original = sample_cell(42);
  const CellResult decoded =
      wire::decode_cell_result(wire::encode_cell_result(original));
  expect_cells_equal(original, decoded);
}

TEST(Wire, GridReportRoundTripsEveryField) {
  const GridReport original = sample_report();
  const GridReport decoded =
      wire::decode_grid_report(wire::encode_grid_report(original));
  ASSERT_EQ(decoded.cells.size(), original.cells.size());
  for (std::size_t i = 0; i < original.cells.size(); ++i)
    expect_cells_equal(original.cells[i], decoded.cells[i]);
  ASSERT_EQ(decoded.failed_cells.size(), 1u);
  EXPECT_EQ(decoded.failed_cells[0].cell_index, 2u);
  EXPECT_EQ(decoded.failed_cells[0].label, "seed=9");
  EXPECT_EQ(decoded.failed_cells[0].seed, 9u);
  EXPECT_EQ(decoded.failed_cells[0].attempts, 3u);
  EXPECT_EQ(decoded.failed_cells[0].error, "worker exited with status 86");
  EXPECT_EQ(decoded.combined_fingerprint, original.combined_fingerprint);
  EXPECT_EQ(decoded.threads_used, original.threads_used);
  EXPECT_EQ(decoded.wall_seconds, original.wall_seconds);
  EXPECT_EQ(decoded.retries, original.retries);
  EXPECT_EQ(decoded.resumed_cells, original.resumed_cells);
}

TEST(Wire, TruncationAtEveryByteBoundaryIsRejected) {
  const Bytes framed = wire::encode_cell_result(sample_cell(1));
  for (std::size_t len = 0; len < framed.size(); ++len) {
    EXPECT_THROW(wire::decode_cell_result(BytesView(framed.data(), len)),
                 wire::WireError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Wire, EverySingleByteCorruptionIsRejected) {
  // Any flipped bit must land in one of the frame's checks: magic,
  // version, length, or the trailing integrity digest.
  const Bytes framed = wire::encode_cell_result(sample_cell(2));
  for (std::size_t i = 0; i < framed.size(); ++i) {
    Bytes corrupt = framed;
    corrupt[i] ^= 0x01;
    EXPECT_THROW(wire::decode_cell_result(corrupt), wire::WireError)
        << "flip at byte " << i << " decoded";
  }
}

TEST(Wire, UnknownVersionIsRejectedWithAClearError) {
  Bytes framed = wire::encode_cell_result(sample_cell(3));
  framed[15] = 2;  // the version word's low byte (bytes 8..15, big-endian)
  try {
    wire::decode_cell_result(framed);
    FAIL() << "version-2 frame decoded";
  } catch (const wire::WireError& e) {
    EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos)
        << e.what();
  }
}

TEST(Wire, ForeignMagicIsRejected) {
  const Bytes cell_frame = wire::encode_cell_result(sample_cell(4));
  EXPECT_THROW(wire::decode_grid_report(cell_frame), wire::WireError);
  const Bytes report_frame = wire::encode_grid_report(sample_report());
  EXPECT_THROW(wire::decode_cell_result(report_frame), wire::WireError);
}

TEST(Wire, TrailingGarbageIsRejected) {
  Bytes framed = wire::encode_cell_result(sample_cell(5));
  framed.push_back(0x00);
  EXPECT_THROW(wire::decode_cell_result(framed), wire::WireError);
}

TEST(Wire, WallSecondsIsSerializedButNeverFingerprinted) {
  // The one-place contract (scenario/wire.hpp): informational fields
  // survive the wire bit-exactly but cannot move a fingerprint.
  CellResult fast = sample_cell(6);
  CellResult slow = sample_cell(6);
  fast.wall_seconds = 0.01;
  slow.wall_seconds = 1e6;
  EXPECT_NE(wire::encode_cell_result(fast), wire::encode_cell_result(slow));
  EXPECT_EQ(wire::decode_cell_result(wire::encode_cell_result(slow))
                .wall_seconds,
            1e6);
  EXPECT_EQ(combine_cell_fingerprints({fast}),
            combine_cell_fingerprints({slow}));
}

// --- replay-grid frames ----------------------------------------------

detection::ReplayGridPoint sample_point(std::uint64_t salt) {
  detection::ReplayGridPoint p;
  p.campaign = 1 + salt % 2;
  p.replay_seed = 40 + salt;
  p.detector = salt % 2 == 0 ? "flow-beacon" : "tor-flagger";
  p.params = "size_cv=0.25,gap_cv=0.45";
  p.flows = 90000 + salt;
  p.flagged = 120 + salt;
  p.true_positives = 100;
  p.false_positives = 20 + salt;
  p.tpr = 0.875;
  p.fpr = 0.0125 + static_cast<double>(salt);
  p.families = {{"onion", 100, 114}, {"benign_tor", 3 + salt, 40}};
  return p;
}

detection::ReplayGridCell sample_replay_cell(std::uint64_t cell_index) {
  detection::ReplayGridCell cell;
  cell.cell_index = cell_index;
  cell.campaign = cell_index / 2;
  cell.replay_seed = 1 + cell_index % 2;
  cell.points = {sample_point(cell_index), sample_point(cell_index + 1)};
  cell.wall_seconds = 0.75;
  return cell;
}

detection::ReplayGridReport sample_replay_report() {
  detection::ReplayGridReport report;
  report.points = {sample_point(0), sample_point(1), sample_point(2)};
  report.fingerprint = detection::combine_replay_points(report.points);
  report.failed_cells = {{3, "campaign=1,replay_seed=2", 2, 3,
                          "no result frame (worker died on signal 9)"}};
  report.threads_used = 4;
  report.wall_seconds = 1.5;
  report.retries = 2;
  report.resumed_cells = 1;
  return report;
}

TEST(Wire, ReplayPointRoundTripsBitForBit) {
  const detection::ReplayGridPoint original = sample_point(5);
  const Bytes encoded = detection::serialize(original);
  const detection::ReplayGridPoint decoded =
      wire::deserialize_replay_point(encoded);
  // Re-serialization equality is the strongest check: the fingerprint
  // hashes exactly these bytes, so a decoded frame recomputes it.
  EXPECT_EQ(detection::serialize(decoded), encoded);
  ASSERT_EQ(decoded.families.size(), 2u);
  EXPECT_EQ(decoded.families[0].family, "onion");
  EXPECT_EQ(decoded.families[1].flagged, 8u);
}

TEST(Wire, ReplayCellRoundTripsEveryField) {
  const detection::ReplayGridCell original = sample_replay_cell(3);
  const detection::ReplayGridCell decoded =
      wire::decode_replay_cell(wire::encode_replay_cell(original));
  EXPECT_EQ(decoded.cell_index, original.cell_index);
  EXPECT_EQ(decoded.campaign, original.campaign);
  EXPECT_EQ(decoded.replay_seed, original.replay_seed);
  ASSERT_EQ(decoded.points.size(), original.points.size());
  for (std::size_t i = 0; i < original.points.size(); ++i)
    EXPECT_EQ(detection::serialize(decoded.points[i]),
              detection::serialize(original.points[i]));
  EXPECT_EQ(decoded.wall_seconds, original.wall_seconds);
}

TEST(Wire, ReplayReportRoundTripsEveryField) {
  const detection::ReplayGridReport original = sample_replay_report();
  const detection::ReplayGridReport decoded =
      wire::decode_replay_report(wire::encode_replay_report(original));
  ASSERT_EQ(decoded.points.size(), original.points.size());
  for (std::size_t i = 0; i < original.points.size(); ++i)
    EXPECT_EQ(detection::serialize(decoded.points[i]),
              detection::serialize(original.points[i]));
  EXPECT_EQ(decoded.fingerprint, original.fingerprint);
  EXPECT_EQ(detection::combine_replay_points(decoded.points),
            decoded.fingerprint);
  ASSERT_EQ(decoded.failed_cells.size(), 1u);
  EXPECT_EQ(decoded.failed_cells[0].cell_index, 3u);
  EXPECT_EQ(decoded.failed_cells[0].label, "campaign=1,replay_seed=2");
  EXPECT_EQ(decoded.failed_cells[0].seed, 2u);
  EXPECT_EQ(decoded.failed_cells[0].attempts, 3u);
  EXPECT_EQ(decoded.threads_used, original.threads_used);
  EXPECT_EQ(decoded.wall_seconds, original.wall_seconds);
  EXPECT_EQ(decoded.retries, original.retries);
  EXPECT_EQ(decoded.resumed_cells, original.resumed_cells);
}

TEST(Wire, ReplayFrameTruncationAtEveryByteBoundaryIsRejected) {
  const Bytes framed = wire::encode_replay_cell(sample_replay_cell(0));
  for (std::size_t len = 0; len < framed.size(); ++len) {
    EXPECT_THROW(wire::decode_replay_cell(BytesView(framed.data(), len)),
                 wire::WireError)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(Wire, ReplayFrameEverySingleByteCorruptionIsRejected) {
  const Bytes framed = wire::encode_replay_cell(sample_replay_cell(1));
  for (std::size_t i = 0; i < framed.size(); ++i) {
    Bytes corrupt = framed;
    corrupt[i] ^= 0x01;
    EXPECT_THROW(wire::decode_replay_cell(corrupt), wire::WireError)
        << "flip at byte " << i << " decoded";
  }
}

TEST(Wire, ReplayMagicsAreDistinctFromEveryOtherFrameKind) {
  const Bytes cell_frame = wire::encode_replay_cell(sample_replay_cell(2));
  EXPECT_THROW(wire::decode_replay_report(cell_frame), wire::WireError);
  EXPECT_THROW(wire::decode_cell_result(cell_frame), wire::WireError);
  EXPECT_THROW(wire::decode_grid_report(cell_frame), wire::WireError);
  const Bytes report_frame =
      wire::encode_replay_report(sample_replay_report());
  EXPECT_THROW(wire::decode_replay_cell(report_frame), wire::WireError);
  EXPECT_THROW(wire::decode_grid_report(report_frame), wire::WireError);
}

TEST(Wire, ReplayInformationalFieldsNeverReachTheFingerprint) {
  detection::ReplayGridCell fast = sample_replay_cell(4);
  detection::ReplayGridCell slow = sample_replay_cell(4);
  fast.wall_seconds = 0.01;
  slow.wall_seconds = 1e6;
  EXPECT_NE(wire::encode_replay_cell(fast), wire::encode_replay_cell(slow));
  EXPECT_EQ(detection::combine_replay_points(fast.points),
            detection::combine_replay_points(slow.points));
}

TEST(Wire, CombinedFingerprintSkipsFailedSlots) {
  const CellResult completed = sample_cell(7);
  CellResult failed;  // quarantined: label but no fingerprint
  failed.label = "seed=9";
  failed.seed = 9;
  EXPECT_EQ(combine_cell_fingerprints({completed, failed}),
            combine_cell_fingerprints({completed}));
  EXPECT_NE(combine_cell_fingerprints({completed}),
            combine_cell_fingerprints({}));
}

}  // namespace
}  // namespace onion::scenario
