// NoN greedy-routing tests (paper §IV-C's basis, reference [51]):
// correctness of ring distance, termination, delivery, and the headline
// property — one-step lookahead shortens greedy routes and raises
// delivery rates on the sparse ring-ish graphs DDSR maintains.
#include <gtest/gtest.h>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/non_routing.hpp"

namespace onion::graph {
namespace {

TEST(RingDistance, WrapsAndSymmetry) {
  EXPECT_EQ(ring_distance(0, 0), 0u);
  EXPECT_EQ(ring_distance(0, 1), 1u);
  EXPECT_EQ(ring_distance(1, 0), 1u);
  EXPECT_EQ(ring_distance(0, ~std::uint64_t{0}), 1u) << "wraps the ring";
  EXPECT_EQ(ring_distance(10, 4), 6u);
  // Max distance is half the ring.
  EXPECT_EQ(ring_distance(0, std::uint64_t{1} << 63),
            std::uint64_t{1} << 63);
}

/// A ring graph whose node order matches ring-ID order: greedy always
/// works here, which pins the mechanics.
struct RingFixture {
  Graph g{16};
  std::vector<RingId> ids;
  RingFixture() {
    for (NodeId u = 0; u < 16; ++u) g.add_edge(u, (u + 1) % 16);
    ids.resize(16);
    // Evenly spaced, increasing with node id.
    for (NodeId u = 0; u < 16; ++u)
      ids[u] = static_cast<RingId>(u) << 60;
  }
};

TEST(GreedyRouting, DeliversOnARing) {
  RingFixture f;
  const RouteResult r = route_greedy(f.g, f.ids, 0, 5);
  ASSERT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 5u);
  const RouteResult wrap = route_greedy(f.g, f.ids, 1, 14);
  ASSERT_TRUE(wrap.delivered);
  EXPECT_EQ(wrap.hops, 3u) << "routes the short way around";
}

TEST(GreedyRouting, SourceEqualsTargetIsZeroHops) {
  RingFixture f;
  const RouteResult r = route_greedy(f.g, f.ids, 7, 7);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops, 0u);
}

TEST(GreedyRouting, StopsAtLocalMinimum) {
  // Two triangle clusters joined at one far-away ring position: greedy
  // from the wrong cluster dead-ends instead of looping.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);  // bridge
  std::vector<RingId> ids = {0, 1'000, 2'000, 900'000, 901'000, 902'000};
  // Target 5; from 0 greedy must cross the bridge or stall — either
  // way it terminates within max_hops.
  const RouteResult r = route_greedy(g, ids, 0, 5, 32);
  EXPECT_LE(r.hops, 32u);
}

TEST(NoNRouting, LookaheadEscapesPlainGreedyMinima) {
  // Node 1's neighbors all move away from the target, but a
  // neighbor-of-neighbor is the target itself: lookahead routes, plain
  // greedy stalls.
  Graph g(5);
  g.add_edge(0, 1);  // source - hub
  g.add_edge(1, 2);  // hub - detour (ring-far)
  g.add_edge(2, 3);  // detour - target-adjacent
  g.add_edge(3, 4);  // - target
  std::vector<RingId> ids(5);
  ids[0] = 100;
  ids[1] = 90;
  ids[2] = 500;  // detour looks bad to plain greedy
  ids[3] = 60;
  ids[4] = 50;   // target
  const RouteResult plain = route_greedy(g, ids, 0, 4, 16);
  EXPECT_FALSE(plain.delivered) << "hub's neighbors all look worse";
  const RouteResult non = route_non_greedy(g, ids, 0, 4, 16);
  EXPECT_TRUE(non.delivered) << "lookahead sees node 3 behind node 2";
}

TEST(NoNRouting, DeliveredPathsAreValidWalks) {
  Rng rng(5);
  Graph g = random_regular(200, 6, rng);
  const auto ids = assign_ring_ids(g, 99);
  for (int t = 0; t < 50; ++t) {
    const NodeId s = static_cast<NodeId>(rng.uniform(200));
    const NodeId d = static_cast<NodeId>(rng.uniform(200));
    if (s == d) continue;
    const RouteResult r = route_non_greedy(g, ids, s, d);
    for (std::size_t i = 1; i < r.path.size(); ++i)
      ASSERT_TRUE(g.has_edge(r.path[i - 1], r.path[i]))
          << "path uses real edges only";
    if (r.delivered) {
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front(), s);
      EXPECT_EQ(r.path.back(), d);
      EXPECT_EQ(r.hops, r.path.size() - 1);
    }
  }
}

TEST(NoNRouting, LookaheadShortensRoutesOnRingWithChords) {
  // The reference's setting (ring-structured overlay with random long
  // links): the ring edge guarantees greedy progress, so both variants
  // deliver everything; lookahead exploits the chords better and takes
  // strictly shorter routes on average — the STOC'04 headline.
  const std::size_t n = 512;
  Graph g(n);
  Rng rng(7);
  for (NodeId u = 0; u < n; ++u)
    g.add_edge(u, static_cast<NodeId>((u + 1) % n));
  for (std::size_t c = 0; c < 2 * n; ++c) {
    const NodeId a = static_cast<NodeId>(rng.uniform(n));
    const NodeId b = static_cast<NodeId>(rng.uniform(n));
    if (a != b) g.add_edge(a, b);
  }
  std::vector<RingId> ids(n);
  const RingId spacing = (~RingId{0}) / n;
  for (NodeId u = 0; u < n; ++u) ids[u] = u * spacing;

  Rng trial_rng(1);
  const auto [plain_hops, plain_rate] =
      mean_route_length(g, ids, 400, /*non=*/false, trial_rng);
  Rng trial_rng2(1);
  const auto [non_hops, non_rate] =
      mean_route_length(g, ids, 400, /*non=*/true, trial_rng2);
  EXPECT_DOUBLE_EQ(plain_rate, 1.0) << "ring edges guarantee progress";
  EXPECT_DOUBLE_EQ(non_rate, 1.0);
  EXPECT_LT(non_hops, plain_hops)
      << "one-step lookahead shortens greedy routes";
}

TEST(NoNRouting, LookaheadNeverDeliversLessOnRandomRegular) {
  // Off the reference's structured setting (random IDs on a random
  // k-regular overlay) greedy has no guarantee; lookahead still
  // dominates plain greedy in delivery rate.
  Rng rng(7);
  Graph g = random_regular(400, 8, rng);
  const auto ids = assign_ring_ids(g, 42);
  Rng trial_rng(1);
  const auto [plain_hops, plain_rate] =
      mean_route_length(g, ids, 400, /*non=*/false, trial_rng);
  Rng trial_rng2(1);
  const auto [non_hops, non_rate] =
      mean_route_length(g, ids, 400, /*non=*/true, trial_rng2);
  EXPECT_GE(non_rate, plain_rate);
  EXPECT_GT(non_rate, 0.0);
  (void)plain_hops;
  (void)non_hops;
}

TEST(NoNRouting, SurvivesDdsrChurn) {
  // Routing keeps working on a graph the DDSR engine has been healing.
  Rng rng(11);
  Graph g = random_regular(300, 8, rng);
  core::DdsrEngine engine(
      g, core::DdsrPolicy{.dmin = 8, .dmax = 8, .prune = true,
                          .refill = true},
      rng);
  for (int i = 0; i < 90; ++i) {  // 30% gradual takedown
    const auto alive = g.alive_nodes();
    engine.remove_node(
        alive[static_cast<std::size_t>(rng.uniform(alive.size()))]);
  }
  const auto ids = assign_ring_ids(g, 3);
  Rng trial_rng(2);
  const auto [hops, rate] =
      mean_route_length(g, ids, 200, /*non=*/true, trial_rng);
  EXPECT_GT(rate, 0.5);
  EXPECT_GT(hops, 0.0);
}

}  // namespace
}  // namespace onion::graph
