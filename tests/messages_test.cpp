// Wire-format tests: Writer/Reader primitives, round trips for every
// bot-layer message, hostile-input robustness, and the SignedCommand
// verification chains (master-signed and rented).
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "crypto/kdf.hpp"

namespace onion::core {
namespace {

tor::OnionAddress addr_from_seed(std::uint64_t seed) {
  Rng rng(seed);
  return tor::OnionAddress::from_public_key(
      crypto::rsa_generate(rng, 1024).pub);
}

TEST(Wire, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u64(0x0102030405060708ULL);
  const Bytes bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.done());
}

TEST(Wire, VarBytesAndStringsRoundTrip) {
  Writer w;
  w.var_bytes(Bytes{1, 2, 3});
  w.str("hello");
  w.str("");
  const Bytes bytes = w.take();
  Reader r(bytes);
  EXPECT_EQ(r.var_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
}

TEST(Wire, AddressRoundTrip) {
  const tor::OnionAddress a = addr_from_seed(1);
  Writer w;
  w.address(a);
  Reader r(w.peek());
  EXPECT_EQ(r.address(), a);
}

TEST(Wire, TruncatedInputThrows) {
  const Bytes bytes{0x01};
  Reader r(bytes);
  EXPECT_THROW(r.u16(), WireError);
  Reader r2(bytes);
  EXPECT_THROW(r2.u64(), WireError);
  Reader r3(bytes);
  EXPECT_THROW(r3.raw(2), WireError);
}

TEST(Wire, VarBytesLengthBeyondBufferThrows) {
  Writer w;
  w.u16(1000);  // claims 1000 bytes follow; none do
  Reader r(w.peek());
  EXPECT_THROW(r.var_bytes(), WireError);
}

TEST(Messages, PeerRequestRoundTrip) {
  PeerRequestMsg m;
  m.from = addr_from_seed(2);
  m.declared_degree = 7;
  const Bytes bytes = encode_peer_request(m);
  EXPECT_EQ(peek_kind(bytes), MessageKind::PeerRequest);
  const PeerRequestMsg out = parse_peer_request(bytes);
  EXPECT_EQ(out.from, m.from);
  EXPECT_EQ(out.declared_degree, 7);
}

TEST(Messages, PeerReplyRoundTrip) {
  PeerReplyMsg m;
  m.accepted = true;
  m.declared_degree = 4;
  m.neighbors = {addr_from_seed(3), addr_from_seed(4)};
  const PeerReplyMsg out = parse_peer_reply(encode_peer_reply(m));
  EXPECT_TRUE(out.accepted);
  EXPECT_EQ(out.declared_degree, 4);
  EXPECT_EQ(out.neighbors, m.neighbors);
}

TEST(Messages, NoNShareRoundTrip) {
  NoNShareMsg m;
  m.from = addr_from_seed(5);
  m.neighbors = {addr_from_seed(6), addr_from_seed(7), addr_from_seed(8)};
  m.declared_degree = 3;
  const NoNShareMsg out = parse_non_share(encode_non_share(m));
  EXPECT_EQ(out.from, m.from);
  EXPECT_EQ(out.neighbors, m.neighbors);
  EXPECT_EQ(out.declared_degree, 3);
}

TEST(Messages, AddressChangeRoundTrip) {
  AddressChangeMsg m;
  m.old_address = addr_from_seed(9);
  m.new_address = addr_from_seed(10);
  const AddressChangeMsg out =
      parse_address_change(encode_address_change(m));
  EXPECT_EQ(out.old_address, m.old_address);
  EXPECT_EQ(out.new_address, m.new_address);
}

TEST(Messages, ProbeRoundTrip) {
  ProbeMsg m;
  m.probe_id = 0xdeadbeef;
  m.ttl = 6;
  const ProbeMsg out = parse_probe(encode_probe(m));
  EXPECT_EQ(out.probe_id, 0xdeadbeefu);
  EXPECT_EQ(out.ttl, 6);
}

TEST(Messages, BroadcastRoundTrip) {
  const Bytes envelope(512, 0x42);
  EXPECT_EQ(parse_broadcast(encode_broadcast(envelope)), envelope);
}

TEST(Messages, PeekKindRejectsGarbage) {
  EXPECT_THROW(peek_kind(Bytes{}), WireError);
  EXPECT_THROW(peek_kind(Bytes{0xff}), WireError);
  EXPECT_THROW(peek_kind(Bytes{0x00}), WireError);
}

TEST(Messages, WrongKindRejected) {
  const Bytes ping = encode_ping();
  EXPECT_THROW(parse_peer_request(ping), WireError);
  EXPECT_THROW(parse_broadcast(ping), WireError);
}

TEST(Messages, CommandRoundTrip) {
  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "example.com";
  cmd.issued_at = 123456;
  cmd.nonce = 999;
  const Bytes wire_bytes = cmd.serialize();
  Reader r(wire_bytes);
  const Command out = Command::parse(r);
  EXPECT_EQ(out.type, CommandType::Ddos);
  EXPECT_EQ(out.argument, "example.com");
  EXPECT_EQ(out.issued_at, 123456u);
  EXPECT_EQ(out.nonce, 999u);
}

TEST(Messages, CommandRejectsUnknownType) {
  Command cmd;
  Bytes bytes = cmd.serialize();
  bytes[0] = 200;  // not a CommandType
  Reader r(bytes);
  EXPECT_THROW(Command::parse(r), WireError);
}

struct SignedCommandFixture : ::testing::Test {
  Rng rng{77};
  crypto::RsaKeyPair master = crypto::rsa_generate(rng, 2048);
  crypto::RsaKeyPair renter = crypto::rsa_generate(rng, 2048);

  Command make_cmd(CommandType type, SimTime at) {
    Command cmd;
    cmd.type = type;
    cmd.argument = "arg";
    cmd.issued_at = at;
    cmd.nonce = rng.next_u64();
    return cmd;
  }
};

TEST_F(SignedCommandFixture, MasterSignedVerifies) {
  const SignedCommand sc =
      sign_command(master, make_cmd(CommandType::Spam, 1000));
  EXPECT_TRUE(sc.verify(master.pub, 2000, kHour));
}

TEST_F(SignedCommandFixture, SerializationRoundTrip) {
  const SignedCommand sc =
      sign_command(master, make_cmd(CommandType::Compute, 500));
  const SignedCommand out = SignedCommand::parse(sc.serialize());
  EXPECT_EQ(out.command.type, CommandType::Compute);
  EXPECT_EQ(out.signature, sc.signature);
  EXPECT_FALSE(out.token.has_value());
  EXPECT_TRUE(out.verify(master.pub, 600, kHour));
}

TEST_F(SignedCommandFixture, TamperedCommandFails) {
  SignedCommand sc = sign_command(master, make_cmd(CommandType::Ddos, 0));
  sc.command.argument = "evil.example";
  EXPECT_FALSE(sc.verify(master.pub, 1, kHour));
}

TEST_F(SignedCommandFixture, WrongKeyFails) {
  const SignedCommand sc =
      sign_command(renter, make_cmd(CommandType::Ddos, 0));
  EXPECT_FALSE(sc.verify(master.pub, 1, kHour));
}

TEST_F(SignedCommandFixture, StaleCommandRejected) {
  const SignedCommand sc =
      sign_command(master, make_cmd(CommandType::Ping, 1000));
  EXPECT_TRUE(sc.verify(master.pub, 1000 + kHour, kHour));
  EXPECT_FALSE(sc.verify(master.pub, 1001 + kHour, kHour))
      << "past the freshness window";
}

TEST_F(SignedCommandFixture, FutureDatedCommandRejected) {
  const SignedCommand sc =
      sign_command(master, make_cmd(CommandType::Ping, 5000));
  EXPECT_FALSE(sc.verify(master.pub, 4000, kHour));
}

TEST_F(SignedCommandFixture, RentedCommandFullChainVerifies) {
  const RentalToken token = issue_rental_token(
      master, renter.pub, /*expires_at=*/10 * kHour,
      {CommandType::Spam, CommandType::Compute});
  const SignedCommand sc = sign_rented_command(
      renter, token, make_cmd(CommandType::Spam, 1000));
  EXPECT_TRUE(sc.verify(master.pub, 2000, kHour));

  const SignedCommand reparsed = SignedCommand::parse(sc.serialize());
  ASSERT_TRUE(reparsed.token.has_value());
  EXPECT_TRUE(reparsed.verify(master.pub, 2000, kHour));
}

TEST_F(SignedCommandFixture, RentedCommandOutsideWhitelistRejected) {
  const RentalToken token = issue_rental_token(
      master, renter.pub, 10 * kHour, {CommandType::Spam});
  const SignedCommand sc = sign_rented_command(
      renter, token, make_cmd(CommandType::Ddos, 1000));
  EXPECT_FALSE(sc.verify(master.pub, 2000, kHour))
      << "DDoS not in the rental whitelist";
}

TEST_F(SignedCommandFixture, RentedCommandAfterExpiryRejected) {
  const RentalToken token = issue_rental_token(
      master, renter.pub, /*expires_at=*/2 * kHour, {CommandType::Spam});
  const SignedCommand sc = sign_rented_command(
      renter, token, make_cmd(CommandType::Spam, 2 * kHour + 1));
  EXPECT_FALSE(sc.verify(master.pub, 2 * kHour + 2, kHour));
}

TEST_F(SignedCommandFixture, RenterCannotSelfIssueToken) {
  RentalToken fake;
  fake.renter_key = renter.pub;
  fake.expires_at = 100 * kHour;
  fake.whitelist = {CommandType::Ddos};
  fake.master_signature = crypto::rsa_sign(renter, fake.signed_body());
  const SignedCommand sc = sign_rented_command(
      renter, fake, make_cmd(CommandType::Ddos, 1000));
  EXPECT_FALSE(sc.verify(master.pub, 2000, kHour))
      << "token must be signed by the master key";
}

}  // namespace
}  // namespace onion::core
