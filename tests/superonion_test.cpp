// SuperOnionBot tests (paper §VII-B, Figure 8): construction, probe
// detection of soaped virtual nodes, resurrection, and the headline
// claim — hosts survive SOAP as long as one virtual node does.
#include <gtest/gtest.h>

#include "mitigation/soap.hpp"
#include "superonion/super_network.hpp"

namespace onion::super {
namespace {

using NodeId = core::OverlayNetwork::NodeId;

SuperConfig figure8_config() {
  // The paper's illustration: n=5, m=3, i=2.
  SuperConfig cfg;
  cfg.hosts = 5;
  cfg.vnodes_per_host = 3;
  cfg.peers_per_vnode = 2;
  return cfg;
}

TEST(SuperOnion, Figure8Construction) {
  Rng rng(1);
  SuperOnionNetwork net(figure8_config(), rng);
  EXPECT_EQ(net.num_hosts(), 5u);
  EXPECT_EQ(net.vnodes_created(), 15u);
  std::size_t total_vnodes = 0;
  for (std::size_t h = 0; h < 5; ++h) {
    EXPECT_EQ(net.vnodes_of(h).size(), 3u);
    total_vnodes += net.vnodes_of(h).size();
    for (const NodeId v : net.vnodes_of(h))
      EXPECT_GE(net.overlay().graph().degree(v), 2u)
          << "each vnode keeps i=2 peers";
  }
  EXPECT_EQ(total_vnodes, 15u);
}

TEST(SuperOnion, VnodesNeverPeerWithSiblings) {
  Rng rng(2);
  SuperOnionNetwork net(figure8_config(), rng);
  for (std::size_t h = 0; h < net.num_hosts(); ++h) {
    for (const NodeId v : net.vnodes_of(h)) {
      for (const NodeId w : net.vnodes_of(h)) {
        if (v == w) continue;
        EXPECT_FALSE(net.overlay().graph().has_edge(v, w))
            << "siblings communicate via the overlay, not directly";
      }
    }
  }
}

TEST(SuperOnion, HealthyNetworkProbesCleanly) {
  Rng rng(3);
  SuperOnionNetwork net(figure8_config(), rng);
  const ProbeReport report = net.probe_and_recover();
  EXPECT_EQ(report.soaped_detected, 0u);
  EXPECT_EQ(report.resurrected, 0u);
  EXPECT_EQ(report.hosts_alive, 5u);
  EXPECT_GT(report.gossip_messages, 0u) << "probes cost gossip traffic";
}

TEST(SuperOnion, DetectsAndReplacesSoapedVnode) {
  Rng rng(4);
  SuperConfig cfg = figure8_config();
  cfg.hosts = 8;
  SuperOnionNetwork net(cfg, rng);
  // Soap one virtual node by hand: replace all its peers with sybils.
  const NodeId victim = net.vnodes_of(0)[0];
  auto& overlay = net.overlay();
  const std::vector<NodeId> peers = overlay.neighbors(victim);
  for (const NodeId p : peers) overlay.drop_edge(victim, p);
  for (int i = 0; i < 2; ++i) {
    const NodeId sybil = overlay.add_node(false, 1);
    overlay.request_peering(sybil, victim);
  }
  ASSERT_TRUE(overlay.contained(victim));

  const ProbeReport report = net.probe_and_recover();
  EXPECT_GE(report.soaped_detected, 1u);
  EXPECT_GE(report.resurrected, 1u);
  EXPECT_EQ(report.hosts_alive, 8u) << "host survives one soaped vnode";
  EXPECT_FALSE(overlay.alive(victim)) << "soaped identity abandoned";
  EXPECT_EQ(net.vnodes_of(0).size(), 3u) << "fresh vnode took its place";
}

TEST(SuperOnion, HostLostOnlyWhenAllVnodesSoaped) {
  Rng rng(5);
  SuperOnionNetwork net(figure8_config(), rng);
  auto& overlay = net.overlay();
  // Soap every vnode of host 0 simultaneously.
  for (const NodeId v : net.vnodes_of(0)) {
    const std::vector<NodeId> peers = overlay.neighbors(v);
    for (const NodeId p : peers) overlay.drop_edge(v, p);
    const NodeId sybil = overlay.add_node(false, 1);
    overlay.request_peering(sybil, v);
  }
  EXPECT_TRUE(net.host_contained(0));
  const ProbeReport report = net.probe_and_recover();
  EXPECT_EQ(report.hosts_alive, 4u)
      << "fully soaped host cannot bootstrap a replacement";
}

TEST(SuperOnion, SurvivesFullSoapCampaignThatKillsBasicOnionBots) {
  // Head-to-head: the same SOAP campaign that neutralizes a basic
  // overlay (soap_test) cannot keep a SuperOnion down when probes run
  // between rounds.
  Rng rng(6);
  SuperConfig cfg;
  cfg.hosts = 10;
  cfg.vnodes_per_host = 3;
  cfg.peers_per_vnode = 3;
  SuperOnionNetwork net(cfg, rng);

  mitigation::SoapConfig soap;
  soap.requests_per_target_per_round = 2;
  mitigation::SoapCampaign campaign(net.overlay(), soap, rng);
  campaign.capture(net.vnodes_of(0)[0]);

  for (int round = 0; round < 30; ++round) {
    campaign.step();
    net.probe_and_recover();  // hosts fight back every round
  }
  EXPECT_EQ(net.hosts_alive(), 10u)
      << "resurrection outpaces containment (paper §VII-B)";
}

TEST(SuperOnion, ResurrectionCountGrowsUnderSustainedAttack) {
  Rng rng(7);
  SuperConfig cfg;
  cfg.hosts = 6;
  cfg.vnodes_per_host = 2;
  cfg.peers_per_vnode = 2;
  SuperOnionNetwork net(cfg, rng);
  mitigation::SoapCampaign campaign(net.overlay(),
                                    mitigation::SoapConfig{}, rng);
  campaign.capture(net.vnodes_of(0)[0]);
  std::size_t resurrected = 0;
  for (int round = 0; round < 20; ++round) {
    campaign.step();
    resurrected += net.probe_and_recover().resurrected;
  }
  EXPECT_EQ(net.vnodes_created(), 12u + resurrected);
}

TEST(SuperOnion, RequiresAtLeastTwoHosts) {
  Rng rng(8);
  SuperConfig cfg;
  cfg.hosts = 1;
  EXPECT_THROW(
      {
        SuperOnionNetwork net(cfg, rng);
        (void)net;
      },
      ContractViolation);
}

}  // namespace
}  // namespace onion::super
