// Bootstrap-strategy tests (paper §IV-B): the hardcoded-subset handout,
// hotlist directories under seizure, the out-of-band store's exposure
// trade-off, and the random-probing infeasibility arithmetic.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/bootstrap.hpp"
#include "tor/address_cost.hpp"

namespace onion::core {
namespace {

using tor::OnionAddress;

OnionAddress make_address(std::uint8_t tag) {
  OnionAddress::Identifier id{};
  id[0] = tag;
  id[9] = 0x5a;
  return OnionAddress(id);
}

LeadList make_population(std::size_t n) {
  LeadList out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(make_address(static_cast<std::uint8_t>(i)));
  return out;
}

// --- hardcoded subset ----------------------------------------------------

TEST(HardcodedSubset, IncludesEachEntryWithProbabilityP) {
  Rng rng(1);
  const LeadList peers = make_population(40);
  std::size_t total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t)
    total += hardcoded_subset(peers, 0.25, rng).size();
  const double mean = static_cast<double>(total) / trials;
  EXPECT_NEAR(mean, 10.0, 1.5) << "E[|subset|] = p * |peers|";
}

TEST(HardcodedSubset, NeverHandsOutNothing) {
  Rng rng(2);
  const LeadList peers = make_population(5);
  for (int t = 0; t < 100; ++t)
    EXPECT_GE(hardcoded_subset(peers, 0.01, rng).size(), 1u)
        << "an empty handout would orphan the recruit";
}

TEST(HardcodedSubset, EmptySourceYieldsEmpty) {
  Rng rng(3);
  EXPECT_TRUE(hardcoded_subset({}, 0.9, rng).empty());
}

TEST(HardcodedSubset, PEqualOneHandsEverything) {
  Rng rng(4);
  const LeadList peers = make_population(12);
  EXPECT_EQ(hardcoded_subset(peers, 1.0, rng).size(), 12u);
}

// --- hotlist directory ------------------------------------------------------

TEST(Hotlist, QueryReturnsAnnouncedAddresses) {
  Rng rng(5);
  HotlistDirectory dir({.servers = 4, .window = 8, .servers_per_bot = 2},
                       rng);
  const auto subset = dir.assign_subset();
  ASSERT_EQ(subset.size(), 2u);
  dir.announce(make_address(1), subset);
  dir.announce(make_address(2), subset);
  const LeadList leads = dir.query(subset);
  EXPECT_EQ(leads.size(), 2u);
}

TEST(Hotlist, WindowEvictsOldest) {
  Rng rng(6);
  HotlistDirectory dir({.servers = 1, .window = 3, .servers_per_bot = 1},
                       rng);
  const std::vector<std::size_t> subset = {0};
  for (std::uint8_t i = 0; i < 5; ++i)
    dir.announce(make_address(i), subset);
  const LeadList leads = dir.query(subset);
  ASSERT_EQ(leads.size(), 3u);
  EXPECT_EQ(leads[0], make_address(2)) << "oldest entries evicted";
}

TEST(Hotlist, SeizedServerAnswersNothingButKeepsHarvesting) {
  Rng rng(7);
  HotlistDirectory dir({.servers = 2, .window = 8, .servers_per_bot = 2},
                       rng);
  dir.announce(make_address(1), {0});  // known only to server 0
  const LeadList haul = dir.seize(0);
  ASSERT_EQ(haul.size(), 1u) << "seizure yields the window";
  EXPECT_EQ(haul[0], make_address(1));
  // The address lived only on the seized server: bots cannot find it.
  EXPECT_TRUE(dir.query({0, 1}).empty());
  // Post-seizure announcements to server 0 are harvested by the
  // defender's honeypot but never served to bots; server 1 still works.
  dir.announce(make_address(2), {0, 1});
  const LeadList leads = dir.query({0, 1});
  ASSERT_EQ(leads.size(), 1u);
  EXPECT_EQ(leads[0], make_address(2)) << "served by surviving server 1";
  EXPECT_EQ(dir.harvested().size(), 2u);
}

TEST(Hotlist, BotsSeeOnlyTheirSubset) {
  Rng rng(8);
  HotlistDirectory dir({.servers = 8, .window = 8, .servers_per_bot = 1},
                       rng);
  dir.announce(make_address(9), {3});
  EXPECT_TRUE(dir.query({2}).empty());
  EXPECT_EQ(dir.query({3}).size(), 1u);
}

TEST(Hotlist, PartialSeizureLeavesOtherServersServing) {
  Rng rng(9);
  HotlistDirectory dir({.servers = 4, .window = 16, .servers_per_bot = 4},
                       rng);
  const std::vector<std::size_t> all = {0, 1, 2, 3};
  for (std::uint8_t i = 0; i < 8; ++i) dir.announce(make_address(i), all);
  dir.seize(0);
  dir.seize(1);
  EXPECT_EQ(dir.query(all).size(), 8u)
      << "surviving servers still serve the full set";
}

// --- out-of-band store ------------------------------------------------------

TEST(OutOfBand, LookupReturnsAnnouncements) {
  OutOfBandStore store;
  store.announce(42, make_address(1));
  store.announce(42, make_address(2));
  store.announce(42, make_address(1));  // duplicate collapses
  EXPECT_EQ(store.lookup(42).size(), 2u);
  EXPECT_TRUE(store.lookup(43).empty());
  EXPECT_EQ(store.keys_used(), 1u);
}

TEST(OutOfBand, DefenderSeesExactlyWhatBotsSee) {
  // The trade-off: the store is public. Whatever a recruit can learn,
  // the crawler learns too.
  OutOfBandStore store;
  const LeadList population = make_population(20);
  for (const auto& a : population) store.announce(7, a);
  const LeadList crawl = store.lookup(7);
  EXPECT_DOUBLE_EQ(exposure_fraction(crawl, population), 1.0);
}

TEST(Exposure, SubsetExposureIsPartial) {
  const LeadList population = make_population(10);
  const LeadList haul = {make_address(0), make_address(1),
                         make_address(99)};
  EXPECT_DOUBLE_EQ(exposure_fraction(haul, population), 0.2);
  EXPECT_DOUBLE_EQ(exposure_fraction({}, population), 0.0);
  EXPECT_DOUBLE_EQ(exposure_fraction(haul, {}), 0.0);
}

}  // namespace
}  // namespace onion::core

namespace onion::tor {
namespace {

// --- random probing / vanity cost models -----------------------------------

TEST(AddressCost, ShallotCalibrationRoundTrips) {
  EXPECT_NEAR(vanity_prefix_days(8), 25.0, 1e-6)
      << "the paper's data point: 8 chars ~ 25 days";
}

TEST(AddressCost, EachExtraPrefixCharCosts32x) {
  const double d7 = vanity_prefix_days(7);
  const double d8 = vanity_prefix_days(8);
  EXPECT_NEAR(d8 / d7, 32.0, 1e-9);
}

TEST(AddressCost, RandomProbingIsAstronomical) {
  // A million-bot botnet probed at a generous million probes/second
  // still takes ~38,000 years to find the FIRST member (2^80 / 1e6
  // probes, at 1e6/s). Enumerating the botnet this way is hopeless.
  const double years = expected_years_to_find_bot(1e6, 1e6);
  EXPECT_GT(years, 1e4);
  EXPECT_NEAR(years, 38308.0, 50.0);
  // Sanity: expected probes = 2^80 / population.
  EXPECT_NEAR(expected_probes_to_find_bot(1.0), std::exp2(80.0),
              std::exp2(80.0) * 1e-12);
}

TEST(AddressCost, FasterRigsScaleLinearly) {
  const double slow = expected_years_to_find_bot(1e4, 1e3);
  const double fast = expected_years_to_find_bot(1e4, 1e6);
  EXPECT_NEAR(slow / fast, 1e3, 1e-6);
}

}  // namespace
}  // namespace onion::tor
