// Multi-process grid robustness (fork-based, so deliberately NOT in the
// ONION_TSAN_SUITES tier — TSan and fork() do not mix). Every failure
// mode is injected deterministically via FaultPlan — crash before the
// frame, corrupt frame, hang past the timeout — and each test proves
// the crash-tolerance contract: the merged combined fingerprint equals
// the single-process digest no matter the worker count, partition,
// retry history, or resume path; permanent failures quarantine instead
// of poisoning the merge.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fileio.hpp"
#include "scenario/runner.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 80;
  spec.degree = 5;
  spec.horizon = 6 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = kMinute;
  takedown.stop = 5 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

CampaignGrid tiny_grid() {
  return CampaignGrid::seed_sweep(tiny_spec(0), 500, 4);
}

/// A fresh per-test results directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gridproc_" + name;
  fs::remove_all(dir);
  return dir;
}

GridCoordinatorConfig fast_config(const std::string& dir) {
  GridCoordinatorConfig config;
  config.results_dir = dir;
  config.workers = 2;
  config.max_attempts = 3;
  // Tight enough that a hung worker dies in ~a second, generous enough
  // that a loaded CI box never times out a healthy 80-bot cell.
  config.cell_timeout_seconds = 30.0;
  config.backoff_base_seconds = 0.001;
  config.backoff_max_seconds = 0.01;
  config.poll_interval_seconds = 0.002;
  return config;
}

TEST(GridProcess, MultiprocessMatchesInProcessFingerprints) {
  const CampaignGrid grid = tiny_grid();
  const GridReport in_process = grid.run(2);
  GridCoordinator coordinator(grid, fast_config(fresh_dir("match")));
  const GridReport merged = coordinator.run();
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.retries, 0u);
  EXPECT_EQ(merged.resumed_cells, 0u);
  ASSERT_EQ(merged.cells.size(), in_process.cells.size());
  for (std::size_t i = 0; i < merged.cells.size(); ++i) {
    EXPECT_EQ(merged.cells[i].label, in_process.cells[i].label);
    EXPECT_EQ(merged.cells[i].fingerprint, in_process.cells[i].fingerprint);
    ASSERT_EQ(merged.cells[i].series.size(),
              in_process.cells[i].series.size());
    for (std::size_t k = 0; k < merged.cells[i].series.size(); ++k)
      EXPECT_EQ(serialize(merged.cells[i].series[k]),
                serialize(in_process.cells[i].series[k]));
  }
  EXPECT_EQ(merged.combined_fingerprint, in_process.combined_fingerprint);
}

TEST(GridProcess, EveryFaultKindRetriesToTheSameFingerprint) {
  const CampaignGrid grid = tiny_grid();
  const GridReport in_process = grid.run(2);
  GridCoordinatorConfig config = fast_config(fresh_dir("faults"));
  // One of each failure mode, all on attempt 0, so round one loses three
  // cells three different ways and round two repairs them all.
  config.faults = FaultPlan::parse("crash@1:0;corrupt@2:0;hang@3:0");
  config.cell_timeout_seconds = 1.0;  // the hang must die quickly
  GridCoordinator coordinator(grid, config);
  const GridReport merged = coordinator.run();
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_GE(merged.retries, 3u);
  EXPECT_EQ(merged.combined_fingerprint, in_process.combined_fingerprint);
}

TEST(GridProcess, PermanentCrashQuarantinesAndMergesTheRest) {
  const CampaignGrid grid = tiny_grid();
  GridCoordinatorConfig config = fast_config(fresh_dir("quarantine"));
  config.faults = FaultPlan::parse("crash@2:0;crash@2:1;crash@2:2");
  GridCoordinator coordinator(grid, config);
  const GridReport merged = coordinator.run();
  ASSERT_EQ(merged.failed_cells.size(), 1u);
  EXPECT_EQ(merged.failed_cells[0].cell_index, 2u);
  EXPECT_EQ(merged.failed_cells[0].label, grid.cells()[2].label);
  EXPECT_EQ(merged.failed_cells[0].seed, grid.cells()[2].spec.seed);
  EXPECT_EQ(merged.failed_cells[0].attempts, config.max_attempts);
  EXPECT_FALSE(merged.failed_cells[0].error.empty());
  // Graceful degradation: the quarantined slot keeps its place with an
  // empty fingerprint, and the merge covers exactly the completed cells.
  ASSERT_EQ(merged.cells.size(), grid.size());
  EXPECT_TRUE(merged.cells[2].fingerprint.empty());
  GridReport expected = grid.run(2);
  expected.cells[2].fingerprint.clear();
  EXPECT_EQ(merged.combined_fingerprint,
            combine_cell_fingerprints(expected.cells));
}

TEST(GridProcess, ResumeSkipsEveryValidFrame) {
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("resume");
  const GridReport first = GridCoordinator(grid, fast_config(dir)).run();
  const GridReport second = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(second.resumed_cells, grid.size());
  EXPECT_EQ(second.retries, 0u);
  EXPECT_EQ(second.combined_fingerprint, first.combined_fingerprint);
}

TEST(GridProcess, ResumeReRunsOnlyTheCorruptedFrame) {
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("repair");
  const GridReport first = GridCoordinator(grid, fast_config(dir)).run();
  // Flip one payload byte of cell 1's frame; record the other frames so
  // we can prove they were not rewritten.
  std::vector<Bytes> before;
  for (std::uint64_t i = 0; i < grid.size(); ++i)
    before.push_back(
        read_file_bytes(dir + "/" + cell_frame_filename(i)));
  Bytes corrupt = before[1];
  corrupt[wire::kFrameHeaderBytes + 10] ^= 0x40;
  write_file_atomic(dir + "/" + cell_frame_filename(1), corrupt);

  const GridReport repaired = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(repaired.resumed_cells, grid.size() - 1);
  EXPECT_TRUE(repaired.failed_cells.empty());
  EXPECT_EQ(repaired.combined_fingerprint, first.combined_fingerprint);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    const Bytes after = read_file_bytes(dir + "/" + cell_frame_filename(i));
    if (i == 1) {
      EXPECT_NE(after, corrupt);  // repaired, not left poisoned
      // The re-run differs only in the informational wall clock: every
      // deterministic field matches the original frame.
      const CellResult rerun = wire::decode_cell_result(after);
      const CellResult original = wire::decode_cell_result(before[1]);
      EXPECT_EQ(rerun.label, original.label);
      EXPECT_EQ(rerun.seed, original.seed);
      EXPECT_EQ(rerun.fingerprint, original.fingerprint);
      EXPECT_EQ(rerun.events_executed, original.events_executed);
    } else {
      EXPECT_EQ(after, before[i]) << "frame " << i << " was rewritten";
    }
  }
}

TEST(GridProcess, WorkerModeShardsMergeLikeTheCoordinator) {
  // Two hand-partitioned run_worker_cells calls (the gridworker --worker
  // path) followed by a coordinator pass over the same directory: every
  // frame resumes, nothing re-runs, same merge.
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("shards");
  run_worker_cells(grid, {{0, 0}, {2, 0}}, dir);
  run_worker_cells(grid, {{1, 0}, {3, 0}}, dir);
  const GridReport merged = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(merged.resumed_cells, grid.size());
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.combined_fingerprint,
            grid.run(2).combined_fingerprint);
}

TEST(GridProcess, FaultPlanParsesAndRoundTrips) {
  const std::string text = "crash@2:0;hang@5:1;corrupt@7:0";
  const FaultPlan plan = FaultPlan::parse(text);
  EXPECT_EQ(plan.to_string(), text);
  EXPECT_NE(plan.match(2, 0), nullptr);
  EXPECT_EQ(plan.match(2, 0)->kind, FaultSpec::Kind::kCrash);
  EXPECT_NE(plan.match(5, 1), nullptr);
  EXPECT_EQ(plan.match(5, 1)->kind, FaultSpec::Kind::kHang);
  EXPECT_NE(plan.match(7, 0), nullptr);
  EXPECT_EQ(plan.match(7, 0)->kind, FaultSpec::Kind::kCorrupt);
  EXPECT_EQ(plan.match(2, 1), nullptr);  // attempt matters
  EXPECT_EQ(plan.match(3, 0), nullptr);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_THROW(FaultPlan::parse("explode@2:0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@x:0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@2"), std::invalid_argument);
}

TEST(GridProcess, CoordinatorConfigIsValidated) {
  const CampaignGrid grid = tiny_grid();
  GridCoordinatorConfig config = fast_config(fresh_dir("validate"));
  config.workers = 0;
  EXPECT_THROW(GridCoordinator(grid, config), ContractViolation);
  config = fast_config(fresh_dir("validate2"));
  config.max_attempts = 0;
  EXPECT_THROW(GridCoordinator(grid, config), ContractViolation);
}

}  // namespace
}  // namespace onion::scenario
