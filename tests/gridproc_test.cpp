// Multi-process grid robustness (fork-based, so deliberately NOT in the
// ONION_TSAN_SUITES tier — TSan and fork() do not mix). Every failure
// mode is injected deterministically via FaultPlan — crash before the
// frame, corrupt frame, hang past the timeout — and each test proves
// the crash-tolerance contract: the merged combined fingerprint equals
// the single-process digest no matter the worker count, partition,
// retry history, or resume path; permanent failures quarantine instead
// of poisoning the merge.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/fileio.hpp"
#include "detection/replay_proc.hpp"
#include "scenario/engine.hpp"
#include "scenario/runner.hpp"
#include "scenario/trace_io.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario {
namespace {

namespace fs = std::filesystem;

ScenarioSpec tiny_spec(std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 80;
  spec.degree = 5;
  spec.horizon = 6 * kMinute;
  spec.churn.joins_per_hour = 240.0;
  spec.churn.leaves_per_hour = 240.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = kMinute;
  takedown.stop = 5 * kMinute;
  takedown.takedowns_per_hour = 120.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kMinute;
  return spec;
}

CampaignGrid tiny_grid() {
  return CampaignGrid::seed_sweep(tiny_spec(0), 500, 4);
}

/// A fresh per-test results directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "gridproc_" + name;
  fs::remove_all(dir);
  return dir;
}

GridCoordinatorConfig fast_config(const std::string& dir) {
  GridCoordinatorConfig config;
  config.results_dir = dir;
  config.workers = 2;
  config.max_attempts = 3;
  // Tight enough that a hung worker dies in ~a second, generous enough
  // that a loaded CI box never times out a healthy 80-bot cell.
  config.cell_timeout_seconds = 30.0;
  config.backoff_base_seconds = 0.001;
  config.backoff_max_seconds = 0.01;
  config.poll_interval_seconds = 0.002;
  return config;
}

TEST(GridProcess, MultiprocessMatchesInProcessFingerprints) {
  const CampaignGrid grid = tiny_grid();
  const GridReport in_process = grid.run(2);
  GridCoordinator coordinator(grid, fast_config(fresh_dir("match")));
  const GridReport merged = coordinator.run();
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.retries, 0u);
  EXPECT_EQ(merged.resumed_cells, 0u);
  ASSERT_EQ(merged.cells.size(), in_process.cells.size());
  for (std::size_t i = 0; i < merged.cells.size(); ++i) {
    EXPECT_EQ(merged.cells[i].label, in_process.cells[i].label);
    EXPECT_EQ(merged.cells[i].fingerprint, in_process.cells[i].fingerprint);
    ASSERT_EQ(merged.cells[i].series.size(),
              in_process.cells[i].series.size());
    for (std::size_t k = 0; k < merged.cells[i].series.size(); ++k)
      EXPECT_EQ(serialize(merged.cells[i].series[k]),
                serialize(in_process.cells[i].series[k]));
  }
  EXPECT_EQ(merged.combined_fingerprint, in_process.combined_fingerprint);
}

TEST(GridProcess, EveryFaultKindRetriesToTheSameFingerprint) {
  const CampaignGrid grid = tiny_grid();
  const GridReport in_process = grid.run(2);
  GridCoordinatorConfig config = fast_config(fresh_dir("faults"));
  // One of each failure mode, all on attempt 0, so round one loses three
  // cells three different ways and round two repairs them all.
  config.faults = FaultPlan::parse("crash@1:0;corrupt@2:0;hang@3:0");
  config.cell_timeout_seconds = 1.0;  // the hang must die quickly
  GridCoordinator coordinator(grid, config);
  const GridReport merged = coordinator.run();
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_GE(merged.retries, 3u);
  EXPECT_EQ(merged.combined_fingerprint, in_process.combined_fingerprint);
}

TEST(GridProcess, PermanentCrashQuarantinesAndMergesTheRest) {
  const CampaignGrid grid = tiny_grid();
  GridCoordinatorConfig config = fast_config(fresh_dir("quarantine"));
  config.faults = FaultPlan::parse("crash@2:0;crash@2:1;crash@2:2");
  GridCoordinator coordinator(grid, config);
  const GridReport merged = coordinator.run();
  ASSERT_EQ(merged.failed_cells.size(), 1u);
  EXPECT_EQ(merged.failed_cells[0].cell_index, 2u);
  EXPECT_EQ(merged.failed_cells[0].label, grid.cells()[2].label);
  EXPECT_EQ(merged.failed_cells[0].seed, grid.cells()[2].spec.seed);
  EXPECT_EQ(merged.failed_cells[0].attempts, config.max_attempts);
  EXPECT_FALSE(merged.failed_cells[0].error.empty());
  // Graceful degradation: the quarantined slot keeps its place with an
  // empty fingerprint, and the merge covers exactly the completed cells.
  ASSERT_EQ(merged.cells.size(), grid.size());
  EXPECT_TRUE(merged.cells[2].fingerprint.empty());
  GridReport expected = grid.run(2);
  expected.cells[2].fingerprint.clear();
  EXPECT_EQ(merged.combined_fingerprint,
            combine_cell_fingerprints(expected.cells));
}

TEST(GridProcess, ResumeSkipsEveryValidFrame) {
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("resume");
  const GridReport first = GridCoordinator(grid, fast_config(dir)).run();
  const GridReport second = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(second.resumed_cells, grid.size());
  EXPECT_EQ(second.retries, 0u);
  EXPECT_EQ(second.combined_fingerprint, first.combined_fingerprint);
}

TEST(GridProcess, ResumeReRunsOnlyTheCorruptedFrame) {
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("repair");
  const GridReport first = GridCoordinator(grid, fast_config(dir)).run();
  // Flip one payload byte of cell 1's frame; record the other frames so
  // we can prove they were not rewritten.
  std::vector<Bytes> before;
  for (std::uint64_t i = 0; i < grid.size(); ++i)
    before.push_back(
        read_file_bytes(dir + "/" + cell_frame_filename(i)));
  Bytes corrupt = before[1];
  corrupt[wire::kFrameHeaderBytes + 10] ^= 0x40;
  write_file_atomic(dir + "/" + cell_frame_filename(1), corrupt);

  const GridReport repaired = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(repaired.resumed_cells, grid.size() - 1);
  EXPECT_TRUE(repaired.failed_cells.empty());
  EXPECT_EQ(repaired.combined_fingerprint, first.combined_fingerprint);
  for (std::uint64_t i = 0; i < grid.size(); ++i) {
    const Bytes after = read_file_bytes(dir + "/" + cell_frame_filename(i));
    if (i == 1) {
      EXPECT_NE(after, corrupt);  // repaired, not left poisoned
      // The re-run differs only in the informational wall clock: every
      // deterministic field matches the original frame.
      const CellResult rerun = wire::decode_cell_result(after);
      const CellResult original = wire::decode_cell_result(before[1]);
      EXPECT_EQ(rerun.label, original.label);
      EXPECT_EQ(rerun.seed, original.seed);
      EXPECT_EQ(rerun.fingerprint, original.fingerprint);
      EXPECT_EQ(rerun.events_executed, original.events_executed);
    } else {
      EXPECT_EQ(after, before[i]) << "frame " << i << " was rewritten";
    }
  }
}

TEST(GridProcess, WorkerModeShardsMergeLikeTheCoordinator) {
  // Two hand-partitioned run_worker_cells calls (the gridworker --worker
  // path) followed by a coordinator pass over the same directory: every
  // frame resumes, nothing re-runs, same merge.
  const CampaignGrid grid = tiny_grid();
  const std::string dir = fresh_dir("shards");
  run_worker_cells(grid, {{0, 0}, {2, 0}}, dir);
  run_worker_cells(grid, {{1, 0}, {3, 0}}, dir);
  const GridReport merged = GridCoordinator(grid, fast_config(dir)).run();
  EXPECT_EQ(merged.resumed_cells, grid.size());
  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.combined_fingerprint,
            grid.run(2).combined_fingerprint);
}

TEST(GridProcess, FaultPlanParsesAndRoundTrips) {
  const std::string text = "crash@2:0;hang@5:1;corrupt@7:0";
  const FaultPlan plan = FaultPlan::parse(text);
  EXPECT_EQ(plan.to_string(), text);
  EXPECT_NE(plan.match(2, 0), nullptr);
  EXPECT_EQ(plan.match(2, 0)->kind, FaultSpec::Kind::kCrash);
  EXPECT_NE(plan.match(5, 1), nullptr);
  EXPECT_EQ(plan.match(5, 1)->kind, FaultSpec::Kind::kHang);
  EXPECT_NE(plan.match(7, 0), nullptr);
  EXPECT_EQ(plan.match(7, 0)->kind, FaultSpec::Kind::kCorrupt);
  EXPECT_EQ(plan.match(2, 1), nullptr);  // attempt matters
  EXPECT_EQ(plan.match(3, 0), nullptr);
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_THROW(FaultPlan::parse("explode@2:0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@x:0"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("crash@2"), std::invalid_argument);
}

TEST(GridProcess, CoordinatorConfigIsValidated) {
  const CampaignGrid grid = tiny_grid();
  GridCoordinatorConfig config = fast_config(fresh_dir("validate"));
  config.workers = 0;
  EXPECT_THROW(GridCoordinator(grid, config), ContractViolation);
  config = fast_config(fresh_dir("validate2"));
  config.max_attempts = 0;
  EXPECT_THROW(GridCoordinator(grid, config), ContractViolation);
}

// ====================================================================
// Replay grids out-of-process: detection/replay_proc.hpp over recorded
// trace files. Same fault machinery, same invariant — the merged
// fingerprint is byte-identical to in-process ReplayGrid::run.
// ====================================================================

detection::ReplayGridConfig tiny_replay_config() {
  detection::ReplayGridConfig config;
  config.replay_seeds = {1, 2};
  config.replay.benign_web = 40;
  config.replay.benign_tor = 10;
  config.flow_size_cv = {0.25, 0.5};
  config.flow_gap_cv = {0.45, 1.0};
  config.tor_min_flows = {1, 10};
  config.threads = 2;
  return config;
}

/// Records one tiny campaign as a streamed trace file under `dir`.
std::string record_tiny_trace(const std::string& dir, std::uint64_t seed) {
  fs::create_directories(dir);
  const std::string path =
      dir + "/campaign_" + std::to_string(seed) + ".otrace";
  trace_io::TraceWriter writer(path);
  CampaignEngine engine(tiny_spec(seed), writer, &writer);
  engine.run();
  writer.finish();
  return path;
}

struct RecordedCampaigns {
  std::vector<std::unique_ptr<trace_io::TraceReader>> readers;
  std::vector<const TraceSource*> sources;
};

RecordedCampaigns open_tiny_traces(const std::string& dir,
                                   std::size_t count) {
  RecordedCampaigns campaigns;
  for (std::size_t seed = 0; seed < count; ++seed) {
    campaigns.readers.push_back(std::make_unique<trace_io::TraceReader>(
        record_tiny_trace(dir, seed)));
    campaigns.sources.push_back(campaigns.readers.back().get());
  }
  return campaigns;
}

TEST(ReplayProcess, CrashInjectedCoordinatorMatchesInProcessFingerprint) {
  const std::string dir = fresh_dir("replay_match");
  const RecordedCampaigns campaigns = open_tiny_traces(dir, 2);
  const detection::ReplayGrid grid(tiny_replay_config());
  const detection::ReplayGridReport in_process =
      grid.run(campaigns.sources);

  GridCoordinatorConfig config = fast_config(dir + "/results");
  config.workers = 4;
  config.faults = FaultPlan::parse("crash@1:0");
  detection::ReplayGridCoordinator coordinator(grid, campaigns.sources,
                                               config);
  const detection::ReplayGridReport merged = coordinator.run();

  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_GE(merged.retries, 1u);
  EXPECT_EQ(merged.resumed_cells, 0u);
  ASSERT_EQ(merged.points.size(), in_process.points.size());
  // Byte-identical points at every index, not just an equal digest.
  for (std::size_t i = 0; i < merged.points.size(); ++i)
    EXPECT_EQ(detection::serialize(merged.points[i]),
              detection::serialize(in_process.points[i]));
  EXPECT_EQ(merged.fingerprint, in_process.fingerprint);
}

TEST(ReplayProcess, ResumeReRunsOnlyTheCorruptedFrame) {
  const std::string dir = fresh_dir("replay_repair");
  const RecordedCampaigns campaigns = open_tiny_traces(dir, 2);
  const detection::ReplayGrid grid(tiny_replay_config());
  const std::string results = dir + "/results";

  const detection::ReplayGridReport first =
      detection::ReplayGridCoordinator(grid, campaigns.sources,
                                       fast_config(results))
          .run();
  const std::size_t cells = grid.cell_count(campaigns.sources.size());
  std::vector<Bytes> before;
  for (std::uint64_t i = 0; i < cells; ++i)
    before.push_back(read_file_bytes(
        results + "/" + detection::replay_cell_frame_filename(i)));
  Bytes corrupt = before[2];
  corrupt[wire::kFrameHeaderBytes + 10] ^= 0x40;
  write_file_atomic(
      results + "/" + detection::replay_cell_frame_filename(2), corrupt);

  const detection::ReplayGridReport repaired =
      detection::ReplayGridCoordinator(grid, campaigns.sources,
                                       fast_config(results))
          .run();
  EXPECT_EQ(repaired.resumed_cells, cells - 1);
  EXPECT_TRUE(repaired.failed_cells.empty());
  EXPECT_EQ(repaired.fingerprint, first.fingerprint);
  for (std::uint64_t i = 0; i < cells; ++i) {
    const Bytes after = read_file_bytes(
        results + "/" + detection::replay_cell_frame_filename(i));
    if (i == 2) {
      EXPECT_NE(after, corrupt);
      // The re-run reproduces every deterministic field; only the
      // informational wall clock may differ.
      const detection::ReplayGridCell rerun = wire::decode_replay_cell(after);
      const detection::ReplayGridCell original =
          wire::decode_replay_cell(before[2]);
      EXPECT_EQ(rerun.cell_index, original.cell_index);
      EXPECT_EQ(rerun.campaign, original.campaign);
      EXPECT_EQ(rerun.replay_seed, original.replay_seed);
      ASSERT_EQ(rerun.points.size(), original.points.size());
      for (std::size_t k = 0; k < rerun.points.size(); ++k)
        EXPECT_EQ(detection::serialize(rerun.points[k]),
                  detection::serialize(original.points[k]));
    } else {
      EXPECT_EQ(after, before[i]) << "frame " << i << " was rewritten";
    }
  }
}

TEST(ReplayProcess, HandShardedWorkersThenMergeOnlyReproduceTheRun) {
  // The multi-host recipe: two disjoint --cells shards over the same
  // shared trace file, then a merge-only pass that executes nothing.
  const std::string dir = fresh_dir("replay_shards");
  const RecordedCampaigns campaigns = open_tiny_traces(dir, 2);
  const detection::ReplayGrid grid(tiny_replay_config());
  const std::string results = dir + "/results";

  detection::run_replay_worker_cells(grid, campaigns.sources,
                                     {{0, 0}, {2, 0}}, results);
  detection::run_replay_worker_cells(grid, campaigns.sources,
                                     {{1, 0}, {3, 0}}, results);
  const detection::ReplayGridReport merged = detection::merge_replay_frames(
      grid, campaigns.sources.size(), results);

  EXPECT_TRUE(merged.failed_cells.empty());
  EXPECT_EQ(merged.fingerprint, grid.run(campaigns.sources).fingerprint);
  EXPECT_EQ(detection::combine_replay_points(merged.points),
            merged.fingerprint);
}

TEST(ReplayProcess, MergeReportsMissingFramesWithoutExecuting) {
  const std::string dir = fresh_dir("replay_partial");
  const RecordedCampaigns campaigns = open_tiny_traces(dir, 1);
  const detection::ReplayGrid grid(tiny_replay_config());
  const std::string results = dir + "/results";

  detection::run_replay_worker_cells(grid, campaigns.sources, {{1, 0}},
                                     results);
  const detection::ReplayGridReport merged = detection::merge_replay_frames(
      grid, campaigns.sources.size(), results);

  ASSERT_EQ(merged.failed_cells.size(), 1u);
  EXPECT_EQ(merged.failed_cells[0].cell_index, 0u);
  EXPECT_EQ(merged.failed_cells[0].attempts, 0u);
  EXPECT_EQ(merged.failed_cells[0].error, "no result frame");
  // The partial fingerprint covers exactly the completed cell's slice
  // of the in-process grid, in order.
  const detection::ReplayGridReport in_process =
      grid.run(campaigns.sources);
  const std::size_t ppc = grid.points_per_cell();
  const std::vector<detection::ReplayGridPoint> survivors(
      in_process.points.begin() + static_cast<std::ptrdiff_t>(ppc),
      in_process.points.begin() + static_cast<std::ptrdiff_t>(2 * ppc));
  EXPECT_EQ(merged.fingerprint,
            detection::combine_replay_points(survivors));
}

TEST(ReplayProcess, PermanentCrashQuarantinesTheReplayCell) {
  const std::string dir = fresh_dir("replay_quarantine");
  const RecordedCampaigns campaigns = open_tiny_traces(dir, 1);
  const detection::ReplayGrid grid(tiny_replay_config());

  GridCoordinatorConfig config = fast_config(dir + "/results");
  config.faults = FaultPlan::parse("crash@1:0;crash@1:1;crash@1:2");
  const detection::ReplayGridReport merged =
      detection::ReplayGridCoordinator(grid, campaigns.sources, config)
          .run();

  ASSERT_EQ(merged.failed_cells.size(), 1u);
  EXPECT_EQ(merged.failed_cells[0].cell_index, 1u);
  EXPECT_EQ(merged.failed_cells[0].label, "campaign=0,replay_seed=2");
  EXPECT_EQ(merged.failed_cells[0].seed, 2u);
  EXPECT_EQ(merged.failed_cells[0].attempts, config.max_attempts);
  // Graceful degradation: the merge covers exactly cell 0's slice.
  const detection::ReplayGridReport in_process =
      grid.run(campaigns.sources);
  const std::size_t ppc = grid.points_per_cell();
  const std::vector<detection::ReplayGridPoint> survivors(
      in_process.points.begin(),
      in_process.points.begin() + static_cast<std::ptrdiff_t>(ppc));
  EXPECT_EQ(merged.points.size(), ppc);
  EXPECT_EQ(merged.fingerprint,
            detection::combine_replay_points(survivors));
}

TEST(ReplayProcess, TruncatedTraceFailsAtOpenNotInAWorker) {
  const std::string dir = fresh_dir("replay_truncated");
  const std::string path = record_tiny_trace(dir, 0);
  const Bytes whole = read_file_bytes(path);
  write_file_atomic(path,
                    Bytes(whole.begin(), whole.end() - 16));  // torn tail
  EXPECT_THROW(trace_io::TraceReader reader(path), wire::WireError);
}

}  // namespace
}  // namespace onion::scenario
