// Ablation bench for the anti-SOAP defenses of paper Section VII-A:
// proof-of-work difficulty sweep and rate-limit sweep versus SOAP
// containment, including the collateral cost honest bots pay — the
// recoverability-vs-resilience trade-off the paper leaves open.
#include <cstdio>
#include <limits>

#include "core/overlay.hpp"
#include "mitigation/soap.hpp"

namespace {

using onion::Rng;
using onion::core::OverlayConfig;
using onion::core::OverlayNetwork;
using onion::mitigation::SoapCampaign;
using onion::mitigation::SoapConfig;

constexpr std::size_t kBots = 300;
constexpr std::size_t kDegree = 10;

struct Outcome {
  double contained_fraction = 0.0;
  std::size_t rounds = 0;
  std::size_t clones = 0;
  double sybil_work = 0.0;
  double honest_work = 0.0;
  std::size_t honest_edges = 0;
};

Outcome run(double pow_base, std::size_t rate_limit, double budget,
            std::uint64_t seed) {
  Rng rng(seed);
  OverlayConfig overlay;
  overlay.dmin = kDegree;
  overlay.dmax = kDegree;
  overlay.pow_base_cost = pow_base;
  overlay.pow_growth = 1.05;  // gentle escalation per request
  overlay.rate_limit_per_round = rate_limit;
  OverlayNetwork net =
      OverlayNetwork::random_regular(kBots, kDegree, overlay, rng);

  SoapConfig soap;
  soap.requests_per_target_per_round = 2;
  soap.work_budget = budget;
  soap.max_rounds = 400;
  SoapCampaign campaign(net, soap, rng);
  campaign.capture(0);
  campaign.run();

  Outcome out;
  out.contained_fraction =
      static_cast<double>(campaign.contained_count()) / kBots;
  out.rounds = campaign.rounds_run();
  out.clones = campaign.clones_created();
  out.sybil_work = net.sybil_work_spent();
  out.honest_work = net.honest_work_spent();
  out.honest_edges = net.honest_edges();
  return out;
}

void report(const char* label, const Outcome& o) {
  std::printf(
      "%-32s | contained=%5.1f%% rounds=%-4zu clones=%-5zu "
      "sybil_work=%-10.0f honest_work=%-8.0f honest_edges=%zu\n",
      label, o.contained_fraction * 100.0, o.rounds, o.clones,
      o.sybil_work, o.honest_work, o.honest_edges);
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots ablation: anti-SOAP defenses (Section VII-A) ===\n"
      "%zu bots, %zu-regular. Attacker proof-of-work budget: 200k units\n"
      "where enabled. PoW cost of the n-th peering request at a node is\n"
      "base * 1.05^n; honest refill pays the same puzzles.\n\n",
      kBots, kDegree);

  const double kBudget = 200'000.0;
  const std::size_t kNoLimit = static_cast<std::size_t>(-1);

  std::printf("--- proof-of-work sweep (no rate limit) ---\n");
  report("pow=off", run(0.0, kNoLimit, kBudget, 0xB0));
  report("pow=1", run(1.0, kNoLimit, kBudget, 0xB1));
  report("pow=10", run(10.0, kNoLimit, kBudget, 0xB2));
  report("pow=100", run(100.0, kNoLimit, kBudget, 0xB3));
  report("pow=1000", run(1000.0, kNoLimit, kBudget, 0xB4));

  std::printf("\n--- rate-limit sweep (no PoW, unlimited budget) ---\n");
  const double kUnlimited = std::numeric_limits<double>::infinity();
  report("rate=unlimited", run(0.0, kNoLimit, kUnlimited, 0xB5));
  report("rate=4/round", run(0.0, 4, kUnlimited, 0xB6));
  report("rate=2/round", run(0.0, 2, kUnlimited, 0xB7));
  report("rate=1/round", run(0.0, 1, kUnlimited, 0xB8));

  std::printf("\n--- combined ---\n");
  report("pow=100 + rate=1/round", run(100.0, 1, kBudget, 0xB9));

  std::printf(
      "\nReading: PoW prices the Sybils out (containment drops as the\n"
      "budget binds) but honest_work shows the network paying for its\n"
      "own healing; rate limiting stretches the campaign without\n"
      "stopping a patient adversary — the paper's open trade-off.\n");
  return 0;
}
