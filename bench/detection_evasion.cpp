// Detection-evasion matrix (paper Sections II and VI): every published
// network-level detection technique the paper surveys, run against every
// botnet architecture in the evolution story, over identical benign
// background traffic. Rows are botnets, columns are detectors; cells are
// TPR/FPR. The paper's argument is the bottom row: OnionBots zero out
// every column except the one that also flags every legitimate Tor user.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/tor_flagger.hpp"
#include "detection/traffic.hpp"

namespace {

using namespace onion;
using namespace onion::detection;

struct Scenario {
  const char* name;
  std::function<TrafficTrace(const TrafficConfig&, Rng&)> generate;
};

struct Detector {
  const char* name;
  std::function<DetectionResult(const TrafficTrace&)> run;
};

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: detection-evasion matrix (SS II, VI) "
      "===\n"
      "Each cell: true-positive rate / false-positive rate over the same\n"
      "benign background (web browsing + legitimate Tor users).\n\n");

  TrafficConfig cfg;
  cfg.window = 24 * kHour;
  cfg.bots = 40;
  cfg.benign_web = 120;
  cfg.benign_tor = 20;

  const std::vector<Scenario> scenarios = {
      {"centralized-http", centralized_http_traffic},
      {"dga", dga_traffic},
      {"fast-flux", fastflux_traffic},
      {"p2p-plaintext", p2p_plain_traffic},
      {"onionbot", onionbot_traffic},
  };
  const std::vector<Detector> detectors = {
      {"dga-dns", [](const TrafficTrace& t) { return detect_dga(t); }},
      {"fast-flux",
       [](const TrafficTrace& t) { return detect_fastflux(t); }},
      {"flow-beacon",
       [](const TrafficTrace& t) { return detect_beacons(t); }},
      {"p2p-mesh", [](const TrafficTrace& t) { return detect_p2p(t); }},
      {"tor-flagger",
       [](const TrafficTrace& t) { return detect_tor_users(t); }},
  };

  std::printf("%-18s", "botnet \\ detector");
  for (const auto& d : detectors) std::printf(" %16s", d.name);
  std::printf("\n");

  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    Rng rng(0x0de7ec7 + s);
    const TrafficTrace trace = scenarios[s].generate(cfg, rng);
    std::printf("%-18s", scenarios[s].name);
    for (const auto& d : detectors) {
      const DetectionResult r = d.run(trace);
      std::printf("      %4.2f/%4.2f ", r.true_positive_rate(trace),
                  r.false_positive_rate(trace));
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape (paper SS II/VI): each legacy architecture is "
      "caught by\nits dedicated detector (TPR near 1, FPR near 0); the "
      "onionbot row is\nzero everywhere except tor-flagger, whose FPR "
      "equals the benign Tor\nuser share - blocking OnionBots that way "
      "blocks Tor itself.\n");
  return 0;
}
