// Detection-evasion matrix (paper Sections II and VI): every published
// network-level detection technique the paper surveys, run against every
// botnet architecture in the evolution story, over identical benign
// background traffic. Rows are botnets, columns are detectors; cells are
// TPR/FPR. The paper's argument is the bottom row: OnionBots zero out
// every column except the one that also flags every legitimate Tor user.
//
// Since the campaign→telemetry replay pipeline landed, the rows are no
// longer hand-rolled: one recorded scenario campaign (24 h of churn plus
// a takedown wave over a live overlay) drives the OnionBot row, and the
// legacy rows are replay compositions over the same benign background —
// the same seed replays the same matrix byte-for-byte. A threshold
// sweep (detection::RocSweep) over the all-families co-resident trace
// closes with each family's best operating point.
#include <cstdio>
#include <string>
#include <vector>

#include "detection/replay.hpp"
#include "detection/roc.hpp"
#include "detection/dga_detector.hpp"
#include "detection/fastflux_detector.hpp"
#include "detection/flow_detector.hpp"
#include "detection/p2p_detector.hpp"
#include "detection/tor_flagger.hpp"
#include "scenario/engine.hpp"

namespace {

using namespace onion;
using namespace onion::detection;

/// The campaign behind the OnionBot row: a 40-bot overlay living through
/// 24 hours of churn and a mid-day takedown wave.
scenario::CampaignTrace record_campaign() {
  scenario::ScenarioSpec spec;
  spec.seed = 0x0de7ec7;
  spec.initial_size = 40;
  spec.degree = 6;
  spec.horizon = 24 * kHour;
  spec.churn.joins_per_hour = 1.0;
  spec.churn.leaves_per_hour = 1.0;
  scenario::AttackPhase takedown;
  takedown.kind = scenario::AttackKind::RandomTakedown;
  takedown.start = 6 * kHour;
  takedown.stop = 18 * kHour;
  takedown.takedowns_per_hour = 0.5;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kHour;

  scenario::CampaignTrace campaign;
  scenario::HashSink sink;
  scenario::CampaignEngine(spec, sink, &campaign).run();
  return campaign;
}

/// Rows share one replay seed, so the benign background (drawn first) is
/// identical telemetry in every row — the controlled-experiment setup.
ReplayConfig row_config(std::size_t centralized, std::size_t dga,
                        std::size_t fastflux, std::size_t p2p,
                        bool onion) {
  ReplayConfig rc;
  rc.seed = 0xbe11;
  rc.benign_web = 120;
  rc.benign_tor = 20;
  rc.centralized_bots = centralized;
  rc.dga_bots = dga;
  rc.fastflux_bots = fastflux;
  rc.p2p_bots = p2p;
  rc.max_onion_bots = onion ? ReplayConfig::kAllBots : 0;
  return rc;
}

struct Detector {
  const char* name;
  DetectionResult (*run)(const TrafficTrace&);
};

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: detection-evasion matrix (SS II, VI) "
      "===\n"
      "Each cell: true-positive rate / false-positive rate over the same\n"
      "benign background (web browsing + legitimate Tor users). Rows are\n"
      "replayed from one recorded 24h scenario campaign (40-bot overlay,\n"
      "churn + takedown wave).\n\n");

  const scenario::CampaignTrace campaign = record_campaign();

  struct Row {
    const char* name;
    ReplayConfig config;
  };
  const std::vector<Row> rows = {
      {"centralized-http", row_config(40, 0, 0, 0, false)},
      {"dga", row_config(0, 40, 0, 0, false)},
      {"fast-flux", row_config(0, 0, 40, 0, false)},
      {"p2p-plaintext", row_config(0, 0, 0, 40, false)},
      {"onionbot", row_config(0, 0, 0, 0, true)},
  };
  const std::vector<Detector> detectors = {
      {"dga-dns", [](const TrafficTrace& t) { return detect_dga(t, {}); }},
      {"fast-flux",
       [](const TrafficTrace& t) { return detect_fastflux(t, {}); }},
      {"flow-beacon",
       [](const TrafficTrace& t) { return detect_beacons(t, {}); }},
      {"p2p-mesh", [](const TrafficTrace& t) { return detect_p2p(t, {}); }},
      {"tor-flagger",
       [](const TrafficTrace& t) { return detect_tor_users(t, 3); }},
  };

  std::printf("%-18s", "botnet \\ detector");
  for (const auto& d : detectors) std::printf(" %16s", d.name);
  std::printf("\n");

  for (const Row& row : rows) {
    const ReplayResult replay = replay_trace(campaign, row.config);
    std::printf("%-18s", row.name);
    for (const auto& d : detectors) {
      const DetectionResult r = d.run(replay.trace);
      std::printf("      %4.2f/%4.2f ", r.true_positive_rate(replay.trace),
                  r.false_positive_rate(replay.trace));
    }
    std::printf("\n");
  }

  std::printf(
      "\nExpected shape (paper SS II/VI): each legacy architecture is "
      "caught by\nits dedicated detector (TPR near 1, FPR near 0); the "
      "onionbot row is\nzero everywhere except tor-flagger, whose FPR "
      "equals the benign Tor\nuser share - blocking OnionBots that way "
      "blocks Tor itself.\n");

  // The co-resident trace: all four legacy families plus the campaign
  // population in one capture, swept across every threshold grid.
  const ReplayResult all =
      replay_trace(campaign, row_config(30, 30, 30, 30, true));
  const RocReport roc = RocSweep().run(all.trace);
  std::printf(
      "\nROC sweep over the co-resident trace (%zu operating points,\n"
      "%zu threads, %.2fs):\n  roc_fingerprint: %s\n",
      roc.points.size(), roc.threads_used, roc.wall_seconds,
      roc.fingerprint.c_str());

  // Best operating point per detector: highest TPR subject to FPR <= 2%.
  // TPR here is over the union ground truth (every family's bots at
  // once), so a legacy detector tops out near its own family's share of
  // the infected population — per-family separation is the matrix above.
  std::printf("\n%-12s %-36s %6s %6s %9s\n", "detector",
              "best params (FPR<=0.02)", "tpr", "fpr", "precision");
  for (const auto& d : detectors) {
    const RocPoint* best = nullptr;
    for (const RocPoint& p : roc.points) {
      if (p.detector != d.name || p.fpr > 0.02) continue;
      if (best == nullptr || p.tpr > best->tpr) best = &p;
    }
    if (best == nullptr)
      std::printf("%-12s %-36s %6s %6s %9s\n", d.name,
                  "(none under the FPR budget)", "-", "-", "-");
    else
      std::printf("%-12s %-36s %6.2f %6.2f %9.2f\n", d.name,
                  best->params.c_str(), best->tpr, best->fpr,
                  best->precision);
  }
  return 0;
}
