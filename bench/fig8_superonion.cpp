// Figure 8 / Section VII reproduction: SuperOnionBots vs SOAP. The same
// Sybil campaign that neutralizes a basic OnionBot overlay is run
// against a SuperOnion construction (m virtual nodes per host, probe +
// resurrect loop). Reported: hosts alive over attack rounds, soaped
// vnodes detected, resurrections, and gossip overhead.
#include <cstdio>

#include "mitigation/soap.hpp"
#include "superonion/super_network.hpp"

namespace {

using onion::Rng;
using onion::mitigation::SoapCampaign;
using onion::mitigation::SoapConfig;
using onion::super::SuperConfig;
using onion::super::SuperOnionNetwork;

void run(std::size_t hosts, std::size_t m, std::size_t i,
         std::uint64_t seed, int rounds) {
  Rng rng(seed);
  SuperConfig cfg;
  cfg.hosts = hosts;
  cfg.vnodes_per_host = m;
  cfg.peers_per_vnode = i;
  SuperOnionNetwork net(cfg, rng);

  SoapConfig soap;
  soap.requests_per_target_per_round = 2;
  SoapCampaign campaign(net.overlay(), soap, rng);
  campaign.capture(net.vnodes_of(0)[0]);

  std::printf("# construction n=%zu m=%zu i=%zu\n", hosts, m, i);
  std::printf(
      "round,hosts_alive,soaped_detected,resurrected,clones,"
      "gossip_messages\n");
  std::size_t total_resurrected = 0;
  for (int round = 0; round <= rounds; ++round) {
    if (round > 0) {
      campaign.step();
      const auto report = net.probe_and_recover();
      total_resurrected += report.resurrected;
      std::printf("%d,%zu,%zu,%zu,%zu,%zu\n", round, report.hosts_alive,
                  report.soaped_detected, report.resurrected,
                  campaign.clones_created(), report.gossip_messages);
    } else {
      std::printf("%d,%zu,0,0,0,0\n", round, net.hosts_alive());
    }
  }
  std::printf("result: hosts_alive=%zu/%zu resurrections=%zu "
              "vnodes_created=%zu\n\n",
              net.hosts_alive(), hosts, total_resurrected,
              net.vnodes_created());
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 8 / Section VII "
      "(SuperOnionBots) ===\n"
      "SOAP campaign vs the SuperOnion construction: hosts run m virtual\n"
      "nodes, flood connectivity probes (gossip over honest edges only —\n"
      "authorities cannot relay botnet traffic), abandon soaped vnodes,\n"
      "and bootstrap replacements through surviving ones.\n\n");

  // The paper's illustrative construction, scaled up, plus the m=1
  // degenerate case (equivalent to a basic OnionBot: no sibling probes,
  // no recovery).
  run(/*hosts=*/30, /*m=*/1, /*i=*/3, 0x80, /*rounds=*/40);
  run(/*hosts=*/30, /*m=*/3, /*i=*/2, 0x81, /*rounds=*/40);
  run(/*hosts=*/30, /*m=*/3, /*i=*/3, 0x82, /*rounds=*/40);
  run(/*hosts=*/30, /*m=*/5, /*i=*/3, 0x83, /*rounds=*/40);

  std::printf(
      "Expected shape (paper): with m=1 hosts fall to SOAP like basic\n"
      "OnionBots; with m>=3 the probe/resurrect loop keeps essentially\n"
      "all hosts alive — a host is lost only if all m virtual nodes are\n"
      "soaped within one probe interval. Gossip cost is the price.\n");
  return 0;
}
