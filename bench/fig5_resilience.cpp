// Figure 5 reproduction: connected components (5a/5b), average degree
// centrality (5c/5d) and diameter (5e/5f) under incremental node
// deletions, DDSR vs a normal (non-healing) graph, 10-regular, n = 5000
// and n = 15000 (paper Section V-B).
//
// Ported onto the scenario campaign engine: each series is one
// ScenarioSpec — a random-takedown phase at one victim per simulated
// second, healing on (DDSR) or off (Normal) — and the CSV rows fall out
// of the periodic MetricsSnapshot stream through a custom sink.
//
// Paper shape to match:
//   5a/5b  DDSR stays a single component until ~90-95% deletions; the
//          normal graph's component count explodes after ~60%
//   5c/5d  DDSR degree centrality rises slightly (degree pinned at k
//          while n shrinks); normal decays
//   5e/5f  DDSR diameter shrinks with the network; normal grows until
//          partition (infinite; printed as -1)
#include <cstdio>

#include "scenario/engine.hpp"

namespace {

using onion::kSecond;
using onion::scenario::AttackKind;
using onion::scenario::AttackPhase;
using onion::scenario::MetricsSnapshot;
using onion::scenario::ScenarioSpec;

constexpr std::size_t kDegree = 10;

// Prints the Figure 5 series row per snapshot. A partitioned Normal
// graph has infinite diameter; printed as -1 to match the paper's plot.
class Fig5Sink final : public onion::scenario::SnapshotSink {
 public:
  explicit Fig5Sink(bool ddsr) : ddsr_(ddsr) {}

  void on_snapshot(const MetricsSnapshot& s) override {
    const long diameter =
        (s.components > 1 && !ddsr_)
            ? -1
            : static_cast<long>(s.diameter);
    const double degree_centrality =
        s.honest_alive > 1
            ? s.average_degree / static_cast<double>(s.honest_alive - 1)
            : 0.0;
    std::printf("%llu,%llu,%.6f,%ld\n",
                static_cast<unsigned long long>(s.takedowns),
                static_cast<unsigned long long>(s.components),
                degree_centrality, diameter);
  }

 private:
  bool ddsr_;
};

void run_series(std::size_t n, bool ddsr, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = n;
  spec.degree = kDegree;
  // One victim per simulated second until ~96% of the overlay is gone;
  // a snapshot every n/25 seconds mirrors the old checkpoint spacing.
  spec.horizon = (n - n / 25) * kSecond;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 3600.0;
  takedown.heal = ddsr;
  spec.attacks.push_back(takedown);
  spec.metrics.period = (n / 25) * kSecond;
  spec.metrics.degree_histogram = false;
  spec.metrics.diameter_sweeps = 4;

  std::printf("# series n=%zu mode=%s\n", n, ddsr ? "DDSR" : "Normal");
  std::printf("deleted,components,degree_centrality,diameter\n");
  Fig5Sink sink(ddsr);
  onion::scenario::CampaignEngine engine(spec, sink);
  engine.run();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 5 ===\n"
      "10-regular graphs of n=5000 (5a/5c/5e) and n=15000 (5b/5d/5f),\n"
      "incremental deletions; DDSR (repair+prune+refill) vs Normal.\n"
      "diameter=-1 marks a partitioned Normal graph (infinite).\n\n");

  for (const std::size_t n : {std::size_t{5000}, std::size_t{15000}}) {
    for (const bool ddsr : {true, false}) {
      run_series(n, ddsr, 0x50 + n + (ddsr ? 1 : 0));
    }
  }

  std::printf(
      "Expected shape (paper): DDSR holds one component to ~90-95%%\n"
      "deletions with shrinking diameter; Normal shatters after ~60%%\n"
      "with diverging diameter.\n");
  return 0;
}
