// Figure 5 reproduction: connected components (5a/5b), average degree
// centrality (5c/5d) and diameter (5e/5f) under incremental node
// deletions, DDSR vs a normal (non-healing) graph, 10-regular, n = 5000
// and n = 15000 (paper Section V-B).
//
// Paper shape to match:
//   5a/5b  DDSR stays a single component until ~90-95% deletions; the
//          normal graph's component count explodes after ~60%
//   5c/5d  DDSR degree centrality rises slightly (degree pinned at k
//          while n shrinks); normal decays
//   5e/5f  DDSR diameter shrinks with the network; normal grows until
//          partition (infinite; printed as -1)
#include <cstdio>
#include <vector>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::core::DdsrEngine;
using onion::core::DdsrPolicy;
using onion::graph::Graph;

constexpr std::size_t kDegree = 10;

void run_series(std::size_t n, bool ddsr, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = onion::graph::random_regular(n, kDegree, rng);
  DdsrPolicy policy;
  policy.dmin = kDegree;
  policy.dmax = kDegree;
  DdsrEngine engine(g, policy, rng);

  const std::size_t checkpoint = n / 25;
  std::printf("# series n=%zu mode=%s\n", n, ddsr ? "DDSR" : "Normal");
  std::printf("deleted,components,degree_centrality,diameter\n");
  Rng metric_rng(seed ^ 0x7777);
  std::size_t deleted = 0;
  for (;;) {
    const auto comps = onion::graph::connected_components(g);
    const double degree_c = onion::graph::average_degree_centrality(g);
    const long diameter =
        comps.count <= 1
            ? static_cast<long>(
                  onion::graph::diameter_double_sweep(g, 4, metric_rng))
            : (ddsr ? static_cast<long>(onion::graph::diameter_double_sweep(
                          g, 4, metric_rng))
                    : -1);  // partitioned normal graph: infinite
    std::printf("%zu,%zu,%.6f,%ld\n", deleted, comps.count, degree_c,
                diameter);
    if (g.num_alive() <= checkpoint) break;
    for (std::size_t i = 0; i < checkpoint && g.num_alive() > 1; ++i) {
      const auto alive = g.alive_nodes();
      const auto victim =
          alive[static_cast<std::size_t>(rng.uniform(alive.size()))];
      if (ddsr) {
        engine.remove_node(victim);
      } else {
        engine.remove_node_no_repair(victim);
      }
      ++deleted;
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 5 ===\n"
      "10-regular graphs of n=5000 (5a/5c/5e) and n=15000 (5b/5d/5f),\n"
      "incremental deletions; DDSR (repair+prune+refill) vs Normal.\n"
      "diameter=-1 marks a partitioned Normal graph (infinite).\n\n");

  for (const std::size_t n : {std::size_t{5000}, std::size_t{15000}}) {
    for (const bool ddsr : {true, false}) {
      run_series(n, ddsr, 0x50 + n + (ddsr ? 1 : 0));
    }
  }

  std::printf(
      "Expected shape (paper): DDSR holds one component to ~90-95%%\n"
      "deletions with shrinking diameter; Normal shatters after ~60%%\n"
      "with diverging diameter.\n");
  return 0;
}
