// Figure 5 reproduction: connected components (5a/5b), average degree
// centrality (5c/5d) and diameter (5e/5f) under incremental node
// deletions, DDSR vs a normal (non-healing) graph, 10-regular, n = 5000
// and n = 15000 (paper Section V-B).
//
// The trial loop rides on the CampaignGrid runner: each series is one
// grid cell — a random-takedown phase at one victim per simulated
// second, healing on (DDSR) or off (Normal) — and all four campaigns
// shard across the machine's cores. The CSV rows come from the per-cell
// MetricsSnapshot series the grid report aggregates, in the same shape
// the single-threaded port printed.
//
// Paper shape to match:
//   5a/5b  DDSR stays a single component until ~90-95% deletions; the
//          normal graph's component count explodes after ~60%
//   5c/5d  DDSR degree centrality rises slightly (degree pinned at k
//          while n shrinks); normal decays
//   5e/5f  DDSR diameter shrinks with the network; normal grows until
//          partition (infinite; printed as -1)
//
// A second grid extends the figure past the paper's static schedule:
// the same deletion rate against a non-healing graph (Figure 6's
// simultaneous model), but centrality-ranked by an attacker who surveys
// the overlay once (stale hit list), every 5 simulated minutes, or
// before every strike (the live re-rank limit) — the adaptive-vs-static
// comparison of the scenario engine's AttackKind::AdaptiveTakedown.
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/runner.hpp"

namespace {

using onion::kMinute;
using onion::kSecond;
using onion::SimDuration;
using onion::scenario::AttackKind;
using onion::scenario::AttackPhase;
using onion::scenario::CampaignGrid;
using onion::scenario::CellResult;
using onion::scenario::GridReport;
using onion::scenario::kNeverRefresh;
using onion::scenario::MetricsSnapshot;
using onion::scenario::RankMetric;
using onion::scenario::ScenarioSpec;

constexpr std::size_t kDegree = 10;

ScenarioSpec series_spec(std::size_t n, bool ddsr, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = n;
  spec.degree = kDegree;
  // One victim per simulated second until ~96% of the overlay is gone;
  // a snapshot every n/25 seconds mirrors the old checkpoint spacing.
  spec.horizon = (n - n / 25) * kSecond;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 3600.0;
  takedown.heal = ddsr;
  spec.attacks.push_back(takedown);
  spec.metrics.period = (n / 25) * kSecond;
  spec.metrics.degree_histogram = false;
  spec.metrics.diameter_sweeps = 4;
  return spec;
}

// Adaptive-vs-static: 2000 bots, one centrality-ranked victim per
// simulated second for 1200 s (60% of the overlay), healing disabled so
// the damage reflects targeting quality alone; the cells differ only in
// how often the attacker re-surveys. (With DDSR healing on, all three
// cadences hold one component to the population's end — the overlay
// repairs centrality faster than any attacker can exploit it.)
ScenarioSpec adaptive_spec(SimDuration refresh, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.seed = seed;
  spec.initial_size = 2000;
  spec.degree = kDegree;
  spec.horizon = 1200 * kSecond;
  AttackPhase takedown;
  takedown.kind = AttackKind::AdaptiveTakedown;
  takedown.rank = RankMetric::SampledBetweenness;
  takedown.refresh_period = refresh;
  takedown.betweenness_pivots = 32;
  takedown.heal = false;
  takedown.start = 0;
  takedown.stop = spec.horizon;
  takedown.takedowns_per_hour = 3600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 60 * kSecond;
  spec.metrics.degree_histogram = false;
  return spec;
}

// One Figure 5 series row per snapshot. A partitioned Normal graph has
// infinite diameter; printed as -1 to match the paper's plot.
void print_series(const CellResult& cell, std::size_t n, bool ddsr) {
  std::printf("# series n=%zu mode=%s\n", n, ddsr ? "DDSR" : "Normal");
  std::printf("deleted,components,degree_centrality,diameter\n");
  for (const MetricsSnapshot& s : cell.series) {
    const long diameter = (s.components > 1 && !ddsr)
                              ? -1
                              : static_cast<long>(s.diameter);
    const double degree_centrality =
        s.honest_alive > 1
            ? s.average_degree / static_cast<double>(s.honest_alive - 1)
            : 0.0;
    std::printf("%llu,%llu,%.6f,%ld\n",
                static_cast<unsigned long long>(s.takedowns),
                static_cast<unsigned long long>(s.components),
                degree_centrality, diameter);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 5 ===\n"
      "10-regular graphs of n=5000 (5a/5c/5e) and n=15000 (5b/5d/5f),\n"
      "incremental deletions; DDSR (repair+prune+refill) vs Normal.\n"
      "diameter=-1 marks a partitioned Normal graph (infinite).\n\n");

  // One series list drives both the grid cells and the printed headers,
  // so the two can never fall out of index sync.
  struct Series {
    std::size_t n;
    bool ddsr;
  };
  std::vector<Series> series;
  for (const std::size_t n : {std::size_t{5000}, std::size_t{15000}})
    for (const bool ddsr : {true, false}) series.push_back({n, ddsr});

  CampaignGrid grid;
  for (const Series& s : series)
    grid.add("n=" + std::to_string(s.n) + (s.ddsr ? "/ddsr" : "/normal"),
             series_spec(s.n, s.ddsr, 0x50 + s.n + (s.ddsr ? 1 : 0)));

  const GridReport report = grid.run();
  for (std::size_t i = 0; i < report.cells.size(); ++i)
    print_series(report.cells[i], series[i].n, series[i].ddsr);

  std::printf(
      "Expected shape (paper): DDSR holds one component to ~90-95%%\n"
      "deletions with shrinking diameter; Normal shatters after ~60%%\n"
      "with diverging diameter.\n");
  std::printf("# grid: %zu cells over %zu threads in %.2fs (combined %s)\n",
              report.cells.size(), report.threads_used,
              report.wall_seconds, report.combined_fingerprint.c_str());

  // --- adaptive vs static attacker, same deletion budget --------------
  std::printf(
      "\n=== Beyond the paper: adaptive vs static centrality attacker ===\n"
      "n=2000, 1 victim/s for 1200s, healing off (Figure 6 model); the\n"
      "attacker ranks by sampled betweenness surveyed once / every 5 min\n"
      "/ before every strike.\n\n");
  struct AdaptiveSeries {
    const char* label;
    SimDuration refresh;
  };
  const std::vector<AdaptiveSeries> adaptive = {
      {"static-rank-once", kNeverRefresh},
      {"adaptive-5min", 5 * kMinute},
      {"live-rerank", 0},
  };
  CampaignGrid adaptive_grid;
  for (const AdaptiveSeries& s : adaptive)
    adaptive_grid.add(s.label, adaptive_spec(s.refresh, 0xf16'5));
  const GridReport adaptive_report = adaptive_grid.run();
  for (std::size_t i = 0; i < adaptive_report.cells.size(); ++i) {
    std::printf("# series mode=%s\n", adaptive[i].label);
    std::printf("deleted,components,largest_fraction,alive\n");
    for (const MetricsSnapshot& s : adaptive_report.cells[i].series)
      std::printf("%llu,%llu,%.4f,%llu\n",
                  static_cast<unsigned long long>(s.takedowns),
                  static_cast<unsigned long long>(s.components),
                  s.largest_fraction,
                  static_cast<unsigned long long>(s.honest_alive));
    std::printf("\n");
  }
  std::printf(
      "Expected shape: the faster the attacker re-surveys, the harder\n"
      "the same deletion budget hits — a static hit list goes stale as\n"
      "the graph fragments and wastes strikes on bots that no longer cut\n"
      "anything, while the live re-ranker tracks every fresh cut vertex.\n");
  std::printf("# grid: %zu cells over %zu threads in %.2fs (combined %s)\n",
              adaptive_report.cells.size(), adaptive_report.threads_used,
              adaptive_report.wall_seconds,
              adaptive_report.combined_fingerprint.c_str());
  return 0;
}
