// Shared measurement harness for the sweep-vs-incremental snapshot-cost
// benches: micro_snapshot.cpp (the 10k/50k/200k table) and
// bench_report.cpp (the BENCH_scenario.json perf trajectory) must report
// numbers measured the same way, so the loop lives once, here.
//
// Three per-snapshot costs on one live overlay:
//   sweep        — the from-scratch O((n+m)·α) pass the engine used to
//                  pay per snapshot (scenario::sweep_structural)
//   incremental  — StructuralTracker::fill after a pure-growth window
//                  (joins only): O(changes), independent of graph size
//   rebuild      — fill after a window containing a deletion: the
//                  hybrid's worst case, one component rebuild ≈ sweep
#pragma once

#include <chrono>
#include <cstdint>

#include "core/ddsr.hpp"
#include "scenario/tracker.hpp"

namespace onion::bench {

constexpr std::size_t kSnapshotCostDegree = 10;
/// Dense cadence model: this many joins between consecutive snapshots.
constexpr int kGrowthJoinsPerWindow = 8;

struct SnapshotCosts {
  std::size_t nodes = 0;
  double sweep_us = 0.0;
  double incremental_us = 0.0;
  double rebuild_us = 0.0;
};

namespace detail {

inline double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One join: a node enters and wires itself to `kSnapshotCostDegree`
/// random alive honest bots (graph-level, so only the tracker's observer
/// path is timed, not the peering policy).
inline void join(core::OverlayNetwork& net, Rng& rng) {
  const graph::NodeId id = net.add_node(/*honest=*/true);
  graph::Graph& g = net.graph_mut();
  std::size_t wired = 0;
  while (wired < kSnapshotCostDegree) {
    const auto v = static_cast<graph::NodeId>(rng.uniform(g.capacity()));
    if (v == id || !g.alive(v) || !net.honest(v)) continue;
    if (g.add_edge(id, v)) ++wired;
  }
}

}  // namespace detail

/// Builds a `nodes`-bot 10-regular overlay and measures the three costs,
/// `rounds` repetitions each. `checksum` accumulates observed metric
/// values so the compiler cannot elide the measured work.
inline SnapshotCosts measure_snapshot_costs(std::size_t nodes, int rounds,
                                            std::uint64_t& checksum) {
  using Clock = std::chrono::steady_clock;
  Rng rng(0x5eed + nodes);
  core::OverlayConfig config;
  config.dmin = kSnapshotCostDegree;
  config.dmax = kSnapshotCostDegree;
  core::OverlayNetwork net = core::OverlayNetwork::random_regular(
      nodes, kSnapshotCostDegree, config, rng);
  core::DdsrPolicy policy;
  policy.dmin = kSnapshotCostDegree;
  policy.dmax = kSnapshotCostDegree;
  core::DdsrEngine ddsr(net.graph_mut(), policy, rng);
  scenario::StructuralTracker tracker(net);

  SnapshotCosts costs;
  costs.nodes = nodes;

  // Sweep: the old per-snapshot price, on the live state.
  for (int r = 0; r < rounds; ++r) {
    const auto start = Clock::now();
    const scenario::MetricsSnapshot s =
        scenario::sweep_structural(net, true);
    costs.sweep_us += detail::us_since(start);
    checksum += s.honest_edges;
  }
  costs.sweep_us /= rounds;

  // Incremental: pure-growth windows (joins only) then one fill.
  for (int r = 0; r < rounds; ++r) {
    for (int j = 0; j < kGrowthJoinsPerWindow; ++j) detail::join(net, rng);
    const auto start = Clock::now();
    scenario::MetricsSnapshot s;
    tracker.fill(s, true);
    costs.incremental_us += detail::us_since(start);
    checksum += s.honest_edges;
  }
  costs.incremental_us /= rounds;

  // Rebuild: each window loses one bot (DDSR heals the hole), so the
  // next fill pays the hybrid's component rebuild.
  for (int r = 0; r < rounds; ++r) {
    ddsr.remove_node(rng.pick(net.honest_nodes()));
    const auto start = Clock::now();
    scenario::MetricsSnapshot s;
    tracker.fill(s, true);
    costs.rebuild_us += detail::us_since(start);
    checksum += s.honest_edges;
  }
  costs.rebuild_us /= rounds;
  return costs;
}

}  // namespace onion::bench
