// Shared measurement harness for the sweep-vs-incremental snapshot-cost
// benches: micro_snapshot.cpp (the 10k/50k/200k table) and
// bench_report.cpp (the BENCH_scenario.json perf trajectory) must report
// numbers measured the same way, so the loop lives once, here.
//
// Four per-snapshot costs on one live overlay:
//   sweep     — the from-scratch O((n+m)·α) pass the engine used to pay
//               per snapshot (scenario::sweep_structural)
//   growth    — StructuralTracker::fill after a pure-growth window
//               (joins only): O(changes), independent of graph size
//   deletion  — StructuralTracker::fill after a window that lost a bot:
//               with fully-dynamic connectivity this is the same O(1)
//               fill (the split was settled when the edges detached)
//   rebuild   — the retired hybrid tracker's deletion-window price: one
//               full union-find component rebuild, measured with the
//               allocation-free UnionFind::reset storage reuse (the fix
//               for the 50k regression where a fresh UnionFind per
//               rebuild made it *slower* than the sweep)
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/ddsr.hpp"
#include "graph/union_find.hpp"
#include "scenario/tracker.hpp"

namespace onion::bench {

constexpr std::size_t kSnapshotCostDegree = 10;
/// Dense cadence model: this many joins between consecutive snapshots.
constexpr int kGrowthJoinsPerWindow = 8;

struct SnapshotCosts {
  std::size_t nodes = 0;
  double sweep_us = 0.0;
  double incremental_us = 0.0;  // growth window
  double deletion_us = 0.0;     // deletion window, dynamic connectivity
  double rebuild_us = 0.0;      // deletion window, retired rebuild scheme
};

namespace detail {

inline double us_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// One join: a node enters and wires itself to `kSnapshotCostDegree`
/// random alive honest bots (graph-level, so only the tracker's observer
/// path is timed, not the peering policy).
inline void join(core::OverlayNetwork& net, Rng& rng) {
  const graph::NodeId id = net.add_node(/*honest=*/true);
  graph::Graph& g = net.graph_mut();
  std::size_t wired = 0;
  while (wired < kSnapshotCostDegree) {
    const auto v = static_cast<graph::NodeId>(rng.uniform(g.capacity()));
    if (v == id || !g.alive(v) || !net.honest(v)) continue;
    if (g.add_edge(id, v)) ++wired;
  }
}

/// The retired hybrid tracker's rebuild_components(), kept here as the
/// comparison baseline: union-find over the honest subgraph plus a
/// component-size pass. Storage persists across calls (UnionFind::reset
/// + scratch assign), so the measured number is union time, not malloc
/// time — the allocation-free fix the old in-tracker version lacked.
class RebuildBaseline {
 public:
  /// Returns {components, largest} so callers can checksum the result.
  std::pair<std::uint64_t, std::uint64_t> run(
      const core::OverlayNetwork& net) {
    const graph::Graph& g = net.graph();
    const std::size_t cap = g.capacity();
    uf_.reset(cap);
    scratch_.assign(cap, 0);
    std::uint64_t components = 0;
    std::uint64_t largest = 0;
    for (graph::NodeId u = 0; u < cap; ++u) {
      if (!g.alive(u) || !net.honest(u)) continue;
      for (const graph::NodeId v : g.neighbors(u))
        if (v > u && net.honest(v)) uf_.unite(u, v);
    }
    for (graph::NodeId u = 0; u < cap; ++u) {
      if (!g.alive(u) || !net.honest(u)) continue;
      const std::uint32_t size =
          ++scratch_[static_cast<std::size_t>(uf_.find(u))];
      if (size == 1) ++components;
      if (size > largest) largest = size;
    }
    return {components, largest};
  }

 private:
  graph::UnionFind uf_{0};
  std::vector<std::uint32_t> scratch_;
};

}  // namespace detail

/// Builds a `nodes`-bot 10-regular overlay and measures the four costs,
/// `rounds` repetitions each. `checksum` accumulates observed metric
/// values so the compiler cannot elide the measured work.
inline SnapshotCosts measure_snapshot_costs(std::size_t nodes, int rounds,
                                            std::uint64_t& checksum) {
  using Clock = std::chrono::steady_clock;
  Rng rng(0x5eed + nodes);
  core::OverlayConfig config;
  config.dmin = kSnapshotCostDegree;
  config.dmax = kSnapshotCostDegree;
  core::OverlayNetwork net = core::OverlayNetwork::random_regular(
      nodes, kSnapshotCostDegree, config, rng);
  core::DdsrPolicy policy;
  policy.dmin = kSnapshotCostDegree;
  policy.dmax = kSnapshotCostDegree;
  core::DdsrEngine ddsr(net.graph_mut(), policy, rng);
  scenario::StructuralTracker tracker(net);

  SnapshotCosts costs;
  costs.nodes = nodes;

  // Sweep: the old per-snapshot price, on the live state.
  for (int r = 0; r < rounds; ++r) {
    const auto start = Clock::now();
    const scenario::MetricsSnapshot s =
        scenario::sweep_structural(net, true);
    costs.sweep_us += detail::us_since(start);
    checksum += s.honest_edges;
  }
  costs.sweep_us /= rounds;

  // Growth: pure-growth windows (joins only) then one fill.
  for (int r = 0; r < rounds; ++r) {
    for (int j = 0; j < kGrowthJoinsPerWindow; ++j) detail::join(net, rng);
    const auto start = Clock::now();
    scenario::MetricsSnapshot s;
    tracker.fill(s, true);
    costs.incremental_us += detail::us_since(start);
    checksum += s.honest_edges;
  }
  costs.incremental_us /= rounds;

  // Deletion window: each round loses one bot (DDSR heals the hole;
  // the tracker folds the removal in via the observer as it happens),
  // then the snapshot is billed. The retired scheme's rebuild is
  // measured on the same post-deletion state for the apples-to-apples
  // "what did the cliff cost" column.
  detail::RebuildBaseline baseline;
  for (int r = 0; r < rounds; ++r) {
    ddsr.remove_node(
        static_cast<graph::NodeId>(tracker.honest_at(
            rng.uniform(tracker.honest_alive()))));
    const auto fill_start = Clock::now();
    scenario::MetricsSnapshot s;
    tracker.fill(s, true);
    costs.deletion_us += detail::us_since(fill_start);
    checksum += s.honest_edges + s.components;

    const auto rebuild_start = Clock::now();
    const auto [components, largest] = baseline.run(net);
    costs.rebuild_us += detail::us_since(rebuild_start);
    checksum += components + largest;
  }
  costs.deletion_us /= rounds;
  costs.rebuild_us /= rounds;
  return costs;
}

}  // namespace onion::bench
