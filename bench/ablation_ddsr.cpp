// Ablation bench for the DDSR design choices DESIGN.md §4 calls out:
//   repair rule   — pairwise clique (paper) vs random matching
//   prune victim  — highest-degree (paper) vs random
//   refill        — NoN refill on vs off
// Metric suite after a 50% gradual takedown of a 10-regular overlay:
// connectivity, largest component, degree stats, diameter, repair cost.
#include <cstdio>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::core::DdsrEngine;
using onion::core::DdsrPolicy;
using onion::graph::Graph;

constexpr std::size_t kNodes = 2000;
constexpr std::size_t kDegree = 10;
constexpr std::size_t kDeletions = kNodes / 2;

struct Outcome {
  bool connected = false;
  std::size_t components = 0;
  std::size_t largest = 0;
  double avg_degree = 0.0;
  std::size_t max_degree = 0;
  std::size_t diameter = 0;
  std::uint64_t repair_edges = 0;
  std::uint64_t prune_edges = 0;
  std::uint64_t refill_edges = 0;
};

Outcome run(DdsrPolicy policy, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = onion::graph::random_regular(kNodes, kDegree, rng);
  DdsrEngine engine(g, policy, rng);
  for (std::size_t i = 0; i < kDeletions; ++i) {
    const auto alive = g.alive_nodes();
    engine.remove_node(
        alive[static_cast<std::size_t>(rng.uniform(alive.size()))]);
  }
  Outcome out;
  const auto comps = onion::graph::connected_components(g);
  out.connected = comps.count == 1;
  out.components = comps.count;
  out.largest = comps.largest();
  out.avg_degree = g.average_degree();
  for (const auto u : g.alive_nodes())
    out.max_degree = std::max(out.max_degree, g.degree(u));
  Rng mrng(seed ^ 0x99);
  out.diameter = onion::graph::diameter_double_sweep(g, 4, mrng);
  out.repair_edges = engine.stats().repair_edges_added;
  out.prune_edges = engine.stats().prune_edges_removed;
  out.refill_edges = engine.stats().refill_edges_added;
  return out;
}

void report(const char* name, const Outcome& o) {
  std::printf(
      "%-34s | conn=%-3s comps=%-4zu largest=%-4zu avgdeg=%5.2f "
      "maxdeg=%-3zu diam=%-2zu | repair=%llu prune=%llu refill=%llu\n",
      name, o.connected ? "yes" : "NO", o.components, o.largest,
      o.avg_degree, o.max_degree, o.diameter,
      static_cast<unsigned long long>(o.repair_edges),
      static_cast<unsigned long long>(o.prune_edges),
      static_cast<unsigned long long>(o.refill_edges));
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots ablation: DDSR policy choices ===\n"
      "%zu-node 10-regular overlay, %zu (50%%) gradual deletions.\n\n",
      kNodes, kDeletions);

  DdsrPolicy paper;
  paper.dmin = kDegree;
  paper.dmax = kDegree;

  {
    report("paper: pairwise+highest+refill", run(paper, 0xA0));
  }
  {
    DdsrPolicy p = paper;
    p.repair = DdsrPolicy::Repair::RandomMatch;
    report("repair=random-match", run(p, 0xA1));
  }
  {
    DdsrPolicy p = paper;
    p.victim = DdsrPolicy::Victim::Random;
    report("victim=random", run(p, 0xA2));
  }
  {
    DdsrPolicy p = paper;
    p.refill = false;
    report("refill=off", run(p, 0xA3));
  }
  {
    DdsrPolicy p = paper;
    p.prune = false;
    report("prune=off", run(p, 0xA4));
  }
  {
    DdsrPolicy p = paper;
    p.repair = DdsrPolicy::Repair::RandomMatch;
    p.refill = false;
    report("random-match+no-refill", run(p, 0xA5));
  }

  std::printf(
      "\nReading: the paper's combination holds one component with\n"
      "degree pinned at k; random matching repairs cheaper but leans on\n"
      "refill; disabling pruning lets degree (exposure) grow.\n");
  return 0;
}
