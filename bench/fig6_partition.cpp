// Figure 6 reproduction: simultaneous-takedown partition threshold. For
// 10-regular graphs of n = 1000..15000, delete random nodes *without*
// repair (a simultaneous takedown leaves no time to heal) and record the
// first deletion count at which the graph partitions. The paper reports
// the threshold at roughly 40% of the nodes (fit line f(x) = 0.4x).
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::graph::Graph;
using onion::graph::NodeId;

constexpr std::size_t kDegree = 10;
constexpr int kTrials = 5;
constexpr std::size_t kCheckEvery = 250;

// First deletion count (1-based) at which removing order[0..count-1]
// disconnects the survivors. Fast path: a surviving vertex losing its
// last neighbor is the dominant first partition event and is detected
// exactly; a periodic full connectivity check plus exact replay from a
// pristine copy covers multi-node splits.
std::size_t partition_point(const Graph& pristine,
                            const std::vector<NodeId>& order) {
  Graph g = pristine;
  std::size_t last_verified = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const NodeId victim = order[i];
    bool strands = false;
    for (const NodeId nb : g.neighbors(victim)) {
      if (g.degree(nb) == 1 && g.num_alive() > 2) {
        strands = true;
        break;
      }
    }
    g.remove_node(victim);
    const std::size_t removed = i + 1;
    if (strands && g.num_alive() >= 2) return removed;

    if (removed - last_verified >= kCheckEvery && g.num_alive() >= 2) {
      if (onion::graph::is_connected(g)) {
        last_verified = removed;
      } else {
        // Exact replay between the last verified point and here.
        Graph replay = pristine;
        for (std::size_t j = 0; j < last_verified; ++j)
          replay.remove_node(order[j]);
        for (std::size_t j = last_verified; j < removed; ++j) {
          replay.remove_node(order[j]);
          if (replay.num_alive() >= 2 &&
              !onion::graph::is_connected(replay))
            return j + 1;
        }
        return removed;
      }
    }
  }
  return order.size();
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 6 ===\n"
      "Simultaneous takedown (no self-repair): random deletions in a\n"
      "10-regular graph until the first partition; %d trials per size.\n\n"
      "n,mean_deleted,min,max,mean_fraction\n",
      kTrials);

  double sum_xy = 0.0, sum_xx = 0.0;
  for (std::size_t n = 1000; n <= 15000; n += 1000) {
    std::size_t total = 0, lo = n, hi = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(0x600 + n * 31 + static_cast<std::size_t>(trial));
      const Graph pristine = onion::graph::random_regular(n, kDegree, rng);
      std::vector<NodeId> order = pristine.alive_nodes();
      rng.shuffle(order);
      const std::size_t point = partition_point(pristine, order);
      total += point;
      lo = std::min(lo, point);
      hi = std::max(hi, point);
    }
    const double mean = static_cast<double>(total) / kTrials;
    std::printf("%zu,%.1f,%zu,%zu,%.3f\n", n, mean, lo, hi,
                mean / static_cast<double>(n));
    sum_xy += static_cast<double>(n) * mean;
    sum_xx += static_cast<double>(n) * static_cast<double>(n);
  }

  std::printf(
      "\nleast-squares slope through origin: f(x) = %.3f * x\n"
      "Expected (paper): about 0.4x — partition after ~40%% of nodes\n"
      "are removed simultaneously.\n",
      sum_xy / sum_xx);
  return 0;
}
