// Figure 6 reproduction: simultaneous-takedown partition threshold. For
// 10-regular graphs of n = 1000..15000, delete random nodes *without*
// repair (a simultaneous takedown leaves no time to heal) and record the
// first deletion count at which the graph partitions. The paper reports
// the threshold at roughly 40% of the nodes (fit line f(x) = 0.4x).
//
// Ported onto the batch-deletion metrics path: first_partition_index
// replays the whole deletion order as reverse union-find insertions,
// O((n+m)·α(n)) per trial instead of the old strand-detection plus
// periodic-BFS scan — the same incremental-components machinery the
// scenario campaign engine uses for its snapshots.
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::graph::Graph;
using onion::graph::NodeId;

constexpr std::size_t kDegree = 10;
constexpr int kTrials = 5;

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 6 ===\n"
      "Simultaneous takedown (no self-repair): random deletions in a\n"
      "10-regular graph until the first partition; %d trials per size.\n\n"
      "n,mean_deleted,min,max,mean_fraction\n",
      kTrials);

  double sum_xy = 0.0, sum_xx = 0.0;
  for (std::size_t n = 1000; n <= 15000; n += 1000) {
    std::size_t total = 0, lo = n, hi = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(0x600 + n * 31 + static_cast<std::size_t>(trial));
      const Graph pristine = onion::graph::random_regular(n, kDegree, rng);
      std::vector<NodeId> order = pristine.alive_nodes();
      rng.shuffle(order);
      const std::size_t point =
          onion::graph::first_partition_index(pristine, order);
      total += point;
      lo = std::min(lo, point);
      hi = std::max(hi, point);
    }
    const double mean = static_cast<double>(total) / kTrials;
    std::printf("%zu,%.1f,%zu,%zu,%.3f\n", n, mean, lo, hi,
                mean / static_cast<double>(n));
    sum_xy += static_cast<double>(n) * mean;
    sum_xx += static_cast<double>(n) * static_cast<double>(n);
  }

  std::printf(
      "\nleast-squares slope through origin: f(x) = %.3f * x\n"
      "Expected (paper): about 0.4x — partition after ~40%% of nodes\n"
      "are removed simultaneously.\n",
      sum_xy / sum_xx);
  return 0;
}
