// Micro-benchmarks for the Tor substrate: descriptor math, cell
// layering, and full rendezvous connections over the discrete-event
// simulator (wall-clock cost of simulating one hidden-service contact;
// the virtual latency lives in the simulator clock).
#include <benchmark/benchmark.h>

#include "sim/simulator.hpp"
#include "tor/cell.hpp"
#include "tor/descriptor.hpp"
#include "tor/tor_network.hpp"

namespace {

using namespace onion;
using namespace onion::tor;

crypto::RsaKeyPair key_of(std::uint64_t seed) {
  Rng rng(seed);
  return crypto::rsa_generate(rng, 1024);
}

void BM_DescriptorId(benchmark::State& state) {
  const OnionAddress addr = OnionAddress::from_public_key(key_of(1).pub);
  std::uint64_t period = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(descriptor_id(addr, ++period, {}, 0));
}
BENCHMARK(BM_DescriptorId);

void BM_CellLayering(benchmark::State& state) {
  const std::vector<Bytes> keys = {Bytes(32, 1), Bytes(32, 2),
                                   Bytes(32, 3)};
  const Cell cell = make_cell(to_bytes("cell payload"));
  std::uint64_t seq = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(onion_wrap(keys, ++seq, cell));
}
BENCHMARK(BM_CellLayering);

void BM_PublishService(benchmark::State& state) {
  sim::Simulator sim;
  TorNetwork tor(sim, TorConfig{.num_relays = 40}, 0x123);
  const EndpointId host = tor.create_endpoint();
  std::uint64_t seed = 100;
  for (auto _ : state) {
    const auto key = key_of(seed++);
    benchmark::DoNotOptimize(tor.publish_service(
        host, key, [](BytesView, const OnionAddress&) -> Bytes {
          return {};
        }));
  }
}
BENCHMARK(BM_PublishService);

void BM_FullRendezvousConnect(benchmark::State& state) {
  // Wall-clock cost of simulating one complete hidden-service contact
  // (descriptor fetch, rendezvous, intro, join, payload, reply).
  sim::Simulator sim;
  TorNetwork tor(sim, TorConfig{.num_relays = 40}, 0x456);
  const EndpointId host = tor.create_endpoint();
  const EndpointId client = tor.create_endpoint();
  const OnionAddress addr = tor.publish_service(
      host, key_of(7),
      [](BytesView, const OnionAddress&) -> Bytes { return to_bytes("ok"); });
  for (auto _ : state) {
    bool ok = false;
    tor.connect_and_send(client, addr, to_bytes("ping"),
                         [&](const ConnectResult& r) { ok = r.ok; });
    sim.run();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_FullRendezvousConnect);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i)
      sim.schedule_at(static_cast<SimTime>(i), [&counter] { ++counter; });
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace
