// Table I reproduction: "Cryptographic use in different botnets" —
// demonstrated in running code. For each legacy family the harness
// decrypts a command, replays a captured wire, and attempts a forgery;
// the OnionBot row shows the contrast (authenticated commands, replay
// rejected).
#include <cstdio>
#include <set>
#include <string>

#include "baselines/legacy.hpp"
#include "core/messages.hpp"
#include "crypto/elligator_sim.hpp"

namespace {

using onion::Rng;
using namespace onion::baselines;

void demo_family(LegacyFamily family, Rng& rng) {
  const LegacyProfile& prof = profile(family);
  const LegacyController controller(family, rng);
  LegacyBot bot(controller);

  const LegacyWire wire = controller.make_command("ddos target.example");
  const bool decoded = bot.accept(wire).has_value();
  const bool replayed = bot.accept(wire).has_value();
  const bool forged =
      bot.accept(forge_command(controller, "forged command")).has_value();

  std::printf("%-14s | %-12s | %-9s | %-6s | replay=%s forge=%s\n",
              prof.name, prof.crypto, prof.signing,
              prof.replayable ? "yes" : "no", replayed ? "OK" : "NO",
              forged ? "OK" : "NO");
  if (!decoded) std::printf("  !! decode failed unexpectedly\n");
}

void demo_onionbot(Rng& rng) {
  using namespace onion::core;
  // OnionBot command plane: RSA-2048(sim)-signed commands inside
  // uniform-looking envelopes; bots keep a nonce cache.
  const onion::crypto::RsaKeyPair master =
      onion::crypto::rsa_generate(rng, 2048);
  onion::Bytes group_key(32, 0x11);

  Command cmd;
  cmd.type = CommandType::Ddos;
  cmd.argument = "target.example";
  cmd.issued_at = 1000;
  cmd.nonce = rng.next_u64();
  const SignedCommand sc = sign_command(master, cmd);
  const onion::Bytes envelope =
      onion::crypto::uniform_encode(group_key, sc.serialize(), rng);

  // A "bot": verify + nonce cache.
  std::set<std::uint64_t> nonces;
  const auto accept = [&](const onion::Bytes& env) {
    const auto opened = onion::crypto::uniform_decode(group_key, env);
    if (!opened) return false;
    const SignedCommand parsed = SignedCommand::parse(*opened);
    if (!parsed.verify(master.pub, 2000, onion::kHour)) return false;
    return nonces.insert(parsed.command.nonce).second;
  };

  const bool first = accept(envelope);
  const bool replayed = accept(envelope);
  // Forgery: signed by a non-master key.
  Rng forger(999);
  const onion::crypto::RsaKeyPair impostor =
      onion::crypto::rsa_generate(forger, 2048);
  Command evil = cmd;
  evil.nonce = forger.next_u64();
  const SignedCommand forged_cmd = sign_command(impostor, evil);
  const bool forged = accept(
      onion::crypto::uniform_encode(group_key, forged_cmd.serialize(),
                                    forger));

  std::printf("%-14s | %-12s | %-9s | %-6s | replay=%s forge=%s\n",
              "OnionBot", "Tor+uniform", "RSA 2048", "no",
              replayed ? "OK" : "NO", forged ? "OK" : "NO");
  if (!first) std::printf("  !! first delivery failed unexpectedly\n");
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Table I ===\n"
      "Cryptographic use in different botnets, demonstrated live:\n"
      "each row runs the family's real scheme; 'replay' replays a\n"
      "captured wire, 'forge' submits a defender-forged command.\n\n");
  std::printf("%-14s | %-12s | %-9s | %-6s | live demo\n", "Botnet",
              "Crypto", "Signing", "Replay");
  std::printf(
      "---------------+--------------+-----------+--------+--------------"
      "------\n");
  Rng rng(0x7ab1e);
  for (const LegacyFamily family : all_legacy_families())
    demo_family(family, rng);
  demo_onionbot(rng);
  std::printf(
      "\nExpected (paper Table I): all four legacy families replayable;\n"
      "Miner and Storm forgeable (no signing). OnionBot: neither.\n");
  return 0;
}
