// Figure 4 reproduction: average closeness centrality (4a/4b) and degree
// centrality (4c/4d) of k-regular graphs, k in {5, 10, 15}, n = 5000,
// under gradual node deletion with DDSR repair, with and without pruning
// (paper Section V-B).
//
// Paper shape to match:
//   4a/4b  closeness stays stable (does not decrease) as nodes die
//   4c     degree centrality grows without pruning
//   4d     degree centrality pinned near k/(n-1) with pruning
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::core::DdsrEngine;
using onion::core::DdsrPolicy;
using onion::graph::Graph;

constexpr std::size_t kNodes = 5000;
constexpr std::size_t kDeletions = 1500;  // 30%
constexpr std::size_t kCheckpoint = 100;
constexpr std::size_t kClosenessSamples = 250;

void run_series(std::size_t k, bool prune, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = onion::graph::random_regular(kNodes, k, rng);
  DdsrPolicy policy;
  policy.dmin = k;
  policy.dmax = k;
  policy.prune = prune;
  policy.refill = true;
  DdsrEngine engine(g, policy, rng);

  std::printf(
      "# series deg=%zu pruning=%s\n"
      "deleted,closeness,degree_centrality,avg_degree\n",
      k, prune ? "on" : "off");
  Rng metric_rng(seed ^ 0x5a5a);
  for (std::size_t deleted = 0; deleted <= kDeletions;
       deleted += kCheckpoint) {
    // Each closeness sample costs one BFS, O(E). Without pruning the
    // graph densifies toward completeness (that is the Figure 4c
    // result), so the sample count scales down with edge count to keep
    // checkpoints tractable; closeness concentrates sharply in dense
    // graphs, so fewer sources lose almost nothing.
    const std::size_t samples = std::max<std::size_t>(
        16, std::min(kClosenessSamples,
                     kClosenessSamples * 500'000 /
                         std::max<std::size_t>(g.num_edges(), 1)));
    const double closeness =
        onion::graph::average_closeness_sampled(g, samples, metric_rng);
    const double degree_c = onion::graph::average_degree_centrality(g);
    std::printf("%zu,%.6f,%.6f,%.3f\n", deleted, closeness, degree_c,
                g.average_degree());
    if (deleted == kDeletions) break;
    for (std::size_t i = 0; i < kCheckpoint; ++i) {
      const auto alive = g.alive_nodes();
      engine.remove_node(
          alive[static_cast<std::size_t>(rng.uniform(alive.size()))]);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 4 ===\n"
      "k-regular graph, n=%zu, up to %zu (30%%) gradual deletions with\n"
      "DDSR repair; closeness sampled from %zu sources (fixed seed).\n\n",
      kNodes, kDeletions, kClosenessSamples);

  for (const bool prune : {false, true}) {
    std::printf("--- Figure 4%s: closeness / 4%s: degree centrality "
                "(pruning %s) ---\n",
                prune ? "b" : "a", prune ? "d" : "c",
                prune ? "on" : "off");
    for (const std::size_t k : {std::size_t{5}, std::size_t{10},
                                std::size_t{15}}) {
      run_series(k, prune, 0x40 + k);
    }
  }

  std::printf(
      "Expected shape (paper): closeness stable under deletion in both\n"
      "modes; degree centrality rises without pruning and stays pinned\n"
      "near k/(n-1) with pruning.\n");
  return 0;
}
