// Perf-trajectory driver: runs the pinned 10k-bot campaign and the
// 500k-bot leave-heavy scale campaign, and writes BENCH_scenario.json —
// wall-clock, events/sec, and per-snapshot cost at a sparse (5 min) and
// a dense (1 s) telemetry cadence, plus the sweep-vs-incremental
// snapshot microbench at 10k/50k/500k. The Release CI job runs this and
// uploads the JSON as an artifact, so every PR leaves a measured data
// point.
//
//   ./build/bench_bench_report [output.json]        (default BENCH_scenario.json)
//
// The campaign specs are pinned so numbers are comparable across PRs.
// 10k: degree 10, one hour, 500/500 churn per hour, a 600/h
// random-takedown wave in minutes [15, 45); only the cadence differs
// between its two runs. 500k ("leave_heavy_500k_1s"): ten minutes at a
// 1 s cadence with 18000 leaves/h plus a 6000/h takedown wave — every
// snapshot window contains deletions, the exact regime where the old
// hybrid tracker paid a full component rebuild per snapshot.
// Fingerprints are recorded so a perf regression hunt can also detect a
// behavior change at a glance (tests/goldens/campaign_10k.txt and
// campaign_500k.txt pin them in CI).
#include <chrono>
#include <cstdio>
#include <string>

#include "scenario/engine.hpp"
#include "snapshot_cost.hpp"

namespace {

using namespace onion;
using namespace onion::scenario;
using onion::bench::SnapshotCosts;
using Clock = std::chrono::steady_clock;

ScenarioSpec pinned_spec(SimDuration metrics_period) {
  ScenarioSpec spec;
  spec.seed = 0xbe7c;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = metrics_period;
  return spec;
}

/// The scale tier: 500k bots, leave-heavy churn, dense 1 s cadence.
/// tests/scale_test.cpp runs the same spec as the labeled scale smoke.
ScenarioSpec scale_spec() {
  ScenarioSpec spec;
  spec.seed = 0x5ca1e;
  spec.initial_size = 500'000;
  spec.degree = 10;
  spec.horizon = 10 * kMinute;
  spec.churn.joins_per_hour = 600.0;
  spec.churn.leaves_per_hour = 18'000.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 2 * kMinute;
  takedown.stop = 8 * kMinute;
  takedown.takedowns_per_hour = 6'000.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = kSecond;
  return spec;
}

struct RunResult {
  std::string cadence;
  std::size_t snapshots = 0;
  std::size_t events = 0;
  std::uint64_t rebuilds = 0;
  double wall_seconds = 0.0;
  std::string fingerprint;
};

RunResult run_campaign(const char* cadence, const ScenarioSpec& spec) {
  RunResult result;
  result.cadence = cadence;
  HashSink sink;
  const auto start = Clock::now();
  CampaignEngine engine(spec, sink);
  engine.run();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.snapshots = sink.count();
  result.events = engine.events_executed();
  result.rebuilds = engine.tracker().rebuilds();
  result.fingerprint = sink.hex_digest();
  return result;
}

void write_run(std::FILE* out, const RunResult& r, bool last) {
  std::fprintf(out,
               "    {\n"
               "      \"cadence\": \"%s\",\n"
               "      \"snapshots\": %zu,\n"
               "      \"events\": %zu,\n"
               "      \"events_per_second\": %.0f,\n"
               "      \"component_rebuilds\": %llu,\n"
               "      \"wall_seconds\": %.4f,\n"
               "      \"fingerprint\": \"%s\"\n"
               "    }%s\n",
               r.cadence.c_str(), r.snapshots, r.events,
               static_cast<double>(r.events) / r.wall_seconds,
               static_cast<unsigned long long>(r.rebuilds),
               r.wall_seconds, r.fingerprint.c_str(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "BENCH_scenario.json";

  const RunResult sparse =
      run_campaign("sparse_300s", pinned_spec(5 * kMinute));
  const RunResult dense = run_campaign("dense_1s", pinned_spec(kSecond));
  const RunResult scale =
      run_campaign("leave_heavy_500k_1s", scale_spec());
  std::uint64_t checksum = 0;  // defeats dead-code elimination
  const SnapshotCosts costs[] = {
      onion::bench::measure_snapshot_costs(10'000, /*rounds=*/50, checksum),
      onion::bench::measure_snapshot_costs(50'000, /*rounds=*/50, checksum),
      onion::bench::measure_snapshot_costs(500'000, /*rounds=*/10,
                                           checksum)};
  constexpr std::size_t kCostRows = sizeof(costs) / sizeof(costs[0]);
  if (checksum == 0) std::printf("# impossible\n");

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"scenario_campaign_10k\",\n"
               "  \"spec\": {\n"
               "    \"initial_size\": 10000,\n"
               "    \"degree\": 10,\n"
               "    \"horizon_hours\": 1,\n"
               "    \"joins_per_hour\": 500,\n"
               "    \"leaves_per_hour\": 500,\n"
               "    \"takedowns_per_hour\": 600,\n"
               "    \"seed\": \"0xbe7c\"\n"
               "  },\n"
               "  \"runs\": [\n");
  write_run(out, sparse, false);
  write_run(out, dense, true);
  // The 500k tier lives under its own key: the golden guard diffs
  // `runs` against tests/goldens/campaign_10k.txt and `scale_runs`
  // against campaign_500k.txt, so the 10k goldens stay byte-stable.
  std::fprintf(out,
               "  ],\n"
               "  \"scale_spec\": {\n"
               "    \"initial_size\": 500000,\n"
               "    \"degree\": 10,\n"
               "    \"horizon_minutes\": 10,\n"
               "    \"joins_per_hour\": 600,\n"
               "    \"leaves_per_hour\": 18000,\n"
               "    \"takedowns_per_hour\": 6000,\n"
               "    \"seed\": \"0x5ca1e\"\n"
               "  },\n"
               "  \"scale_runs\": [\n");
  write_run(out, scale, true);
  std::fprintf(out, "  ],\n  \"snapshot_cost_us\": [\n");
  for (std::size_t i = 0; i < kCostRows; ++i) {
    std::fprintf(out,
                 "    {\n"
                 "      \"nodes\": %zu,\n"
                 "      \"sweep_baseline\": %.2f,\n"
                 "      \"incremental_growth_window\": %.3f,\n"
                 "      \"dynamic_deletion_window\": %.3f,\n"
                 "      \"rebuild_deletion_window\": %.2f,\n"
                 "      \"speedup_growth_vs_sweep\": %.1f,\n"
                 "      \"speedup_deletion_vs_sweep\": %.1f\n"
                 "    }%s\n",
                 costs[i].nodes, costs[i].sweep_us,
                 costs[i].incremental_us, costs[i].deletion_us,
                 costs[i].rebuild_us,
                 costs[i].sweep_us / costs[i].incremental_us,
                 costs[i].sweep_us / costs[i].deletion_us,
                 i + 1 == kCostRows ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  std::printf(
      "wrote %s\n"
      "  sparse_300s: %zu snapshots, %.3fs wall, %zu events\n"
      "  dense_1s:    %zu snapshots, %.3fs wall, %zu events, %llu rebuilds\n"
      "  leave_heavy_500k_1s: %zu snapshots, %.3fs wall, %zu events, "
      "%llu rebuilds\n",
      path, sparse.snapshots, sparse.wall_seconds, sparse.events,
      dense.snapshots, dense.wall_seconds, dense.events,
      static_cast<unsigned long long>(dense.rebuilds), scale.snapshots,
      scale.wall_seconds, scale.events,
      static_cast<unsigned long long>(scale.rebuilds));
  for (const SnapshotCosts& c : costs)
    std::printf(
        "  snapshot us @%zu: sweep %.1f, growth %.2f (%.0fx), deletion "
        "%.2f (%.0fx), rebuild %.1f\n",
        c.nodes, c.sweep_us, c.incremental_us,
        c.sweep_us / c.incremental_us, c.deletion_us,
        c.sweep_us / c.deletion_us, c.rebuild_us);
  return 0;
}
