// Micro-benchmarks for the cryptographic substrate: hash/MAC/cipher
// throughput, simulation-RSA operations, the rotation KDF, and the
// uniform-cell codec. These set the cost model behind the simulator's
// protocol operations.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/elligator_sim.hpp"
#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "crypto/legacy_ciphers.hpp"
#include "crypto/rc4.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simrsa.hpp"

namespace {

using namespace onion;
using namespace onion::crypto;

Bytes random_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

void BM_Sha1(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(Sha1::hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(512)->Arg(4096);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(512)->Arg(4096);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = random_bytes(32, 3);
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(hmac_sha256(key, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(512);

void BM_Rc4(benchmark::State& state) {
  const Bytes key = random_bytes(16, 5);
  const Bytes data = random_bytes(static_cast<std::size_t>(state.range(0)), 6);
  for (auto _ : state) {
    Rc4 cipher(key);
    benchmark::DoNotOptimize(cipher.process(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Rc4)->Arg(512)->Arg(4096);

void BM_ChainedXor(benchmark::State& state) {
  const Bytes data = random_bytes(512, 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(chained_xor_encrypt(data, 0x5a));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          512);
}
BENCHMARK(BM_ChainedXor);

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) benchmark::DoNotOptimize(rsa_generate(rng, 1024));
}
BENCHMARK(BM_RsaKeygen);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(9);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes msg = random_bytes(128, 10);
  for (auto _ : state) benchmark::DoNotOptimize(rsa_sign(key, msg));
}
BENCHMARK(BM_RsaSign);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(11);
  const RsaKeyPair key = rsa_generate(rng, 2048);
  const Bytes msg = random_bytes(128, 12);
  const RsaSignature sig = rsa_sign(key, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(rsa_verify(key.pub, msg, sig));
}
BENCHMARK(BM_RsaVerify);

void BM_RotatedServiceKey(benchmark::State& state) {
  // One address rotation = one deterministic keygen; this is the per-bot
  // per-period cost of the paper's rotation scheme.
  Rng rng(13);
  const RsaKeyPair master = rsa_generate(rng, 2048);
  const Bytes kb = random_bytes(32, 14);
  std::uint64_t period = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(rotated_service_key(master.pub, kb, ++period));
}
BENCHMARK(BM_RotatedServiceKey);

void BM_UniformEncode(benchmark::State& state) {
  Rng rng(15);
  const Bytes key = random_bytes(32, 16);
  const Bytes msg = random_bytes(200, 17);
  for (auto _ : state)
    benchmark::DoNotOptimize(uniform_encode(key, msg, rng));
}
BENCHMARK(BM_UniformEncode);

void BM_UniformDecode(benchmark::State& state) {
  Rng rng(18);
  const Bytes key = random_bytes(32, 19);
  const Bytes cell = uniform_encode(key, random_bytes(200, 20), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(uniform_decode(key, cell));
}
BENCHMARK(BM_UniformDecode);

}  // namespace
