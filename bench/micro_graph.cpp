// Micro-benchmarks for the graph substrate: generation, the DDSR repair
// operation itself, and the metric estimators used by the figure
// harnesses (sampled closeness, double-sweep diameter, components).
#include <benchmark/benchmark.h>

#include <memory>

#include "core/ddsr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"

namespace {

using onion::Rng;
using onion::core::DdsrEngine;
using onion::core::DdsrPolicy;
using onion::graph::Graph;

void BM_RandomRegular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state)
    benchmark::DoNotOptimize(onion::graph::random_regular(n, 10, rng));
}
BENCHMARK(BM_RandomRegular)->Arg(1000)->Arg(5000)->Arg(15000);

void BM_DdsrRemoveNode(benchmark::State& state) {
  // Cost of one deletion + repair + prune + refill at k=10.
  Rng rng(2);
  DdsrPolicy policy;
  policy.dmin = 10;
  policy.dmax = 10;
  auto g = std::make_unique<Graph>(onion::graph::random_regular(5000, 10, rng));
  auto engine = std::make_unique<DdsrEngine>(*g, policy, rng);
  auto alive = g->alive_nodes();
  std::size_t cursor = 0;
  Rng order(3);
  order.shuffle(alive);
  for (auto _ : state) {
    if (cursor >= alive.size() - 100) {  // keep the graph big enough
      state.PauseTiming();
      g = std::make_unique<Graph>(
          onion::graph::random_regular(5000, 10, rng));
      engine = std::make_unique<DdsrEngine>(*g, policy, rng);
      alive = g->alive_nodes();
      order.shuffle(alive);
      cursor = 0;
      state.ResumeTiming();
    }
    engine->remove_node(alive[cursor++]);
  }
}
BENCHMARK(BM_DdsrRemoveNode);

void BM_ClosenessSampled(benchmark::State& state) {
  Rng rng(4);
  const Graph g = onion::graph::random_regular(
      static_cast<std::size_t>(state.range(0)), 10, rng);
  Rng mrng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        onion::graph::average_closeness_sampled(g, 250, mrng));
  }
}
BENCHMARK(BM_ClosenessSampled)->Arg(5000)->Arg(15000);

void BM_DiameterDoubleSweep(benchmark::State& state) {
  Rng rng(6);
  const Graph g = onion::graph::random_regular(
      static_cast<std::size_t>(state.range(0)), 10, rng);
  Rng mrng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        onion::graph::diameter_double_sweep(g, 4, mrng));
  }
}
BENCHMARK(BM_DiameterDoubleSweep)->Arg(5000)->Arg(15000);

void BM_ConnectedComponents(benchmark::State& state) {
  Rng rng(8);
  const Graph g = onion::graph::random_regular(
      static_cast<std::size_t>(state.range(0)), 10, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(onion::graph::connected_components(g));
}
BENCHMARK(BM_ConnectedComponents)->Arg(5000)->Arg(15000);

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(9);
  const Graph g = onion::graph::random_regular(5000, 10, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(onion::graph::bfs_distances(g, 0));
}
BENCHMARK(BM_BfsDistances);

}  // namespace
