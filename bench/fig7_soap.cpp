// Figure 7 reproduction: the SOAP (Sybil Onion Attack Protocol)
// containment timeline. Starting from one captured bot, clones with tiny
// declared degrees peer with every discovered bot, evicting its benign
// neighbors until the whole botnet is ringed by clones and partitioned
// (paper Section VI-B).
#include <cstdio>

#include "core/overlay.hpp"
#include "mitigation/soap.hpp"

namespace {

using onion::Rng;
using onion::core::OverlayConfig;
using onion::core::OverlayNetwork;
using onion::mitigation::SoapCampaign;
using onion::mitigation::SoapConfig;

void run_campaign(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  OverlayConfig overlay;
  overlay.dmin = k;
  overlay.dmax = k;
  OverlayNetwork net = OverlayNetwork::random_regular(n, k, overlay, rng);
  SoapConfig cfg;
  cfg.requests_per_target_per_round = 1;
  SoapCampaign campaign(net, cfg, rng);
  campaign.capture(0);

  std::printf("# campaign n=%zu k=%zu\n", n, k);
  std::printf(
      "round,discovered,contained,clones,honest_edges,"
      "honest_components\n");
  const auto timeline = campaign.run();
  for (const auto& s : timeline) {
    std::printf("%zu,%zu,%zu,%zu,%zu,%zu\n", s.round, s.discovered,
                s.contained, s.clones, s.honest_edges,
                s.honest_components);
  }
  std::printf(
      "result: fully_contained=%s rounds=%zu clones=%zu "
      "clones_per_bot=%.1f\n\n",
      campaign.fully_contained() ? "yes" : "no", campaign.rounds_run(),
      campaign.clones_created(),
      static_cast<double>(campaign.clones_created()) /
          static_cast<double>(n));
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 7 (SOAP) ===\n"
      "Sybil containment campaign from a single captured bot. Clones\n"
      "declare degree 1-3, undercut honest peers (true degree = k), and\n"
      "the DDSR acceptance rule evicts the benign neighbors one by one.\n\n");

  run_campaign(/*n=*/500, /*k=*/10, 0x70);
  run_campaign(/*n=*/1000, /*k=*/10, 0x71);
  run_campaign(/*n=*/500, /*k=*/15, 0x72);

  std::printf(
      "Expected shape (paper): discovery spreads through harvested\n"
      "neighbor lists; containment sweeps the botnet; at the end no\n"
      "honest-honest edges remain — the network is partitioned into\n"
      "clone-ringed singletons (Figure 7 step 9).\n");
  return 0;
}
