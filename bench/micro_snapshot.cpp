// Sweep vs incremental snapshot cost, 10k / 50k / 200k nodes.
//
// Measures what one MetricsSnapshot costs under a dense telemetry
// cadence, four ways on the same overlay (see snapshot_cost.hpp for the
// shared harness): the from-scratch sweep the engine used to pay, the
// tracker's pure-growth-window fill, the tracker's deletion-window fill
// (fully-dynamic connectivity — the former rebuild cliff), and the
// retired hybrid's union-find rebuild as the comparison baseline.
//
// The acceptance bars: ≥10x sweep/growth at 50k nodes for the tracker
// rewire, and ≥10x sweep/deletion for the dynamic-connectivity rewire;
// bench_report.cpp records the same numbers (same harness) into
// BENCH_scenario.json for the per-PR perf trajectory.
#include <cstdio>

#include "snapshot_cost.hpp"

int main() {
  using onion::bench::SnapshotCosts;
  std::printf(
      "=== Snapshot cost: sweep vs incremental tracker ===\n"
      "%d-join growth windows between snapshots (dense cadence model).\n\n",
      onion::bench::kGrowthJoinsPerWindow);
  std::printf(
      "    nodes    sweep_us  growth_us  deletion_us  rebuild_us"
      "   del_speedup\n");
  std::uint64_t checksum = 0;
  for (const std::size_t n :
       {std::size_t{10'000}, std::size_t{50'000}, std::size_t{200'000}}) {
    const SnapshotCosts c =
        onion::bench::measure_snapshot_costs(n, /*rounds=*/30, checksum);
    std::printf("  %7zu  %10.1f  %9.2f  %11.2f  %10.1f  %10.0fx\n", n,
                c.sweep_us, c.incremental_us, c.deletion_us, c.rebuild_us,
                c.sweep_us / c.deletion_us);
  }
  std::printf(
      "\nsweep and rebuild scale with the graph; growth and deletion\n"
      "fills scale with the window's event count. (checksum %llu)\n",
      static_cast<unsigned long long>(checksum));
  return 0;
}
