// Bootstrap-strategy ablation (paper §IV-B): for each rally strategy,
// recruit fresh bots into a live botnet over the simulated Tor network
// and measure (a) rally success — recruits reaching dmin, (b) lead-list
// size handed to each recruit, and (c) defender exposure — the fraction
// of the botnet a defender learns by compromising the strategy's weakest
// point (one infector, one hotlist server, or the public out-of-band
// store). Random probing appears as arithmetic only, which is the point.
#include <cstdio>
#include <vector>

#include "core/bootstrap.hpp"
#include "core/botnet.hpp"
#include "tor/address_cost.hpp"

namespace {

using namespace onion;
using namespace onion::core;

Botnet::Params params() {
  Botnet::Params p;
  p.num_bots = 30;
  p.initial_degree = 4;
  p.seed = 0xb007;
  p.tor.num_relays = 24;
  p.bot.dmin = 3;
  p.bot.dmax = 6;
  return p;
}

std::vector<tor::OnionAddress> member_addresses(Botnet& net) {
  std::vector<tor::OnionAddress> out;
  for (std::size_t i = 0; i < net.num_bots(); ++i)
    if (net.bot(i).alive()) out.push_back(net.bot(i).address());
  return out;
}

struct StrategyOutcome {
  const char* name;
  std::size_t recruits = 0;
  std::size_t rallied = 0;
  double mean_leads = 0.0;
  double exposure = 0.0;
  const char* exposure_event;
};

void print(const StrategyOutcome& o) {
  std::printf("%-18s %8zu/%zu %12.1f %10.2f   %s\n", o.name, o.rallied,
              o.recruits, o.mean_leads, o.exposure, o.exposure_event);
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots ablation: bootstrap strategies (SS IV-B) ===\n"
      "Fresh recruits rally into a live 30-bot botnet over simulated "
      "Tor.\n\n");
  std::printf("%-18s %10s %12s %10s   %s\n", "strategy", "rallied",
              "mean-leads", "exposure", "exposure event");

  constexpr std::size_t kRecruits = 8;

  // --- hardcoded subset, p in {0.25, 0.5, 1.0} -----------------------
  for (const double p : {0.25, 0.5, 1.0}) {
    Botnet net(params());
    Rng rng(net.params().seed ^ 17);
    std::size_t rallied = 0;
    double lead_sum = 0.0;
    LeadList one_handout;  // what one captured recruit exposes
    for (std::size_t r = 0; r < kRecruits; ++r) {
      // The "infector" is a random existing bot; its peer list is the
      // source list.
      const Bot& infector =
          net.bot(static_cast<std::size_t>(rng.uniform(30)));
      LeadList source;
      for (const auto& [addr, info] : infector.peers())
        source.push_back(addr);
      const LeadList leads = hardcoded_subset(source, p, rng);
      if (one_handout.empty()) one_handout = leads;
      lead_sum += static_cast<double>(leads.size());
      Bot& recruit = net.infect_new_bot();
      recruit.rally(leads);
      net.run_for(10 * kMinute);
      if (recruit.degree() >= net.params().bot.dmin) ++rallied;
    }
    StrategyOutcome o;
    o.name = p == 0.25 ? "hardcoded p=0.25"
                       : (p == 0.5 ? "hardcoded p=0.50" : "hardcoded p=1.0");
    o.recruits = kRecruits;
    o.rallied = rallied;
    o.mean_leads = lead_sum / kRecruits;
    o.exposure = exposure_fraction(one_handout, member_addresses(net));
    o.exposure_event = "capture one recruit's handout";
    print(o);
  }

  // --- hotlist ---------------------------------------------------------
  {
    Botnet net(params());
    Rng rng(net.params().seed ^ 23);
    HotlistDirectory dir(
        {.servers = 6, .window = 16, .servers_per_bot = 2}, rng);
    // Members announce to their private server subsets.
    std::vector<std::vector<std::size_t>> subsets;
    for (std::size_t i = 0; i < net.num_bots(); ++i) {
      subsets.push_back(dir.assign_subset());
      dir.announce(net.bot(i).address(), subsets.back());
    }
    std::size_t rallied = 0;
    double lead_sum = 0.0;
    for (std::size_t r = 0; r < kRecruits; ++r) {
      const auto subset = dir.assign_subset();
      const LeadList leads = dir.query(subset);
      lead_sum += static_cast<double>(leads.size());
      Bot& recruit = net.infect_new_bot();
      recruit.rally(leads);
      net.run_for(10 * kMinute);
      if (recruit.degree() >= net.params().bot.dmin) ++rallied;
      dir.announce(recruit.address(), subset);
    }
    const LeadList haul = dir.seize(0);
    StrategyOutcome o;
    o.name = "hotlist 6x2";
    o.recruits = kRecruits;
    o.rallied = rallied;
    o.mean_leads = lead_sum / kRecruits;
    o.exposure = exposure_fraction(haul, member_addresses(net));
    o.exposure_event = "seize one of 6 servers";
    print(o);
  }

  // --- out-of-band store -----------------------------------------------
  {
    Botnet net(params());
    Rng rng(net.params().seed ^ 31);
    OutOfBandStore store;
    constexpr OutOfBandStore::Key kPeriodKey = 7;
    for (std::size_t i = 0; i < net.num_bots(); ++i)
      store.announce(kPeriodKey, net.bot(i).address());
    std::size_t rallied = 0;
    double lead_sum = 0.0;
    for (std::size_t r = 0; r < kRecruits; ++r) {
      const LeadList leads = store.lookup(kPeriodKey);
      lead_sum += static_cast<double>(leads.size());
      Bot& recruit = net.infect_new_bot();
      recruit.rally(leads);
      net.run_for(10 * kMinute);
      if (recruit.degree() >= net.params().bot.dmin) ++rallied;
      store.announce(kPeriodKey, recruit.address());
    }
    StrategyOutcome o;
    o.name = "out-of-band DHT";
    o.recruits = kRecruits;
    o.rallied = rallied;
    o.mean_leads = lead_sum / kRecruits;
    o.exposure = exposure_fraction(store.lookup(kPeriodKey),
                                   member_addresses(net));
    o.exposure_event = "crawl the public store";
    print(o);
  }

  // --- random probing: arithmetic only ---------------------------------
  std::printf(
      "%-18s %10s %12s %10s   expected %.0f years at 1e6 probes/s\n",
      "random probing", "0/-", "-", "-",
      tor::expected_years_to_find_bot(1e6, 1e6));

  std::printf(
      "\nExpected shape (paper SS IV-B): all practical strategies rally\n"
      "reliably; exposure orders hardcoded-subset < hotlist < out-of-band\n"
      "(the public store exposes everything), and random probing is\n"
      "computationally absurd - which is why the paper predicts OnionBots\n"
      "combine hardcoded lists with hotlists.\n");
  return 0;
}
