// Figure 7, full-stack edition: the SOAP walkthrough executed against a
// live botnet of message-passing bots over the simulated Tor network —
// clone hidden services, real peering wires, real evictions — head to
// head for the basic OnionBot and the §VII-A probing-defended variant.
// (bench/fig7_soap runs the paper's graph-level model; this binary
// confirms the same dynamics survive contact with the full protocol
// stack, latencies, rotation, and maintenance included.)
#include <cstdio>

#include "graph/metrics.hpp"
#include "mitigation/live_soap.hpp"

namespace {

using namespace onion;

core::Botnet::Params params(bool probing) {
  core::Botnet::Params p;
  p.num_bots = 20;
  p.initial_degree = 4;
  p.seed = 0xf177;
  p.tor.num_relays = 24;
  p.bot.dmin = 3;
  p.bot.dmax = 5;
  p.bot.heartbeat_interval = 60 * kSecond;
  p.bot.non_share_interval = 3 * kMinute;
  p.bot.probe_peers = probing;
  return p;
}

void run_series(bool probing) {
  core::Botnet net(params(probing));
  mitigation::LiveSoapCampaign campaign(net, {});
  campaign.capture(0);

  std::printf("# series defense=%s\n", probing ? "probing" : "none");
  std::printf(
      "round,discovered,clones,acceptances,contained,honest_edges\n");
  for (int round = 0; round <= 24; ++round) {
    const graph::Graph overlay = net.overlay_snapshot();
    std::printf("%d,%zu,%zu,%zu,%zu,%zu\n", round,
                campaign.discovered().size(), campaign.clones_created(),
                campaign.acceptances(), campaign.contained_count(),
                overlay.num_edges());
    campaign.step();
    net.run_for(4 * kMinute);
  }

  // Post-campaign broadcast reach.
  core::Command cmd;
  cmd.type = core::CommandType::Ddos;
  net.master().broadcast(cmd, 2);
  net.run_for(15 * kMinute);
  std::printf("broadcast reach after campaign: %zu/%zu\n\n",
              net.count_executed(core::CommandType::Ddos), net.num_bots());
}

}  // namespace

int main() {
  std::printf(
      "=== OnionBots reproduction: Figure 7 on the full stack ===\n"
      "Clone hidden services soaping a live 20-bot OnionBot network over\n"
      "simulated Tor; one round = one clone wave + 4 virtual minutes.\n\n");
  run_series(/*probing=*/false);
  run_series(/*probing=*/true);
  std::printf(
      "Expected shape (paper SS VI-B, VII-A): without defense, contained\n"
      "count climbs to (nearly) the whole botnet and broadcast reach\n"
      "collapses; with the probing defense the same campaign stalls and\n"
      "the botnet keeps executing commands.\n");
  return 0;
}
