// Streamed vs in-memory trace/replay cost on the pinned 10k campaign:
// what recording to disk adds over the in-memory tap, and what the
// O(window) streamed replay pays (or saves) against the batch path
// that materializes the full TrafficTrace before scoring.
//
// Four timed legs over the same campaign (seed 0xbeef, one hour, 5%
// churn + takedown wave — the scale_* test spec):
//
//   record_memory   engine -> CampaignTrace (the PR-8 baseline)
//   record_disk     engine -> trace_io::TraceWriter (chunked frames,
//                   SHA-256 per chunk, atomic publish)
//   replay_batch    TraceReader -> replay_trace -> RocSweep-sized
//                   FlowScorer over the materialized trace
//   replay_stream   TraceReader -> replay_trace_streaming -> the same
//                   FlowScorer, no TrafficTrace ever built
//
// Peak-RSS deltas are printed per leg; the streamed leg's delta is the
// number the 500k tier pins under 256 MB (tests/scale_stream_test.cpp).
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "detection/replay.hpp"
#include "detection/replay_grid.hpp"
#include "detection/telemetry.hpp"
#include "scenario/engine.hpp"
#include "scenario/trace_io.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::size_t peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<std::size_t>(usage.ru_maxrss);
}

}  // namespace

int main() {
  using namespace onion;
  using namespace onion::detection;
  using namespace onion::scenario;

  ScenarioSpec spec;
  spec.seed = 0xbeef;
  spec.initial_size = 10'000;
  spec.degree = 10;
  spec.horizon = kHour;
  spec.churn.joins_per_hour = 500.0;
  spec.churn.leaves_per_hour = 500.0;
  AttackPhase takedown;
  takedown.kind = AttackKind::RandomTakedown;
  takedown.start = 15 * kMinute;
  takedown.stop = 45 * kMinute;
  takedown.takedowns_per_hour = 600.0;
  spec.attacks.push_back(takedown);
  spec.metrics.period = 5 * kMinute;

  ReplayConfig rc;
  rc.seed = 0x5ca1e;
  rc.benign_web = 500;
  rc.benign_tor = 100;
  rc.centralized_bots = 50;
  rc.dga_bots = 50;
  rc.fastflux_bots = 50;
  rc.p2p_bots = 50;
  rc.onion_mean_gap = kMinute;

  FlowScorerConfig scorer_config;
  for (const double size_cv : {0.1, 0.25, 0.5, 0.75})
    for (const double gap_cv : {0.2, 0.45, 0.7, 1.0}) {
      FlowDetectorConfig c;
      c.size_cv_threshold = size_cv;
      c.gap_cv_threshold = gap_cv;
      scorer_config.beacon_thresholds.push_back(c);
    }
  scorer_config.tor_min_flows = {1, 3, 10, 30};

  std::printf("=== Streamed vs in-memory trace/replay, pinned 10k ===\n\n");
  std::printf("  %-14s %10s %14s %16s\n", "leg", "wall_s", "rss_delta_kb",
              "output");

  // --- record: in-memory tap -------------------------------------------
  auto start = Clock::now();
  std::size_t rss = peak_rss_kb();
  CampaignTrace campaign;
  CampaignEngine(spec, campaign, &campaign).run();
  std::printf("  %-14s %10.2f %14zu %13zu ev\n", "record_memory",
              seconds_since(start), peak_rss_kb() - rss,
              campaign.events().size());

  // --- record: straight to disk ----------------------------------------
  const std::string path = "trace_stream_bench.otrace";
  start = Clock::now();
  rss = peak_rss_kb();
  std::size_t file_bytes = 0;
  {
    trace_io::TraceWriter writer(path);
    CampaignEngine(spec, writer, &writer).run();
    writer.finish();
    file_bytes = writer.bytes_written();
  }
  std::printf("  %-14s %10.2f %14zu %12zu B\n", "record_disk",
              seconds_since(start), peak_rss_kb() - rss, file_bytes);

  const trace_io::TraceReader reader(path);

  // --- replay: batch (materialized TrafficTrace) -----------------------
  start = Clock::now();
  rss = peak_rss_kb();
  const ReplayResult batch = replay_trace(
      static_cast<const TraceSource&>(reader), rc);
  FlowScorer batch_scorer(scorer_config);
  feed_trace(batch.trace, batch_scorer);
  batch_scorer.finish();
  std::printf("  %-14s %10.2f %14zu %11zu fl\n", "replay_batch",
              seconds_since(start), peak_rss_kb() - rss,
              static_cast<std::size_t>(batch_scorer.flows_scored()));

  // --- replay: streamed (no TrafficTrace) ------------------------------
  start = Clock::now();
  rss = peak_rss_kb();
  FlowScorer stream_scorer(scorer_config);
  const StreamPopulations pops =
      replay_trace_streaming(reader, rc, stream_scorer);
  stream_scorer.finish();
  std::printf("  %-14s %10.2f %14zu %11zu fl\n", "replay_stream",
              seconds_since(start), peak_rss_kb() - rss,
              static_cast<std::size_t>(stream_scorer.flows_scored()));

  std::printf(
      "\ntrace_file_bytes=%zu events=%llu batch_flows=%llu "
      "stream_flows=%llu\n",
      file_bytes, static_cast<unsigned long long>(reader.event_count()),
      static_cast<unsigned long long>(batch_scorer.flows_scored()),
      static_cast<unsigned long long>(stream_scorer.flows_scored()));
  std::printf(
      "(RSS deltas are high-water marks: a later leg that fits inside\n"
      "an earlier leg's footprint reports 0 — exactly the point of the\n"
      "streamed path.)\n");
  (void)pops;
  std::remove(path.c_str());
  return 0;
}
