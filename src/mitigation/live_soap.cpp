#include "mitigation/live_soap.hpp"

#include <algorithm>

namespace onion::mitigation {

using core::MessageKind;
using core::PeerReplyMsg;
using tor::OnionAddress;

LiveSoapCampaign::LiveSoapCampaign(core::Botnet& net, LiveSoapConfig config)
    : net_(net), config_(config), rng_(config.seed) {
  endpoint_ = net_.tor().create_endpoint();
}

void LiveSoapCampaign::capture(std::size_t bot_index) {
  const core::Bot& bot = net_.bot(bot_index);
  discovered_.insert(bot.address());
  for (const auto& [addr, info] : bot.peers()) {
    discovered_.insert(addr);
    for (const auto& nn : info.neighbors) discovered_.insert(nn);
  }
}

std::size_t LiveSoapCampaign::declared_lie() {
  return static_cast<std::size_t>(rng_.uniform_in(
      config_.clone_declared_min, config_.clone_declared_max));
}

void LiveSoapCampaign::harvest(
    const std::vector<OnionAddress>& addresses) {
  for (const auto& a : addresses)
    if (clones_.count(a) == 0) discovered_.insert(a);
}

Bytes LiveSoapCampaign::handle(BytesView request,
                               const OnionAddress& self) {
  try {
    switch (core::peek_kind(request)) {
      case MessageKind::PeerRequest: {
        const auto m = core::parse_peer_request(request);
        // A bot refilling toward a clone reveals itself.
        if (clones_.count(m.from) == 0) discovered_.insert(m.from);
        PeerReplyMsg reply;
        reply.accepted = true;
        reply.declared_degree = static_cast<std::uint16_t>(declared_lie());
        // Fake neighbor list: other clones, steering honest NoN refill
        // deeper into the clone cloud.
        for (const auto& c : clones_) {
          if (reply.neighbors.size() >= config_.clone_fake_neighbors)
            break;
          if (c != self) reply.neighbors.push_back(c);
        }
        return core::encode_peer_reply(reply);
      }
      case MessageKind::NoNShare: {
        const auto m = core::parse_non_share(request);
        if (clones_.count(m.from) == 0) discovered_.insert(m.from);
        harvest(m.neighbors);
        return core::encode_ping();
      }
      case MessageKind::AddressChange: {
        const auto m = core::parse_address_change(request);
        discovered_.erase(m.old_address);
        discovered_.insert(m.new_address);
        return core::encode_ping();
      }
      case MessageKind::Broadcast:
        // Swallowed, never relayed: the authorities cannot participate
        // in botnet traffic (paper §VII-B's legal-liability rule).
        return core::encode_ping();
      case MessageKind::ProbeChallenge:
        // Unanswerable for the same reason — and this is exactly how
        // the §VII-A probing defense unmasks clones.
        return core::encode_ping();
      default:
        return core::encode_ping();
    }
  } catch (const core::WireError&) {
    return core::encode_ping();
  }
}

OnionAddress LiveSoapCampaign::spawn_clone() {
  const crypto::RsaKeyPair key = crypto::rsa_generate(rng_, 1024);
  const OnionAddress address = net_.tor().publish_service(
      endpoint_, key,
      [this](BytesView request, const OnionAddress& self) {
        return handle(request, self);
      });
  clones_.insert(address);
  return address;
}

std::size_t LiveSoapCampaign::step() {
  std::size_t sent = 0;
  // Snapshot: discovery grows as replies arrive.
  const std::vector<OnionAddress> targets(discovered_.begin(),
                                          discovered_.end());
  for (const OnionAddress& target : targets) {
    if (clones_.count(target) > 0) continue;
    // Skip addresses we can already see are fully clone-ringed (saves
    // clones; a real defender knows which addresses its own clones hold
    // links to — this uses only clone-side bookkeeping via ground truth
    // introspection kept equivalent for determinism).
    const auto bot_id = net_.bot_by_address(target);
    if (bot_id && bot_contained(*bot_id)) continue;
    for (std::size_t r = 0; r < config_.requests_per_target_per_round;
         ++r) {
      const OnionAddress clone = spawn_clone();
      core::PeerRequestMsg req;
      req.from = clone;
      req.declared_degree = static_cast<std::uint16_t>(declared_lie());
      net_.tor().connect_and_send(
          endpoint_, target, core::encode_peer_request(req),
          [this](const tor::ConnectResult& result) {
            if (!result.ok) return;
            try {
              const PeerReplyMsg reply =
                  core::parse_peer_reply(result.reply);
              if (!reply.accepted) return;
              ++acceptances_;
              harvest(reply.neighbors);
            } catch (const core::WireError&) {
            }
          });
      ++sent;
    }
  }
  return sent;
}

bool LiveSoapCampaign::bot_contained(std::size_t bot_index) const {
  const core::Bot& bot = net_.bot(bot_index);
  if (!bot.alive()) return false;
  if (bot.peers().empty()) return true;  // isolated
  for (const auto& [addr, info] : bot.peers())
    if (clones_.count(addr) == 0) return false;
  return true;
}

std::size_t LiveSoapCampaign::contained_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < net_.num_bots(); ++i)
    if (bot_contained(i)) ++n;
  return n;
}

}  // namespace onion::mitigation
