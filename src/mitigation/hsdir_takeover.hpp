// Generic Tor-level mitigation (paper Section VI-A): deny access to a
// hidden service by becoming its responsible HSDirs. Because the HSDirs
// for a descriptor ID are the next relays clockwise on the fingerprint
// ring, an adversary who can choose fingerprints positions relays
// immediately after the descriptor ID ([8] in the paper). Two costs make
// this weak against OnionBots: the 25-hour HSDir-flag delay, and —
// decisively — address rotation: the next period's descriptor IDs derive
// from the secret K_B, so they cannot be predicted from outside.
#pragma once

#include <vector>

#include "tor/tor_network.hpp"

namespace onion::mitigation {

/// Fingerprints that sort immediately after `id` on the ring (id+1 ...
/// id+count), claiming the responsible-HSDir slots for that descriptor.
std::vector<tor::Fingerprint> fingerprints_after(const tor::DescriptorId& id,
                                                 std::size_t count);

/// Outcome of a takeover attempt against one address-period.
struct TakeoverReport {
  /// Relays the adversary injected.
  std::vector<tor::RelayId> injected;
  /// Descriptor IDs targeted (one per replica).
  std::vector<tor::DescriptorId> target_ids;
};

/// Executes the HSDir takeover against `address` for the descriptor
/// period active at `when` (virtual seconds): injects denying relays at
/// crafted fingerprints. The relays still need 25 h of uptime and a
/// consensus refresh before they serve — the attack cannot be instant.
TakeoverReport takeover_hsdirs(tor::TorNetwork& tor,
                               const tor::OnionAddress& address,
                               SimTime when);

}  // namespace onion::mitigation
