#include "mitigation/hsdir_takeover.hpp"

namespace onion::mitigation {

std::vector<tor::Fingerprint> fingerprints_after(const tor::DescriptorId& id,
                                                 std::size_t count) {
  std::vector<tor::Fingerprint> out;
  out.reserve(count);
  tor::Fingerprint fp;
  std::copy(id.begin(), id.end(), fp.begin());
  for (std::size_t i = 0; i < count; ++i) {
    // Increment the 20-byte big-endian integer by one (with carry).
    for (int b = static_cast<int>(fp.size()) - 1; b >= 0; --b) {
      if (++fp[static_cast<std::size_t>(b)] != 0) break;
    }
    out.push_back(fp);
  }
  return out;
}

TakeoverReport takeover_hsdirs(tor::TorNetwork& tor,
                               const tor::OnionAddress& address,
                               SimTime when) {
  TakeoverReport report;
  const std::uint64_t period =
      tor::time_period(to_seconds(when), address.identifier()[0]);
  for (int replica = 0; replica < tor::kReplicas; ++replica) {
    const tor::DescriptorId id = tor::descriptor_id(
        address, period, /*descriptor_cookie=*/{},
        static_cast<std::uint8_t>(replica));
    report.target_ids.push_back(id);
    for (const tor::Fingerprint& fp :
         fingerprints_after(id, tor::kHsdirsPerReplica)) {
      const tor::RelayId relay = tor.inject_relay(fp);
      tor.set_relay_denying(relay, true);
      report.injected.push_back(relay);
    }
  }
  return report;
}

}  // namespace onion::mitigation
