#include "mitigation/soap.hpp"

#include <algorithm>

namespace onion::mitigation {

using core::OverlayNetwork;
using core::PeerDecision;

void SoapCampaign::capture(NodeId bot) {
  ONION_EXPECTS(net_.alive(bot) && net_.honest(bot));
  discovered_.insert(bot);
  // The captured bot's peer table and NoN knowledge are in the
  // defender's hands.
  for (const NodeId n : net_.neighbors(bot)) {
    if (!net_.honest(n)) continue;
    discovered_.insert(n);
    for (const NodeId nn : net_.neighbors(n))
      if (net_.honest(nn)) discovered_.insert(nn);
  }
}

void SoapCampaign::learn_neighbors_of(NodeId target) {
  // A clone accepted by `target` receives its neighbor list (the NoN
  // exchange every new peer gets).
  for (const NodeId n : net_.neighbors(target))
    if (net_.honest(n)) discovered_.insert(n);
}

std::size_t SoapCampaign::contained_count() const {
  std::size_t count = 0;
  for (const NodeId t : discovered_)
    if (net_.alive(t) && net_.contained(t)) ++count;
  return count;
}

bool SoapCampaign::fully_contained() const {
  for (const NodeId t : discovered_)
    if (net_.alive(t) && !net_.contained(t)) return false;
  return !discovered_.empty();
}

SoapRoundStats SoapCampaign::snapshot() const {
  SoapRoundStats s;
  s.round = round_;
  s.discovered = discovered_.size();
  s.contained = contained_count();
  s.clones = clones_.size();
  s.honest_edges = net_.honest_edges();
  s.honest_components = net_.honest_components();
  s.work_spent = net_.sybil_work_spent();
  return s;
}

bool SoapCampaign::step() {
  if (discovered_.empty()) return false;
  if (net_.sybil_work_spent() >= config_.work_budget) return false;
  if (fully_contained()) return false;

  ++round_;
  net_.begin_round();

  // Snapshot targets: discovery grows during the round.
  std::vector<NodeId> targets(discovered_.begin(), discovered_.end());
  bool progress = false;
  for (const NodeId target : targets) {
    if (!net_.alive(target) || net_.contained(target)) continue;
    for (std::size_t r = 0; r < config_.requests_per_target_per_round;
         ++r) {
      if (net_.sybil_work_spent() >= config_.work_budget) break;
      const std::size_t lie = rng_.uniform_in(config_.clone_declared_min,
                                              config_.clone_declared_max);
      const NodeId clone = net_.add_node(/*honest=*/false, lie);
      clones_.push_back(clone);
      const PeerDecision decision = net_.request_peering(clone, target);
      if (decision == PeerDecision::AcceptedWithCapacity ||
          decision == PeerDecision::AcceptedEvicted) {
        progress = true;
        learn_neighbors_of(target);
      }
    }
  }

  // Honest-side maintenance: bots that lost edges refill from their NoN —
  // the self-healing that makes containment a fight, not a walkover.
  for (const NodeId v : net_.honest_nodes()) net_.refill(v);

  return progress || !fully_contained();
}

std::vector<SoapRoundStats> SoapCampaign::run() {
  std::vector<SoapRoundStats> timeline;
  timeline.push_back(snapshot());
  while (round_ < config_.max_rounds) {
    const std::size_t before_contained = contained_count();
    const std::size_t before_discovered = discovered_.size();
    if (!step()) break;
    timeline.push_back(snapshot());
    if (fully_contained()) break;
    if (net_.sybil_work_spent() >= config_.work_budget) break;
    // Stall detection: no containment or discovery progress for a while
    // (e.g. the PoW defense priced us out of evictions).
    if (contained_count() == before_contained &&
        discovered_.size() == before_discovered) {
      if (++stall_rounds_ >= 50) break;
    } else {
      stall_rounds_ = 0;
    }
  }
  timeline.push_back(snapshot());
  return timeline;
}

}  // namespace onion::mitigation
