// SOAP over the full stack (paper Section VI-B, run end to end): the
// defender's clones are real hidden services on the simulated Tor
// network, attacking a live botnet of message-passing bots. Nothing
// here touches bot internals — the campaign only does what a real
// defender could do:
//
//   * read one captured bot's memory (peer table + NoN knowledge),
//   * run many clone .onion services on one machine (the IP/.onion
//     decoupling the paper turns against the botnet),
//   * send peering requests declaring tiny degrees, so the DDSR
//     acceptance rule evicts benign peers in the clones' favor,
//   * harvest every neighbor list returned along the way,
//   * and never relay botnet traffic (the legal-liability constraint:
//     broadcasts are swallowed, probe challenges go unanswered).
//
// Containment is scored from outside via Botnet introspection: a bot is
// contained when every peer-table entry is a clone address.
#pragma once

#include <set>

#include "core/botnet.hpp"

namespace onion::mitigation {

struct LiveSoapConfig {
  /// The degree clones declare (Figure 7 step 3's "small random
  /// number"); re-rolled per request.
  std::size_t clone_declared_min = 1;
  std::size_t clone_declared_max = 2;
  /// Clone peering requests aimed at each discovered address per round.
  std::size_t requests_per_target_per_round = 2;
  /// Fake neighbors a clone names in its peering replies / NoN shares —
  /// other clones, so honest refill walks deeper into the clone cloud.
  std::size_t clone_fake_neighbors = 3;
  std::uint64_t seed = 0x50a9;
};

/// Drives a live soaping campaign. The campaign only *sends* messages;
/// the caller advances virtual time (net.run_for) between rounds so the
/// requests, replies, and the bots' own maintenance all play out.
class LiveSoapCampaign {
 public:
  LiveSoapCampaign(core::Botnet& net, LiveSoapConfig config);

  /// Seeds discovery from a captured bot: its address, peer table, and
  /// NoN knowledge (paper §VI-B: reverse engineering / honeypots).
  void capture(std::size_t bot_index);

  /// One campaign round: clone peering requests at every discovered,
  /// not-yet-contained address. Returns the number of requests sent.
  std::size_t step();

  /// --- introspection ---------------------------------------------------
  const std::set<tor::OnionAddress>& discovered() const {
    return discovered_;
  }
  std::size_t clones_created() const { return clones_.size(); }
  bool is_clone(const tor::OnionAddress& address) const {
    return clones_.count(address) > 0;
  }
  /// Peering requests accepted by targets so far.
  std::size_t acceptances() const { return acceptances_; }

  /// Ground truth (omniscient test view): is bot `i` contained — alive
  /// with every peer a clone?
  bool bot_contained(std::size_t bot_index) const;
  std::size_t contained_count() const;

 private:
  Bytes handle(BytesView request, const tor::OnionAddress& self);
  tor::OnionAddress spawn_clone();
  void harvest(const std::vector<tor::OnionAddress>& addresses);
  std::size_t declared_lie();

  core::Botnet& net_;
  LiveSoapConfig config_;
  Rng rng_;
  tor::EndpointId endpoint_ = tor::kInvalidEndpoint;  // one machine
  std::set<tor::OnionAddress> discovered_;
  std::set<tor::OnionAddress> clones_;
  std::size_t acceptances_ = 0;
};

}  // namespace onion::mitigation
