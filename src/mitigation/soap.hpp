// SOAP — Sybil Onion Attack Protocol (paper Section VI-B, Figure 7).
//
// The defender's twist: use the botnet's own stealth against it. Because
// OnionBot peers know each other only as .onion addresses, nothing stops
// one machine from running hundreds of "bots" (clones). Starting from one
// captured bot, the defender:
//
//   1. learns the captured bot's peers and neighbors-of-neighbors,
//   2. spawns clones that request peering while declaring a tiny degree
//      (so the DDSR acceptance rule always prefers them),
//   3. lets the target's own pruning evict its benign peers one by one,
//   4. repeats until every peer of the target is a clone — contained —
//      and every neighbor list harvested along the way feeds discovery.
//
// Run to completion, the campaign partitions the botnet into isolated,
// clone-ringed nodes and the botnet is neutralized.
#pragma once

#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/overlay.hpp"

namespace onion::mitigation {

/// Campaign tuning.
struct SoapConfig {
  /// The degree clones declare ("a small random number, which changes to
  /// avoid detection (e.g., d=2)" — Figure 7 step 3). Clones declare a
  /// fresh value in [min, max] each time.
  std::size_t clone_declared_min = 1;
  std::size_t clone_declared_max = 3;

  /// Clone peering attempts aimed at each discovered target per round.
  std::size_t requests_per_target_per_round = 1;

  /// Proof-of-work budget; the campaign halts when spent (defense
  /// evaluation). Unlimited by default.
  double work_budget = std::numeric_limits<double>::infinity();

  /// Hard stop.
  std::size_t max_rounds = 10000;
};

/// Per-round campaign telemetry (the Figure 7 bench's series).
struct SoapRoundStats {
  std::size_t round = 0;
  std::size_t discovered = 0;        // honest bots known to the defender
  std::size_t contained = 0;         // honest bots fully clone-ringed
  std::size_t clones = 0;            // sybil nodes created so far
  std::size_t honest_edges = 0;      // surviving bot-to-bot links
  std::size_t honest_components = 0; // fragmentation of the botnet
  double work_spent = 0.0;           // PoW paid by the defender so far
};

/// Drives a soaping campaign against an overlay.
class SoapCampaign {
 public:
  using NodeId = core::OverlayNetwork::NodeId;

  SoapCampaign(core::OverlayNetwork& net, SoapConfig config, Rng& rng)
      : net_(net), config_(config), rng_(rng) {}

  /// Seeds discovery from a captured bot (reverse engineering or a
  /// honeypot — paper §VI-B): the defender reads its peer table and NoN
  /// knowledge.
  void capture(NodeId bot);

  /// Executes one round: a clone peering attempt per discovered
  /// uncontained target, then honest-side refill maintenance. Returns
  /// false when no further progress is possible (done or out of budget).
  bool step();

  /// Runs rounds until the botnet is neutralized, the budget is gone, or
  /// max_rounds elapse. Returns the per-round telemetry.
  std::vector<SoapRoundStats> run();

  /// --- introspection -------------------------------------------------
  const std::set<NodeId>& discovered() const { return discovered_; }
  std::size_t clones_created() const { return clones_.size(); }
  std::size_t contained_count() const;
  /// True when every discovered honest bot is contained.
  bool fully_contained() const;
  std::size_t rounds_run() const { return round_; }

 private:
  void learn_neighbors_of(NodeId target);
  SoapRoundStats snapshot() const;

  core::OverlayNetwork& net_;
  SoapConfig config_;
  Rng& rng_;
  std::set<NodeId> discovered_;
  std::vector<NodeId> clones_;
  std::size_t round_ = 0;
  std::size_t stall_rounds_ = 0;
};

}  // namespace onion::mitigation
