// Event-driven structural telemetry. A StructuralTracker attaches to the
// overlay's graph as a graph::MutationObserver and keeps every structural
// field of MetricsSnapshot — honest/Sybil alive counts, honest-edge count,
// degree sum, and the honest degree histogram — exact per mutation, so a
// snapshot costs O(nodes affected since the last one) instead of the
// O((n+m)·α) slot-table sweep the engine used to pay per snapshot.
//
// Components and the largest component use a hybrid scheme: edge and node
// *insertions* are folded into an incremental union-find as they happen
// (a union-find cannot un-merge), while any deletion that can affect
// honest connectivity — an honest-honest edge removal or an honest node
// death — only marks the component state dirty. The next fill() then pays
// one O((n+m)·α) rebuild for the whole window. Pure-growth windows (and
// windows that only touch Sybils) are O(1); under a dense snapshot
// cadence most windows between deletions are exactly that, which is what
// makes per-event-rate telemetry affordable (bench/micro_snapshot.cpp
// measures the gap; tests/tracker_test.cpp proves equality with the
// from-scratch sweep).
#pragma once

#include <cstdint>
#include <vector>

#include "core/overlay.hpp"
#include "graph/graph.hpp"
#include "graph/union_find.hpp"
#include "scenario/snapshot.hpp"

namespace onion::scenario {

/// Reference implementation: the from-scratch O((n+m)·α) sweep of the
/// same structural fields the tracker maintains incrementally (exactly
/// the engine's former per-snapshot pass). Non-structural fields are left
/// at their defaults. The differential tests and the sweep-vs-incremental
/// micro bench compare against this.
MetricsSnapshot sweep_structural(const core::OverlayNetwork& net,
                                 bool degree_histogram);

/// Maintains the structural snapshot fields per graph mutation. Attaches
/// to net.graph_mut() on construction (one O(n+m) pass to absorb the
/// current state) and detaches in the destructor. One tracker per graph;
/// nodes must enter through OverlayNetwork::add_node so honesty metadata
/// exists when the node-added callback classifies them.
class StructuralTracker final : public graph::MutationObserver {
 public:
  using NodeId = graph::NodeId;

  explicit StructuralTracker(core::OverlayNetwork& net);
  ~StructuralTracker() override;
  StructuralTracker(const StructuralTracker&) = delete;
  StructuralTracker& operator=(const StructuralTracker&) = delete;

  // graph::MutationObserver — each callback is O(1) amortized.
  void on_node_added(NodeId u) override;
  void on_node_removed(NodeId u) override;
  void on_edge_added(NodeId u, NodeId v) override;
  void on_edge_removed(NodeId u, NodeId v) override;

  /// Writes the structural fields into `s`: byte-identical to
  /// sweep_structural() on the same state. O(1) plus the histogram copy
  /// when the window since the last fill() contained no deletions; one
  /// O((n+m)·α) component rebuild otherwise.
  void fill(MetricsSnapshot& s, bool with_histogram);

  /// --- introspection (tests and benches) -----------------------------
  /// Full component rebuilds paid so far (== snapshots whose preceding
  /// window contained a connectivity-relevant deletion).
  std::uint64_t rebuilds() const { return rebuilds_; }
  /// True iff the next fill() must rebuild components.
  bool components_dirty() const { return dirty_; }

 private:
  void rebuild_components();
  /// Moves one honest node between histogram buckets (kNoBucket = none).
  static constexpr std::size_t kNoBucket = ~std::size_t{0};
  void shift_histogram(std::size_t from, std::size_t to);

  const core::OverlayNetwork& net_;
  graph::Graph& graph_;

  // Exact per-mutation counters.
  std::uint64_t honest_alive_ = 0;
  std::uint64_t sybil_alive_ = 0;
  std::uint64_t honest_edges_ = 0;
  std::uint64_t degree_sum_ = 0;  // honest nodes, all incident edges
  std::vector<std::uint32_t> histogram_;  // may carry trailing zeros

  // Hybrid component state.
  graph::UnionFind uf_{0};
  std::uint64_t components_ = 0;
  std::uint64_t largest_ = 0;
  bool dirty_ = false;
  std::uint64_t rebuilds_ = 0;
  std::vector<std::uint32_t> comp_scratch_;  // rebuild component sizes

  // Every mutation since attach must have been observed: fill() asserts
  // graph_.mutation_epoch() == base_epoch_ + events_seen_.
  std::uint64_t base_epoch_ = 0;
  std::uint64_t events_seen_ = 0;
};

}  // namespace onion::scenario
