// Event-driven structural telemetry. A StructuralTracker attaches to the
// overlay's graph as a graph::MutationObserver and keeps every structural
// field of MetricsSnapshot — honest/Sybil alive counts, honest-edge count,
// degree sum, the honest degree histogram, components, and the largest
// component — exact per mutation, so a snapshot costs O(1) plus the
// histogram copy instead of the O((n+m)·α) slot-table sweep the engine
// used to pay per snapshot.
//
// Components and the largest component live in a fully-dynamic
// connectivity structure (graph::DynamicConnectivity): insertions merge
// by weighted relabeling, deletions run a bidirectional replacement-path
// search. There is no dirty flag and no deletion-window rebuild cliff —
// takedown-heavy campaigns (the paper's Section V resilience sweeps) pay
// per-event costs proportional to actual structural change, not to
// graph size. tests/tracker_test.cpp proves byte-equality with the
// from-scratch sweep across randomized join/leave/takedown/SOAP
// interleavings; bench/micro_snapshot.cpp measures the deletion-window
// gap versus both the sweep and the retired union-find rebuild.
//
// The tracker also keeps an order-statistics bitmap over honest alive
// slots, so the engine can draw a uniform honest victim in O(log n)
// (honest_at(k) == honest_nodes()[k] without building the vector).
#pragma once

#include <cstdint>
#include <vector>

#include "common/order_stat.hpp"
#include "core/overlay.hpp"
#include "graph/dynamic_connectivity.hpp"
#include "graph/graph.hpp"
#include "scenario/snapshot.hpp"

namespace onion::scenario {

/// Reference implementation: the from-scratch O((n+m)·α) sweep of the
/// same structural fields the tracker maintains incrementally (exactly
/// the engine's former per-snapshot pass). Non-structural fields are left
/// at their defaults. The differential tests and the sweep-vs-incremental
/// micro bench compare against this.
MetricsSnapshot sweep_structural(const core::OverlayNetwork& net,
                                 bool degree_histogram);

/// Maintains the structural snapshot fields per graph mutation. Attaches
/// to net.graph_mut() on construction (one O(n+m) pass to absorb the
/// current state) and detaches in the destructor. One tracker per graph;
/// nodes must enter through OverlayNetwork::add_node so honesty metadata
/// exists when the node-added callback classifies them.
class StructuralTracker final : public graph::MutationObserver {
 public:
  using NodeId = graph::NodeId;

  explicit StructuralTracker(core::OverlayNetwork& net);
  ~StructuralTracker() override;
  StructuralTracker(const StructuralTracker&) = delete;
  StructuralTracker& operator=(const StructuralTracker&) = delete;

  // graph::MutationObserver — insertions are O(1) amortized (weighted-
  // union relabeling); an honest-honest edge removal pays a replacement-
  // path search bounded by the smaller side of the (potential) split.
  void on_node_added(NodeId u) override;
  void on_node_removed(NodeId u) override;
  void on_edge_added(NodeId u, NodeId v) override;
  void on_edge_removed(NodeId u, NodeId v) override;

  /// Writes the structural fields into `s`: byte-identical to
  /// sweep_structural() on the same state. Always O(1) plus the
  /// histogram copy — deletions were already folded in when they
  /// happened, so there is no rebuild path.
  void fill(MetricsSnapshot& s, bool with_histogram);

  /// --- honest-population order statistics ----------------------------
  /// Number of honest alive nodes.
  std::uint64_t honest_alive() const { return honest_alive_; }
  /// Id of the k-th honest alive node in ascending id order — equal to
  /// net.honest_nodes()[k], in O(log n) and without the O(n) vector.
  NodeId honest_at(std::uint64_t k) const {
    return static_cast<NodeId>(honest_set_.select(k));
  }

  /// --- introspection (tests and benches) -----------------------------
  /// Full component rebuilds paid so far. Always 0 since the tracker
  /// went fully dynamic; kept so benches and scale tests can assert the
  /// deletion-window cliff stays dead.
  std::uint64_t rebuilds() const { return rebuilds_; }
  /// The underlying connectivity structure (search-step counters etc.).
  const graph::DynamicConnectivity& connectivity() const { return dc_; }

 private:
  /// Moves one honest node between histogram buckets (kNoBucket = none).
  static constexpr std::size_t kNoBucket = ~std::size_t{0};
  void shift_histogram(std::size_t from, std::size_t to);

  const core::OverlayNetwork& net_;
  graph::Graph& graph_;

  // Exact per-mutation counters.
  std::uint64_t honest_alive_ = 0;
  std::uint64_t sybil_alive_ = 0;
  std::uint64_t honest_edges_ = 0;
  std::uint64_t degree_sum_ = 0;  // honest nodes, all incident edges
  std::vector<std::uint32_t> histogram_;  // trimmed: no trailing zeros

  // Fully-dynamic honest-subgraph connectivity.
  graph::DynamicConnectivity dc_;
  // Honest alive slots as a rank/select bitmap (engine victim draws).
  OrderStatSet honest_set_;
  std::uint64_t rebuilds_ = 0;

  // Every mutation since attach must have been observed: fill() asserts
  // graph_.mutation_epoch() == base_epoch_ + events_seen_.
  std::uint64_t base_epoch_ = 0;
  std::uint64_t events_seen_ = 0;
};

}  // namespace onion::scenario
