#include "scenario/snapshot.hpp"

namespace onion::scenario {

Bytes serialize(const MetricsSnapshot& s) {
  Bytes out;
  out.reserve(8 * 20 + 4 * s.degree_histogram.size());
  put_u64(out, s.time);
  put_u64(out, s.honest_alive);
  put_u64(out, s.sybil_alive);
  put_u64(out, s.honest_edges);
  put_u64(out, s.components);
  put_u64(out, s.largest_component);
  put_f64(out, s.largest_fraction);
  put_f64(out, s.average_degree);
  put_u64(out, s.diameter);
  put_u64(out, s.joins);
  put_u64(out, s.leaves);
  put_u64(out, s.takedowns);
  put_u64(out, s.repair_edges);
  put_u64(out, s.prune_edges);
  put_u64(out, s.refill_edges);
  put_u64(out, s.repair_messages);
  put_u64(out, s.soap_clones);
  put_u64(out, s.soap_contained);
  put_u64(out, s.degree_histogram.size());
  for (const std::uint32_t count : s.degree_histogram) {
    out.push_back(static_cast<std::uint8_t>(count >> 24));
    out.push_back(static_cast<std::uint8_t>(count >> 16));
    out.push_back(static_cast<std::uint8_t>(count >> 8));
    out.push_back(static_cast<std::uint8_t>(count));
  }
  // Wave attribution is appended only when present: a plan-free
  // snapshot keeps the exact pre-wave byte layout (the committed golden
  // fingerprints depend on it).
  if (!s.wave_takedowns.empty()) {
    put_u64(out, s.wave_takedowns.size());
    for (const std::uint64_t count : s.wave_takedowns) put_u64(out, count);
  }
  return out;
}

void HashSink::on_snapshot(const MetricsSnapshot& s) {
  const Bytes encoded = serialize(s);
  hasher_.update(encoded);
  ++count_;
}

crypto::Sha256Digest HashSink::digest() const {
  crypto::Sha256 copy = hasher_;  // finalize() is destructive
  return copy.finalize();
}

std::string HashSink::hex_digest() const {
  const crypto::Sha256Digest d = digest();
  return to_hex(BytesView(d.data(), d.size()));
}

void CsvSink::on_snapshot(const MetricsSnapshot& s) {
  if (header_) {
    std::fprintf(out_,
                 "time_s,honest_alive,sybil_alive,honest_edges,components,"
                 "largest_fraction,avg_degree,diameter,joins,leaves,"
                 "takedowns,repair_messages,soap_clones,soap_contained\n");
    header_ = false;
  }
  if (s.diameter == kNoDiameter) {
    std::fprintf(out_, "%llu,%llu,%llu,%llu,%llu,%.4f,%.3f,,",
                 static_cast<unsigned long long>(to_seconds(s.time)),
                 static_cast<unsigned long long>(s.honest_alive),
                 static_cast<unsigned long long>(s.sybil_alive),
                 static_cast<unsigned long long>(s.honest_edges),
                 static_cast<unsigned long long>(s.components),
                 s.largest_fraction, s.average_degree);
  } else {
    std::fprintf(out_, "%llu,%llu,%llu,%llu,%llu,%.4f,%.3f,%llu,",
                 static_cast<unsigned long long>(to_seconds(s.time)),
                 static_cast<unsigned long long>(s.honest_alive),
                 static_cast<unsigned long long>(s.sybil_alive),
                 static_cast<unsigned long long>(s.honest_edges),
                 static_cast<unsigned long long>(s.components),
                 s.largest_fraction, s.average_degree,
                 static_cast<unsigned long long>(s.diameter));
  }
  std::fprintf(out_, "%llu,%llu,%llu,%llu,%llu,%llu\n",
               static_cast<unsigned long long>(s.joins),
               static_cast<unsigned long long>(s.leaves),
               static_cast<unsigned long long>(s.takedowns),
               static_cast<unsigned long long>(s.repair_messages),
               static_cast<unsigned long long>(s.soap_clones),
               static_cast<unsigned long long>(s.soap_contained));
}

}  // namespace onion::scenario
