#include "scenario/wire.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.hpp"

namespace onion::scenario::wire {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw WireError("wire: " + what);
}

std::uint32_t get_u32(ByteReader& r) {
  const BytesView b = r.raw(4);
  return static_cast<std::uint32_t>(b[0]) << 24 |
         static_cast<std::uint32_t>(b[1]) << 16 |
         static_cast<std::uint32_t>(b[2]) << 8 |
         static_cast<std::uint32_t>(b[3]);
}

/// Payload decoders run behind the frame digest, so a short read means
/// a bug or a hand-fed buffer — either way it surfaces as a WireError
/// naming the payload kind, not a bare std::out_of_range.
template <typename Fn>
auto decode_payload(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const std::out_of_range& e) {
    bad(std::string(what) + ": " + e.what());
  }
}

detection::ReplayGridPoint read_replay_point(ByteReader& r) {
  detection::ReplayGridPoint p;
  p.campaign = static_cast<std::size_t>(r.u64());
  p.replay_seed = r.u64();
  p.detector = r.str();
  p.params = r.str();
  p.flows = r.u64();
  p.flagged = static_cast<std::size_t>(r.u64());
  p.true_positives = static_cast<std::size_t>(r.u64());
  p.false_positives = static_cast<std::size_t>(r.u64());
  p.tpr = r.f64();
  p.fpr = r.f64();
  const std::uint64_t families = r.u64();
  p.families.reserve(static_cast<std::size_t>(families));
  for (std::uint64_t i = 0; i < families; ++i) {
    detection::RocFamilyCount f;
    f.family = r.str();
    f.flagged = static_cast<std::size_t>(r.u64());
    f.population = static_cast<std::size_t>(r.u64());
    p.families.push_back(std::move(f));
  }
  return p;
}

/// Points travel length-prefixed (like snapshots in a CellResult):
/// the canonical point encoding detection::serialize produces is what
/// fingerprints hash, and the prefix keeps the frame decodable without
/// touching that layout.
void put_replay_points(
    Bytes& out, const std::vector<detection::ReplayGridPoint>& points) {
  put_u64(out, points.size());
  for (const detection::ReplayGridPoint& p : points) {
    const Bytes encoded = detection::serialize(p);
    put_u64(out, encoded.size());
    append(out, encoded);
  }
}

std::vector<detection::ReplayGridPoint> read_replay_points(ByteReader& r) {
  std::vector<detection::ReplayGridPoint> points;
  const std::uint64_t count = r.u64();
  points.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.u64();
    ByteReader point_reader(r.raw(static_cast<std::size_t>(len)));
    points.push_back(read_replay_point(point_reader));
    if (!point_reader.done()) bad("replay point: trailing bytes");
  }
  return points;
}

void put_failed_cells(Bytes& out, const std::vector<FailedCell>& failed) {
  put_u64(out, failed.size());
  for (const FailedCell& cell : failed) {
    put_u64(out, cell.cell_index);
    put_string(out, cell.label);
    put_u64(out, cell.seed);
    put_u64(out, cell.attempts);
    put_string(out, cell.error);
  }
}

std::vector<FailedCell> read_failed_cells(ByteReader& r) {
  std::vector<FailedCell> failed;
  const std::uint64_t count = r.u64();
  failed.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    FailedCell cell;
    cell.cell_index = r.u64();
    cell.label = r.str();
    cell.seed = r.u64();
    cell.attempts = r.u64();
    cell.error = r.str();
    failed.push_back(std::move(cell));
  }
  return failed;
}

CellResult read_cell_result(ByteReader& r) {
  CellResult cell;
  cell.label = r.str();
  cell.seed = r.u64();
  cell.fingerprint = r.str();
  const std::uint64_t count = r.u64();
  cell.series.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t len = r.u64();
    cell.series.push_back(
        deserialize_snapshot(r.raw(static_cast<std::size_t>(len))));
  }
  cell.counters.joins = r.u64();
  cell.counters.leaves = r.u64();
  cell.counters.takedowns = r.u64();
  cell.events_executed = r.u64();
  cell.wall_seconds = r.f64();
  return cell;
}

}  // namespace

Bytes serialize(const CellResult& cell) {
  Bytes out;
  put_string(out, cell.label);
  put_u64(out, cell.seed);
  put_string(out, cell.fingerprint);
  // Each snapshot length-prefixed: the canonical snapshot encoding is
  // not self-delimiting (the wave block is conditional), and the prefix
  // keeps it that way without touching the fingerprinted layout.
  put_u64(out, cell.series.size());
  for (const MetricsSnapshot& s : cell.series) {
    const Bytes encoded = scenario::serialize(s);
    put_u64(out, encoded.size());
    append(out, encoded);
  }
  put_u64(out, cell.counters.joins);
  put_u64(out, cell.counters.leaves);
  put_u64(out, cell.counters.takedowns);
  put_u64(out, cell.events_executed);
  put_f64(out, cell.wall_seconds);  // informational: see header contract
  return out;
}

CellResult deserialize_cell_result(BytesView payload) {
  return decode_payload("cell-result payload", [&] {
    ByteReader r(payload);
    CellResult cell = read_cell_result(r);
    if (!r.done()) bad("cell-result payload: trailing bytes");
    return cell;
  });
}

Bytes serialize(const GridReport& report) {
  Bytes out;
  put_u64(out, report.cells.size());
  for (const CellResult& cell : report.cells) {
    const Bytes encoded = serialize(cell);
    put_u64(out, encoded.size());
    append(out, encoded);
  }
  put_failed_cells(out, report.failed_cells);
  put_string(out, report.combined_fingerprint);
  put_u64(out, report.threads_used);    // informational from here down
  put_f64(out, report.wall_seconds);
  put_u64(out, report.retries);
  put_u64(out, report.resumed_cells);
  return out;
}

GridReport deserialize_grid_report(BytesView payload) {
  return decode_payload("grid-report payload", [&] {
    ByteReader r(payload);
    GridReport report;
    const std::uint64_t cells = r.u64();
    report.cells.reserve(static_cast<std::size_t>(cells));
    for (std::uint64_t i = 0; i < cells; ++i) {
      const std::uint64_t len = r.u64();
      ByteReader cell_reader(r.raw(static_cast<std::size_t>(len)));
      report.cells.push_back(read_cell_result(cell_reader));
      if (!cell_reader.done()) bad("grid-report payload: trailing cell bytes");
    }
    report.failed_cells = read_failed_cells(r);
    report.combined_fingerprint = r.str();
    report.threads_used = r.u64();
    report.wall_seconds = r.f64();
    report.retries = r.u64();
    report.resumed_cells = r.u64();
    if (!r.done()) bad("grid-report payload: trailing bytes");
    return report;
  });
}

Bytes serialize(const detection::ReplayGridCell& cell) {
  Bytes out;
  put_u64(out, cell.cell_index);
  put_u64(out, cell.campaign);
  put_u64(out, cell.replay_seed);
  put_replay_points(out, cell.points);
  put_f64(out, cell.wall_seconds);  // informational: see header contract
  return out;
}

detection::ReplayGridCell deserialize_replay_cell(BytesView payload) {
  return decode_payload("replay-cell payload", [&] {
    ByteReader r(payload);
    detection::ReplayGridCell cell;
    cell.cell_index = r.u64();
    cell.campaign = r.u64();
    cell.replay_seed = r.u64();
    cell.points = read_replay_points(r);
    cell.wall_seconds = r.f64();
    if (!r.done()) bad("replay-cell payload: trailing bytes");
    return cell;
  });
}

Bytes serialize(const detection::ReplayGridReport& report) {
  Bytes out;
  put_replay_points(out, report.points);
  put_failed_cells(out, report.failed_cells);
  put_string(out, report.fingerprint);
  put_u64(out, report.threads_used);  // informational from here down
  put_f64(out, report.wall_seconds);
  put_u64(out, report.retries);
  put_u64(out, report.resumed_cells);
  return out;
}

detection::ReplayGridReport deserialize_replay_report(BytesView payload) {
  return decode_payload("replay-report payload", [&] {
    ByteReader r(payload);
    detection::ReplayGridReport report;
    report.points = read_replay_points(r);
    report.failed_cells = read_failed_cells(r);
    report.fingerprint = r.str();
    report.threads_used = static_cast<std::size_t>(r.u64());
    report.wall_seconds = r.f64();
    report.retries = r.u64();
    report.resumed_cells = r.u64();
    if (!r.done()) bad("replay-report payload: trailing bytes");
    return report;
  });
}

detection::ReplayGridPoint deserialize_replay_point(BytesView encoded) {
  return decode_payload("replay point", [&] {
    ByteReader r(encoded);
    detection::ReplayGridPoint p = read_replay_point(r);
    if (!r.done()) bad("replay point: trailing bytes");
    return p;
  });
}

MetricsSnapshot deserialize_snapshot(BytesView encoded) {
  return decode_payload("snapshot", [&] {
    ByteReader r(encoded);
    MetricsSnapshot s;
    s.time = static_cast<SimTime>(r.u64());
    s.honest_alive = r.u64();
    s.sybil_alive = r.u64();
    s.honest_edges = r.u64();
    s.components = r.u64();
    s.largest_component = r.u64();
    s.largest_fraction = r.f64();
    s.average_degree = r.f64();
    s.diameter = r.u64();
    s.joins = r.u64();
    s.leaves = r.u64();
    s.takedowns = r.u64();
    s.repair_edges = r.u64();
    s.prune_edges = r.u64();
    s.refill_edges = r.u64();
    s.repair_messages = r.u64();
    s.soap_clones = r.u64();
    s.soap_contained = r.u64();
    const std::uint64_t bins = r.u64();
    s.degree_histogram.reserve(static_cast<std::size_t>(bins));
    for (std::uint64_t i = 0; i < bins; ++i)
      s.degree_histogram.push_back(get_u32(r));
    // The conditional trailing block: present iff bytes remain, exactly
    // mirroring the serializer's empty-guard.
    if (!r.done()) {
      const std::uint64_t waves = r.u64();
      s.wave_takedowns.reserve(static_cast<std::size_t>(waves));
      for (std::uint64_t i = 0; i < waves; ++i)
        s.wave_takedowns.push_back(r.u64());
    }
    if (!r.done()) bad("snapshot: trailing bytes");
    return s;
  });
}

Bytes frame(std::uint64_t magic, BytesView payload) {
  Bytes out;
  out.reserve(kFrameHeaderBytes + payload.size() + kFrameDigestBytes);
  put_u64(out, magic);
  put_u64(out, kWireVersion);
  put_u64(out, payload.size());
  append(out, payload);
  const crypto::Sha256Digest digest = crypto::Sha256::hash(payload);
  append(out, BytesView(digest.data(), digest.size()));
  return out;
}

Bytes unframe(std::uint64_t magic, BytesView framed) {
  if (framed.size() < kFrameHeaderBytes + kFrameDigestBytes)
    bad("truncated frame: " + std::to_string(framed.size()) +
        " bytes, header + digest need " +
        std::to_string(kFrameHeaderBytes + kFrameDigestBytes));
  ByteReader r(framed);
  const std::uint64_t got_magic = r.u64();
  if (got_magic != magic)
    bad("bad magic " + to_hex(be64(got_magic)) + " (expected " +
        to_hex(be64(magic)) + ")");
  const std::uint64_t version = r.u64();
  if (version != kWireVersion)
    bad("unsupported wire version " + std::to_string(version) +
        " (this build speaks version " + std::to_string(kWireVersion) + ")");
  const std::uint64_t payload_len = r.u64();
  const std::uint64_t body =
      framed.size() - kFrameHeaderBytes - kFrameDigestBytes;
  if (payload_len != body)
    bad("frame length mismatch: header says " + std::to_string(payload_len) +
        " payload bytes, frame carries " + std::to_string(body));
  const BytesView payload = r.raw(static_cast<std::size_t>(payload_len));
  const BytesView claimed = r.raw(kFrameDigestBytes);
  const crypto::Sha256Digest actual = crypto::Sha256::hash(payload);
  if (!std::equal(claimed.begin(), claimed.end(), actual.begin()))
    bad("integrity digest mismatch: frame truncated or corrupted");
  return Bytes(payload.begin(), payload.end());
}

Bytes encode_cell_result(const CellResult& cell) {
  return frame(kCellResultMagic, serialize(cell));
}

CellResult decode_cell_result(BytesView framed) {
  return deserialize_cell_result(unframe(kCellResultMagic, framed));
}

Bytes encode_grid_report(const GridReport& report) {
  return frame(kGridReportMagic, serialize(report));
}

GridReport decode_grid_report(BytesView framed) {
  return deserialize_grid_report(unframe(kGridReportMagic, framed));
}

Bytes encode_replay_cell(const detection::ReplayGridCell& cell) {
  return frame(kReplayCellMagic, serialize(cell));
}

detection::ReplayGridCell decode_replay_cell(BytesView framed) {
  return deserialize_replay_cell(unframe(kReplayCellMagic, framed));
}

Bytes encode_replay_report(const detection::ReplayGridReport& report) {
  return frame(kReplayReportMagic, serialize(report));
}

detection::ReplayGridReport decode_replay_report(BytesView framed) {
  return deserialize_replay_report(unframe(kReplayReportMagic, framed));
}

}  // namespace onion::scenario::wire
