// Declarative scenario specifications for the campaign engine. A
// ScenarioSpec describes one seeded experiment — initial overlay, a
// churn process, scheduled attack phases, defense toggles, and a metrics
// cadence — without any imperative loop; src/scenario/engine.hpp
// compiles it onto the discrete-event simulator. The attack vocabulary
// follows the paper's Section V takedown sweeps and the SOAP campaign of
// Section VI-B; the defenses are the Section VII-A proof-of-work and
// rate-limiting knobs already modeled by core/overlay.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/clock.hpp"

namespace onion::scenario {

/// Background membership churn: Poisson joins and leaves, rates in
/// events per simulated hour. Leaves are "gradual" deaths: the paper's
/// model where the overlay notices and heals (unless disabled).
struct ChurnSpec {
  double joins_per_hour = 0.0;
  double leaves_per_hour = 0.0;
  /// DDSR repair of a leaver's neighborhood (clique + prune + refill).
  bool heal_on_leave = true;
};

/// What an attack phase does while its window is open.
enum class AttackKind : std::uint8_t {
  RandomTakedown,      // uniformly chosen victims (Figure 5/6 model)
  TargetedTakedown,    // highest-degree bot first
  CentralityTakedown,  // highest pivot-sampled betweenness first
  SoapInjection,       // clone-based containment (Section VI-B)
};

/// One scheduled attack window [start, stop).
struct AttackPhase {
  AttackKind kind = AttackKind::RandomTakedown;
  SimTime start = 0;
  SimTime stop = 0;

  /// Takedown kinds: victims per simulated hour.
  double takedowns_per_hour = 0.0;
  /// Whether victims' neighborhoods run DDSR repair (gradual takedown)
  /// or not (the simultaneous-takedown model of Figure 6).
  bool heal = true;
  /// CentralityTakedown: pivots for the sampled betweenness ranking.
  std::size_t betweenness_pivots = 64;

  /// SoapInjection: campaign cadence and per-tick round count.
  SimDuration soap_tick = kMinute;
  std::size_t soap_rounds_per_tick = 1;
};

/// Defense toggles (Section VII-A). They gate the overlay's *peering
/// requests* — bootstrap joins, post-eviction refills, and SOAP clone
/// injection — which is the surface the paper's PoW/rate-limit defenses
/// target. DDSR self-healing after a death (clique repair among a dead
/// bot's former neighbors, who already know each other through NoN)
/// runs at the graph level and is not charged; routing it through the
/// peering policy for defense-consistent ablations is a ROADMAP item.
struct DefenseSpec {
  /// Peering acceptances per node per round; max() disables the limit.
  std::size_t rate_limit_per_round =
      std::numeric_limits<std::size_t>::max();
  /// Proof-of-work: cost of the n-th request to a node is
  /// pow_base_cost * pow_growth^n (0 disables).
  double pow_base_cost = 0.0;
  double pow_growth = 2.0;
  /// Rate-limit round length (per-round acceptance counters reset on
  /// this cadence).
  SimDuration round = kMinute;
};

/// Snapshot cadence and which optional (costlier) metrics to include.
struct MetricsSpec {
  SimDuration period = kMinute;
  /// Degree histogram over honest alive bots.
  bool degree_histogram = true;
  /// Double-sweep diameter restarts; 0 skips the diameter entirely.
  std::size_t diameter_sweeps = 0;
};

/// The full declarative scenario.
struct ScenarioSpec {
  std::uint64_t seed = 1;
  /// Initial overlay: `initial_size` honest bots wired k-regular with
  /// degree band dmin = dmax = `degree` (the paper's topology).
  std::size_t initial_size = 1000;
  std::size_t degree = 10;
  /// Campaign length in simulated time.
  SimTime horizon = kHour;

  ChurnSpec churn;
  std::vector<AttackPhase> attacks;
  DefenseSpec defense;
  MetricsSpec metrics;
};

}  // namespace onion::scenario
