// Declarative scenario specifications for the campaign engine. A
// ScenarioSpec describes one seeded experiment — initial overlay, a
// churn process, scheduled attack phases and/or an ordered multi-wave
// plan, defense toggles, and a metrics cadence — without any imperative
// loop; src/scenario/engine.hpp compiles it onto the discrete-event
// simulator. The attack vocabulary follows the paper's Section V
// takedown sweeps and the SOAP campaign of Section VI-B, extended with
// the adaptive re-targeting attacker a real defender runs against a
// self-healing overlay; the defenses are the Section VII-A proof-of-work
// and rate-limiting knobs already modeled by core/overlay.hpp.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/clock.hpp"
#include "scenario/session.hpp"

namespace onion::scenario {

/// Background membership churn: Poisson joins, and leaves from either a
/// pooled Poisson process or per-bot session lengths. Leaves are
/// "gradual" deaths: the paper's model where the overlay notices and
/// heals (unless disabled).
struct ChurnSpec {
  double joins_per_hour = 0.0;
  double leaves_per_hour = 0.0;
  /// DDSR repair of a leaver's neighborhood (clique + prune + refill).
  bool heal_on_leave = true;

  /// When true, leaves are driven per bot instead of by the pooled
  /// `leaves_per_hour` process (which is then ignored): every initial
  /// bot draws a session length from `session` at t = 0, every joiner
  /// at its join, and leaves when it expires — unless an attack killed
  /// it first. Heavy-tailed models (Pareto, LogNormal) reproduce the
  /// measured P2P pattern of many short sessions plus a long-lived core.
  bool session_leaves = false;
  SessionSpec session;
};

/// What an attack phase does while its window is open.
enum class AttackKind : std::uint8_t {
  RandomTakedown,      // uniformly chosen victims (Figure 5/6 model)
  TargetedTakedown,    // highest-degree bot first
  CentralityTakedown,  // highest pivot-sampled betweenness first
  SoapInjection,       // clone-based containment (Section VI-B)
  AdaptiveTakedown,    // re-ranks victims on a refresh cadence (below)
};

/// How an AdaptiveTakedown attacker scores victims when it (re)ranks.
enum class RankMetric : std::uint8_t {
  SampledBetweenness,  // pivot-sampled Brandes betweenness
  Degree,              // live degree (cheap survey)
};

/// AttackPhase::refresh_period value meaning "rank once, never refresh":
/// the attacker surveys the overlay at its first strike and then works
/// through that stale hit list as the network heals around it.
constexpr SimDuration kNeverRefresh = ~SimDuration{0};

/// One scheduled attack window [start, stop).
struct AttackPhase {
  AttackKind kind = AttackKind::RandomTakedown;
  SimTime start = 0;
  SimTime stop = 0;

  /// Takedown kinds: victims per simulated hour.
  double takedowns_per_hour = 0.0;
  /// Whether victims' neighborhoods run DDSR repair (gradual takedown)
  /// or not (the simultaneous-takedown model of Figure 6).
  bool heal = true;
  /// CentralityTakedown / AdaptiveTakedown(SampledBetweenness): pivots
  /// for the sampled betweenness ranking.
  std::size_t betweenness_pivots = 64;

  /// AdaptiveTakedown: the victim-ranking metric, and how often the
  /// attacker re-surveys the healing overlay. 0 re-ranks before every
  /// strike — with rank == SampledBetweenness that is event-stream-
  /// identical to CentralityTakedown (the refresh-cadence → ∞ limit;
  /// tests/scenario_test.cpp enforces the identity byte-for-byte), and
  /// with rank == Degree identical to TargetedTakedown. kNeverRefresh
  /// ranks once at the first strike. Any value in between schedules
  /// refreshes at start, start + refresh_period, ... inside the window,
  /// each recorded as a TraceEventKind::AdaptiveRefresh.
  RankMetric rank = RankMetric::SampledBetweenness;
  SimDuration refresh_period = 0;

  /// SoapInjection: campaign cadence and per-tick round count.
  SimDuration soap_tick = kMinute;
  std::size_t soap_rounds_per_tick = 1;
};

/// One wave of a staged campaign plan: an attack that runs for
/// `duration`, followed by a quiet period in which the overlay heals
/// undisturbed before the next wave begins. The wave's attack carries
/// its own kind/intensity knobs; its start/stop are ignored and set
/// from the plan clock.
struct AttackWave {
  AttackPhase attack;
  SimDuration duration = 0;
  SimDuration quiet_after = 0;
};

/// An ordered takedown→heal→re-takedown plan: waves run back to back
/// from `start`, separated by their quiet periods. Waves are compiled
/// into absolute attack windows next to ScenarioSpec::attacks, and each
/// wave's victims are attributed in MetricsSnapshot::wave_takedowns. A
/// plan with one wave reproduces the equivalent single-phase run's
/// event stream exactly (modulo the WaveStart marker; differential in
/// tests/scenario_test.cpp).
struct WavePlan {
  SimTime start = 0;
  std::vector<AttackWave> waves;
};

/// Defense toggles (Section VII-A). They gate the overlay's *peering
/// requests* — bootstrap joins, post-eviction refills, and SOAP clone
/// injection. By default DDSR self-healing after a death (clique repair
/// among a dead bot's former neighbors, who already know each other
/// through NoN) runs at the graph level and is not charged;
/// `charge_healing` routes those repair/refill edges through
/// OverlayNetwork::request_peering too, so PoW/rate-limit ablations
/// charge honest self-healing the way refill already is.
struct DefenseSpec {
  /// Peering acceptances per node per round; max() disables the limit.
  std::size_t rate_limit_per_round =
      std::numeric_limits<std::size_t>::max();
  /// Proof-of-work: cost of the n-th request to a node is
  /// pow_base_cost * pow_growth^n (0 disables).
  double pow_base_cost = 0.0;
  double pow_growth = 2.0;
  /// Rate-limit round length (per-round acceptance counters reset on
  /// this cadence).
  SimDuration round = kMinute;

  /// Defense-consistent healing: when true, every DDSR death-repair and
  /// refill edge is a peering request subject to the PoW/rate-limit
  /// policy above (denials leave the hole open until a later round;
  /// DdsrStats::heal_requests_denied counts them, and each request is
  /// recorded as a TraceEventKind::HealPeering). False preserves the
  /// original uncharged graph-level repair semantics — and the
  /// committed golden fingerprints — exactly.
  bool charge_healing = false;
};

/// Snapshot cadence and which optional (costlier) metrics to include.
struct MetricsSpec {
  SimDuration period = kMinute;
  /// Degree histogram over honest alive bots.
  bool degree_histogram = true;
  /// Double-sweep diameter restarts; 0 skips the diameter entirely.
  std::size_t diameter_sweeps = 0;
};

/// The full declarative scenario.
struct ScenarioSpec {
  std::uint64_t seed = 1;
  /// Initial overlay: `initial_size` honest bots wired k-regular with
  /// degree band dmin = dmax = `degree` (the paper's topology).
  std::size_t initial_size = 1000;
  std::size_t degree = 10;
  /// Campaign length in simulated time.
  SimTime horizon = kHour;

  ChurnSpec churn;
  std::vector<AttackPhase> attacks;
  WavePlan waves;
  DefenseSpec defense;
  MetricsSpec metrics;
};

}  // namespace onion::scenario
