#include "scenario/session.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace onion::scenario {

double sample_session_hours(const SessionSpec& spec, Rng& rng) {
  ONION_EXPECTS(spec.min_hours <= spec.max_hours);
  ONION_EXPECTS(spec.pareto_alpha > 1.0);
  ONION_EXPECTS(spec.lognormal_sigma >= 0.0);

  // Every branch consumes its model's full draw budget before any
  // degenerate-parameter shortcut, keeping the stream position
  // spec-independent per sample.
  double x = 0.0;
  switch (spec.model) {
    case SessionModel::Exponential: {
      // 1 - u in (0, 1]: log never sees 0.
      const double u = rng.uniform_real();
      x = spec.mean_hours > 0.0 ? -spec.mean_hours * std::log1p(-u) : 0.0;
      break;
    }
    case SessionModel::Pareto: {
      // Scale chosen so the mean hits spec.mean_hours:
      // E[X] = alpha * x_m / (alpha - 1).
      const double u = rng.uniform_real();
      if (spec.mean_hours > 0.0) {
        const double xm =
            spec.mean_hours * (spec.pareto_alpha - 1.0) / spec.pareto_alpha;
        x = xm * std::pow(1.0 - u, -1.0 / spec.pareto_alpha);
      }
      break;
    }
    case SessionModel::LogNormal: {
      // Box-Muller (cosine branch only: a fixed two-uniform budget).
      const double u1 = rng.uniform_real();
      const double u2 = rng.uniform_real();
      if (spec.mean_hours > 0.0) {
        const double z = std::sqrt(-2.0 * std::log1p(-u1)) *
                         std::cos(2.0 * std::numbers::pi * u2);
        // mu chosen so the arithmetic mean hits spec.mean_hours:
        // E[X] = exp(mu + sigma^2 / 2).
        const double mu = std::log(spec.mean_hours) -
                          spec.lognormal_sigma * spec.lognormal_sigma / 2.0;
        x = std::exp(mu + spec.lognormal_sigma * z);
      }
      break;
    }
  }
  return std::clamp(x, spec.min_hours, spec.max_hours);
}

SimDuration sample_session(const SessionSpec& spec, Rng& rng) {
  const double ms =
      sample_session_hours(spec, rng) * static_cast<double>(kHour);
  constexpr double kMaxSession = 9.0e15;  // far past any sane horizon
  if (!(ms < kMaxSession)) return static_cast<SimDuration>(kMaxSession);
  return ms < 1.0 ? SimDuration{1} : static_cast<SimDuration>(ms);
}

}  // namespace onion::scenario
