// Periodic campaign telemetry. The engine emits one MetricsSnapshot per
// metrics period through a pluggable SnapshotSink; snapshots serialize
// to a canonical byte string, so a whole run has a single SHA-256
// fingerprint — the replay-determinism contract the test tier enforces
// (equal spec + equal seed => byte-identical stream).
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/bytes.hpp"
#include "common/clock.hpp"
#include "crypto/sha256.hpp"

namespace onion::scenario {

/// "Diameter not computed" marker (MetricsSpec::diameter_sweeps == 0).
constexpr std::uint64_t kNoDiameter = ~std::uint64_t{0};

/// One periodic measurement of the campaign. Structural metrics cover
/// the honest bots only — clones are the defender's instrument, not part
/// of the botnet being measured; counters are cumulative since t = 0.
struct MetricsSnapshot {
  SimTime time = 0;

  // --- structure -----------------------------------------------------
  std::uint64_t honest_alive = 0;
  std::uint64_t sybil_alive = 0;
  std::uint64_t honest_edges = 0;      // honest-honest links
  std::uint64_t components = 0;        // over honest alive bots
  std::uint64_t largest_component = 0;
  double largest_fraction = 0.0;       // largest / honest_alive (0 if none)
  double average_degree = 0.0;         // honest bots, all incident edges
  std::uint64_t diameter = kNoDiameter;  // largest honest component
  /// degree_histogram[d] = honest alive bots of degree d (empty when
  /// disabled in MetricsSpec).
  std::vector<std::uint32_t> degree_histogram;

  // --- cumulative campaign counters ---------------------------------
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t takedowns = 0;
  std::uint64_t repair_edges = 0;
  std::uint64_t prune_edges = 0;
  std::uint64_t refill_edges = 0;
  std::uint64_t repair_messages = 0;  // DdsrStats::maintenance_messages
  std::uint64_t soap_clones = 0;
  std::uint64_t soap_contained = 0;
  /// wave_takedowns[w] = cumulative victims attributed to wave `w` of
  /// the spec's WavePlan. Empty unless the campaign runs a wave plan;
  /// an empty vector serializes to nothing, so plan-free streams (and
  /// their committed golden fingerprints) are byte-identical to the
  /// pre-wave encoding.
  std::vector<std::uint64_t> wave_takedowns;

  bool connected() const { return components <= 1; }
};

/// Canonical serialization: fixed field order, big-endian 64-bit words
/// (doubles bit-cast), histogram length-prefixed. Byte-identical across
/// platforms for identical snapshots — the unit the determinism tests
/// hash.
Bytes serialize(const MetricsSnapshot& s);

/// Where snapshots go. Implementations must not mutate the campaign.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;
  virtual void on_snapshot(const MetricsSnapshot& s) = 0;
};

/// Collects every snapshot; the programmatic consumer's sink.
class MemorySink final : public SnapshotSink {
 public:
  void on_snapshot(const MetricsSnapshot& s) override {
    snapshots_.push_back(s);
  }
  const std::vector<MetricsSnapshot>& snapshots() const {
    return snapshots_;
  }

  /// Relinquishes the collected series without copying (the sink is
  /// empty afterwards); the grid runner aggregates thousands of
  /// histogram-bearing snapshots per cell this way.
  std::vector<MetricsSnapshot> take() { return std::move(snapshots_); }

 private:
  std::vector<MetricsSnapshot> snapshots_;
};

/// Chains SHA-256 over the serialized snapshot stream; the final digest
/// fingerprints the whole run in O(1) memory (the golden-determinism
/// tests compare digests, never full streams).
class HashSink final : public SnapshotSink {
 public:
  void on_snapshot(const MetricsSnapshot& s) override;
  std::size_t count() const { return count_; }
  crypto::Sha256Digest digest() const;
  std::string hex_digest() const;

 private:
  crypto::Sha256 hasher_;
  std::size_t count_ = 0;
};

/// Prints one CSV row per snapshot (histogram omitted); `header`
/// controls the leading column-name row. Does not own the stream.
class CsvSink final : public SnapshotSink {
 public:
  explicit CsvSink(std::FILE* out, bool header = true)
      : out_(out), header_(header) {}
  void on_snapshot(const MetricsSnapshot& s) override;

 private:
  std::FILE* out_;
  bool header_;
};

/// Broadcasts to several sinks (e.g. CSV to stdout + hash for replay
/// verification in one run). Does not own the sinks.
class FanoutSink final : public SnapshotSink {
 public:
  explicit FanoutSink(std::vector<SnapshotSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void on_snapshot(const MetricsSnapshot& s) override {
    for (SnapshotSink* sink : sinks_) sink->on_snapshot(s);
  }

 private:
  std::vector<SnapshotSink*> sinks_;
};

}  // namespace onion::scenario
