// The campaign event tap: where snapshot sinks see the overlay's state
// once per metrics period, a TraceSink sees every discrete thing the
// campaign *did* — joins, leaves, takedowns, bootstrap peering requests,
// SOAP captures and rounds — as it happens, in simulator order. A
// recorded CampaignTrace is the replayable record the telemetry
// synthesizer (detection/replay.hpp) turns into defender-visible
// traffic: per-bot lifetimes bound when each bot can emit flows, and
// the event stream marks when it was busy bootstrapping or under SOAP.
//
// The tap is passive. It draws nothing from the engine's RNG streams
// and mutates nothing, so attaching a TraceSink can never perturb a
// campaign: snapshot fingerprints with and without a tap are identical
// (tests/replay_test.cpp enforces this).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "graph/graph.hpp"
#include "scenario/snapshot.hpp"
#include "scenario/spec.hpp"

namespace onion::scenario {

/// What happened. The CampaignEvent fields `a` and `b` are overloaded
/// per kind (documented inline); kinds the campaign never fired simply
/// never appear in the stream.
enum class TraceEventKind : std::uint8_t {
  Join,         // a = newcomer node id
  Leave,        // a = departing node id
  Takedown,     // a = victim node id
  Peering,      // a = requester node id, b = target node id (bootstrap)
  SoapCapture,  // a = captured bot node id
  SoapRound,    // a = cumulative clones created, b = cumulative contained
  // Appended kinds (serialized values are stable; streams recorded
  // before these existed simply never contain them):
  WaveStart,        // a = wave index in the plan, b = AttackKind value
  AdaptiveRefresh,  // a = phase index, b = top-ranked victim node id
  HealPeering,      // a = requester, b = target (charged DDSR healing)
};

/// One campaign event, stamped with simulated time.
struct CampaignEvent {
  SimTime at = 0;
  TraceEventKind kind = TraceEventKind::Join;
  std::uint64_t a = 0;
  std::uint64_t b = 0;

  friend bool operator==(const CampaignEvent&,
                         const CampaignEvent&) = default;
};

/// Canonical serialization of one event (fixed field order, big-endian
/// words) — the unit the trace fingerprint hashes.
Bytes serialize(const CampaignEvent& e);

/// Receives the campaign's event stream. Implementations must not
/// mutate the campaign; on_begin arrives once, before any event.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_begin(const ScenarioSpec& spec,
                        const std::vector<graph::NodeId>& initial) = 0;
  virtual void on_event(const CampaignEvent& e) = 0;
};

/// [birth, death) in simulated time; death == the campaign horizon for
/// bots still alive at the end.
struct BotLifetime {
  graph::NodeId node = graph::kInvalidNode;
  SimTime birth = 0;
  SimTime death = 0;
};

/// A recorded campaign, abstracted from where the record lives: the
/// in-memory CampaignTrace below and the on-disk trace_io::TraceReader
/// both implement it, so consumers (detection::replay_trace, the replay
/// grid) are indifferent to whether the event log is a vector or a
/// chunk-streamed file. Event iteration is forward-only and must visit
/// the stream in recorded order; implementations may hold O(window)
/// state, never O(events).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// The spec echo delivered by on_begin (valid once began()).
  virtual const ScenarioSpec& spec() const = 0;
  /// The initial honest population, in allocation order.
  virtual const std::vector<graph::NodeId>& initial_nodes() const = 0;
  /// Whether a campaign was recorded (on_begin arrived).
  virtual bool began() const = 0;
  /// Visits every recorded event in simulator order.
  virtual void for_each_event(
      const std::function<void(const CampaignEvent&)>& fn) const = 0;

  SimTime horizon() const { return spec().horizon; }

  /// Per-bot membership intervals, derived from the event stream in one
  /// forward pass: initial nodes are born at 0, Join events at their
  /// timestamp; the first Leave/Takedown naming a node ends it,
  /// otherwise it lives to the horizon. Sorted by node id (node ids are
  /// never reused).
  std::vector<BotLifetime> lifetimes() const;
};

/// Records the whole campaign: spec echo, the initial honest
/// population, every event, and (when also wired into the engine's
/// snapshot fanout) the per-snapshot structure stream with its
/// interleaving preserved. This is the input to detection::replay_trace.
class CampaignTrace final : public TraceSink,
                           public SnapshotSink,
                           public TraceSource {
 public:
  /// Pre-TraceSource spelling of the lifetime record.
  using Lifetime = BotLifetime;

  // TraceSink.
  void on_begin(const ScenarioSpec& spec,
                const std::vector<graph::NodeId>& initial) override;
  void on_event(const CampaignEvent& e) override;

  // SnapshotSink: records the snapshot plus how many events preceded it,
  // so differential tests can replay the exact interleaving.
  void on_snapshot(const MetricsSnapshot& s) override;

  // TraceSource.
  const ScenarioSpec& spec() const override { return spec_; }
  bool began() const override { return began_; }
  const std::vector<graph::NodeId>& initial_nodes() const override {
    return initial_;
  }
  void for_each_event(const std::function<void(const CampaignEvent&)>& fn)
      const override {
    for (const CampaignEvent& e : events_) fn(e);
  }

  const std::vector<CampaignEvent>& events() const { return events_; }
  const std::vector<MetricsSnapshot>& snapshots() const {
    return snapshots_;
  }
  /// Events recorded before snapshot `i` arrived.
  std::size_t events_before(std::size_t i) const {
    return events_before_.at(i);
  }

  /// Chained SHA-256 over the serialized event stream (hex) — the
  /// event-log analogue of HashSink's snapshot fingerprint.
  std::string fingerprint() const;

 private:
  ScenarioSpec spec_;
  bool began_ = false;
  std::vector<graph::NodeId> initial_;
  std::vector<CampaignEvent> events_;
  std::vector<MetricsSnapshot> snapshots_;
  std::vector<std::size_t> events_before_;
};

}  // namespace onion::scenario
