// Canonical byte serialization of grid results for the multi-process
// transport: a CellResult (or merged GridReport) travels between worker
// and coordinator as one self-validating frame
//
//   magic u64 | version u64 | payload_len u64 | payload | SHA-256(payload)
//
// over the repo-wide canonical conventions (common/bytes put_u64 /
// put_f64 / put_string: big-endian words, doubles bit-cast, strings
// length-prefixed). Decoding verifies magic, version, exact length, and
// the trailing integrity digest, so a truncated, torn, or bit-flipped
// result file is *detected* — decode throws WireError — never merged.
// tests/wire_test.cpp proves every byte-boundary truncation and every
// single-byte flip of a frame is rejected.
//
// ## Informational fields — the one-place contract
//
// These fields are serialized (reports survive the trip intact) but are
// excluded from every fingerprint, because they describe *how* a run
// executed, not *what* it computed:
//
//   CellResult::wall_seconds
//   GridReport::wall_seconds
//   GridReport::threads_used
//   GridReport::retries
//   GridReport::resumed_cells
//   detection::ReplayGridCell::wall_seconds
//   detection::ReplayGridReport::wall_seconds
//   detection::ReplayGridReport::threads_used
//   detection::ReplayGridReport::retries
//   detection::ReplayGridReport::resumed_cells
//
// A cell fingerprint hashes only the snapshot stream, and the combined
// fingerprint hashes only the sorted completed-cell fingerprints
// (combine_cell_fingerprints in scenario/runner.cpp, which
// static_asserts on kInformationalFieldsEnterFingerprints below) — so
// timing jitter, retry history, and worker topology can never move a
// golden. Growing this list is a wire change like any other: the D5
// manifest (tools/detlint/serialized_fields.txt) guards the field sets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "detection/replay_grid.hpp"
#include "scenario/runner.hpp"
#include "scenario/snapshot.hpp"

namespace onion::scenario::wire {

/// Compile-time face of the contract above: fingerprint paths
/// static_assert on this so the exclusion is checked where it is relied
/// upon, not just documented here.
inline constexpr bool kInformationalFieldsEnterFingerprints = false;

/// Frame type tags ("OBCELL\x00\x01" / "OBGRID\x00\x01" big-endian):
/// a grid-report frame can never decode as a cell result or vice versa.
inline constexpr std::uint64_t kCellResultMagic = 0x4f4243454c4c0001ull;
inline constexpr std::uint64_t kGridReportMagic = 0x4f42475249440001ull;
/// Replay-grid frames ("OBRCEL\x00\x01" / "OBRGRD\x00\x01"): the
/// multi-process replay transport (detection/replay_proc.hpp) ships one
/// ReplayGridCell frame per (campaign, seed) cell and persists the
/// merged ReplayGridReport — distinct magics keep a replay frame from
/// ever decoding as a campaign frame.
inline constexpr std::uint64_t kReplayCellMagic = 0x4f425243454c0001ull;
inline constexpr std::uint64_t kReplayReportMagic = 0x4f42524752440001ull;

/// The wire schema version; decoders reject anything else so a frame
/// from a future layout fails loudly instead of misparsing.
inline constexpr std::uint64_t kWireVersion = 1;

/// Frame overhead: 3 u64 header words + the trailing SHA-256 digest.
inline constexpr std::size_t kFrameHeaderBytes = 24;
inline constexpr std::size_t kFrameDigestBytes = 32;

/// Thrown on any malformed frame: truncation at any byte, bad magic,
/// unknown version, length mismatch, or integrity-digest mismatch. The
/// message names the failing check.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// --- payload codecs (version-1 field order, no framing) --------------

Bytes serialize(const CellResult& cell);
CellResult deserialize_cell_result(BytesView payload);

Bytes serialize(const GridReport& report);
GridReport deserialize_grid_report(BytesView payload);

Bytes serialize(const detection::ReplayGridCell& cell);
detection::ReplayGridCell deserialize_replay_cell(BytesView payload);

Bytes serialize(const detection::ReplayGridReport& report);
detection::ReplayGridReport deserialize_replay_report(BytesView payload);

/// Inverse of scenario::serialize(MetricsSnapshot): consumes the exact
/// canonical encoding, including the conditional trailing
/// wave_takedowns block (present iff bytes remain). Round-trips every
/// snapshot bit-for-bit.
MetricsSnapshot deserialize_snapshot(BytesView encoded);

/// Inverse of detection::serialize(ReplayGridPoint): round-trips every
/// point bit-for-bit (doubles bit-cast), so a fingerprint recomputed
/// from decoded frames equals one computed from the original points.
detection::ReplayGridPoint deserialize_replay_point(BytesView encoded);

// --- framing ---------------------------------------------------------

/// Wraps `payload` in the length-prefixed, digest-trailed frame.
Bytes frame(std::uint64_t magic, BytesView payload);

/// Validates and strips the frame; throws WireError on any defect.
Bytes unframe(std::uint64_t magic, BytesView framed);

/// frame(kCellResultMagic, serialize(cell)) and its inverse.
Bytes encode_cell_result(const CellResult& cell);
CellResult decode_cell_result(BytesView framed);

/// frame(kGridReportMagic, serialize(report)) and its inverse.
Bytes encode_grid_report(const GridReport& report);
GridReport decode_grid_report(BytesView framed);

/// frame(kReplayCellMagic, serialize(cell)) and its inverse.
Bytes encode_replay_cell(const detection::ReplayGridCell& cell);
detection::ReplayGridCell decode_replay_cell(BytesView framed);

/// frame(kReplayReportMagic, serialize(report)) and its inverse.
Bytes encode_replay_report(const detection::ReplayGridReport& report);
detection::ReplayGridReport decode_replay_report(BytesView framed);

}  // namespace onion::scenario::wire
