// Multi-campaign sharding: a CampaignGrid fans a vector of ScenarioSpec
// cells (seed sweeps, policy ablations, size ladders) across a
// std::thread pool — one CampaignEngine per cell, nothing shared but an
// atomic work index — and aggregates the per-cell HashSink fingerprints
// and MemorySink series into a single GridReport. Results land at the
// cell's grid index regardless of which thread ran it when, and the
// combined fingerprint hashes the *sorted* per-cell digests, so the
// report is deterministic across thread counts and invariant to cell
// order (tests/runner_test.cpp enforces both).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/engine.hpp"
#include "scenario/snapshot.hpp"
#include "scenario/spec.hpp"

namespace onion::scenario {

/// One campaign to run: a label for reports plus the full spec.
struct GridCell {
  std::string label;
  ScenarioSpec spec;
};

/// Outcome of one cell. wall_seconds is informational only — it never
/// enters a fingerprint.
struct CellResult {
  std::string label;
  std::uint64_t seed = 0;
  std::string fingerprint;  // hex SHA-256 of the cell's snapshot stream
  std::vector<MetricsSnapshot> series;  // the cell's MemorySink capture
  CampaignCounters counters;
  std::size_t events_executed = 0;
  double wall_seconds = 0.0;
};

/// Aggregated outcome of a grid run.
struct GridReport {
  std::vector<CellResult> cells;  // grid order, not completion order
  /// SHA-256 over the lexicographically sorted per-cell fingerprints:
  /// equal for any thread count and any cell ordering of the same set
  /// of campaigns.
  std::string combined_fingerprint;
  std::size_t threads_used = 0;
  double wall_seconds = 0.0;
};

/// A batch of independent campaigns and the shard-and-aggregate runner.
class CampaignGrid {
 public:
  CampaignGrid() = default;

  void add(std::string label, const ScenarioSpec& spec) {
    cells_.push_back({std::move(label), spec});
  }

  /// `count` copies of `base` with seeds first_seed, first_seed+1, ... —
  /// the bread-and-butter variance sweep.
  static CampaignGrid seed_sweep(const ScenarioSpec& base,
                                 std::uint64_t first_seed,
                                 std::size_t count);

  std::size_t size() const { return cells_.size(); }
  const std::vector<GridCell>& cells() const { return cells_; }

  /// Runs every cell; `threads` == 0 uses the hardware concurrency. One
  /// engine per cell, each on whichever pool thread pops its index; an
  /// exception in any cell is rethrown after the pool drains.
  GridReport run(std::size_t threads = 0) const;

 private:
  std::vector<GridCell> cells_;
};

}  // namespace onion::scenario
