// Multi-campaign sharding: a CampaignGrid fans a vector of ScenarioSpec
// cells (seed sweeps, policy ablations, size ladders) across a
// std::thread pool — one CampaignEngine per cell, nothing shared but an
// atomic work index — and aggregates the per-cell HashSink fingerprints
// and MemorySink series into a single GridReport. Results land at the
// cell's grid index regardless of which thread ran it when, and the
// combined fingerprint hashes the *sorted* per-cell digests, so the
// report is deterministic across thread counts and invariant to cell
// order (tests/runner_test.cpp enforces both).
//
// Past one process, GridCoordinator runs the same grid across forked
// worker processes with a results-directory file transport
// (scenario/wire.hpp frames): per-cell wall-clock timeouts, bounded
// exponential-backoff retries, quarantine of permanently failing cells
// into GridReport::failed_cells, and checkpoint/resume over already-
// valid frames. The combined fingerprint covers exactly the completed
// cells, so it is invariant to worker count, partition shape, and retry
// history — a crash-retried 4-worker run merges to the same digest as a
// single-process run (tests/gridproc_test.cpp injects every failure
// mode deterministically via FaultPlan and proves it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "scenario/engine.hpp"
#include "scenario/snapshot.hpp"
#include "scenario/spec.hpp"

namespace onion::scenario {

/// One campaign to run: a label for reports plus the full spec.
struct GridCell {
  std::string label;
  ScenarioSpec spec;
};

/// Outcome of one cell. An empty `fingerprint` marks a cell that never
/// completed (quarantined / captured error) — a completed cell always
/// carries the 64-hex-char digest, even for a zero-snapshot stream.
/// wall_seconds is informational only (see scenario/wire.hpp for the
/// one-place contract).
struct CellResult {
  std::string label;
  std::uint64_t seed = 0;
  std::string fingerprint;  // hex SHA-256 of the cell's snapshot stream
  std::vector<MetricsSnapshot> series;  // the cell's MemorySink capture
  CampaignCounters counters;
  std::uint64_t events_executed = 0;
  double wall_seconds = 0.0;
};

/// A cell that exhausted its attempts (process mode) or threw under
/// ErrorMode::kCapture (in-process mode). `attempts` counts executions
/// that were tried; `error` is the last failure's description.
struct FailedCell {
  std::uint64_t cell_index = 0;
  std::string label;
  std::uint64_t seed = 0;
  std::uint64_t attempts = 0;
  std::string error;
};

/// Aggregated outcome of a grid run.
struct GridReport {
  std::vector<CellResult> cells;  // grid order, not completion order
  /// Cells that never produced a valid result, in cell-index order. The
  /// grid degrades gracefully: `cells` keeps its full size (failed slots
  /// carry label/seed but an empty fingerprint) and the combined
  /// fingerprint covers exactly the completed cells.
  std::vector<FailedCell> failed_cells;
  /// SHA-256 over the lexicographically sorted fingerprints of the
  /// *completed* cells: equal for any thread/worker count, any cell
  /// ordering, any partition shape, and any retry history of the same
  /// set of completed campaigns.
  std::string combined_fingerprint;
  std::uint64_t threads_used = 0;   // workers configured, in process mode
  double wall_seconds = 0.0;
  /// Process-mode bookkeeping (0 for in-process runs); informational
  /// only, like wall_seconds.
  std::uint64_t retries = 0;        // cell re-executions scheduled
  std::uint64_t resumed_cells = 0;  // valid frames skipped on resume
};

/// The combined fingerprint over the completed cells of `cells` (empty
/// fingerprints — failed slots — are skipped). Exposed so merge tools
/// and tests can recompute the invariant from any partition.
std::string combine_cell_fingerprints(const std::vector<CellResult>& cells);

/// What CampaignGrid::run does when a cell throws.
enum class ErrorMode {
  kPropagate,  // rethrow after the pool drains (the historical contract)
  kCapture,    // record into failed_cells, complete the remaining cells
};

/// A batch of independent campaigns and the shard-and-aggregate runner.
class CampaignGrid {
 public:
  CampaignGrid() = default;

  void add(std::string label, const ScenarioSpec& spec) {
    cells_.push_back({std::move(label), spec});
  }

  /// `count` copies of `base` with seeds first_seed, first_seed+1, ... —
  /// the bread-and-butter variance sweep.
  static CampaignGrid seed_sweep(const ScenarioSpec& base,
                                 std::uint64_t first_seed,
                                 std::size_t count);

  std::size_t size() const { return cells_.size(); }
  const std::vector<GridCell>& cells() const { return cells_; }

  /// Runs every cell; `threads` == 0 uses the hardware concurrency. One
  /// engine per cell, each on whichever pool thread pops its index.
  /// Under kPropagate an exception in any cell is rethrown after the
  /// pool drains; under kCapture the failing cell lands in
  /// failed_cells (mirroring the process-level degradation semantics)
  /// and every other cell still completes.
  GridReport run(std::size_t threads = 0,
                 ErrorMode errors = ErrorMode::kPropagate) const;

 private:
  std::vector<GridCell> cells_;
};

// --------------------------------------------------------------------
// Multi-process grids: deterministic fault injection, the worker entry
// point, and the crash-tolerant coordinator.
// --------------------------------------------------------------------

/// One scripted failure: at execution `attempt` (0-based) of grid cell
/// `cell_index`, the worker misbehaves in `kind`'s way. Because the
/// trigger is (cell, attempt) — not wall clock or pid — every failure
/// path is exercised by deterministic tier-1 tests rather than luck.
struct FaultSpec {
  enum class Kind {
    kCrash,    // _exit before writing the frame
    kHang,     // block past any timeout until killed
    kCorrupt,  // write a frame with a flipped payload bit
  };
  Kind kind = Kind::kCrash;
  std::uint64_t cell_index = 0;
  std::uint64_t attempt = 0;
};

/// A seeded plan of scripted faults, threaded through workers either
/// in-memory (forked children) or as a flag / the ONION_GRID_FAULTS
/// env var (tools/gridworker). Text form, round-tripped by
/// parse/to_string: `crash@2:0;hang@5:1;corrupt@7:0` — kind@cell:attempt.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the text form; throws std::invalid_argument with the
  /// offending token on malformed input. Empty text => empty plan.
  static FaultPlan parse(std::string_view text);
  std::string to_string() const;

  void add(FaultSpec fault) { faults_.push_back(fault); }
  bool empty() const { return faults_.empty(); }

  /// The scripted fault for this (cell, attempt) execution, or nullptr.
  const FaultSpec* match(std::uint64_t cell_index,
                         std::uint64_t attempt) const;

 private:
  std::vector<FaultSpec> faults_;
};

/// One unit of worker work: run grid cell `cell_index`; `attempt` is the
/// coordinator's retry counter for that cell (0 first), consumed only by
/// FaultPlan matching — results are attempt-invariant by construction.
struct CellAssignment {
  std::uint64_t cell_index = 0;
  std::uint64_t attempt = 0;
};

/// The filename a cell's result frame lands under in a results
/// directory ("cell_000042.frame").
std::string cell_frame_filename(std::uint64_t cell_index);

/// The process-transport face of a grid: anything that can execute one
/// cell into an encoded result frame and validate + retain a decoded
/// frame fans out across forked worker processes. CampaignGrid binds
/// through run_worker_cells / GridCoordinator and detection::ReplayGrid
/// through detection/replay_proc.hpp, so the fork / timeout / retry /
/// quarantine / resume machinery exists exactly once
/// (ProcessCellCoordinator) instead of per cell kind.
class CellJob {
 public:
  virtual ~CellJob() = default;

  /// Number of cells in the grid.
  virtual std::size_t size() const = 0;
  /// The result-frame filename for one cell inside a results directory.
  virtual std::string frame_filename(std::uint64_t cell_index) const = 0;
  /// Cell identity for quarantine reports.
  virtual std::string cell_label(std::uint64_t cell_index) const = 0;
  virtual std::uint64_t cell_seed(std::uint64_t cell_index) const = 0;
  /// Executes the cell and returns its complete encoded wire frame.
  /// Worker side: runs in forked children, so it must not mutate state
  /// the parent reads.
  virtual Bytes run_cell(std::uint64_t cell_index) const = 0;
  /// Decodes + identity-checks a candidate frame, retaining the result
  /// for the job's own report on success. On failure returns false with
  /// `error` naming the defect; decode failures may also surface as
  /// exceptions (the coordinator treats a throw as rejection).
  virtual bool accept_frame(std::uint64_t cell_index, BytesView framed,
                            std::string& error) = 0;
};

/// The generic worker loop: runs each assigned cell of `job` in order
/// and atomically writes its wire frame (temp + rename) into
/// `results_dir`. Shared by forked coordinator children and the
/// tools/gridworker binary, so both transports execute the identical
/// code path. Scripted faults fire when (cell, attempt) matches
/// `faults`: kCrash calls _exit, kHang blocks until killed, kCorrupt
/// writes a frame whose digest cannot verify. Throws on real I/O
/// errors.
void run_job_worker_cells(const CellJob& job,
                          const std::vector<CellAssignment>& assignments,
                          const std::string& results_dir,
                          const FaultPlan& faults = {});

/// CampaignGrid convenience over run_job_worker_cells.
void run_worker_cells(const CampaignGrid& grid,
                      const std::vector<CellAssignment>& assignments,
                      const std::string& results_dir,
                      const FaultPlan& faults = {});

/// Knobs for the crash-tolerant process coordinator. Defaults are tuned
/// for real grids; tests shrink the timeouts to keep failure paths fast.
struct GridCoordinatorConfig {
  std::string results_dir;     // created if missing; also the checkpoint
  std::size_t workers = 4;     // forked processes per round (>= 1)
  /// Executions allowed per cell before quarantine (>= 1).
  std::uint64_t max_attempts = 3;
  /// Per-cell wall-clock timeout: a worker that goes this long without
  /// landing its next frame is SIGKILLed and the unfinished cells retry.
  double cell_timeout_seconds = 120.0;
  /// Bounded exponential backoff between retry rounds:
  /// min(base * 2^round, max) seconds.
  double backoff_base_seconds = 0.05;
  double backoff_max_seconds = 2.0;
  double poll_interval_seconds = 0.01;  // results-dir progress polling
  /// Deterministic fault injection, inherited by forked workers.
  FaultPlan faults;
};

/// Validates the shared coordinator knobs (results_dir non-empty,
/// workers / max_attempts >= 1, positive timeout and poll interval);
/// throws ContractViolation on a bad config. Every coordinator front
/// end calls this at construction so misconfiguration fails before any
/// fork.
void validate_coordinator_config(const GridCoordinatorConfig& config);

/// Process-level bookkeeping of one coordinated run, cell-kind
/// agnostic; the job's own report carries the decoded results.
struct ProcessOutcome {
  std::vector<FailedCell> failed_cells;  // cell-index order
  std::uint64_t retries = 0;             // cell re-executions scheduled
  std::uint64_t resumed_cells = 0;       // valid frames skipped on resume
  std::uint64_t workers = 0;             // workers configured
  double wall_seconds = 0.0;
};

/// The generic crash-tolerant coordinator: fans any CellJob across
/// forked worker processes over the results-directory file transport.
/// Each round partitions the outstanding cells round-robin across up to
/// `workers` children running run_job_worker_cells; a worker stuck past
/// cell_timeout_seconds without landing its next frame is killed and
/// its unfinished cells rejoin the queue; failed / timed-out / corrupt
/// cells retry with bounded exponential backoff up to max_attempts
/// executions, then quarantine into the outcome's failed_cells; an
/// existing results directory is a checkpoint — frames the job accepts
/// are resumed, not re-run, and invalid leftovers are removed first.
class ProcessCellCoordinator {
 public:
  ProcessCellCoordinator(CellJob& job, GridCoordinatorConfig config);

  /// Runs (or resumes) every cell to completion or quarantine,
  /// delivering accepted results into the job via accept_frame.
  ProcessOutcome run();

 private:
  CellJob& job_;
  GridCoordinatorConfig config_;
};

/// Fans a CampaignGrid across forked worker processes and merges the
/// results-directory frames into one GridReport, surviving worker
/// crashes, hangs, and corrupt output:
///
///   - each round partitions the outstanding cells round-robin across
///     up to `workers` forked children running run_worker_cells;
///   - a worker stuck past cell_timeout_seconds is killed, its
///     unfinished cells rejoin the queue;
///   - failed / timed-out / corrupt cells retry with bounded
///     exponential backoff up to max_attempts executions, then are
///     quarantined into GridReport::failed_cells (graceful degradation:
///     completed cells still merge and golden-gate);
///   - an existing results directory is a checkpoint: frames that
///     decode cleanly and match the grid's (label, seed) are resumed,
///     not re-run — corrupt or stale frames are re-run and overwritten.
///
/// The merged combined fingerprint covers exactly the completed cells,
/// so it is provably invariant to worker count, partition shape, and
/// retry history.
class GridCoordinator {
 public:
  GridCoordinator(const CampaignGrid& grid, GridCoordinatorConfig config);

  /// Runs (or resumes) the grid to completion or quarantine.
  GridReport run();

 private:
  const CampaignGrid& grid_;
  GridCoordinatorConfig config_;
};

}  // namespace onion::scenario
