#include "scenario/runner.hpp"

#include <algorithm>
#include <chrono>

#include "common/bytes.hpp"
#include "common/parallel.hpp"
#include "crypto/sha256.hpp"

namespace onion::scenario {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void run_cell(const GridCell& cell, CellResult& out) {
  out.label = cell.label;
  out.seed = cell.spec.seed;
  const auto start = std::chrono::steady_clock::now();
  MemorySink memory;
  HashSink hash;
  FanoutSink fanout({&memory, &hash});
  CampaignEngine engine(cell.spec, fanout);
  engine.run();
  out.wall_seconds = seconds_since(start);
  out.fingerprint = hash.hex_digest();
  out.series = memory.take();
  out.counters = engine.counters();
  out.events_executed = engine.events_executed();
}

std::string combine_fingerprints(const std::vector<CellResult>& cells) {
  std::vector<std::string> digests;
  digests.reserve(cells.size());
  for (const CellResult& cell : cells) digests.push_back(cell.fingerprint);
  // Sorting makes the aggregate a fingerprint of the *set* of campaigns:
  // reordering cells or rebalancing threads cannot change it.
  std::sort(digests.begin(), digests.end());
  crypto::Sha256 hasher;
  for (const std::string& d : digests) hasher.update(to_bytes(d));
  const crypto::Sha256Digest digest = hasher.finalize();
  return to_hex(BytesView(digest.data(), digest.size()));
}

}  // namespace

CampaignGrid CampaignGrid::seed_sweep(const ScenarioSpec& base,
                                      std::uint64_t first_seed,
                                      std::size_t count) {
  CampaignGrid grid;
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioSpec spec = base;
    spec.seed = first_seed + i;
    grid.add("seed=" + std::to_string(spec.seed), spec);
  }
  return grid;
}

GridReport CampaignGrid::run(std::size_t threads) const {
  GridReport report;
  report.cells.resize(cells_.size());
  if (cells_.empty()) {
    report.combined_fingerprint = combine_fingerprints(report.cells);
    return report;
  }

  const auto start = std::chrono::steady_clock::now();
  // Results land at the cell's grid index, so the sharding (and the
  // single-thread inline fast path inside parallel_for_index) cannot
  // leak into the report — the determinism tests compare thread counts.
  report.threads_used = parallel_for_index(
      cells_.size(), threads,
      [&](std::size_t i) { run_cell(cells_[i], report.cells[i]); });

  report.wall_seconds = seconds_since(start);
  report.combined_fingerprint = combine_fingerprints(report.cells);
  return report;
}

}  // namespace onion::scenario
