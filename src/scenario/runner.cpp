#include "scenario/runner.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "common/fileio.hpp"
#include "common/parallel.hpp"
#include "crypto/sha256.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario {

namespace fs = std::filesystem;

namespace {

// Distinct worker exit codes, visible in quarantine error messages.
constexpr int kWorkerCrashExit = 86;   // scripted kCrash fault
constexpr int kWorkerErrorExit = 97;   // exception escaped the cell loop

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void sleep_seconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

void execute_cell(const GridCell& cell, CellResult& out) {
  out.label = cell.label;
  out.seed = cell.spec.seed;
  const auto start = std::chrono::steady_clock::now();
  MemorySink memory;
  HashSink hash;
  FanoutSink fanout({&memory, &hash});
  CampaignEngine engine(cell.spec, fanout);
  engine.run();
  out.wall_seconds = seconds_since(start);
  out.fingerprint = hash.hex_digest();
  out.series = memory.take();
  out.counters = engine.counters();
  out.events_executed = engine.events_executed();
}

/// Binds a CampaignGrid to the generic process machinery: frames are
/// encoded CellResults, identity is (label, seed), accepted results
/// collect into a grid-order vector the coordinator turns into a
/// GridReport.
class CampaignCellJob final : public CellJob {
 public:
  explicit CampaignCellJob(const CampaignGrid& grid)
      : grid_(grid), results_(grid.size()) {}

  std::size_t size() const override { return grid_.size(); }
  std::string frame_filename(std::uint64_t cell_index) const override {
    return cell_frame_filename(cell_index);
  }
  std::string cell_label(std::uint64_t cell_index) const override {
    return grid_.cells()[cell_index].label;
  }
  std::uint64_t cell_seed(std::uint64_t cell_index) const override {
    return grid_.cells()[cell_index].spec.seed;
  }
  Bytes run_cell(std::uint64_t cell_index) const override {
    CellResult result;
    execute_cell(grid_.cells()[cell_index], result);
    return wire::encode_cell_result(result);
  }
  bool accept_frame(std::uint64_t cell_index, BytesView framed,
                    std::string& error) override {
    CellResult loaded = wire::decode_cell_result(framed);
    const GridCell& expected = grid_.cells()[cell_index];
    if (loaded.label != expected.label ||
        loaded.seed != expected.spec.seed) {
      error = "frame identity mismatch: holds (" + loaded.label +
              ", seed " + std::to_string(loaded.seed) + "), expected (" +
              expected.label + ", seed " +
              std::to_string(expected.spec.seed) + ")";
      return false;
    }
    results_[cell_index] = std::move(loaded);
    return true;
  }

  std::vector<CellResult> take_results() { return std::move(results_); }

 private:
  const CampaignGrid& grid_;
  std::vector<CellResult> results_;
};

std::uint64_t parse_u64(std::string_view token, std::string_view context) {
  std::uint64_t value = 0;
  const auto [ptr, err] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (err != std::errc{} || ptr != token.data() + token.size())
    throw std::invalid_argument("FaultPlan: bad number '" +
                                std::string(token) + "' in '" +
                                std::string(context) + "'");
  return value;
}

}  // namespace

std::string combine_cell_fingerprints(const std::vector<CellResult>& cells) {
  // The static face of the informational-fields contract (see
  // scenario/wire.hpp): this path consumes only the per-cell snapshot-
  // stream digests, so wall clocks, retry history, and worker topology
  // cannot reach a fingerprint.
  static_assert(!wire::kInformationalFieldsEnterFingerprints,
                "fingerprints must never cover informational fields; the "
                "contract lives in scenario/wire.hpp");
  std::vector<std::string> digests;
  digests.reserve(cells.size());
  for (const CellResult& cell : cells)
    if (!cell.fingerprint.empty()) digests.push_back(cell.fingerprint);
  // Sorting makes the aggregate a fingerprint of the *set* of completed
  // campaigns: reordering cells, rebalancing threads, or repartitioning
  // workers cannot change it.
  std::sort(digests.begin(), digests.end());
  crypto::Sha256 hasher;
  for (const std::string& d : digests) hasher.update(to_bytes(d));
  const crypto::Sha256Digest digest = hasher.finalize();
  return to_hex(BytesView(digest.data(), digest.size()));
}

CampaignGrid CampaignGrid::seed_sweep(const ScenarioSpec& base,
                                      std::uint64_t first_seed,
                                      std::size_t count) {
  CampaignGrid grid;
  for (std::size_t i = 0; i < count; ++i) {
    ScenarioSpec spec = base;
    spec.seed = first_seed + i;
    grid.add("seed=" + std::to_string(spec.seed), spec);
  }
  return grid;
}

GridReport CampaignGrid::run(std::size_t threads, ErrorMode errors) const {
  GridReport report;
  report.cells.resize(cells_.size());
  if (cells_.empty()) {
    report.combined_fingerprint = combine_cell_fingerprints(report.cells);
    return report;
  }

  const auto start = std::chrono::steady_clock::now();
  // Results land at the cell's grid index, so the sharding (and the
  // single-thread inline fast path inside parallel_for_index) cannot
  // leak into the report — the determinism tests compare thread counts.
  std::vector<std::string> cell_errors(cells_.size());
  report.threads_used = parallel_for_index(
      cells_.size(), threads, [&](std::size_t i) {
        if (errors == ErrorMode::kPropagate) {
          execute_cell(cells_[i], report.cells[i]);
          return;
        }
        try {
          execute_cell(cells_[i], report.cells[i]);
        } catch (const std::exception& e) {
          report.cells[i] = CellResult{};  // drop any partial fill
          report.cells[i].label = cells_[i].label;
          report.cells[i].seed = cells_[i].spec.seed;
          cell_errors[i] = e.what();
        }
      });

  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cell_errors[i].empty()) continue;
    report.failed_cells.push_back({i, cells_[i].label, cells_[i].spec.seed,
                                   /*attempts=*/1, cell_errors[i]});
  }
  report.wall_seconds = seconds_since(start);
  report.combined_fingerprint = combine_cell_fingerprints(report.cells);
  return report;
}

// --------------------------------------------------------------------
// Deterministic fault injection
// --------------------------------------------------------------------

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t end = std::min(text.find(';', pos), text.size());
    const std::string_view token = text.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const std::size_t at = token.find('@');
    const std::size_t colon = token.find(':', at == std::string_view::npos
                                                    ? 0
                                                    : at + 1);
    if (at == std::string_view::npos || colon == std::string_view::npos)
      throw std::invalid_argument("FaultPlan: bad token '" +
                                  std::string(token) +
                                  "' (want kind@cell:attempt)");
    const std::string_view kind = token.substr(0, at);
    FaultSpec fault;
    if (kind == "crash") {
      fault.kind = FaultSpec::Kind::kCrash;
    } else if (kind == "hang") {
      fault.kind = FaultSpec::Kind::kHang;
    } else if (kind == "corrupt") {
      fault.kind = FaultSpec::Kind::kCorrupt;
    } else {
      throw std::invalid_argument("FaultPlan: unknown kind '" +
                                  std::string(kind) +
                                  "' (crash, hang, or corrupt)");
    }
    fault.cell_index = parse_u64(token.substr(at + 1, colon - at - 1), token);
    fault.attempt = parse_u64(token.substr(colon + 1), token);
    plan.add(fault);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultSpec& f : faults_) {
    if (!out.empty()) out += ';';
    switch (f.kind) {
      case FaultSpec::Kind::kCrash: out += "crash"; break;
      case FaultSpec::Kind::kHang: out += "hang"; break;
      case FaultSpec::Kind::kCorrupt: out += "corrupt"; break;
    }
    out += '@' + std::to_string(f.cell_index) + ':' +
           std::to_string(f.attempt);
  }
  return out;
}

const FaultSpec* FaultPlan::match(std::uint64_t cell_index,
                                  std::uint64_t attempt) const {
  for (const FaultSpec& f : faults_)
    if (f.cell_index == cell_index && f.attempt == attempt) return &f;
  return nullptr;
}

// --------------------------------------------------------------------
// Worker side
// --------------------------------------------------------------------

std::string cell_frame_filename(std::uint64_t cell_index) {
  char name[32];
  std::snprintf(name, sizeof name, "cell_%06llu.frame",
                static_cast<unsigned long long>(cell_index));
  return name;
}

void run_job_worker_cells(const CellJob& job,
                          const std::vector<CellAssignment>& assignments,
                          const std::string& results_dir,
                          const FaultPlan& faults) {
  ONION_EXPECTS(!results_dir.empty());
  fs::create_directories(results_dir);
  for (const CellAssignment& a : assignments) {
    ONION_EXPECTS_MSG(a.cell_index < job.size(),
                      "cell " << a.cell_index << " of a " << job.size()
                              << "-cell job");
    const FaultSpec* fault = faults.match(a.cell_index, a.attempt);
    if (fault != nullptr && fault->kind == FaultSpec::Kind::kCrash) {
      // Scripted crash: die before the frame exists. _Exit skips every
      // destructor and atexit hook — the closest safe stand-in for a
      // real SIGSEGV from the transport's point of view.
      std::_Exit(kWorkerCrashExit);
    }
    if (fault != nullptr && fault->kind == FaultSpec::Kind::kHang) {
      // Scripted hang: block until the coordinator's timeout kills us.
      // Bounded so an orphaned worker cannot outlive a dead test run.
      for (int i = 0; i < 6000; ++i) sleep_seconds(0.01);
      std::_Exit(kWorkerErrorExit);
    }
    Bytes framed = job.run_cell(a.cell_index);
    if (fault != nullptr && fault->kind == FaultSpec::Kind::kCorrupt) {
      // Scripted corruption: flip one payload bit and publish the frame
      // under the final name — exactly the torn/bit-rotted file the
      // integrity digest exists to catch.
      framed[wire::kFrameHeaderBytes +
             (framed.size() - wire::kFrameHeaderBytes -
              wire::kFrameDigestBytes) /
                 2] ^= 0x01;
    }
    write_file_atomic(results_dir + "/" + job.frame_filename(a.cell_index),
                      framed);
  }
}

void run_worker_cells(const CampaignGrid& grid,
                      const std::vector<CellAssignment>& assignments,
                      const std::string& results_dir,
                      const FaultPlan& faults) {
  CampaignCellJob job(grid);
  run_job_worker_cells(job, assignments, results_dir, faults);
}

// --------------------------------------------------------------------
// Coordinator side
// --------------------------------------------------------------------

namespace {

struct WorkerProc {
  pid_t pid = -1;
  std::vector<CellAssignment> cells;  // executed in this order
  std::size_t next_unseen = 0;        // first cell without a visible frame
  std::chrono::steady_clock::time_point last_progress;
  bool running = true;
  bool killed = false;
  int wait_status = 0;
};

std::string describe_exit(const WorkerProc& w, double timeout_seconds) {
  if (w.killed)
    return "worker killed after " + std::to_string(timeout_seconds) +
           "s without landing a frame";
  if (WIFEXITED(w.wait_status)) {
    const int code = WEXITSTATUS(w.wait_status);
    if (code == 0) return "worker exited cleanly";
    return "worker exited with status " + std::to_string(code);
  }
  if (WIFSIGNALED(w.wait_status))
    return "worker died on signal " + std::to_string(WTERMSIG(w.wait_status));
  return "worker ended abnormally";
}

/// Reads and accepts one cell frame. On failure, `error` says why
/// (missing file, wire defect, or the job's identity rejection).
bool try_accept_frame(CellJob& job, const std::string& path,
                      std::uint64_t cell_index, std::string& error) {
  std::error_code ec;
  if (!fs::exists(path, ec)) {
    error = "no result frame";
    return false;
  }
  try {
    return job.accept_frame(cell_index, read_file_bytes(path), error);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
}

}  // namespace

void validate_coordinator_config(const GridCoordinatorConfig& config) {
  ONION_EXPECTS(!config.results_dir.empty());
  ONION_EXPECTS(config.workers >= 1);
  ONION_EXPECTS(config.max_attempts >= 1);
  ONION_EXPECTS(config.cell_timeout_seconds > 0.0);
  ONION_EXPECTS(config.poll_interval_seconds > 0.0);
}

ProcessCellCoordinator::ProcessCellCoordinator(CellJob& job,
                                               GridCoordinatorConfig config)
    : job_(job), config_(std::move(config)) {
  validate_coordinator_config(config_);
}

ProcessOutcome ProcessCellCoordinator::run() {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n = job_.size();
  fs::create_directories(config_.results_dir);

  ProcessOutcome outcome;
  outcome.workers = config_.workers;

  std::vector<std::uint64_t> attempts(n, 0);
  std::vector<std::size_t> pending;

  const auto frame_path = [&](std::uint64_t cell_index) {
    return config_.results_dir + "/" + job_.frame_filename(cell_index);
  };

  // Checkpoint/resume: frames that decode cleanly and pass the job's
  // identity check are final results; anything else (missing, truncated,
  // corrupt, stale identity) is removed and re-run.
  for (std::size_t i = 0; i < n; ++i) {
    const std::string path = frame_path(i);
    std::string error;
    if (try_accept_frame(job_, path, i, error)) {
      ++outcome.resumed_cells;
    } else {
      std::error_code ec;
      fs::remove(path, ec);  // invalid leftovers must not mask progress
      pending.push_back(i);
    }
  }

  std::size_t round = 0;
  while (!pending.empty()) {
    // Partition the outstanding cells round-robin across the workers.
    const std::size_t spawn = std::min(config_.workers, pending.size());
    std::vector<WorkerProc> workers(spawn);
    for (std::size_t k = 0; k < pending.size(); ++k)
      workers[k % spawn].cells.push_back(
          {pending[k], attempts[pending[k]]});

    const auto spawned_at = std::chrono::steady_clock::now();
    for (WorkerProc& w : workers) {
      const pid_t pid = ::fork();
      if (pid < 0)
        throw std::runtime_error("ProcessCellCoordinator: fork failed");
      if (pid == 0) {
        // Child: run the assigned subset and leave without touching the
        // parent's state (no destructors, no flushes of inherited
        // buffers). The identical loop serves the gridworker binary.
        try {
          run_job_worker_cells(job_, w.cells, config_.results_dir,
                               config_.faults);
        } catch (...) {
          std::_Exit(kWorkerErrorExit);
        }
        std::_Exit(0);
      }
      w.pid = pid;
      w.last_progress = spawned_at;
    }

    // Monitor: a worker writes its frames in assignment order, so the
    // per-cell wall-clock timeout is "time since the last frame landed".
    std::size_t live = spawn;
    while (live > 0) {
      sleep_seconds(config_.poll_interval_seconds);
      const auto now = std::chrono::steady_clock::now();
      for (WorkerProc& w : workers) {
        if (!w.running) continue;
        std::error_code ec;
        while (w.next_unseen < w.cells.size() &&
               fs::exists(frame_path(w.cells[w.next_unseen].cell_index),
                          ec)) {
          ++w.next_unseen;
          w.last_progress = now;
        }
        int status = 0;
        if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
          w.running = false;
          w.wait_status = status;
          --live;
          continue;
        }
        if (std::chrono::duration<double>(now - w.last_progress).count() >
            config_.cell_timeout_seconds) {
          ::kill(w.pid, SIGKILL);
          ::waitpid(w.pid, &status, 0);
          w.running = false;
          w.killed = true;
          w.wait_status = status;
          --live;
        }
      }
    }

    // Collect: validate every frame this round was responsible for.
    std::vector<std::size_t> next_pending;
    for (const WorkerProc& w : workers) {
      for (const CellAssignment& a : w.cells) {
        const std::size_t i = static_cast<std::size_t>(a.cell_index);
        const std::string path = frame_path(i);
        std::string error;
        if (try_accept_frame(job_, path, i, error)) continue;
        std::error_code ec;
        fs::remove(path, ec);
        ++attempts[i];
        const std::string cause =
            error + " (" + describe_exit(w, config_.cell_timeout_seconds) +
            ")";
        if (attempts[i] >= config_.max_attempts) {
          // Quarantine: the grid degrades gracefully instead of dying.
          outcome.failed_cells.push_back({i, job_.cell_label(i),
                                          job_.cell_seed(i), attempts[i],
                                          cause});
        } else {
          next_pending.push_back(i);
          ++outcome.retries;
        }
      }
    }

    pending = std::move(next_pending);
    if (!pending.empty()) {
      // Bounded exponential backoff before the retry round.
      const int exponent = static_cast<int>(std::min<std::size_t>(round, 30));
      sleep_seconds(std::min(
          std::ldexp(config_.backoff_base_seconds, exponent),
          config_.backoff_max_seconds));
      ++round;
    }
  }

  std::sort(outcome.failed_cells.begin(), outcome.failed_cells.end(),
            [](const FailedCell& a, const FailedCell& b) {
              return a.cell_index < b.cell_index;
            });
  outcome.wall_seconds = seconds_since(start);
  return outcome;
}

GridCoordinator::GridCoordinator(const CampaignGrid& grid,
                                 GridCoordinatorConfig config)
    : grid_(grid), config_(std::move(config)) {
  validate_coordinator_config(config_);
}

GridReport GridCoordinator::run() {
  CampaignCellJob job(grid_);
  ProcessCellCoordinator coordinator(job, config_);
  ProcessOutcome outcome = coordinator.run();

  GridReport report;
  report.cells = job.take_results();
  report.failed_cells = std::move(outcome.failed_cells);
  report.threads_used = outcome.workers;
  report.retries = outcome.retries;
  report.resumed_cells = outcome.resumed_cells;
  report.wall_seconds = outcome.wall_seconds;
  // Quarantined slots keep their identity visible in the report even
  // though no result ever landed.
  for (const FailedCell& f : report.failed_cells) {
    const std::size_t i = static_cast<std::size_t>(f.cell_index);
    report.cells[i].label = grid_.cells()[i].label;
    report.cells[i].seed = grid_.cells()[i].spec.seed;
  }
  report.combined_fingerprint = combine_cell_fingerprints(report.cells);
  return report;
}

}  // namespace onion::scenario
