// Streaming on-disk campaign traces: the file-format twin of the
// in-memory CampaignTrace, built so million-event campaigns can be
// recorded and replayed without ever holding the event log in RAM.
//
// A trace file is a sequence of self-validating frames in the exact
// wire discipline scenario/wire.hpp established for the grid transport
// (magic u64 | version u64 | payload_len u64 | payload | SHA-256):
//
//   header frame   the full ScenarioSpec echo (canonical field order,
//                  see serialize(ScenarioSpec)) + the initial node list
//   chunk frames   a bounded run of tagged records in simulator order:
//                  tag 0 = one serialized CampaignEvent, tag 1 = one
//                  length-prefixed canonical MetricsSnapshot (the
//                  event/snapshot interleaving is preserved exactly)
//   footer frame   fixed-size bookkeeping (TraceFooter): record counts,
//                  chunk count, and the chained event digest — the same
//                  digest CampaignTrace::fingerprint() renders, so the
//                  streamed and in-memory fingerprints agree bit-for-bit
//
// TraceWriter spools a running campaign to disk (it is a TraceSink +
// SnapshotSink like CampaignTrace) in O(chunk) memory, publishing the
// file atomically via common/fileio — a crashed recorder leaves no
// partial trace under the final name. TraceReader validates the header
// and footer on open (O(1): the footer frame is fixed-size, so
// truncation is caught before any chunk is read) and then iterates
// events/snapshots chunk-at-a-time, verifying each frame's digest as it
// streams — O(window) memory where the window is the writer's chunk
// bound, never O(events). Any torn, truncated, or bit-flipped region
// surfaces as a wire::WireError at open or at the damaged chunk
// (tests/trace_io_test.cpp rejects every byte-boundary truncation and
// every single-byte flip, mirroring tests/wire_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/fileio.hpp"
#include "crypto/sha256.hpp"
#include "scenario/trace.hpp"
#include "scenario/wire.hpp"

namespace onion::scenario::trace_io {

/// Frame type tags ("OBTHDR\x00\x01" / "OBTCHK\x00\x01" /
/// "OBTFTR\x00\x01" big-endian): a chunk can never parse as a header or
/// footer, and a trace frame can never decode as a grid frame.
inline constexpr std::uint64_t kHeaderMagic = 0x4f42544844520001ull;
inline constexpr std::uint64_t kChunkMagic = 0x4f425443484b0001ull;
inline constexpr std::uint64_t kFooterMagic = 0x4f42544654520001ull;

/// Record tags inside a chunk payload.
inline constexpr std::uint8_t kEventTag = 0;
inline constexpr std::uint8_t kSnapshotTag = 1;

/// The header frame's content: the spec echo plus the initial honest
/// population — everything on_begin delivered, so a reader reconstructs
/// TraceSource::spec()/initial_nodes() without replaying the campaign.
struct TraceHeader {
  ScenarioSpec spec;
  std::vector<graph::NodeId> initial_nodes;
};

/// The footer frame's content (fixed-size payload, so a reader finds it
/// at end-of-file in O(1) and a truncated file fails at open, not after
/// streaming megabytes of chunks).
struct TraceFooter {
  std::uint64_t event_count = 0;
  std::uint64_t snapshot_count = 0;
  std::uint64_t chunk_count = 0;
  /// Chained SHA-256 over the serialized event stream — the digest
  /// CampaignTrace::fingerprint() renders as hex.
  crypto::Sha256Digest event_digest{};
};

/// Serialized footer payload size: 3 u64 words + the raw digest.
inline constexpr std::size_t kFooterPayloadBytes = 24 + 32;
/// A complete footer frame on disk: frame header + payload + digest.
inline constexpr std::size_t kFooterFrameBytes =
    wire::kFrameHeaderBytes + kFooterPayloadBytes + wire::kFrameDigestBytes;

// --- payload codecs (version-1 field order, no framing) --------------
// The spec codec round-trips every ScenarioSpec bit-for-bit (doubles
// bit-cast); growing any spec struct without updating both sides fails
// detlint D5 via the serialized_fields.txt manifest.

Bytes serialize(const ScenarioSpec& spec);
ScenarioSpec deserialize_spec(ByteReader& r);

Bytes serialize(const TraceHeader& header);
TraceHeader deserialize_header(BytesView payload);

Bytes serialize(const TraceFooter& footer);
TraceFooter deserialize_footer(BytesView payload);

/// How the writer bounds its in-memory window.
struct TraceWriterConfig {
  /// Records (events + snapshots) per chunk frame; the reader's peak
  /// memory is one chunk, so this is the O(window) knob.
  std::size_t chunk_records = 8192;
};

/// Spools a campaign to disk as it runs: wire it into the engine like a
/// CampaignTrace (TraceSink for events, SnapshotSink — via FanoutSink —
/// for snapshots), then call finish() after the run to seal and
/// atomically publish the file. A writer destroyed unfinished removes
/// its temp file and publishes nothing.
class TraceWriter final : public TraceSink, public SnapshotSink {
 public:
  explicit TraceWriter(std::string path, TraceWriterConfig config = {});

  // TraceSink.
  void on_begin(const ScenarioSpec& spec,
                const std::vector<graph::NodeId>& initial) override;
  void on_event(const CampaignEvent& e) override;

  // SnapshotSink.
  void on_snapshot(const MetricsSnapshot& s) override;

  /// Flushes the open chunk, writes the footer, and commits the file.
  /// Requires on_begin to have arrived; call exactly once.
  void finish();

  bool finished() const { return finished_; }
  std::uint64_t event_count() const { return events_; }
  std::uint64_t snapshot_count() const { return snapshots_; }
  std::uint64_t chunk_count() const { return chunks_; }
  std::size_t bytes_written() const { return writer_.bytes_written(); }

  /// The event-stream fingerprint (hex), identical to what an in-memory
  /// CampaignTrace recording the same campaign reports. Valid after
  /// finish().
  const std::string& fingerprint() const;

 private:
  void flush_chunk();

  TraceWriterConfig config_;
  AtomicFileWriter writer_;
  bool began_ = false;
  bool finished_ = false;
  Bytes chunk_;
  std::size_t chunk_records_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t chunks_ = 0;
  crypto::Sha256 event_hasher_;
  std::string fingerprint_;
};

/// Streams a recorded trace file back as a TraceSource. Construction
/// validates the header and footer frames (throwing wire::WireError on
/// any defect, including a missing footer — i.e. an unfinished or
/// truncated recording); iteration re-opens the file, so a const reader
/// is safely shared across replay-grid worker threads. Peak memory per
/// iteration is one chunk frame plus the decoded record — O(window).
class TraceReader final : public TraceSource {
 public:
  explicit TraceReader(std::string path);

  // TraceSource.
  const ScenarioSpec& spec() const override { return header_.spec; }
  const std::vector<graph::NodeId>& initial_nodes() const override {
    return header_.initial_nodes;
  }
  bool began() const override { return true; }
  /// Streams every event through `fn`, verifying each chunk digest and,
  /// at the footer, that the chunk/event counts match — a file damaged
  /// after open still cannot silently drop a suffix.
  void for_each_event(
      const std::function<void(const CampaignEvent&)>& fn) const override;

  /// Streams every recorded snapshot in order (decoded via
  /// wire::deserialize_snapshot, bit-for-bit round-trip).
  void for_each_snapshot(
      const std::function<void(const MetricsSnapshot&)>& fn) const;

  /// Recomputes the chained event digest from the chunk stream and
  /// checks it against the footer before returning it (hex) — equal to
  /// CampaignTrace::fingerprint() of the same campaign by construction.
  std::string fingerprint() const;

  std::uint64_t event_count() const { return footer_.event_count; }
  std::uint64_t snapshot_count() const { return footer_.snapshot_count; }
  std::uint64_t chunk_count() const { return footer_.chunk_count; }
  std::size_t file_bytes() const { return file_bytes_; }

 private:
  /// Visits every record in order; returns the verified chunk count.
  std::uint64_t for_each_record(
      const std::function<void(std::uint8_t tag, BytesView body)>& fn) const;

  std::string path_;
  TraceHeader header_;
  TraceFooter footer_;
  std::size_t file_bytes_ = 0;
  std::size_t chunks_begin_ = 0;  // first byte past the header frame
};

}  // namespace onion::scenario::trace_io
