// Session-length models for membership churn. The pooled Poisson leave
// process the campaign engine started with (a global leave rate picking
// a uniform victim) gives every bot the same memoryless exit hazard;
// measured P2P populations are heavy-tailed instead — most sessions are
// short, a few last for days (the churn literature the paper's Section V
// sweeps abstract away). A SessionSpec describes the per-bot session
// length distribution; sample_session draws one length from the
// campaign's deterministic RNG stream, so equal spec + equal seed still
// replays byte-identically.
#pragma once

#include <cstdint>
#include <limits>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace onion::scenario {

/// Which distribution a bot's session length follows. All three are
/// parameterized by their *mean*, so swapping the model moves tail mass
/// without changing the average population turnover.
enum class SessionModel : std::uint8_t {
  Exponential,  // memoryless (the pooled process, seen per bot)
  Pareto,       // power-law tail: P(X > x) = (x_m / x)^alpha
  LogNormal,    // log-scale Gaussian: heavy but all moments finite
};

/// Session-length distribution, in simulated hours.
struct SessionSpec {
  SessionModel model = SessionModel::Exponential;
  /// Target mean session length. <= 0 is well-defined: every sample is
  /// 0 before clamping (an instant-leave population).
  double mean_hours = 1.0;
  /// Pareto tail index; must be > 1 so the mean exists. Smaller alpha =
  /// heavier tail (alpha in (1, 2] has infinite variance).
  double pareto_alpha = 1.5;
  /// LogNormal log-scale standard deviation; 0 degenerates to a
  /// constant at the mean.
  double lognormal_sigma = 1.0;
  /// Clamp band applied after sampling. min == max pins every session
  /// to that constant (the degenerate but well-defined corner).
  double min_hours = 0.0;
  double max_hours = std::numeric_limits<double>::infinity();
};

/// One session length in hours. Draws exactly one uniform for
/// Exponential/Pareto and two for LogNormal, always — clamping never
/// changes the draw count, so the RNG stream position is a function of
/// the sample index alone.
double sample_session_hours(const SessionSpec& spec, Rng& rng);

/// As above, converted to simulated time and clamped to >= 1 ms (a
/// 0-length session would schedule a leave at the join instant).
SimDuration sample_session(const SessionSpec& spec, Rng& rng);

}  // namespace onion::scenario
