#include "scenario/trace.hpp"

#include <algorithm>
#include <map>

#include "common/bytes.hpp"
#include "common/check.hpp"
#include "crypto/sha256.hpp"

namespace onion::scenario {

Bytes serialize(const CampaignEvent& e) {
  Bytes out;
  out.reserve(8 * 3 + 1);
  put_u64(out, e.at);
  out.push_back(static_cast<std::uint8_t>(e.kind));
  put_u64(out, e.a);
  put_u64(out, e.b);
  return out;
}

void CampaignTrace::on_begin(const ScenarioSpec& spec,
                             const std::vector<graph::NodeId>& initial) {
  ONION_EXPECTS(!began_);  // one campaign per trace
  began_ = true;
  spec_ = spec;
  initial_ = initial;
}

void CampaignTrace::on_event(const CampaignEvent& e) {
  ONION_EXPECTS(began_);
  events_.push_back(e);
}

void CampaignTrace::on_snapshot(const MetricsSnapshot& s) {
  snapshots_.push_back(s);
  events_before_.push_back(events_.size());
}

std::vector<BotLifetime> TraceSource::lifetimes() const {
  ONION_EXPECTS(began());
  const SimTime horizon = spec().horizon;
  // Node ids are allocated monotonically and never reused, so a map
  // keyed by id yields the sorted order directly.
  std::map<graph::NodeId, BotLifetime> alive;
  for (const graph::NodeId u : initial_nodes())
    alive.emplace(u, BotLifetime{u, 0, horizon});
  for_each_event([&](const CampaignEvent& e) {
    switch (e.kind) {
      case TraceEventKind::Join:
        alive.emplace(static_cast<graph::NodeId>(e.a),
                      BotLifetime{static_cast<graph::NodeId>(e.a), e.at,
                                  horizon});
        break;
      case TraceEventKind::Leave:
      case TraceEventKind::Takedown: {
        const auto it = alive.find(static_cast<graph::NodeId>(e.a));
        ONION_ENSURES(it != alive.end());  // only alive bots can die
        if (it->second.death == horizon) it->second.death = e.at;
        break;
      }
      case TraceEventKind::Peering:
      case TraceEventKind::SoapCapture:
      case TraceEventKind::SoapRound:
      case TraceEventKind::WaveStart:
      case TraceEventKind::AdaptiveRefresh:
      case TraceEventKind::HealPeering:
        break;  // no membership effect
    }
  });
  std::vector<BotLifetime> out;
  out.reserve(alive.size());
  for (const auto& [node, life] : alive) out.push_back(life);
  return out;
}

std::string CampaignTrace::fingerprint() const {
  crypto::Sha256 hasher;
  for (const CampaignEvent& e : events_) hasher.update(serialize(e));
  const crypto::Sha256Digest digest = hasher.finalize();
  return to_hex(BytesView(digest.data(), digest.size()));
}

}  // namespace onion::scenario
