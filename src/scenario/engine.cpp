#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>

#include "graph/metrics.hpp"

namespace onion::scenario {

namespace {
core::OverlayConfig overlay_config(const ScenarioSpec& spec) {
  core::OverlayConfig config;
  config.dmin = spec.degree;
  config.dmax = spec.degree;
  config.rate_limit_per_round = spec.defense.rate_limit_per_round;
  config.pow_base_cost = spec.defense.pow_base_cost;
  config.pow_growth = spec.defense.pow_growth;
  return config;
}

core::DdsrPolicy ddsr_policy(const ScenarioSpec& spec) {
  core::DdsrPolicy policy;
  policy.dmin = spec.degree;
  policy.dmax = spec.degree;
  return policy;
}
}  // namespace

CampaignEngine::CampaignEngine(const ScenarioSpec& spec, SnapshotSink& sink,
                               TraceSink* trace)
    : spec_(spec),
      sink_(sink),
      trace_(trace),
      rng_(spec.seed),
      metrics_rng_(rng_.split()),
      net_(core::OverlayNetwork::random_regular(
          spec.initial_size, spec.degree, overlay_config(spec), rng_)),
      ddsr_(net_.graph_mut(), ddsr_policy(spec), rng_),
      tracker_(net_),
      soap_(spec.attacks.size()) {
  ONION_EXPECTS(spec_.metrics.period > 0);
}

MetricsSnapshot CampaignEngine::run() {
  ONION_EXPECTS(!ran_);
  ran_ = true;
  if (trace_ != nullptr) trace_->on_begin(spec_, net_.honest_nodes());
  take_snapshot();  // the t = 0 baseline
  const SimTime horizon = spec_.horizon;
  if (horizon == 0) return last_;

  if (spec_.churn.joins_per_hour > 0.0)
    arm_join(exp_gap(spec_.churn.joins_per_hour));
  if (spec_.churn.leaves_per_hour > 0.0)
    arm_leave(exp_gap(spec_.churn.leaves_per_hour));
  for (std::size_t i = 0; i < spec_.attacks.size(); ++i) {
    const AttackPhase& phase = spec_.attacks[i];
    if (phase.stop <= phase.start || phase.start >= horizon) continue;
    if (phase.kind == AttackKind::SoapInjection) {
      arm_soap(i, phase.start);
    } else if (phase.takedowns_per_hour > 0.0) {
      arm_takedown(i, phase.start + exp_gap(phase.takedowns_per_hour));
    }
  }
  if (spec_.defense.rate_limit_per_round !=
      std::numeric_limits<std::size_t>::max())
    arm_round(spec_.defense.round);
  arm_snapshot(std::min<SimTime>(spec_.metrics.period, horizon));

  events_executed_ = sim_.run_until(horizon);
  return last_;
}

// --- churn -----------------------------------------------------------

void CampaignEngine::arm_join(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this] {
    do_join();
    arm_join(sim_.now() + exp_gap(spec_.churn.joins_per_hour));
  });
}

void CampaignEngine::arm_leave(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this] {
    do_leave();
    arm_leave(sim_.now() + exp_gap(spec_.churn.leaves_per_hour));
  });
}

void CampaignEngine::do_join() {
  ++counters_.joins;
  const NodeId id = net_.add_node(/*honest=*/true);
  emit(TraceEventKind::Join, id);
  std::vector<NodeId> candidates = net_.honest_nodes();
  std::erase(candidates, id);
  if (candidates.empty()) return;
  // Bootstrap peering: ask `degree` random bots. A full target accepts
  // only by evicting (the degree-0 newcomer always undercuts); the
  // evicted bot refills from its NoN so the join cannot leave holes.
  const std::size_t want = std::min(spec_.degree, candidates.size());
  for (const NodeId target : rng_.sample(candidates, want)) {
    emit(TraceEventKind::Peering, id, target);
    NodeId evicted = graph::kInvalidNode;
    net_.request_peering(id, target, &evicted);
    if (evicted != graph::kInvalidNode) net_.refill(evicted);
  }
  net_.refill(id);  // top up if some requests were rejected/limited
}

void CampaignEngine::do_leave() {
  const std::vector<NodeId> honest = net_.honest_nodes();
  if (honest.size() <= 1) return;
  const NodeId victim = rng_.pick(honest);
  ++counters_.leaves;
  emit(TraceEventKind::Leave, victim);
  if (spec_.churn.heal_on_leave) {
    ddsr_.remove_node(victim);
  } else {
    ddsr_.remove_node_no_repair(victim);
  }
}

// --- attacks ---------------------------------------------------------

void CampaignEngine::arm_takedown(std::size_t phase_index, SimTime t) {
  const AttackPhase& phase = spec_.attacks[phase_index];
  if (t >= phase.stop || t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, phase_index] {
    const AttackPhase& ph = spec_.attacks[phase_index];
    do_takedown(ph);
    arm_takedown(phase_index,
                 sim_.now() + exp_gap(ph.takedowns_per_hour));
  });
}

void CampaignEngine::do_takedown(const AttackPhase& phase) {
  const std::vector<NodeId> honest = net_.honest_nodes();
  if (honest.size() <= 1) return;
  const NodeId victim = pick_victim(phase, honest);
  ++counters_.takedowns;
  emit(TraceEventKind::Takedown, victim);
  if (phase.heal) {
    ddsr_.remove_node(victim);
  } else {
    ddsr_.remove_node_no_repair(victim);
  }
}

CampaignEngine::NodeId CampaignEngine::pick_victim(
    const AttackPhase& phase, const std::vector<NodeId>& honest) {
  switch (phase.kind) {
    case AttackKind::RandomTakedown:
      return rng_.pick(honest);
    case AttackKind::TargetedTakedown: {
      const graph::Graph& g = net_.graph();
      NodeId best = honest.front();
      std::size_t best_degree = g.degree(best);
      for (const NodeId u : honest) {
        if (g.degree(u) > best_degree) {
          best_degree = g.degree(u);
          best = u;
        }
      }
      return best;
    }
    case AttackKind::CentralityTakedown: {
      const std::vector<double> bc = graph::betweenness_sampled(
          net_.graph(), phase.betweenness_pivots, rng_);
      NodeId best = honest.front();
      double best_score = bc[best];
      for (const NodeId u : honest) {
        if (bc[u] > best_score) {
          best_score = bc[u];
          best = u;
        }
      }
      return best;
    }
    case AttackKind::SoapInjection:
      break;  // SOAP phases never pick takedown victims
  }
  ONION_ENSURES(false);  // unreachable attack kind
  return graph::kInvalidNode;
}

void CampaignEngine::arm_soap(std::size_t phase_index, SimTime t) {
  const AttackPhase& phase = spec_.attacks[phase_index];
  if (t >= phase.stop || t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, phase_index, t] {
    const AttackPhase& ph = spec_.attacks[phase_index];
    SoapPhaseState& state = soap_[phase_index];
    if (!state.campaign) {
      const std::vector<NodeId> honest = net_.honest_nodes();
      if (honest.empty()) return;
      state.campaign = std::make_unique<mitigation::SoapCampaign>(
          net_, mitigation::SoapConfig{}, rng_);
      const NodeId captured = rng_.pick(honest);
      emit(TraceEventKind::SoapCapture, captured);
      state.campaign->capture(captured);
    }
    bool progressing = true;
    for (std::size_t r = 0;
         r < ph.soap_rounds_per_tick && progressing; ++r)
      progressing = state.campaign->step();
    if (trace_ != nullptr)  // contained_count() is O(discovered)
      emit(TraceEventKind::SoapRound, state.campaign->clones_created(),
           state.campaign->contained_count());
    if (progressing) arm_soap(phase_index, t + ph.soap_tick);
  });
}

// --- defense rounds --------------------------------------------------

void CampaignEngine::arm_round(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, t] {
    net_.begin_round();
    // Rate-limited bots give up until the next round (the overlay
    // refill contract), so each fresh round retries every bot still
    // below dmin — without this, a newcomer whose whole bootstrap round
    // was throttled would stay isolated forever.
    for (const NodeId v : net_.honest_nodes())
      if (net_.graph().degree(v) < net_.config().dmin) net_.refill(v);
    arm_round(t + spec_.defense.round);
  });
}

// --- metrics ---------------------------------------------------------

void CampaignEngine::arm_snapshot(SimTime t) {
  sim_.schedule_at(t, [this, t] {
    take_snapshot();
    if (t >= spec_.horizon) return;
    arm_snapshot(
        std::min<SimTime>(t + spec_.metrics.period, spec_.horizon));
  });
}

void CampaignEngine::take_snapshot() {
  last_ = compute_snapshot();
  sink_.on_snapshot(last_);
}

MetricsSnapshot CampaignEngine::compute_snapshot() {
  MetricsSnapshot s;
  s.time = sim_.now();
  const graph::Graph& g = net_.graph();

  // Structural fields come from the per-mutation tracker: O(nodes
  // affected since the previous snapshot) when the window was pure
  // growth, one O((n+m)·α) component rebuild when it saw deletions —
  // byte-identical to the full sweep this replaced (sweep_structural).
  tracker_.fill(s, spec_.metrics.degree_histogram);

  if (spec_.metrics.diameter_sweeps > 0 && s.honest_alive >= 2)
    s.diameter = graph::diameter_double_sweep(
        g, spec_.metrics.diameter_sweeps, metrics_rng_);

  s.joins = counters_.joins;
  s.leaves = counters_.leaves;
  s.takedowns = counters_.takedowns;
  const core::DdsrStats& stats = ddsr_.stats();
  s.repair_edges = stats.repair_edges_added;
  s.prune_edges = stats.prune_edges_removed;
  s.refill_edges = stats.refill_edges_added;
  s.repair_messages = stats.maintenance_messages();
  for (const SoapPhaseState& state : soap_) {
    if (!state.campaign) continue;
    s.soap_clones += state.campaign->clones_created();
    s.soap_contained += state.campaign->contained_count();
  }
  return s;
}

void CampaignEngine::emit(TraceEventKind kind, std::uint64_t a,
                          std::uint64_t b) {
  if (trace_ == nullptr) return;
  trace_->on_event(CampaignEvent{sim_.now(), kind, a, b});
}

SimDuration CampaignEngine::exp_gap(double per_hour) {
  ONION_EXPECTS(per_hour > 0.0);
  const double u = rng_.uniform_real();
  const double ms =
      -std::log1p(-u) / per_hour * static_cast<double>(kHour);
  constexpr double kMaxGap = 9.0e15;  // far past any sane horizon
  if (!(ms < kMaxGap)) return static_cast<SimDuration>(kMaxGap);
  return ms < 1.0 ? SimDuration{1} : static_cast<SimDuration>(ms);
}

}  // namespace onion::scenario
