#include "scenario/engine.hpp"

#include <algorithm>
#include <cmath>

#include "graph/metrics.hpp"

namespace onion::scenario {

namespace {
core::OverlayConfig overlay_config(const ScenarioSpec& spec) {
  core::OverlayConfig config;
  config.dmin = spec.degree;
  config.dmax = spec.degree;
  config.rate_limit_per_round = spec.defense.rate_limit_per_round;
  config.pow_base_cost = spec.defense.pow_base_cost;
  config.pow_growth = spec.defense.pow_growth;
  return config;
}

core::DdsrPolicy ddsr_policy(const ScenarioSpec& spec) {
  core::DdsrPolicy policy;
  policy.dmin = spec.degree;
  policy.dmax = spec.degree;
  return policy;
}
}  // namespace

CampaignEngine::CampaignEngine(const ScenarioSpec& spec, SnapshotSink& sink,
                               TraceSink* trace)
    : spec_(spec),
      sink_(sink),
      trace_(trace),
      rng_(spec.seed),
      metrics_rng_(rng_.split()),
      net_(core::OverlayNetwork::random_regular(
          spec.initial_size, spec.degree, overlay_config(spec), rng_)),
      ddsr_(net_.graph_mut(), ddsr_policy(spec), rng_),
      tracker_(net_) {
  ONION_EXPECTS(spec_.metrics.period > 0);

  // Compile the attack schedule: standalone phases first, then the wave
  // plan unrolled onto an absolute clock — each wave runs for its
  // duration, then the overlay heals through the quiet gap before the
  // next wave begins.
  phases_ = spec_.attacks;
  wave_base_ = phases_.size();
  SimTime wave_clock = spec_.waves.start;
  for (const AttackWave& wave : spec_.waves.waves) {
    AttackPhase phase = wave.attack;
    phase.start = wave_clock;
    phase.stop = wave_clock + wave.duration;
    phases_.push_back(phase);
    wave_clock = phase.stop + wave.quiet_after;
  }
  wave_takedowns_.resize(spec_.waves.waves.size(), 0);
  soap_.resize(phases_.size());
  adaptive_.resize(phases_.size());

  if (spec_.defense.charge_healing) {
    // Defense-consistent healing: every DDSR repair/refill edge becomes
    // a peering request against the PoW/rate-limit policy. An eviction
    // it causes is mended the same way a bootstrap eviction is.
    ddsr_.set_connector([this](NodeId a, NodeId b) {
      emit(TraceEventKind::HealPeering, a, b);
      NodeId evicted = graph::kInvalidNode;
      const core::PeerDecision decision =
          net_.request_peering(a, b, &evicted);
      if (evicted != graph::kInvalidNode) net_.refill(evicted);
      return decision == core::PeerDecision::AcceptedWithCapacity ||
             decision == core::PeerDecision::AcceptedEvicted;
    });
  }
}

MetricsSnapshot CampaignEngine::run() {
  ONION_EXPECTS(!ran_);
  ran_ = true;
  if (trace_ != nullptr) trace_->on_begin(spec_, net_.honest_nodes());
  take_snapshot();  // the t = 0 baseline
  const SimTime horizon = spec_.horizon;
  if (horizon == 0) return last_;

  if (spec_.churn.session_leaves) {
    // Per-bot sessions: the initial population draws its lifetimes up
    // front, in node order (the draws happen even for sessions that
    // outlive the horizon, so the stream position is spec-independent).
    for (const NodeId u : net_.honest_nodes())
      arm_session_leave(u, sample_session(spec_.churn.session, rng_));
  }
  if (spec_.churn.joins_per_hour > 0.0)
    arm_join(exp_gap(spec_.churn.joins_per_hour));
  if (!spec_.churn.session_leaves && spec_.churn.leaves_per_hour > 0.0)
    arm_leave(exp_gap(spec_.churn.leaves_per_hour));
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const AttackPhase& phase = phases_[i];
    if (phase.stop <= phase.start || phase.start >= horizon) continue;
    if (i >= wave_base_) {
      // Wave boundary marker: a no-op event (draws nothing) that stamps
      // the wave's opening into the trace.
      const std::size_t wave_index = i - wave_base_;
      sim_.schedule_at(phase.start, [this, wave_index, i] {
        emit(TraceEventKind::WaveStart, wave_index,
             static_cast<std::uint64_t>(phases_[i].kind));
      });
    }
    if (phase.kind == AttackKind::SoapInjection) {
      arm_soap(i, phase.start);
    } else if (phase.takedowns_per_hour > 0.0) {
      if (phase.kind == AttackKind::AdaptiveTakedown &&
          phase.refresh_period > 0 &&
          phase.refresh_period != kNeverRefresh)
        arm_refresh(i, phase.start);
      arm_takedown(i, phase.start + exp_gap(phase.takedowns_per_hour));
    }
  }
  if (spec_.defense.rate_limit_per_round !=
      std::numeric_limits<std::size_t>::max())
    arm_round(spec_.defense.round);
  arm_snapshot(std::min<SimTime>(spec_.metrics.period, horizon));

  events_executed_ = sim_.run_until(horizon);
  return last_;
}

// --- churn -----------------------------------------------------------

void CampaignEngine::arm_join(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this] {
    do_join();
    arm_join(sim_.now() + exp_gap(spec_.churn.joins_per_hour));
  });
}

void CampaignEngine::arm_leave(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this] {
    do_leave();
    arm_leave(sim_.now() + exp_gap(spec_.churn.leaves_per_hour));
  });
}

void CampaignEngine::arm_session_leave(NodeId bot, SimTime t) {
  if (t >= spec_.horizon) return;  // the session outlives the campaign
  sim_.schedule_at(t, [this, bot] { do_session_leave(bot); });
}

void CampaignEngine::do_join() {
  ++counters_.joins;
  const NodeId id = net_.add_node(/*honest=*/true);
  emit(TraceEventKind::Join, id);
  std::vector<NodeId> candidates = net_.honest_nodes();
  std::erase(candidates, id);
  if (candidates.empty()) return;
  // Bootstrap peering: ask `degree` random bots. A full target accepts
  // only by evicting (the degree-0 newcomer always undercuts); the
  // evicted bot refills from its NoN so the join cannot leave holes.
  const std::size_t want = std::min(spec_.degree, candidates.size());
  for (const NodeId target : rng_.sample(candidates, want)) {
    emit(TraceEventKind::Peering, id, target);
    NodeId evicted = graph::kInvalidNode;
    net_.request_peering(id, target, &evicted);
    if (evicted != graph::kInvalidNode) net_.refill(evicted);
  }
  net_.refill(id);  // top up if some requests were rejected/limited
  if (spec_.churn.session_leaves)
    arm_session_leave(
        id, sim_.now() + sample_session(spec_.churn.session, rng_));
}

void CampaignEngine::do_leave() {
  // Tracker order statistics instead of materializing honest_nodes():
  // honest_at(uniform(count)) draws the same bits and lands on the same
  // bot as rng_.pick over the ascending id vector, in O(log n) not O(n).
  const std::uint64_t honest_count = tracker_.honest_alive();
  if (honest_count <= 1) return;
  const NodeId victim = tracker_.honest_at(rng_.uniform(honest_count));
  ++counters_.leaves;
  emit(TraceEventKind::Leave, victim);
  if (spec_.churn.heal_on_leave) {
    ddsr_.remove_node(victim);
  } else {
    ddsr_.remove_node_no_repair(victim);
  }
}

void CampaignEngine::do_session_leave(NodeId bot) {
  // The session may have been cut short by an attack; only a bot that
  // is still alive can leave, and never the last one standing.
  if (!net_.alive(bot)) return;
  if (tracker_.honest_alive() <= 1) return;
  ++counters_.leaves;
  emit(TraceEventKind::Leave, bot);
  if (spec_.churn.heal_on_leave) {
    ddsr_.remove_node(bot);
  } else {
    ddsr_.remove_node_no_repair(bot);
  }
}

// --- attacks ---------------------------------------------------------

void CampaignEngine::arm_takedown(std::size_t phase_index, SimTime t) {
  const AttackPhase& phase = phases_[phase_index];
  if (t >= phase.stop || t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, phase_index] {
    do_takedown(phase_index);
    arm_takedown(phase_index,
                 sim_.now() + exp_gap(phases_[phase_index].takedowns_per_hour));
  });
}

void CampaignEngine::do_takedown(std::size_t phase_index) {
  const std::uint64_t honest_count = tracker_.honest_alive();
  if (honest_count <= 1) return;
  NodeId victim;
  if (phases_[phase_index].kind == AttackKind::RandomTakedown) {
    // Same draw, same victim as rng_.pick over honest_nodes() — see
    // do_leave() — without the O(n) vector per strike. The ranked
    // attack kinds scan scores over all honest bots anyway, so they
    // keep the explicit vector.
    victim = tracker_.honest_at(rng_.uniform(honest_count));
  } else {
    victim = pick_victim(phase_index, net_.honest_nodes());
  }
  ++counters_.takedowns;
  if (phase_index >= wave_base_)
    ++wave_takedowns_[phase_index - wave_base_];
  emit(TraceEventKind::Takedown, victim);
  if (phases_[phase_index].heal) {
    ddsr_.remove_node(victim);
  } else {
    ddsr_.remove_node_no_repair(victim);
  }
}

namespace {
/// Index >= score table size means the node joined after the ranking
/// was computed: unsurveyed, score 0.
double score_of(const std::vector<double>& score, graph::NodeId u) {
  return u < score.size() ? score[u] : 0.0;
}

graph::NodeId best_by_score(const std::vector<double>& score,
                            const std::vector<graph::NodeId>& honest) {
  graph::NodeId best = honest.front();
  double best_score = score_of(score, best);
  for (const graph::NodeId u : honest) {
    if (score_of(score, u) > best_score) {
      best_score = score_of(score, u);
      best = u;
    }
  }
  return best;
}
}  // namespace

CampaignEngine::NodeId CampaignEngine::pick_victim(
    std::size_t phase_index, const std::vector<NodeId>& honest) {
  const AttackPhase& phase = phases_[phase_index];
  switch (phase.kind) {
    case AttackKind::RandomTakedown:
      break;  // handled in do_takedown via the tracker's order statistics
    case AttackKind::TargetedTakedown: {
      const graph::Graph& g = net_.graph();
      NodeId best = honest.front();
      std::size_t best_degree = g.degree(best);
      for (const NodeId u : honest) {
        if (g.degree(u) > best_degree) {
          best_degree = g.degree(u);
          best = u;
        }
      }
      return best;
    }
    case AttackKind::CentralityTakedown: {
      const std::vector<double> bc = graph::betweenness_sampled(
          net_.graph(), phase.betweenness_pivots, rng_);
      return best_by_score(bc, honest);
    }
    case AttackKind::AdaptiveTakedown: {
      AdaptiveState& state = adaptive_[phase_index];
      // refresh_period 0 re-surveys before every strike — the
      // refresh-cadence → ∞ limit, byte-identical to Centrality/
      // TargetedTakedown for the matching metric. Otherwise the first
      // strike ranks lazily if no scheduled refresh ran yet, and the
      // cached (stale) table serves until the next cadence refresh.
      if (!state.ranked || phase.refresh_period == 0)
        refresh_ranking(phase_index);
      return best_by_score(state.score, honest);
    }
    case AttackKind::SoapInjection:
      break;  // SOAP phases never pick takedown victims
  }
  ONION_ENSURES(false);  // unreachable attack kind
  return graph::kInvalidNode;
}

void CampaignEngine::refresh_ranking(std::size_t phase_index) {
  const AttackPhase& phase = phases_[phase_index];
  AdaptiveState& state = adaptive_[phase_index];
  switch (phase.rank) {
    case RankMetric::SampledBetweenness:
      state.score = graph::betweenness_sampled(
          net_.graph(), phase.betweenness_pivots, rng_);
      break;
    case RankMetric::Degree: {
      const graph::Graph& g = net_.graph();
      state.score.assign(g.capacity(), 0.0);
      for (NodeId u = 0; u < g.capacity(); ++u)
        if (g.alive(u))
          state.score[u] = static_cast<double>(g.degree(u));
      break;
    }
  }
  state.ranked = true;
}

void CampaignEngine::arm_refresh(std::size_t phase_index, SimTime t) {
  const AttackPhase& phase = phases_[phase_index];
  if (t >= phase.stop || t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, phase_index, t] {
    refresh_ranking(phase_index);
    if (trace_ != nullptr) {  // the top-target scan is trace-only work
      const std::vector<NodeId> honest = net_.honest_nodes();
      if (!honest.empty())
        emit(TraceEventKind::AdaptiveRefresh, phase_index,
             best_by_score(adaptive_[phase_index].score, honest));
    }
    arm_refresh(phase_index, t + phases_[phase_index].refresh_period);
  });
}

void CampaignEngine::arm_soap(std::size_t phase_index, SimTime t) {
  const AttackPhase& phase = phases_[phase_index];
  if (t >= phase.stop || t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, phase_index, t] {
    const AttackPhase& ph = phases_[phase_index];
    SoapPhaseState& state = soap_[phase_index];
    if (!state.campaign) {
      const std::vector<NodeId> honest = net_.honest_nodes();
      if (honest.empty()) return;
      state.campaign = std::make_unique<mitigation::SoapCampaign>(
          net_, mitigation::SoapConfig{}, rng_);
      const NodeId captured = rng_.pick(honest);
      emit(TraceEventKind::SoapCapture, captured);
      state.campaign->capture(captured);
    }
    bool progressing = true;
    for (std::size_t r = 0;
         r < ph.soap_rounds_per_tick && progressing; ++r)
      progressing = state.campaign->step();
    if (trace_ != nullptr)  // contained_count() is O(discovered)
      emit(TraceEventKind::SoapRound, state.campaign->clones_created(),
           state.campaign->contained_count());
    if (progressing) arm_soap(phase_index, t + ph.soap_tick);
  });
}

// --- defense rounds --------------------------------------------------

void CampaignEngine::arm_round(SimTime t) {
  if (t >= spec_.horizon) return;
  sim_.schedule_at(t, [this, t] {
    net_.begin_round();
    // Rate-limited bots give up until the next round (the overlay
    // refill contract), so each fresh round retries every bot still
    // below dmin — without this, a newcomer whose whole bootstrap round
    // was throttled would stay isolated forever.
    for (const NodeId v : net_.honest_nodes())
      if (net_.graph().degree(v) < net_.config().dmin) net_.refill(v);
    arm_round(t + spec_.defense.round);
  });
}

// --- metrics ---------------------------------------------------------

void CampaignEngine::arm_snapshot(SimTime t) {
  sim_.schedule_at(t, [this, t] {
    take_snapshot();
    if (t >= spec_.horizon) return;
    arm_snapshot(
        std::min<SimTime>(t + spec_.metrics.period, spec_.horizon));
  });
}

void CampaignEngine::take_snapshot() {
  last_ = compute_snapshot();
  sink_.on_snapshot(last_);
}

MetricsSnapshot CampaignEngine::compute_snapshot() {
  MetricsSnapshot s;
  s.time = sim_.now();
  const graph::Graph& g = net_.graph();

  // Structural fields come from the per-mutation tracker: O(1) plus the
  // histogram copy, whether or not the window saw deletions (connectivity
  // is fully dynamic) — byte-identical to the full sweep this replaced
  // (sweep_structural).
  tracker_.fill(s, spec_.metrics.degree_histogram);

  if (spec_.metrics.diameter_sweeps > 0 && s.honest_alive >= 2)
    s.diameter = graph::diameter_double_sweep(
        g, spec_.metrics.diameter_sweeps, metrics_rng_);

  s.joins = counters_.joins;
  s.leaves = counters_.leaves;
  s.takedowns = counters_.takedowns;
  const core::DdsrStats& stats = ddsr_.stats();
  s.repair_edges = stats.repair_edges_added;
  s.prune_edges = stats.prune_edges_removed;
  s.refill_edges = stats.refill_edges_added;
  s.repair_messages = stats.maintenance_messages();
  for (const SoapPhaseState& state : soap_) {
    if (!state.campaign) continue;
    s.soap_clones += state.campaign->clones_created();
    s.soap_contained += state.campaign->contained_count();
  }
  s.wave_takedowns = wave_takedowns_;
  return s;
}

void CampaignEngine::emit(TraceEventKind kind, std::uint64_t a,
                          std::uint64_t b) {
  if (trace_ == nullptr) return;
  trace_->on_event(CampaignEvent{sim_.now(), kind, a, b});
}

SimDuration CampaignEngine::exp_gap(double per_hour) {
  ONION_EXPECTS(per_hour > 0.0);
  const double u = rng_.uniform_real();
  const double ms =
      -std::log1p(-u) / per_hour * static_cast<double>(kHour);
  constexpr double kMaxGap = 9.0e15;  // far past any sane horizon
  if (!(ms < kMaxGap)) return static_cast<SimDuration>(kMaxGap);
  return ms < 1.0 ? SimDuration{1} : static_cast<SimDuration>(ms);
}

}  // namespace onion::scenario
