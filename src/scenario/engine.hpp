// The scenario campaign engine: compiles a declarative ScenarioSpec onto
// the discrete-event simulator. Churn joins arrive as a Poisson process;
// leaves come from the pooled Poisson process or, under
// ChurnSpec::session_leaves, from per-bot (possibly heavy-tailed)
// session lengths. Attack phases — standalone windows and compiled
// multi-wave plans — fire inside their [start, stop) windows, adaptive
// attackers re-rank their hit lists on their refresh cadence, and a
// MetricsSnapshot is emitted through the sink once per metrics period.
//
// Everything is driven by two independent deterministic streams split
// from the spec seed: one for campaign dynamics (churn, victims, SOAP,
// healing), one for metric sampling — so changing what is *measured*
// can never change what *happens*. Equal spec + equal seed therefore
// reproduces a byte-identical snapshot stream (enforced by
// tests/scenario_test.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/ddsr.hpp"
#include "core/overlay.hpp"
#include "mitigation/soap.hpp"
#include "scenario/snapshot.hpp"
#include "scenario/spec.hpp"
#include "scenario/trace.hpp"
#include "scenario/tracker.hpp"
#include "sim/simulator.hpp"

namespace onion::scenario {

/// Cumulative campaign event counts (also carried in each snapshot).
struct CampaignCounters {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t takedowns = 0;
};

/// Runs one ScenarioSpec to its horizon. Single-shot: construct, run(),
/// inspect.
class CampaignEngine {
 public:
  using NodeId = graph::NodeId;

  /// `trace`, when given, receives the campaign's event stream (joins,
  /// leaves, takedowns, bootstrap peering, SOAP activity, wave starts,
  /// adaptive refreshes, charged healing requests) in simulator order.
  /// The tap is passive — it never draws from the RNG streams — so
  /// running with or without one is byte-identical.
  CampaignEngine(const ScenarioSpec& spec, SnapshotSink& sink,
                 TraceSink* trace = nullptr);

  /// Executes the campaign: snapshot at t = 0, one per metrics period,
  /// and a final one at the horizon. Returns the final snapshot.
  MetricsSnapshot run();

  /// --- post-run introspection -----------------------------------------
  const ScenarioSpec& spec() const { return spec_; }
  const core::OverlayNetwork& overlay() const { return net_; }
  const core::DdsrStats& ddsr_stats() const { return ddsr_.stats(); }
  const CampaignCounters& counters() const { return counters_; }
  const sim::Simulator& simulator() const { return sim_; }
  const StructuralTracker& tracker() const { return tracker_; }
  /// Simulator events executed by run() (0 before it).
  std::size_t events_executed() const { return events_executed_; }
  /// The compiled attack schedule: spec.attacks followed by the wave
  /// plan's waves as absolute windows (phase index i >= spec.attacks
  /// .size() is wave i - spec.attacks.size()).
  const std::vector<AttackPhase>& phases() const { return phases_; }
  /// Cumulative takedowns attributed to each wave of the plan.
  const std::vector<std::uint64_t>& wave_takedowns() const {
    return wave_takedowns_;
  }

 private:
  struct SoapPhaseState {
    std::unique_ptr<mitigation::SoapCampaign> campaign;
  };
  /// Cached victim ranking of an AdaptiveTakedown phase. Scores are
  /// indexed by node id at ranking time; nodes that joined since score
  /// 0 until the next refresh — the attacker has not surveyed them yet.
  struct AdaptiveState {
    std::vector<double> score;
    bool ranked = false;
  };

  // Event bodies.
  void do_join();
  void do_leave();
  void do_session_leave(NodeId bot);
  void do_takedown(std::size_t phase_index);
  NodeId pick_victim(std::size_t phase_index,
                     const std::vector<NodeId>& honest);
  /// Recomputes an adaptive phase's score table from the live graph.
  void refresh_ranking(std::size_t phase_index);

  // Self-rescheduling event chains (each guards against the horizon).
  void arm_join(SimTime t);
  void arm_leave(SimTime t);
  void arm_session_leave(NodeId bot, SimTime t);
  void arm_takedown(std::size_t phase_index, SimTime t);
  void arm_refresh(std::size_t phase_index, SimTime t);
  void arm_soap(std::size_t phase_index, SimTime t);
  void arm_round(SimTime t);
  void arm_snapshot(SimTime t);

  void take_snapshot();
  MetricsSnapshot compute_snapshot();

  /// Forwards to the trace tap (no-op without one).
  void emit(TraceEventKind kind, std::uint64_t a, std::uint64_t b = 0);

  /// Exponential inter-arrival gap for a Poisson process of `per_hour`
  /// events per simulated hour, clamped to >= 1 ms.
  SimDuration exp_gap(double per_hour);

  ScenarioSpec spec_;
  SnapshotSink& sink_;
  TraceSink* trace_;  // optional event tap; may be nullptr
  Rng rng_;          // campaign dynamics: churn, victims, SOAP, overlay
  Rng metrics_rng_;  // metric sampling only; cannot perturb the run
  sim::Simulator sim_;
  core::OverlayNetwork net_;
  core::DdsrEngine ddsr_;
  StructuralTracker tracker_;  // after net_: attaches to its graph
  /// spec_.attacks plus the wave plan compiled to absolute windows;
  /// indices >= wave_base_ are waves.
  std::vector<AttackPhase> phases_;
  std::size_t wave_base_ = 0;
  std::vector<std::uint64_t> wave_takedowns_;  // one slot per wave
  std::vector<SoapPhaseState> soap_;       // one slot per phases_ entry
  std::vector<AdaptiveState> adaptive_;    // one slot per phases_ entry
  CampaignCounters counters_;
  MetricsSnapshot last_;
  std::size_t events_executed_ = 0;
  bool ran_ = false;
};

}  // namespace onion::scenario
