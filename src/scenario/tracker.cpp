#include "scenario/tracker.hpp"

#include "graph/union_find.hpp"

namespace onion::scenario {

using graph::NodeId;

MetricsSnapshot sweep_structural(const core::OverlayNetwork& net,
                                 bool degree_histogram) {
  MetricsSnapshot s;
  const graph::Graph& g = net.graph();
  const std::size_t cap = g.capacity();

  // One pass over the slot table: alive counts, honest degree histogram,
  // and union-find over honest-honest edges — O((n+m)·α(n)) total.
  graph::UnionFind uf(cap);
  std::uint64_t degree_sum = 0;
  for (NodeId u = 0; u < cap; ++u) {
    if (!g.alive(u)) continue;
    if (!net.honest(u)) {
      ++s.sybil_alive;
      continue;
    }
    ++s.honest_alive;
    const std::size_t d = g.degree(u);
    degree_sum += d;
    if (degree_histogram) {
      if (s.degree_histogram.size() <= d)
        s.degree_histogram.resize(d + 1, 0);
      ++s.degree_histogram[d];
    }
    for (const NodeId v : g.neighbors(u))
      if (v > u && net.honest(v)) {
        ++s.honest_edges;
        uf.unite(u, v);
      }
  }

  if (s.honest_alive > 0) {
    std::vector<std::uint32_t> comp_size(cap, 0);
    for (NodeId u = 0; u < cap; ++u) {
      if (!g.alive(u) || !net.honest(u)) continue;
      const std::uint32_t size = ++comp_size[uf.find(u)];
      if (size == 1) ++s.components;
      if (size > s.largest_component) s.largest_component = size;
    }
    s.largest_fraction = static_cast<double>(s.largest_component) /
                         static_cast<double>(s.honest_alive);
    s.average_degree = static_cast<double>(degree_sum) /
                       static_cast<double>(s.honest_alive);
  }
  return s;
}

StructuralTracker::StructuralTracker(core::OverlayNetwork& net)
    : net_(net), graph_(net.graph_mut()) {
  graph_.set_observer(this);  // throws if another observer is attached
  base_epoch_ = graph_.mutation_epoch();

  // Absorb the current state: the one full pass this tracker ever pays.
  const std::size_t cap = graph_.capacity();
  dc_.reset(cap);
  honest_set_.ensure_size(cap);
  for (NodeId u = 0; u < cap; ++u) {
    if (!graph_.alive(u)) continue;
    if (!net_.honest(u)) {
      ++sybil_alive_;
      continue;
    }
    ++honest_alive_;
    dc_.insert_vertex(u);
    honest_set_.set(u);
    const std::size_t d = graph_.degree(u);
    degree_sum_ += d;
    if (histogram_.size() <= d) histogram_.resize(d + 1, 0);
    ++histogram_[d];
  }
  // Edges need both endpoints tracked, hence the second pass.
  for (NodeId u = 0; u < cap; ++u) {
    if (!graph_.alive(u) || !net_.honest(u)) continue;
    for (const NodeId v : graph_.neighbors(u))
      if (v > u && net_.honest(v)) {
        ++honest_edges_;
        dc_.insert_edge(u, v);
      }
  }
}

StructuralTracker::~StructuralTracker() { graph_.set_observer(nullptr); }

void StructuralTracker::shift_histogram(std::size_t from, std::size_t to) {
  if (from != kNoBucket) {
    ONION_ENSURES_MSG(from < histogram_.size() && histogram_[from] > 0,
                      "degree bucket " << from << " is empty or out of "
                                       << "range (histogram size "
                                       << histogram_.size() << ")");
    --histogram_[from];
  }
  if (to != kNoBucket) {
    if (histogram_.size() <= to) histogram_.resize(to + 1, 0);
    ++histogram_[to];
  }
  // Keep the sweep's encoding invariant — the vector ends at the highest
  // populated bucket — so fill() can copy it verbatim. Draining the top
  // bucket (e.g. taking down the unique max-degree node) trims here, once,
  // instead of on every snapshot.
  while (!histogram_.empty() && histogram_.back() == 0) histogram_.pop_back();
}

void StructuralTracker::on_node_added(NodeId u) {
  ++events_seen_;
  dc_.ensure_capacity(graph_.capacity());
  honest_set_.ensure_size(graph_.capacity());
  if (net_.honest(u)) {
    ++honest_alive_;
    shift_histogram(kNoBucket, 0);
    dc_.insert_vertex(u);
    honest_set_.set(u);
  } else {
    ++sybil_alive_;
  }
}

void StructuralTracker::on_node_removed(NodeId u) {
  ++events_seen_;
  if (net_.honest(u)) {
    // The graph detaches every incident edge before this fires, so the
    // node sits in the degree-0 bucket — and in a singleton component —
    // by now.
    --honest_alive_;
    shift_histogram(0, kNoBucket);
    dc_.remove_vertex(u);
    honest_set_.clear(u);
  } else {
    --sybil_alive_;
  }
}

void StructuralTracker::on_edge_added(NodeId u, NodeId v) {
  ++events_seen_;
  const bool hu = net_.honest(u);
  const bool hv = net_.honest(v);
  if (hu) {
    ++degree_sum_;
    const std::size_t d = graph_.degree(u);
    shift_histogram(d - 1, d);
  }
  if (hv) {
    ++degree_sum_;
    const std::size_t d = graph_.degree(v);
    shift_histogram(d - 1, d);
  }
  if (hu && hv) {
    ++honest_edges_;
    dc_.insert_edge(u, v);
  }
}

void StructuralTracker::on_edge_removed(NodeId u, NodeId v) {
  ++events_seen_;
  const bool hu = net_.honest(u);
  const bool hv = net_.honest(v);
  if (hu) {
    --degree_sum_;
    const std::size_t d = graph_.degree(u);
    shift_histogram(d + 1, d);
  }
  if (hv) {
    --degree_sum_;
    const std::size_t d = graph_.degree(v);
    shift_histogram(d + 1, d);
  }
  if (hu && hv) {
    --honest_edges_;
    // The replacement-path search settles the split (or proves there is
    // none) right now — no dirty flag, no deferred rebuild.
    dc_.remove_edge(u, v);
  }
}

void StructuralTracker::fill(MetricsSnapshot& s, bool with_histogram) {
  // Any mutation this tracker did not observe breaks every counter; the
  // epoch makes that loud instead of silently wrong.
  ONION_ENSURES_MSG(graph_.mutation_epoch() == base_epoch_ + events_seen_,
                    "missed mutations: graph epoch "
                        << graph_.mutation_epoch() << " != base "
                        << base_epoch_ << " + observed " << events_seen_);
  s.honest_alive = honest_alive_;
  s.sybil_alive = sybil_alive_;
  s.honest_edges = honest_edges_;
  if (honest_alive_ > 0) {
    s.components = dc_.components();
    s.largest_component = dc_.largest_component();
    s.largest_fraction = static_cast<double>(s.largest_component) /
                         static_cast<double>(honest_alive_);
    s.average_degree = static_cast<double>(degree_sum_) /
                       static_cast<double>(honest_alive_);
  }
  if (with_histogram) s.degree_histogram = histogram_;
}

}  // namespace onion::scenario
