#include "scenario/trace_io.hpp"

#include <cstdio>
#include <utility>

#include "common/check.hpp"

namespace onion::scenario::trace_io {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw wire::WireError("trace: " + what);
}

/// Converts ByteReader underflow into a WireError naming the region, so
/// a truncated payload reports *where* decoding fell off the end.
template <typename Fn>
auto decode_payload(const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const std::out_of_range& e) {
    bad(std::string(what) + ": " + e.what());
  }
}

// Bools travel as full canonical words: one convention repo-wide, and a
// flipped bit anywhere in the word still decodes to "true" — the
// integrity digest, not the codec, is what detects corruption.
void put_bool(Bytes& out, bool v) { put_u64(out, v ? 1 : 0); }
bool get_bool(ByteReader& r) { return r.u64() != 0; }

std::size_t get_size(ByteReader& r) {
  return static_cast<std::size_t>(r.u64());
}

void put_session(Bytes& out, const SessionSpec& s) {
  put_u64(out, static_cast<std::uint64_t>(s.model));
  put_f64(out, s.mean_hours);
  put_f64(out, s.pareto_alpha);
  put_f64(out, s.lognormal_sigma);
  put_f64(out, s.min_hours);
  put_f64(out, s.max_hours);
}

SessionSpec get_session(ByteReader& r) {
  SessionSpec s;
  const std::uint64_t model = r.u64();
  if (model > static_cast<std::uint64_t>(SessionModel::LogNormal))
    bad("unknown SessionModel value " + std::to_string(model));
  s.model = static_cast<SessionModel>(model);
  s.mean_hours = r.f64();
  s.pareto_alpha = r.f64();
  s.lognormal_sigma = r.f64();
  s.min_hours = r.f64();
  s.max_hours = r.f64();
  return s;
}

void put_phase(Bytes& out, const AttackPhase& p) {
  put_u64(out, static_cast<std::uint64_t>(p.kind));
  put_u64(out, p.start);
  put_u64(out, p.stop);
  put_f64(out, p.takedowns_per_hour);
  put_bool(out, p.heal);
  put_u64(out, p.betweenness_pivots);
  put_u64(out, static_cast<std::uint64_t>(p.rank));
  put_u64(out, p.refresh_period);
  put_u64(out, p.soap_tick);
  put_u64(out, p.soap_rounds_per_tick);
}

AttackPhase get_phase(ByteReader& r) {
  AttackPhase p;
  const std::uint64_t kind = r.u64();
  if (kind > static_cast<std::uint64_t>(AttackKind::AdaptiveTakedown))
    bad("unknown AttackKind value " + std::to_string(kind));
  p.kind = static_cast<AttackKind>(kind);
  p.start = r.u64();
  p.stop = r.u64();
  p.takedowns_per_hour = r.f64();
  p.heal = get_bool(r);
  p.betweenness_pivots = get_size(r);
  const std::uint64_t rank = r.u64();
  if (rank > static_cast<std::uint64_t>(RankMetric::Degree))
    bad("unknown RankMetric value " + std::to_string(rank));
  p.rank = static_cast<RankMetric>(rank);
  p.refresh_period = r.u64();
  p.soap_tick = r.u64();
  p.soap_rounds_per_tick = get_size(r);
  return p;
}

/// Minimal RAII stdio handle for the reader's streaming passes.
class File {
 public:
  explicit File(const std::string& path)
      : f_(std::fopen(path.c_str(), "rb")) {
    if (f_ == nullptr) bad("cannot open " + path);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }

  void seek(std::size_t pos) {
    if (std::fseek(f_, static_cast<long>(pos), SEEK_SET) != 0)
      bad("seek failed");
  }

  std::size_t size() {
    if (std::fseek(f_, 0, SEEK_END) != 0) bad("seek failed");
    const long end = std::ftell(f_);
    if (end < 0) bad("tell failed");
    return static_cast<std::size_t>(end);
  }

  void read_exact(std::uint8_t* dst, std::size_t n) {
    if (std::fread(dst, 1, n, f_) != n)
      bad("unexpected end of file (truncated frame)");
  }

 private:
  std::FILE* f_;
};

/// Reads the frame starting at `pos` (which must end by `limit`) and
/// returns its validated payload. The length word is sanity-checked
/// against the region *before* allocating, so a corrupted length cannot
/// provoke a giant allocation — it reports as a malformed frame.
Bytes read_frame_payload(File& f, std::uint64_t magic, std::size_t pos,
                         std::size_t limit, std::size_t* frame_bytes) {
  const std::size_t overhead =
      wire::kFrameHeaderBytes + wire::kFrameDigestBytes;
  if (limit < pos || limit - pos < overhead)
    bad("frame header overruns the file region");
  Bytes frame(wire::kFrameHeaderBytes);
  f.seek(pos);
  f.read_exact(frame.data(), frame.size());
  // Only the length word is consumed here; magic/version/digest are
  // wire::unframe's job once the whole frame is in memory.
  const std::uint64_t payload_len =
      read_be64(BytesView(frame.data() + 16, 8));
  if (payload_len > limit - pos - overhead)
    bad("frame length " + std::to_string(payload_len) +
        " overruns the file region");
  const std::size_t body =
      static_cast<std::size_t>(payload_len) + wire::kFrameDigestBytes;
  frame.resize(wire::kFrameHeaderBytes + body);
  f.read_exact(frame.data() + wire::kFrameHeaderBytes, body);
  *frame_bytes = frame.size();
  return wire::unframe(magic, frame);
}

}  // namespace

Bytes serialize(const ScenarioSpec& spec) {
  Bytes out;
  put_u64(out, spec.seed);
  put_u64(out, spec.initial_size);
  put_u64(out, spec.degree);
  put_u64(out, spec.horizon);
  put_f64(out, spec.churn.joins_per_hour);
  put_f64(out, spec.churn.leaves_per_hour);
  put_bool(out, spec.churn.heal_on_leave);
  put_bool(out, spec.churn.session_leaves);
  put_session(out, spec.churn.session);
  put_u64(out, spec.attacks.size());
  for (const AttackPhase& p : spec.attacks) put_phase(out, p);
  put_u64(out, spec.waves.start);
  put_u64(out, spec.waves.waves.size());
  for (const AttackWave& w : spec.waves.waves) {
    put_phase(out, w.attack);
    put_u64(out, w.duration);
    put_u64(out, w.quiet_after);
  }
  put_u64(out, spec.defense.rate_limit_per_round);
  put_f64(out, spec.defense.pow_base_cost);
  put_f64(out, spec.defense.pow_growth);
  put_u64(out, spec.defense.round);
  put_bool(out, spec.defense.charge_healing);
  put_u64(out, spec.metrics.period);
  put_bool(out, spec.metrics.degree_histogram);
  put_u64(out, spec.metrics.diameter_sweeps);
  return out;
}

ScenarioSpec deserialize_spec(ByteReader& r) {
  ScenarioSpec spec;
  spec.seed = r.u64();
  spec.initial_size = get_size(r);
  spec.degree = get_size(r);
  spec.horizon = r.u64();
  spec.churn.joins_per_hour = r.f64();
  spec.churn.leaves_per_hour = r.f64();
  spec.churn.heal_on_leave = get_bool(r);
  spec.churn.session_leaves = get_bool(r);
  spec.churn.session = get_session(r);
  spec.attacks.resize(get_size(r));
  for (AttackPhase& p : spec.attacks) p = get_phase(r);
  spec.waves.start = r.u64();
  spec.waves.waves.resize(get_size(r));
  for (AttackWave& w : spec.waves.waves) {
    w.attack = get_phase(r);
    w.duration = r.u64();
    w.quiet_after = r.u64();
  }
  spec.defense.rate_limit_per_round = get_size(r);
  spec.defense.pow_base_cost = r.f64();
  spec.defense.pow_growth = r.f64();
  spec.defense.round = r.u64();
  spec.defense.charge_healing = get_bool(r);
  spec.metrics.period = r.u64();
  spec.metrics.degree_histogram = get_bool(r);
  spec.metrics.diameter_sweeps = get_size(r);
  return spec;
}

Bytes serialize(const TraceHeader& header) {
  Bytes out = serialize(header.spec);
  put_u64(out, header.initial_nodes.size());
  for (const graph::NodeId u : header.initial_nodes) put_u64(out, u);
  return out;
}

TraceHeader deserialize_header(BytesView payload) {
  return decode_payload("header payload", [&] {
    ByteReader r(payload);
    TraceHeader h;
    h.spec = deserialize_spec(r);
    h.initial_nodes.resize(get_size(r));
    for (graph::NodeId& u : h.initial_nodes)
      u = static_cast<graph::NodeId>(r.u64());
    if (!r.done()) bad("header payload: trailing bytes");
    return h;
  });
}

Bytes serialize(const TraceFooter& footer) {
  Bytes out;
  out.reserve(kFooterPayloadBytes);
  put_u64(out, footer.event_count);
  put_u64(out, footer.snapshot_count);
  put_u64(out, footer.chunk_count);
  out.insert(out.end(), footer.event_digest.begin(),
             footer.event_digest.end());
  return out;
}

TraceFooter deserialize_footer(BytesView payload) {
  return decode_payload("footer payload", [&] {
    ByteReader r(payload);
    TraceFooter f;
    f.event_count = r.u64();
    f.snapshot_count = r.u64();
    f.chunk_count = r.u64();
    const BytesView digest = r.raw(f.event_digest.size());
    std::copy(digest.begin(), digest.end(), f.event_digest.begin());
    if (!r.done()) bad("footer payload: trailing bytes");
    return f;
  });
}

TraceWriter::TraceWriter(std::string path, TraceWriterConfig config)
    : config_(config), writer_(std::move(path)) {
  ONION_EXPECTS(config_.chunk_records > 0);
}

void TraceWriter::on_begin(const ScenarioSpec& spec,
                           const std::vector<graph::NodeId>& initial) {
  ONION_EXPECTS(!began_);  // one campaign per trace file
  began_ = true;
  const Bytes framed =
      wire::frame(kHeaderMagic, serialize(TraceHeader{spec, initial}));
  writer_.append(framed);
}

void TraceWriter::on_event(const CampaignEvent& e) {
  ONION_EXPECTS(began_ && !finished_);
  const Bytes encoded = scenario::serialize(e);
  event_hasher_.update(encoded);
  chunk_.push_back(kEventTag);
  append(chunk_, encoded);
  ++events_;
  if (++chunk_records_ >= config_.chunk_records) flush_chunk();
}

void TraceWriter::on_snapshot(const MetricsSnapshot& s) {
  ONION_EXPECTS(began_ && !finished_);
  const Bytes encoded = scenario::serialize(s);
  chunk_.push_back(kSnapshotTag);
  put_u64(chunk_, encoded.size());
  append(chunk_, encoded);
  ++snapshots_;
  if (++chunk_records_ >= config_.chunk_records) flush_chunk();
}

void TraceWriter::flush_chunk() {
  if (chunk_.empty()) return;
  writer_.append(wire::frame(kChunkMagic, chunk_));
  chunk_.clear();
  chunk_records_ = 0;
  ++chunks_;
}

void TraceWriter::finish() {
  ONION_EXPECTS(began_ && !finished_);
  flush_chunk();
  TraceFooter footer;
  footer.event_count = events_;
  footer.snapshot_count = snapshots_;
  footer.chunk_count = chunks_;
  footer.event_digest = event_hasher_.finalize();
  const Bytes framed = wire::frame(kFooterMagic, serialize(footer));
  ONION_ENSURES(framed.size() == kFooterFrameBytes);
  writer_.append(framed);
  writer_.commit();
  fingerprint_ = to_hex(
      BytesView(footer.event_digest.data(), footer.event_digest.size()));
  finished_ = true;
}

const std::string& TraceWriter::fingerprint() const {
  ONION_EXPECTS(finished_);
  return fingerprint_;
}

TraceReader::TraceReader(std::string path) : path_(std::move(path)) {
  File f(path_);
  file_bytes_ = f.size();
  if (file_bytes_ < kFooterFrameBytes)
    bad("file too small for a trace footer (" +
        std::to_string(file_bytes_) + " bytes)");
  // Footer first: it is fixed-size, so truncation anywhere in the file
  // shifts real bytes out of the footer window and fails right here.
  std::size_t frame_bytes = 0;
  footer_ = deserialize_footer(
      read_frame_payload(f, kFooterMagic, file_bytes_ - kFooterFrameBytes,
                         file_bytes_, &frame_bytes));
  header_ = deserialize_header(read_frame_payload(
      f, kHeaderMagic, 0, file_bytes_ - kFooterFrameBytes, &frame_bytes));
  chunks_begin_ = frame_bytes;
}

std::uint64_t TraceReader::for_each_record(
    const std::function<void(std::uint8_t tag, BytesView body)>& fn) const {
  File f(path_);
  // Re-derive the region end from the live file, not the cached size:
  // the constructor's footer stays authoritative for the *counts*, and
  // any post-open resize surfaces as a frame/count mismatch below.
  const std::size_t limit = f.size() - kFooterFrameBytes;
  std::size_t pos = chunks_begin_;
  std::uint64_t chunks = 0;
  std::uint64_t events = 0;
  std::uint64_t snapshots = 0;
  while (pos < limit) {
    std::size_t frame_bytes = 0;
    const Bytes payload =
        read_frame_payload(f, kChunkMagic, pos, limit, &frame_bytes);
    pos += frame_bytes;
    ++chunks;
    decode_payload("chunk payload", [&] {
      ByteReader r(payload);
      while (!r.done()) {
        const std::uint8_t tag = r.raw(1)[0];
        if (tag == kEventTag) {
          ++events;
          fn(tag, r.raw(25));  // serialize(CampaignEvent) is 25 bytes
        } else if (tag == kSnapshotTag) {
          ++snapshots;
          fn(tag, r.raw(static_cast<std::size_t>(r.u64())));
        } else {
          bad("unknown record tag " + std::to_string(tag));
        }
      }
    });
  }
  if (chunks != footer_.chunk_count || events != footer_.event_count ||
      snapshots != footer_.snapshot_count)
    bad("record counts disagree with the footer (chunks " +
        std::to_string(chunks) + "/" + std::to_string(footer_.chunk_count) +
        ", events " + std::to_string(events) + "/" +
        std::to_string(footer_.event_count) + ", snapshots " +
        std::to_string(snapshots) + "/" +
        std::to_string(footer_.snapshot_count) + ")");
  return chunks;
}

void TraceReader::for_each_event(
    const std::function<void(const CampaignEvent&)>& fn) const {
  for_each_record([&](std::uint8_t tag, BytesView body) {
    if (tag != kEventTag) return;
    ByteReader r(body);
    CampaignEvent e;
    e.at = r.u64();
    e.kind = static_cast<TraceEventKind>(r.raw(1)[0]);
    e.a = r.u64();
    e.b = r.u64();
    fn(e);
  });
}

void TraceReader::for_each_snapshot(
    const std::function<void(const MetricsSnapshot&)>& fn) const {
  for_each_record([&](std::uint8_t tag, BytesView body) {
    if (tag != kSnapshotTag) return;
    fn(wire::deserialize_snapshot(body));
  });
}

std::string TraceReader::fingerprint() const {
  crypto::Sha256 hasher;
  for_each_record([&](std::uint8_t tag, BytesView body) {
    // An event's record body IS serialize(CampaignEvent), so hashing it
    // directly reproduces CampaignTrace::fingerprint() byte-for-byte.
    if (tag == kEventTag) hasher.update(body);
  });
  const crypto::Sha256Digest digest = hasher.finalize();
  if (digest != footer_.event_digest)
    bad("event digest disagrees with the footer");
  return to_hex(BytesView(digest.data(), digest.size()));
}

}  // namespace onion::scenario::trace_io
