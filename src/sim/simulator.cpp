#include "sim/simulator.hpp"

#include "common/check.hpp"
#include "common/logging.hpp"

namespace onion::sim {

void Simulator::schedule_at(SimTime t, EventFn fn) {
  ONION_EXPECTS(t >= now_);
  ONION_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn), /*daemon=*/false});
  ++live_pending_;
}

void Simulator::schedule_daemon_at(SimTime t, EventFn fn) {
  ONION_EXPECTS(t >= now_);
  ONION_EXPECTS(fn != nullptr);
  queue_.push(Event{t, next_seq_++, std::move(fn), /*daemon=*/true});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because pop() immediately discards the slot.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  if (!event.daemon) --live_pending_;
  now_ = event.time;
  event.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && live_pending_ > 0 && step()) ++executed;
  ONION_ENSURES(live_pending_ == 0 || executed == max_events);
  if (live_pending_ > 0) {
    // A capped run is an event storm, not convergence — say so.
    ONION_LOG(Warn) << "Simulator::run stopped at max_events=" << max_events
                    << " with " << live_pending_
                    << " live events still pending (t=" << now_ << ")";
  }
  return executed;
}

std::size_t Simulator::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty() &&
         queue_.top().time <= deadline) {
    step();
    ++executed;
  }
  const bool capped = !queue_.empty() && queue_.top().time <= deadline;
  if (capped) {
    // Do NOT fast-forward: events remain queued before the deadline, and
    // jumping past them would make now() move backwards on the next step().
    ONION_LOG(Warn) << "Simulator::run_until stopped at max_events="
                    << max_events << " before reaching deadline=" << deadline
                    << " (t=" << now_ << ", pending=" << queue_.size() << ")";
  } else if (now_ < deadline) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace onion::sim
