// Discrete-event simulation engine. Single-threaded, deterministic:
// events at equal timestamps fire in scheduling order (a monotone sequence
// number breaks ties), so a given seed always reproduces the same run —
// the property every experiment in this repository leans on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace onion::sim {

/// Virtual-time event scheduler and dispatcher.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t`. Precondition: t >= now().
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay`.
  void schedule_in(SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules a *daemon* event at absolute time `t`: housekeeping (e.g.
  /// an hourly consensus tick) that should run while real work is pending
  /// but must not keep run() alive on its own — mirroring daemon threads.
  void schedule_daemon_at(SimTime t, EventFn fn);

  /// Schedules a daemon event after `delay`.
  void schedule_daemon_in(SimDuration delay, EventFn fn) {
    schedule_daemon_at(now_ + delay, std::move(fn));
  }

  /// Runs until no *non-daemon* events remain; returns the number
  /// executed. Daemon events fire while they precede live work, but a
  /// queue holding only daemons terminates the run. Guards against
  /// runaway event storms via `max_events`.
  std::size_t run(std::size_t max_events = 100'000'000);

  /// Runs all events with time <= deadline, then advances the clock to
  /// exactly `deadline`. Returns the number executed. If `max_events` caps
  /// the run a warning is logged and the clock stays at the last executed
  /// event (never jumping past still-queued work), keeping time monotone.
  std::size_t run_until(SimTime deadline,
                        std::size_t max_events = 100'000'000);

  /// Runs the next `span` of virtual time: run_until(now() + span). The
  /// scenario engine advances campaigns phase by phase with this.
  std::size_t run_for(SimDuration span,
                      std::size_t max_events = 100'000'000) {
    return run_until(now_ + span, max_events);
  }

  /// Executes the single earliest event; false if none pending.
  bool step();

  /// Events currently queued (daemons included).
  std::size_t pending() const { return queue_.size(); }

  /// Non-daemon events currently queued; run() exits when this hits 0.
  std::size_t pending_live() const { return live_pending_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;
    bool daemon = false;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_pending_ = 0;
};

/// Link-latency model: base plus uniform jitter, sampled per message.
/// Defaults approximate a Tor circuit hop (hundreds of milliseconds).
struct LatencyModel {
  SimDuration base = 200 * kMillisecond;
  SimDuration jitter = 100 * kMillisecond;

  SimDuration sample(Rng& rng) const {
    return base + (jitter > 0 ? rng.uniform(jitter + 1) : 0);
  }
};

}  // namespace onion::sim
