// Undirected graph with stable node identifiers and node deletion — the
// substrate for every overlay experiment in the paper's Section V. Node
// slots are never reused: deleting node 7 leaves a tombstone, so
// "nodes deleted" sweeps (Figures 4–6) can index metrics by original ID.
//
// Representation: adjacency lists as unsorted vectors. Overlay degrees in
// the paper are tiny (5–15 and pruned back down), so O(deg) membership
// scans beat any set structure in both time and memory.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace onion::graph {

/// Node identifier: a stable index into the graph's slot table.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
constexpr NodeId kInvalidNode = ~NodeId{0};

/// Observer of graph mutations. Every callback fires *after* the mutation
/// has been applied, so liveness, degrees, and adjacency reflect the new
/// state. remove_node() is decomposed into one on_edge_removed per
/// incident edge followed by on_node_removed (the node is degree-0 by
/// then), so an observer only ever has to understand four primitives.
/// Observers must not mutate the graph from inside a callback.
class MutationObserver {
 public:
  virtual ~MutationObserver() = default;
  virtual void on_node_added(NodeId u) = 0;
  virtual void on_node_removed(NodeId u) = 0;
  virtual void on_edge_added(NodeId u, NodeId v) = 0;
  virtual void on_edge_removed(NodeId u, NodeId v) = 0;
};

/// Mutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Creates `n` alive, isolated nodes with IDs 0..n-1.
  explicit Graph(std::size_t n = 0);

  /// Copies carry the topology but never the observer: a copy is a new
  /// graph nobody has attached to yet (incremental trackers hold per-
  /// instance state that would be nonsense against the copy). Moves
  /// require both sides unobserved — an attached observer references
  /// this exact instance, so transferring it would dangle.
  Graph(const Graph& other);
  Graph& operator=(const Graph& other);
  Graph(Graph&& other);
  Graph& operator=(Graph&& other);

  /// Appends a fresh alive node and returns its ID (used by SOAP clone
  /// injection and SuperOnion virtual-node resurrection).
  NodeId add_node();

  /// Pre-sizes the slot tables for `nodes` slots (capacity hint only;
  /// no nodes are created). Lets 500k-node builds skip the vector
  /// doubling-and-copy cycles.
  void reserve(std::size_t nodes) {
    adjacency_.reserve(nodes);
    alive_.reserve(nodes);
  }

  /// Number of node slots ever created (alive + deleted).
  std::size_t capacity() const { return adjacency_.size(); }

  /// Number of alive nodes.
  std::size_t num_alive() const { return num_alive_; }

  /// Number of edges between alive nodes.
  std::size_t num_edges() const { return num_edges_; }

  bool alive(NodeId u) const {
    return u < alive_.size() && alive_[u] != 0;
  }

  /// Degree of an alive node.
  std::size_t degree(NodeId u) const {
    ONION_EXPECTS(alive(u));
    return adjacency_[u].size();
  }

  /// Adjacency list of an alive node (unspecified order).
  const std::vector<NodeId>& neighbors(NodeId u) const {
    ONION_EXPECTS(alive(u));
    return adjacency_[u];
  }

  /// True iff the edge {u,v} exists. Preconditions: both alive.
  bool has_edge(NodeId u, NodeId v) const;

  /// Adds {u,v}; returns false (and changes nothing) if the edge exists or
  /// u == v. Preconditions: both alive.
  bool add_edge(NodeId u, NodeId v);

  /// Adds {u,v} without the O(deg) duplicate scan. Preconditions: both
  /// alive, u != v, and the edge is known absent (callers such as the
  /// DDSR clique repair track membership externally; a duplicate here
  /// would corrupt the edge counter and every degree-based metric).
  void add_edge_unchecked(NodeId u, NodeId v);

  /// Removes {u,v}; returns false if absent. Preconditions: both alive.
  bool remove_edge(NodeId u, NodeId v);

  /// Deletes a node: detaches all incident edges and tombstones the slot.
  /// Precondition: alive(u).
  void remove_node(NodeId u);

  /// IDs of all alive nodes, ascending.
  std::vector<NodeId> alive_nodes() const;

  /// Sum of degrees / number of alive nodes (0 if empty).
  double average_degree() const;

  /// --- mutation-observer / epoch hook --------------------------------
  /// At most one observer at a time; pass nullptr to detach. Attaching
  /// over a live observer is a contract violation (two incremental
  /// trackers on one graph would each miss the other's baseline).
  void set_observer(MutationObserver* observer) {
    ONION_EXPECTS(observer == nullptr || observer_ == nullptr);
    observer_ = observer;
  }
  MutationObserver* observer() const { return observer_; }

  /// Count of mutations ever applied: +1 per node added, edge added, or
  /// edge removed, and +degree+1 for remove_node (its edge detachments
  /// count individually). Monotone; lets an observer assert it has seen
  /// every change since it attached.
  std::uint64_t mutation_epoch() const { return epoch_; }

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<std::uint8_t> alive_;
  std::size_t num_alive_ = 0;
  std::size_t num_edges_ = 0;
  std::uint64_t epoch_ = 0;
  MutationObserver* observer_ = nullptr;
};

}  // namespace onion::graph
