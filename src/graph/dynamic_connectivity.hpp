// Fully-dynamic connectivity over a subset of a graph's node slots:
// component count, every component's size, and the largest component are
// maintained exactly under arbitrary interleavings of vertex/edge
// insertions AND deletions — no global rebuild, ever.
//
// The algorithm is a spanning-structure-free variant of the replacement-
// edge search at the heart of Holm–de Lichtenberg–Thorup: every vertex
// carries a component label, merges relabel the smaller side (weighted
// union, so each vertex is relabeled O(log n) times across a growth
// phase), and an edge deletion runs a *bidirectional* breadth-first
// search from both endpoints over the live adjacency. If the frontiers
// meet, a replacement path exists and nothing changes; if one side
// exhausts first, exactly that side — which is the smaller reachable
// set, to within one alternation step — becomes a new component and is
// relabeled. The deletion cost is therefore O(meeting distance) when
// the edge is cycle-covered (the overwhelmingly common case in a
// degree-banded DDSR overlay, where clique repair keeps alternate paths
// two hops long) and O(smaller split side) when it is a bridge — the
// output-sensitive optimum, since the smaller side must be relabeled
// anyway. This is not the HDT polylog *worst case* (an adversarial
// bridge chain costs O(n) per cut; tests/dynconn_test.cpp drives
// exactly that sequence), but it is differential-tested against
// from-scratch union-find sweeps over randomized add/delete
// interleavings, which is the contract the scenario tracker needs.
//
// Memory layout is struct-of-arrays over node slots with a pooled
// half-edge adjacency (one flat pool, free-list reuse, no per-vertex
// heap blocks), so a 500k–1M node overlay costs a handful of flat
// vectors instead of a million tiny allocations. Determinism: no
// randomness, no unordered-container iteration — adjacency iterates in
// pool order, component sizes live in an ordered std::map — so every
// derived quantity is a pure function of the operation sequence.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/check.hpp"
#include "graph/graph.hpp"

namespace onion::graph {

/// Deletion-tolerant incremental connectivity over tracked vertices.
/// Vertices are node-slot indices (graph::NodeId); the caller chooses
/// which slots participate (the scenario tracker feeds honest alive
/// bots only) and mirrors every mutation in, in order.
class DynamicConnectivity {
 public:
  explicit DynamicConnectivity(std::size_t capacity = 0) {
    reset(capacity);
  }

  /// Re-initializes to `capacity` empty (untracked) slots. Reuses every
  /// internal buffer — a resync never allocates once the structure has
  /// been warmed to its high-water capacity.
  void reset(std::size_t capacity);

  /// Grows the slot table (new slots untracked). No-op if already big
  /// enough; never shrinks.
  void ensure_capacity(std::size_t capacity);

  /// Starts tracking slot `u` as a fresh singleton component.
  /// Precondition: u < capacity() and not tracked.
  void insert_vertex(NodeId u);

  /// Stops tracking `u`. Precondition: tracked and isolated (callers
  /// remove incident edges first — exactly the order in which
  /// graph::Graph::remove_node notifies an observer).
  void remove_vertex(NodeId u);

  /// Adds edge {u,v} between tracked vertices; merges their components
  /// if distinct (smaller side relabeled). Precondition: both tracked,
  /// u != v, edge not present.
  void insert_edge(NodeId u, NodeId v);

  /// Removes edge {u,v}; splits the component if {u,v} was a bridge
  /// (the smaller reachable side is relabeled). Precondition: the edge
  /// was inserted and not yet removed.
  void remove_edge(NodeId u, NodeId v);

  /// --- queries (all O(1) except same_component's two loads) ----------
  std::size_t capacity() const { return label_.size(); }
  bool tracked(NodeId u) const {
    return u < label_.size() && label_[u] != kNil;
  }
  /// Tracked-edge degree of a tracked vertex.
  std::size_t degree(NodeId u) const {
    ONION_EXPECTS(tracked(u));
    return degree_[u];
  }
  std::uint64_t num_vertices() const { return num_vertices_; }
  std::uint64_t num_edges() const { return num_edges_; }
  std::uint64_t components() const { return components_; }
  /// Size of the largest component (0 when no vertex is tracked).
  std::uint64_t largest_component() const {
    return size_counts_.empty() ? 0 : size_counts_.rbegin()->first;
  }
  std::uint64_t component_size(NodeId u) const {
    ONION_EXPECTS(tracked(u));
    return comp_size_[label_[u]];
  }
  bool same_component(NodeId u, NodeId v) const {
    ONION_EXPECTS(tracked(u) && tracked(v));
    return label_[u] == label_[v];
  }

  /// --- introspection (tests and benches) -----------------------------
  /// Component merges performed by insert_edge.
  std::uint64_t merges() const { return merges_; }
  /// Bridge deletions that split a component.
  std::uint64_t splits() const { return splits_; }
  /// Total vertices expanded by replacement-path searches — the real
  /// cost of all remove_edge calls so far (tests bound this; the bench
  /// reports it per deletion window).
  std::uint64_t search_steps() const { return search_steps_; }

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  std::uint32_t alloc_component();
  void free_component(std::uint32_t c);
  void add_size(std::uint32_t s);
  void drop_size(std::uint32_t s);
  /// Detaches the u->v half-edge from u's list; returns its pool index.
  std::uint32_t detach_half(NodeId u, NodeId v);
  /// Relabels `members` (the exhausted BFS side) into a fresh component
  /// split off from `old_comp`.
  void split_component(const std::vector<NodeId>& members,
                       std::uint32_t old_comp);
  /// One BFS expansion step; returns true when the other side was hit.
  bool expand(std::vector<NodeId>& queue, std::size_t& head,
              std::uint8_t side);

  // Slot tables (struct-of-arrays; index = NodeId).
  std::vector<std::uint32_t> label_;        // component id, kNil = untracked
  std::vector<std::uint32_t> degree_;       // tracked-edge degree
  std::vector<std::uint32_t> head_half_;    // first half-edge, kNil = none
  std::vector<std::uint32_t> member_next_;  // circular component roster
  std::vector<std::uint32_t> member_prev_;
  std::vector<std::uint32_t> visit_mark_;   // BFS epoch stamp
  std::vector<std::uint8_t> visit_side_;    // which frontier claimed it

  // Pooled half-edge adjacency: half-edges 2e and 2e+1 are twins
  // (twin(h) == h ^ 1); deleted pairs go on a free list for reuse.
  std::vector<std::uint32_t> half_to_;
  std::vector<std::uint32_t> half_next_;
  std::vector<std::uint32_t> free_pairs_;

  // Component records (index = component id, free-listed).
  std::vector<std::uint32_t> comp_size_;
  std::vector<std::uint32_t> comp_head_;  // any member, kNil when free
  std::vector<std::uint32_t> comp_free_;

  /// size -> number of components of that size. Ordered map: largest()
  /// is rbegin, and iteration (none today) would be deterministic.
  std::map<std::uint32_t, std::uint32_t> size_counts_;

  std::uint64_t num_vertices_ = 0;
  std::uint64_t num_edges_ = 0;
  std::uint64_t components_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t splits_ = 0;
  std::uint64_t search_steps_ = 0;
  std::uint32_t epoch_ = 0;

  // Replacement-search scratch, reused across remove_edge calls.
  std::vector<NodeId> queue_a_;
  std::vector<NodeId> queue_b_;
};

}  // namespace onion::graph
