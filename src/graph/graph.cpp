#include "graph/graph.hpp"

#include <algorithm>

namespace onion::graph {

Graph::Graph(std::size_t n)
    : adjacency_(n), alive_(n, 1), num_alive_(n) {}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  alive_.push_back(1);
  ++num_alive_;
  return static_cast<NodeId>(adjacency_.size() - 1);
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  ONION_EXPECTS(alive(u) && alive(v));
  // Scan the shorter list.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId target =
      adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(list.begin(), list.end(), target) != list.end();
}

bool Graph::add_edge(NodeId u, NodeId v) {
  ONION_EXPECTS(alive(u) && alive(v));
  if (u == v || has_edge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  return true;
}

void Graph::add_edge_unchecked(NodeId u, NodeId v) {
  ONION_EXPECTS(alive(u) && alive(v));
  ONION_EXPECTS(u != v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  ONION_EXPECTS(alive(u) && alive(v));
  auto& lu = adjacency_[u];
  const auto it = std::find(lu.begin(), lu.end(), v);
  if (it == lu.end()) return false;
  // Swap-erase: adjacency order is unspecified, so O(1) removal is free.
  *it = lu.back();
  lu.pop_back();
  auto& lv = adjacency_[v];
  const auto it2 = std::find(lv.begin(), lv.end(), u);
  ONION_ENSURES(it2 != lv.end());
  *it2 = lv.back();
  lv.pop_back();
  --num_edges_;
  return true;
}

void Graph::remove_node(NodeId u) {
  ONION_EXPECTS(alive(u));
  for (const NodeId v : adjacency_[u]) {
    auto& lv = adjacency_[v];
    const auto it = std::find(lv.begin(), lv.end(), u);
    ONION_ENSURES(it != lv.end());
    *it = lv.back();
    lv.pop_back();
    --num_edges_;
  }
  adjacency_[u].clear();
  adjacency_[u].shrink_to_fit();
  alive_[u] = 0;
  --num_alive_;
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u)
    if (alive_[u]) out.push_back(u);
  return out;
}

double Graph::average_degree() const {
  if (num_alive_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_alive_);
}

}  // namespace onion::graph
