#include "graph/graph.hpp"

#include <algorithm>

namespace onion::graph {

Graph::Graph(std::size_t n)
    : adjacency_(n), alive_(n, 1), num_alive_(n) {}

Graph::Graph(const Graph& other)
    : adjacency_(other.adjacency_),
      alive_(other.alive_),
      num_alive_(other.num_alive_),
      num_edges_(other.num_edges_),
      epoch_(other.epoch_) {}

Graph& Graph::operator=(const Graph& other) {
  // Overwriting an observed graph would silently invalidate everything
  // the observer has accumulated; detach first.
  ONION_EXPECTS(observer_ == nullptr);
  adjacency_ = other.adjacency_;
  alive_ = other.alive_;
  num_alive_ = other.num_alive_;
  num_edges_ = other.num_edges_;
  epoch_ = other.epoch_;
  return *this;
}

Graph::Graph(Graph&& other) {
  // An attached observer holds a reference to `other` itself; moving the
  // pointer here would leave it notifying against a gutted graph.
  ONION_EXPECTS(other.observer_ == nullptr);
  adjacency_ = std::move(other.adjacency_);
  alive_ = std::move(other.alive_);
  num_alive_ = other.num_alive_;
  num_edges_ = other.num_edges_;
  epoch_ = other.epoch_;
  other.num_alive_ = 0;  // the source stays a valid (empty) graph
  other.num_edges_ = 0;
  other.epoch_ = 0;
}

Graph& Graph::operator=(Graph&& other) {
  ONION_EXPECTS(observer_ == nullptr && other.observer_ == nullptr);
  if (this == &other) return *this;
  adjacency_ = std::move(other.adjacency_);
  alive_ = std::move(other.alive_);
  num_alive_ = other.num_alive_;
  num_edges_ = other.num_edges_;
  epoch_ = other.epoch_;
  other.num_alive_ = 0;
  other.num_edges_ = 0;
  other.epoch_ = 0;
  return *this;
}

NodeId Graph::add_node() {
  adjacency_.emplace_back();
  alive_.push_back(1);
  ++num_alive_;
  ++epoch_;
  const NodeId id = static_cast<NodeId>(adjacency_.size() - 1);
  if (observer_ != nullptr) observer_->on_node_added(id);
  return id;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  ONION_EXPECTS_MSG(alive(u) && alive(v), "u=" << u << " v=" << v);
  // Scan the shorter list.
  const auto& list =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u]
                                                   : adjacency_[v];
  const NodeId target =
      adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(list.begin(), list.end(), target) != list.end();
}

bool Graph::add_edge(NodeId u, NodeId v) {
  ONION_EXPECTS_MSG(alive(u) && alive(v), "u=" << u << " v=" << v);
  if (u == v || has_edge(u, v)) return false;
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  ++epoch_;
  if (observer_ != nullptr) observer_->on_edge_added(u, v);
  return true;
}

void Graph::add_edge_unchecked(NodeId u, NodeId v) {
  ONION_EXPECTS_MSG(alive(u) && alive(v), "u=" << u << " v=" << v);
  ONION_EXPECTS_MSG(u != v, "self-loop on node " << u);
  ONION_DEBUG_EXPECTS(!has_edge(u, v));
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  ++num_edges_;
  ++epoch_;
  if (observer_ != nullptr) observer_->on_edge_added(u, v);
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  ONION_EXPECTS_MSG(alive(u) && alive(v), "u=" << u << " v=" << v);
  auto& lu = adjacency_[u];
  const auto it = std::find(lu.begin(), lu.end(), v);
  if (it == lu.end()) return false;
  // Swap-erase: adjacency order is unspecified, so O(1) removal is free.
  *it = lu.back();
  lu.pop_back();
  auto& lv = adjacency_[v];
  const auto it2 = std::find(lv.begin(), lv.end(), u);
  ONION_ENSURES_MSG(it2 != lv.end(),
                    "asymmetric adjacency: " << u << " lists " << v
                                             << " but not vice versa");
  *it2 = lv.back();
  lv.pop_back();
  --num_edges_;
  ++epoch_;
  if (observer_ != nullptr) observer_->on_edge_removed(u, v);
  return true;
}

void Graph::remove_node(NodeId u) {
  ONION_EXPECTS_MSG(alive(u), "node " << u << " is not alive");
  // Detach edge by edge (not in one bulk clear) so the observer sees a
  // consistent graph — correct degrees on both endpoints — at every
  // on_edge_removed. The final adjacency state is identical to a bulk
  // detach: each neighbor's list gets one order-independent swap-erase.
  auto& lu = adjacency_[u];
  while (!lu.empty()) {
    const NodeId v = lu.back();
    lu.pop_back();
    auto& lv = adjacency_[v];
    const auto it = std::find(lv.begin(), lv.end(), u);
    ONION_ENSURES_MSG(it != lv.end(),
                      "asymmetric adjacency: " << u << " lists " << v
                                               << " but not vice versa");
    *it = lv.back();
    lv.pop_back();
    --num_edges_;
    ++epoch_;
    if (observer_ != nullptr) observer_->on_edge_removed(u, v);
  }
  lu.shrink_to_fit();
  alive_[u] = 0;
  --num_alive_;
  ++epoch_;
  if (observer_ != nullptr) observer_->on_node_removed(u);
}

std::vector<NodeId> Graph::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(num_alive_);
  for (NodeId u = 0; u < alive_.size(); ++u)
    if (alive_[u]) out.push_back(u);
  return out;
}

double Graph::average_degree() const {
  if (num_alive_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(num_alive_);
}

}  // namespace onion::graph
