// Neighbors-of-Neighbor greedy routing (Manku, Naor & Wieder, STOC'04 —
// the paper's reference [51] and the intellectual basis of the DDSR
// construction, Section IV-C). A node routing toward a target does not
// hop to its best *neighbor*; it looks one step further and hops toward
// the best *neighbor-of-neighbor*. The paper leans on the cited result
// that this lookahead makes greedy routing asymptotically optimal; here
// it matters because messages between bots traverse exactly the
// knowledge each bot really has — its NoN table — so measured NoN path
// lengths are the honest cost model for C&C propagation.
//
// Distances are measured in an identifier ring (as in the DHT setting
// of the original result): each node carries a point on a 64-bit ring,
// and greedy progress means shrinking ring distance to the target.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::graph {

/// Ring identifiers for NoN routing experiments.
using RingId = std::uint64_t;

/// Clockwise-or-counterclockwise distance between two ring points.
std::uint64_t ring_distance(RingId a, RingId b);

/// Outcome of one greedy route attempt.
struct RouteResult {
  bool delivered = false;
  /// Hops actually taken (graph edges traversed).
  std::size_t hops = 0;
  /// Nodes visited, source first; target last iff delivered.
  std::vector<NodeId> path;
};

/// Plain greedy routing: hop to the neighbor closest to the target;
/// stop when no neighbor improves on the current node (local minimum)
/// or the target is reached.
RouteResult route_greedy(const Graph& g, const std::vector<RingId>& ids,
                         NodeId source, NodeId target,
                         std::size_t max_hops = 256);

/// NoN (one-step lookahead) greedy routing: consider every
/// neighbor-of-neighbor w reachable via neighbor v; hop to the v whose
/// best w minimizes ring distance to the target. Falls back to plain
/// neighbor progress when lookahead finds nothing better. This is the
/// algorithm whose route lengths the paper's reference proves
/// asymptotically optimal.
RouteResult route_non_greedy(const Graph& g,
                             const std::vector<RingId>& ids,
                             NodeId source, NodeId target,
                             std::size_t max_hops = 256);

/// Assigns deterministic pseudo-random ring IDs to all node slots.
std::vector<RingId> assign_ring_ids(const Graph& g, std::uint64_t seed);

/// Mean delivered-path hop count over `trials` random (source, target)
/// pairs; `non` selects lookahead vs plain greedy. Returns (mean hops,
/// delivery rate).
std::pair<double, double> mean_route_length(const Graph& g,
                                            const std::vector<RingId>& ids,
                                            std::size_t trials, bool non,
                                            Rng& rng);

}  // namespace onion::graph
