// Random graph generators. The paper's overlays start as k-regular graphs
// ("we simulate the node deletion process in a k-regular graph,
// k = 5, 10, 15, of 5000 nodes" — Section V-B).
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::graph {

/// Uniform-ish random simple k-regular graph on n nodes via the
/// configuration model with edge-swap repair of clashes. Requirements:
/// n > k, and n*k even; throws std::invalid_argument otherwise.
Graph random_regular(std::size_t n, std::size_t k, Rng& rng);

/// G(n, p) Erdős–Rényi graph (used by tests and ablations).
Graph erdos_renyi(std::size_t n, double p, Rng& rng);

}  // namespace onion::graph
