#include "graph/non_routing.hpp"

#include <algorithm>

namespace onion::graph {

std::uint64_t ring_distance(RingId a, RingId b) {
  const std::uint64_t forward = b - a;   // wraps mod 2^64
  const std::uint64_t backward = a - b;  // wraps mod 2^64
  return std::min(forward, backward);
}

namespace {

/// The neighbor of `u` minimizing ring distance to `target_id`;
/// kInvalidNode when `u` has no neighbors.
NodeId best_neighbor(const Graph& g, const std::vector<RingId>& ids,
                     NodeId u, RingId target_id) {
  NodeId best = kInvalidNode;
  std::uint64_t best_d = ~std::uint64_t{0};
  for (const NodeId v : g.neighbors(u)) {
    const std::uint64_t d = ring_distance(ids[v], target_id);
    if (d < best_d) {
      best_d = d;
      best = v;
    }
  }
  return best;
}

}  // namespace

RouteResult route_greedy(const Graph& g, const std::vector<RingId>& ids,
                         NodeId source, NodeId target,
                         std::size_t max_hops) {
  ONION_EXPECTS(g.alive(source) && g.alive(target));
  ONION_EXPECTS(ids.size() >= g.capacity());
  RouteResult result;
  NodeId at = source;
  result.path.push_back(at);
  while (result.hops < max_hops) {
    if (at == target) {
      result.delivered = true;
      return result;
    }
    const NodeId next = best_neighbor(g, ids, at, ids[target]);
    if (next == kInvalidNode) return result;
    // Greedy stops at a local minimum: no neighbor strictly improves.
    if (ring_distance(ids[next], ids[target]) >=
        ring_distance(ids[at], ids[target]))
      return result;
    at = next;
    ++result.hops;
    result.path.push_back(at);
  }
  return result;
}

RouteResult route_non_greedy(const Graph& g,
                             const std::vector<RingId>& ids,
                             NodeId source, NodeId target,
                             std::size_t max_hops) {
  ONION_EXPECTS(g.alive(source) && g.alive(target));
  ONION_EXPECTS(ids.size() >= g.capacity());
  RouteResult result;
  NodeId at = source;
  result.path.push_back(at);
  while (result.hops < max_hops) {
    if (at == target) {
      result.delivered = true;
      return result;
    }
    // One-step lookahead: pick the neighbor v whose own best option
    // (v itself, or any w in N(v)) gets closest to the target. The hop
    // taken is still a single edge — lookahead uses only knowledge a
    // DDSR bot already has (its NoN table).
    NodeId best_v = kInvalidNode;
    std::uint64_t best_score = ~std::uint64_t{0};
    for (const NodeId v : g.neighbors(at)) {
      if (v == target) {
        best_v = v;
        best_score = 0;
        break;
      }
      std::uint64_t score = ring_distance(ids[v], ids[target]);
      for (const NodeId w : g.neighbors(v))
        score = std::min(score, ring_distance(ids[w], ids[target]));
      if (score < best_score) {
        best_score = score;
        best_v = v;
      }
    }
    if (best_v == kInvalidNode) return result;
    // Progress rule: the lookahead score must beat the current node's
    // own distance, else we are at a (lookahead) local minimum.
    if (best_score >= ring_distance(ids[at], ids[target])) return result;
    at = best_v;
    ++result.hops;
    result.path.push_back(at);
  }
  return result;
}

std::vector<RingId> assign_ring_ids(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<RingId> ids(g.capacity());
  for (auto& id : ids) id = rng.next_u64();
  return ids;
}

std::pair<double, double> mean_route_length(const Graph& g,
                                            const std::vector<RingId>& ids,
                                            std::size_t trials, bool non,
                                            Rng& rng) {
  const std::vector<NodeId> nodes = g.alive_nodes();
  ONION_EXPECTS(nodes.size() >= 2);
  std::size_t delivered = 0;
  std::size_t hop_sum = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const NodeId s = rng.pick(nodes);
    NodeId d = rng.pick(nodes);
    while (d == s) d = rng.pick(nodes);
    const RouteResult r = non ? route_non_greedy(g, ids, s, d)
                              : route_greedy(g, ids, s, d);
    if (r.delivered) {
      ++delivered;
      hop_sum += r.hops;
    }
  }
  const double rate =
      static_cast<double>(delivered) / static_cast<double>(trials);
  const double mean =
      delivered == 0 ? 0.0
                     : static_cast<double>(hop_sum) /
                           static_cast<double>(delivered);
  return {mean, rate};
}

}  // namespace onion::graph
