#include "graph/metrics.hpp"

#include <algorithm>

#include "graph/union_find.hpp"

namespace onion::graph {

void bfs_distances_into(const Graph& g, NodeId source, BfsScratch& scratch) {
  ONION_EXPECTS(g.alive(source));
  scratch.dist.assign(g.capacity(), kUnreachable);
  scratch.queue.clear();
  scratch.dist[source] = 0;
  scratch.queue.push_back(source);
  for (std::size_t head = 0; head < scratch.queue.size(); ++head) {
    const NodeId u = scratch.queue[head];
    for (const NodeId v : g.neighbors(u)) {
      if (scratch.dist[v] == kUnreachable) {
        scratch.dist[v] = scratch.dist[u] + 1;
        scratch.queue.push_back(v);
      }
    }
  }
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  BfsScratch scratch;
  bfs_distances_into(g, source, scratch);
  return std::move(scratch.dist);
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.capacity(), kUnreachable);
  std::vector<NodeId> queue;
  for (NodeId start = 0; start < g.capacity(); ++start) {
    if (!g.alive(start) || out.label[start] != kUnreachable) continue;
    const auto comp = static_cast<std::uint32_t>(out.count++);
    out.sizes.push_back(0);
    out.label[start] = comp;
    queue.clear();
    queue.push_back(start);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const NodeId u = queue[head];
      ++out.sizes[comp];
      for (const NodeId v : g.neighbors(u)) {
        if (out.label[v] == kUnreachable) {
          out.label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

Components components_union_find(const Graph& g) {
  Components out;
  const std::size_t cap = g.capacity();
  out.label.assign(cap, kUnreachable);
  UnionFind uf(cap);
  for (NodeId u = 0; u < cap; ++u) {
    if (!g.alive(u)) continue;
    for (const NodeId v : g.neighbors(u))
      if (v > u) uf.unite(u, v);
  }
  // Dense labels in ascending order of each component's smallest slot,
  // matching the BFS labelling exactly.
  std::vector<std::uint32_t> root_label(cap, kUnreachable);
  for (NodeId u = 0; u < cap; ++u) {
    if (!g.alive(u)) continue;
    const std::size_t root = uf.find(u);
    if (root_label[root] == kUnreachable) {
      root_label[root] = static_cast<std::uint32_t>(out.count++);
      out.sizes.push_back(0);
    }
    out.label[u] = root_label[root];
    ++out.sizes[out.label[u]];
  }
  return out;
}

std::size_t Components::largest() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

bool is_connected(const Graph& g) {
  return g.num_alive() <= 1 || components_union_find(g).count == 1;
}

std::size_t first_partition_index(const Graph& pristine,
                                  const std::vector<NodeId>& order) {
  const std::size_t cap = pristine.capacity();
  std::vector<std::uint8_t> present(cap, 0);
  for (NodeId u = 0; u < cap; ++u)
    present[u] = pristine.alive(u) ? 1 : 0;
  for (const NodeId u : order) {
    ONION_EXPECTS(u < cap && present[u]);  // distinct alive nodes only
    present[u] = 0;
  }

  // Survivor state after all |order| deletions.
  UnionFind uf(cap);
  std::size_t present_count = 0;
  std::size_t sets = 0;  // disjoint sets among present nodes
  for (NodeId u = 0; u < cap; ++u)
    if (present[u]) {
      ++present_count;
      ++sets;
    }
  for (NodeId u = 0; u < cap; ++u) {
    if (!present[u]) continue;
    for (const NodeId v : pristine.neighbors(u))
      if (v > u && present[v] && uf.unite(u, v)) --sets;
  }

  // Walk the deletions in reverse, re-inserting one node at a time;
  // record whether the survivor set after c deletions is partitioned.
  std::vector<std::uint8_t> disconnected(order.size() + 1, 0);
  disconnected.back() = present_count >= 2 && sets > 1;
  for (std::size_t i = order.size(); i-- > 0;) {
    const NodeId u = order[i];
    present[u] = 1;
    ++present_count;
    ++sets;
    for (const NodeId v : pristine.neighbors(u))
      if (present[v] && uf.unite(u, v)) --sets;
    disconnected[i] = present_count >= 2 && sets > 1;
  }

  for (std::size_t c = 1; c <= order.size(); ++c)
    if (disconnected[c]) return c;
  return order.size();
}

namespace {
// Closeness of u given its BFS distances; see header for normalization.
double closeness_from_distances(const std::vector<std::uint32_t>& dist,
                                std::size_t alive_count) {
  if (alive_count <= 1) return 0.0;
  std::uint64_t total = 0;
  std::size_t reachable = 0;  // nodes other than u itself
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable || d == 0) continue;
    total += d;
    ++reachable;
  }
  if (reachable == 0 || total == 0) return 0.0;
  const double r = static_cast<double>(reachable);
  const double n_minus_1 = static_cast<double>(alive_count - 1);
  return (r / n_minus_1) * (r / static_cast<double>(total));
}
}  // namespace

double closeness_centrality(const Graph& g, NodeId u) {
  return closeness_from_distances(bfs_distances(g, u), g.num_alive());
}

double average_closeness_exact(const Graph& g) {
  const auto nodes = g.alive_nodes();
  if (nodes.empty()) return 0.0;
  BfsScratch scratch;
  double sum = 0.0;
  for (const NodeId u : nodes) {
    bfs_distances_into(g, u, scratch);
    sum += closeness_from_distances(scratch.dist, g.num_alive());
  }
  return sum / static_cast<double>(nodes.size());
}

double average_closeness_sampled(const Graph& g, std::size_t samples,
                                 Rng& rng) {
  const auto nodes = g.alive_nodes();
  if (nodes.empty()) return 0.0;
  if (samples >= nodes.size()) return average_closeness_exact(g);
  const auto chosen = rng.sample(nodes, samples);
  BfsScratch scratch;
  double sum = 0.0;
  for (const NodeId u : chosen) {
    bfs_distances_into(g, u, scratch);
    sum += closeness_from_distances(scratch.dist, g.num_alive());
  }
  return sum / static_cast<double>(chosen.size());
}

namespace {
// Brandes workspace: BFS state plus path counts and dependencies. The
// visit order doubles as the BFS queue, so the backward accumulation
// just walks it in reverse.
struct BrandesScratch {
  std::vector<std::uint32_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<NodeId> order;
};

// One Brandes source: accumulates scale * dependency(s, w) into bc[w].
void brandes_accumulate(const Graph& g, NodeId s, double scale,
                        BrandesScratch& scr, std::vector<double>& bc) {
  const std::size_t cap = g.capacity();
  scr.dist.assign(cap, kUnreachable);
  scr.sigma.assign(cap, 0.0);
  scr.delta.assign(cap, 0.0);
  scr.order.clear();
  scr.dist[s] = 0;
  scr.sigma[s] = 1.0;
  scr.order.push_back(s);
  for (std::size_t head = 0; head < scr.order.size(); ++head) {
    const NodeId u = scr.order[head];
    for (const NodeId v : g.neighbors(u)) {
      if (scr.dist[v] == kUnreachable) {
        scr.dist[v] = scr.dist[u] + 1;
        scr.order.push_back(v);
      }
      if (scr.dist[v] == scr.dist[u] + 1) scr.sigma[v] += scr.sigma[u];
    }
  }
  for (std::size_t i = scr.order.size(); i-- > 1;) {
    const NodeId w = scr.order[i];
    for (const NodeId v : g.neighbors(w))
      if (scr.dist[v] + 1 == scr.dist[w])
        scr.delta[v] += scr.sigma[v] / scr.sigma[w] * (1.0 + scr.delta[w]);
    bc[w] += scale * scr.delta[w];
  }
}
}  // namespace

std::vector<double> betweenness_exact(const Graph& g) {
  std::vector<double> bc(g.capacity(), 0.0);
  BrandesScratch scr;
  for (NodeId s = 0; s < g.capacity(); ++s)
    if (g.alive(s)) brandes_accumulate(g, s, 1.0, scr, bc);
  // Each unordered pair was counted from both endpoints.
  for (double& x : bc) x *= 0.5;
  return bc;
}

std::vector<double> betweenness_sampled(const Graph& g, std::size_t pivots,
                                        Rng& rng) {
  ONION_EXPECTS(pivots > 0);
  const auto nodes = g.alive_nodes();
  if (pivots >= nodes.size()) return betweenness_exact(g);
  std::vector<double> bc(g.capacity(), 0.0);
  const double scale = static_cast<double>(nodes.size()) /
                       static_cast<double>(pivots);
  BrandesScratch scr;
  for (const NodeId s : rng.sample(nodes, pivots))
    brandes_accumulate(g, s, scale, scr, bc);
  for (double& x : bc) x *= 0.5;
  return bc;
}

double degree_centrality(const Graph& g, NodeId u) {
  const std::size_t n = g.num_alive();
  if (n <= 1) return 0.0;
  return static_cast<double>(g.degree(u)) / static_cast<double>(n - 1);
}

double average_degree_centrality(const Graph& g) {
  const std::size_t n = g.num_alive();
  if (n <= 1) return 0.0;
  // Mean degree / (n-1); uses the edge counter instead of a node loop.
  return g.average_degree() / static_cast<double>(n - 1);
}

namespace {
// Farthest alive node and its distance from the given BFS result.
std::pair<NodeId, std::uint32_t> farthest(
    const std::vector<std::uint32_t>& dist) {
  NodeId best = kInvalidNode;
  std::uint32_t best_d = 0;
  for (NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] != kUnreachable && dist[v] >= best_d) {
      best_d = dist[v];
      best = v;
    }
  }
  return {best, best_d};
}
}  // namespace

std::size_t diameter_exact(const Graph& g) {
  const auto nodes = g.alive_nodes();
  if (nodes.size() <= 1) return 0;
  // Restrict to the largest component.
  const Components comps = connected_components(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  }
  std::uint32_t best = 0;
  BfsScratch scratch;
  for (const NodeId u : nodes) {
    if (comps.label[u] != target) continue;
    bfs_distances_into(g, u, scratch);
    best = std::max(best, farthest(scratch.dist).second);
  }
  return best;
}

std::size_t diameter_double_sweep(const Graph& g, std::size_t sweeps,
                                  Rng& rng) {
  if (g.num_alive() <= 1) return 0;
  // Match diameter_exact semantics: measure the largest component.
  const Components comps = components_union_find(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  }
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < g.capacity(); ++u)
    if (g.alive(u) && comps.label[u] == target) nodes.push_back(u);
  if (nodes.size() <= 1) return 0;
  std::uint32_t best = 0;
  BfsScratch scratch;
  for (std::size_t s = 0; s < sweeps; ++s) {
    const NodeId start = rng.pick(nodes);
    bfs_distances_into(g, start, scratch);
    const auto [far_node, d1] = farthest(scratch.dist);
    best = std::max(best, d1);
    if (far_node != kInvalidNode && far_node != start) {
      bfs_distances_into(g, far_node, scratch);
      best = std::max(best, farthest(scratch.dist).second);
    }
  }
  return best;
}

}  // namespace onion::graph
