#include "graph/metrics.hpp"

#include <algorithm>
#include <deque>

namespace onion::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  ONION_EXPECTS(g.alive(source));
  std::vector<std::uint32_t> dist(g.capacity(), kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.capacity(), kUnreachable);
  std::deque<NodeId> queue;
  for (NodeId start = 0; start < g.capacity(); ++start) {
    if (!g.alive(start) || out.label[start] != kUnreachable) continue;
    const auto comp = static_cast<std::uint32_t>(out.count++);
    out.sizes.push_back(0);
    out.label[start] = comp;
    queue.push_back(start);
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      ++out.sizes[comp];
      for (const NodeId v : g.neighbors(u)) {
        if (out.label[v] == kUnreachable) {
          out.label[v] = comp;
          queue.push_back(v);
        }
      }
    }
  }
  return out;
}

std::size_t Components::largest() const {
  if (sizes.empty()) return 0;
  return *std::max_element(sizes.begin(), sizes.end());
}

bool is_connected(const Graph& g) {
  return g.num_alive() <= 1 || connected_components(g).count == 1;
}

namespace {
// Closeness of u given its BFS distances; see header for normalization.
double closeness_from_distances(const std::vector<std::uint32_t>& dist,
                                std::size_t alive_count) {
  if (alive_count <= 1) return 0.0;
  std::uint64_t total = 0;
  std::size_t reachable = 0;  // nodes other than u itself
  for (const std::uint32_t d : dist) {
    if (d == kUnreachable || d == 0) continue;
    total += d;
    ++reachable;
  }
  if (reachable == 0 || total == 0) return 0.0;
  const double r = static_cast<double>(reachable);
  const double n_minus_1 = static_cast<double>(alive_count - 1);
  return (r / n_minus_1) * (r / static_cast<double>(total));
}
}  // namespace

double closeness_centrality(const Graph& g, NodeId u) {
  return closeness_from_distances(bfs_distances(g, u), g.num_alive());
}

double average_closeness_exact(const Graph& g) {
  const auto nodes = g.alive_nodes();
  if (nodes.empty()) return 0.0;
  double sum = 0.0;
  for (const NodeId u : nodes) sum += closeness_centrality(g, u);
  return sum / static_cast<double>(nodes.size());
}

double average_closeness_sampled(const Graph& g, std::size_t samples,
                                 Rng& rng) {
  const auto nodes = g.alive_nodes();
  if (nodes.empty()) return 0.0;
  if (samples >= nodes.size()) return average_closeness_exact(g);
  const auto chosen = rng.sample(nodes, samples);
  double sum = 0.0;
  for (const NodeId u : chosen) sum += closeness_centrality(g, u);
  return sum / static_cast<double>(chosen.size());
}

double degree_centrality(const Graph& g, NodeId u) {
  const std::size_t n = g.num_alive();
  if (n <= 1) return 0.0;
  return static_cast<double>(g.degree(u)) / static_cast<double>(n - 1);
}

double average_degree_centrality(const Graph& g) {
  const std::size_t n = g.num_alive();
  if (n <= 1) return 0.0;
  // Mean degree / (n-1); uses the edge counter instead of a node loop.
  return g.average_degree() / static_cast<double>(n - 1);
}

namespace {
// Farthest alive node and its distance from the given BFS result.
std::pair<NodeId, std::uint32_t> farthest(
    const std::vector<std::uint32_t>& dist) {
  NodeId best = kInvalidNode;
  std::uint32_t best_d = 0;
  for (NodeId v = 0; v < dist.size(); ++v) {
    if (dist[v] != kUnreachable && dist[v] >= best_d) {
      best_d = dist[v];
      best = v;
    }
  }
  return {best, best_d};
}
}  // namespace

std::size_t diameter_exact(const Graph& g) {
  const auto nodes = g.alive_nodes();
  if (nodes.size() <= 1) return 0;
  // Restrict to the largest component.
  const Components comps = connected_components(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  }
  std::uint32_t best = 0;
  for (const NodeId u : nodes) {
    if (comps.label[u] != target) continue;
    const auto dist = bfs_distances(g, u);
    best = std::max(best, farthest(dist).second);
  }
  return best;
}

std::size_t diameter_double_sweep(const Graph& g, std::size_t sweeps,
                                  Rng& rng) {
  if (g.num_alive() <= 1) return 0;
  // Match diameter_exact semantics: measure the largest component.
  const Components comps = connected_components(g);
  std::uint32_t target = 0;
  std::size_t best_size = 0;
  for (std::uint32_t c = 0; c < comps.count; ++c) {
    if (comps.sizes[c] > best_size) {
      best_size = comps.sizes[c];
      target = c;
    }
  }
  std::vector<NodeId> nodes;
  for (NodeId u = 0; u < g.capacity(); ++u)
    if (g.alive(u) && comps.label[u] == target) nodes.push_back(u);
  if (nodes.size() <= 1) return 0;
  std::uint32_t best = 0;
  for (std::size_t s = 0; s < sweeps; ++s) {
    const NodeId start = rng.pick(nodes);
    const auto first = bfs_distances(g, start);
    const auto [far_node, d1] = farthest(first);
    best = std::max(best, d1);
    if (far_node != kInvalidNode && far_node != start) {
      const auto second = bfs_distances(g, far_node);
      best = std::max(best, farthest(second).second);
    }
  }
  return best;
}

}  // namespace onion::graph
