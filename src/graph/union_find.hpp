// Disjoint-set forest with union by size and path halving. Used by the
// partition-threshold experiment (Figure 6) and by graph tests.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace onion::graph {

/// Union-find over indices 0..n-1.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  /// Re-initializes to `n` singleton elements, reusing the existing
  /// storage — unlike `uf = UnionFind(n)`, a warmed instance resets
  /// without touching the allocator (the micro bench's rebuild baseline
  /// depends on this to measure union time, not malloc time).
  void reset(std::size_t n) {
    parent_.resize(n);
    size_.assign(n, 1);
    std::iota(parent_.begin(), parent_.end(), 0);
    sets_ = n;
  }

  /// Appends one fresh singleton element and returns its index. Lets
  /// incremental users (the scenario StructuralTracker) grow the universe
  /// as graph slots are created instead of rebuilding.
  std::size_t add() {
    parent_.push_back(parent_.size());
    size_.push_back(1);
    ++sets_;
    return parent_.size() - 1;
  }

  /// Number of elements in the universe.
  std::size_t size() const { return parent_.size(); }

  /// Representative of x's set.
  std::size_t find(std::size_t x) {
    ONION_EXPECTS(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    --sets_;
    return true;
  }

  bool same(std::size_t a, std::size_t b) { return find(a) == find(b); }

  /// Number of disjoint sets over the FULL index range — every element
  /// of the universe counts, including slots a caller considers dead
  /// (graph tombstones, removed bots). Callers tracking a live subset
  /// must subtract their dead-singleton count (core::OverlayNetwork::
  /// honest_components does) or count components by live members only
  /// (scenario::sweep_structural does); reading num_sets() raw over a
  /// tombstoned slot table silently inflates the component count.
  std::size_t num_sets() const { return sets_; }

  /// Size of the set containing x.
  std::size_t set_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t sets_;
};

}  // namespace onion::graph
