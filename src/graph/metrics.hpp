// Graph metrics used in the paper's evaluation (Section V-B):
// closeness centrality, degree centrality, diameter, connected
// components. Exact variants serve tests and small graphs; sampled
// variants make the 5000–15000-node sweeps of Figures 4–6 tractable and
// are validated against the exact versions in the test suite.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::graph {

/// BFS distances from `source` to every node slot; kUnreachable for dead
/// or unreachable slots.
constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Connected-component labelling of alive nodes.
struct Components {
  /// Component index per slot (undefined for dead slots).
  std::vector<std::uint32_t> label;
  /// Number of components (0 for an empty graph).
  std::size_t count = 0;
  /// Size of each component.
  std::vector<std::size_t> sizes;

  std::size_t largest() const;
};
Components connected_components(const Graph& g);

/// True iff all alive nodes are mutually reachable (vacuously true for
/// 0 or 1 alive nodes).
bool is_connected(const Graph& g);

/// Closeness centrality of `u` in the paper's normalization,
///   C(u) = (n-1) / sum_v d(u,v),
/// generalized to disconnected graphs the way NetworkX does (the tool of
/// the paper's era): restrict to u's component and scale by its relative
/// size, C(u) = ((r-1)/(n-1)) * ((r-1)/sum_{v in comp} d(u,v)).
double closeness_centrality(const Graph& g, NodeId u);

/// Mean closeness over all alive nodes (exact; O(n·(n+m))).
double average_closeness_exact(const Graph& g);

/// Unbiased estimate of average closeness from `samples` uniformly chosen
/// source nodes (each sampled node's closeness is computed exactly).
/// Falls back to the exact mean when samples >= alive count.
double average_closeness_sampled(const Graph& g, std::size_t samples,
                                 Rng& rng);

/// Degree centrality of u: deg(u)/(n-1), n = alive nodes.
double degree_centrality(const Graph& g, NodeId u);

/// Mean degree centrality over alive nodes.
double average_degree_centrality(const Graph& g);

/// Exact diameter of the largest component (0 for <=1 alive node).
/// O(n·(n+m)) — use for tests and small graphs.
std::size_t diameter_exact(const Graph& g);

/// Diameter lower-bound estimate by repeated double sweeps: BFS from a
/// random alive node, then BFS from the farthest node found; `sweeps`
/// restarts, maximum taken. Exact on trees; empirically exact on the
/// random regular graphs used here (validated in tests).
std::size_t diameter_double_sweep(const Graph& g, std::size_t sweeps,
                                  Rng& rng);

}  // namespace onion::graph
