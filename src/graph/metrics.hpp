// Graph metrics used in the paper's evaluation (Section V-B):
// closeness centrality, degree centrality, betweenness, diameter,
// connected components. Exact variants serve tests and small graphs;
// sampled variants make the 5000–50000-node sweeps of Figures 4–6 and
// the scenario campaign engine tractable and are validated against the
// exact versions in the test suite. Hot-path entry points take a
// reusable scratch workspace so per-snapshot queries at campaign scale
// do not allocate.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::graph {

/// BFS distances from `source` to every node slot; kUnreachable for dead
/// or unreachable slots.
constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Reusable BFS workspace: the distance array and a flat FIFO queue.
/// One scratch amortizes every allocation across the thousands of BFS
/// runs a campaign snapshot sweep performs.
struct BfsScratch {
  std::vector<std::uint32_t> dist;
  std::vector<NodeId> queue;
};

/// BFS distances written into `scratch.dist` (same contract as
/// bfs_distances); no allocation once the scratch has grown to the
/// graph's capacity.
void bfs_distances_into(const Graph& g, NodeId source, BfsScratch& scratch);

/// Connected-component labelling of alive nodes.
struct Components {
  /// Component index per slot (undefined for dead slots).
  std::vector<std::uint32_t> label;
  /// Number of components (0 for an empty graph).
  std::size_t count = 0;
  /// Size of each component.
  std::vector<std::size_t> sizes;

  std::size_t largest() const;
};
Components connected_components(const Graph& g);

/// Connected components via union-find over the alive edges: same output
/// as connected_components (labels are assigned in ascending order of
/// each component's smallest slot), but O((n+m)·α(n)) with no BFS queue —
/// the fast path for per-snapshot connectivity at 10k–50k nodes.
Components components_union_find(const Graph& g);

/// True iff all alive nodes are mutually reachable (vacuously true for
/// 0 or 1 alive nodes).
bool is_connected(const Graph& g);

/// First deletion count c (1-based) at which removing order[0..c-1] from
/// `pristine` leaves two or more alive nodes that are mutually
/// disconnected; order.size() when no prefix partitions the survivors.
/// Processes the batch of deletions in reverse as union-find insertions,
/// so the whole sweep costs O((n+m)·α(n)) instead of one BFS per
/// deletion — this is what makes the Figure 6 partition-threshold sweep
/// and simultaneous-takedown campaigns cheap. Precondition: `order`
/// holds distinct alive nodes of `pristine`.
std::size_t first_partition_index(const Graph& pristine,
                                  const std::vector<NodeId>& order);

/// Closeness centrality of `u` in the paper's normalization,
///   C(u) = (n-1) / sum_v d(u,v),
/// generalized to disconnected graphs the way NetworkX does (the tool of
/// the paper's era): restrict to u's component and scale by its relative
/// size, C(u) = ((r-1)/(n-1)) * ((r-1)/sum_{v in comp} d(u,v)).
double closeness_centrality(const Graph& g, NodeId u);

/// Mean closeness over all alive nodes (exact; O(n·(n+m))).
double average_closeness_exact(const Graph& g);

/// Unbiased estimate of average closeness from `samples` uniformly chosen
/// source nodes (each sampled node's closeness is computed exactly).
/// Falls back to the exact mean when samples >= alive count.
double average_closeness_sampled(const Graph& g, std::size_t samples,
                                 Rng& rng);

/// Betweenness centrality per slot (Brandes' algorithm on unweighted
/// shortest paths), each unordered pair counted once; dead slots get 0.
/// O(n·(n+m)) — the exact fallback for small graphs and tests.
std::vector<double> betweenness_exact(const Graph& g);

/// Pivot-sampled betweenness: Brandes accumulation from `pivots`
/// uniformly chosen alive sources, contributions scaled by n/pivots
/// (unbiased). The top-decile ranking agrees with the exact computation
/// within tolerance (validated in the test suite), which is all the
/// centrality-takedown policies need. Falls back to the exact
/// computation when pivots >= alive count. Precondition: pivots > 0.
std::vector<double> betweenness_sampled(const Graph& g, std::size_t pivots,
                                        Rng& rng);

/// Degree centrality of u: deg(u)/(n-1), n = alive nodes.
double degree_centrality(const Graph& g, NodeId u);

/// Mean degree centrality over alive nodes.
double average_degree_centrality(const Graph& g);

/// Exact diameter of the largest component (0 for <=1 alive node).
/// O(n·(n+m)) — use for tests and small graphs.
std::size_t diameter_exact(const Graph& g);

/// Diameter lower-bound estimate by repeated double sweeps: BFS from a
/// random alive node, then BFS from the farthest node found; `sweeps`
/// restarts, maximum taken. Exact on trees; empirically exact on the
/// random regular graphs used here (validated in tests).
std::size_t diameter_double_sweep(const Graph& g, std::size_t sweeps,
                                  Rng& rng);

}  // namespace onion::graph
