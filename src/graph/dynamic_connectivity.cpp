#include "graph/dynamic_connectivity.hpp"

#include <algorithm>

namespace onion::graph {

void DynamicConnectivity::reset(std::size_t capacity) {
  label_.assign(capacity, kNil);
  degree_.assign(capacity, 0);
  head_half_.assign(capacity, kNil);
  member_next_.assign(capacity, kNil);
  member_prev_.assign(capacity, kNil);
  visit_mark_.assign(capacity, 0);
  visit_side_.assign(capacity, 0);
  half_to_.clear();
  half_next_.clear();
  free_pairs_.clear();
  comp_size_.clear();
  comp_head_.clear();
  comp_free_.clear();
  size_counts_.clear();
  num_vertices_ = 0;
  num_edges_ = 0;
  components_ = 0;
  merges_ = 0;
  splits_ = 0;
  search_steps_ = 0;
  epoch_ = 0;
  queue_a_.clear();
  queue_b_.clear();
}

void DynamicConnectivity::ensure_capacity(std::size_t capacity) {
  if (capacity <= label_.size()) return;
  label_.resize(capacity, kNil);
  degree_.resize(capacity, 0);
  head_half_.resize(capacity, kNil);
  member_next_.resize(capacity, kNil);
  member_prev_.resize(capacity, kNil);
  visit_mark_.resize(capacity, 0);
  visit_side_.resize(capacity, 0);
}

std::uint32_t DynamicConnectivity::alloc_component() {
  if (!comp_free_.empty()) {
    const std::uint32_t c = comp_free_.back();
    comp_free_.pop_back();
    return c;
  }
  const std::uint32_t c = static_cast<std::uint32_t>(comp_size_.size());
  comp_size_.push_back(0);
  comp_head_.push_back(kNil);
  return c;
}

void DynamicConnectivity::free_component(std::uint32_t c) {
  comp_size_[c] = 0;
  comp_head_[c] = kNil;
  comp_free_.push_back(c);
}

void DynamicConnectivity::add_size(std::uint32_t s) { ++size_counts_[s]; }

void DynamicConnectivity::drop_size(std::uint32_t s) {
  const auto it = size_counts_.find(s);
  ONION_ENSURES(it != size_counts_.end() && it->second > 0);
  if (--it->second == 0) size_counts_.erase(it);
}

void DynamicConnectivity::insert_vertex(NodeId u) {
  ONION_EXPECTS_MSG(u < label_.size() && label_[u] == kNil,
                    "u=" << u << " capacity=" << label_.size());
  const std::uint32_t c = alloc_component();
  comp_size_[c] = 1;
  comp_head_[c] = u;
  label_[u] = c;
  degree_[u] = 0;
  head_half_[u] = kNil;
  member_next_[u] = u;
  member_prev_[u] = u;
  ++num_vertices_;
  ++components_;
  add_size(1);
}

void DynamicConnectivity::remove_vertex(NodeId u) {
  ONION_EXPECTS(tracked(u));
  ONION_EXPECTS_MSG(degree_[u] == 0,
                    "u=" << u << " still has degree " << degree_[u]);
  const std::uint32_t c = label_[u];
  // Removing u's last edge already split it into a singleton (the u-side
  // frontier of the replacement search cannot expand), so the component
  // record is exactly {u}.
  ONION_ENSURES(comp_size_[c] == 1 && comp_head_[c] == u);
  drop_size(1);
  free_component(c);
  label_[u] = kNil;
  --components_;
  --num_vertices_;
}

void DynamicConnectivity::insert_edge(NodeId u, NodeId v) {
  ONION_EXPECTS_MSG(tracked(u) && tracked(v) && u != v,
                    "u=" << u << " v=" << v);
  // Carve a twin pair out of the pool (h even, twin = h|1).
  std::uint32_t h;
  if (!free_pairs_.empty()) {
    h = free_pairs_.back();
    free_pairs_.pop_back();
  } else {
    h = static_cast<std::uint32_t>(half_to_.size());
    half_to_.resize(h + 2);
    half_next_.resize(h + 2);
  }
  half_to_[h] = v;
  half_next_[h] = head_half_[u];
  head_half_[u] = h;
  half_to_[h + 1] = u;
  half_next_[h + 1] = head_half_[v];
  head_half_[v] = h + 1;
  ++degree_[u];
  ++degree_[v];
  ++num_edges_;

  std::uint32_t big = label_[u];
  std::uint32_t small = label_[v];
  if (big == small) return;  // closed a cycle — components unchanged
  if (comp_size_[big] < comp_size_[small]) std::swap(big, small);

  // Weighted union: relabel the smaller roster, then splice the two
  // circular member lists in O(1).
  const std::uint32_t start = comp_head_[small];
  std::uint32_t m = start;
  do {
    label_[m] = big;
    m = member_next_[m];
  } while (m != start);
  const std::uint32_t a = comp_head_[big];
  const std::uint32_t an = member_next_[a];
  const std::uint32_t bn = member_next_[start];
  member_next_[a] = bn;
  member_prev_[bn] = a;
  member_next_[start] = an;
  member_prev_[an] = start;

  drop_size(comp_size_[big]);
  drop_size(comp_size_[small]);
  comp_size_[big] += comp_size_[small];
  add_size(comp_size_[big]);
  free_component(small);
  --components_;
  ++merges_;
}

std::uint32_t DynamicConnectivity::detach_half(NodeId u, NodeId v) {
  std::uint32_t prev = kNil;
  for (std::uint32_t h = head_half_[u]; h != kNil;
       prev = h, h = half_next_[h]) {
    if (half_to_[h] != v) continue;
    if (prev == kNil)
      head_half_[u] = half_next_[h];
    else
      half_next_[prev] = half_next_[h];
    return h;
  }
  ONION_ENSURES_MSG(false, "edge " << u << "-" << v << " not present");
  return kNil;  // unreachable
}

bool DynamicConnectivity::expand(std::vector<NodeId>& queue,
                                 std::size_t& head, std::uint8_t side) {
  const NodeId x = queue[head++];
  ++search_steps_;
  for (std::uint32_t h = head_half_[x]; h != kNil; h = half_next_[h]) {
    const NodeId w = half_to_[h];
    if (visit_mark_[w] == epoch_) {
      if (visit_side_[w] != side) return true;  // frontiers met
      continue;
    }
    visit_mark_[w] = epoch_;
    visit_side_[w] = side;
    queue.push_back(w);
  }
  return false;
}

void DynamicConnectivity::split_component(const std::vector<NodeId>& members,
                                          std::uint32_t old_comp) {
  const std::uint32_t moved = static_cast<std::uint32_t>(members.size());
  const std::uint32_t old_total = comp_size_[old_comp];
  // The other frontier's seed is never claimed by the exhausted side, so
  // at least one member stays behind.
  ONION_ENSURES(moved < old_total);

  // Unlink the moved members from the old circular roster. A member's
  // next/prev pointers are repaired by earlier unlinks, so they always
  // reference nodes still on the list; the head pointer chases forward
  // until it settles on a survivor.
  for (const NodeId m : members) {
    const std::uint32_t n = member_next_[m];
    const std::uint32_t p = member_prev_[m];
    member_next_[p] = n;
    member_prev_[n] = p;
    if (comp_head_[old_comp] == m) comp_head_[old_comp] = n;
  }

  const std::uint32_t c = alloc_component();
  const std::size_t k = members.size();
  for (std::size_t i = 0; i < k; ++i) {
    const NodeId m = members[i];
    label_[m] = c;
    member_next_[m] = members[i + 1 == k ? 0 : i + 1];
    member_prev_[m] = members[i == 0 ? k - 1 : i - 1];
  }
  comp_head_[c] = members[0];
  comp_size_[c] = moved;
  comp_size_[old_comp] = old_total - moved;

  drop_size(old_total);
  add_size(moved);
  add_size(old_total - moved);
  ++components_;
  ++splits_;
}

void DynamicConnectivity::remove_edge(NodeId u, NodeId v) {
  ONION_EXPECTS_MSG(tracked(u) && tracked(v) && u != v,
                    "u=" << u << " v=" << v);
  const std::uint32_t hu = detach_half(u, v);
  const std::uint32_t hv = detach_half(v, u);
  ONION_ENSURES((hu ^ 1u) == hv);
  free_pairs_.push_back(hu & ~1u);
  --degree_[u];
  --degree_[v];
  --num_edges_;

  // Replacement-path search: alternate one-vertex BFS expansions from
  // both endpoints. Meeting ⇒ the edge was cycle-covered, nothing to do;
  // one side exhausting ⇒ it was a bridge and the exhausted (smaller, to
  // within one alternation) side becomes a new component.
  if (++epoch_ == 0) {  // epoch wrapped: invalidate stale marks
    std::fill(visit_mark_.begin(), visit_mark_.end(), 0u);
    epoch_ = 1;
  }
  queue_a_.clear();
  queue_b_.clear();
  queue_a_.push_back(u);
  visit_mark_[u] = epoch_;
  visit_side_[u] = 0;
  queue_b_.push_back(v);
  visit_mark_[v] = epoch_;
  visit_side_[v] = 1;
  std::size_t head_a = 0;
  std::size_t head_b = 0;
  while (true) {
    if (head_a == queue_a_.size()) {
      split_component(queue_a_, label_[u]);
      return;
    }
    if (expand(queue_a_, head_a, 0)) return;
    if (head_b == queue_b_.size()) {
      split_component(queue_b_, label_[v]);
      return;
    }
    if (expand(queue_b_, head_b, 1)) return;
  }
}

}  // namespace onion::graph
