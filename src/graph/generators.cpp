#include "graph/generators.hpp"

#include <stdexcept>
#include <utility>

namespace onion::graph {

namespace {

// One configuration-model attempt: pair up node stubs; clashing pairs
// (self-loops / duplicates) are resolved afterwards by edge swaps.
bool try_regular(Graph& g, std::size_t n, std::size_t k, Rng& rng) {
  std::vector<NodeId> stubs;
  stubs.reserve(n * k);
  for (NodeId u = 0; u < n; ++u)
    for (std::size_t c = 0; c < k; ++c) stubs.push_back(u);
  rng.shuffle(stubs);

  std::vector<std::pair<NodeId, NodeId>> clashes;
  for (std::size_t i = 0; i < stubs.size(); i += 2) {
    const NodeId u = stubs[i], v = stubs[i + 1];
    if (u == v || g.has_edge(u, v)) {
      clashes.emplace_back(u, v);
    } else {
      g.add_edge(u, v);
    }
  }

  // Repair each clash {u,v} by stealing a random compatible edge {a,b}:
  // replace it with {u,a} and {v,b}. Preserves all degrees.
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto rebuild_edges = [&] {
    edges.clear();
    for (NodeId u = 0; u < n; ++u)
      for (const NodeId v : g.neighbors(u))
        if (u < v) edges.emplace_back(u, v);
  };
  rebuild_edges();

  for (const auto& [u, v] : clashes) {
    bool fixed = false;
    for (int attempt = 0; attempt < 200 && !fixed; ++attempt) {
      if (edges.empty()) break;
      auto [a, b] =
          edges[static_cast<std::size_t>(rng.uniform(edges.size()))];
      if (rng.bernoulli(0.5)) std::swap(a, b);
      if (a == u || a == v || b == u || b == v) continue;
      if (g.has_edge(u, a) || g.has_edge(v, b)) continue;
      g.remove_edge(a, b);
      g.add_edge(u, a);
      g.add_edge(v, b);
      rebuild_edges();
      fixed = true;
    }
    if (!fixed) return false;
  }
  return true;
}

}  // namespace

Graph random_regular(std::size_t n, std::size_t k, Rng& rng) {
  if (k >= n) throw std::invalid_argument("random_regular: need k < n");
  if ((n * k) % 2 != 0)
    throw std::invalid_argument("random_regular: n*k must be even");

  for (int restart = 0; restart < 50; ++restart) {
    Graph g(n);
    if (try_regular(g, n, k, rng)) return g;
  }
  throw std::runtime_error("random_regular: generation failed repeatedly");
}

Graph erdos_renyi(std::size_t n, double p, Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  for (NodeId u = 0; u + 1 < n; ++u)
    for (NodeId v = u + 1; v < n; ++v)
      if (rng.bernoulli(p)) g.add_edge(u, v);
  return g;
}

}  // namespace onion::graph
