#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace onion {

std::size_t parallel_for_index(std::size_t count, std::size_t threads,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) return 0;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  threads = std::clamp<std::size_t>(threads, 1, count);

  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return 1;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  auto worker = [&](std::size_t slot) {
    try {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        fn(i);
      }
    } catch (...) {
      errors[slot] = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& error : errors)
    if (error) std::rethrow_exception(error);
  return threads;
}

}  // namespace onion
