// Precondition / invariant checking in the spirit of the Core Guidelines'
// Expects()/Ensures(). Violations are programming errors: they throw
// onion::ContractViolation so tests can assert on them, and the message
// carries the failing expression and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace onion {

/// Thrown when a precondition, postcondition, or invariant check fails.
/// Deriving from std::logic_error: these indicate bugs, not runtime
/// conditions a caller is expected to handle.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

[[noreturn]] inline void contract_fail_msg(const char* kind,
                                           const char* expr,
                                           const std::string& detail,
                                           const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " (" +
                          detail + ") at " + file + ":" +
                          std::to_string(line));
}
}  // namespace detail

}  // namespace onion

/// Precondition: the caller must guarantee `cond`.
#define ONION_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::onion::detail::contract_fail("precondition", #cond, __FILE__,        \
                                     __LINE__);                              \
  } while (false)

/// Postcondition / internal invariant: the implementation guarantees `cond`.
#define ONION_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::onion::detail::contract_fail("postcondition", #cond, __FILE__,       \
                                     __LINE__);                              \
  } while (false)

/// Formatted variants: `stream_expr` is an ostream chain evaluated
/// only on failure, so hot paths pay nothing for a rich message. A graph
/// contract can name the offending ids instead of just the expression:
///
///   ONION_EXPECTS_MSG(alive(u) && alive(v),
///                     "u=" << u << " v=" << v << " capacity=" << cap);
#define ONION_EXPECTS_MSG(cond, stream_expr)                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream onion_check_msg_;                                   \
      onion_check_msg_ << stream_expr;                                       \
      ::onion::detail::contract_fail_msg("precondition", #cond,              \
                                         onion_check_msg_.str(), __FILE__,   \
                                         __LINE__);                          \
    }                                                                        \
  } while (false)

/// Postcondition / invariant with a formatted failure message.
#define ONION_ENSURES_MSG(cond, stream_expr)                                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream onion_check_msg_;                                   \
      onion_check_msg_ << stream_expr;                                       \
      ::onion::detail::contract_fail_msg("postcondition", #cond,             \
                                         onion_check_msg_.str(), __FILE__,   \
                                         __LINE__);                          \
    }                                                                        \
  } while (false)

/// Precondition checked in Debug builds only: `cond` is not evaluated under
/// NDEBUG. For checks too expensive for a Release hot path (e.g. the
/// duplicate-edge scan in Graph::add_edge_unchecked) that the Debug/ASan CI
/// tier should still enforce.
#ifndef NDEBUG
#define ONION_DEBUG_EXPECTS(cond) ONION_EXPECTS(cond)
#else
#define ONION_DEBUG_EXPECTS(cond) \
  do {                            \
  } while (false)
#endif
