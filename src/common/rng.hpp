// Deterministic random number generation. Every stochastic component in
// the simulator draws from an explicitly seeded Rng so that experiments,
// tests, and benchmarks are reproducible bit-for-bit.
//
// The engine is xoshiro256** (Blackman & Vigna) — tiny state, excellent
// statistical quality, and independent of the standard library's
// unspecified distribution implementations (std::uniform_int_distribution
// is not portable across standard libraries; our rejection sampling is).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace onion {

/// Deterministic xoshiro256** generator with convenience sampling helpers.
/// Satisfies UniformRandomBitGenerator so it also plugs into <algorithm>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via splitmix64 expansion of `seed`, per the xoshiro authors'
  /// recommendation; every seed (including 0) yields a good state.
  explicit Rng(std::uint64_t seed = 0xc0ffee1234abcdULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64 random bits.
  std::uint64_t operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses rejection sampling: exactly uniform, portable across platforms.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  std::uint64_t uniform_in(std::uint64_t lo, std::uint64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    ONION_EXPECTS(!v.empty());
    return v[static_cast<std::size_t>(uniform(v.size()))];
  }

  /// Fisher–Yates shuffle (deterministic given the seed).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// k distinct elements sampled without replacement (order randomized).
  /// Precondition: k <= v.size().
  template <typename T>
  std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    ONION_EXPECTS(k <= v.size());
    std::vector<T> pool = v;
    // Partial Fisher–Yates: the first k slots become the sample.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(uniform(pool.size() - i));
      using std::swap;
      swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Derives an independent child generator; used to give each simulation
  /// actor its own stream so event-order changes do not perturb others.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace onion
