// Order-statistics bitmap: a Fenwick (binary-indexed) tree over a
// membership bitset, supporting set/clear/test in O(log n) and select
// (k-th smallest member) in O(log n). The scenario engine uses one over
// the honest-alive slots so that picking a uniform victim at 500k nodes
// costs a tree walk instead of materializing the full ascending id
// vector — while drawing the *same* random index, so snapshot streams
// stay byte-identical to the vector-based code it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace onion {

/// Dynamic set of small integers with rank/select, backed by a Fenwick
/// tree of 0/1 counts. Indices are slot ids; grow-only capacity.
class OrderStatSet {
 public:
  explicit OrderStatSet(std::size_t capacity = 0) { ensure_size(capacity); }

  std::size_t capacity() const { return bits_.size(); }
  std::size_t count() const { return count_; }

  bool test(std::size_t i) const {
    return i < bits_.size() && bits_[i] != 0;
  }

  /// Grows capacity (new slots absent). Appended Fenwick nodes are
  /// rebuilt from prefix sums, so growth is valid mid-life, not just on
  /// an empty tree.
  void ensure_size(std::size_t capacity) {
    if (capacity <= bits_.size()) return;
    bits_.resize(capacity, 0);
    // tree_ is 1-indexed; node i covers (i - lowbit(i), i]. A new node's
    // span can reach back into old indices, so seed it with the prefix
    // difference (the new elements themselves contribute 0).
    tree_.reserve(capacity + 1);
    if (tree_.empty()) tree_.push_back(0);
    for (std::size_t i = tree_.size(); i <= capacity; ++i) {
      const std::size_t low = i & (~i + 1);
      tree_.push_back(prefix(i - 1) - prefix(i - low));
    }
  }

  void set(std::size_t i) {
    ONION_EXPECTS(i < bits_.size());
    if (bits_[i]) return;
    bits_[i] = 1;
    ++count_;
    update(i + 1, +1);
  }

  void clear(std::size_t i) {
    ONION_EXPECTS(i < bits_.size());
    if (!bits_[i]) return;
    bits_[i] = 0;
    --count_;
    update(i + 1, -1);
  }

  /// Index of the k-th member (0-based, ascending). Precondition:
  /// k < count(). Equivalent to sorted_members()[k] without building it.
  std::size_t select(std::size_t k) const {
    ONION_EXPECTS_MSG(k < count_, "k=" << k << " count=" << count_);
    std::size_t pos = 0;
    std::size_t remaining = k + 1;
    std::size_t step = 1;
    while ((step << 1) <= bits_.size()) step <<= 1;
    for (; step > 0; step >>= 1) {
      const std::size_t next = pos + step;
      if (next <= bits_.size() && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
    }
    // pos = largest 1-based prefix length with fewer than k+1 members,
    // so the hit is 1-based index pos+1, i.e. 0-based slot pos.
    return pos;
  }

  /// Number of members with index < i.
  std::size_t rank(std::size_t i) const {
    return prefix(i < bits_.size() ? i : bits_.size());
  }

 private:
  std::size_t prefix(std::size_t i) const {  // sum of elements [1..i], 1-based
    std::size_t s = 0;
    for (; i > 0; i &= i - 1) s += tree_[i];
    return s;
  }

  void update(std::size_t i, int delta) {  // 1-based
    for (; i < tree_.size(); i += i & (~i + 1))
      tree_[i] = static_cast<std::size_t>(
          static_cast<std::int64_t>(tree_[i]) + delta);
  }

  std::vector<std::uint8_t> bits_;
  std::vector<std::size_t> tree_;  // tree_[0] unused
  std::size_t count_ = 0;
};

}  // namespace onion
