#include "common/fileio.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/check.hpp"

namespace onion {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw std::runtime_error(op + " failed for " + path + ": " +
                           std::strerror(errno));
}

}  // namespace

Bytes read_file_bytes(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) fail("open", path);
  Bytes out;
  std::uint8_t chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, in)) > 0)
    out.insert(out.end(), chunk, chunk + got);
  const bool bad = std::ferror(in) != 0;
  std::fclose(in);
  if (bad) fail("read", path);
  return out;
}

AtomicFileWriter::AtomicFileWriter(std::string path)
    : path_(std::move(path)),
      tmp_(path_ + ".tmp." + std::to_string(::getpid())) {
  out_ = std::fopen(tmp_.c_str(), "wb");
  if (out_ == nullptr) fail("open", tmp_);
}

AtomicFileWriter::~AtomicFileWriter() {
  if (out_ != nullptr) {
    std::fclose(out_);
    std::remove(tmp_.c_str());  // uncommitted: leave no partial file
  }
}

void AtomicFileWriter::append(BytesView data) {
  ONION_EXPECTS(out_ != nullptr);  // commit() ends the writer's life
  if (data.empty()) return;
  if (std::fwrite(data.data(), 1, data.size(), out_) != data.size()) {
    std::fclose(out_);
    out_ = nullptr;
    std::remove(tmp_.c_str());
    fail("write", tmp_);
  }
  bytes_written_ += data.size();
}

void AtomicFileWriter::commit() {
  ONION_EXPECTS(out_ != nullptr);
  const bool flushed = std::fflush(out_) == 0;
  // fsync before rename, same contract as write_file_atomic: the final
  // name must never point at unwritten blocks after a machine crash.
  const bool synced = ::fsync(::fileno(out_)) == 0;
  std::fclose(out_);
  out_ = nullptr;
  if (!(flushed && synced)) {
    std::remove(tmp_.c_str());
    fail("flush", tmp_);
  }
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_.c_str());
    fail("rename", path_);
  }
  committed_ = true;
}

void write_file_atomic(const std::string& path, BytesView data) {
  // A pid-unique temp name: concurrent workers assigned disjoint cells
  // never collide, and a crashed worker's leftover temp is inert (the
  // coordinator only ever reads final names).
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) fail("open", tmp);
  const bool wrote =
      data.empty() ||
      std::fwrite(data.data(), 1, data.size(), out) == data.size();
  const bool flushed = std::fflush(out) == 0;
  // fsync before rename: otherwise a machine crash could leave the new
  // name pointing at unwritten blocks — exactly the torn frame the
  // atomic contract exists to rule out.
  const bool synced = ::fsync(::fileno(out)) == 0;
  std::fclose(out);
  if (!(wrote && flushed && synced)) {
    std::remove(tmp.c_str());
    fail("write", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail("rename", path);
  }
}

}  // namespace onion
