#include "common/bytes.hpp"

#include <bit>
#include <stdexcept>

#include "common/check.hpp"

namespace onion {

namespace {
constexpr char kHexAlphabet[] = "0123456789abcdef";
// RFC 4648 base32 alphabet, lowercased as Tor does for .onion names.
constexpr char kBase32Alphabet[] = "abcdefghijklmnopqrstuvwxyz234567";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int base32_value(char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= '2' && c <= '7') return c - '2' + 26;
  return -1;
}
}  // namespace

Bytes to_bytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView b) { return std::string(b.begin(), b.end()); }

std::string to_hex(BytesView b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kHexAlphabet[byte >> 4]);
    out.push_back(kHexAlphabet[byte & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0)
    throw std::invalid_argument("from_hex: odd-length input");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0)
      throw std::invalid_argument("from_hex: non-hex character");
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

std::string base32_encode(BytesView b) {
  std::string out;
  out.reserve((b.size() * 8 + 4) / 5);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (std::uint8_t byte : b) {
    buffer = buffer << 8 | byte;
    bits += 8;
    while (bits >= 5) {
      bits -= 5;
      out.push_back(kBase32Alphabet[(buffer >> bits) & 0x1f]);
    }
  }
  if (bits > 0) out.push_back(kBase32Alphabet[(buffer << (5 - bits)) & 0x1f]);
  return out;
}

Bytes base32_decode(std::string_view s) {
  Bytes out;
  out.reserve(s.size() * 5 / 8);
  std::uint32_t buffer = 0;
  int bits = 0;
  for (char c : s) {
    const int v = base32_value(c);
    if (v < 0) throw std::invalid_argument("base32_decode: bad character");
    buffer = buffer << 5 | static_cast<std::uint32_t>(v);
    bits += 5;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((buffer >> bits) & 0xff));
    }
  }
  return out;
}

Bytes concat(BytesView a, BytesView b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes concat(BytesView a, BytesView b, BytesView c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint64_t read_be64(BytesView b) {
  ONION_EXPECTS(b.size() >= 8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | b[static_cast<std::size_t>(i)];
  return v;
}

void put_u64(Bytes& out, std::uint64_t v) { append(out, be64(v)); }

void put_f64(Bytes& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_string(Bytes& out, std::string_view s) {
  put_u64(out, s.size());
  append(out, to_bytes(s));
}

std::uint64_t ByteReader::u64() {
  if (remaining() < 8)
    throw std::out_of_range("ByteReader: truncated u64 (" +
                            std::to_string(remaining()) + " bytes left)");
  const std::uint64_t v = read_be64(data_.subspan(pos_, 8));
  pos_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t len = u64();
  if (len > remaining())
    throw std::out_of_range("ByteReader: truncated string (length " +
                            std::to_string(len) + ", " +
                            std::to_string(remaining()) + " bytes left)");
  return to_string(raw(static_cast<std::size_t>(len)));
}

BytesView ByteReader::raw(std::size_t n) {
  if (n > remaining())
    throw std::out_of_range("ByteReader: truncated read (" +
                            std::to_string(n) + " wanted, " +
                            std::to_string(remaining()) + " bytes left)");
  const BytesView view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

Bytes xor_bytes(BytesView a, BytesView b) {
  if (a.size() != b.size())
    throw std::invalid_argument("xor_bytes: length mismatch");
  Bytes out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

}  // namespace onion
