#include "common/rng.hpp"

namespace onion {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  ONION_EXPECTS(bound > 0);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::uniform_in(std::uint64_t lo, std::uint64_t hi) {
  ONION_EXPECTS(lo <= hi);
  const std::uint64_t span = hi - lo;
  if (span == ~0ULL) return next_u64();
  return lo + uniform(span + 1);
}

double Rng::uniform_real() {
  // 53 high-quality bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0x5eedb0057ULL); }

}  // namespace onion
