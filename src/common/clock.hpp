// Simulated-time vocabulary types. The discrete-event simulator advances a
// virtual clock measured in milliseconds; Tor-level concepts (descriptor
// periods, HSDir uptime) are expressed in seconds/hours on top of it.
#pragma once

#include <cstdint>

namespace onion {

/// Virtual time in milliseconds since simulation start.
using SimTime = std::uint64_t;

/// Durations, also in milliseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kMillisecond = 1;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

/// Converts virtual time to whole seconds (used by descriptor formulas,
/// which operate on UNIX-style second timestamps).
constexpr std::uint64_t to_seconds(SimTime t) { return t / kSecond; }

}  // namespace onion
