// Crash-safe file plumbing for the multi-process grid transport: a
// worker must never leave a half-written result frame under the final
// name (a coordinator could merge it), so every write goes to a
// process-unique temp file in the same directory and is renamed into
// place — rename(2) on one filesystem is atomic, readers see either the
// whole frame or nothing. Frame *content* integrity (torn writes that
// did get renamed, bit rot) is the wire layer's job via its trailing
// digest; this layer only guarantees name-level atomicity.
#pragma once

#include <cstdio>
#include <string>

#include "common/bytes.hpp"

namespace onion {

/// Whole-file read; throws std::runtime_error (with the path and errno
/// text) when the file cannot be opened or read.
Bytes read_file_bytes(const std::string& path);

/// Atomically replaces `path` with `data`: writes `path`.tmp.<pid>,
/// flushes, then renames over `path`. Throws std::runtime_error on any
/// I/O failure (the temp file is removed on the error path).
void write_file_atomic(const std::string& path, BytesView data);

/// Streaming variant of write_file_atomic for producers whose output is
/// too large (or too incremental) to buffer whole — the trace spooler
/// appends frames as a campaign runs. Bytes accumulate in
/// `path`.tmp.<pid>; commit() flushes, fsyncs, and renames into place.
/// A writer destroyed without commit() removes the temp file, so the
/// final name only ever appears complete: readers see the whole stream
/// or nothing.
class AtomicFileWriter {
 public:
  /// Opens the temp file; throws std::runtime_error on failure.
  explicit AtomicFileWriter(std::string path);
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;
  /// Abandons (removes the temp) when not committed.
  ~AtomicFileWriter();

  /// Appends raw bytes; throws std::runtime_error on a short write.
  void append(BytesView data);

  /// Flush + fsync + rename over the final path. At most once; the
  /// writer accepts no further appends afterwards.
  void commit();

  bool committed() const { return committed_; }
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  std::string path_;
  std::string tmp_;
  std::FILE* out_ = nullptr;
  std::size_t bytes_written_ = 0;
  bool committed_ = false;
};

}  // namespace onion
