// Crash-safe file plumbing for the multi-process grid transport: a
// worker must never leave a half-written result frame under the final
// name (a coordinator could merge it), so every write goes to a
// process-unique temp file in the same directory and is renamed into
// place — rename(2) on one filesystem is atomic, readers see either the
// whole frame or nothing. Frame *content* integrity (torn writes that
// did get renamed, bit rot) is the wire layer's job via its trailing
// digest; this layer only guarantees name-level atomicity.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace onion {

/// Whole-file read; throws std::runtime_error (with the path and errno
/// text) when the file cannot be opened or read.
Bytes read_file_bytes(const std::string& path);

/// Atomically replaces `path` with `data`: writes `path`.tmp.<pid>,
/// flushes, then renames over `path`. Throws std::runtime_error on any
/// I/O failure (the temp file is removed on the error path).
void write_file_atomic(const std::string& path, BytesView data);

}  // namespace onion
