// Index-sharded parallelism: the one pool shape this codebase needs,
// extracted so every embarrassingly parallel sweep (campaign grids in
// src/scenario/runner.hpp, detector threshold sweeps in
// src/detection/roc.hpp) shares it instead of growing private thread
// pools. Work is handed out through an atomic index, so determinism is
// the caller's job: write result i to slot i and never let cell order
// or thread count leak into the output.
#pragma once

#include <cstddef>
#include <functional>

namespace onion {

/// Runs fn(0), fn(1), ..., fn(count - 1) across a worker pool.
/// `threads` == 0 uses the hardware concurrency; the pool is clamped to
/// [1, count], and a single-thread pool runs inline (no spawn) — same
/// call sequence, so sequential and parallel runs are interchangeable.
/// If any invocation throws, the pool drains and the first captured
/// exception (by worker slot) is rethrown. Returns the pool size used
/// (0 when count == 0).
std::size_t parallel_for_index(std::size_t count, std::size_t threads,
                               const std::function<void(std::size_t)>& fn);

}  // namespace onion
