// Byte-buffer helpers shared by every subsystem: hex and base32 codecs
// (base32 per RFC 4648, lowercase, unpadded — the alphabet Tor uses for
// .onion hostnames), concatenation, constant conversions.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace onion {

/// Owning byte buffer. A plain vector so the standard library does the work.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes; the parameter type of choice for all APIs.
using BytesView = std::span<const std::uint8_t>;

/// Builds a buffer from a string's raw characters (no encoding applied).
Bytes to_bytes(std::string_view s);

/// Interprets a buffer as a string of raw characters.
std::string to_string(BytesView b);

/// Lowercase hex encoding ("deadbeef").
std::string to_hex(BytesView b);

/// Decodes lowercase/uppercase hex; throws std::invalid_argument on bad
/// input (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// RFC 4648 base32, lowercase, no padding — the exact alphabet Tor uses to
/// render .onion hostnames from the 80-bit service identifier.
std::string base32_encode(BytesView b);

/// Inverse of base32_encode; accepts lowercase or uppercase, rejects
/// padding and out-of-alphabet characters with std::invalid_argument.
Bytes base32_decode(std::string_view s);

/// a ‖ b.
Bytes concat(BytesView a, BytesView b);

/// a ‖ b ‖ c.
Bytes concat(BytesView a, BytesView b, BytesView c);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Big-endian encoding of a 64-bit value (8 bytes), as used in the
/// descriptor time-period and key-derivation inputs.
Bytes be64(std::uint64_t v);

/// Canonical-serialization helpers shared by every fingerprinted stream
/// (snapshots, campaign events, traffic traces, ROC points): big-endian
/// 64-bit words, doubles bit-cast, strings length-prefixed. One
/// definition, so the byte conventions cannot drift between modules.
void put_u64(Bytes& out, std::uint64_t v);
void put_f64(Bytes& out, double v);
void put_string(Bytes& out, std::string_view s);

/// Reads a big-endian 64-bit value from the first 8 bytes of `b`.
/// Precondition: b.size() >= 8.
std::uint64_t read_be64(BytesView b);

/// Bounds-checked cursor over a canonical byte stream: the decoding
/// counterpart of put_u64/put_f64/put_string. Every read validates the
/// remaining length and throws std::out_of_range on underflow, so a
/// truncated buffer surfaces as an exception at the exact field, never
/// as an out-of-bounds access. Decoders (scenario/wire) wrap the throw
/// in their own error type with frame context.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::uint64_t u64();
  double f64();  // bit-cast inverse of put_f64: round-trips every value
  /// Length-prefixed string (inverse of put_string).
  std::string str();
  /// The next `n` raw bytes.
  BytesView raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Byte-wise XOR of equal-length buffers; throws std::invalid_argument on
/// length mismatch.
Bytes xor_bytes(BytesView a, BytesView b);

}  // namespace onion
