// Minimal leveled logger. Examples narrate through it at Info level;
// benches and tests keep it at Warn so output stays machine-readable.
// Not thread-safe by design: the entire simulator is single-threaded
// (discrete-event), which keeps every run deterministic.
#pragma once

#include <sstream>
#include <string>

namespace onion {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

/// Streams a log line at `level`, e.g. ONION_LOG(Info) << "bots: " << n;
#define ONION_LOG(level_name)                                              \
  for (bool onion_log_once =                                               \
           ::onion::log_level() <= ::onion::LogLevel::level_name;          \
       onion_log_once; onion_log_once = false)                             \
  ::onion::detail::LogLine(::onion::LogLevel::level_name)

namespace detail {
/// Accumulates one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace onion
