#include "superonion/super_network.hpp"

#include <algorithm>

namespace onion::super {

using core::OverlayNetwork;
using core::PeerDecision;
using NodeId = OverlayNetwork::NodeId;

SuperOnionNetwork::SuperOnionNetwork(SuperConfig config, Rng& rng)
    : config_(config), rng_(rng), net_([&] {
        // Virtual nodes keep i peers, with a little slack so
        // resurrection peering is not permanently wedged. The hardened
        // acceptance rate (§VII-A) applies to every vnode.
        core::OverlayConfig overlay = config.overlay;
        overlay.dmin = config.peers_per_vnode;
        overlay.dmax = config.peers_per_vnode + 2;
        overlay.rate_limit_per_round = config.rate_limit_per_round;
        return overlay;
      }(), rng) {
  ONION_EXPECTS(config_.hosts >= 2 && config_.vnodes_per_host >= 1);
  hosts_.resize(config_.hosts);
  lead_cache_.resize(config_.hosts);
  for (std::size_t h = 0; h < config_.hosts; ++h) {
    for (std::size_t v = 0; v < config_.vnodes_per_host; ++v) {
      hosts_[h].push_back(net_.add_node(/*honest=*/true));
      ++vnodes_created_;
    }
  }
  // Wire each virtual node to i virtual nodes of *other* hosts (siblings
  // must communicate through the overlay for probes to mean anything).
  // Wiring proceeds in passes with the per-round acceptance counters
  // reset between them, since formation spans many protocol rounds.
  std::vector<std::pair<NodeId, std::size_t>> all;  // (vnode, host)
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    for (const NodeId v : hosts_[h]) all.emplace_back(v, h);

  for (int pass = 0; pass < 200; ++pass) {
    net_.begin_round();
    bool all_wired = true;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
      for (const NodeId v : hosts_[h]) {
        if (net_.graph().degree(v) >= config_.peers_per_vnode) continue;
        all_wired = false;
        const auto& [w, wh] =
            all[static_cast<std::size_t>(rng_.uniform(all.size()))];
        if (wh == h || w == v) continue;
        net_.request_peering(v, w);
      }
    }
    if (all_wired) break;
  }
}

bool SuperOnionNetwork::host_contained(std::size_t host) const {
  for (const NodeId v : hosts_.at(host))
    if (net_.alive(v) && !net_.contained(v)) return false;
  return true;
}

std::size_t SuperOnionNetwork::hosts_alive() const {
  std::size_t n = 0;
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    if (!host_contained(h)) ++n;
  return n;
}

NodeId SuperOnionNetwork::bootstrap_vnode(std::size_t host) {
  const NodeId fresh = net_.add_node(/*honest=*/true);
  ++vnodes_created_;
  // Leads: the NoN knowledge of the host's still-connected vnodes plus
  // the host's probe-verified lead cache. The host cannot tell bots from
  // clones in the NoN part, so leads may include Sybils.
  std::vector<NodeId> leads;
  for (const NodeId sibling : hosts_[host]) {
    if (!net_.alive(sibling) || net_.contained(sibling)) continue;
    for (const NodeId n : net_.neighbors(sibling)) {
      for (const NodeId nn : net_.neighbors(n)) {
        if (nn == fresh || nn == sibling) continue;
        if (std::find(leads.begin(), leads.end(), nn) == leads.end())
          leads.push_back(nn);
      }
      if (std::find(leads.begin(), leads.end(), n) == leads.end())
        leads.push_back(n);
    }
  }
  for (const NodeId cached : lead_cache_[host]) {
    if (cached == fresh || !net_.alive(cached)) continue;
    if (std::find(leads.begin(), leads.end(), cached) == leads.end())
      leads.push_back(cached);
  }
  rng_.shuffle(leads);
  // Probe-before-adopt (paper §VII-A): right after peering with a
  // candidate, the host hands it a connectivity probe. A candidate that
  // never answers is unmasked as a Sybil (clones cannot decrypt the
  // probe envelope, and answering would mean participating in botnet
  // traffic) and the link is dropped before the fresh vnode commits to
  // it. Without this check a resurrected vnode bootstraps straight back
  // into the clone cloud.
  //
  // A resurrected identity peers up to the overlay's dmax rather than
  // the construction's steady-state i: every verified-honest peer it
  // starts with is one more eviction SOAP must pay for before the next
  // probe cycle, which is what keeps resurrection ahead of containment.
  const std::size_t target_degree = config_.peers_per_vnode + 2;
  std::size_t adopted = 0;
  for (const NodeId lead : leads) {
    if (adopted >= target_degree) break;
    if (!net_.alive(lead) || net_.graph().has_edge(fresh, lead)) continue;
    const PeerDecision decision = net_.request_peering(fresh, lead);
    if (decision == PeerDecision::Rejected ||
        decision == PeerDecision::RateLimited)
      continue;
    if (probe_delivered_via(lead)) {
      ++adopted;
      lead_cache_[host].insert(lead);
    } else {
      net_.drop_edge(fresh, lead);
    }
  }
  return fresh;
}

bool SuperOnionNetwork::probe_delivered_via(NodeId first_hop) const {
  // A clone first hop silently drops the probe; an honest bot answers.
  // (This is the DES exchange's outcome computed in closed form; honesty
  // is not visible to the host, only the pong or its absence is.)
  return net_.honest(first_hop);
}

ProbeReport SuperOnionNetwork::probe_and_recover() {
  ProbeReport report;
  const std::vector<std::uint32_t> label = net_.honest_component_labels();
  constexpr std::uint32_t kNone = ~std::uint32_t{0};

  // Gossip cost: each live honest vnode floods one probe; a flood costs
  // roughly two messages per honest edge of its component.
  std::vector<std::size_t> comp_edges;
  for (NodeId u = 0; u < net_.graph().capacity(); ++u) {
    if (!net_.alive(u) || !net_.honest(u) || label[u] == kNone) continue;
    if (label[u] >= comp_edges.size()) comp_edges.resize(label[u] + 1, 0);
    for (const NodeId v : net_.neighbors(u))
      if (net_.honest(v) && v > u) ++comp_edges[label[u]];
  }
  for (std::size_t h = 0; h < hosts_.size(); ++h)
    for (const NodeId v : hosts_[h])
      if (net_.alive(v) && label[v] != kNone)
        report.gossip_messages += 2 * comp_edges[label[v]];

  // Detection + resurrection, host by host. A vnode is soaped exactly
  // when its probe draws no answer from any honest bot — i.e. it is
  // contained (every peer a clone, or isolated). Vnodes that still reach
  // some honest bot are kept even if currently partitioned from their
  // siblings; overlay NoN maintenance re-merges fragments over time.
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    std::vector<NodeId>& vnodes = hosts_[h];

    // Probe pongs reveal which current peers are honest; the host banks
    // those identities before deciding anything.
    std::set<NodeId>& cache = lead_cache_[h];
    for (const NodeId v : vnodes) {
      if (!net_.alive(v)) continue;
      for (const NodeId p : net_.neighbors(v))
        if (probe_delivered_via(p)) cache.insert(p);
    }
    for (auto it = cache.begin(); it != cache.end();)
      it = net_.alive(*it) ? std::next(it) : cache.erase(it);

    std::vector<NodeId> soaped;
    std::vector<NodeId> healthy;
    for (const NodeId v : vnodes) {
      if (!net_.alive(v)) continue;
      (net_.contained(v) ? soaped : healthy).push_back(v);
    }
    report.soaped_detected += soaped.size();
    // A fully soaped host with no banked lead has no way back into the
    // overlay: it stays dormant (the paper's loss condition). With at
    // least one healthy vnode or cached honest lead, recovery proceeds.
    if (healthy.empty() && cache.empty()) continue;
    // Each host's recovery is an independent exchange spanning its own
    // protocol rounds; acceptance budgets reset per host. The Sybil side
    // is not requesting during this phase.
    net_.begin_round();
    for (const NodeId v : soaped) {
      net_.retire(v);
      vnodes.erase(std::find(vnodes.begin(), vnodes.end(), v));
      vnodes.push_back(bootstrap_vnode(h));
      ++report.resurrected;
    }
  }
  report.hosts_alive = hosts_alive();
  return report;
}

}  // namespace onion::super
