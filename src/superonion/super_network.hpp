// SuperOnionBots (paper Section VII, Figure 8): the next escalation. One
// physical host runs m virtual bots (free, thanks to the IP/.onion
// decoupling), each with i peers. A SOAP campaign can still surround any
// single virtual node, but the host notices — its periodic connectivity
// probes stop coming back — and simply abandons the contained identity,
// bootstrapping a fresh virtual node through its surviving ones. The
// host is only lost if all m virtual nodes are soaped in the same window.
//
// Key modeling assumption from the paper: the authorities are legally
// liable and cannot relay botnet traffic, so Sybil clones accept peers
// but never forward or answer messages. Probe semantics follow from
// that: probes are uniform-looking envelopes under the group key, so a
// clone can neither recognize nor answer one, while any honest bot
// receiving it gossips it onward / answers it (paper §VII-B: the
// authorities "are not able to drop certain message and only allow the
// connectivity probe messages to pass through"). A vnode whose probes
// draw no response at all therefore has no honest peer left — it is
// exactly *contained*. A vnode that still reaches some honest bot is
// left alone even if the overlay is temporarily partitioned from its
// siblings; retiring those healthy identities would shred the honest
// web faster than SOAP itself (§VII-A calls this probing the attacker's
// counter-evolution to SOAP).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/overlay.hpp"

namespace onion::super {

/// Construction parameters (paper Figure 8 uses n=5, m=3, i=2).
struct SuperConfig {
  std::size_t hosts = 5;            // n physical hosts
  std::size_t vnodes_per_host = 3;  // m virtual nodes each
  std::size_t peers_per_vnode = 2;  // i overlay peers per virtual node
  core::OverlayConfig overlay;      // peering rules (dmin/dmax default to i)

  /// Peering acceptances per vnode per round (paper §VII-A rate-limiting
  /// defense: "the delay of accepting new nodes is increased proportional
  /// to the size of peer list"). SuperOnions ship hardened; set to
  /// SIZE_MAX to study the undefended construction.
  std::size_t rate_limit_per_round = 1;
};

/// Result of one probe-and-recover cycle across all hosts.
struct ProbeReport {
  std::size_t soaped_detected = 0;   // virtual nodes found contained
  std::size_t resurrected = 0;       // fresh virtual nodes bootstrapped
  std::size_t gossip_messages = 0;   // flood cost of this cycle
  std::size_t hosts_alive = 0;       // hosts with >=1 connected vnode
};

/// A SuperOnion botnet over the shared overlay substrate. Virtual nodes
/// live in the OverlayNetwork (so SOAP attacks them identically); this
/// class adds the host bookkeeping, probes, and resurrection.
class SuperOnionNetwork {
 public:
  using NodeId = core::OverlayNetwork::NodeId;

  SuperOnionNetwork(SuperConfig config, Rng& rng);

  core::OverlayNetwork& overlay() { return net_; }
  const core::OverlayNetwork& overlay() const { return net_; }

  /// One probe cycle (paper §VII-B): every host floods a probe from each
  /// live virtual node. A vnode whose probe draws no answer from any
  /// honest bot is contained (soaped); it is abandoned and replaced by a
  /// fresh identity bootstrapped from the surviving siblings' NoN
  /// knowledge, with each candidate lead probe-verified before adoption.
  ProbeReport probe_and_recover();

  /// --- introspection -------------------------------------------------
  std::size_t num_hosts() const { return hosts_.size(); }
  const std::vector<NodeId>& vnodes_of(std::size_t host) const {
    return hosts_.at(host);
  }
  /// A host is lost only when every virtual node is contained.
  bool host_contained(std::size_t host) const;
  std::size_t hosts_alive() const;
  /// Total virtual nodes ever created (original + resurrected).
  std::size_t vnodes_created() const { return vnodes_created_; }

 private:
  NodeId bootstrap_vnode(std::size_t host);

  /// Would a probe handed to `first_hop` draw an answer? Clones neither
  /// recognize nor answer probes (they cannot decrypt the envelope and
  /// cannot participate in botnet traffic), while an honest bot does; so
  /// delivery is equivalent to the first hop being honest. The host
  /// observes only the pong or its absence.
  bool probe_delivered_via(NodeId first_hop) const;

  SuperConfig config_;
  Rng& rng_;
  core::OverlayNetwork net_;
  std::vector<std::vector<NodeId>> hosts_;  // live vnodes per host

  /// Per-host cache of peers that have answered a probe (so: honest at
  /// the time). The host owns all m vnodes' peer tables and the probe
  /// pongs, so retaining these identities across vnode retirement is
  /// free — and it is what lets a host whose vnodes were all contained
  /// in one synchronized sweep still bootstrap replacements.
  std::vector<std::set<NodeId>> lead_cache_;
  std::size_t vnodes_created_ = 0;
};

}  // namespace onion::super
