#include "core/rental.hpp"

#include <algorithm>

namespace onion::core {

const char* to_string(CommandType type) {
  switch (type) {
    case CommandType::Ping:
      return "ping";
    case CommandType::Ddos:
      return "ddos";
    case CommandType::Spam:
      return "spam";
    case CommandType::Compute:
      return "compute";
    case CommandType::Recon:
      return "recon";
    case CommandType::InstallGroupKey:
      return "install-group-key";
  }
  return "unknown";
}

Bytes RentalToken::signed_body() const {
  Writer w;
  w.raw(renter_key.serialize());
  w.u64(expires_at);
  w.u8(static_cast<std::uint8_t>(whitelist.size()));
  for (const CommandType t : whitelist)
    w.u8(static_cast<std::uint8_t>(t));
  return w.take();
}

void RentalToken::serialize(Writer& w) const {
  w.u64(renter_key.n);
  w.u64(renter_key.e);
  w.u64(static_cast<std::uint64_t>(renter_key.nominal_bits));
  w.u64(expires_at);
  w.u8(static_cast<std::uint8_t>(whitelist.size()));
  for (const CommandType t : whitelist)
    w.u8(static_cast<std::uint8_t>(t));
  w.u64(master_signature);
}

RentalToken RentalToken::parse(Reader& r) {
  RentalToken token;
  token.renter_key.n = r.u64();
  token.renter_key.e = r.u64();
  token.renter_key.nominal_bits = static_cast<int>(r.u64());
  token.expires_at = r.u64();
  const std::uint8_t count = r.u8();
  token.whitelist.reserve(count);
  for (std::uint8_t i = 0; i < count; ++i) {
    const std::uint8_t raw = r.u8();
    if (raw > kMaxCommandType)
      throw WireError("rental token: unknown command type");
    token.whitelist.push_back(static_cast<CommandType>(raw));
  }
  token.master_signature = r.u64();
  return token;
}

bool RentalToken::verify(const crypto::RsaPublicKey& master,
                         SimTime now) const {
  if (now >= expires_at) return false;
  return crypto::rsa_verify(master, signed_body(), master_signature);
}

bool RentalToken::allows(CommandType type) const {
  // Key management is never rentable, whatever the whitelist says: a
  // renter who could install group keys could hijack the subgroup
  // channel outright.
  if (type == CommandType::InstallGroupKey) return false;
  return std::find(whitelist.begin(), whitelist.end(), type) !=
         whitelist.end();
}

RentalToken issue_rental_token(const crypto::RsaKeyPair& master,
                               const crypto::RsaPublicKey& renter,
                               SimTime expires_at,
                               std::vector<CommandType> whitelist) {
  RentalToken token;
  token.renter_key = renter;
  token.expires_at = expires_at;
  token.whitelist = std::move(whitelist);
  token.master_signature = crypto::rsa_sign(master, token.signed_body());
  return token;
}

}  // namespace onion::core
