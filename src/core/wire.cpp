#include "core/wire.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace onion::core {

void Writer::var_bytes(BytesView b) {
  ONION_EXPECTS(b.size() < (1u << 16));
  u16(static_cast<std::uint16_t>(b.size()));
  raw(b);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > in_.size()) throw WireError("truncated message");
}

std::uint8_t Reader::u8() {
  need(1);
  return in_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v =
      static_cast<std::uint16_t>(in_[pos_] << 8 | in_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  const std::uint64_t v = read_be64(in_.subspan(pos_));
  pos_ += 8;
  return v;
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
            in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes Reader::var_bytes() { return raw(u16()); }

std::string Reader::str() {
  const Bytes b = var_bytes();
  return std::string(b.begin(), b.end());
}

tor::OnionAddress Reader::address() {
  const Bytes b = raw(10);
  tor::OnionAddress::Identifier id;
  std::copy_n(b.begin(), id.size(), id.begin());
  // Round-trip through the hostname form to reuse validation.
  tor::OnionAddress addr = tor::OnionAddress::from_hostname(
      base32_encode(BytesView(id.data(), id.size())));
  return addr;
}

}  // namespace onion::core
