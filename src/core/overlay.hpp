// Bot-level overlay model: the DDSR graph as bots actually experience it,
// where a peer's degree is whatever that peer *declares*. Honest bots
// declare truthfully; Sybil clones lie (paper Figure 7 step 3: clones
// "declare their degree to be a small random number ... to increase the
// chances of being accepted"). This unauthenticated declaration is the
// exact weakness SOAP exploits, and the proof-of-work / rate-limiting
// defenses of Section VII-A are modeled here so the mitigation and
// defense benches share one substrate.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace onion::core {

/// Overlay peering parameters.
struct OverlayConfig {
  /// Degree band honest nodes maintain.
  std::size_t dmin = 10;
  std::size_t dmax = 10;

  /// Max peering requests a node accepts per round (rate-limiting
  /// defense; unlimited by default).
  std::size_t rate_limit_per_round =
      std::numeric_limits<std::size_t>::max();

  /// Proof-of-work defense: cost of the n-th peering request received by
  /// a node is pow_base_cost * pow_growth^n (0 disables). "As more nodes
  /// request peering with a node, the complexity of the task is
  /// increased to give preference to the older nodes" (§VII-A).
  double pow_base_cost = 0.0;
  double pow_growth = 2.0;
};

/// Outcome of a peering request.
enum class PeerDecision {
  AcceptedWithCapacity,  // target was below dmax
  AcceptedEvicted,       // target evicted its highest-declared peer
  Rejected,              // requester's declared degree not low enough
  RateLimited,           // target's per-round acceptance budget exhausted
};

/// The overlay network of honest bots and (possibly) Sybil clones.
class OverlayNetwork {
 public:
  using NodeId = graph::NodeId;
  static constexpr std::size_t kTruthful =
      std::numeric_limits<std::size_t>::max();

  OverlayNetwork(OverlayConfig config, Rng& rng)
      : config_(config), rng_(rng) {}

  /// Builds an overlay of `n` honest bots wired as a random k-regular
  /// graph (the paper's starting topology).
  static OverlayNetwork random_regular(std::size_t n, std::size_t k,
                                       OverlayConfig config, Rng& rng);

  /// Pre-sizes the slot tables (graph adjacency + per-bot metadata) for
  /// `nodes` bots, so building a 500k-node overlay is a handful of
  /// allocations instead of log2(n) reallocation-and-copy cycles.
  void reserve(std::size_t nodes);

  /// Adds a node. `declared_degree` == kTruthful means the node reports
  /// its true degree (honest); any other value is a fixed lie (Sybil).
  NodeId add_node(bool honest, std::size_t declared_degree = kTruthful);

  /// Requester asks target to peer. Implements the acceptance policy the
  /// paper's Figure 7 walks through: room -> accept; full -> accept iff
  /// the requester's declared degree undercuts the highest-declared
  /// current peer, which gets evicted. Proof-of-work cost (if enabled) is
  /// charged to the requester's ledger whether or not it is accepted.
  PeerDecision request_peering(NodeId requester, NodeId target) {
    return request_peering(requester, target, nullptr);
  }

  /// As above, but reports who got evicted (kInvalidNode when nobody
  /// was). The scenario engine uses this to queue the victim's refill —
  /// an eviction otherwise leaves a silent hole below dmin.
  PeerDecision request_peering(NodeId requester, NodeId target,
                               NodeId* evicted);

  /// Drops the edge; both sides forget each other (paper "Forgetting").
  void drop_edge(NodeId a, NodeId b) { graph_.remove_edge(a, b); }

  /// Honest-node maintenance after losing edges: refill from NoN up to
  /// dmin. Honest refill also pays proof-of-work — the recoverability
  /// cost of the defense that the paper calls an open trade-off.
  void refill(NodeId v);

  /// Starts a new round: resets per-round rate-limit counters.
  void begin_round();

  /// --- introspection ------------------------------------------------
  const graph::Graph& graph() const { return graph_; }
  const OverlayConfig& config() const { return config_; }

  /// Scenario-engine hook: mutable access to the topology so DDSR
  /// maintenance (core/ddsr.hpp) can run churn repair directly on the
  /// overlay's graph. Slot-parallel metadata (honesty, declared degree,
  /// rate-limit ledgers) is keyed by stable NodeId, so edge and node
  /// removals through this reference keep the overlay consistent; new
  /// nodes must still come through add_node().
  graph::Graph& graph_mut() { return graph_; }
  bool honest(NodeId u) const { return honest_.at(u) != 0; }
  std::size_t declared_degree(NodeId u) const;
  const std::vector<NodeId>& neighbors(NodeId u) const {
    return graph_.neighbors(u);
  }
  bool alive(NodeId u) const { return graph_.alive(u); }

  /// True iff every peer of `u` is a Sybil — `u` is contained.
  bool contained(NodeId u) const;

  /// Number of honest-honest edges remaining (0 = fully neutralized).
  std::size_t honest_edges() const;

  /// Connected components among honest nodes only.
  std::size_t honest_components() const;

  /// Component label per node slot, computed over honest-honest edges
  /// only (Sybils do not relay — the paper's legal-liability assumption).
  /// Dead and Sybil slots get ~0u. Used by SuperOnion probes.
  std::vector<std::uint32_t> honest_component_labels() const;

  /// Abandons a node: it stops answering and all its edges vanish
  /// (a SuperOnion host retiring a soaped virtual identity).
  void retire(NodeId u) { graph_.remove_node(u); }

  /// Proof-of-work spent so far, split by who paid it.
  double sybil_work_spent() const { return sybil_work_; }
  double honest_work_spent() const { return honest_work_; }

  /// All honest alive node ids.
  std::vector<NodeId> honest_nodes() const;

 private:
  double pow_cost_for(NodeId target);

  /// Internal truthful sentinel. Per-bot metadata is struct-of-arrays
  /// with 32-bit slots (a declared-degree lie is a small number, PoW
  /// request counts and per-round acceptances never approach 2^32), so
  /// a million-bot overlay pays 13 bytes of metadata per slot instead
  /// of 25. kTruthful stays size_t at the API boundary.
  static constexpr std::uint32_t kTruthful32 = ~std::uint32_t{0};

  OverlayConfig config_;
  Rng& rng_;
  graph::Graph graph_{0};
  std::vector<std::uint8_t> honest_;
  std::vector<std::uint32_t> declared_;       // kTruthful32 or the lie
  std::vector<std::uint32_t> requests_seen_;  // PoW difficulty escalator
  std::vector<std::uint32_t> accepted_this_round_;
  double sybil_work_ = 0.0;
  double honest_work_ = 0.0;
};

}  // namespace onion::core
